package bgbuster_test

import (
	"fmt"

	"github.com/bgbuster/bgbuster"
)

// ExampleAttack runs the complete pipeline on one synthetic call: the
// Zoom-like compositor blends the "beach" virtual background into an
// arm-waving recording, then the reconstruction framework identifies
// the virtual image and recovers leaked real background.
func ExampleAttack() {
	cfg := bgbuster.DefaultDatasetConfig()
	cfg.W, cfg.H = 120, 90
	cfg.E1Frames = 30

	rendered, err := bgbuster.E1Calls(cfg)[2].Render()
	if err != nil {
		fmt.Println("render:", err)
		return
	}
	res, err := bgbuster.Attack(rendered, bgbuster.AttackOptions{Seed: 7})
	if err != nil {
		fmt.Println("attack:", err)
		return
	}
	fmt.Printf("identified VB: %s\n", res.Reconstruction.VBName)
	fmt.Printf("recovered anything: %v\n", res.Reconstruction.RBRR() > 0)
	fmt.Printf("claims mostly true: %v\n", res.Verification.Precision > 0.4)
	// Output:
	// identified VB: beach
	// recovered anything: true
	// claims mostly true: true
}

// ExampleRankLocations shows the location-inference attack: the
// reconstruction is matched hue-wise against a dictionary of known
// backgrounds and the true location ranks first.
func ExampleRankLocations() {
	cfg := bgbuster.DefaultDatasetConfig()
	cfg.W, cfg.H = 120, 90
	cfg.E2Frames = 45

	call := bgbuster.E2Calls(cfg)[4] // active presenter
	rendered, err := call.Render()
	if err != nil {
		fmt.Println("render:", err)
		return
	}
	res, err := bgbuster.Attack(rendered, bgbuster.AttackOptions{Seed: 3})
	if err != nil {
		fmt.Println("attack:", err)
		return
	}

	dict := []bgbuster.LocationEntry{
		{Name: "victim-home", Background: rendered.Scene.Base},
		{Name: "decoy-office", Background: bgbuster.E3Calls(cfg)[0].SceneFor().Base},
		{Name: "decoy-studio", Background: bgbuster.E3Calls(cfg)[1].SceneFor().Base},
	}
	matches, err := bgbuster.RankLocations(res.Reconstruction, dict)
	if err != nil {
		fmt.Println("rank:", err)
		return
	}
	fmt.Printf("best match: %s\n", matches[0].Name)
	// Output:
	// best match: victim-home
}

// ExampleDynamicVirtualBackground demonstrates the paper's Section IX-A
// mitigation: the per-frame adapted, hue-fluctuating virtual background
// floods the attacker's reconstruction with false positives.
func ExampleDynamicVirtualBackground() {
	cfg := bgbuster.DefaultDatasetConfig()
	cfg.W, cfg.H = 120, 90
	cfg.E1Frames = 30

	rendered, err := bgbuster.E1Calls(cfg)[2].Render()
	if err != nil {
		fmt.Println("render:", err)
		return
	}
	plain, err := bgbuster.Attack(rendered, bgbuster.AttackOptions{Seed: 7})
	if err != nil {
		fmt.Println("attack:", err)
		return
	}
	mitigated, err := bgbuster.Attack(rendered, bgbuster.AttackOptions{
		Seed:       7,
		Mitigation: bgbuster.DynamicVirtualBackground(17),
	})
	if err != nil {
		fmt.Println("attack:", err)
		return
	}
	fmt.Printf("claims inflated: %v\n", mitigated.Reconstruction.RBRR() > plain.Reconstruction.RBRR())
	fmt.Printf("precision collapsed: %v\n", mitigated.Verification.Precision < plain.Verification.Precision)
	// Output:
	// claims inflated: true
	// precision collapsed: true
}
