package experiments

import (
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/mitigate"
)

// Fig15aRow is one group's recovery under the dynamic-VB mitigation.
type Fig15aRow struct {
	Group Group
	// ClaimedRBRR rises under the mitigation because the framework
	// mislabels fluctuating virtual pixels as leaks (paper: 65.8 / 74 /
	// 86.2 % for passive / active / wild).
	ClaimedRBRR float64
	// TruePct and Precision quantify how hollow the claims are — the
	// reproduction's added verification metrics.
	TruePct   float64
	Precision float64
	Calls     int
}

// Fig15aMitigationRBRR reproduces Figure 15a: apply the dynamic virtual
// background and re-run the reconstruction framework over E2/E3.
func Fig15aMitigationRBRR(cfg Config) ([]Fig15aRow, error) {
	runs, err := mitigatedRuns(cfg)
	if err != nil {
		return nil, err
	}
	var rows []Fig15aRow
	for _, g := range []Group{GroupPassive, GroupActive, GroupWild} {
		row := Fig15aRow{Group: g}
		for _, run := range runs[g] {
			row.ClaimedRBRR += run.verify.ClaimedPct
			row.TruePct += run.verify.TruePct
			row.Precision += run.verify.Precision
			row.Calls++
		}
		if row.Calls > 0 {
			n := float64(row.Calls)
			row.ClaimedRBRR /= n
			row.TruePct /= n
			row.Precision /= n
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// mitigatedRuns executes the pipeline with the dynamic-VB transform.
func mitigatedRuns(cfg Config) (map[Group][]*callRun, error) {
	rng := rand.New(rand.NewSource(cfg.Data.Seed + 4242))
	transform := mitigate.DynamicVB(mitigate.DefaultDynamicVBConfig(), rng)
	return groupRuns(cfg, cfg.Profile, transform)
}

// Fig15aTable renders the mitigation recovery result.
func Fig15aTable(rows []Fig15aRow) *Table {
	t := &Table{
		Title:   "Figure 15a — RBRR after applying the dynamic virtual background",
		Columns: []string{"group", "claimed RBRR", "verified recovery", "precision", "calls"},
		Notes: []string{
			"paper: claimed RBRR inflates to 65.8/74/86.2% but the claims are dominated by virtual pixels",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Group.String(), pct(r.ClaimedRBRR), pct(r.TruePct), num(r.Precision), count(r.Calls),
		})
	}
	return t
}

// Fig15bMitigationLocation reproduces Figure 15b: location inference
// against mitigated calls. The paper reports top-25 success collapsing
// to 40 % (active E2) and 22 % (wild).
func Fig15bMitigationLocation(cfg Config) (*Fig12bResult, error) {
	runs, err := mitigatedRuns(cfg)
	if err != nil {
		return nil, err
	}
	return locationFromRuns(cfg, runs)
}
