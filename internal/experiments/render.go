package experiments

import (
	"fmt"
	"strings"
)

// Table is a renderable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

func pct(v float64) string  { return fmt.Sprintf("%.1f%%", v) }
func num(v float64) string  { return fmt.Sprintf("%.2f", v) }
func count(v int) string    { return fmt.Sprintf("%d", v) }
func secs(v float64) string { return fmt.Sprintf("%.2fs", v) }
