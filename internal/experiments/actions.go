package experiments

import (
	"fmt"

	"github.com/bgbuster/bgbuster/internal/dataset"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/person"
)

// Fig5Row is the mean leaked-background share of one early frame index.
type Fig5Row struct {
	Frame   int
	LeakPct float64
}

// Fig5InitialLeakage reproduces Figure 5: the leaked-background area in
// the first frames of a call is large and decays as the software's
// tracker warms up.
func Fig5InitialLeakage(cfg Config) ([]Fig5Row, error) {
	calls := cfg.limit(e1Base(cfg))
	const frames = 12
	sums := make([]float64, frames)
	n := 0
	runs, err := cfg.runCalls(calls, cfg.Profile, nil)
	if err != nil {
		return nil, err
	}
	for _, run := range runs {
		for i := 0; i < frames && i < len(run.composed.Components); i++ {
			sums[i] += run.composed.Components[i].LB.Fraction() * 100
		}
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("experiments: fig5: no calls")
	}
	rows := make([]Fig5Row, frames)
	for i := range rows {
		rows[i] = Fig5Row{Frame: i + 1, LeakPct: sums[i] / float64(n)}
	}
	return rows, nil
}

// Fig5Table renders the initial-leakage decay.
func Fig5Table(rows []Fig5Row) *Table {
	t := &Table{
		Title:   "Figure 5 — leaked background in the initial frames",
		Columns: []string{"frame", "leaked area"},
		Notes:   []string{"leakage must decay as the tracker locks on (paper Fig. 5)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{count(r.Frame), pct(r.LeakPct)})
	}
	return t
}

// Fig7Row is the per-action background recovery.
type Fig7Row struct {
	Action person.Action
	// PerParticipant maps participant → RBRR %.
	PerParticipant map[int]float64
	MeanRBRR       float64
}

// Fig7ActionRBRR reproduces Figure 7: background recovery under the ten
// actions, per participant. The paper's headline contrast:
// entering/exiting ≈ 38.6 % RBRR versus typing ≈ 4.4 %.
func Fig7ActionRBRR(cfg Config) ([]Fig7Row, error) {
	base := e1Base(cfg)
	byAction := map[person.Action][]*dataset.Call{}
	for _, c := range base {
		byAction[c.Action] = append(byAction[c.Action], c)
	}
	var rows []Fig7Row
	for _, a := range person.Actions {
		calls := cfg.limit(byAction[a])
		row := Fig7Row{Action: a, PerParticipant: map[int]float64{}}
		runs, err := cfg.runCalls(calls, cfg.Profile, nil)
		if err != nil {
			return nil, err
		}
		sum := 0.0
		for _, run := range runs {
			rbrr := run.rec.RBRR()
			row.PerParticipant[run.call.Participant] = rbrr
			sum += rbrr
		}
		if len(runs) > 0 {
			row.MeanRBRR = sum / float64(len(runs))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7Table renders the per-action recovery.
func Fig7Table(rows []Fig7Row) *Table {
	t := &Table{
		Title:   "Figure 7 — background recovery under various actions",
		Columns: []string{"action", "mean RBRR"},
		Notes: []string{
			"paper: entering/exiting ≈38.6%, typing ≈4.4%; higher-displacement actions leak more",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Action.String(), pct(r.MeanRBRR)})
	}
	return t
}

// Fig8Row is one action×speed measurement.
type Fig8Row struct {
	Action person.Action
	Speed  person.Speed
	// ActionSpeedSec is the measured event duration (the paper's Action
	// Speed metric).
	ActionSpeedSec float64
	// DisplacementPct is the measured unique-pixel displacement.
	DisplacementPct float64
	MeanRBRR        float64
}

// Fig8ActionSpeed reproduces Figure 8 and its in-text numbers: the
// effect of action speed on displacement and recovery for arm-waving and
// clapping.
func Fig8ActionSpeed(cfg Config) ([]Fig8Row, error) {
	// Speed-variant calls plus the matching base (average) calls.
	var pool []*dataset.Call
	for _, c := range dataset.E1(cfg.Data) {
		if c.Action != person.ActionArmWave && c.Action != person.ActionClap {
			continue
		}
		if c.Accessories.Hat || c.Accessories.Headphones || !c.LightsOn || c.ApparelSimilar {
			continue
		}
		pool = append(pool, c)
	}
	type key struct {
		a person.Action
		s person.Speed
	}
	groups := map[key][]*dataset.Call{}
	for _, c := range pool {
		groups[key{c.Action, c.Speed}] = append(groups[key{c.Action, c.Speed}], c)
	}

	var rows []Fig8Row
	for _, a := range []person.Action{person.ActionArmWave, person.ActionClap} {
		for _, s := range []person.Speed{person.SpeedSlow, person.SpeedAverage, person.SpeedFast} {
			calls := cfg.limit(groups[key{a, s}])
			if len(calls) == 0 {
				continue
			}
			row := Fig8Row{Action: a, Speed: s}
			var rbrrSum, dispSum float64
			runs, err := cfg.runCalls(calls, cfg.Profile, nil)
			if err != nil {
				return nil, err
			}
			for _, run := range runs {
				rbrrSum += run.rec.RBRR()
				// One action cycle defines the event window.
				period := s.ActionPeriod(a)
				eventFrames := int(period * float64(run.call.FPS))
				if eventFrames < 2 {
					eventFrames = 2
				}
				if eventFrames > run.rendered.Raw.Len() {
					eventFrames = run.rendered.Raw.Len()
				}
				disp, err := run.rendered.Raw.Displacement(0, eventFrames, 12)
				if err != nil {
					return nil, err
				}
				dispSum += disp
			}
			n := float64(len(calls))
			row.MeanRBRR = rbrrSum / n
			row.DisplacementPct = dispSum / n
			row.ActionSpeedSec = s.ActionPeriod(a)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig8Table renders the speed sweep.
func Fig8Table(rows []Fig8Row) *Table {
	t := &Table{
		Title:   "Figure 8 — effect of action speed on background recovery",
		Columns: []string{"action", "speed", "action speed", "displacement", "mean RBRR"},
		Notes: []string{
			"paper: waving slow 35.9% > fast 33.7% > average 30.3%; clapping fast 20.8% < average 22.6%",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Action.String(), r.Speed.String(), secs(r.ActionSpeedSec),
			pct(r.DisplacementPct), pct(r.MeanRBRR),
		})
	}
	return t
}

// Fig9Row is one accessory-combination measurement.
type Fig9Row struct {
	Label    string
	MeanRBRR float64
}

// Fig9Accessories reproduces Figure 9: accessory combinations for one
// participant; the paper found no significant difference.
func Fig9Accessories(cfg Config) ([]Fig9Row, error) {
	groups := map[string][]*dataset.Call{}
	for _, c := range dataset.E1(cfg.Data) {
		if c.Participant != 1 || !c.LightsOn || c.Speed != person.SpeedAverage || c.ApparelSimilar {
			continue
		}
		groups[accessoryLabel(c.Accessories)] = append(groups[accessoryLabel(c.Accessories)], c)
	}
	var rows []Fig9Row
	for _, label := range []string{"none", "hat", "headphone", "hat+headphone"} {
		calls := cfg.limit(groups[label])
		if len(calls) == 0 {
			continue
		}
		runs, err := cfg.runCalls(calls, cfg.Profile, nil)
		if err != nil {
			return nil, err
		}
		sum := 0.0
		for _, run := range runs {
			sum += run.rec.RBRR()
		}
		rows = append(rows, Fig9Row{Label: label, MeanRBRR: sum / float64(len(runs))})
	}
	return rows, nil
}

func accessoryLabel(a person.Accessories) string {
	switch {
	case a.Hat && a.Headphones:
		return "hat+headphone"
	case a.Hat:
		return "hat"
	case a.Headphones:
		return "headphone"
	default:
		return "none"
	}
}

// Fig9Table renders the accessory comparison.
func Fig9Table(rows []Fig9Row) *Table {
	t := &Table{
		Title:   "Figure 9 — RBRR per accessory combination (participant 1)",
		Columns: []string{"accessories", "mean RBRR"},
		Notes:   []string{"paper found no significant accessory effect"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Label, pct(r.MeanRBRR)})
	}
	return t
}

// LightingResult reproduces Figures 10–11.
type LightingResult struct {
	// MeanOn/MeanOff are RBRR with lights on/off (paper: 39.6 vs 41.6).
	MeanOn, MeanOff float64
	// RegionJaccard is the mean Jaccard overlap of the recovered regions
	// between the two conditions — low overlap backs the paper's note
	// that the recovered *regions* differ, not just the rates.
	RegionJaccard float64
	Calls         int
}

// Fig10f11Lighting measures background recovery under the two lighting
// conditions for the matched participant/action pairs of E1.
func Fig10f11Lighting(cfg Config) (*LightingResult, error) {
	type key struct {
		p int
		a person.Action
	}
	on := map[key]*dataset.Call{}
	off := map[key]*dataset.Call{}
	for _, c := range dataset.E1(cfg.Data) {
		if c.Accessories.Hat || c.Accessories.Headphones || c.Speed != person.SpeedAverage || c.ApparelSimilar {
			continue
		}
		k := key{c.Participant, c.Action}
		if c.LightsOn {
			if _, dup := on[k]; !dup {
				on[k] = c
			}
		} else {
			off[k] = c
		}
	}
	var pairs [][2]*dataset.Call
	for k, offCall := range off {
		if onCall, ok := on[k]; ok {
			pairs = append(pairs, [2]*dataset.Call{onCall, offCall})
		}
	}
	sortPairs(pairs)
	if cfg.Limit > 0 && len(pairs) > cfg.Limit {
		pairs = pairs[:cfg.Limit]
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("experiments: lighting: no matched pairs")
	}

	res := &LightingResult{}
	var jSum float64
	for _, pair := range pairs {
		runOn, err := cfg.runCall(pair[0], cfg.Profile, nil)
		if err != nil {
			return nil, err
		}
		runOff, err := cfg.runCall(pair[1], cfg.Profile, nil)
		if err != nil {
			return nil, err
		}
		res.MeanOn += runOn.rec.RBRR()
		res.MeanOff += runOff.rec.RBRR()
		jSum += jaccard(runOn.rec.Coverage, runOff.rec.Coverage)
		res.Calls++
	}
	n := float64(res.Calls)
	res.MeanOn /= n
	res.MeanOff /= n
	res.RegionJaccard = jSum / n
	return res, nil
}

func jaccard(a, b *imagex.Mask) float64 {
	inter := a.Overlap(b)
	union := a.Count() + b.Count() - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// sortPairs orders pairs deterministically by the lights-on call ID.
func sortPairs(pairs [][2]*dataset.Call) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j][0].ID < pairs[j-1][0].ID; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

// Table renders the lighting comparison.
func (r *LightingResult) Table() *Table {
	return &Table{
		Title:   "Figures 10–11 — background recovery vs lighting",
		Columns: []string{"condition", "mean RBRR"},
		Rows: [][]string{
			{"lights ON", pct(r.MeanOn)},
			{"lights OFF", pct(r.MeanOff)},
		},
		Notes: []string{
			"paper: OFF 41.6% vs ON 39.6% — OFF leaks slightly more",
			fmt.Sprintf("recovered-region Jaccard overlap between conditions: %s (regions differ, as the paper observed)", num(r.RegionJaccard)),
		},
	}
}

// e1Base returns the 50 base E1 calls (lights on, average speed, no
// accessories, contrasting apparel, home background).
func e1Base(cfg Config) []*dataset.Call {
	var out []*dataset.Call
	seen := map[string]bool{}
	for _, c := range dataset.E1(cfg.Data) {
		if !c.LightsOn || c.Speed != person.SpeedAverage || c.ApparelSimilar ||
			c.Accessories.Hat || c.Accessories.Headphones {
			continue
		}
		k := fmt.Sprintf("%d/%s", c.Participant, c.Action)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}
