package experiments

import (
	"fmt"

	"github.com/bgbuster/bgbuster/internal/attacks/location"
	"github.com/bgbuster/bgbuster/internal/compositor"
	"github.com/bgbuster/bgbuster/internal/dataset"
	"github.com/bgbuster/bgbuster/internal/person"
)

// Group identifies the E2/E3 evaluation groups of Figures 12 and 15.
type Group int

// Evaluation groups.
const (
	GroupPassive Group = iota + 1
	GroupActive
	GroupWild
)

// String returns the group label.
func (g Group) String() string {
	switch g {
	case GroupPassive:
		return "passive (E2)"
	case GroupActive:
		return "active (E2)"
	case GroupWild:
		return "wild (E3)"
	default:
		return fmt.Sprintf("group(%d)", int(g))
	}
}

// groupCalls returns the calls of each evaluation group.
func groupCalls(cfg Config) map[Group][]*dataset.Call {
	out := map[Group][]*dataset.Call{}
	for _, c := range dataset.E2(cfg.Data) {
		if c.Engagement == person.EngagementActive {
			out[GroupActive] = append(out[GroupActive], c)
		} else {
			out[GroupPassive] = append(out[GroupPassive], c)
		}
	}
	out[GroupWild] = dataset.E3(cfg.Data)
	for g := range out {
		out[g] = cfg.limit(out[g])
	}
	return out
}

// Fig12aRow is one group's recovery summary.
type Fig12aRow struct {
	Group    Group
	MeanRBRR float64
	Calls    int
}

// Fig12aPassiveActiveWild reproduces Figure 12a: passive callers leak
// far less than active callers; wild videos sit in between (paper: 9.8 %
// / 30 % / 23.9 %).
func Fig12aPassiveActiveWild(cfg Config) ([]Fig12aRow, error) {
	runs, err := groupRuns(cfg, cfg.Profile, nil)
	if err != nil {
		return nil, err
	}
	var rows []Fig12aRow
	for _, g := range []Group{GroupPassive, GroupActive, GroupWild} {
		sum := 0.0
		for _, run := range runs[g] {
			sum += run.rec.RBRR()
		}
		n := len(runs[g])
		row := Fig12aRow{Group: g, Calls: n}
		if n > 0 {
			row.MeanRBRR = sum / float64(n)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// groupRuns executes the standard pipeline over every group call, in
// parallel across calls.
func groupRuns(cfg Config, profile compositor.Profile, transform compositor.VBTransform) (map[Group][]*callRun, error) {
	groups := groupCalls(cfg)
	out := map[Group][]*callRun{}
	for _, g := range []Group{GroupPassive, GroupActive, GroupWild} {
		runs, err := cfg.runCalls(groups[g], profile, transform)
		if err != nil {
			return nil, err
		}
		out[g] = runs
	}
	return out, nil
}

// Fig12aTable renders the group recovery summary.
func Fig12aTable(rows []Fig12aRow) *Table {
	t := &Table{
		Title:   "Figure 12a — background recovery in E2 and E3",
		Columns: []string{"group", "mean RBRR", "calls"},
		Notes:   []string{"paper: passive 9.8%, active 30%, wild 23.9%"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Group.String(), pct(r.MeanRBRR), count(r.Calls)})
	}
	return t
}

// TopKs are the paper's k values for location inference.
var TopKs = []int{1, 5, 10, 25}

// Fig12bRow is one group's location-inference success profile.
type Fig12bRow struct {
	Group Group
	// TopK maps k → % of the group's videos whose true background
	// ranked within the top k.
	TopK  map[int]float64
	Calls int
}

// Fig12bResult is the location-inference experiment output.
type Fig12bResult struct {
	Rows []Fig12bRow
	// RandomBaseline maps k → expected success % of random guessing.
	RandomBaseline map[int]float64
	DictSize       int
}

// Fig12bLocation reproduces Figure 12b: rank the reconstruction of every
// E2/E3 call against a dictionary of known backgrounds and report top-k
// success per group, against the random baseline.
func Fig12bLocation(cfg Config) (*Fig12bResult, error) {
	runs, err := groupRuns(cfg, cfg.Profile, nil)
	if err != nil {
		return nil, err
	}
	return locationFromRuns(cfg, runs)
}

// locationFromRuns ranks already-executed runs (shared with Fig15b).
func locationFromRuns(cfg Config, runs map[Group][]*callRun) (*Fig12bResult, error) {
	dict, err := buildDictionary(cfg, runs)
	if err != nil {
		return nil, err
	}
	res := &Fig12bResult{RandomBaseline: map[int]float64{}, DictSize: len(dict)}
	for _, k := range TopKs {
		p, err := location.RandomBaselineProb(len(dict), k)
		if err != nil {
			return nil, err
		}
		res.RandomBaseline[k] = p * 100
	}
	for _, g := range []Group{GroupPassive, GroupActive, GroupWild} {
		row := Fig12bRow{Group: g, TopK: map[int]float64{}}
		hits := map[int]int{}
		for _, run := range runs[g] {
			matches, err := location.Rank(run.rec, dict, location.DefaultOptions())
			if err != nil {
				return nil, err
			}
			for _, k := range TopKs {
				if location.TopK(matches, run.call.LocationName(), k) {
					hits[k]++
				}
			}
			row.Calls++
		}
		for _, k := range TopKs {
			if row.Calls > 0 {
				row.TopK[k] = 100 * float64(hits[k]) / float64(row.Calls)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// buildDictionary assembles the location dictionary: the true background
// of every evaluated call plus filler scenes up to cfg.DictSize (the
// paper populates 200 unique backgrounds from E1–E3).
func buildDictionary(cfg Config, runs map[Group][]*callRun) (location.Dictionary, error) {
	var dict location.Dictionary
	seen := map[string]bool{}
	add := func(name string, c *dataset.Call) {
		if seen[name] {
			return
		}
		seen[name] = true
		dict = append(dict, location.Entry{Name: name, Background: c.SceneFor().Base})
	}
	for _, g := range []Group{GroupPassive, GroupActive, GroupWild} {
		for _, run := range runs[g] {
			add(run.call.LocationName(), run.call)
		}
	}
	// Pad with E1 backgrounds first (the paper's dictionary spans E1–E3),
	// then synthetic fillers.
	for _, c := range dataset.E1(cfg.Data) {
		if len(dict) >= cfg.DictSize {
			break
		}
		add(c.LocationName(), c)
	}
	for i, sc := range dataset.FillerScenes(cfg.Data, maxInt(0, cfg.DictSize-len(dict))) {
		dict = append(dict, location.Entry{Name: fmt.Sprintf("filler-%d", i), Background: sc.Base})
	}
	if len(dict) == 0 {
		return nil, fmt.Errorf("experiments: empty location dictionary")
	}
	return dict, nil
}

// Table renders the location-inference profile.
func (r *Fig12bResult) Table(title string) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"group", "top-1", "top-5", "top-10", "top-25", "calls"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Group.String(),
			pct(row.TopK[1]), pct(row.TopK[5]), pct(row.TopK[10]), pct(row.TopK[25]),
			count(row.Calls),
		})
	}
	t.Rows = append(t.Rows, []string{
		"random baseline",
		pct(r.RandomBaseline[1]), pct(r.RandomBaseline[5]),
		pct(r.RandomBaseline[10]), pct(r.RandomBaseline[25]),
		"-",
	})
	t.Notes = append(t.Notes, fmt.Sprintf("dictionary size %d (paper: 200)", r.DictSize))
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
