package experiments

import (
	"github.com/bgbuster/bgbuster/internal/compositor"
	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/dataset"
	"github.com/bgbuster/bgbuster/internal/segment"
)

// AblationRow compares one variant of a design choice.
type AblationRow struct {
	Variant string
	// MeanClaimed / MeanTrue / MeanPrecision are averaged verification
	// metrics over the ablation calls.
	MeanClaimed   float64
	MeanTrue      float64
	MeanPrecision float64
	Calls         int
}

// ablate runs the E1 base calls (limited) once per variant.
func ablate(cfg Config, variants []string, run func(variant string, call *callTarget) (*callRun, error)) ([]AblationRow, error) {
	calls := cfg.limit(e1Base(cfg))
	var rows []AblationRow
	for _, variant := range variants {
		variant := variant
		row := AblationRow{Variant: variant}
		runs, err := cfg.parMap(calls, func(call *dataset.Call) (*callRun, error) {
			return run(variant, &callTarget{cfg: cfg, call: call})
		})
		if err != nil {
			return nil, err
		}
		for _, r := range runs {
			row.MeanClaimed += r.verify.ClaimedPct
			row.MeanTrue += r.verify.TruePct
			row.MeanPrecision += r.verify.Precision
			row.Calls++
		}
		if row.Calls > 0 {
			n := float64(row.Calls)
			row.MeanClaimed /= n
			row.MeanTrue /= n
			row.MeanPrecision /= n
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// callTarget bundles a call with its config for ablation closures.
type callTarget struct {
	cfg  Config
	call *dataset.Call
}

// AblationTemporalSmoothing isolates the matting's temporal-smoothing
// trail (DESIGN.md §6.6): with TrailKeep=0 the compositor stops leaking
// the background behind moving limbs and recovery drops.
func AblationTemporalSmoothing(cfg Config) ([]AblationRow, error) {
	return ablate(cfg, []string{"with-trail", "no-trail"}, func(variant string, t *callTarget) (*callRun, error) {
		profile := cfg.Profile
		if variant == "no-trail" {
			profile.Matting.TrailKeep = 0
		}
		return t.cfg.runCall(t.call, profile, nil)
	})
}

// AblationBoundaryError isolates boundary-blob misclassification
// (DESIGN.md §6.1): with LeakRate=0 only warm-up and trailing remain.
func AblationBoundaryError(cfg Config) ([]AblationRow, error) {
	return ablate(cfg, []string{"with-boundary-error", "no-boundary-error"}, func(variant string, t *callTarget) (*callRun, error) {
		profile := cfg.Profile
		if variant == "no-boundary-error" {
			profile.Matting.LeakRate = 0
		}
		return t.cfg.runCall(t.call, profile, nil)
	})
}

// AblationColorRefine isolates the paper's statistical color-based VCM
// correction (Section V-D): without it, leaked pixels swallowed by the
// segmenter's halo stay lost.
func AblationColorRefine(cfg Config) ([]AblationRow, error) {
	return ablate(cfg, []string{"with-color-refine", "no-color-refine"}, func(variant string, t *callTarget) (*callRun, error) {
		return t.cfg.runCallWith(t.call, cfg.Profile, nil, func(o *core.Options) {
			o.ColorRefine = variant == "with-color-refine"
		})
	})
}

// AblationSegmenter compares the attacker's offline segmenter against a
// perfect oracle: the gap bounds how much DeepLabv3 error costs the
// attack.
func AblationSegmenter(cfg Config) ([]AblationRow, error) {
	return ablate(cfg, []string{"offline-segmenter", "oracle-segmenter"}, func(variant string, t *callTarget) (*callRun, error) {
		return t.cfg.runCallWith(t.call, cfg.Profile, nil, func(o *core.Options) {
			if variant == "oracle-segmenter" {
				o.Segmenter = segment.OracleSegmenter{}
			}
		})
	})
}

// AblationBlendKind sweeps the compositor's blending function
// (Section III lists alpha, Gaussian and Laplacian blending).
func AblationBlendKind(cfg Config) ([]AblationRow, error) {
	kinds := map[string]compositor.BlendKind{
		"alpha":     compositor.BlendAlpha,
		"gaussian":  compositor.BlendGaussian,
		"laplacian": compositor.BlendLaplacian,
	}
	return ablate(cfg, []string{"alpha", "gaussian", "laplacian"}, func(variant string, t *callTarget) (*callRun, error) {
		profile := cfg.Profile
		profile.Blend = kinds[variant]
		return t.cfg.runCall(t.call, profile, nil)
	})
}

// AblationTable renders ablation rows.
func AblationTable(title string, rows []AblationRow) *Table {
	t := &Table{
		Title:   "Ablation — " + title,
		Columns: []string{"variant", "claimed RBRR", "verified recovery", "precision", "calls"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Variant, pct(r.MeanClaimed), pct(r.MeanTrue), num(r.MeanPrecision), count(r.Calls),
		})
	}
	return t
}
