package experiments

import (
	"fmt"

	"github.com/bgbuster/bgbuster/internal/person"
	"github.com/bgbuster/bgbuster/internal/plot"
)

// Chart builders: render experiment rows as the paper's bar-chart
// figures. cmd/experiments -plots writes them as PNGs.

// Fig5Chart renders the initial-leakage decay.
func Fig5Chart(rows []Fig5Row) *plot.BarChart {
	c := &plot.BarChart{Title: "Fig 5: leaked area in initial frames", YLabel: "leak %"}
	s := plot.Series{Name: "leak"}
	for _, r := range rows {
		c.XLabels = append(c.XLabels, fmt.Sprintf("%d", r.Frame))
		s.Values = append(s.Values, r.LeakPct)
	}
	c.Series = []plot.Series{s}
	return c
}

// Fig7Chart renders per-action recovery (the paper's Figure 7 layout:
// one bar group per action, one series per participant).
func Fig7Chart(rows []Fig7Row) *plot.BarChart {
	c := &plot.BarChart{Title: "Fig 7: RBRR per action", YLabel: "RBRR %", YMax: 100}
	participants := map[int]bool{}
	for _, r := range rows {
		for p := range r.PerParticipant {
			participants[p] = true
		}
	}
	var plist []int
	for p := range participants {
		plist = append(plist, p)
	}
	sortInts(plist)
	series := make([]plot.Series, len(plist))
	for i, p := range plist {
		series[i] = plot.Series{Name: fmt.Sprintf("p%d", p)}
	}
	for _, r := range rows {
		c.XLabels = append(c.XLabels, shortAction(r.Action))
		for i, p := range plist {
			series[i].Values = append(series[i].Values, r.PerParticipant[p])
		}
	}
	c.Series = series
	return c
}

// Fig8Chart renders the speed sweep (grouped by action, one series per
// speed class, as in the paper's Figure 8).
func Fig8Chart(rows []Fig8Row) *plot.BarChart {
	c := &plot.BarChart{Title: "Fig 8: RBRR vs action speed", YLabel: "RBRR %", YMax: 100}
	actions := []person.Action{person.ActionArmWave, person.ActionClap}
	speeds := []person.Speed{person.SpeedSlow, person.SpeedAverage, person.SpeedFast}
	for _, a := range actions {
		c.XLabels = append(c.XLabels, shortAction(a))
	}
	for _, s := range speeds {
		serie := plot.Series{Name: s.String()}
		for _, a := range actions {
			v := 0.0
			for _, r := range rows {
				if r.Action == a && r.Speed == s {
					v = r.MeanRBRR
				}
			}
			serie.Values = append(serie.Values, v)
		}
		c.Series = append(c.Series, serie)
	}
	return c
}

// Fig9Chart renders the accessory comparison.
func Fig9Chart(rows []Fig9Row) *plot.BarChart {
	c := &plot.BarChart{Title: "Fig 9: RBRR per accessory", YLabel: "RBRR %", YMax: 100}
	s := plot.Series{Name: "rbrr"}
	for _, r := range rows {
		c.XLabels = append(c.XLabels, r.Label)
		s.Values = append(s.Values, r.MeanRBRR)
	}
	c.Series = []plot.Series{s}
	return c
}

// Fig12aChart renders group recovery.
func Fig12aChart(rows []Fig12aRow) *plot.BarChart {
	c := &plot.BarChart{Title: "Fig 12a: RBRR in E2/E3", YLabel: "RBRR %", YMax: 100}
	s := plot.Series{Name: "rbrr"}
	for _, r := range rows {
		c.XLabels = append(c.XLabels, shortGroup(r.Group))
		s.Values = append(s.Values, r.MeanRBRR)
	}
	c.Series = []plot.Series{s}
	return c
}

// LocationChart renders a top-k success profile (Figures 12b and 15b):
// one bar group per caller group plus the random baseline, one series
// per k.
func LocationChart(res *Fig12bResult, title string) *plot.BarChart {
	c := &plot.BarChart{Title: title, YLabel: "videos %", YMax: 100}
	for _, r := range res.Rows {
		c.XLabels = append(c.XLabels, shortGroup(r.Group))
	}
	c.XLabels = append(c.XLabels, "random")
	for _, k := range TopKs {
		s := plot.Series{Name: fmt.Sprintf("top-%d", k)}
		for _, r := range res.Rows {
			s.Values = append(s.Values, r.TopK[k])
		}
		s.Values = append(s.Values, res.RandomBaseline[k])
		c.Series = append(c.Series, s)
	}
	return c
}

// Fig15aChart renders mitigated claimed-vs-verified recovery.
func Fig15aChart(rows []Fig15aRow) *plot.BarChart {
	c := &plot.BarChart{Title: "Fig 15a: RBRR under dynamic VB", YLabel: "RBRR %", YMax: 100}
	claimed := plot.Series{Name: "claimed"}
	verified := plot.Series{Name: "verified"}
	for _, r := range rows {
		c.XLabels = append(c.XLabels, shortGroup(r.Group))
		claimed.Values = append(claimed.Values, r.ClaimedRBRR)
		verified.Values = append(verified.Values, r.TruePct)
	}
	c.Series = []plot.Series{claimed, verified}
	return c
}

// HeuristicsChart renders the Section IX-B heuristic comparison.
func HeuristicsChart(rows []HeuristicRow) *plot.BarChart {
	c := &plot.BarChart{Title: "IX-B heuristics: verified recovery", YLabel: "recov %", YMax: 100}
	s := plot.Series{Name: "verified"}
	for _, r := range rows {
		c.XLabels = append(c.XLabels, r.Heuristic)
		s.Values = append(s.Values, r.VerifiedPct)
	}
	c.Series = []plot.Series{s}
	return c
}

func shortAction(a person.Action) string {
	switch a {
	case person.ActionLeanForward:
		return "leanF"
	case person.ActionLeanBackward:
		return "leanB"
	case person.ActionArmWave:
		return "wave"
	case person.ActionRotate:
		return "rotate"
	case person.ActionClap:
		return "clap"
	case person.ActionStretch:
		return "stretch"
	case person.ActionType:
		return "type"
	case person.ActionDrink:
		return "drink"
	case person.ActionEnterRoom:
		return "enter"
	case person.ActionExitRoom:
		return "exit"
	default:
		return a.String()
	}
}

func shortGroup(g Group) string {
	switch g {
	case GroupPassive:
		return "passive"
	case GroupActive:
		return "active"
	case GroupWild:
		return "wild"
	default:
		return g.String()
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
