package experiments

import (
	"fmt"

	"github.com/bgbuster/bgbuster/internal/attacks/location"
	"github.com/bgbuster/bgbuster/internal/attacks/textinfer"
	"github.com/bgbuster/bgbuster/internal/compositor"
	"github.com/bgbuster/bgbuster/internal/scene"
)

// SoftwareRow summarises one compositor's leakage on E3.
type SoftwareRow struct {
	Software string
	// MeanRBRR on the wild dataset (paper: Zoom 23.9 %, Skype 19.4 %).
	MeanRBRR float64
	// Top10 is the location-inference top-10 success on passive E2 calls
	// (paper: Zoom 80 %, Skype 76 %).
	Top10 float64
	// TextRecovered counts text-bearing wild calls whose sticky-note
	// text leaked (the paper's sticky note leaked from Zoom, not Skype).
	TextRecovered, TextTotal int
}

// SkypeVsZoomTable reproduces Section VIII-E: the same E3 dataset
// composed by the Zoom-like and Skype-like profiles.
func SkypeVsZoomTable(cfg Config) ([]SoftwareRow, error) {
	var rows []SoftwareRow
	for _, profile := range []compositor.Profile{compositor.ProfileZoom(), compositor.ProfileSkype()} {
		sub := cfg
		sub.Profile = profile
		runs, err := groupRuns(sub, profile, nil)
		if err != nil {
			return nil, err
		}
		row := SoftwareRow{Software: profile.Name}

		// E3 recovery.
		sum, n := 0.0, 0
		for _, run := range runs[GroupWild] {
			sum += run.rec.RBRR()
			n++
			truth := ""
			for _, o := range run.rendered.Scene.Find(scene.KindStickyNote) {
				if o.Text != "" {
					truth = o.Text
					break
				}
			}
			if truth == "" {
				continue
			}
			row.TextTotal++
			for _, tr := range textinfer.Infer(run.rec, textinfer.DefaultOptions()) {
				if textMatchFrac(tr.Text, truth) >= 0.5 {
					row.TextRecovered++
					break
				}
			}
		}
		if n > 0 {
			row.MeanRBRR = sum / float64(n)
		}

		// Passive-call location inference, top-10.
		dict, err := buildDictionary(sub, runs)
		if err != nil {
			return nil, err
		}
		hits, total := 0, 0
		for _, run := range runs[GroupPassive] {
			matches, err := location.Rank(run.rec, dict, location.DefaultOptions())
			if err != nil {
				return nil, err
			}
			if location.TopK(matches, run.call.LocationName(), 10) {
				hits++
			}
			total++
		}
		if total > 0 {
			row.Top10 = 100 * float64(hits) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SoftwareTable renders the comparison.
func SoftwareTable(rows []SoftwareRow) *Table {
	t := &Table{
		Title:   "Section VIII-E — Zoom-like vs Skype-like compositors",
		Columns: []string{"software", "E3 mean RBRR", "passive top-10", "text leaked"},
		Notes: []string{
			"paper: Zoom 23.9% vs Skype 19.4% RBRR on E3; Zoom 80% vs Skype 76% passive top-10",
			"paper: the sticky note leaked from the Zoom call but not the Skype call",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Software, pct(r.MeanRBRR), pct(r.Top10),
			fmt.Sprintf("%d/%d", r.TextRecovered, r.TextTotal),
		})
	}
	return t
}
