package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/compositor"
	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/dataset"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/metrics"
	"github.com/bgbuster/bgbuster/internal/mitigate"
	"github.com/bgbuster/bgbuster/internal/person"
	"github.com/bgbuster/bgbuster/internal/segment"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// HeuristicRow evaluates one of the paper's Section IX-B mitigation
// heuristics. The paper proposes but does not quantify them; this
// experiment is a reproduction extension.
type HeuristicRow struct {
	Heuristic string
	// ClaimedRBRR / VerifiedPct / Precision follow the usual semantics.
	ClaimedRBRR float64
	VerifiedPct float64
	Precision   float64
	// QualityPSNR is the viewer-perceived playback quality in dB
	// (+Inf when the heuristic does not degrade the stream; rendered as
	// "lossless").
	QualityPSNR float64
	Calls       int
}

// MitigationHeuristicsTable runs the attack against active E2 callers
// protected by each Section IX-B heuristic:
//
//   - baseline: no mitigation;
//   - random-vb: a never-seen-before virtual image per call, forcing the
//     attacker onto the unknown-derivation path;
//   - frame-drop-N: only every Nth frame is shared; quality is priced
//     with PlaybackPSNR;
//   - deepfake-replay: frames after the first are synthesised from the
//     first blended frame (First Order Motion stand-in), so later real
//     frames never leave the machine.
func MitigationHeuristicsTable(cfg Config) ([]HeuristicRow, error) {
	var calls []*dataset.Call
	for _, c := range dataset.E2(cfg.Data) {
		if c.Engagement == person.EngagementActive {
			calls = append(calls, c)
		}
	}
	calls = cfg.limit(calls)
	if len(calls) == 0 {
		return nil, fmt.Errorf("experiments: heuristics: no active calls")
	}

	heuristics := []string{"baseline", "random-vb", "frame-drop-2", "frame-drop-4", "deepfake-replay"}
	var rows []HeuristicRow
	for _, h := range heuristics {
		h := h
		runs, err := cfg.parMap(calls, func(call *dataset.Call) (*callRun, error) {
			return cfg.runHeuristic(call, h)
		})
		if err != nil {
			return nil, err
		}
		row := HeuristicRow{Heuristic: h, QualityPSNR: math.Inf(1)}
		var qSum float64
		var qN int
		for _, run := range runs {
			row.ClaimedRBRR += run.verify.ClaimedPct
			row.VerifiedPct += run.verify.TruePct
			row.Precision += run.verify.Precision
			row.Calls++
			if q, ok := run.quality(); ok {
				qSum += q
				qN++
			}
		}
		n := float64(row.Calls)
		row.ClaimedRBRR /= n
		row.VerifiedPct /= n
		row.Precision /= n
		if qN > 0 {
			row.QualityPSNR = qSum / float64(qN)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// quality returns the playback PSNR recorded for the run, if any.
func (r *callRun) quality() (float64, bool) {
	if r.playbackPSNR == 0 {
		return 0, false
	}
	return r.playbackPSNR, true
}

// runHeuristic composes and attacks one call under the named heuristic.
func (c Config) runHeuristic(call *dataset.Call, heuristic string) (*callRun, error) {
	rendered, err := call.Render()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", call.ID, err)
	}
	rng := rand.New(rand.NewSource(c.callSeed(call.ID + "/" + heuristic)))
	w, h := rendered.Raw.Size()

	profile := c.Profile
	if call.Camera.MattingErrScale > 0 {
		if profile.Matting.ErrScale == 0 {
			profile.Matting.ErrScale = 1
		}
		profile.Matting.ErrScale *= call.Camera.MattingErrScale
	}

	// Virtual source per heuristic.
	var virtual compositor.VirtualSource = compositor.StaticImage{Img: compositor.BuiltinImage(c.vbNameFor(call.ID), w, h)}
	if heuristic == "random-vb" {
		virtual = compositor.StaticImage{Img: mitigate.RandomVB(w, h, rng)}
	}

	composed, err := compositor.Compose(rendered.Raw, rendered.Silhouettes, compositor.Options{
		Profile: profile,
		Virtual: virtual,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", call.ID, err)
	}

	// What the adversary receives, per heuristic.
	shared := composed.Blended
	oracles := rendered.Silhouettes
	playback := 0.0
	switch heuristic {
	case "frame-drop-2", "frame-drop-4":
		keep := 2
		if heuristic == "frame-drop-4" {
			keep = 4
		}
		shared = mitigate.FrameDrop(composed.Blended, keep)
		oracles = dropEvery(rendered.Silhouettes, keep)
		playback, err = vidstream.PlaybackPSNR(composed.Blended, keep)
		if err != nil {
			return nil, err
		}
	case "deepfake-replay":
		shared, err = mitigate.DeepfakeReplay(composed.Blended, rng)
		if err != nil {
			return nil, err
		}
		// The animated frames all show the caller roughly where frame 1
		// had them; the attacker's segmenter sees that silhouette.
		oracles = make([]*imagex.Mask, shared.Len())
		for i := range oracles {
			oracles[i] = rendered.Silhouettes[0]
		}
	}

	opts := core.DefaultOptions()
	if heuristic == "random-vb" {
		// A fresh random VB cannot be in any dictionary.
		opts.Mode = core.VBUnknownImage
	} else {
		opts.KnownImages = compositor.BuiltinImages(w, h)
	}
	opts.Segmenter = segment.NewOfflineSegmenter(rng)
	rec, err := core.Reconstruct(shared, oracles, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", call.ID, err)
	}
	ver, err := metrics.Verify(rec, rendered.TrueBackground, 30)
	if err != nil {
		return nil, err
	}
	return &callRun{
		call: call, rendered: rendered, composed: composed,
		rec: rec, verify: ver, playbackPSNR: playback,
	}, nil
}

func dropEvery[T any](xs []T, keepEvery int) []T {
	if keepEvery <= 1 {
		return xs
	}
	var out []T
	for i := 0; i < len(xs); i += keepEvery {
		out = append(out, xs[i])
	}
	return out
}

// HeuristicsTable renders the rows.
func HeuristicsTable(rows []HeuristicRow) *Table {
	t := &Table{
		Title:   "Section IX-B — mitigation heuristics (extension: the paper proposes, this measures)",
		Columns: []string{"heuristic", "claimed RBRR", "verified recovery", "precision", "playback PSNR", "calls"},
	}
	for _, r := range rows {
		q := "lossless"
		if !math.IsInf(r.QualityPSNR, 1) {
			q = fmt.Sprintf("%.1f dB", r.QualityPSNR)
		}
		t.Rows = append(t.Rows, []string{
			r.Heuristic, pct(r.ClaimedRBRR), pct(r.VerifiedPct), num(r.Precision), q, count(r.Calls),
		})
	}
	t.Notes = append(t.Notes,
		"deepfake replay transmits no real frame after the first: verified recovery collapses to frame-1 leakage",
		"frame dropping trades verified recovery against playback quality")
	return t
}
