package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/bgbuster/bgbuster/internal/attacks/objdetect"
	"github.com/bgbuster/bgbuster/internal/person"
	"github.com/bgbuster/bgbuster/internal/plot"
)

// The experiment tests run on QuickConfig (small frames, tight limits)
// and assert the qualitative shapes the paper reports, not absolute
// numbers — absolute calibration is checked by the full-scale suite in
// cmd/experiments and recorded in EXPERIMENTS.md.

func TestVBMRTableShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 1
	res, err := VBMRTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 { // (3 images + 2 videos) × (known, unknown)
		t.Fatalf("got %d rows, want 10", len(res.Rows))
	}
	if res.KnownMean < 90 {
		t.Fatalf("known VBMR = %.1f%%, want ≥ 90%%", res.KnownMean)
	}
	if res.KnownMean <= res.UnknownMean {
		t.Fatalf("known (%.1f%%) must beat unknown (%.1f%%)", res.KnownMean, res.UnknownMean)
	}
	if !strings.Contains(res.Table().String(), "VBMR") {
		t.Fatal("table render broken")
	}
}

func TestPhiCalibration(t *testing.T) {
	cfg := QuickConfig()
	rows, err := PhiCalibration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.EstimatedPhi < r.TrueRadius-1 || r.EstimatedPhi > r.TrueRadius+2 {
			t.Errorf("%s: estimated φ %d vs true %d", r.Profile, r.EstimatedPhi, r.TrueRadius)
		}
	}
	_ = PhiTable(rows).String()
}

func TestFig5InitialLeakageDecays(t *testing.T) {
	cfg := QuickConfig()
	rows, err := Fig5InitialLeakage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	first := rows[0].LeakPct
	last := rows[len(rows)-1].LeakPct
	if first <= last {
		t.Fatalf("initial leakage must decay: frame1 %.2f%% vs frame%d %.2f%%", first, len(rows), last)
	}
	_ = Fig5Table(rows).String()
}

func TestFig7EnterExitBeatsTyping(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 2
	rows, err := Fig7ActionRBRR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d actions", len(rows))
	}
	byAction := map[person.Action]float64{}
	for _, r := range rows {
		byAction[r.Action] = r.MeanRBRR
	}
	enterExit := (byAction[person.ActionEnterRoom] + byAction[person.ActionExitRoom]) / 2
	if enterExit <= byAction[person.ActionType] {
		t.Fatalf("enter/exit RBRR (%.1f%%) must beat typing (%.1f%%)",
			enterExit, byAction[person.ActionType])
	}
	_ = Fig7Table(rows).String()
}

func TestFig8Shape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 2
	rows, err := Fig8ActionSpeed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (2 actions × 3 speeds)", len(rows))
	}
	get := func(a person.Action, s person.Speed) Fig8Row {
		for _, r := range rows {
			if r.Action == a && r.Speed == s {
				return r
			}
		}
		t.Fatalf("missing row %v/%v", a, s)
		return Fig8Row{}
	}
	// Slow actions must displace more than fast ones (paper in-text).
	if get(person.ActionArmWave, person.SpeedSlow).DisplacementPct <= get(person.ActionArmWave, person.SpeedFast).DisplacementPct {
		t.Error("slow waving must displace more than fast waving")
	}
	// Action-speed values are the paper's measured periods.
	if got := get(person.ActionClap, person.SpeedFast).ActionSpeedSec; got != 0.11 {
		t.Errorf("fast clap period = %v, want 0.11", got)
	}
	_ = Fig8Table(rows).String()
}

func TestFig9Runs(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 2
	rows, err := Fig9Accessories(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d accessory rows, want 4", len(rows))
	}
	_ = Fig9Table(rows).String()
}

func TestFig10f11LightingShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 4
	res, err := Fig10f11Lighting(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls == 0 {
		t.Fatal("no matched pairs")
	}
	if res.RegionJaccard < 0 || res.RegionJaccard > 1 {
		t.Fatalf("jaccard = %v", res.RegionJaccard)
	}
	_ = res.Table().String()
}

func TestFig12aActiveBeatsPassive(t *testing.T) {
	cfg := QuickConfig()
	rows, err := Fig12aPassiveActiveWild(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[Group]float64{}
	for _, r := range rows {
		vals[r.Group] = r.MeanRBRR
	}
	if vals[GroupActive] <= vals[GroupPassive] {
		t.Fatalf("active (%.1f%%) must beat passive (%.1f%%)", vals[GroupActive], vals[GroupPassive])
	}
	_ = Fig12aTable(rows).String()
}

func TestFig12bRunsAndBeatsRandom(t *testing.T) {
	cfg := QuickConfig()
	res, err := Fig12bLocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d groups", len(res.Rows))
	}
	// The active group must beat the random baseline at top-5.
	for _, r := range res.Rows {
		if r.Group == GroupActive && r.TopK[5] <= res.RandomBaseline[5] {
			t.Fatalf("active top-5 (%.1f%%) must beat random (%.1f%%)", r.TopK[5], res.RandomBaseline[5])
		}
	}
	_ = res.Table("Figure 12b").String()
}

func TestObjectTrackingRuns(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 2
	res, err := ObjectTrackingTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objects == 0 {
		t.Fatal("no tracking decisions made")
	}
	if res.Accuracy < 50 {
		t.Fatalf("tracking accuracy %.1f%% implausibly low", res.Accuracy)
	}
	_ = res.Table().String()
}

func TestGenericDetectionRuns(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 2
	res, err := GenericDetectionTable(cfg, objdetect.ModelRetinaNetStyle)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls == 0 {
		t.Fatal("no calls evaluated")
	}
	_ = res.Table().String()
}

func TestSkypeLeaksLessThanZoomE3(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 4
	rows, err := SkypeVsZoomTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d software rows", len(rows))
	}
	var zoom, skype SoftwareRow
	for _, r := range rows {
		if r.Software == "zoom" {
			zoom = r
		} else {
			skype = r
		}
	}
	if skype.MeanRBRR >= zoom.MeanRBRR {
		t.Fatalf("skype RBRR (%.1f%%) must be below zoom (%.1f%%)", skype.MeanRBRR, zoom.MeanRBRR)
	}
	_ = SoftwareTable(rows).String()
}

func TestFig15aMitigationInflatesClaims(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 2

	base, err := Fig12aPassiveActiveWild(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mit, err := Fig15aMitigationRBRR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseVals := map[Group]float64{}
	for _, r := range base {
		baseVals[r.Group] = r.MeanRBRR
	}
	for _, r := range mit {
		if r.ClaimedRBRR <= baseVals[r.Group] {
			t.Fatalf("%v: mitigated claimed RBRR (%.1f%%) must exceed unmitigated (%.1f%%)",
				r.Group, r.ClaimedRBRR, baseVals[r.Group])
		}
		if r.Precision > 0.5 {
			t.Fatalf("%v: mitigated precision %.2f should collapse below 0.5", r.Group, r.Precision)
		}
	}
	_ = Fig15aTable(mit).String()
}

func TestFig15bMitigationHurtsLocation(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 3
	base, err := Fig12bLocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mit, err := Fig15bMitigationLocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	top25 := func(res *Fig12bResult, g Group) float64 {
		for _, r := range res.Rows {
			if r.Group == g {
				return r.TopK[25]
			}
		}
		return 0
	}
	// Averaged over groups, mitigation must not improve the attack.
	baseSum := top25(base, GroupPassive) + top25(base, GroupActive) + top25(base, GroupWild)
	mitSum := top25(mit, GroupPassive) + top25(mit, GroupActive) + top25(mit, GroupWild)
	if mitSum > baseSum {
		t.Fatalf("mitigated top-25 sum (%.1f) must not beat unmitigated (%.1f)", mitSum, baseSum)
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 2
	type fn func(Config) ([]AblationRow, error)
	for name, f := range map[string]fn{
		"trail":     AblationTemporalSmoothing,
		"boundary":  AblationBoundaryError,
		"color":     AblationColorRefine,
		"segmenter": AblationSegmenter,
		"blend":     AblationBlendKind,
	} {
		rows, err := f(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) < 2 {
			t.Fatalf("%s: %d rows", name, len(rows))
		}
		_ = AblationTable(name, rows).String()
	}
}

func TestAblationTrailAddsClaimedRecovery(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 5
	trail, err := AblationTemporalSmoothing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The suite is fully seeded, so this ordering is deterministic.
	if trail[0].MeanClaimed <= trail[1].MeanClaimed {
		t.Fatalf("temporal trail must add claimed recovery: with %.1f%% vs without %.1f%%",
			trail[0].MeanClaimed, trail[1].MeanClaimed)
	}
}

func TestAblationBoundaryErrorDrives(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 5
	rows, err := AblationBoundaryError(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MeanClaimed <= rows[1].MeanClaimed {
		t.Fatalf("boundary error must add claimed recovery: with %.1f%% vs without %.1f%%",
			rows[0].MeanClaimed, rows[1].MeanClaimed)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "y"}, {"wider-cell", "z"}},
		Notes:   []string{"a note"},
	}
	out := tbl.String()
	for _, want := range []string{"== demo ==", "long-column", "wider-cell", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestQuickConfigLimits(t *testing.T) {
	cfg := QuickConfig()
	if cfg.Limit == 0 || cfg.DictSize == 0 {
		t.Fatal("quick config must cap work")
	}
}

func TestMitigationHeuristicsShape(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 2
	rows, err := MitigationHeuristicsTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d heuristic rows, want 5", len(rows))
	}
	get := func(name string) HeuristicRow {
		for _, r := range rows {
			if r.Heuristic == name {
				return r
			}
		}
		t.Fatalf("missing heuristic %q", name)
		return HeuristicRow{}
	}
	base := get("baseline")
	// Deepfake replay must slash verified recovery to the frame-1 leak.
	if df := get("deepfake-replay"); df.VerifiedPct >= base.VerifiedPct/2 {
		t.Fatalf("deepfake verified %.1f%% vs baseline %.1f%%: must collapse", df.VerifiedPct, base.VerifiedPct)
	}
	// Frame dropping must reduce verified recovery monotonically with
	// the drop factor, and price quality finitely.
	d2, d4 := get("frame-drop-2"), get("frame-drop-4")
	if d4.VerifiedPct > d2.VerifiedPct || d2.VerifiedPct > base.VerifiedPct {
		t.Fatalf("frame-drop recovery not monotone: base %.1f, drop2 %.1f, drop4 %.1f",
			base.VerifiedPct, d2.VerifiedPct, d4.VerifiedPct)
	}
	if math.IsInf(d2.QualityPSNR, 1) || d4.QualityPSNR > d2.QualityPSNR {
		t.Fatalf("frame-drop quality wrong: drop2 %.1f, drop4 %.1f", d2.QualityPSNR, d4.QualityPSNR)
	}
	// Random VB forces unknown derivation; it must not help the attacker
	// beyond baseline.
	if rv := get("random-vb"); rv.VerifiedPct > base.VerifiedPct*1.25 {
		t.Fatalf("random VB increased verified recovery: %.1f vs %.1f", rv.VerifiedPct, base.VerifiedPct)
	}
	_ = HeuristicsTable(rows).String()
}

func TestChartsBuildAndValidate(t *testing.T) {
	cfg := QuickConfig()
	cfg.Limit = 1

	fig5, err := Fig5InitialLeakage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig7, err := Fig7ActionRBRR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig8, err := Fig8ActionSpeed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig9, err := Fig9Accessories(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig12a, err := Fig12aPassiveActiveWild(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig12b, err := Fig12bLocation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig15a, err := Fig15aMitigationRBRR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	heur, err := MitigationHeuristicsTable(cfg)
	if err != nil {
		t.Fatal(err)
	}

	charts := []*plot.BarChart{
		Fig5Chart(fig5), Fig7Chart(fig7), Fig8Chart(fig8), Fig9Chart(fig9),
		Fig12aChart(fig12a), LocationChart(fig12b, "Fig 12b"),
		Fig15aChart(fig15a), HeuristicsChart(heur),
	}
	for i, c := range charts {
		if err := c.Validate(); err != nil {
			t.Fatalf("chart %d: %v", i, err)
		}
		if _, err := c.Render(360, 220); err != nil {
			t.Fatalf("chart %d render: %v", i, err)
		}
	}
}
