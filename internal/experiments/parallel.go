package experiments

import (
	"runtime"
	"sync"

	"github.com/bgbuster/bgbuster/internal/compositor"
	"github.com/bgbuster/bgbuster/internal/dataset"
)

// parMap runs f over every call on up to Config.Workers goroutines
// (GOMAXPROCS when zero) and returns results in call order. Each call's
// pipeline is independently seeded, so parallel execution is
// bit-identical to serial execution. Errors are recorded per call index
// and the error of the lowest-indexed failing call is returned, so the
// reported failure does not depend on goroutine scheduling.
func (c Config) parMap(calls []*dataset.Call, f func(*dataset.Call) (*callRun, error)) ([]*callRun, error) {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(calls) {
		workers = len(calls)
	}
	if workers <= 1 {
		out := make([]*callRun, 0, len(calls))
		for _, call := range calls {
			r, err := f(call)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return out, nil
	}

	type slot struct {
		idx  int
		call *dataset.Call
	}
	jobs := make(chan slot)
	results := make([]*callRun, len(calls))
	errs := make([]error, len(calls))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r, err := f(j.call)
				if err != nil {
					errs[j.idx] = err
					continue
				}
				results[j.idx] = r
			}
		}()
	}
	for i, call := range calls {
		jobs <- slot{idx: i, call: call}
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runCalls is the common parallel pipeline helper.
func (c Config) runCalls(calls []*dataset.Call, profile compositor.Profile, transform compositor.VBTransform) ([]*callRun, error) {
	return c.parMap(calls, func(call *dataset.Call) (*callRun, error) {
		return c.runCall(call, profile, transform)
	})
}
