package experiments

import (
	"errors"
	"fmt"
	"testing"

	"github.com/bgbuster/bgbuster/internal/dataset"
)

func TestParMapOrderAndSerialFallback(t *testing.T) {
	calls := make([]*dataset.Call, 5)
	for i := range calls {
		calls[i] = &dataset.Call{SceneSeed: int64(i)}
	}
	for _, workers := range []int{1, 3} {
		cfg := Config{Workers: workers}
		runs, err := cfg.parMap(calls, func(c *dataset.Call) (*callRun, error) {
			return &callRun{call: c}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) != len(calls) {
			t.Fatalf("workers=%d: got %d runs, want %d", workers, len(runs), len(calls))
		}
		for i, r := range runs {
			if r.call != calls[i] {
				t.Fatalf("workers=%d: run %d out of order", workers, i)
			}
		}
	}
}

func TestParMapReturnsLowestIndexedError(t *testing.T) {
	const n = 32
	calls := make([]*dataset.Call, n)
	for i := range calls {
		calls[i] = &dataset.Call{SceneSeed: int64(i)}
	}
	// Calls at index 7 and above all fail; regardless of goroutine
	// scheduling the reported error must belong to index 7.
	want := errors.New("call 7 failed")
	for trial := 0; trial < 20; trial++ {
		cfg := Config{Workers: 8}
		_, err := cfg.parMap(calls, func(c *dataset.Call) (*callRun, error) {
			if c.SceneSeed >= 7 {
				if c.SceneSeed == 7 {
					return nil, want
				}
				return nil, fmt.Errorf("call %d failed", c.SceneSeed)
			}
			return &callRun{call: c}, nil
		})
		if !errors.Is(err, want) {
			t.Fatalf("trial %d: err = %v, want lowest-indexed %v", trial, err, want)
		}
	}
}
