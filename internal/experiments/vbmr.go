package experiments

import (
	"fmt"
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/compositor"
	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/dataset"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/person"
	"github.com/bgbuster/bgbuster/internal/scene"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// VBMRRow is one virtual-background masking measurement.
type VBMRRow struct {
	Mode  core.VBMode
	VB    string
	VBMR  float64
	Calls int
}

// VBMRResult reproduces Section VIII-B: VBMR with three virtual images
// and two virtual videos, with the ground-truth background included in
// the candidate dataset (known) and excluded (unknown derivation).
type VBMRResult struct {
	Rows []VBMRRow
	// KnownMean / UnknownMean aggregate the known and unknown rows
	// (paper: ≈98.7 % and ≈92.6 %).
	KnownMean   float64
	UnknownMean float64
}

// vbmrImages are the paper's "three different virtual images".
var vbmrImages = []string{"beach", "office", "space"}

// vbmrVideos are the paper's "two virtual videos".
var vbmrVideos = []string{"waves", "aurora"}

// VBMRTable measures VBMR across the four VB-acquisition modes on
// E2-length calls.
func VBMRTable(cfg Config) (*VBMRResult, error) {
	// One active E2 call per participant keeps the 10-setting sweep
	// tractable; active callers match the paper's 10-minute call
	// footage, whose motion keeps the caller-adjacent zone unstable.
	var calls []*dataset.Call
	for i, c := range dataset.E2(cfg.Data) {
		if i%5 == 4 {
			calls = append(calls, c)
		}
	}
	calls = cfg.limit(calls)
	res := &VBMRResult{}

	knownImgs := map[string]*imagex.Image{}
	for _, n := range vbmrImages {
		knownImgs[n] = compositor.BuiltinImage(n, cfg.Data.W, cfg.Data.H)
	}
	const vidPeriod = 12
	knownVids := map[string][]*imagex.Image{}
	for _, n := range vbmrVideos {
		knownVids[n] = compositor.BuiltinVideo(n, cfg.Data.W, cfg.Data.H, vidPeriod).Frames
	}

	type setting struct {
		mode core.VBMode
		vb   string
	}
	var settings []setting
	for _, n := range vbmrImages {
		settings = append(settings,
			setting{core.VBKnownImage, n}, setting{core.VBUnknownImage, n})
	}
	for _, n := range vbmrVideos {
		settings = append(settings,
			setting{core.VBKnownVideo, n}, setting{core.VBUnknownVideo, n})
	}

	var knownSum, knownN, unknownSum, unknownN float64
	for _, st := range settings {
		var sum float64
		var n int
		for _, call := range calls {
			v, err := vbmrOne(cfg, call, st.mode, st.vb, knownImgs, knownVids, vidPeriod)
			if err != nil {
				return nil, err
			}
			sum += v
			n++
		}
		if n == 0 {
			continue
		}
		mean := sum / float64(n)
		res.Rows = append(res.Rows, VBMRRow{Mode: st.mode, VB: st.vb, VBMR: mean, Calls: n})
		switch st.mode {
		case core.VBKnownImage, core.VBKnownVideo:
			knownSum += mean
			knownN++
		default:
			unknownSum += mean
			unknownN++
		}
	}
	if knownN > 0 {
		res.KnownMean = knownSum / knownN
	}
	if unknownN > 0 {
		res.UnknownMean = unknownSum / unknownN
	}
	return res, nil
}

// vbmrOne composes one call with the named virtual background and
// measures the attained VBMR for the given acquisition mode.
func vbmrOne(cfg Config, call *dataset.Call, mode core.VBMode, vbName string, knownImgs map[string]*imagex.Image, knownVids map[string][]*imagex.Image, vidPeriod int) (float64, error) {
	rendered, err := call.Render()
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.callSeed(call.ID + vbName + mode.String())))

	var virtual compositor.VirtualSource
	switch mode {
	case core.VBKnownImage, core.VBUnknownImage:
		virtual = compositor.StaticImage{Img: compositor.BuiltinImage(vbName, call.W, call.H)}
	default:
		virtual = compositor.BuiltinVideo(vbName, call.W, call.H, vidPeriod)
	}
	codec := vidstream.DefaultCodecConfig()
	composed, err := compositor.Compose(rendered.Raw, rendered.Silhouettes, compositor.Options{
		Profile: cfg.Profile,
		Virtual: virtual,
		Codec:   &codec,
	}, rng)
	if err != nil {
		return 0, err
	}

	// Measure the masking stage directly, per the paper's definition:
	// VBMR is the share of each frame's should-be-virtual-background
	// region (everything except the true caller) that the attacker's
	// VBM removes after applying the blending-blur dilation. The
	// residual is what the framework would mistake for leaked
	// background; for unknown modes it additionally contains the
	// underived zone around the caller, which is exactly why the paper's
	// unknown VBMR (≈92.6 %) trails the known VBMR (≈98.7 %).
	opts := core.DefaultOptions()
	opts.Mode = mode
	opts.KnownImages = knownImgs
	opts.KnownVideos = knownVids
	opts.MaxLoopPeriod = 2 * vidPeriod
	vbFor, _, _, err := core.ResolveVBMasker(composed.Blended, opts)
	if err != nil {
		return 0, err
	}
	sum, n := 0.0, 0
	for i, f := range composed.Blended.Frames {
		shouldBeVB := rendered.Silhouettes[i].Clone()
		shouldBeVB.Invert()
		total := shouldBeVB.Count()
		if total == 0 {
			continue
		}
		masked := vbFor(i, f).Dilate(opts.Phi).Overlap(shouldBeVB)
		sum += 100 * float64(masked) / float64(total)
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("experiments: vbmr: no background pixels in %s", call.ID)
	}
	return sum / float64(n), nil
}

// Table renders the result.
func (r *VBMRResult) Table() *Table {
	t := &Table{
		Title:   "Section VIII-B — Virtual Background Masking Rate",
		Columns: []string{"mode", "virtual background", "VBMR", "calls"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Mode.String(), row.VB, pct(row.VBMR), count(row.Calls)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("known mean %s (paper ≈98.7%%), unknown mean %s (paper ≈92.6%%)",
			pct(r.KnownMean), pct(r.UnknownMean)))
	return t
}

// PhiRow is one blur-radius calibration measurement.
type PhiRow struct {
	Profile      string
	TrueRadius   int
	EstimatedPhi int
}

// PhiCalibration reproduces the paper's φ derivation (Section VIII-C):
// the adversary applies a virtual background to a static scene with the
// target software and measures the average blur depth by comparing the
// virtual image, the real background, and the output.
func PhiCalibration(cfg Config) ([]PhiRow, error) {
	var rows []PhiRow
	for _, profile := range []compositor.Profile{compositor.ProfileZoom(), compositor.ProfileSkype()} {
		rng := rand.New(rand.NewSource(cfg.Data.Seed + 77))
		sc := scene.Generate(scene.Config{W: cfg.Data.W, H: cfg.Data.H, Clutter: 0.5}, rng)
		p := person.New(person.Config{}, rng)

		raw := vidstream.New(cfg.Data.FPS)
		f := sc.Lit(1.0)
		sil := p.Render(f, 0, 1)
		if err := raw.Append(f); err != nil {
			return nil, err
		}
		// Probe with an error-free profile: the paper probes static
		// images, where matting errors are negligible.
		probe := profile
		probe.Matting.WarmupPatches = 0
		probe.Matting.LeakRate = 0
		probe.Matting.CutRate = 0

		vb := compositor.BuiltinImage("gradient", cfg.Data.W, cfg.Data.H)
		composed, err := compositor.Compose(raw, []*imagex.Mask{sil}, compositor.Options{
			Profile: probe,
			Virtual: compositor.StaticImage{Img: vb},
		}, rng)
		if err != nil {
			return nil, err
		}
		phi, err := core.EstimatePhi(composed.Blended.Frames[0], raw.Frames[0], vb, 8)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PhiRow{Profile: profile.Name, TrueRadius: profile.BlendRadius, EstimatedPhi: phi})
	}
	return rows, nil
}

// PhiTable renders the calibration rows.
func PhiTable(rows []PhiRow) *Table {
	t := &Table{
		Title:   "Section VIII-C — blur radius φ calibration",
		Columns: []string{"profile", "true blend radius", "estimated φ"},
		Notes: []string{
			"paper derives φ=20 at 1280×720; the simulator's proportional radius is 3 at 160×120",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Profile, count(r.TrueRadius), count(r.EstimatedPhi)})
	}
	return t
}
