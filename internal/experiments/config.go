// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VIII) and mitigation study (Section IX) on the
// synthetic datasets of internal/dataset. Each experiment returns typed
// rows plus a renderable Table; cmd/experiments prints the full suite
// and bench_test.go wraps each experiment as a testing.B benchmark.
// EXPERIMENTS.md records paper-vs-measured numbers.
package experiments

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/compositor"
	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/dataset"
	"github.com/bgbuster/bgbuster/internal/metrics"
	"github.com/bgbuster/bgbuster/internal/segment"
)

// Config controls the experiment suite.
type Config struct {
	// Data is the dataset scale (geometry, frames, seed).
	Data dataset.Config
	// Profile is the compositor under attack (Zoom unless an experiment
	// says otherwise).
	Profile compositor.Profile
	// DictSize is the location-inference dictionary size (paper: 200).
	DictSize int
	// Limit caps the number of calls per experiment group (0 = all);
	// tests and quick benches use small limits.
	Limit int
	// MatchTolDelta adjusts core matching tolerance if a camera profile
	// needs it (0 keeps core defaults).
	MatchTolDelta int
	// Workers caps pipeline parallelism (0 = GOMAXPROCS). Results are
	// bit-identical regardless of the worker count: every call's
	// randomness is independently seeded.
	Workers int
}

// DefaultConfig returns the full-scale suite configuration.
func DefaultConfig() Config {
	return Config{
		Data:     dataset.DefaultConfig(),
		Profile:  compositor.ProfileZoom(),
		DictSize: 200,
	}
}

// QuickConfig returns a scaled-down configuration for tests and smoke
// runs: smaller frames and tight per-group limits.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Data.W, cfg.Data.H = 120, 90
	cfg.Data.E1Frames, cfg.Data.E2Frames, cfg.Data.E3Frames = 40, 60, 50
	cfg.DictSize = 24
	cfg.Limit = 3
	return cfg
}

// limit applies the per-group call cap.
func (c Config) limit(calls []*dataset.Call) []*dataset.Call {
	if c.Limit > 0 && len(calls) > c.Limit {
		return calls[:c.Limit]
	}
	return calls
}

// callSeed derives a deterministic int64 from the config seed and the
// call ID for attacker-side randomness.
func (c Config) callSeed(id string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", c.Data.Seed, id)
	return int64(h.Sum64())
}

// vbNameFor cycles the built-in virtual images across calls so the
// dataset uses several popular backgrounds, as real users would.
func (c Config) vbNameFor(id string) string {
	h := fnv.New32a()
	h.Write([]byte(id))
	return compositor.BuiltinImageNames[int(h.Sum32())%len(compositor.BuiltinImageNames)]
}

// callRun is one call taken through compose → reconstruct → verify.
type callRun struct {
	call     *dataset.Call
	rendered *dataset.Rendered
	composed *compositor.Result
	rec      *core.Reconstruction
	verify   metrics.Verification
	// playbackPSNR is set by heuristics that degrade the stream (0 when
	// not applicable).
	playbackPSNR float64
}

// runCall executes the standard pipeline: render the call, compose it
// with the profile and a per-call built-in virtual image, reconstruct
// with the known-image attack, verify against the true background.
// transform, when non-nil, is a mitigation hook.
func (c Config) runCall(call *dataset.Call, profile compositor.Profile, transform compositor.VBTransform) (*callRun, error) {
	return c.runCallWith(call, profile, transform, nil)
}

// runCallWith additionally lets ablation experiments mutate the
// reconstruction options before the attack runs.
func (c Config) runCallWith(call *dataset.Call, profile compositor.Profile, transform compositor.VBTransform, mutate func(*core.Options)) (*callRun, error) {
	rendered, err := call.Render()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", call.ID, err)
	}
	rng := rand.New(rand.NewSource(c.callSeed(call.ID)))
	vb := compositor.StaticImage{Img: compositor.BuiltinImage(c.vbNameFor(call.ID), call.W, call.H)}
	// Cleaner capture hardware lets the software separate better (the
	// paper's E3 lighting/camera observation).
	if call.Camera.MattingErrScale > 0 {
		if profile.Matting.ErrScale == 0 {
			profile.Matting.ErrScale = 1
		}
		profile.Matting.ErrScale *= call.Camera.MattingErrScale
	}
	composed, err := compositor.Compose(rendered.Raw, rendered.Silhouettes, compositor.Options{
		Profile:   profile,
		Virtual:   vb,
		Transform: transform,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", call.ID, err)
	}

	opts := core.DefaultOptions()
	opts.MatchTol += c.MatchTolDelta
	opts.KnownImages = compositor.BuiltinImages(call.W, call.H)
	opts.Segmenter = segment.NewOfflineSegmenter(rng)
	if mutate != nil {
		mutate(&opts)
	}
	rec, err := core.Reconstruct(composed.Blended, rendered.Silhouettes, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", call.ID, err)
	}
	ver, err := metrics.Verify(rec, rendered.TrueBackground, 30)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", call.ID, err)
	}
	return &callRun{call: call, rendered: rendered, composed: composed, rec: rec, verify: ver}, nil
}
