package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/bgbuster/bgbuster/internal/attacks/objdetect"
	"github.com/bgbuster/bgbuster/internal/attacks/objtrack"
	"github.com/bgbuster/bgbuster/internal/attacks/textinfer"
	"github.com/bgbuster/bgbuster/internal/dataset"
	"github.com/bgbuster/bgbuster/internal/scene"
)

// ObjTrackResult reproduces the paper's specific-object-tracking
// evaluation (Section VIII-D): the paper tracked 90 individual objects
// across participant backgrounds with 96.7 % accuracy.
type ObjTrackResult struct {
	// Objects is the number of (object, reconstruction) decisions made:
	// both present-object detections and absent-object rejections.
	Objects int
	// Correct counts correct decisions.
	Correct int
	// Accuracy = Correct / Objects in percent.
	Accuracy float64
	// TruePositives / TrueNegatives break the decisions down.
	TruePositives, TrueNegatives int
}

// trackableKinds are the object kinds the tracker is evaluated on (the
// paper tracked shirts, posters, paintings, toys, bookshelves, books —
// our synthetic vocabulary's counterparts).
var trackableKinds = []scene.ObjectKind{
	scene.KindPoster, scene.KindTV, scene.KindWindow, scene.KindBookshelf, scene.KindDoor,
}

// ObjectTrackingTable runs the specific-object-tracking attack over
// reconstructions of E2/E3 calls: for each reconstructed call, every
// trackable inventory object is searched for with its own template
// (expected present), and with a template from a different scene
// (expected absent).
func ObjectTrackingTable(cfg Config) (*ObjTrackResult, error) {
	runs, err := groupRuns(cfg, cfg.Profile, nil)
	if err != nil {
		return nil, err
	}
	opts := objtrack.DefaultOptions()
	res := &ObjTrackResult{}
	// Foreign templates come from filler scenes.
	foreign := dataset.FillerScenes(cfg.Data, 3)

	for _, g := range []Group{GroupPassive, GroupActive, GroupWild} {
		for _, run := range runs[g] {
			sc := run.rendered.Scene
			for _, kind := range trackableKinds {
				for _, obj := range sc.Find(kind) {
					tpl := sc.Template(obj)
					if tpl == nil {
						continue
					}
					// Only decidable objects count, mirroring the
					// paper's ≥50 %-recovered window constraint: an
					// object whose region the reconstruction never
					// touched was not among the paper's 90 either.
					if bboxRecovered(run, obj) < opts.MinRecoveredFrac {
						continue
					}
					m, err := objtrack.Track(run.rec, tpl, opts)
					if err != nil {
						return nil, err
					}
					res.Objects++
					if m.Found {
						res.Correct++
						res.TruePositives++
					}
				}
			}
			// One absent-object probe per call: a poster from a foreign
			// scene that this scene does not contain.
			for _, fsc := range foreign {
				posters := fsc.Find(scene.KindPoster)
				if len(posters) == 0 {
					continue
				}
				tpl := fsc.Template(posters[0])
				m, err := objtrack.Track(run.rec, tpl, opts)
				if err != nil {
					return nil, err
				}
				res.Objects++
				if !m.Found {
					res.Correct++
					res.TrueNegatives++
				}
				break
			}
		}
	}
	if res.Objects > 0 {
		res.Accuracy = 100 * float64(res.Correct) / float64(res.Objects)
	}
	return res, nil
}

// Table renders the tracking result.
func (r *ObjTrackResult) Table() *Table {
	return &Table{
		Title:   "Section VIII-D — specific object tracking",
		Columns: []string{"decisions", "correct", "accuracy", "present hits", "absent rejections"},
		Rows: [][]string{{
			count(r.Objects), count(r.Correct), pct(r.Accuracy),
			count(r.TruePositives), count(r.TrueNegatives),
		}},
		Notes: []string{"paper: 90 objects tracked with 96.7% accuracy"},
	}
}

// DetectionResult reproduces the generic-object + text-inference
// evaluation (Section VIII-D): counts of object classes detected in
// reconstructed backgrounds, and text recovered from sticky notes.
type DetectionResult struct {
	// DetectedByKind maps an object label to the number of
	// reconstructions in which at least one correct (IoU ≥ 0.3)
	// detection of that kind appeared.
	DetectedByKind map[string]int
	// Model is the detector profile used.
	Model objdetect.Model
	// TextRecovered counts calls where sticky-note text was read with
	// ≥ 50 % of characters correct; TextTotal counts calls whose scene
	// carried text.
	TextRecovered, TextTotal int
	// Examples holds recovered text strings.
	Examples []string
	Calls    int
}

// GenericDetectionTable runs the generic detector and the text-inference
// attack over E2/E3 reconstructions.
func GenericDetectionTable(cfg Config, model objdetect.Model) (*DetectionResult, error) {
	runs, err := groupRuns(cfg, cfg.Profile, nil)
	if err != nil {
		return nil, err
	}
	res := &DetectionResult{DetectedByKind: map[string]int{}, Model: model}
	for _, g := range []Group{GroupPassive, GroupActive, GroupWild} {
		for _, run := range runs[g] {
			res.Calls++
			dets := objdetect.Detect(run.rec, model)
			found := map[string]bool{}
			for _, obj := range run.rendered.Scene.Objects {
				for _, d := range dets {
					if d.Kind == obj.Kind && d.IoU(obj.X0, obj.Y0, obj.X1, obj.Y1) >= 0.3 {
						found[obj.Kind.String()] = true
					}
				}
			}
			for k := range found {
				res.DetectedByKind[k]++
			}

			// Text inference.
			truth := ""
			for _, o := range run.rendered.Scene.Find(scene.KindStickyNote) {
				if o.Text != "" {
					truth = o.Text
					break
				}
			}
			if truth == "" {
				continue
			}
			res.TextTotal++
			results := textinfer.Infer(run.rec, textinfer.DefaultOptions())
			for _, tr := range results {
				if textMatchFrac(tr.Text, truth) >= 0.5 {
					res.TextRecovered++
					res.Examples = append(res.Examples, fmt.Sprintf("%q (truth %q, %s)", tr.Text, truth, run.call.ID))
					break
				}
			}
		}
	}
	return res, nil
}

// bboxRecovered returns the fraction of the object's bounding box the
// reconstruction recovered.
func bboxRecovered(run *callRun, obj scene.Object) float64 {
	total, got := 0, 0
	for y := obj.Y0; y < obj.Y1; y++ {
		for x := obj.X0; x < obj.X1; x++ {
			total++
			if run.rec.Coverage.At(x, y) {
				got++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(got) / float64(total)
}

// textMatchFrac returns the fraction of truth characters matched at the
// aligned position of the recognised string.
func textMatchFrac(got, truth string) float64 {
	if len(truth) == 0 {
		return 0
	}
	best := 0
	// Try all alignments of got within truth (and vice versa).
	for off := -len(got); off <= len(truth); off++ {
		match := 0
		for i := 0; i < len(truth); i++ {
			j := i - off
			if j >= 0 && j < len(got) && got[j] == truth[i] {
				match++
			}
		}
		if match > best {
			best = match
		}
	}
	return float64(best) / float64(len(truth))
}

// Table renders the detection result.
func (r *DetectionResult) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Section VIII-D — generic object & text detection (%s)", r.Model),
		Columns: []string{"object class", "reconstructions containing a correct detection"},
	}
	kinds := make([]string, 0, len(r.DetectedByKind))
	for k := range r.DetectedByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		t.Rows = append(t.Rows, []string{k, count(r.DetectedByKind[k])})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("text recovered in %d of %d text-bearing calls", r.TextRecovered, r.TextTotal),
		"paper: books ×4, TV ×2, shirts ×1, monitors ×3, clock ×1; text from one sticky note")
	if len(r.Examples) > 0 {
		t.Notes = append(t.Notes, "recovered text: "+strings.Join(r.Examples, "; "))
	}
	return t
}
