// Package vidstream models video-call streams: time-ordered frame
// sequences with a frame rate (the paper's V = {f¹, f², …, fˡ}), plus
// frame differencing, displacement measurement, and camera sensor
// profiles used by the synthetic capture pipeline.
package vidstream

import (
	"errors"
	"fmt"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// DefaultFPS is the frame rate the paper assumes for its pixel-stability
// threshold ("for a standard 30 fps video stream").
const DefaultFPS = 30

// ErrEmpty is returned by operations that need at least one frame.
var ErrEmpty = errors.New("vidstream: empty video")

// Video is a time-ordered sequence of equally sized frames.
type Video struct {
	FPS    int
	Frames []*imagex.Image
}

// New returns an empty video at the given frame rate; non-positive rates
// fall back to DefaultFPS.
func New(fps int) *Video {
	if fps <= 0 {
		fps = DefaultFPS
	}
	return &Video{FPS: fps}
}

// Append adds a frame. The first frame fixes the video geometry; frames
// of a different size are rejected.
func (v *Video) Append(f *imagex.Image) error {
	if f == nil {
		return errors.New("vidstream: nil frame")
	}
	if len(v.Frames) > 0 && !v.Frames[0].SameSize(f) {
		return fmt.Errorf("vidstream: frame %dx%d does not match video %dx%d: %w",
			f.W, f.H, v.Frames[0].W, v.Frames[0].H, imagex.ErrBounds)
	}
	v.Frames = append(v.Frames, f)
	return nil
}

// Len returns the number of frames (the paper's l).
func (v *Video) Len() int { return len(v.Frames) }

// Size returns the frame geometry, or (0, 0) for an empty video.
func (v *Video) Size() (w, h int) {
	if len(v.Frames) == 0 {
		return 0, 0
	}
	return v.Frames[0].W, v.Frames[0].H
}

// Duration returns the video length in seconds.
func (v *Video) Duration() float64 {
	if v.FPS <= 0 {
		return 0
	}
	return float64(len(v.Frames)) / float64(v.FPS)
}

// Slice returns a shallow sub-video covering frames [from, to); the
// bounds are clamped to the video length.
func (v *Video) Slice(from, to int) *Video {
	if from < 0 {
		from = 0
	}
	if to > len(v.Frames) {
		to = len(v.Frames)
	}
	if from > to {
		from = to
	}
	return &Video{FPS: v.FPS, Frames: v.Frames[from:to]}
}

// Clone returns a deep copy of the video.
func (v *Video) Clone() *Video {
	out := New(v.FPS)
	out.Frames = make([]*imagex.Image, len(v.Frames))
	for i, f := range v.Frames {
		out.Frames[i] = f.Clone()
	}
	return out
}

// Validate checks the video invariants: at least one frame, uniform
// geometry.
func (v *Video) Validate() error {
	if len(v.Frames) == 0 {
		return ErrEmpty
	}
	for i, f := range v.Frames {
		if f == nil {
			return fmt.Errorf("vidstream: nil frame at index %d", i)
		}
		if !f.SameSize(v.Frames[0]) {
			return fmt.Errorf("vidstream: frame %d is %dx%d, video is %dx%d: %w",
				i, f.W, f.H, v.Frames[0].W, v.Frames[0].H, imagex.ErrBounds)
		}
	}
	return nil
}

// ChangedMask returns the mask of pixels that differ between consecutive
// frames i-1 and i by more than tol on any channel. Frame 0 yields an
// empty mask (no predecessor).
func (v *Video) ChangedMask(i, tol int) (*imagex.Mask, error) {
	if i < 0 || i >= len(v.Frames) {
		return nil, fmt.Errorf("vidstream: frame index %d of %d: %w", i, len(v.Frames), imagex.ErrBounds)
	}
	if i == 0 {
		w, h := v.Size()
		return imagex.NewMask(w, h), nil
	}
	return v.Frames[i].DiffMask(v.Frames[i-1], tol)
}

// Displacement implements the paper's Displacement metric for the event
// covering frames [from, to): the percentage of unique pixels that change
// (beyond tol) at least once across the event, relative to resolution.
// The returned value is in [0, 100].
func (v *Video) Displacement(from, to, tol int) (float64, error) {
	if err := v.Validate(); err != nil {
		return 0, err
	}
	if from < 0 || to > len(v.Frames) || from >= to {
		return 0, fmt.Errorf("vidstream: displacement range [%d,%d) of %d frames: %w",
			from, to, len(v.Frames), imagex.ErrBounds)
	}
	w, h := v.Size()
	acc := imagex.NewMask(w, h)
	for i := from + 1; i < to; i++ {
		d, err := v.Frames[i].DiffMask(v.Frames[i-1], tol)
		if err != nil {
			return 0, err
		}
		if err := acc.Union(d); err != nil {
			return 0, err
		}
	}
	return acc.Fraction() * 100, nil
}

// ActionSpeed implements the paper's Action Speed metric: frames in the
// event divided by the frame rate, i.e. the event duration in seconds.
func (v *Video) ActionSpeed(from, to int) float64 {
	if v.FPS <= 0 || to <= from {
		return 0
	}
	return float64(to-from) / float64(v.FPS)
}

// StablePixelCounts returns, for each pixel, the length of the longest
// run of consecutive frames over which its value stayed within tol. The
// unknown-virtual-image derivation (Section V-B) thresholds this at 10
// frames for 30 fps streams.
func (v *Video) StablePixelCounts(tol int) ([]int, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	w, h := v.Size()
	best := make([]int, w*h)
	cur := make([]int, w*h)
	for i := range cur {
		cur[i] = 1
		best[i] = 1
	}
	for i := 1; i < len(v.Frames); i++ {
		prev, now := v.Frames[i-1], v.Frames[i]
		for p := range now.Pix {
			if withinTolRGB(prev.Pix[p], now.Pix[p], tol) {
				cur[p]++
			} else {
				cur[p] = 1
			}
			if cur[p] > best[p] {
				best[p] = cur[p]
			}
		}
	}
	return best, nil
}

func withinTolRGB(a, b imagex.RGB, tol int) bool {
	return absInt(int(a.R)-int(b.R)) <= tol &&
		absInt(int(a.G)-int(b.G)) <= tol &&
		absInt(int(a.B)-int(b.B)) <= tol
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
