package vidstream

import (
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// CodecConfig models the lossy transmission path between the caller's
// software and the adversary's recording. Video codecs degrade
// high-detail regions persistently: the same macroblocks keep flickering
// between quantisation states across the call. The paper records
// Zoom/Skype output video, so its pixel-exact matching stages (the VBMR
// experiment, Section VIII-B) operate on exactly this kind of imperfect
// signal — the clean simulator channel would otherwise saturate VBMR at
// 100 % for every mode.
type CodecConfig struct {
	// BlockSize is the macroblock edge in pixels.
	BlockSize int
	// HotspotFrac is the fraction of the frame area covered by
	// persistent artifact-prone macroblocks.
	HotspotFrac float64
	// PeriodMin/PeriodMax bound each hotspot's refresh period in frames:
	// the block is visibly shifted for one frame out of every period
	// (codec intra-refresh cycles are periodic), so no hotspot pixel is
	// ever stable for a full stability window, while most frames show
	// the clean value.
	PeriodMin, PeriodMax int
	// ShiftMin/ShiftMax bound the per-channel DC shift of an active
	// state.
	ShiftMin, ShiftMax int
}

// DefaultCodecConfig returns the transmission profile calibrated so the
// VBMR experiment reproduces the paper's ≈98.7 % (known) vs ≈92.6 %
// (unknown) split: hotspots flicker faster than the 10-frame stability
// rule, so the unknown-VB derivation can never lock them, while known-VB
// matching only loses the momentarily active blocks.
func DefaultCodecConfig() CodecConfig {
	return CodecConfig{
		BlockSize:   20,
		HotspotFrac: 0.14,
		PeriodMin:   5,
		PeriodMax:   8,
		ShiftMin:    18,
		ShiftMax:    34,
	}
}

// hotspot is one persistent artifact-prone macroblock.
type hotspot struct {
	x, y   int
	shift  int
	period int
	phase  int
}

// CodecChannel applies the transmission artifacts to a frame stream.
// Create one per transmitted call; Transmit mutates frames in order.
type CodecChannel struct {
	cfg      CodecConfig
	rng      *rand.Rand
	hotspots []hotspot
	started  bool
	frameIdx int
}

// NewCodecChannel creates a channel; rng must be non-nil.
func NewCodecChannel(cfg CodecConfig, rng *rand.Rand) *CodecChannel {
	if rng == nil {
		panic("vidstream: nil rng")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 8
	}
	if cfg.ShiftMax < cfg.ShiftMin {
		cfg.ShiftMax = cfg.ShiftMin
	}
	if cfg.PeriodMin <= 0 {
		cfg.PeriodMin = 5
	}
	if cfg.PeriodMax < cfg.PeriodMin {
		cfg.PeriodMax = cfg.PeriodMin
	}
	return &CodecChannel{cfg: cfg, rng: rng}
}

// Transmit applies the channel's artifacts to the frame (in place) and
// evolves the hotspot states.
func (c *CodecChannel) Transmit(f *imagex.Image) {
	if !c.started {
		c.started = true
		blockArea := c.cfg.BlockSize * c.cfg.BlockSize
		n := int(c.cfg.HotspotFrac * float64(f.W*f.H) / float64(blockArea))
		for i := 0; i < n; i++ {
			shift := c.cfg.ShiftMin
			if c.cfg.ShiftMax > c.cfg.ShiftMin {
				shift += c.rng.Intn(c.cfg.ShiftMax - c.cfg.ShiftMin + 1)
			}
			if c.rng.Intn(2) == 0 {
				shift = -shift
			}
			period := c.cfg.PeriodMin
			if c.cfg.PeriodMax > c.cfg.PeriodMin {
				period += c.rng.Intn(c.cfg.PeriodMax - c.cfg.PeriodMin + 1)
			}
			c.hotspots = append(c.hotspots, hotspot{
				x:      c.rng.Intn(maxIntQ(1, f.W-c.cfg.BlockSize+1)),
				y:      c.rng.Intn(maxIntQ(1, f.H-c.cfg.BlockSize+1)),
				shift:  shift,
				period: period,
				phase:  c.rng.Intn(period),
			})
		}
	}
	for _, h := range c.hotspots {
		if (c.frameIdx+h.phase)%h.period == 0 {
			applyBlock(f, h, c.cfg.BlockSize)
		}
	}
	c.frameIdx++
}

func applyBlock(f *imagex.Image, h hotspot, size int) {
	for dy := 0; dy < size; dy++ {
		for dx := 0; dx < size; dx++ {
			x, y := h.x+dx, h.y+dy
			if !f.In(x, y) {
				continue
			}
			p := f.At(x, y)
			f.Set(x, y, imagex.RGB{
				R: shiftChan(p.R, h.shift),
				G: shiftChan(p.G, h.shift),
				B: shiftChan(p.B, h.shift),
			})
		}
	}
}

func shiftChan(v uint8, s int) uint8 {
	x := int(v) + s
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return uint8(x)
}

func maxIntQ(a, b int) int {
	if a > b {
		return a
	}
	return b
}
