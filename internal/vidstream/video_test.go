package vidstream

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

func solidVideo(fps, n, w, h int, c imagex.RGB) *Video {
	v := New(fps)
	for i := 0; i < n; i++ {
		if err := v.Append(imagex.NewFilled(w, h, c)); err != nil {
			panic(err)
		}
	}
	return v
}

func TestNewDefaultsFPS(t *testing.T) {
	if New(0).FPS != DefaultFPS || New(-5).FPS != DefaultFPS {
		t.Fatal("non-positive fps must default")
	}
	if New(24).FPS != 24 {
		t.Fatal("explicit fps lost")
	}
}

func TestAppendGeometryEnforced(t *testing.T) {
	v := New(30)
	if err := v.Append(nil); err == nil {
		t.Fatal("nil frame accepted")
	}
	if err := v.Append(imagex.New(4, 4)); err != nil {
		t.Fatal(err)
	}
	if err := v.Append(imagex.New(5, 4)); !errors.Is(err, imagex.ErrBounds) {
		t.Fatalf("mismatched frame error = %v", err)
	}
	if v.Len() != 1 {
		t.Fatal("rejected frame was appended")
	}
}

func TestSizeDuration(t *testing.T) {
	v := New(30)
	if w, h := v.Size(); w != 0 || h != 0 {
		t.Fatal("empty video size must be 0x0")
	}
	v = solidVideo(30, 60, 8, 6, imagex.Black)
	if w, h := v.Size(); w != 8 || h != 6 {
		t.Fatal("size wrong")
	}
	if v.Duration() != 2.0 {
		t.Fatalf("duration = %v, want 2s", v.Duration())
	}
}

func TestSliceClamps(t *testing.T) {
	v := solidVideo(30, 10, 2, 2, imagex.Black)
	s := v.Slice(-5, 100)
	if s.Len() != 10 {
		t.Fatal("clamped slice wrong")
	}
	if v.Slice(7, 3).Len() != 0 {
		t.Fatal("inverted slice must be empty")
	}
	if v.Slice(2, 5).Len() != 3 {
		t.Fatal("normal slice wrong")
	}
}

func TestCloneDeep(t *testing.T) {
	v := solidVideo(30, 2, 2, 2, imagex.Black)
	c := v.Clone()
	c.Frames[0].Set(0, 0, imagex.White)
	if v.Frames[0].At(0, 0) == imagex.White {
		t.Fatal("clone shares frames")
	}
}

func TestValidate(t *testing.T) {
	if err := New(30).Validate(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty validate = %v", err)
	}
	v := solidVideo(30, 3, 4, 4, imagex.Black)
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	v.Frames[1] = nil
	if err := v.Validate(); err == nil {
		t.Fatal("nil frame not caught")
	}
	v.Frames[1] = imagex.New(9, 9)
	if err := v.Validate(); !errors.Is(err, imagex.ErrBounds) {
		t.Fatalf("geometry violation = %v", err)
	}
}

func TestChangedMask(t *testing.T) {
	v := solidVideo(30, 3, 3, 3, imagex.Black)
	v.Frames[1].Set(1, 1, imagex.White)

	m0, err := v.ChangedMask(0, 0)
	if err != nil || m0.Count() != 0 {
		t.Fatalf("frame 0 change mask = %v / %v", m0.Count(), err)
	}
	m1, err := v.ChangedMask(1, 0)
	if err != nil || m1.Count() != 1 || !m1.At(1, 1) {
		t.Fatalf("frame 1 change mask wrong: %v / %v", m1, err)
	}
	m2, err := v.ChangedMask(2, 0)
	if err != nil || m2.Count() != 1 {
		t.Fatalf("frame 2 change mask wrong")
	}
	if _, err := v.ChangedMask(9, 0); !errors.Is(err, imagex.ErrBounds) {
		t.Fatalf("oob index error = %v", err)
	}
}

func TestDisplacement(t *testing.T) {
	v := solidVideo(30, 4, 10, 10, imagex.Black)
	// Two distinct pixels change at different times: unique changed = 2.
	v.Frames[1].Set(0, 0, imagex.White)
	v.Frames[2].Set(0, 0, imagex.White) // unchanged vs frame 1 afterwards
	v.Frames[2].Set(5, 5, imagex.White)
	v.Frames[3] = v.Frames[2].Clone()

	d, err := v.Displacement(0, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 2.0 { // 2 of 100 pixels = 2%
		t.Fatalf("displacement = %v%%, want 2%%", d)
	}

	if _, err := v.Displacement(3, 3, 0); !errors.Is(err, imagex.ErrBounds) {
		t.Fatalf("empty range error = %v", err)
	}
	if _, err := New(30).Displacement(0, 1, 0); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty video error = %v", err)
	}
}

func TestActionSpeed(t *testing.T) {
	v := solidVideo(30, 90, 2, 2, imagex.Black)
	if got := v.ActionSpeed(0, 30); got != 1.0 {
		t.Fatalf("ActionSpeed = %v, want 1s", got)
	}
	if v.ActionSpeed(5, 5) != 0 {
		t.Fatal("empty event speed must be 0")
	}
}

func TestStablePixelCounts(t *testing.T) {
	v := solidVideo(30, 5, 2, 1, imagex.Black)
	// Pixel (0,0) static across all 5 frames; pixel (1,0) flickers.
	for i := 0; i < 5; i++ {
		if i%2 == 1 {
			v.Frames[i].Set(1, 0, imagex.White)
		}
	}
	counts, err := v.StablePixelCounts(0)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 5 {
		t.Fatalf("static pixel run = %d, want 5", counts[0])
	}
	if counts[1] != 1 {
		t.Fatalf("flickering pixel run = %d, want 1", counts[1])
	}
	if _, err := New(30).StablePixelCounts(0); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty video must error")
	}
}

func TestStablePixelCountsTolerance(t *testing.T) {
	v := New(30)
	for i := 0; i < 4; i++ {
		f := imagex.NewFilled(1, 1, imagex.RGB{R: uint8(100 + i), G: 100, B: 100})
		if err := v.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	counts, err := v.StablePixelCounts(1)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 4 {
		t.Fatalf("tolerant run = %d, want 4", counts[0])
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	v := New(24)
	for i := 0; i < 5; i++ {
		f := imagex.New(7, 9)
		f.AddNoise(rng, 120)
		if err := v.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.FPS != 24 || back.Len() != 5 {
		t.Fatalf("metadata lost: fps=%d len=%d", back.FPS, back.Len())
	}
	for i := range v.Frames {
		if !v.Frames[i].Equal(back.Frames[i]) {
			t.Fatalf("frame %d altered by codec", i)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a video at all"))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("garbage decode error = %v", err)
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream must error")
	}
	// Truncated frame payload.
	var buf bytes.Buffer
	v := solidVideo(30, 2, 4, 4, imagex.White)
	if err := Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated stream must error")
	}
}

func TestCodecRejectsImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(codecMagic)
	// fps=30, w=0 -> invalid.
	buf.Write([]byte{30, 0, 0, 0, 0, 0, 0, 0, 4, 0, 0, 0, 1, 0, 0, 0})
	if _, err := Decode(&buf); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("zero-width header error = %v", err)
	}
}

func TestCodecEncodeEmptyFails(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, New(30)); !errors.Is(err, ErrEmpty) {
		t.Fatalf("encode empty = %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "call.bbv")
	v := solidVideo(30, 3, 5, 5, imagex.RGB{R: 10, G: 20, B: 30})
	if err := Save(path, v); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 || !back.Frames[0].Equal(v.Frames[0]) {
		t.Fatal("file round trip failed")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.bbv")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestCameraProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := imagex.NewFilled(16, 16, imagex.RGB{R: 100, G: 100, B: 100})
	studio := f.Clone()
	CameraStudio.Capture(studio, rng)
	if studio.MeanLuminance() <= f.MeanLuminance() {
		t.Fatal("studio profile must brighten the scene")
	}

	webcam := f.Clone()
	CameraWebcam.Capture(webcam, rand.New(rand.NewSource(5)))
	if webcam.Equal(f) {
		t.Fatal("webcam capture must add noise")
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := New(1 + r.Intn(60))
		n := 1 + r.Intn(4)
		w, h := 1+r.Intn(6), 1+r.Intn(6)
		for i := 0; i < n; i++ {
			fr := imagex.New(w, h)
			fr.AddNoise(r, 128)
			if err := v.Append(fr); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := Encode(&buf, v); err != nil {
			return false
		}
		back, err := Decode(&buf)
		if err != nil || back.FPS != v.FPS || back.Len() != v.Len() {
			return false
		}
		for i := range v.Frames {
			if !v.Frames[i].Equal(back.Frames[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDisplacementMonotoneInTolerance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := New(30)
		for i := 0; i < 4; i++ {
			fr := imagex.New(8, 8)
			fr.AddNoise(r, 40)
			if err := v.Append(fr); err != nil {
				return false
			}
		}
		d0, err0 := v.Displacement(0, 4, 0)
		d1, err1 := v.Displacement(0, 4, 30)
		return err0 == nil && err1 == nil && d1 <= d0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPSNR(t *testing.T) {
	a := imagex.NewFilled(8, 8, imagex.RGB{R: 100, G: 100, B: 100})
	p, err := PSNR(a, a.Clone())
	if err != nil || !math.IsInf(p, 1) {
		t.Fatalf("identical PSNR = %v (%v), want +Inf", p, err)
	}
	b := a.Clone()
	b.Fill(imagex.RGB{R: 110, G: 110, B: 110})
	p, err = PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// MSE = 100 → PSNR = 20log10(255) − 10log10(100) ≈ 28.13 dB.
	if math.Abs(p-28.13) > 0.05 {
		t.Fatalf("PSNR = %v, want ≈28.13", p)
	}
	if _, err := PSNR(a, imagex.New(4, 4)); !errors.Is(err, imagex.ErrBounds) {
		t.Fatalf("size mismatch error = %v", err)
	}
}

func TestPlaybackPSNR(t *testing.T) {
	v := New(30)
	for i := 0; i < 8; i++ {
		f := imagex.NewFilled(8, 8, imagex.RGB{R: uint8(i * 20), G: 0, B: 0})
		if err := v.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	full, err := PlaybackPSNR(v, 1)
	if err != nil || !math.IsInf(full, 1) {
		t.Fatalf("keepEvery=1 PSNR = %v, want +Inf", full)
	}
	d2, err := PlaybackPSNR(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := PlaybackPSNR(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(d2, 1) || d4 >= d2 {
		t.Fatalf("quality must degrade with drop factor: drop2=%v drop4=%v", d2, d4)
	}
	if _, err := PlaybackPSNR(New(30), 2); !errors.Is(err, ErrEmpty) {
		t.Fatal("empty video must error")
	}
}

func TestCodecChannelDeterministicAndBounded(t *testing.T) {
	cfg := DefaultCodecConfig()
	run := func(seed int64) *Video {
		ch := NewCodecChannel(cfg, rand.New(rand.NewSource(seed)))
		v := New(30)
		for i := 0; i < 20; i++ {
			f := imagex.NewFilled(80, 60, imagex.RGB{R: 100, G: 100, B: 100})
			ch.Transmit(f)
			if err := v.Append(f); err != nil {
				t.Fatal(err)
			}
		}
		return v
	}
	a, b := run(1), run(1)
	for i := range a.Frames {
		if !a.Frames[i].Equal(b.Frames[i]) {
			t.Fatal("channel must be deterministic per seed")
		}
	}
	c := run(2)
	same := true
	for i := range a.Frames {
		if !a.Frames[i].Equal(c.Frames[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestCodecChannelPeriodicFlicker(t *testing.T) {
	// Every hotspot pixel must change value at least once per period, so
	// no pixel is stable across a full stability window (10 frames at
	// default periods ≤ 8).
	cfg := DefaultCodecConfig()
	ch := NewCodecChannel(cfg, rand.New(rand.NewSource(3)))
	v := New(30)
	for i := 0; i < 40; i++ {
		f := imagex.NewFilled(100, 80, imagex.RGB{R: 90, G: 90, B: 90})
		ch.Transmit(f)
		if err := v.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	counts, err := v.StablePixelCounts(14)
	if err != nil {
		t.Fatal(err)
	}
	unstable := 0
	for _, c := range counts {
		if c < 40 {
			unstable++
		}
	}
	frac := float64(unstable) / float64(len(counts))
	// Roughly the hotspot fraction of pixels must be unstable.
	if frac < cfg.HotspotFrac*0.5 || frac > cfg.HotspotFrac*2.5 {
		t.Fatalf("unstable fraction %.3f vs hotspot fraction %.3f", frac, cfg.HotspotFrac)
	}
	for i, c := range counts {
		if c < 40 && c >= 10 {
			t.Fatalf("hotspot pixel %d stable for %d frames (≥ stability window)", i, c)
		}
	}
}

func TestCodecChannelNilRngPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCodecChannel(DefaultCodecConfig(), nil)
}

func TestCodecChannelMostFramesClean(t *testing.T) {
	// The clean value must dominate: a hotspot is shifted for one frame
	// per period.
	cfg := DefaultCodecConfig()
	ch := NewCodecChannel(cfg, rand.New(rand.NewSource(5)))
	base := imagex.RGB{R: 100, G: 100, B: 100}
	shifted := 0
	total := 0
	for i := 0; i < 30; i++ {
		f := imagex.NewFilled(100, 80, base)
		ch.Transmit(f)
		for _, p := range f.Pix {
			total++
			if p != base {
				shifted++
			}
		}
	}
	frac := float64(shifted) / float64(total)
	maxExpected := cfg.HotspotFrac / float64(cfg.PeriodMin)
	if frac > 1.5*maxExpected {
		t.Fatalf("shifted fraction %.4f exceeds expected ≤ %.4f", frac, 1.5*maxExpected)
	}
}
