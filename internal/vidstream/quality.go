package vidstream

import (
	"fmt"
	"math"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// PSNR returns the peak signal-to-noise ratio between two images in
// decibels; +Inf for identical images. It is the quality metric used to
// price the frame-dropping mitigation (paper Section IX-B notes the
// mitigation reduces call quality).
func PSNR(a, b *imagex.Image) (float64, error) {
	if !a.SameSize(b) {
		return 0, fmt.Errorf("vidstream: psnr %dx%d vs %dx%d: %w", a.W, a.H, b.W, b.H, imagex.ErrBounds)
	}
	var se float64
	for i := range a.Pix {
		dr := float64(a.Pix[i].R) - float64(b.Pix[i].R)
		dg := float64(a.Pix[i].G) - float64(b.Pix[i].G)
		db := float64(a.Pix[i].B) - float64(b.Pix[i].B)
		se += dr*dr + dg*dg + db*db
	}
	mse := se / float64(3*len(a.Pix))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 20*math.Log10(255) - 10*math.Log10(mse), nil
}

// PlaybackPSNR measures the viewer-perceived quality of a reduced-rate
// call: the reduced video is played back against the original timeline
// by holding each kept frame until the next one (the choppy-video
// effect of frame dropping), and the mean per-frame PSNR is returned.
// keepEvery ≤ 1 returns +Inf (nothing dropped).
func PlaybackPSNR(original *Video, keepEvery int) (float64, error) {
	if err := original.Validate(); err != nil {
		return 0, err
	}
	if keepEvery <= 1 {
		return math.Inf(1), nil
	}
	sum, n := 0.0, 0
	for i, f := range original.Frames {
		held := original.Frames[(i/keepEvery)*keepEvery]
		p, err := PSNR(f, held)
		if err != nil {
			return 0, err
		}
		if math.IsInf(p, 1) {
			continue // identical frames do not penalise the mean
		}
		sum += p
		n++
	}
	if n == 0 {
		return math.Inf(1), nil
	}
	return sum / float64(n), nil
}

// DefaultImpulseTol is the per-channel difference ImpulseNoise treats
// as "unrelated" — on the scale of the reconstruction match tolerance,
// well above camera noise and codec ringing.
const DefaultImpulseTol = 48

// ImpulseNoise estimates impulse ("salt and pepper") corruption: the
// fraction of pixels that differ by more than tol on some channel from
// every in-bounds 4-neighbour. Genuine conference frames are locally
// correlated — even hard edges keep at least one similar neighbour
// along the edge — so clean frames score near zero, while the random
// per-pixel damage left by byte corruption the codec could not conceal
// scores near the corrupted fraction. The session layer's frame-quality
// gate thresholds this score to reject decode-mangled frames before
// their garbage pixels are claimed as residue (DESIGN.md §12).
// Non-positive tol uses DefaultImpulseTol.
func ImpulseNoise(f *imagex.Image, tol int) float64 {
	if f == nil || len(f.Pix) == 0 {
		return 0
	}
	if tol <= 0 {
		tol = DefaultImpulseTol
	}
	w, h := f.W, f.H
	noisy := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p := f.Pix[y*w+x]
			isolated := false
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || ny < 0 || nx >= w || ny >= h {
					continue
				}
				isolated = true // has at least one neighbour to disagree with
				if withinTolRGB(p, f.Pix[ny*w+nx], tol) {
					isolated = false
					break
				}
			}
			if isolated {
				noisy++
			}
		}
	}
	return float64(noisy) / float64(len(f.Pix))
}
