package vidstream

import (
	"bytes"
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// FuzzDecode hardens the .bbv container decoder against malformed
// input: it must never panic or over-allocate, only return errors.
// Run longer with: go test -fuzz=FuzzDecode ./internal/vidstream/
func FuzzDecode(f *testing.F) {
	// Seed with a valid container and a few mutations.
	v := New(30)
	img := imagex.NewFilled(4, 3, imagex.RGB{R: 1, G: 2, B: 3})
	if err := v.Append(img); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, v); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])
	f.Add([]byte("BBV1"))
	f.Add([]byte{})
	huge := append([]byte("BBV1"), 30, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255)
	f.Add(huge)
	// Crafted header whose per-field values all pass the individual
	// bounds but whose product advertises a multi-hundred-MB payload:
	// w = h = 2^14, frames = 2^20. The total-byte budget must reject it
	// without allocating.
	crafted := append([]byte("BBV1"),
		30, 0, 0, 0, // fps
		0, 0x40, 0, 0, // w = 16384
		0, 0x40, 0, 0, // h = 16384
		0, 0, 0x10, 0) // frames = 2^20
	f.Add(crafted)
	f.Add(bbvHeader(30, 1<<14, 1<<14, 0))
	f.Add(bbvHeader(30, 1, 1, 1<<20))

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must satisfy the video invariants.
		if verr := v.Validate(); verr != nil {
			t.Fatalf("decoded video violates invariants: %v", verr)
		}
		// And must round-trip.
		var out bytes.Buffer
		if eerr := Encode(&out, v); eerr != nil {
			t.Fatalf("re-encode failed: %v", eerr)
		}
	})
}
