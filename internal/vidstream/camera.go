package vidstream

import (
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// CameraProfile models the capture hardware. The paper's evaluation
// attributes part of the E3 (in-the-wild) RBRR gap to "high-quality
// lighting and cameras employed for producing YouTube videos": better
// sensors give the matting model cleaner input and reduce leakage.
type CameraProfile struct {
	// Name identifies the profile in reports.
	Name string
	// NoiseAmp is the per-channel uniform sensor noise amplitude added to
	// every captured frame.
	NoiseAmp int
	// LightBoost scales scene brightness (studio lighting > 1, consumer
	// webcam = 1).
	LightBoost float64
	// MattingErrScale scales the video software's matting error rates:
	// cleaner, better-lit sensor input separates better (the paper's
	// explanation for E3's lower leakage despite active speakers).
	MattingErrScale float64
}

// Built-in capture profiles.
var (
	// CameraWebcam is the consumer laptop/desktop webcam used by E1/E2
	// participants.
	CameraWebcam = CameraProfile{Name: "webcam", NoiseAmp: 6, LightBoost: 1.0, MattingErrScale: 1.0}
	// CameraStudio is the high-quality camera + lighting rig typical of
	// the E3 in-the-wild (YouTube) videos.
	CameraStudio = CameraProfile{Name: "studio", NoiseAmp: 2, LightBoost: 1.15, MattingErrScale: 0.62}
)

// Capture applies the profile to a pristine rendered frame: lighting
// boost followed by sensor noise. It mutates the frame in place.
func (c CameraProfile) Capture(f *imagex.Image, rng *rand.Rand) {
	if c.LightBoost > 0 && c.LightBoost != 1.0 {
		f.ScaleBrightness(c.LightBoost)
	}
	f.AddNoise(rng, c.NoiseAmp)
}
