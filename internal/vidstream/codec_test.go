package vidstream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// bbvHeader builds a syntactically valid .bbv header with the given
// advertised geometry and frame count, and no payload.
func bbvHeader(fps, w, h, n uint32) []byte {
	var buf bytes.Buffer
	buf.WriteString(codecMagic)
	for _, u := range []uint32{fps, w, h, n} {
		_ = binary.Write(&buf, binary.LittleEndian, u)
	}
	return buf.Bytes()
}

// TestDecodeRejectsOversizedPayload is the regression for the crafted
// header attack: each dimension and the frame count individually pass
// the per-field bounds, but their product advertises ~768 MB per frame
// across 2^20 frames. The decoder must reject it from the 20-byte
// header alone, without allocating the advertised payload.
func TestDecodeRejectsOversizedPayload(t *testing.T) {
	crafted := bbvHeader(30, 1<<14, 1<<14, 1<<20)
	if _, err := Decode(bytes.NewReader(crafted)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("crafted oversized header error = %v, want ErrBadFormat", err)
	}
	// A zero-frame header is rejected outright: Encode can never
	// produce one (Validate requires ≥1 frame), and decoding it would
	// yield a Video violating the package invariants.
	empty := bbvHeader(30, 8, 8, 0)
	if _, err := Decode(bytes.NewReader(empty)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("zero-frame header error = %v, want ErrBadFormat", err)
	}
}

func TestDecodeWithLimitsBudget(t *testing.T) {
	v := New(30)
	if err := v.Append(imagex.NewFilled(8, 8, imagex.RGB{R: 1})); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, v); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// A budget below the single 8×8 frame (192 bytes) rejects it…
	if _, err := DecodeWithLimits(bytes.NewReader(data), DecodeLimits{MaxTotalBytes: 100}); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("tight budget error = %v, want ErrBadFormat", err)
	}
	// …a sufficient one accepts it, with the other limits defaulted.
	got, err := DecodeWithLimits(bytes.NewReader(data), DecodeLimits{MaxTotalBytes: 192})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("len = %d", got.Len())
	}
	// Tightened per-field limits still apply.
	if _, err := DecodeWithLimits(bytes.NewReader(data), DecodeLimits{MaxDim: 4}); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("MaxDim error = %v, want ErrBadFormat", err)
	}
	if _, err := DecodeWithLimits(bytes.NewReader(data), DecodeLimits{MaxFrames: 1}); err != nil {
		t.Fatalf("MaxFrames=1 must admit a 1-frame video: %v", err)
	}
}
