package vidstream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// The .bbv container is a minimal raw video format for moving synthetic
// call recordings between the cmd/ tools:
//
//	magic "BBV1" | u32 fps | u32 w | u32 h | u32 frames | frames × w*h RGB triples
//
// All integers are little-endian. The format is intentionally
// uncompressed; the simulator's resolutions keep files small.

const codecMagic = "BBV1"

// ErrBadFormat is returned when decoding a stream that is not a valid
// .bbv container.
var ErrBadFormat = errors.New("vidstream: bad .bbv format")

// Encode writes the video to w in .bbv format.
func Encode(w io.Writer, v *Video) error {
	if err := v.Validate(); err != nil {
		return fmt.Errorf("vidstream: encode: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return fmt.Errorf("vidstream: encode magic: %w", err)
	}
	fw, fh := v.Size()
	for _, u := range []uint32{uint32(v.FPS), uint32(fw), uint32(fh), uint32(v.Len())} {
		if err := binary.Write(bw, binary.LittleEndian, u); err != nil {
			return fmt.Errorf("vidstream: encode header: %w", err)
		}
	}
	buf := make([]byte, 3*fw*fh)
	for _, f := range v.Frames {
		for i, p := range f.Pix {
			buf[3*i] = p.R
			buf[3*i+1] = p.G
			buf[3*i+2] = p.B
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("vidstream: encode frame: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("vidstream: encode flush: %w", err)
	}
	return nil
}

// DecodeLimits bounds the resources Decode commits to a container
// before any payload is read, so a crafted 20-byte header cannot make
// the decoder allocate gigabytes. Zero-valued fields fall back to the
// defaults.
type DecodeLimits struct {
	// MaxDim bounds each of frame width and height.
	MaxDim int
	// MaxFrames bounds the advertised frame count.
	MaxFrames int
	// MaxTotalBytes bounds the total decoded pixel payload — 3 bytes
	// per pixel per frame, across all frames. The header's advertised
	// product w×h×frames is checked against it before the first
	// allocation.
	MaxTotalBytes int64
}

// DefaultDecodeLimits returns the budget Decode uses: dimensions up to
// 2^14, up to 2^20 frames, and at most 256 MiB of decoded payload.
func DefaultDecodeLimits() DecodeLimits {
	return DecodeLimits{MaxDim: 1 << 14, MaxFrames: 1 << 20, MaxTotalBytes: 256 << 20}
}

func (l DecodeLimits) withDefaults() DecodeLimits {
	d := DefaultDecodeLimits()
	if l.MaxDim <= 0 {
		l.MaxDim = d.MaxDim
	}
	if l.MaxFrames <= 0 {
		l.MaxFrames = d.MaxFrames
	}
	if l.MaxTotalBytes <= 0 {
		l.MaxTotalBytes = d.MaxTotalBytes
	}
	return l
}

// Decode reads a .bbv container from r under DefaultDecodeLimits.
func Decode(r io.Reader) (*Video, error) {
	return DecodeWithLimits(r, DefaultDecodeLimits())
}

// DecodeWithLimits reads a .bbv container from r, rejecting (with an
// ErrBadFormat-wrapped error) any header whose advertised geometry,
// frame count, or total payload exceeds the limits — before allocating
// for the payload.
func DecodeWithLimits(r io.Reader, lim DecodeLimits) (*Video, error) {
	lim = lim.withDefaults()
	br := bufio.NewReader(r)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("vidstream: decode magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("vidstream: magic %q: %w", magic, ErrBadFormat)
	}
	var fps, w, h, n uint32
	for _, dst := range []*uint32{&fps, &w, &h, &n} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("vidstream: decode header: %w", err)
		}
	}
	// n == 0 is rejected too: Encode validates its input, which
	// requires at least one frame, so a zero-frame container can only
	// be crafted — and would decode into a Video violating Validate.
	if w == 0 || h == 0 || n == 0 || int64(w) > int64(lim.MaxDim) || int64(h) > int64(lim.MaxDim) || int64(n) > int64(lim.MaxFrames) {
		return nil, fmt.Errorf("vidstream: implausible geometry %dx%d×%d: %w", w, h, n, ErrBadFormat)
	}
	// Each dimension fits in lim.MaxDim and n in lim.MaxFrames, but
	// their product need not: budget the advertised payload as a whole
	// before the first allocation.
	frameBytes := 3 * int64(w) * int64(h)
	if total := frameBytes * int64(n); total > lim.MaxTotalBytes {
		return nil, fmt.Errorf("vidstream: advertised payload %d bytes exceeds budget %d: %w",
			total, lim.MaxTotalBytes, ErrBadFormat)
	}
	v := New(int(fps))
	buf := make([]byte, frameBytes)
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("vidstream: decode frame %d: %w", i, err)
		}
		f := imagex.New(int(w), int(h))
		for p := range f.Pix {
			f.Pix[p] = imagex.RGB{R: buf[3*p], G: buf[3*p+1], B: buf[3*p+2]}
		}
		v.Frames = append(v.Frames, f)
	}
	return v, nil
}

// Save writes the video to a .bbv file at path.
func Save(path string, v *Video) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vidstream: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("vidstream: close %s: %w", path, cerr)
		}
	}()
	return Encode(f, v)
}

// Load reads a .bbv file from path.
func Load(path string) (*Video, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("vidstream: open %s: %w", path, err)
	}
	defer f.Close()
	return Decode(f)
}
