package vidstream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// The .bbv container is a minimal raw video format for moving synthetic
// call recordings between the cmd/ tools:
//
//	magic "BBV1" | u32 fps | u32 w | u32 h | u32 frames | frames × w*h RGB triples
//
// All integers are little-endian. The format is intentionally
// uncompressed; the simulator's resolutions keep files small.

const codecMagic = "BBV1"

// ErrBadFormat is returned when decoding a stream that is not a valid
// .bbv container.
var ErrBadFormat = errors.New("vidstream: bad .bbv format")

// Encode writes the video to w in .bbv format.
func Encode(w io.Writer, v *Video) error {
	if err := v.Validate(); err != nil {
		return fmt.Errorf("vidstream: encode: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return fmt.Errorf("vidstream: encode magic: %w", err)
	}
	fw, fh := v.Size()
	for _, u := range []uint32{uint32(v.FPS), uint32(fw), uint32(fh), uint32(v.Len())} {
		if err := binary.Write(bw, binary.LittleEndian, u); err != nil {
			return fmt.Errorf("vidstream: encode header: %w", err)
		}
	}
	buf := make([]byte, 3*fw*fh)
	for _, f := range v.Frames {
		for i, p := range f.Pix {
			buf[3*i] = p.R
			buf[3*i+1] = p.G
			buf[3*i+2] = p.B
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("vidstream: encode frame: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("vidstream: encode flush: %w", err)
	}
	return nil
}

// Decode reads a .bbv container from r.
func Decode(r io.Reader) (*Video, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("vidstream: decode magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("vidstream: magic %q: %w", magic, ErrBadFormat)
	}
	var fps, w, h, n uint32
	for _, dst := range []*uint32{&fps, &w, &h, &n} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("vidstream: decode header: %w", err)
		}
	}
	const maxDim, maxFrames = 1 << 14, 1 << 20
	if w == 0 || h == 0 || w > maxDim || h > maxDim || n > maxFrames {
		return nil, fmt.Errorf("vidstream: implausible geometry %dx%d×%d: %w", w, h, n, ErrBadFormat)
	}
	v := New(int(fps))
	buf := make([]byte, 3*w*h)
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("vidstream: decode frame %d: %w", i, err)
		}
		f := imagex.New(int(w), int(h))
		for p := range f.Pix {
			f.Pix[p] = imagex.RGB{R: buf[3*p], G: buf[3*p+1], B: buf[3*p+2]}
		}
		v.Frames = append(v.Frames, f)
	}
	return v, nil
}

// Save writes the video to a .bbv file at path.
func Save(path string, v *Video) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("vidstream: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("vidstream: close %s: %w", path, cerr)
		}
	}()
	return Encode(f, v)
}

// Load reads a .bbv file from path.
func Load(path string) (*Video, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("vidstream: open %s: %w", path, err)
	}
	defer f.Close()
	return Decode(f)
}
