package vidstream

import (
	"math/rand"
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// noiseTestFrame builds a structured "clean" frame: flat regions, a
// hard-edged block, and a smooth gradient — content with edges but no
// isolated pixels.
func noiseTestFrame() *imagex.Image {
	f := imagex.NewFilled(64, 48, imagex.RGB{R: 20, G: 120, B: 220})
	for y := 10; y < 30; y++ {
		for x := 8; x < 40; x++ {
			f.Set(x, y, imagex.RGB{R: 240, G: 240, B: 60})
		}
	}
	for y := 32; y < 48; y++ {
		for x := 0; x < 64; x++ {
			f.Set(x, y, imagex.RGB{R: byte(4 * x), G: byte(5 * y), B: 128})
		}
	}
	return f
}

func TestImpulseNoiseCleanVsCorrupted(t *testing.T) {
	clean := noiseTestFrame()
	if score := ImpulseNoise(clean, DefaultImpulseTol); score > 0.002 {
		t.Fatalf("clean structured frame scores %v", score)
	}

	// Corrupt 5%% of pixels with random colors, as the fault injector
	// does; the score must land near the corrupted fraction.
	rng := rand.New(rand.NewSource(1))
	dirty := clean.Clone()
	n := len(dirty.Pix) / 20
	for i := 0; i < n; i++ {
		p := rng.Intn(len(dirty.Pix))
		dirty.Pix[p] = imagex.RGB{R: byte(rng.Intn(256)), G: byte(rng.Intn(256)), B: byte(rng.Intn(256))}
	}
	score := ImpulseNoise(dirty, DefaultImpulseTol)
	if score < 0.02 || score > 0.08 {
		t.Fatalf("5%% corrupted frame scores %v, want ≈ 0.05", score)
	}
}

func TestImpulseNoiseEdgeCases(t *testing.T) {
	if s := ImpulseNoise(nil, 0); s != 0 {
		t.Fatalf("nil frame scores %v", s)
	}
	// A 1x1 frame has no neighbours to disagree with.
	if s := ImpulseNoise(imagex.NewFilled(1, 1, imagex.RGB{R: 255}), 0); s != 0 {
		t.Fatalf("1x1 frame scores %v", s)
	}
	// Pure per-pixel noise saturates the score.
	rng := rand.New(rand.NewSource(2))
	f := imagex.New(32, 32)
	for i := range f.Pix {
		f.Pix[i] = imagex.RGB{R: byte(rng.Intn(256)), G: byte(rng.Intn(256)), B: byte(rng.Intn(256))}
	}
	if s := ImpulseNoise(f, DefaultImpulseTol); s < 0.5 {
		t.Fatalf("white-noise frame scores %v", s)
	}
	// Non-positive tol falls back to the default.
	if a, b := ImpulseNoise(f, 0), ImpulseNoise(f, DefaultImpulseTol); a != b {
		t.Fatalf("default tol mismatch: %v vs %v", a, b)
	}
}
