package checkpoint

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzCheckpointDecode throws arbitrary bytes at the hardened decoder.
// Invariants: never panic, reject with an error rather than allocating
// past the byte budget (enforced structurally by need()-before-alloc,
// and exercised here with a tight Limits), and every accepted container
// re-encodes to the identical bytes (the format is canonical).
func FuzzCheckpointDecode(f *testing.F) {
	// Seed 1: a fully populated valid known-image container.
	known := mustEncodeF(f, knownState(8, 6))
	f.Add(known)
	// Seed 2: a valid unknown-image container with derivation state.
	unknown := mustEncodeF(f, unknownState(9, 5))
	f.Add(unknown)
	// Seed 3-5: truncations at section boundaries.
	f.Add(known[:12])           // header only
	f.Add(known[:20])           // cut inside geometry
	f.Add(known[:len(known)/2]) // cut mid-payload
	// Seed 6: bad CRC.
	bad := append([]byte(nil), known...)
	bad[8] ^= 0xff
	f.Add(bad)
	// Seed 7: version skew.
	skew := append([]byte(nil), known...)
	binary.LittleEndian.PutUint16(skew[4:], Version+7)
	f.Add(skew)
	// Seed 8: oversized dims with a fixed-up CRC, so the fuzzer starts
	// past the CRC gate at the geometry check.
	big := append([]byte(nil), known...)
	binary.LittleEndian.PutUint32(big[12:], 0xffffffff)
	patchCRC(big)
	f.Add(big)
	// Seed 9: huge pending count behind a valid CRC.
	st := &State{W: 4, H: 4, Mode: 0,
		Recovered: knownState(4, 4).Recovered, Coverage: knownState(4, 4).Coverage}
	huge := mustEncodeF(f, st)
	binary.LittleEndian.PutUint32(huge[12+4+4+8+1+1+8+4:], 1<<31)
	patchCRC(huge)
	f.Add(huge)
	// Seed 10: nonzero mask padding bits behind a valid CRC.
	pad := mustEncodeF(f, st)
	pad[len(pad)-7] = 0xff
	patchCRC(pad)
	f.Add(pad)

	lim := Limits{MaxDim: 64, MaxPending: 16, MaxScores: 32, MaxNameLen: 64}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeWithLimits(data, lim)
		if err != nil {
			return
		}
		// Accepted containers are canonical: encode must succeed and
		// reproduce the input byte for byte.
		out, err := Encode(st)
		if err != nil {
			t.Fatalf("decoded state does not re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("encode(decode(x)) diverged: %d in, %d out", len(data), len(out))
		}
	})
}

func mustEncodeF(f *testing.F, st *State) []byte {
	f.Helper()
	data, err := Encode(st)
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	return data
}
