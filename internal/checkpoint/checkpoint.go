// Package checkpoint defines the durable on-disk format for streaming
// reconstruction state (.bbck): a compact versioned binary container
// holding everything a core.StreamReconstructor accumulates — VB
// identification state, pinned/derived VB images, coverage and
// localKnown masks, the accumulated residue and the frame counter — so
// an interrupted live session can resume at any frame boundary with
// bit-identical output (DESIGN.md §11).
//
// The package is a dumb data layer: State is a plain carrier struct and
// Encode/Decode translate it to and from bytes. internal/core owns the
// mapping between State and a live StreamReconstructor, including the
// options fingerprint that guards against resuming under a different
// configuration.
//
// Decode is hardened the same way vidstream.DecodeWithLimits is: every
// variable-length section's advertised size is validated against the
// remaining input and the Limits byte budgets BEFORE the first
// allocation for it, so a crafted header cannot force a large
// allocation, and a whole-payload CRC is verified before any field is
// parsed.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// Magic identifies a .bbck checkpoint container.
const Magic = "BBCK"

// Version is the current format version. Decoders reject other
// versions: the format carries reconstruction state whose semantics are
// pinned to the core pipeline, so cross-version resume would silently
// diverge instead of being bit-identical (versioning rules: DESIGN.md
// §11).
const Version = 1

// histBins is the color-refinement histogram size (quant12 bins).
const histBins = 4096

// ErrBadCheckpoint is wrapped by every decode failure.
var ErrBadCheckpoint = errors.New("checkpoint: bad .bbck data")

// ErrVersion is wrapped by decode failures caused by a version skew
// specifically, so callers can distinguish "corrupt" from "written by a
// different build".
var ErrVersion = fmt.Errorf("unsupported version: %w", ErrBadCheckpoint)

// Flag bits of the header flags byte.
const (
	flagFinalized  = 1 << 0
	flagIdentified = 1 << 1
	flagHasPrev    = 1 << 2
	flagHasHist    = 1 << 3
)

// Limits bounds the resources Decode commits to a container before
// allocating, mirroring vidstream.DecodeLimits. Zero-valued fields fall
// back to the defaults.
type Limits struct {
	// MaxDim bounds frame width and height.
	MaxDim int
	// MaxPending bounds the buffered pre-identification frame count.
	MaxPending int
	// MaxScores bounds the identification score-table entry count.
	MaxScores int
	// MaxNameLen bounds every embedded string (VB names).
	MaxNameLen int
}

// DefaultLimits returns the budget Decode uses: dimensions up to 2^14,
// up to 4096 buffered frames, 2^16 score entries and 1 KiB names.
func DefaultLimits() Limits {
	return Limits{MaxDim: 1 << 14, MaxPending: 1 << 12, MaxScores: 1 << 16, MaxNameLen: 1 << 10}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxDim <= 0 {
		l.MaxDim = d.MaxDim
	}
	if l.MaxPending <= 0 {
		l.MaxPending = d.MaxPending
	}
	if l.MaxScores <= 0 {
		l.MaxScores = d.MaxScores
	}
	if l.MaxNameLen <= 0 {
		l.MaxNameLen = d.MaxNameLen
	}
	return l
}

// Score is one identification score-table entry. Entries are stored
// sorted by name so the encoding is canonical: encode(decode(b)) == b
// for every valid container.
type Score struct {
	Name  string
	Score int64
}

// State is the serializable snapshot of a streaming reconstruction.
// Which sections are meaningful depends on Mode (the core.VBMode
// value): known-image streams carry Scores, the pinned VB and the
// pre-identification buffer; unknown-image streams carry the online
// derivation state. The accumulated residue (Recovered + Coverage) is
// always present. Per-frame LB masks are deliberately NOT part of the
// format — they grow linearly with call length, against the whole point
// of compact durable checkpoints (see core.StreamReconstructor.
// Checkpoint for the contract).
type State struct {
	W, H   int
	Mode   int
	Frames uint64
	// Fingerprint is core's hash of every Options field that influences
	// the deterministic evolution of the stream; resume verifies it.
	Fingerprint uint64
	Finalized   bool

	// Known-image identification state.
	Identified bool
	VBName     string
	// VBImage is the pinned virtual background (nil unless Identified).
	VBImage *imagex.Image
	Scores  []Score
	// Pending is the buffered pre-identification prefix.
	PendingFrames  []*imagex.Image
	PendingOracles []*imagex.Mask

	// Unknown-image online derivation state (nil outside that mode).
	DerivedImg   *imagex.Image
	DerivedKnown *imagex.Mask
	LocalKnown   *imagex.Mask
	RunLen       []int
	Prev         *imagex.Image

	// Color-refinement running histogram (nil when never touched).
	Hist      []int
	HistTotal uint64

	// Accumulated residue.
	Recovered *imagex.Image
	Coverage  *imagex.Mask
}

// Encode serialises the state into a .bbck container:
//
//	magic "BBCK" | u16 version | u16 reserved | u32 crc | payload
//
// with the CRC-32 (IEEE) covering the whole payload. All integers are
// little-endian; masks are packed-word encodings (imagex.AppendWords)
// and images raw RGB triples, both sized by the header dimensions.
func Encode(st *State) ([]byte, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, st.encodedSizeHint())
	buf = append(buf, Magic...)
	buf = appendU16(buf, Version)
	buf = appendU16(buf, 0)
	crcAt := len(buf)
	buf = appendU32(buf, 0) // CRC placeholder, patched below.

	payload := len(buf)
	buf = appendU32(buf, uint32(st.W))
	buf = appendU32(buf, uint32(st.H))
	buf = appendU64(buf, st.Frames)
	buf = append(buf, byte(st.Mode))
	var flags byte
	if st.Finalized {
		flags |= flagFinalized
	}
	if st.Identified {
		flags |= flagIdentified
	}
	if st.Prev != nil {
		flags |= flagHasPrev
	}
	if st.Hist != nil {
		flags |= flagHasHist
	}
	buf = append(buf, flags)
	buf = appendU64(buf, st.Fingerprint)

	scores := append([]Score(nil), st.Scores...)
	sort.Slice(scores, func(i, j int) bool { return scores[i].Name < scores[j].Name })
	buf = appendU32(buf, uint32(len(scores)))
	for _, sc := range scores {
		buf = appendU16(buf, uint16(len(sc.Name)))
		buf = append(buf, sc.Name...)
		buf = appendU64(buf, uint64(sc.Score))
	}
	if st.Identified {
		buf = appendU16(buf, uint16(len(st.VBName)))
		buf = append(buf, st.VBName...)
		buf = appendImage(buf, st.VBImage)
	}
	buf = appendU32(buf, uint32(len(st.PendingFrames)))
	for i, f := range st.PendingFrames {
		buf = appendImage(buf, f)
		buf = st.PendingOracles[i].AppendWords(buf)
	}

	if st.DerivedImg != nil {
		buf = append(buf, 1)
		buf = appendImage(buf, st.DerivedImg)
		buf = st.DerivedKnown.AppendWords(buf)
		buf = st.LocalKnown.AppendWords(buf)
		buf = appendRunLens(buf, st.RunLen)
		if st.Prev != nil {
			buf = appendImage(buf, st.Prev)
		}
	} else {
		buf = append(buf, 0)
	}

	if st.Hist != nil {
		for _, h := range st.Hist {
			buf = appendU64(buf, uint64(h))
		}
		buf = appendU64(buf, st.HistTotal)
	}

	buf = appendImage(buf, st.Recovered)
	buf = st.Coverage.AppendWords(buf)

	binary.LittleEndian.PutUint32(buf[crcAt:], crc32.ChecksumIEEE(buf[payload:]))
	return buf, nil
}

// validate rejects states Encode cannot represent faithfully.
func (st *State) validate() error {
	if st.W <= 0 || st.H <= 0 || int64(st.W) > math.MaxUint32 || int64(st.H) > math.MaxUint32 {
		return fmt.Errorf("checkpoint: encode geometry %dx%d", st.W, st.H)
	}
	if st.Mode < 0 || st.Mode > 255 {
		return fmt.Errorf("checkpoint: encode mode %d out of range", st.Mode)
	}
	if st.Recovered == nil || st.Coverage == nil {
		return errors.New("checkpoint: encode: nil accumulated residue")
	}
	if len(st.PendingFrames) != len(st.PendingOracles) {
		return fmt.Errorf("checkpoint: encode: %d pending frames, %d oracles",
			len(st.PendingFrames), len(st.PendingOracles))
	}
	if st.Identified && st.VBImage == nil {
		return errors.New("checkpoint: encode: identified without a pinned VB image")
	}
	if len(st.VBName) > math.MaxUint16 {
		return fmt.Errorf("checkpoint: encode: VB name %d bytes", len(st.VBName))
	}
	for _, sc := range st.Scores {
		if len(sc.Name) > math.MaxUint16 {
			return fmt.Errorf("checkpoint: encode: score name %d bytes", len(sc.Name))
		}
	}
	if st.DerivedImg != nil {
		if st.DerivedKnown == nil || st.LocalKnown == nil {
			return errors.New("checkpoint: encode: derivation state incomplete")
		}
		if len(st.RunLen) != st.W*st.H {
			return fmt.Errorf("checkpoint: encode: %d run lengths for %d pixels", len(st.RunLen), st.W*st.H)
		}
		for _, r := range st.RunLen {
			if r < 0 || int64(r) > math.MaxUint32 {
				return fmt.Errorf("checkpoint: encode: run length %d out of u32 range", r)
			}
		}
	}
	if st.Hist != nil && len(st.Hist) != histBins {
		return fmt.Errorf("checkpoint: encode: histogram has %d bins, want %d", len(st.Hist), histBins)
	}
	return nil
}

// encodedSizeHint pre-sizes the encode buffer (exact for the fixed
// sections, close for the rest).
func (st *State) encodedSizeHint() int {
	px := 3 * st.W * st.H
	n := 64 + px + st.Coverage.WordBytes()
	if st.DerivedImg != nil {
		n += 2*px + 4*st.W*st.H + 2*st.Coverage.WordBytes()
	}
	n += len(st.PendingFrames) * (px + st.Coverage.WordBytes())
	if st.Hist != nil {
		n += 8*histBins + 8
	}
	return n
}

// Decode parses a .bbck container under DefaultLimits.
func Decode(data []byte) (*State, error) {
	return DecodeWithLimits(data, DefaultLimits())
}

// DecodeWithLimits parses a .bbck container, rejecting (with an
// ErrBadCheckpoint-wrapped error, never a panic) malformed input, CRC
// mismatches, version skew, and any header whose advertised geometry or
// section sizes exceed the limits or the remaining input — checked
// before each section is allocated.
func DecodeWithLimits(data []byte, lim Limits) (*State, error) {
	lim = lim.withDefaults()
	if len(data) < len(Magic)+8 {
		return nil, fmt.Errorf("checkpoint: %d-byte input shorter than header: %w", len(data), ErrBadCheckpoint)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("checkpoint: magic %q: %w", data[:len(Magic)], ErrBadCheckpoint)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, fmt.Errorf("checkpoint: version %d, this build reads %d: %w", v, Version, ErrVersion)
	}
	wantCRC := binary.LittleEndian.Uint32(data[8:])
	payload := data[12:]
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("checkpoint: CRC %08x, header claims %08x: %w", got, wantCRC, ErrBadCheckpoint)
	}

	d := &reader{data: payload}
	st := &State{}
	w, err := d.u32()
	if err != nil {
		return nil, err
	}
	h, err := d.u32()
	if err != nil {
		return nil, err
	}
	if w == 0 || h == 0 || int64(w) > int64(lim.MaxDim) || int64(h) > int64(lim.MaxDim) {
		return nil, fmt.Errorf("checkpoint: implausible geometry %dx%d: %w", w, h, ErrBadCheckpoint)
	}
	st.W, st.H = int(w), int(h)
	if st.Frames, err = d.u64(); err != nil {
		return nil, err
	}
	mode, err := d.u8()
	if err != nil {
		return nil, err
	}
	st.Mode = int(mode)
	flags, err := d.u8()
	if err != nil {
		return nil, err
	}
	if flags&^(flagFinalized|flagIdentified|flagHasPrev|flagHasHist) != 0 {
		return nil, fmt.Errorf("checkpoint: unknown flag bits %02x: %w", flags, ErrBadCheckpoint)
	}
	st.Finalized = flags&flagFinalized != 0
	st.Identified = flags&flagIdentified != 0
	if st.Fingerprint, err = d.u64(); err != nil {
		return nil, err
	}

	nScores, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int64(nScores) > int64(lim.MaxScores) {
		return nil, fmt.Errorf("checkpoint: %d score entries exceed budget %d: %w", nScores, lim.MaxScores, ErrBadCheckpoint)
	}
	// Every entry needs ≥ 10 bytes; reject the count against the
	// remaining input before allocating the table.
	if err := d.need(10 * int64(nScores)); err != nil {
		return nil, err
	}
	st.Scores = make([]Score, 0, nScores)
	prevName := ""
	for i := uint32(0); i < nScores; i++ {
		name, err := d.str(lim.MaxNameLen)
		if err != nil {
			return nil, err
		}
		if i > 0 && name <= prevName {
			return nil, fmt.Errorf("checkpoint: score table not strictly sorted at %q: %w", name, ErrBadCheckpoint)
		}
		prevName = name
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		st.Scores = append(st.Scores, Score{Name: name, Score: int64(v)})
	}
	if st.Identified {
		if st.VBName, err = d.str(lim.MaxNameLen); err != nil {
			return nil, err
		}
		if st.VBImage, err = d.image(st.W, st.H); err != nil {
			return nil, err
		}
	}
	nPending, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int64(nPending) > int64(lim.MaxPending) {
		return nil, fmt.Errorf("checkpoint: %d pending frames exceed budget %d: %w", nPending, lim.MaxPending, ErrBadCheckpoint)
	}
	perPending := int64(3*st.W*st.H) + int64(maskBytes(st.W, st.H))
	if err := d.need(perPending * int64(nPending)); err != nil {
		return nil, err
	}
	st.PendingFrames = make([]*imagex.Image, 0, nPending)
	st.PendingOracles = make([]*imagex.Mask, 0, nPending)
	for i := uint32(0); i < nPending; i++ {
		f, err := d.image(st.W, st.H)
		if err != nil {
			return nil, err
		}
		o, err := d.mask(st.W, st.H)
		if err != nil {
			return nil, err
		}
		st.PendingFrames = append(st.PendingFrames, f)
		st.PendingOracles = append(st.PendingOracles, o)
	}

	hasDerived, err := d.u8()
	if err != nil {
		return nil, err
	}
	switch hasDerived {
	case 0:
	case 1:
		if st.DerivedImg, err = d.image(st.W, st.H); err != nil {
			return nil, err
		}
		if st.DerivedKnown, err = d.mask(st.W, st.H); err != nil {
			return nil, err
		}
		if st.LocalKnown, err = d.mask(st.W, st.H); err != nil {
			return nil, err
		}
		if err := d.need(4 * int64(st.W) * int64(st.H)); err != nil {
			return nil, err
		}
		st.RunLen = make([]int, st.W*st.H)
		for i := range st.RunLen {
			v, _ := d.u32() // length pre-checked above
			st.RunLen[i] = int(v)
		}
		if flags&flagHasPrev != 0 {
			if st.Prev, err = d.image(st.W, st.H); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("checkpoint: derivation presence byte %d: %w", hasDerived, ErrBadCheckpoint)
	}
	if hasDerived == 0 && flags&flagHasPrev != 0 {
		return nil, fmt.Errorf("checkpoint: prev frame without derivation state: %w", ErrBadCheckpoint)
	}

	if flags&flagHasHist != 0 {
		if err := d.need(8*histBins + 8); err != nil {
			return nil, err
		}
		st.Hist = make([]int, histBins)
		for i := range st.Hist {
			v, _ := d.u64()
			if v > math.MaxInt64 {
				return nil, fmt.Errorf("checkpoint: histogram bin %d overflows: %w", i, ErrBadCheckpoint)
			}
			st.Hist[i] = int(v)
		}
		st.HistTotal, _ = d.u64()
	}

	if st.Recovered, err = d.image(st.W, st.H); err != nil {
		return nil, err
	}
	if st.Coverage, err = d.mask(st.W, st.H); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("checkpoint: %d trailing bytes: %w", d.remaining(), ErrBadCheckpoint)
	}
	return st, nil
}

// maskBytes returns the packed-word encoding size for a w×h mask
// without allocating one.
func maskBytes(w, h int) int { return 8 * h * ((w + 63) >> 6) }

// reader is a bounds-checked cursor over the payload. Every accessor
// validates the remaining length before reading, and the section
// decoders call need() with the full advertised size before their first
// allocation.
type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int64 { return int64(len(r.data) - r.off) }

func (r *reader) need(n int64) error {
	if n < 0 || n > r.remaining() {
		return fmt.Errorf("checkpoint: section of %d bytes exceeds %d remaining: %w", n, r.remaining(), ErrBadCheckpoint)
	}
	return nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if err := r.need(int64(n)); err != nil {
		return nil, err
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// str reads a u16-length-prefixed string bounded by maxLen.
func (r *reader) str(maxLen int) (string, error) {
	b, err := r.bytes(2)
	if err != nil {
		return "", err
	}
	n := int(binary.LittleEndian.Uint16(b))
	if n > maxLen {
		return "", fmt.Errorf("checkpoint: %d-byte string exceeds budget %d: %w", n, maxLen, ErrBadCheckpoint)
	}
	s, err := r.bytes(n)
	if err != nil {
		return "", err
	}
	return string(s), nil
}

// image reads a raw w×h RGB raster.
func (r *reader) image(w, h int) (*imagex.Image, error) {
	b, err := r.bytes(3 * w * h)
	if err != nil {
		return nil, err
	}
	img := imagex.New(w, h)
	for i := range img.Pix {
		img.Pix[i] = imagex.RGB{R: b[3*i], G: b[3*i+1], B: b[3*i+2]}
	}
	return img, nil
}

// mask reads a packed-word w×h mask, rejecting padding-bit violations.
func (r *reader) mask(w, h int) (*imagex.Mask, error) {
	b, err := r.bytes(maskBytes(w, h))
	if err != nil {
		return nil, err
	}
	m := imagex.NewMask(w, h)
	if err := m.LoadWords(b); err != nil {
		return nil, fmt.Errorf("checkpoint: %w: %w", err, ErrBadCheckpoint)
	}
	return m, nil
}

// appendImage appends the raw RGB raster of img.
func appendImage(buf []byte, img *imagex.Image) []byte {
	// Grow once and write by index: images dominate the payload
	// (pending windows carry one per buffered frame), and the per-pixel
	// append used to re-check capacity three million times per 640×360
	// plane. Byte output is identical.
	n := len(buf)
	need := 3 * len(img.Pix)
	if cap(buf)-n < need {
		grown := make([]byte, n, n+need)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:n+need]
	for i, p := range img.Pix {
		o := n + 3*i
		buf[o], buf[o+1], buf[o+2] = p.R, p.G, p.B
	}
	return buf
}

// appendRunLens writes the derivation run counters as exact u32, the
// wire encoding the format has always used. The core layer now keeps
// them as saturating uint16 in memory and widens on write, so the
// encoding — and every pre-existing container — is unchanged.
func appendRunLens(buf []byte, rl []int) []byte {
	n := len(buf)
	need := 4 * len(rl)
	if cap(buf)-n < need {
		grown := make([]byte, n, n+need)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:n+need]
	for i, r := range rl {
		binary.LittleEndian.PutUint32(buf[n+4*i:], uint32(r))
	}
	return buf
}

func appendU16(buf []byte, v uint16) []byte {
	return append(buf, byte(v), byte(v>>8))
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(buf []byte, v uint64) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
