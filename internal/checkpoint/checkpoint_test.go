package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"strings"
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// testImage returns a deterministic w×h raster keyed by seed.
func testImage(w, h int, seed byte) *imagex.Image {
	img := imagex.New(w, h)
	for i := range img.Pix {
		img.Pix[i] = imagex.RGB{
			R: byte(i) + seed,
			G: byte(i>>3) ^ seed,
			B: byte(i>>6) + 3*seed,
		}
	}
	return img
}

// testMask returns a deterministic w×h mask keyed by seed.
func testMask(w, h int, seed int) *imagex.Mask {
	m := imagex.NewMask(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if (x*7+y*13+seed)%3 == 0 {
				m.Set(x, y, true)
			}
		}
	}
	return m
}

// knownState builds a representative known-image state: a score table,
// a pinned VB and a non-empty pending buffer (the buffer would be empty
// after identification in a real stream, but the format does not care —
// core.validateResumeState does).
func knownState(w, h int) *State {
	hist := make([]int, histBins)
	hist[0], hist[17], hist[histBins-1] = 4, 9, 1
	return &State{
		W: w, H: h, Mode: 0, Frames: 42, Fingerprint: 0xdeadbeefcafe,
		Identified: true, VBName: "beach", VBImage: testImage(w, h, 5),
		Scores:         []Score{{Name: "beach", Score: 900}, {Name: "office", Score: 120}},
		PendingFrames:  []*imagex.Image{testImage(w, h, 1), testImage(w, h, 2)},
		PendingOracles: []*imagex.Mask{testMask(w, h, 1), testMask(w, h, 2)},
		Hist:           hist, HistTotal: 14,
		Recovered: testImage(w, h, 9), Coverage: testMask(w, h, 9),
	}
}

// unknownState builds a representative unknown-image state.
func unknownState(w, h int) *State {
	runLen := make([]int, w*h)
	for i := range runLen {
		runLen[i] = 1 + i%7
	}
	return &State{
		W: w, H: h, Mode: 1, Frames: 7, Fingerprint: 1,
		DerivedImg: testImage(w, h, 3), DerivedKnown: testMask(w, h, 3),
		LocalKnown: testMask(w, h, 4), RunLen: runLen, Prev: testImage(w, h, 6),
		Recovered: testImage(w, h, 8), Coverage: testMask(w, h, 8),
	}
}

func mustEncode(t *testing.T, st *State) []byte {
	t.Helper()
	data, err := Encode(st)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return data
}

func imagesEqual(a, b *imagex.Image) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.W != b.W || a.H != b.H || len(a.Pix) != len(b.Pix) {
		return false
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			return false
		}
	}
	return true
}

func masksEqual(a, b *imagex.Mask) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.W == b.W && a.H == b.H && bytes.Equal(a.AppendWords(nil), b.AppendWords(nil))
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		st   *State
	}{
		{"known", knownState(13, 9)},     // 13 exercises mask row padding
		{"unknown", unknownState(64, 4)}, // word-aligned width
		{"unknown-noprev", func() *State { s := unknownState(5, 5); s.Prev = nil; return s }()},
		{"finalized-min", &State{W: 1, H: 1, Mode: 0, Finalized: true,
			Recovered: imagex.New(1, 1), Coverage: imagex.NewMask(1, 1)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := mustEncode(t, tc.st)
			got, err := Decode(data)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got.W != tc.st.W || got.H != tc.st.H || got.Mode != tc.st.Mode ||
				got.Frames != tc.st.Frames || got.Fingerprint != tc.st.Fingerprint ||
				got.Finalized != tc.st.Finalized || got.Identified != tc.st.Identified ||
				got.VBName != tc.st.VBName || got.HistTotal != tc.st.HistTotal {
				t.Fatalf("scalar fields diverged:\n got %+v\nwant %+v", got, tc.st)
			}
			if len(got.Scores) != len(tc.st.Scores) {
				t.Fatalf("got %d scores, want %d", len(got.Scores), len(tc.st.Scores))
			}
			for i, sc := range got.Scores {
				if sc != tc.st.Scores[i] {
					t.Errorf("score[%d] = %+v, want %+v", i, sc, tc.st.Scores[i])
				}
			}
			if !imagesEqual(got.VBImage, tc.st.VBImage) {
				t.Error("VBImage diverged")
			}
			if len(got.PendingFrames) != len(tc.st.PendingFrames) {
				t.Fatalf("got %d pending frames, want %d", len(got.PendingFrames), len(tc.st.PendingFrames))
			}
			for i := range got.PendingFrames {
				if !imagesEqual(got.PendingFrames[i], tc.st.PendingFrames[i]) ||
					!masksEqual(got.PendingOracles[i], tc.st.PendingOracles[i]) {
					t.Errorf("pending[%d] diverged", i)
				}
			}
			if !imagesEqual(got.DerivedImg, tc.st.DerivedImg) || !masksEqual(got.DerivedKnown, tc.st.DerivedKnown) ||
				!masksEqual(got.LocalKnown, tc.st.LocalKnown) || !imagesEqual(got.Prev, tc.st.Prev) {
				t.Error("derivation state diverged")
			}
			if len(got.RunLen) != len(tc.st.RunLen) {
				t.Fatalf("got %d run lengths, want %d", len(got.RunLen), len(tc.st.RunLen))
			}
			for i := range got.RunLen {
				if got.RunLen[i] != tc.st.RunLen[i] {
					t.Fatalf("runLen[%d] = %d, want %d", i, got.RunLen[i], tc.st.RunLen[i])
				}
			}
			if tc.st.Hist != nil {
				for i := range tc.st.Hist {
					if got.Hist[i] != tc.st.Hist[i] {
						t.Fatalf("hist[%d] = %d, want %d", i, got.Hist[i], tc.st.Hist[i])
					}
				}
			} else if got.Hist != nil {
				t.Error("decoded a histogram that was never encoded")
			}
			if !imagesEqual(got.Recovered, tc.st.Recovered) || !masksEqual(got.Coverage, tc.st.Coverage) {
				t.Error("accumulated residue diverged")
			}

			// Canonical encoding: re-encoding the decoded state must
			// reproduce the container byte for byte.
			again := mustEncode(t, got)
			if !bytes.Equal(data, again) {
				t.Errorf("encode(decode(x)) != x: %d vs %d bytes", len(again), len(data))
			}
		})
	}
}

func TestEncodeCanonicalScoreOrder(t *testing.T) {
	st := knownState(4, 4)
	st.Scores = []Score{{Name: "office", Score: 120}, {Name: "beach", Score: 900}}
	a := mustEncode(t, st)
	st.Scores = []Score{{Name: "beach", Score: 900}, {Name: "office", Score: 120}}
	b := mustEncode(t, st)
	if !bytes.Equal(a, b) {
		t.Error("score-table input order leaked into the encoding")
	}
}

func TestEncodeRejects(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(st *State)
	}{
		{"zero-width", func(st *State) { st.W = 0 }},
		{"nil-recovered", func(st *State) { st.Recovered = nil }},
		{"pending-mismatch", func(st *State) { st.PendingOracles = st.PendingOracles[:1] }},
		{"identified-without-image", func(st *State) { st.VBImage = nil }},
		{"mode-out-of-range", func(st *State) { st.Mode = 256 }},
		{"long-name", func(st *State) { st.VBName = strings.Repeat("x", 1<<16+1) }},
		{"bad-hist-len", func(st *State) { st.Hist = make([]int, 7) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st := knownState(4, 4)
			tc.mutate(st)
			if _, err := Encode(st); err == nil {
				t.Error("Encode accepted an unrepresentable state")
			}
		})
	}
	t.Run("bad-runlen", func(t *testing.T) {
		st := unknownState(4, 4)
		st.RunLen[3] = -1
		if _, err := Encode(st); err == nil {
			t.Error("Encode accepted a negative run length")
		}
	})
}

// patchCRC recomputes the payload CRC after a deliberate mutation, so
// the test reaches the parser instead of the CRC gate.
func patchCRC(data []byte) {
	binary.LittleEndian.PutUint32(data[8:], crc32.ChecksumIEEE(data[12:]))
}

func TestDecodeRejects(t *testing.T) {
	valid := mustEncode(t, knownState(8, 6))

	t.Run("truncated", func(t *testing.T) {
		for n := 0; n < len(valid); n += 7 {
			if _, err := Decode(valid[:n]); err == nil {
				t.Fatalf("accepted %d-byte truncation", n)
			} else if !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("truncation at %d: error %v does not wrap ErrBadCheckpoint", n, err)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[0] = 'X'
		if _, err := Decode(data); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("bad magic: %v", err)
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint16(data[4:], Version+1)
		_, err := Decode(data)
		if !errors.Is(err, ErrVersion) {
			t.Errorf("version skew: %v does not wrap ErrVersion", err)
		}
		if !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("version skew: %v does not wrap ErrBadCheckpoint", err)
		}
	})
	t.Run("crc-mismatch", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[len(data)-1] ^= 0x40
		if _, err := Decode(data); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("flipped payload bit: %v", err)
		}
	})
	t.Run("trailing-bytes", func(t *testing.T) {
		data := append(append([]byte(nil), valid...), 0)
		patchCRC(data)
		if _, err := Decode(data); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Errorf("trailing byte: %v", err)
		}
	})
	t.Run("oversized-dims", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		binary.LittleEndian.PutUint32(data[12:], 1<<20) // width beyond MaxDim
		patchCRC(data)
		if _, err := Decode(data); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("oversized width: %v", err)
		}
	})
	t.Run("unknown-flags", func(t *testing.T) {
		data := append([]byte(nil), valid...)
		data[12+4+4+8+1] |= 0x80
		patchCRC(data)
		if _, err := Decode(data); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("unknown flag bit: %v", err)
		}
	})
	t.Run("unsorted-scores", func(t *testing.T) {
		// Swap the two score entries in place: same lengths, so offsets
		// of later sections are unchanged.
		st := knownState(4, 4)
		st.Scores = []Score{{Name: "aaaaa", Score: 1}, {Name: "bbbbb", Score: 2}}
		data := mustEncode(t, st)
		i := bytes.Index(data, []byte("aaaaa"))
		j := bytes.Index(data, []byte("bbbbb"))
		copy(data[i:], "bbbbb")
		copy(data[j:], "aaaaa")
		patchCRC(data)
		if _, err := Decode(data); err == nil || !strings.Contains(err.Error(), "sorted") {
			t.Errorf("unsorted score table: %v", err)
		}
	})
	t.Run("huge-pending-count", func(t *testing.T) {
		// A small container advertising 2^31 pending frames must be
		// rejected by the budget/need checks, not allocate.
		st := &State{W: 4, H: 4, Mode: 0,
			Recovered: imagex.New(4, 4), Coverage: imagex.NewMask(4, 4)}
		data := mustEncode(t, st)
		// Payload layout: w(4) h(4) frames(8) mode(1) flags(1) fprint(8)
		// nScores(4)=0 nPending(4).
		off := 12 + 4 + 4 + 8 + 1 + 1 + 8 + 4
		binary.LittleEndian.PutUint32(data[off:], 1<<31)
		patchCRC(data)
		if _, err := Decode(data); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("huge pending count: %v", err)
		}
	})
	t.Run("mask-padding-bits", func(t *testing.T) {
		// Width 8 in a 64-bit word leaves 56 padding bits; setting one
		// must be rejected so whole-word mask ops stay sound.
		st := &State{W: 8, H: 2, Mode: 0,
			Recovered: imagex.New(8, 2), Coverage: imagex.NewMask(8, 2)}
		data := mustEncode(t, st)
		data[len(data)-7] = 0xff // high bytes of the final coverage word
		patchCRC(data)
		if _, err := Decode(data); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("nonzero padding bits: %v", err)
		}
	})
	t.Run("tight-limits", func(t *testing.T) {
		if _, err := DecodeWithLimits(valid, Limits{MaxDim: 4}); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("MaxDim below geometry: %v", err)
		}
		if _, err := DecodeWithLimits(valid, Limits{MaxScores: 1}); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("MaxScores below table: %v", err)
		}
		if _, err := DecodeWithLimits(valid, Limits{MaxPending: 1}); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("MaxPending below buffer: %v", err)
		}
		if _, err := DecodeWithLimits(valid, Limits{MaxNameLen: 2}); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("MaxNameLen below names: %v", err)
		}
		if _, err := DecodeWithLimits(valid, Limits{}); err != nil {
			t.Errorf("zero limits should mean defaults: %v", err)
		}
	})
}
