// Package scene generates synthetic room backgrounds for simulated video
// calls. Each scene carries a ground-truth inventory of the objects it
// contains (kind, bounding box, dominant hue, any rendered text), which
// the evaluation harness uses to score the object-tracking, generic
// object-detection and text-inference attacks without human labeling.
//
// This package is the substitute for the paper's real participant rooms
// (E1/E2) and in-the-wild YouTube backdrops (E3); see DESIGN.md §2.
package scene

import (
	"fmt"
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// ObjectKind enumerates the object vocabulary the generator can plant.
// The generic-detection attack (paper §VI) reports detections over the
// same vocabulary.
type ObjectKind int

// Object kinds. The set mirrors the objects the paper actually detected
// in participant backgrounds: books, bookshelves, TVs, monitors, clocks,
// posters, windows, doors, and sticky notes carrying text.
const (
	KindBook ObjectKind = iota + 1
	KindBookshelf
	KindTV
	KindMonitor
	KindClock
	KindPoster
	KindStickyNote
	KindWindow
	KindDoor
	KindShirt
)

// String returns the lower-case label used in reports.
func (k ObjectKind) String() string {
	switch k {
	case KindBook:
		return "book"
	case KindBookshelf:
		return "bookshelf"
	case KindTV:
		return "tv"
	case KindMonitor:
		return "monitor"
	case KindClock:
		return "clock"
	case KindPoster:
		return "poster"
	case KindStickyNote:
		return "sticky-note"
	case KindWindow:
		return "window"
	case KindDoor:
		return "door"
	case KindShirt:
		return "shirt"
	default:
		return fmt.Sprintf("object(%d)", int(k))
	}
}

// Object is a ground-truth inventory entry: what was planted and where.
type Object struct {
	Kind ObjectKind
	// Bounding box, x1/y1 exclusive.
	X0, Y0, X1, Y1 int
	// Hue is the dominant hue of the object in degrees, used as the
	// object-tracking template signature.
	Hue float64
	// Text is the string rendered on the object (sticky notes, posters);
	// empty otherwise.
	Text string
}

// Area returns the object's bounding-box pixel area.
func (o Object) Area() int { return (o.X1 - o.X0) * (o.Y1 - o.Y0) }

// Scene is a generated room background: the fully lit base raster plus
// the object inventory.
type Scene struct {
	W, H int
	// Base is the background image under full lighting.
	Base *imagex.Image
	// Objects is the ground-truth inventory.
	Objects []Object
	// WallHue is the dominant hue of the wall paint, used by the person
	// renderer to choose apparel similar or contrasting to the wall.
	WallHue float64
}

// Config controls scene generation.
type Config struct {
	W, H int
	// Clutter in [0,1] scales how many optional objects are placed.
	Clutter float64
	// StickyText, when non-empty, forces a sticky note carrying the text.
	StickyText string
	// ForceKinds lists object kinds that must be present regardless of
	// clutter level.
	ForceKinds []ObjectKind
}

// DefaultConfig returns the geometry used across the simulator unless an
// experiment overrides it.
func DefaultConfig() Config {
	return Config{W: 160, H: 120, Clutter: 0.6}
}

// Generate builds a deterministic scene from cfg and rng. It panics on a
// non-positive geometry (caller bug); all other inputs are clamped.
func Generate(cfg Config, rng *rand.Rand) *Scene {
	if cfg.W <= 0 || cfg.H <= 0 {
		panic(fmt.Sprintf("scene: invalid size %dx%d", cfg.W, cfg.H))
	}
	if cfg.Clutter < 0 {
		cfg.Clutter = 0
	}
	if cfg.Clutter > 1 {
		cfg.Clutter = 1
	}

	s := &Scene{W: cfg.W, H: cfg.H, Base: imagex.New(cfg.W, cfg.H)}

	// Wall paint: muted hue, low-to-mid saturation.
	s.WallHue = rng.Float64() * 360
	wall := imagex.HSV{H: s.WallHue, S: 0.08 + rng.Float64()*0.22, V: 0.55 + rng.Float64()*0.35}.ToRGB()
	s.Base.Fill(wall)
	s.addWallTexture(rng, wall)

	// Floor / desk band at the bottom.
	deskTop := cfg.H - cfg.H/6
	desk := imagex.HSV{H: 25 + rng.Float64()*20, S: 0.45 + rng.Float64()*0.2, V: 0.3 + rng.Float64()*0.25}.ToRGB()
	s.Base.FillRect(0, deskTop, cfg.W, cfg.H, desk)

	forced := map[ObjectKind]bool{}
	for _, k := range cfg.ForceKinds {
		forced[k] = true
	}
	if cfg.StickyText != "" {
		forced[KindStickyNote] = true
	}

	place := func(k ObjectKind, prob float64) {
		if forced[k] || rng.Float64() < prob*cfg.Clutter {
			s.placeObject(k, cfg, rng)
		}
	}
	place(KindWindow, 0.55)
	place(KindDoor, 0.45)
	place(KindBookshelf, 0.6)
	place(KindTV, 0.35)
	place(KindMonitor, 0.45)
	place(KindClock, 0.5)
	place(KindPoster, 0.65)
	place(KindStickyNote, 0.4)
	place(KindShirt, 0.3)

	// Forced sticky note text overrides the random text of the last
	// sticky note placed.
	if cfg.StickyText != "" {
		for i := len(s.Objects) - 1; i >= 0; i-- {
			if s.Objects[i].Kind == KindStickyNote {
				s.renderStickyText(i, cfg.StickyText)
				break
			}
		}
	}
	return s
}

// addWallTexture adds faint large-scale tonal variation so walls are not
// perfectly uniform (uniform walls make the leak-detection problem
// artificially easy for the hue matcher).
func (s *Scene) addWallTexture(rng *rand.Rand, wall imagex.RGB) {
	blobs := 3 + rng.Intn(4)
	for i := 0; i < blobs; i++ {
		cx, cy := rng.Intn(s.W), rng.Intn(s.H)
		r := s.W/8 + rng.Intn(s.W/6+1)
		delta := 1.0 + rng.Float64()*0.08
		if rng.Intn(2) == 0 {
			delta = 1.0 - rng.Float64()*0.08
		}
		tint := imagex.RGB{
			R: scaleChan(wall.R, delta),
			G: scaleChan(wall.G, delta),
			B: scaleChan(wall.B, delta),
		}
		s.Base.FillEllipse(cx, cy, r, r, tint)
	}
}

func scaleChan(v uint8, f float64) uint8 {
	x := float64(v) * f
	if x > 255 {
		x = 255
	}
	if x < 0 {
		x = 0
	}
	return uint8(x)
}

// Lit returns a copy of the base image under the given lighting factor;
// 1.0 is fully lit (lights ON), the paper's lights-OFF condition maps to
// roughly 0.45.
func (s *Scene) Lit(light float64) *imagex.Image {
	out := s.Base.Clone()
	if light != 1.0 {
		out.ScaleBrightness(light)
	}
	return out
}

// Find returns all inventory objects of the given kind.
func (s *Scene) Find(kind ObjectKind) []Object {
	var out []Object
	for _, o := range s.Objects {
		if o.Kind == kind {
			out = append(out, o)
		}
	}
	return out
}

// Template returns a cropped copy of the base image covering the
// object's bounding box — the "array of pixels describing the desired
// object" that the specific-object-tracking attack assumes the adversary
// possesses.
func (s *Scene) Template(o Object) *imagex.Image {
	return s.Base.Crop(o.X0, o.Y0, o.X1, o.Y1)
}
