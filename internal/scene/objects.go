package scene

import (
	"math/rand"
	"strings"

	"github.com/bgbuster/bgbuster/internal/font"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

// randomStickyWords is the pool of short strings rendered on sticky
// notes and posters; all characters are covered by the bitmap font.
var randomStickyWords = []string{
	"PIN 4821", "WIFI KEY", "CALL BOB", "TAX DUE", "RENT 950",
	"ACCT 7730", "DR. 2PM", "CODE 19", "BUY MILK", "VOTE NOW",
}

// placeObject renders one object of the given kind at a random free
// position and records it in the inventory.
func (s *Scene) placeObject(k ObjectKind, cfg Config, rng *rand.Rand) {
	w, h := s.W, s.H
	deskTop := h - h/6

	var ow, oh int
	switch k {
	case KindWindow:
		ow, oh = w/4, h/3
	case KindDoor:
		ow, oh = w/6, deskTop*2/3
	case KindBookshelf:
		ow, oh = w/4, h/3
	case KindTV:
		ow, oh = w/4, h/5
	case KindMonitor:
		ow, oh = w/6, h/7
	case KindClock:
		ow, oh = h/6, h/6
	case KindPoster:
		ow, oh = w/5, h/4
	case KindStickyNote:
		ow, oh = w/5, h/9
	case KindShirt:
		ow, oh = w/5, h/4
	default:
		return
	}
	if ow < 4 {
		ow = 4
	}
	if oh < 4 {
		oh = 4
	}

	x0, y0, ok := s.findSpot(k, ow, oh, deskTop, rng)
	if !ok {
		return
	}
	switch k {
	case KindWindow:
		s.renderWindow(x0, y0, ow, oh, rng)
	case KindDoor:
		s.renderDoor(x0, deskTop-oh, ow, oh, rng)
	case KindBookshelf:
		s.renderBookshelf(x0, y0, ow, oh, rng)
	case KindTV:
		s.renderTV(x0, y0, ow, oh, rng)
	case KindMonitor:
		s.renderMonitor(x0, deskTop-oh, ow, oh, rng)
	case KindClock:
		s.renderClock(x0, y0, ow, rng)
	case KindPoster:
		s.renderPoster(x0, y0, ow, oh, rng)
	case KindStickyNote:
		s.renderSticky(x0, y0, ow, oh, rng)
	case KindShirt:
		s.renderShirt(x0, y0, ow, oh, rng)
	}
}

// findSpot searches for a placement whose bounding box stays clear of
// existing inventory. Wall objects live above the desk; desk/floor
// objects are pinned by their renderer. After maxTries the placement is
// abandoned (the scene simply lacks that object).
func (s *Scene) findSpot(k ObjectKind, ow, oh, deskTop int, rng *rand.Rand) (int, int, bool) {
	const maxTries = 40
	for try := 0; try < maxTries; try++ {
		maxX := s.W - ow
		if maxX <= 0 {
			return 0, 0, false
		}
		x0 := rng.Intn(maxX)
		var y0 int
		switch k {
		case KindDoor, KindMonitor:
			// Pinned to the desk/floor line by the renderer; only x varies.
			y0 = deskTop - oh
		default:
			maxY := deskTop - oh
			if maxY <= 0 {
				return 0, 0, false
			}
			y0 = rng.Intn(maxY)
		}
		if !s.overlapsInventory(x0, y0, x0+ow, y0+oh) {
			return x0, y0, true
		}
	}
	return 0, 0, false
}

func (s *Scene) overlapsInventory(x0, y0, x1, y1 int) bool {
	for _, o := range s.Objects {
		if x0 < o.X1 && o.X0 < x1 && y0 < o.Y1 && o.Y0 < y1 {
			return true
		}
	}
	return false
}

func (s *Scene) record(k ObjectKind, x0, y0, x1, y1 int, hue float64, text string) {
	s.Objects = append(s.Objects, Object{Kind: k, X0: x0, Y0: y0, X1: x1, Y1: y1, Hue: hue, Text: text})
}

func (s *Scene) renderWindow(x0, y0, ow, oh int, rng *rand.Rand) {
	frame := imagex.RGB{R: 235, G: 235, B: 230}
	sky := imagex.HSV{H: 205, S: 0.35 + rng.Float64()*0.2, V: 0.85}.ToRGB()
	s.Base.FillRect(x0, y0, x0+ow, y0+oh, frame)
	s.Base.FillRect(x0+1, y0+1, x0+ow-1, y0+oh-1, sky)
	// Cross mullions.
	s.Base.FillRect(x0+ow/2, y0, x0+ow/2+1, y0+oh, frame)
	s.Base.FillRect(x0, y0+oh/2, x0+ow, y0+oh/2+1, frame)
	s.record(KindWindow, x0, y0, x0+ow, y0+oh, 205, "")
}

func (s *Scene) renderDoor(x0, y0, ow, oh int, rng *rand.Rand) {
	hue := 20 + rng.Float64()*25 // wooden browns
	body := imagex.HSV{H: hue, S: 0.5, V: 0.35 + rng.Float64()*0.2}.ToRGB()
	s.Base.FillRect(x0, y0, x0+ow, y0+oh, body)
	s.Base.StrokeRect(x0, y0, x0+ow, y0+oh, imagex.RGB{R: 40, G: 25, B: 12})
	// Handle.
	s.Base.FillCircle(x0+ow-3, y0+oh/2, 1, imagex.RGB{R: 220, G: 200, B: 90})
	s.record(KindDoor, x0, y0, x0+ow, y0+oh, hue, "")
}

// renderBookshelf draws a shelf case with rows of colored book spines.
// Each spine is also recorded as an individual KindBook object so the
// detectors can be scored on "books" like the paper's COCO classes.
func (s *Scene) renderBookshelf(x0, y0, ow, oh int, rng *rand.Rand) {
	caseColor := imagex.HSV{H: 28, S: 0.55, V: 0.30}.ToRGB()
	s.Base.FillRect(x0, y0, x0+ow, y0+oh, caseColor)
	rows := 2
	rowH := oh / rows
	for r := 0; r < rows; r++ {
		shelfY0 := y0 + r*rowH + 1
		shelfY1 := y0 + (r+1)*rowH - 2
		x := x0 + 1
		for x < x0+ow-3 {
			bw := 2 + rng.Intn(3)
			if x+bw > x0+ow-1 {
				bw = x0 + ow - 1 - x
			}
			if bw < 2 {
				break
			}
			hue := rng.Float64() * 360
			spine := imagex.HSV{H: hue, S: 0.6 + rng.Float64()*0.35, V: 0.5 + rng.Float64()*0.4}.ToRGB()
			top := shelfY0 + rng.Intn(3)
			s.Base.FillRect(x, top, x+bw, shelfY1, spine)
			s.record(KindBook, x, top, x+bw, shelfY1, hue, "")
			x += bw + 1
		}
	}
	s.record(KindBookshelf, x0, y0, x0+ow, y0+oh, 28, "")
}

func (s *Scene) renderTV(x0, y0, ow, oh int, rng *rand.Rand) {
	bezel := imagex.RGB{R: 15, G: 15, B: 18}
	screenHue := 220 + rng.Float64()*40
	screen := imagex.HSV{H: screenHue, S: 0.5, V: 0.12 + rng.Float64()*0.1}.ToRGB()
	s.Base.FillRect(x0, y0, x0+ow, y0+oh, bezel)
	s.Base.FillRect(x0+2, y0+2, x0+ow-2, y0+oh-2, screen)
	s.record(KindTV, x0, y0, x0+ow, y0+oh, screenHue, "")
}

func (s *Scene) renderMonitor(x0, y0, ow, oh int, rng *rand.Rand) {
	bezel := imagex.RGB{R: 25, G: 25, B: 28}
	glowHue := 180 + rng.Float64()*60
	glow := imagex.HSV{H: glowHue, S: 0.4, V: 0.35}.ToRGB()
	panelH := oh - 3
	s.Base.FillRect(x0, y0, x0+ow, y0+panelH, bezel)
	s.Base.FillRect(x0+1, y0+1, x0+ow-1, y0+panelH-1, glow)
	// Stand.
	s.Base.FillRect(x0+ow/2-1, y0+panelH, x0+ow/2+1, y0+oh, bezel)
	s.record(KindMonitor, x0, y0, x0+ow, y0+oh, glowHue, "")
}

func (s *Scene) renderClock(x0, y0, size int, rng *rand.Rand) {
	r := size / 2
	cx, cy := x0+r, y0+r
	face := imagex.RGB{R: 245, G: 245, B: 240}
	rim := imagex.RGB{R: 30, G: 30, B: 30}
	s.Base.FillCircle(cx, cy, r, rim)
	s.Base.FillCircle(cx, cy, r-1, face)
	// Hands at a random time.
	s.Base.DrawLine(cx, cy, cx, cy-(r-2), rim)
	s.Base.DrawLine(cx, cy, cx+(r-3)*(1-2*rng.Intn(2)), cy, rim)
	s.record(KindClock, x0, y0, x0+size, y0+size, 0, "")
}

func (s *Scene) renderPoster(x0, y0, ow, oh int, rng *rand.Rand) {
	hue := rng.Float64() * 360
	bg := imagex.HSV{H: hue, S: 0.7, V: 0.75}.ToRGB()
	accent := imagex.HSV{H: hue + 150, S: 0.8, V: 0.85}.ToRGB()
	s.Base.FillRect(x0, y0, x0+ow, y0+oh, bg)
	// Coarse diagonal stripes give the template matcher structure to
	// lock onto while staying robust to small scale/rotation aliasing.
	for d := 0; d < ow+oh; d += 6 {
		s.Base.DrawLine(x0+d, y0, x0, y0+d, accent)
		s.Base.DrawLine(x0+d+1, y0, x0, y0+d+1, accent)
	}
	s.Base.StrokeRect(x0, y0, x0+ow, y0+oh, imagex.RGB{R: 250, G: 250, B: 250})
	s.record(KindPoster, x0, y0, x0+ow, y0+oh, hue, "")
}

func (s *Scene) renderSticky(x0, y0, ow, oh int, rng *rand.Rand) {
	note := imagex.RGB{R: 250, G: 235, B: 120}
	s.Base.FillRect(x0, y0, x0+ow, y0+oh, note)
	text := randomStickyWords[rng.Intn(len(randomStickyWords))]
	s.record(KindStickyNote, x0, y0, x0+ow, y0+oh, 55, "")
	s.renderStickyText(len(s.Objects)-1, text)
}

// renderShirt draws a shirt hanging on the wall: a T-shaped garment in
// a saturated fabric color (the paper's generic detector found shirts in
// participant backgrounds).
func (s *Scene) renderShirt(x0, y0, ow, oh int, rng *rand.Rand) {
	hue := rng.Float64() * 360
	fabric := imagex.HSV{H: hue, S: 0.65 + rng.Float64()*0.25, V: 0.55 + rng.Float64()*0.3}.ToRGB()
	// Sleeves: a horizontal bar across the top third.
	sleeveH := oh / 3
	s.Base.FillRect(x0, y0, x0+ow, y0+sleeveH, fabric)
	// Body: a centred vertical panel below.
	bx0 := x0 + ow/4
	bx1 := x0 + ow - ow/4
	s.Base.FillRect(bx0, y0, bx1, y0+oh, fabric)
	// Hanger hook.
	s.Base.DrawLine(x0+ow/2, y0-2, x0+ow/2, y0, imagex.RGB{R: 120, G: 120, B: 120})
	s.record(KindShirt, x0, y0, x0+ow, y0+oh, hue, "")
}

// renderStickyText writes text onto the sticky note inventory entry i,
// truncating to what fits, and updates the recorded ground truth.
func (s *Scene) renderStickyText(i int, text string) {
	o := s.Objects[i]
	if o.Kind != KindStickyNote {
		return
	}
	// Re-paint the note so forced text replaces random text.
	s.Base.FillRect(o.X0, o.Y0, o.X1, o.Y1, imagex.RGB{R: 250, G: 235, B: 120})
	avail := (o.X1 - o.X0 - 2) / (font.GlyphW + font.Spacing)
	if avail < 0 {
		avail = 0
	}
	if avail < len(text) {
		text = text[:avail]
	}
	text = strings.TrimRight(text, " ")
	ty := o.Y0 + ((o.Y1-o.Y0)-font.GlyphH)/2
	font.Render(s.Base, text, o.X0+1, ty, imagex.RGB{R: 20, G: 20, B: 60})
	s.Objects[i].Text = text
}
