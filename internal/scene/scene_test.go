package scene

import (
	"math/rand"
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	a := Generate(cfg, rand.New(rand.NewSource(42)))
	b := Generate(cfg, rand.New(rand.NewSource(42)))
	if !a.Base.Equal(b.Base) {
		t.Fatal("same seed must produce identical scenes")
	}
	if len(a.Objects) != len(b.Objects) {
		t.Fatal("same seed must produce identical inventories")
	}
	c := Generate(cfg, rand.New(rand.NewSource(43)))
	if a.Base.Equal(c.Base) {
		t.Fatal("different seeds must differ")
	}
}

func TestGeneratePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Config{W: 0, H: 10}, rand.New(rand.NewSource(1)))
}

func TestObjectsWithinBounds(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		cfg := DefaultConfig()
		cfg.Clutter = 1
		s := Generate(cfg, rand.New(rand.NewSource(seed)))
		for _, o := range s.Objects {
			if o.X0 < 0 || o.Y0 < 0 || o.X1 > s.W || o.Y1 > s.H || o.X0 >= o.X1 || o.Y0 >= o.Y1 {
				t.Fatalf("seed %d: object %v out of bounds (%d,%d,%d,%d)", seed, o.Kind, o.X0, o.Y0, o.X1, o.Y1)
			}
		}
	}
}

func TestForceKinds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clutter = 0
	cfg.ForceKinds = []ObjectKind{KindClock, KindPoster, KindBookshelf}
	found := map[ObjectKind]int{}
	// Placement can fail only if the canvas is too crowded; with three
	// objects on a default canvas it must always succeed.
	s := Generate(cfg, rand.New(rand.NewSource(9)))
	for _, o := range s.Objects {
		found[o.Kind]++
	}
	for _, k := range cfg.ForceKinds {
		if found[k] == 0 {
			t.Errorf("forced kind %v missing", k)
		}
	}
	if found[KindBook] == 0 {
		t.Error("bookshelf must record individual books")
	}
}

func TestZeroClutterPlacesNothing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clutter = 0
	s := Generate(cfg, rand.New(rand.NewSource(3)))
	if len(s.Objects) != 0 {
		t.Fatalf("zero clutter placed %d objects", len(s.Objects))
	}
}

func TestStickyTextRendered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StickyText = "PIN 4821"
	s := Generate(cfg, rand.New(rand.NewSource(7)))
	notes := s.Find(KindStickyNote)
	if len(notes) == 0 {
		t.Fatal("StickyText must force a sticky note")
	}
	var withText *Object
	for i := range notes {
		if notes[i].Text != "" {
			withText = &notes[i]
		}
	}
	if withText == nil {
		t.Fatal("no sticky note carries text")
	}
	if withText.Text == "" || len(withText.Text) > len("PIN 4821") {
		t.Fatalf("sticky text = %q", withText.Text)
	}
	// The note region must contain dark ink pixels.
	crop := s.Base.Crop(withText.X0, withText.Y0, withText.X1, withText.Y1)
	ink := 0
	for _, p := range crop.Pix {
		if p.Luminance() < 80 {
			ink++
		}
	}
	if ink == 0 {
		t.Fatal("sticky note has no ink pixels")
	}
}

func TestLitScalesBrightness(t *testing.T) {
	s := Generate(DefaultConfig(), rand.New(rand.NewSource(5)))
	on := s.Lit(1.0)
	off := s.Lit(0.45)
	if !on.Equal(s.Base) {
		t.Fatal("Lit(1.0) must equal base")
	}
	if off.MeanLuminance() >= on.MeanLuminance() {
		t.Fatal("lights off must darken the scene")
	}
}

func TestTemplateMatchesBase(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ForceKinds = []ObjectKind{KindPoster}
	s := Generate(cfg, rand.New(rand.NewSource(8)))
	posters := s.Find(KindPoster)
	if len(posters) == 0 {
		t.Fatal("no poster placed")
	}
	tpl := s.Template(posters[0])
	if tpl == nil {
		t.Fatal("template crop empty")
	}
	o := posters[0]
	if tpl.W != o.X1-o.X0 || tpl.H != o.Y1-o.Y0 {
		t.Fatal("template geometry mismatch")
	}
	if tpl.At(0, 0) != s.Base.At(o.X0, o.Y0) {
		t.Fatal("template pixels differ from base")
	}
}

func TestInventoryNonOverlapping(t *testing.T) {
	// Top-level objects (not books inside their shelf) must not overlap.
	for seed := int64(0); seed < 20; seed++ {
		cfg := DefaultConfig()
		cfg.Clutter = 1
		s := Generate(cfg, rand.New(rand.NewSource(seed)))
		var tops []Object
		for _, o := range s.Objects {
			if o.Kind != KindBook {
				tops = append(tops, o)
			}
		}
		for i := 0; i < len(tops); i++ {
			for j := i + 1; j < len(tops); j++ {
				a, b := tops[i], tops[j]
				if a.X0 < b.X1 && b.X0 < a.X1 && a.Y0 < b.Y1 && b.Y0 < a.Y1 {
					t.Fatalf("seed %d: %v overlaps %v", seed, a.Kind, b.Kind)
				}
			}
		}
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []ObjectKind{KindBook, KindBookshelf, KindTV, KindMonitor, KindClock, KindPoster, KindStickyNote, KindWindow, KindDoor}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d has bad or duplicate label %q", k, s)
		}
		seen[s] = true
	}
	if ObjectKind(99).String() != "object(99)" {
		t.Fatal("unknown kind label wrong")
	}
}

func TestSceneVariety(t *testing.T) {
	// Across many seeds, every kind must appear somewhere — the E1–E3
	// dataset relies on generator variety.
	cfg := DefaultConfig()
	cfg.Clutter = 1
	found := map[ObjectKind]bool{}
	for seed := int64(0); seed < 60; seed++ {
		s := Generate(cfg, rand.New(rand.NewSource(seed)))
		for _, o := range s.Objects {
			found[o.Kind] = true
		}
	}
	for _, k := range []ObjectKind{KindBook, KindBookshelf, KindTV, KindMonitor, KindClock, KindPoster, KindStickyNote, KindWindow, KindDoor} {
		if !found[k] {
			t.Errorf("kind %v never generated across 60 seeds", k)
		}
	}
}

func TestWallHueRecorded(t *testing.T) {
	s := Generate(DefaultConfig(), rand.New(rand.NewSource(2)))
	if s.WallHue < 0 || s.WallHue >= 360 {
		t.Fatalf("wall hue out of range: %v", s.WallHue)
	}
	_ = imagex.HSV{H: s.WallHue, S: 0.5, V: 0.5}.ToRGB()
}

func TestShirtRendered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Clutter = 0
	cfg.ForceKinds = []ObjectKind{KindShirt}
	s := Generate(cfg, rand.New(rand.NewSource(21)))
	shirts := s.Find(KindShirt)
	if len(shirts) != 1 {
		t.Fatalf("got %d shirts", len(shirts))
	}
	o := shirts[0]
	// T-shape: the top corners of the box are fabric, the bottom corners
	// are not (sleeves end above them).
	top := s.Base.At(o.X0+1, o.Y0+1)
	bottomCorner := s.Base.At(o.X0+1, o.Y1-2)
	center := s.Base.At((o.X0+o.X1)/2, o.Y1-2)
	if top == bottomCorner {
		t.Fatal("shirt bounding box fully filled; expected T shape")
	}
	if center != top {
		t.Fatal("shirt body must reach the box bottom at the centre")
	}
}
