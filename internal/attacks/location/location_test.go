package location

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/bgbuster/bgbuster/internal/attacks/attacktest"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/scene"
)

// buildDictionary generates n distinct scene backgrounds.
func buildDictionary(n int) Dictionary {
	dict := make(Dictionary, 0, n)
	for i := 0; i < n; i++ {
		cfg := scene.DefaultConfig()
		cfg.Clutter = 0.8
		s := scene.Generate(cfg, rand.New(rand.NewSource(int64(1000+i))))
		dict = append(dict, Entry{Name: nameOf(i), Background: s.Base})
	}
	return dict
}

func nameOf(i int) string { return string(rune('A'+i%26)) + string(rune('a'+(i/26)%26)) }

func TestRankIdentifiesTrueBackground(t *testing.T) {
	dict := buildDictionary(20)
	// 35 % random coverage of the true background, entry 7.
	rec := attacktest.FromImage(dict[7].Background, attacktest.RandomKeep(1, 0.35))
	matches, err := Rank(rec, dict, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 20 {
		t.Fatalf("got %d matches", len(matches))
	}
	if matches[0].Name != dict[7].Name {
		t.Fatalf("rank-1 = %q (score %.3f), want %q", matches[0].Name, matches[0].Score, dict[7].Name)
	}
	if !TopK(matches, dict[7].Name, 1) {
		t.Fatal("TopK(1) must succeed for rank-1 entry")
	}
}

func TestRankToleratesShiftAndLighting(t *testing.T) {
	dict := buildDictionary(15)
	truth := dict[3].Background

	// Shift the reconstruction by (3,2) and darken it 30 % (ambient
	// light change): hue-only matching plus the shift search must still
	// find the truth.
	shifted := imagex.New(truth.W, truth.H)
	for y := 0; y < truth.H; y++ {
		for x := 0; x < truth.W; x++ {
			shifted.Set(x, y, truth.At(x-3, y-2))
		}
	}
	shifted.ScaleBrightness(0.7)
	rec := attacktest.FromImage(shifted, attacktest.RandomKeep(2, 0.4))

	matches, err := Rank(rec, dict, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if RankOf(matches, dict[3].Name) > 3 {
		t.Fatalf("shifted+darkened truth ranked %d", RankOf(matches, dict[3].Name))
	}
}

func TestRankEmptyDictionary(t *testing.T) {
	rec := attacktest.FromImage(imagex.New(8, 8), attacktest.All)
	if _, err := Rank(rec, nil, DefaultOptions()); !errors.Is(err, ErrEmptyDictionary) {
		t.Fatalf("error = %v", err)
	}
}

func TestRankMismatchedEntryScoresZero(t *testing.T) {
	dict := Dictionary{
		{Name: "bad-geometry", Background: imagex.New(10, 10)},
		{Name: "nil-bg", Background: nil},
	}
	s := scene.Generate(scene.DefaultConfig(), rand.New(rand.NewSource(5)))
	rec := attacktest.FromImage(s.Base, attacktest.RandomKeep(3, 0.3))
	matches, err := Rank(rec, dict, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.Score != 0 {
			t.Fatalf("mismatched entry %q scored %v", m.Name, m.Score)
		}
	}
}

func TestRankEmptyReconstruction(t *testing.T) {
	dict := buildDictionary(3)
	rec := attacktest.FromImage(dict[0].Background, func(x, y int) bool { return false })
	matches, err := Rank(rec, dict, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.Score != 0 {
			t.Fatal("empty reconstruction must score 0 everywhere")
		}
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	dict := buildDictionary(5)
	rec := attacktest.FromImage(dict[0].Background, func(x, y int) bool { return false })
	a, err := Rank(rec, dict, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rank(rec, dict, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatal("tied ranking must be deterministic")
		}
	}
}

func TestRankOfMissing(t *testing.T) {
	if RankOf(nil, "x") != 0 {
		t.Fatal("missing name must rank 0")
	}
	if TopK(nil, "x", 10) {
		t.Fatal("missing name must fail TopK")
	}
}

func TestRandomBaselineProb(t *testing.T) {
	p, err := RandomBaselineProb(200, 25)
	if err != nil || p != 0.125 {
		t.Fatalf("baseline = %v (%v), want 0.125", p, err)
	}
	if p, _ := RandomBaselineProb(10, 10); p != 1 {
		t.Fatal("k≥n must be certain")
	}
	if p, _ := RandomBaselineProb(10, -5); p != 0 {
		t.Fatal("negative k must be 0")
	}
	if _, err := RandomBaselineProb(0, 1); err == nil {
		t.Fatal("empty dictionary must error")
	}
}

func TestMaxSamplesCapsWork(t *testing.T) {
	dict := buildDictionary(4)
	rec := attacktest.FromImage(dict[1].Background, attacktest.All)
	opts := DefaultOptions()
	opts.MaxSamples = 200 // heavy subsampling must still identify
	matches, err := Rank(rec, dict, opts)
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].Name != dict[1].Name {
		t.Fatalf("subsampled rank-1 = %q", matches[0].Name)
	}
}
