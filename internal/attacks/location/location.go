// Package location implements the paper's Location Inference attack
// (Section VI): match a partially reconstructed real background against
// a dictionary of known backgrounds (and thus locations). Matching is
// hue-only at the pixel level — saturation is ignored because ambient
// lighting shifts it — and the search space includes small shifts and
// rotations of the reconstruction to absorb webcam re-adjustment, the
// paper's two stated technical challenges.
package location

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

// Entry pairs a location name with its known background image.
type Entry struct {
	Name       string
	Background *imagex.Image
}

// Dictionary is the adversary's auxiliary set of known backgrounds (the
// paper populates 200 of them from E1–E3).
type Dictionary []Entry

// ErrEmptyDictionary is returned when ranking against no entries.
var ErrEmptyDictionary = errors.New("location: empty dictionary")

// Options tunes the matcher.
type Options struct {
	// MaxShift is the half-range of the translation search in pixels
	// (camera re-adjustment); the grid is -MaxShift..+MaxShift in steps
	// of ShiftStep.
	MaxShift  int
	ShiftStep int
	// Rotations lists the camera-rotation angles (degrees) to try; 0 is
	// always tried.
	Rotations []float64
	// HueTol is the maximum hue distance (degrees) for a pixel match.
	HueTol float64
	// SatFloor skips near-grey pixels whose hue is meaningless.
	SatFloor float64
	// MaxSamples bounds the number of recovered pixels scored per
	// transform (0 = all).
	MaxSamples int
}

// DefaultOptions returns the calibrated matcher settings.
func DefaultOptions() Options {
	return Options{
		MaxShift:   4,
		ShiftStep:  2,
		Rotations:  []float64{-4, 4},
		HueTol:     18,
		SatFloor:   0.12,
		MaxSamples: 4000,
	}
}

// Match is one scored dictionary entry.
type Match struct {
	Name  string
	Score float64
	// ShiftX/ShiftY/Rotation describe the best-matching transform.
	ShiftX, ShiftY int
	Rotation       float64
}

// Rank scores every dictionary entry against the reconstruction and
// returns them sorted by descending score (rank 1 first). Ties break by
// name for determinism.
func Rank(rec *core.Reconstruction, dict Dictionary, opts Options) ([]Match, error) {
	if len(dict) == 0 {
		return nil, ErrEmptyDictionary
	}
	if opts.ShiftStep <= 0 {
		opts.ShiftStep = 1
	}
	samples := collectSamples(rec, opts)
	matches := make([]Match, 0, len(dict))
	for _, e := range dict {
		if e.Background == nil || e.Background.W != rec.Recovered.W || e.Background.H != rec.Recovered.H {
			matches = append(matches, Match{Name: e.Name, Score: 0})
			continue
		}
		matches = append(matches, scoreEntry(precompute(e, opts.SatFloor), samples, opts))
	}
	sort.SliceStable(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		return matches[i].Name < matches[j].Name
	})
	return matches, nil
}

// sample is one recovered pixel prepared for matching.
type sample struct {
	x, y int
	hue  float64
}

func collectSamples(rec *core.Reconstruction, opts Options) []sample {
	var out []sample
	w := rec.Recovered.W
	stride := 1
	if opts.MaxSamples > 0 {
		claimed := rec.Coverage.Count()
		if claimed > opts.MaxSamples {
			stride = claimed/opts.MaxSamples + 1
		}
	}
	n := 0
	rec.Coverage.ForEachSet(func(i int) {
		n++
		if n%stride != 0 {
			return
		}
		hsv := rec.Recovered.Pix[i].ToHSV()
		if hsv.S < opts.SatFloor {
			return
		}
		out = append(out, sample{x: i % w, y: i / w, hue: hsv.H})
	})
	return out
}

// hueMap caches an entry's per-pixel hue and a saturation-floor flag so
// the transform search never reconverts colors.
type hueMap struct {
	name   string
	w, h   int
	hue    []float32
	usable []bool
}

func precompute(e Entry, satFloor float64) hueMap {
	bg := e.Background
	m := hueMap{name: e.Name, w: bg.W, h: bg.H,
		hue: make([]float32, bg.W*bg.H), usable: make([]bool, bg.W*bg.H)}
	for i, p := range bg.Pix {
		hsv := p.ToHSV()
		m.hue[i] = float32(hsv.H)
		m.usable[i] = hsv.S >= satFloor
	}
	return m
}

func scoreEntry(e hueMap, samples []sample, opts Options) Match {
	best := Match{Name: e.name}
	if len(samples) == 0 {
		return best
	}
	rots := append([]float64{0}, opts.Rotations...)
	cx := float64(e.w) / 2
	cy := float64(e.h) / 2
	for _, rot := range rots {
		sin, cos := math.Sincos(rot * math.Pi / 180)
		for dy := -opts.MaxShift; dy <= opts.MaxShift; dy += opts.ShiftStep {
			for dx := -opts.MaxShift; dx <= opts.MaxShift; dx += opts.ShiftStep {
				hits, considered := 0, 0
				for _, s := range samples {
					// Rotate around the image centre, then shift.
					rx := cos*(float64(s.x)-cx) - sin*(float64(s.y)-cy) + cx + float64(dx)
					ry := sin*(float64(s.x)-cx) + cos*(float64(s.y)-cy) + cy + float64(dy)
					xi, yi := int(rx+0.5), int(ry+0.5)
					if xi < 0 || xi >= e.w || yi < 0 || yi >= e.h {
						continue
					}
					considered++
					idx := yi*e.w + xi
					if !e.usable[idx] {
						continue
					}
					if imagex.HueDistance(s.hue, float64(e.hue[idx])) <= opts.HueTol {
						hits++
					}
				}
				if considered == 0 {
					continue
				}
				score := float64(hits) / float64(considered)
				if score > best.Score {
					best.Score = score
					best.ShiftX, best.ShiftY, best.Rotation = dx, dy, rot
				}
			}
		}
	}
	return best
}

// RankOf returns the 1-based position of name in the ranked matches, or
// 0 when absent.
func RankOf(matches []Match, name string) int {
	for i, m := range matches {
		if m.Name == name {
			return i + 1
		}
	}
	return 0
}

// TopK reports whether name ranks within the top k.
func TopK(matches []Match, name string, k int) bool {
	r := RankOf(matches, name)
	return r > 0 && r <= k
}

// RandomBaselineProb returns the paper's baseline: the probability that
// k images drawn uniformly without replacement from a dictionary of size
// n contain the true background.
func RandomBaselineProb(n, k int) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("location: dictionary size %d", n)
	}
	if k >= n {
		return 1, nil
	}
	if k < 0 {
		k = 0
	}
	return float64(k) / float64(n), nil
}
