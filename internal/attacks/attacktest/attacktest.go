// Package attacktest provides helpers for testing the inference attacks
// against synthetic reconstructions with controlled coverage, without
// running the full compose→reconstruct pipeline.
package attacktest

import (
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

// FromImage builds a reconstruction whose recovered pixels are taken
// from img at every position where keep returns true.
func FromImage(img *imagex.Image, keep func(x, y int) bool) *core.Reconstruction {
	rec := &core.Reconstruction{
		Recovered: imagex.New(img.W, img.H),
		Coverage:  imagex.NewMask(img.W, img.H),
	}
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			if keep(x, y) {
				rec.Coverage.Set(x, y, true)
				rec.Recovered.Set(x, y, img.At(x, y))
			}
		}
	}
	return rec
}

// RandomKeep returns a keep function that retains each pixel with
// probability p, deterministically per (x, y) given the seed.
func RandomKeep(seed int64, p float64) func(x, y int) bool {
	return func(x, y int) bool {
		h := rand.New(rand.NewSource(seed ^ int64(x)<<20 ^ int64(y)))
		return h.Float64() < p
	}
}

// All keeps every pixel.
func All(x, y int) bool { return true }
