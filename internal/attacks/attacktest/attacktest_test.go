package attacktest

import (
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

func gradient(w, h int) *imagex.Image {
	img := imagex.New(w, h)
	i := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Pix[i] = imagex.RGB{R: byte(x * 5), G: byte(y * 7), B: byte((x + y) * 3)}
			i++
		}
	}
	return img
}

func TestFromImage(t *testing.T) {
	img := gradient(8, 6)
	for _, tc := range []struct {
		name      string
		keep      func(x, y int) bool
		wantCount int
	}{
		{"all", All, 48},
		{"none", func(x, y int) bool { return false }, 0},
		{"left-half", func(x, y int) bool { return x < 4 }, 24},
		{"checker", func(x, y int) bool { return (x+y)%2 == 0 }, 24},
		{"single", func(x, y int) bool { return x == 7 && y == 5 }, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := FromImage(img, tc.keep)
			if rec.Recovered.W != img.W || rec.Recovered.H != img.H {
				t.Fatalf("geometry %dx%d, want %dx%d", rec.Recovered.W, rec.Recovered.H, img.W, img.H)
			}
			if got := rec.Coverage.Count(); got != tc.wantCount {
				t.Fatalf("coverage count = %d, want %d", got, tc.wantCount)
			}
			for y := 0; y < img.H; y++ {
				for x := 0; x < img.W; x++ {
					kept := tc.keep(x, y)
					if rec.Coverage.At(x, y) != kept {
						t.Fatalf("coverage at (%d,%d) = %v, keep says %v", x, y, rec.Coverage.At(x, y), kept)
					}
					want := imagex.RGB{}
					if kept {
						want = img.At(x, y)
					}
					if got := rec.Recovered.At(x, y); got != want {
						t.Fatalf("recovered at (%d,%d) = %+v, want %+v", x, y, got, want)
					}
				}
			}
		})
	}
}

func TestRandomKeep(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    float64
		lo   int
		hi   int
	}{
		{"never", 0, 0, 0},
		{"always", 1, 32 * 32, 32 * 32},
		// 1024 Bernoulli(0.5) trials; bounds ≈ ±5σ.
		{"half", 0.5, 432, 592},
	} {
		t.Run(tc.name, func(t *testing.T) {
			keep := RandomKeep(42, tc.p)
			n := 0
			for y := 0; y < 32; y++ {
				for x := 0; x < 32; x++ {
					if keep(x, y) {
						n++
					}
				}
			}
			if n < tc.lo || n > tc.hi {
				t.Fatalf("kept %d of 1024 at p=%v, want within [%d, %d]", n, tc.p, tc.lo, tc.hi)
			}
		})
	}

	t.Run("deterministic", func(t *testing.T) {
		a, b := RandomKeep(7, 0.3), RandomKeep(7, 0.3)
		diffSeed := RandomKeep(8, 0.3)
		same, differs := true, false
		for y := 0; y < 16; y++ {
			for x := 0; x < 16; x++ {
				if a(x, y) != b(x, y) {
					same = false
				}
				if a(x, y) != diffSeed(x, y) {
					differs = true
				}
			}
		}
		if !same {
			t.Error("same seed must give identical keep decisions")
		}
		if !differs {
			t.Error("different seeds gave identical keep decisions on 256 pixels")
		}
	})

	t.Run("repeated-call-stable", func(t *testing.T) {
		keep := RandomKeep(3, 0.5)
		for i := 0; i < 5; i++ {
			if keep(4, 4) != keep(4, 4) {
				t.Fatal("keep function is not pure per (x,y)")
			}
		}
	})
}
