// Package textinfer implements the paper's Text Inference attack
// (Section VI). The paper runs TextFuseNet (box detection + recognition)
// over reconstructed backgrounds; this reproduction substitutes a
// from-scratch pipeline over the same closed world: detect candidate
// text lines as clusters of dark "ink" components on bright recovered
// surfaces, then recognise each glyph cell by template matching against
// the bitmap font the scene renderer writes with (internal/font). What
// is measured is therefore exactly what the paper measures: whether
// enough of the text's pixels survive partial background recovery.
package textinfer

import (
	"sort"
	"strings"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/font"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

// Options tunes the OCR pipeline.
type Options struct {
	// InkLuma is the luminance below which a recovered pixel counts as
	// ink.
	InkLuma float64
	// MinKnownFrac is the minimum fraction of a glyph cell that must be
	// recovered for the cell to be read (unreadable cells yield '?').
	MinKnownFrac float64
	// MinGlyphScore is the minimum template agreement for a confident
	// glyph.
	MinGlyphScore float64
	// MinInkPixels is the minimum ink pixel count for a candidate line.
	MinInkPixels int
}

// DefaultOptions returns the calibrated OCR settings.
func DefaultOptions() Options {
	return Options{
		InkLuma:       90,
		MinKnownFrac:  0.45,
		MinGlyphScore: 0.78,
		MinInkPixels:  8,
	}
}

// Result is one recognised text line.
type Result struct {
	Text           string
	X0, Y0, X1, Y1 int
	// Confidence is the mean glyph agreement over read cells.
	Confidence float64
}

// Infer detects and recognises text lines in a reconstruction, sorted by
// descending confidence.
func Infer(rec *core.Reconstruction, opts Options) []Result {
	if opts.InkLuma == 0 {
		opts = DefaultOptions()
	}
	lines := detectLines(rec, opts)
	var out []Result
	for _, ln := range lines {
		if r, ok := readLine(rec, ln, opts); ok {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Confidence > out[j].Confidence })
	return out
}

// lineBox is a candidate text-line bounding box.
type lineBox struct{ x0, y0, x1, y1 int }

// detectLines clusters recovered ink pixels into horizontal line boxes
// of plausible glyph height.
func detectLines(rec *core.Reconstruction, opts Options) []lineBox {
	W, H := rec.Recovered.W, rec.Recovered.H
	ink := imagex.NewMask(W, H)
	rec.Coverage.ForEachSet(func(i int) {
		if rec.Recovered.Pix[i].Luminance() < opts.InkLuma {
			// Ink must sit on a locally bright surface (note paper, not
			// a dark scene region): require a bright recovered pixel
			// nearby.
			x, y := i%W, i/W
			if hasBrightNeighbor(rec, x, y, 4) {
				ink.Set(x, y, true)
			}
		}
	})
	// Cluster ink with generous horizontal bridging (glyph spacing).
	var boxes []lineBox
	seen := make([]bool, W*H)
	var stack []int
	for _, start := range inkStarts(ink) {
		if seen[start] {
			continue
		}
		count := 0
		bx := lineBox{x0: W, y0: H}
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := i%W, i/W
			count++
			bx.x0, bx.y0 = minI(bx.x0, x), minI(bx.y0, y)
			bx.x1, bx.y1 = maxI(bx.x1, x+1), maxI(bx.y1, y+1)
			for dy := -2; dy <= 2; dy++ {
				for dx := -4; dx <= 4; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || nx >= W || ny < 0 || ny >= H {
						continue
					}
					j := ny*W + nx
					if !seen[j] && ink.At(nx, ny) {
						seen[j] = true
						stack = append(stack, j)
					}
				}
			}
		}
		h := bx.y1 - bx.y0
		if count >= opts.MinInkPixels && h >= font.GlyphH-2 && h <= font.GlyphH+4 {
			boxes = append(boxes, bx)
		}
	}
	return mergeLineBoxes(boxes)
}

// inkStarts returns the ascending linear indices of ink pixels, the
// flood-fill seed order.
func inkStarts(ink *imagex.Mask) []int {
	starts := make([]int, 0, ink.Count())
	ink.ForEachSet(func(i int) {
		starts = append(starts, i)
	})
	return starts
}

// mergeLineBoxes joins boxes on the same text line that a word space
// split apart: same vertical band, horizontal gap of at most two glyph
// cells.
func mergeLineBoxes(boxes []lineBox) []lineBox {
	sort.Slice(boxes, func(i, j int) bool { return boxes[i].x0 < boxes[j].x0 })
	maxGap := 2 * (font.GlyphW + font.Spacing)
	var out []lineBox
	for _, b := range boxes {
		merged := false
		for i := range out {
			o := &out[i]
			vOverlap := minI(o.y1, b.y1) - maxI(o.y0, b.y0)
			if vOverlap >= (font.GlyphH+1)/2 && b.x0-o.x1 <= maxGap && b.x0 >= o.x0 {
				o.x1 = maxI(o.x1, b.x1)
				o.y0 = minI(o.y0, b.y0)
				o.y1 = maxI(o.y1, b.y1)
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, b)
		}
	}
	return out
}

func hasBrightNeighbor(rec *core.Reconstruction, x, y, r int) bool {
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if rec.Coverage.At(x+dx, y+dy) && rec.Recovered.At(x+dx, y+dy).Luminance() > 160 {
				return true
			}
		}
	}
	return false
}

// cellObs is the tri-state observation of one glyph cell: for each of
// the 5×7 positions, ink (1), background (0) or unknown (not recovered).
type cellObs struct {
	known [font.GlyphH][font.GlyphW]bool
	inked [font.GlyphH][font.GlyphW]bool
	seen  int
}

// readLine recognises the glyph cells of one line, searching a small
// alignment offset to lock the 6-pixel pitch onto the rendering grid.
func readLine(rec *core.Reconstruction, ln lineBox, opts Options) (Result, bool) {
	pitch := font.GlyphW + font.Spacing
	bestText, bestConf, bestScore := "", 0.0, -1.0
	for dy := -1; dy <= 1; dy++ {
		for dx := -2; dx <= 2; dx++ {
			text, conf, score := readAt(rec, ln.x0+dx, ln.y0+dy, ln.x1+dx, pitch, opts)
			if score > bestScore {
				bestText, bestConf, bestScore = text, conf, score
			}
		}
	}
	bestText = strings.Trim(bestText, " ?")
	if bestText == "" {
		return Result{}, false
	}
	return Result{
		Text: bestText,
		X0:   ln.x0, Y0: ln.y0, X1: ln.x1, Y1: ln.y1,
		Confidence: bestConf,
	}, true
}

// readAt reads consecutive glyph cells from (x0, y0); it returns the
// decoded text, the mean confident-glyph score, and a total alignment
// score used to pick the best offset.
func readAt(rec *core.Reconstruction, x0, y0, x1, pitch int, opts Options) (string, float64, float64) {
	var sb strings.Builder
	sumConf, nConf, total := 0.0, 0, 0.0
	for cx := x0; cx < x1; cx += pitch {
		obs := observeCell(rec, cx, y0, opts)
		ch, score, ok := matchGlyph(obs, opts)
		total += score
		if !ok {
			sb.WriteByte('?')
			continue
		}
		sb.WriteRune(ch)
		sumConf += score
		nConf++
	}
	conf := 0.0
	if nConf > 0 {
		conf = sumConf / float64(nConf)
	}
	return sb.String(), conf, total
}

func observeCell(rec *core.Reconstruction, x0, y0 int, opts Options) cellObs {
	var obs cellObs
	for gy := 0; gy < font.GlyphH; gy++ {
		for gx := 0; gx < font.GlyphW; gx++ {
			x, y := x0+gx, y0+gy
			if !rec.Coverage.At(x, y) {
				continue
			}
			obs.known[gy][gx] = true
			obs.seen++
			if rec.Recovered.At(x, y).Luminance() < opts.InkLuma {
				obs.inked[gy][gx] = true
			}
		}
	}
	return obs
}

// matchGlyph scores the observation against every font glyph (and the
// empty cell, decoded as a space) on the recovered positions only.
func matchGlyph(obs cellObs, opts Options) (rune, float64, bool) {
	if float64(obs.seen) < opts.MinKnownFrac*float64(font.GlyphW*font.GlyphH) {
		return 0, 0, false
	}
	// Space: no ink at all.
	inkCount := 0
	for gy := 0; gy < font.GlyphH; gy++ {
		for gx := 0; gx < font.GlyphW; gx++ {
			if obs.inked[gy][gx] {
				inkCount++
			}
		}
	}
	if inkCount == 0 {
		return ' ', 1.0, true
	}

	bestR, bestScore := rune(0), -1.0
	for _, r := range font.Supported() {
		mask, _ := font.GlyphMask(r)
		agree, known := 0, 0
		for gy := 0; gy < font.GlyphH; gy++ {
			for gx := 0; gx < font.GlyphW; gx++ {
				if !obs.known[gy][gx] {
					continue
				}
				known++
				if obs.inked[gy][gx] == mask.At(gx, gy) {
					agree++
				}
			}
		}
		if known == 0 {
			continue
		}
		score := float64(agree) / float64(known)
		if score > bestScore {
			bestR, bestScore = r, score
		}
	}
	if bestScore < opts.MinGlyphScore {
		return 0, bestScore, false
	}
	return bestR, bestScore, true
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
