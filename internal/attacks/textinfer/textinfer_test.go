package textinfer

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/bgbuster/bgbuster/internal/attacks/attacktest"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/scene"
)

// stickyScene returns a scene with a forced sticky note carrying text,
// and the note's recorded ground truth.
func stickyScene(t *testing.T, seed int64, text string) (*scene.Scene, scene.Object) {
	t.Helper()
	cfg := scene.DefaultConfig()
	cfg.Clutter = 0
	cfg.StickyText = text
	s := scene.Generate(cfg, rand.New(rand.NewSource(seed)))
	for _, o := range s.Find(scene.KindStickyNote) {
		if o.Text != "" {
			return s, o
		}
	}
	t.Fatal("no sticky note with text")
	return nil, scene.Object{}
}

func TestInferReadsFullyRecoveredNote(t *testing.T) {
	s, note := stickyScene(t, 1, "PIN 4821")
	rec := attacktest.FromImage(s.Base, attacktest.All)
	results := Infer(rec, DefaultOptions())
	if len(results) == 0 {
		t.Fatal("no text detected on fully recovered scene")
	}
	got := results[0].Text
	if !strings.Contains(strings.ReplaceAll(got, "?", ""), "PIN") {
		t.Fatalf("recognised %q, want to contain PIN (truth %q)", got, note.Text)
	}
	if results[0].Confidence < 0.8 {
		t.Fatalf("confidence = %v", results[0].Confidence)
	}
}

func TestInferExactRecognitionOnCleanNote(t *testing.T) {
	for _, text := range []string{"WIFI KEY", "CODE 19", "BUY MILK"} {
		s, note := stickyScene(t, 2, text)
		rec := attacktest.FromImage(s.Base, attacktest.All)
		results := Infer(rec, DefaultOptions())
		if len(results) == 0 {
			t.Fatalf("%q: nothing detected", text)
		}
		if results[0].Text != note.Text {
			t.Fatalf("recognised %q, want %q", results[0].Text, note.Text)
		}
	}
}

func TestInferPartialRecoveryDegrades(t *testing.T) {
	s, _ := stickyScene(t, 3, "RENT 950")
	full := attacktest.FromImage(s.Base, attacktest.All)
	sparse := attacktest.FromImage(s.Base, attacktest.RandomKeep(3, 0.3))

	fullRes := Infer(full, DefaultOptions())
	sparseRes := Infer(sparse, DefaultOptions())
	if len(fullRes) == 0 {
		t.Fatal("full recovery found no text")
	}
	// Sparse recovery must not produce a longer confident read than full.
	fullText := fullRes[0].Text
	sparseText := ""
	if len(sparseRes) > 0 {
		sparseText = sparseRes[0].Text
	}
	confident := func(s string) int { return len(strings.ReplaceAll(s, "?", "")) }
	if confident(sparseText) > confident(fullText) {
		t.Fatalf("sparse read %q beat full read %q", sparseText, fullText)
	}
}

func TestInferNoTextScene(t *testing.T) {
	cfg := scene.DefaultConfig()
	cfg.Clutter = 0
	cfg.ForceKinds = []scene.ObjectKind{scene.KindWindow}
	s := scene.Generate(cfg, rand.New(rand.NewSource(4)))
	rec := attacktest.FromImage(s.Base, attacktest.All)
	for _, r := range Infer(rec, DefaultOptions()) {
		if len(strings.ReplaceAll(r.Text, "?", "")) > 2 && r.Confidence > 0.9 {
			t.Fatalf("confident phantom text %q on text-free scene", r.Text)
		}
	}
}

func TestInferEmptyReconstruction(t *testing.T) {
	rec := attacktest.FromImage(imagex.New(100, 80), func(x, y int) bool { return false })
	if res := Infer(rec, DefaultOptions()); len(res) != 0 {
		t.Fatalf("empty reconstruction produced %d text results", len(res))
	}
}

func TestInferZeroOptionsUseDefaults(t *testing.T) {
	s, _ := stickyScene(t, 5, "TAX DUE")
	rec := attacktest.FromImage(s.Base, attacktest.All)
	if len(Infer(rec, Options{})) == 0 {
		t.Fatal("zero options must fall back to defaults and still read")
	}
}

func TestResultsSortedByConfidence(t *testing.T) {
	// Two notes: force one via StickyText and plant the scene's random
	// second note by clutter.
	cfg := scene.DefaultConfig()
	cfg.Clutter = 1
	cfg.StickyText = "CALL BOB"
	s := scene.Generate(cfg, rand.New(rand.NewSource(6)))
	rec := attacktest.FromImage(s.Base, attacktest.All)
	res := Infer(rec, DefaultOptions())
	for i := 1; i < len(res); i++ {
		if res[i].Confidence > res[i-1].Confidence {
			t.Fatal("results not sorted")
		}
	}
}

func TestPropertyExactRecognitionOverWordPool(t *testing.T) {
	// Property: every word the scene generator can write must be read
	// back exactly from a fully recovered note (closed-loop OCR).
	words := []string{
		"PIN 4821", "WIFI KEY", "CALL BOB", "TAX DUE", "RENT 950",
		"ACCT 7730", "DR. 2PM", "CODE 19", "BUY MILK", "VOTE NOW",
	}
	for i, w := range words {
		s, note := stickyScene(t, int64(100+i), w)
		rec := attacktest.FromImage(s.Base, attacktest.All)
		results := Infer(rec, DefaultOptions())
		if len(results) == 0 {
			t.Errorf("%q: nothing detected", w)
			continue
		}
		if results[0].Text != note.Text {
			t.Errorf("%q: recognised %q, want %q", w, results[0].Text, note.Text)
		}
	}
}

func TestRecognitionDegradesMonotonicallyWithCoverage(t *testing.T) {
	// More coverage must never yield a worse confident read (statistical
	// property over a fixed scene).
	s, truth := stickyScene(t, 200, "VOTE NOW")
	confident := func(p float64) int {
		rec := attacktest.FromImage(s.Base, attacktest.RandomKeep(7, p))
		res := Infer(rec, DefaultOptions())
		best := 0
		for _, r := range res {
			n := 0
			for _, c := range r.Text {
				if c != '?' {
					n++
				}
			}
			if n > best {
				best = n
			}
		}
		return best
	}
	full := confident(1.0)
	if full < len(truth.Text)-1 {
		t.Fatalf("full coverage read only %d confident chars of %q", full, truth.Text)
	}
	if confident(0.1) > full {
		t.Fatal("10%% coverage out-read full coverage")
	}
}
