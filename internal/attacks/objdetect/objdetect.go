// Package objdetect implements the paper's Generic Object Inference
// attack (Section VI). The paper runs pretrained RetinaNet and YOLO
// models over reconstructed backgrounds; this reproduction substitutes a
// from-scratch detector — connected components over the recovered pixels,
// classified by color/shape signatures — evaluated against the same
// synthetic object vocabulary the scene generator plants (DESIGN.md §2).
// Two operating profiles mirror the two models: ModelRetinaNetStyle
// (recall-leaning thresholds) and ModelYOLOStyle (precision-leaning).
package objdetect

import (
	"fmt"
	"math"
	"sort"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/scene"
)

// Model selects the detector operating profile.
type Model int

// Detector profiles.
const (
	// ModelRetinaNetStyle favours recall (lower area/fill thresholds).
	ModelRetinaNetStyle Model = iota + 1
	// ModelYOLOStyle favours precision (stricter thresholds).
	ModelYOLOStyle
)

// String returns the report label.
func (m Model) String() string {
	switch m {
	case ModelRetinaNetStyle:
		return "retinanet-style"
	case ModelYOLOStyle:
		return "yolo-style"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Detection is one detected object.
type Detection struct {
	Kind           scene.ObjectKind
	X0, Y0, X1, Y1 int
	Confidence     float64
}

// IoU returns the intersection-over-union of the detection with a
// ground-truth box.
func (d Detection) IoU(x0, y0, x1, y1 int) float64 {
	ix0, iy0 := maxI(d.X0, x0), maxI(d.Y0, y0)
	ix1, iy1 := minI(d.X1, x1), minI(d.Y1, y1)
	if ix1 <= ix0 || iy1 <= iy0 {
		return 0
	}
	inter := float64((ix1 - ix0) * (iy1 - iy0))
	a := float64((d.X1 - d.X0) * (d.Y1 - d.Y0))
	b := float64((x1 - x0) * (y1 - y0))
	return inter / (a + b - inter)
}

// thresholds per model profile, as fractions of frame area.
type profile struct {
	minAreaFrac   float64 // generic minimum component area
	minFill       float64 // bbox fill ratio
	largeAreaFrac float64 // TV-vs-monitor boundary
	minBooks      int     // books forming a shelf
}

func profileFor(m Model) profile {
	switch m {
	case ModelYOLOStyle:
		return profile{minAreaFrac: 0.0016, minFill: 0.42, largeAreaFrac: 0.028, minBooks: 4}
	default:
		return profile{minAreaFrac: 0.0010, minFill: 0.32, largeAreaFrac: 0.028, minBooks: 3}
	}
}

// Detect runs the detector over a reconstruction and returns detections
// sorted by descending confidence.
func Detect(rec *core.Reconstruction, model Model) []Detection {
	p := profileFor(model)
	frameArea := float64(rec.Recovered.W * rec.Recovered.H)

	var dets []Detection
	classes := []struct {
		pred   func(imagex.HSV) bool
		cls    func(comp component, frameArea float64, p profile) (Detection, bool)
		bridge int
	}{
		{isDark, classifyDark, 2},
		{isBrightFace, classifyClock, 2},
		{isSky, classifyWindow, 2},
		{isStickyYellow, classifySticky, 2},
		{isWoodBrown, classifyDoor, 2},
		// Saturated components keep tight connectivity so adjacent book
		// spines separated by 1-pixel shelf gaps stay distinct.
		{isSaturated, classifySaturated, 1},
	}
	var books []Detection
	for _, c := range classes {
		for _, comp := range components(rec, c.pred, c.bridge) {
			if float64(comp.count) < p.minAreaFrac*frameArea {
				continue
			}
			det, ok := c.cls(comp, frameArea, p)
			if !ok {
				continue
			}
			if det.Kind == scene.KindBook {
				books = append(books, det)
			}
			dets = append(dets, det)
		}
	}
	dets = append(dets, shelvesFromBooks(books, p)...)
	sort.SliceStable(dets, func(i, j int) bool { return dets[i].Confidence > dets[j].Confidence })
	return nonMaxSuppress(dets, 0.6)
}

// nonMaxSuppress drops detections that heavily overlap a
// higher-confidence detection (cross-class: one region is one object).
// Input must be sorted by descending confidence.
func nonMaxSuppress(dets []Detection, iouThresh float64) []Detection {
	var out []Detection
	for _, d := range dets {
		keep := true
		for _, k := range out {
			if d.IoU(k.X0, k.Y0, k.X1, k.Y1) > iouThresh {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, d)
		}
	}
	return out
}

// ---- color classes ----

func isDark(c imagex.HSV) bool       { return c.V < 0.25 }
func isBrightFace(c imagex.HSV) bool { return c.V > 0.85 && c.S < 0.25 }
func isSky(c imagex.HSV) bool        { return c.H >= 185 && c.H <= 230 && c.S >= 0.22 && c.V >= 0.5 }
func isStickyYellow(c imagex.HSV) bool {
	return c.H >= 35 && c.H <= 75 && c.S >= 0.35 && c.V >= 0.72
}
func isWoodBrown(c imagex.HSV) bool {
	return c.H >= 12 && c.H <= 48 && c.S >= 0.32 && c.V >= 0.18 && c.V < 0.62
}
func isSaturated(c imagex.HSV) bool { return c.S >= 0.45 && c.V >= 0.38 }

// ---- per-class shape classification ----

func classifyDark(comp component, frameArea float64, p profile) (Detection, bool) {
	w, h := comp.w(), comp.h()
	if h == 0 || comp.fill() < p.minFill {
		return Detection{}, false
	}
	aspect := float64(w) / float64(h)
	if aspect < 0.9 || aspect > 3.2 {
		return Detection{}, false
	}
	kind := scene.KindMonitor
	if float64(comp.count) >= p.largeAreaFrac*frameArea {
		kind = scene.KindTV
	}
	return comp.detection(kind, comp.fill()), true
}

func classifyClock(comp component, frameArea float64, p profile) (Detection, bool) {
	w, h := comp.w(), comp.h()
	if h == 0 {
		return Detection{}, false
	}
	aspect := float64(w) / float64(h)
	if aspect < 0.65 || aspect > 1.5 {
		return Detection{}, false
	}
	r := float64(maxI(w, h)) / 2
	circ := float64(comp.count) / (math.Pi * r * r)
	if circ < 0.55 {
		return Detection{}, false
	}
	return comp.detection(scene.KindClock, circ), true
}

func classifyWindow(comp component, frameArea float64, p profile) (Detection, bool) {
	if float64(comp.count) < 6*p.minAreaFrac*frameArea || comp.fill() < p.minFill {
		return Detection{}, false
	}
	w, h := comp.w(), comp.h()
	if h == 0 {
		return Detection{}, false
	}
	aspect := float64(w) / float64(h)
	if aspect < 0.4 || aspect > 2.6 {
		return Detection{}, false
	}
	return comp.detection(scene.KindWindow, comp.fill()), true
}

func classifySticky(comp component, frameArea float64, p profile) (Detection, bool) {
	if float64(comp.count) > 0.03*frameArea {
		return Detection{}, false
	}
	w, h := comp.w(), comp.h()
	if h == 0 {
		return Detection{}, false
	}
	aspect := float64(w) / float64(h)
	if aspect < 0.8 || aspect > 4.5 {
		return Detection{}, false
	}
	return comp.detection(scene.KindStickyNote, comp.fill()), true
}

func classifyDoor(comp component, frameArea float64, p profile) (Detection, bool) {
	if float64(comp.count) < 8*p.minAreaFrac*frameArea {
		return Detection{}, false
	}
	w, h := comp.w(), comp.h()
	if w == 0 {
		return Detection{}, false
	}
	if float64(h)/float64(w) < 1.6 || comp.fill() < p.minFill {
		return Detection{}, false
	}
	return comp.detection(scene.KindDoor, comp.fill()), true
}

func classifySaturated(comp component, frameArea float64, p profile) (Detection, bool) {
	w, h := comp.w(), comp.h()
	if w == 0 || h == 0 {
		return Detection{}, false
	}
	tall := float64(h) / float64(w)
	fill := comp.fill()
	switch {
	case tall >= 1.3 && float64(comp.count) <= 0.01*frameArea:
		return comp.detection(scene.KindBook, fill), true
	// Shirts are T-shaped: a saturated garment whose bounding box is
	// only partially filled (sleeves + body ≈ 2/3 of the box).
	case float64(comp.count) >= 0.012*frameArea && tall >= 0.7 && tall <= 1.8 && fill >= 0.45 && fill <= 0.8:
		return comp.detection(scene.KindShirt, 1-fill+0.4), true
	case float64(comp.count) >= 0.012*frameArea && tall >= 0.35 && tall <= 2.6 && fill > 0.8:
		return comp.detection(scene.KindPoster, fill), true
	default:
		return Detection{}, false
	}
}

// shelvesFromBooks groups ≥ minBooks horizontally aligned book
// detections into a bookshelf detection.
func shelvesFromBooks(books []Detection, p profile) []Detection {
	if len(books) < p.minBooks {
		return nil
	}
	sort.SliceStable(books, func(i, j int) bool { return books[i].X0 < books[j].X0 })
	var out []Detection
	used := make([]bool, len(books))
	for i := range books {
		if used[i] {
			continue
		}
		group := []Detection{books[i]}
		for j := i + 1; j < len(books); j++ {
			if used[j] {
				continue
			}
			last := group[len(group)-1]
			// Same row: vertical overlap and a small horizontal gap.
			if vOverlap(last, books[j]) && books[j].X0-last.X1 < 4*(last.X1-last.X0)+8 {
				group = append(group, books[j])
				used[j] = true
			}
		}
		if len(group) >= p.minBooks {
			x0, y0, x1, y1 := group[0].X0, group[0].Y0, group[0].X1, group[0].Y1
			conf := 0.0
			for _, g := range group {
				x0, y0 = minI(x0, g.X0), minI(y0, g.Y0)
				x1, y1 = maxI(x1, g.X1), maxI(y1, g.Y1)
				conf += g.Confidence
			}
			out = append(out, Detection{
				Kind: scene.KindBookshelf,
				X0:   x0, Y0: y0, X1: x1, Y1: y1,
				Confidence: conf / float64(len(group)),
			})
		}
	}
	return out
}

func vOverlap(a, b Detection) bool {
	return a.Y0 < b.Y1 && b.Y0 < a.Y1
}

// ---- connected components over recovered pixels ----

type component struct {
	count          int
	x0, y0, x1, y1 int
}

func (c component) w() int { return c.x1 - c.x0 }
func (c component) h() int { return c.y1 - c.y0 }
func (c component) fill() float64 {
	a := c.w() * c.h()
	if a == 0 {
		return 0
	}
	return float64(c.count) / float64(a)
}

func (c component) detection(kind scene.ObjectKind, conf float64) Detection {
	if conf > 1 {
		conf = 1
	}
	return Detection{Kind: kind, X0: c.x0, Y0: c.y0, X1: c.x1, Y1: c.y1, Confidence: conf}
}

// components labels connected components of recovered pixels whose HSV
// satisfies pred. bridge is the neighbourhood radius: 1 is plain
// 8-connectivity; 2 additionally bridges 1-pixel recovery gaps, which
// suits sparse reconstructions.
func components(rec *core.Reconstruction, pred func(imagex.HSV) bool, bridge int) []component {
	W, H := rec.Recovered.W, rec.Recovered.H
	inClass := make([]bool, W*H)
	rec.Coverage.ForEachSet(func(i int) {
		if pred(rec.Recovered.Pix[i].ToHSV()) {
			inClass[i] = true
		}
	})
	seen := make([]bool, W*H)
	var comps []component
	var stack []int
	for start := range inClass {
		if !inClass[start] || seen[start] {
			continue
		}
		comp := component{x0: W, y0: H}
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := i%W, i/W
			comp.count++
			comp.x0, comp.y0 = minI(comp.x0, x), minI(comp.y0, y)
			comp.x1, comp.y1 = maxI(comp.x1, x+1), maxI(comp.y1, y+1)
			for dy := -bridge; dy <= bridge; dy++ {
				for dx := -bridge; dx <= bridge; dx++ {
					nx, ny := x+dx, y+dy
					if nx < 0 || nx >= W || ny < 0 || ny >= H {
						continue
					}
					j := ny*W + nx
					if inClass[j] && !seen[j] {
						seen[j] = true
						stack = append(stack, j)
					}
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
