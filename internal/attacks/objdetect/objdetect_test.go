package objdetect

import (
	"math/rand"
	"testing"

	"github.com/bgbuster/bgbuster/internal/attacks/attacktest"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/scene"
)

// sceneWith returns a scene forced to contain the listed kinds.
func sceneWith(seed int64, kinds ...scene.ObjectKind) *scene.Scene {
	cfg := scene.DefaultConfig()
	cfg.Clutter = 0
	cfg.ForceKinds = kinds
	return scene.Generate(cfg, rand.New(rand.NewSource(seed)))
}

// hasDetection reports whether dets contains a detection of the kind
// overlapping the ground-truth object with IoU ≥ 0.3.
func hasDetection(dets []Detection, o scene.Object) bool {
	for _, d := range dets {
		if d.Kind == o.Kind && d.IoU(o.X0, o.Y0, o.X1, o.Y1) >= 0.3 {
			return true
		}
	}
	return false
}

func TestDetectTV(t *testing.T) {
	s := sceneWith(1, scene.KindTV)
	rec := attacktest.FromImage(s.Base, attacktest.All)
	dets := Detect(rec, ModelRetinaNetStyle)
	tv := s.Find(scene.KindTV)[0]
	if !hasDetection(dets, tv) {
		t.Fatalf("TV not detected; detections: %+v", dets)
	}
}

func TestDetectClock(t *testing.T) {
	s := sceneWith(2, scene.KindClock)
	rec := attacktest.FromImage(s.Base, attacktest.All)
	dets := Detect(rec, ModelRetinaNetStyle)
	clock := s.Find(scene.KindClock)[0]
	if !hasDetection(dets, clock) {
		t.Fatalf("clock not detected; detections: %+v", dets)
	}
}

func TestDetectWindow(t *testing.T) {
	s := sceneWith(3, scene.KindWindow)
	rec := attacktest.FromImage(s.Base, attacktest.All)
	dets := Detect(rec, ModelRetinaNetStyle)
	win := s.Find(scene.KindWindow)[0]
	if !hasDetection(dets, win) {
		t.Fatalf("window not detected; detections: %+v", dets)
	}
}

func TestDetectBooksAndShelf(t *testing.T) {
	s := sceneWith(4, scene.KindBookshelf)
	rec := attacktest.FromImage(s.Base, attacktest.All)
	dets := Detect(rec, ModelRetinaNetStyle)
	foundBook := false
	for _, o := range s.Find(scene.KindBook) {
		if hasDetection(dets, o) {
			foundBook = true
			break
		}
	}
	if !foundBook {
		t.Fatal("no book detected on a full bookshelf")
	}
	foundShelf := false
	for _, d := range dets {
		if d.Kind == scene.KindBookshelf {
			foundShelf = true
		}
	}
	if !foundShelf {
		t.Fatal("bookshelf not aggregated from books")
	}
}

func TestDetectStickyNote(t *testing.T) {
	s := sceneWith(5, scene.KindStickyNote)
	rec := attacktest.FromImage(s.Base, attacktest.All)
	dets := Detect(rec, ModelRetinaNetStyle)
	note := s.Find(scene.KindStickyNote)[0]
	if !hasDetection(dets, note) {
		t.Fatalf("sticky note not detected; detections: %+v", dets)
	}
}

func TestDetectEmptyReconstruction(t *testing.T) {
	rec := attacktest.FromImage(imagex.New(160, 120), func(x, y int) bool { return false })
	if dets := Detect(rec, ModelRetinaNetStyle); len(dets) != 0 {
		t.Fatalf("empty reconstruction yielded %d detections", len(dets))
	}
}

func TestSparseCoverageLosesDetections(t *testing.T) {
	s := sceneWith(6, scene.KindTV, scene.KindClock, scene.KindWindow)
	full := attacktest.FromImage(s.Base, attacktest.All)
	sparse := attacktest.FromImage(s.Base, attacktest.RandomKeep(6, 0.06))
	nFull := len(Detect(full, ModelRetinaNetStyle))
	nSparse := len(Detect(sparse, ModelRetinaNetStyle))
	if nSparse > nFull {
		t.Fatalf("sparse coverage produced more detections (%d) than full (%d)", nSparse, nFull)
	}
}

func TestYOLOStyleStricterThanRetinaNet(t *testing.T) {
	// Across several cluttered scenes at partial coverage, the
	// precision-leaning profile must not out-detect the recall-leaning
	// one.
	totalR, totalY := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		cfg := scene.DefaultConfig()
		cfg.Clutter = 1
		s := scene.Generate(cfg, rand.New(rand.NewSource(seed)))
		rec := attacktest.FromImage(s.Base, attacktest.RandomKeep(seed, 0.6))
		totalR += len(Detect(rec, ModelRetinaNetStyle))
		totalY += len(Detect(rec, ModelYOLOStyle))
	}
	if totalY > totalR {
		t.Fatalf("yolo-style detected more (%d) than retinanet-style (%d)", totalY, totalR)
	}
}

func TestDetectionsSortedByConfidence(t *testing.T) {
	s := sceneWith(7, scene.KindTV, scene.KindClock, scene.KindBookshelf)
	rec := attacktest.FromImage(s.Base, attacktest.All)
	dets := Detect(rec, ModelRetinaNetStyle)
	for i := 1; i < len(dets); i++ {
		if dets[i].Confidence > dets[i-1].Confidence {
			t.Fatal("detections not sorted by confidence")
		}
	}
}

func TestIoU(t *testing.T) {
	d := Detection{X0: 0, Y0: 0, X1: 10, Y1: 10}
	if got := d.IoU(0, 0, 10, 10); got != 1 {
		t.Fatalf("self IoU = %v", got)
	}
	if got := d.IoU(20, 20, 30, 30); got != 0 {
		t.Fatalf("disjoint IoU = %v", got)
	}
	if got := d.IoU(5, 0, 15, 10); got != 50.0/150 {
		t.Fatalf("half-overlap IoU = %v", got)
	}
}

func TestModelStrings(t *testing.T) {
	if ModelRetinaNetStyle.String() != "retinanet-style" || ModelYOLOStyle.String() != "yolo-style" {
		t.Fatal("model labels wrong")
	}
	if Model(9).String() != "model(9)" {
		t.Fatal("unknown model label wrong")
	}
}

func TestDetectShirt(t *testing.T) {
	s := sceneWith(8, scene.KindShirt)
	rec := attacktest.FromImage(s.Base, attacktest.All)
	dets := Detect(rec, ModelRetinaNetStyle)
	shirt := s.Find(scene.KindShirt)[0]
	if !hasDetection(dets, shirt) {
		t.Fatalf("shirt not detected; detections: %+v", dets)
	}
}

func TestShirtNotConfusedWithPoster(t *testing.T) {
	s := sceneWith(9, scene.KindPoster)
	rec := attacktest.FromImage(s.Base, attacktest.All)
	dets := Detect(rec, ModelRetinaNetStyle)
	poster := s.Find(scene.KindPoster)[0]
	for _, d := range dets {
		if d.Kind == scene.KindShirt && d.IoU(poster.X0, poster.Y0, poster.X1, poster.Y1) >= 0.3 {
			t.Fatalf("poster misclassified as shirt: %+v", d)
		}
	}
}
