// Package objtrack implements the paper's Specific Object Tracking
// attack (Section VI): given a template of a known object, decide
// whether the object is present in the partially reconstructed
// background. The template is shifted, scaled and rotated across the
// reconstruction; a window matches when enough of its recovered pixels
// agree in hue with the template. The paper's two false-positive guards
// are enforced: a minimum window size of 5 % of the frame and at least
// 50 % of the window's pixels successfully recovered.
package objtrack

import (
	"errors"
	"math"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

// ErrBadTemplate is returned for empty or degenerate templates.
var ErrBadTemplate = errors.New("objtrack: bad template")

// Options tunes the tracker.
type Options struct {
	// Scales lists template scale factors to try.
	Scales []float64
	// Rotations lists rotation angles (degrees); 0 is always tried.
	Rotations []float64
	// Stride is the window sliding step in pixels.
	Stride int
	// HueTol is the per-pixel hue agreement threshold (degrees).
	HueTol float64
	// SatFloor skips near-grey pixels (value is compared instead).
	SatFloor float64
	// ValueTol is the |ΔV| threshold used for near-grey pixels.
	ValueTol float64
	// MinWindowFrac is the minimum window area as a fraction of the
	// frame (paper: 0.05).
	MinWindowFrac float64
	// MinRecoveredFrac is the minimum recovered share of the window
	// (paper: 0.5).
	MinRecoveredFrac float64
	// MatchThreshold is the hue-agreement score above which the object
	// counts as present.
	MatchThreshold float64
}

// DefaultOptions returns the calibrated tracker settings (paper
// constraints included).
func DefaultOptions() Options {
	return Options{
		Scales:           []float64{0.8, 0.85, 0.9, 1.0, 1.1, 1.2},
		Rotations:        []float64{-6, 6},
		Stride:           3,
		HueTol:           16,
		SatFloor:         0.15,
		ValueTol:         0.18,
		MinWindowFrac:    0.05,
		MinRecoveredFrac: 0.5,
		MatchThreshold:   0.72,
	}
}

// Match locates the best window for a template.
type Match struct {
	Found bool
	// X, Y is the top-left corner of the matched window.
	X, Y int
	// Scale and Rotation describe the matched transform.
	Scale, Rotation float64
	// Score is the hue-agreement fraction over recovered pixels.
	Score float64
	// Recovered is the fraction of window pixels that were recovered.
	Recovered float64
}

// Track searches the reconstruction for the template. It returns the
// best match (Found=false when no window passes the constraints and
// threshold).
func Track(rec *core.Reconstruction, template *imagex.Image, opts Options) (Match, error) {
	if template == nil || template.W < 2 || template.H < 2 {
		return Match{}, ErrBadTemplate
	}
	if opts.Stride <= 0 {
		opts.Stride = 1
	}
	if len(opts.Scales) == 0 {
		opts.Scales = []float64{1.0}
	}
	W, H := rec.Recovered.W, rec.Recovered.H
	frameArea := float64(W * H)
	minWindowPx := opts.MinWindowFrac * frameArea

	// Integral image over coverage: O(1) recovered-count per window so
	// under-recovered placements are skipped before the expensive scan.
	integ := coverageIntegral(rec.Coverage)

	best := Match{}
	rots := append([]float64{0}, opts.Rotations...)
	for _, scale := range opts.Scales {
		tw := int(float64(template.W)*scale + 0.5)
		th := int(float64(template.H)*scale + 0.5)
		if tw < 2 || th < 2 || tw > W || th > H {
			continue
		}
		// The paper's 5 % window guard, suppressing the small-area false
		// positives the paper describes.
		if float64(tw*th) < minWindowPx {
			continue
		}
		for _, rot := range rots {
			sin, cos := math.Sincos(rot * math.Pi / 180)
			for y := 0; y+th <= H; y += opts.Stride {
				for x := 0; x+tw <= W; x += opts.Stride {
					recov := integ.sum(x, y, x+tw, y+th)
					if float64(recov) < opts.MinRecoveredFrac*float64(tw*th) {
						continue
					}
					m := scoreWindow(rec, template, x, y, tw, th, sin, cos, opts, 2)
					if m.Recovered < opts.MinRecoveredFrac {
						continue
					}
					if m.Score > best.Score {
						best = m
						best.Scale, best.Rotation = scale, rot
					}
				}
			}
		}
	}
	// Refinement: the coarse stride can misalign by a pixel or two,
	// which matters on fine-patterned templates. Re-search a stride-1
	// neighbourhood around the best coarse placement.
	if best.Score > 0 && opts.Stride > 1 {
		scale, rot := best.Scale, best.Rotation
		tw := int(float64(template.W)*scale + 0.5)
		th := int(float64(template.H)*scale + 0.5)
		sin, cos := math.Sincos(rot * math.Pi / 180)
		for dy := -opts.Stride; dy <= opts.Stride; dy++ {
			for dx := -opts.Stride; dx <= opts.Stride; dx++ {
				x, y := best.X+dx, best.Y+dy
				if x < 0 || y < 0 || x+tw > W || y+th > H {
					continue
				}
				m := scoreWindow(rec, template, x, y, tw, th, sin, cos, opts, 1)
				if m.Recovered >= opts.MinRecoveredFrac && m.Score > best.Score {
					m.Scale, m.Rotation = scale, rot
					best = m
				}
			}
		}
	}

	best.Found = best.Score >= opts.MatchThreshold && best.Recovered >= opts.MinRecoveredFrac
	return best, nil
}

// integral is a summed-area table of the coverage mask.
type integral struct {
	w, h int
	s    []int
}

func coverageIntegral(m *imagex.Mask) integral {
	it := integral{w: m.W, h: m.H, s: make([]int, (m.W+1)*(m.H+1))}
	for y := 0; y < m.H; y++ {
		row := 0
		for x := 0; x < m.W; x++ {
			if m.At(x, y) {
				row++
			}
			it.s[(y+1)*(it.w+1)+x+1] = it.s[y*(it.w+1)+x+1] + row
		}
	}
	return it
}

// sum returns the number of covered pixels in [x0,x1)×[y0,y1).
func (it integral) sum(x0, y0, x1, y1 int) int {
	w1 := it.w + 1
	return it.s[y1*w1+x1] - it.s[y0*w1+x1] - it.s[y1*w1+x0] + it.s[y0*w1+x0]
}

// scoreWindow compares the template against the recovered pixels of one
// window placement. Both hue (for saturated pixels) and relative
// position are honoured: each window pixel maps to its rotated/scaled
// template coordinate, implementing the paper's "color (hue) and the
// relative distance between the pixels" criterion. step subsamples the
// window grid (coarse sweeps pass 2, refinement passes 1).
func scoreWindow(rec *core.Reconstruction, tpl *imagex.Image, x0, y0, tw, th int, sin, cos float64, opts Options, step int) Match {
	total, recovered, hits := 0, 0, 0
	cxw, cyw := float64(tw)/2, float64(th)/2
	sx := float64(tpl.W) / float64(tw)
	sy := float64(tpl.H) / float64(th)
	for wy := 0; wy < th; wy += step {
		for wx := 0; wx < tw; wx += step {
			total++
			px, py := x0+wx, y0+wy
			if !rec.Coverage.At(px, py) {
				continue
			}
			recovered++
			// Rotate the window coordinate about the window centre, then
			// scale into template space.
			rx := cos*(float64(wx)-cxw) - sin*(float64(wy)-cyw) + cxw
			ry := sin*(float64(wx)-cxw) + cos*(float64(wy)-cyw) + cyw
			// Pixel-centre mapping into template space limits the
			// aliasing error for non-unit scales.
			tx := int((rx+0.5)*sx - 0.5 + 0.5)
			ty := int((ry+0.5)*sy - 0.5 + 0.5)
			if !tpl.In(tx, ty) {
				continue
			}
			a := rec.Recovered.At(px, py).ToHSV()
			b := tpl.At(tx, ty).ToHSV()
			if a.S < opts.SatFloor && b.S < opts.SatFloor {
				if math.Abs(a.V-b.V) <= opts.ValueTol {
					hits++
				}
				continue
			}
			if imagex.HueDistance(a.H, b.H) <= opts.HueTol && math.Abs(a.V-b.V) <= 2.5*opts.ValueTol {
				hits++
			}
		}
	}
	m := Match{X: x0, Y: y0}
	if total > 0 {
		m.Recovered = float64(recovered) / float64(total)
	}
	if recovered > 0 {
		m.Score = float64(hits) / float64(recovered)
	}
	return m
}
