package objtrack

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/bgbuster/bgbuster/internal/attacks/attacktest"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/scene"
)

// posterScene generates a scene guaranteed to contain a poster and
// returns the scene plus the poster object.
func posterScene(t *testing.T, seed int64) (*scene.Scene, scene.Object) {
	t.Helper()
	cfg := scene.DefaultConfig()
	cfg.ForceKinds = []scene.ObjectKind{scene.KindPoster}
	s := scene.Generate(cfg, rand.New(rand.NewSource(seed)))
	posters := s.Find(scene.KindPoster)
	if len(posters) == 0 {
		t.Fatal("no poster placed")
	}
	return s, posters[0]
}

func TestTrackFindsPlantedObject(t *testing.T) {
	s, poster := posterScene(t, 1)
	tpl := s.Template(poster)
	rec := attacktest.FromImage(s.Base, attacktest.RandomKeep(1, 0.8))

	m, err := Track(rec, tpl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Found {
		t.Fatalf("poster not found: score=%.3f recovered=%.3f", m.Score, m.Recovered)
	}
	// Located near the true position.
	if absI(m.X-poster.X0) > 6 || absI(m.Y-poster.Y0) > 6 {
		t.Fatalf("found at (%d,%d), truth (%d,%d)", m.X, m.Y, poster.X0, poster.Y0)
	}
}

func TestTrackAbsentObjectNotFound(t *testing.T) {
	s1, poster := posterScene(t, 2)
	tpl := s1.Template(poster)
	// Different scene without a poster and with a different wall.
	cfg := scene.DefaultConfig()
	cfg.Clutter = 0
	s2 := scene.Generate(cfg, rand.New(rand.NewSource(77)))
	rec := attacktest.FromImage(s2.Base, attacktest.RandomKeep(2, 0.8))

	m, err := Track(rec, tpl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Found {
		t.Fatalf("poster falsely found in empty scene: score=%.3f at (%d,%d)", m.Score, m.X, m.Y)
	}
}

func TestTrackRespectsMinRecovered(t *testing.T) {
	s, poster := posterScene(t, 3)
	tpl := s.Template(poster)
	// Only 20 % recovered — below the paper's 50 % constraint.
	rec := attacktest.FromImage(s.Base, attacktest.RandomKeep(3, 0.2))
	m, err := Track(rec, tpl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Found && m.Recovered < DefaultOptions().MinRecoveredFrac {
		t.Fatal("match below the recovered-fraction constraint")
	}
}

func TestTrackBadTemplate(t *testing.T) {
	rec := attacktest.FromImage(imagex.New(20, 20), attacktest.All)
	if _, err := Track(rec, nil, DefaultOptions()); !errors.Is(err, ErrBadTemplate) {
		t.Fatalf("nil template error = %v", err)
	}
	if _, err := Track(rec, imagex.New(1, 1), DefaultOptions()); !errors.Is(err, ErrBadTemplate) {
		t.Fatalf("degenerate template error = %v", err)
	}
}

func TestTrackTemplateLargerThanFrame(t *testing.T) {
	rec := attacktest.FromImage(imagex.New(10, 10), attacktest.All)
	big := imagex.NewFilled(40, 40, imagex.RGB{R: 200})
	m, err := Track(rec, big, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Found {
		t.Fatal("oversized template cannot match")
	}
}

func TestTrackScaledObject(t *testing.T) {
	s, poster := posterScene(t, 4)
	// Template at 1.2× of the rendered size; the scale sweep must cover it.
	tpl := s.Template(poster)
	up := imagex.New(tpl.W*12/10, tpl.H*12/10)
	for y := 0; y < up.H; y++ {
		for x := 0; x < up.W; x++ {
			up.Set(x, y, tpl.At(x*10/12, y*10/12))
		}
	}
	rec := attacktest.FromImage(s.Base, attacktest.RandomKeep(4, 0.85))
	m, err := Track(rec, up, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Found {
		t.Fatalf("scaled poster not found: score=%.3f", m.Score)
	}
}

func TestTrackZeroStrideDefaults(t *testing.T) {
	s, poster := posterScene(t, 5)
	rec := attacktest.FromImage(s.Base, attacktest.All)
	opts := DefaultOptions()
	opts.Stride = 0
	if _, err := Track(rec, s.Template(poster), opts); err != nil {
		t.Fatal(err)
	}
}

func absI(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
