package segment

import (
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// Segmenter produces a video-caller mask (VCM) for a blended frame. The
// oracle argument is the true silhouette: simulated segmenters perturb
// it instead of running a CNN (see the package comment). Implementations
// must tolerate a nil oracle by returning an empty mask.
type Segmenter interface {
	Segment(frame *imagex.Image, oracle *imagex.Mask) *imagex.Mask
}

// IntoSegmenter is an optional extension: SegmentInto writes the mask
// into a caller-supplied scratch instead of allocating, returning the
// mask written (dst, or a fresh one when dst is nil or mis-sized). The
// streaming hot path type-asserts for it so a cooperating segmenter
// keeps the per-frame pipeline allocation-free; segmenters that only
// implement Segment still work, at one mask allocation per frame. The
// error-simulating segmenters (OfflineSegmenter, Matting) fall in the
// latter camp on purpose — their seeded perturbation passes allocate
// internally, and their draw order defines the golden outputs.
type IntoSegmenter interface {
	Segmenter
	SegmentInto(dst *imagex.Mask, frame *imagex.Image, oracle *imagex.Mask) *imagex.Mask
}

// OfflineSegmenter simulates the attacker's post-processing person
// segmentation (DeepLabv3 in the paper, Section V-D: "very accurate…
// cannot be applied in real-time… an attacker can certainly use it for
// post-processing"). It is substantially more accurate than the
// real-time Matting but still imperfect: boundary dither plus a
// systematic margin that swallows some leaked background near the
// caller — exactly the residue the paper's color-based refinement then
// recovers.
type OfflineSegmenter struct {
	// Margin dilates the mask outward by this many pixels (DeepLabv3's
	// conservative halo around people).
	Margin int
	// Dither is the probability that an outer-boundary pixel flips.
	Dither float64

	rng *rand.Rand
}

var _ Segmenter = (*OfflineSegmenter)(nil)

// NewOfflineSegmenter returns a segmenter with the calibrated default
// error profile; rng must be non-nil.
func NewOfflineSegmenter(rng *rand.Rand) *OfflineSegmenter {
	if rng == nil {
		panic("segment: nil rng")
	}
	return &OfflineSegmenter{Margin: 1, Dither: 0.05, rng: rng}
}

// Segment returns the estimated caller mask.
func (s *OfflineSegmenter) Segment(frame *imagex.Image, oracle *imagex.Mask) *imagex.Mask {
	if oracle == nil {
		return imagex.NewMask(frame.W, frame.H)
	}
	est := oracle.Dilate(s.Margin)
	if s.Dither > 0 {
		for _, i := range setIndices(est.Boundary()) {
			if s.rng.Float64() < s.Dither {
				est.SetI(i, false)
			}
		}
		// Occasional outward speckle.
		outer := est.Dilate(1)
		for _, i := range setIndices(outer) {
			if !est.GetI(i) && s.rng.Float64() < s.Dither/3 {
				est.SetI(i, true)
			}
		}
	}
	return est
}

// OracleSegmenter returns the true silhouette unchanged. Tests and
// ablation benchmarks use it to isolate other error sources.
type OracleSegmenter struct{}

var _ IntoSegmenter = OracleSegmenter{}

// Segment returns the oracle unchanged (or an empty mask when nil).
func (OracleSegmenter) Segment(frame *imagex.Image, oracle *imagex.Mask) *imagex.Mask {
	if oracle == nil {
		return imagex.NewMask(frame.W, frame.H)
	}
	return oracle.Clone()
}

// SegmentInto writes the oracle silhouette into dst, allocating only
// when dst is nil or mis-sized. A clone is still handed out — callers
// may edit the returned mask (the color refinement does), and the
// oracle belongs to the caller of Feed.
func (OracleSegmenter) SegmentInto(dst *imagex.Mask, frame *imagex.Image, oracle *imagex.Mask) *imagex.Mask {
	if dst == nil || dst.W != frame.W || dst.H != frame.H {
		dst = imagex.NewMask(frame.W, frame.H)
	}
	if oracle == nil || dst.CopyFrom(oracle) != nil {
		dst.Clear()
	}
	return dst
}
