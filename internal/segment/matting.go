// Package segment provides the two person-segmentation models of the
// study:
//
//   - Matting: the *real-time* foreground/background separator inside the
//     video-calling software (the paper's proprietary Zoom/Skype matting).
//     It is deliberately imperfect; its error model is the source of all
//     background leakage the attack exploits.
//   - OfflineSegmenter: the *attacker-side* post-processing segmenter
//     (the paper uses DeepLabv3). It is more accurate than the real-time
//     matting but still imperfect, and is refined with the paper's
//     statistical color filter inside internal/core.
//
// Both are simulators: they perturb an oracle silhouette instead of
// running a CNN (see DESIGN.md §2 for why this preserves the studied
// behaviour — the reconstruction framework consumes only masks).
package segment

import (
	"math"
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// MattingConfig tunes the real-time matting error model. Every mechanism
// corresponds to a leakage source the paper observed (Section V-D):
// inaccurate human boundaries, initial-frames leakage, motion blur, and
// poor lighting.
type MattingConfig struct {
	// Name identifies the profile in reports ("zoom", "skype").
	Name string

	// BoundaryWidth is the half-width (pixels) of the uncertainty band
	// around the true silhouette in which misclassification happens.
	BoundaryWidth int
	// LeakRate is the base per-frame expected number of
	// background-as-foreground blob errors per 100 boundary pixels.
	LeakRate float64
	// CutRate is the base rate of foreground-as-background blob errors
	// (visual glitches; they do not leak background).
	CutRate float64
	// BlobRadius bounds the error blob radius (1..BlobRadius).
	BlobRadius int

	// MotionGain amplifies LeakRate with the boundary-motion fraction
	// (motion blur blends the moving limb with the background).
	// Motion-driven blobs are centred on the *moved* silhouette pixels,
	// so a waving arm leaks along its swept arc while a still torso
	// leaks only a thin boundary ring.
	MotionGain float64
	// MotionSpread widens the spatial reach (and size) of motion-driven
	// blobs, in pixels per unit of clamped boundary motion: heavier blur
	// smears the misclassification further from the true edge.
	MotionSpread float64
	// MotionSat is the boundary-motion fraction at which blur stops
	// helping the attacker: beyond it the limb itself is mis-masked as
	// background, *reducing* leakage (the paper's fast-clapping effect).
	MotionSat float64
	// MotionOverDrop is the leak-rate penalty applied per unit of
	// boundary motion beyond MotionSat.
	MotionOverDrop float64

	// WarmupFrames is the tracker warm-up length; within it extra leak
	// patches appear, decaying geometrically (paper Figure 5).
	WarmupFrames int
	// WarmupPatches is the expected number of warm-up leak patches in
	// frame 0.
	WarmupPatches float64
	// WarmupPatchRadius bounds the warm-up patch radius.
	WarmupPatchRadius int

	// LumaRef is the scene luminance (0-255) at which the model is
	// calibrated; darker scenes raise the error by LumaGain per unit of
	// relative luminance deficit.
	LumaRef  float64
	LumaGain float64

	// TrailKeep is the per-frame probability that a pixel of the
	// previous estimated mask is retained even though the person left it
	// (temporal smoothing trail; leaks the background just vacated).
	TrailKeep float64

	// ErrScale multiplies all error rates; camera quality sets it
	// (cleaner sensors → smaller errors).
	ErrScale float64
}

// Matting is the stateful real-time separator. Not safe for concurrent
// use; create one per call recording.
type Matting struct {
	cfg      MattingConfig
	rng      *rand.Rand
	frameIdx int
	prevEst  *imagex.Mask
	prevTrue *imagex.Mask
}

// NewMatting creates a matting instance; rng must be non-nil.
func NewMatting(cfg MattingConfig, rng *rand.Rand) *Matting {
	if rng == nil {
		panic("segment: nil rng")
	}
	if cfg.ErrScale == 0 {
		cfg.ErrScale = 1
	}
	if cfg.BlobRadius <= 0 {
		cfg.BlobRadius = 2
	}
	return &Matting{cfg: cfg, rng: rng}
}

// Reset clears the temporal state (a new call starts).
func (m *Matting) Reset() {
	m.frameIdx = 0
	m.prevEst = nil
	m.prevTrue = nil
}

// FrameIndex returns the number of frames estimated so far.
func (m *Matting) FrameIndex() int { return m.frameIdx }

// Estimate produces the software's foreground mask for one frame. frame
// is the captured sensor image (used for its luminance); oracle is the
// true silhouette the simulated CNN is trying to find.
//
// The returned mask = oracle ± errors:
//
//   - boundary leak blobs           (background classified as caller)
//   - warm-up leak patches          (tracker not locked yet)
//   - temporal trail                (smoothing lags the moving caller)
//     − boundary cut blobs            (caller fragments lost)
//     − over-motion limb drops        (extreme blur masks the limb away)
func (m *Matting) Estimate(frame *imagex.Image, oracle *imagex.Mask) *imagex.Mask {
	est := oracle.Clone()
	boundary := oracle.Boundary()
	boundaryPx := boundary.Count()

	// Boundary motion fraction: how much of the silhouette boundary
	// moved since the previous frame.
	motion := 0.0
	if m.prevTrue != nil && boundaryPx > 0 {
		sym := symmetricDiff(oracle, m.prevTrue)
		motion = float64(sym.Count()) / float64(boundaryPx)
	}

	// Luminance amplification: darker scene → worse separation.
	lumaAmp := 1.0
	if m.cfg.LumaRef > 0 {
		deficit := (m.cfg.LumaRef - frame.MeanLuminance()) / m.cfg.LumaRef
		if deficit > 0 {
			lumaAmp += m.cfg.LumaGain * deficit
		}
	}

	// Motion response: linear rise that saturates at MotionSat (even
	// slow movement fully destabilises the matting around the moving
	// edge), then a gentle decline with further motion (over-blur: the
	// limb itself starts being mis-masked as background — the paper's
	// fast-clapping effect).
	clampedMotion := math.Min(motion, m.cfg.MotionSat)
	motionTerm := m.cfg.MotionGain * clampedMotion
	overMotion := math.Max(0, motion-m.cfg.MotionSat)
	motionTerm -= m.cfg.MotionOverDrop * overMotion
	if motionTerm < 0 {
		motionTerm = 0
	}

	scale := m.cfg.ErrScale * lumaAmp

	// Poor lighting also smears the misclassification spatially, not
	// just more often: a dark, noisy input blurs the decision boundary.
	lumaWiden := int(2.5*(lumaAmp-1) + 0.5)

	// Base background-as-foreground blobs along the whole boundary: the
	// thin ring even a still caller leaks.
	baseBudget := m.cfg.LeakRate * scale * float64(boundaryPx) / 100
	m.scatterBlobs(est, boundary, baseBudget, true, m.cfg.BlobRadius+lumaWiden, m.cfg.BlobRadius+lumaWiden)

	// Motion-driven blobs: centred on the silhouette pixels that moved
	// this frame, with blur-widened spread AND radius — a waving arm
	// leaks coherent background patches along its swept arc. Patch size
	// matters: the attacker's own φ-dilation of the virtual-background
	// mask swallows any leak thinner than the blend radius, so only
	// motion-blur-sized patches are recoverable, exactly as in the
	// paper's examples.
	if motionTerm > 0 && m.prevTrue != nil {
		moved := symmetricDiff(oracle, m.prevTrue)
		spread := m.cfg.BlobRadius + int(m.cfg.MotionSpread*clampedMotion) + lumaWiden
		motionBudget := m.cfg.LeakRate * scale * motionTerm * float64(boundaryPx) / 100
		m.scatterBlobs(est, moved, motionBudget, true, spread, maxI(m.cfg.BlobRadius, spread))
	}

	// Foreground-as-background cut blobs (inner boundary).
	cutBudget := m.cfg.CutRate * scale * float64(boundaryPx) / 100
	m.scatterBlobs(est, boundary, cutBudget, false, m.cfg.BlobRadius, m.cfg.BlobRadius)

	// Over-motion limb drop: with extreme blur, moving silhouette parts
	// are mis-masked as background, hiding them (and the background they
	// cover) behind the virtual image.
	if overMotion > 0 && m.prevTrue != nil {
		moved := symmetricDiff(oracle, m.prevTrue)
		if err := moved.Intersect(oracle); err == nil {
			dropP := math.Min(0.9, m.cfg.MotionOverDrop*overMotion*0.5)
			moved.ForEachSet(func(i int) {
				if m.rng.Float64() < dropP {
					est.SetI(i, false)
				}
			})
		}
	}

	// Warm-up: big leak patches near the caller in the first frames.
	if m.frameIdx < m.cfg.WarmupFrames && m.cfg.WarmupPatches > 0 {
		decay := math.Pow(0.55, float64(m.frameIdx))
		m.warmupPatches(est, oracle, m.cfg.WarmupPatches*decay*scale)
	}

	// Temporal smoothing trail: previous estimate bleeds into this one.
	if m.prevEst != nil && m.cfg.TrailKeep > 0 {
		m.prevEst.ForEachSet(func(i int) {
			if !est.GetI(i) && m.rng.Float64() < m.cfg.TrailKeep {
				est.SetI(i, true)
			}
		})
	}

	m.prevEst = est.Clone()
	m.prevTrue = oracle.Clone()
	m.frameIdx++
	return est
}

// scatterBlobs stamps approximately `budget` disc-shaped errors of
// radius up to maxR centred near random pixels of the anchor mask,
// displaced by up to maxOff.
// add=true sets bits (leak), add=false clears them (cut). Fractional
// budgets resolve probabilistically so small error rates still fire
// occasionally.
func (m *Matting) scatterBlobs(est, anchor *imagex.Mask, budget float64, add bool, maxOff, maxR int) {
	n := int(budget)
	if m.rng.Float64() < budget-float64(n) {
		n++
	}
	if n == 0 {
		return
	}
	idxs := setIndices(anchor)
	if len(idxs) == 0 {
		return
	}
	if maxOff < 1 {
		maxOff = 1
	}
	if maxR < 1 {
		maxR = 1
	}
	for b := 0; b < n; b++ {
		at := idxs[m.rng.Intn(len(idxs))]
		cx, cy := at%est.W, at/est.W
		r := 1 + m.rng.Intn(maxR)
		ox := m.rng.Intn(2*maxOff+1) - maxOff
		oy := m.rng.Intn(2*maxOff+1) - maxOff
		stampDisc(est, cx+ox, cy+oy, r, add)
	}
}

// warmupPatches stamps large leak patches adjacent to the silhouette
// (or anywhere when the caller is absent, e.g. before entering the
// room — real software shows the entire raw scene for an instant).
func (m *Matting) warmupPatches(est, oracle *imagex.Mask, budget float64) {
	n := int(budget)
	if m.rng.Float64() < budget-float64(n) {
		n++
	}
	band := oracle.Dilate(m.cfg.WarmupPatchRadius + 2)
	idxs := setIndices(band)
	for p := 0; p < n; p++ {
		var cx, cy int
		if len(idxs) > 0 {
			at := idxs[m.rng.Intn(len(idxs))]
			cx, cy = at%est.W, at/est.W
		} else {
			cx, cy = m.rng.Intn(est.W), m.rng.Intn(est.H)
		}
		r := 2 + m.rng.Intn(maxI(1, m.cfg.WarmupPatchRadius))
		stampDisc(est, cx, cy, r, true)
	}
}

func stampDisc(m *imagex.Mask, cx, cy, r int, v bool) {
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				m.Set(cx+dx, cy+dy, v)
			}
		}
	}
}

func symmetricDiff(a, b *imagex.Mask) *imagex.Mask {
	if !a.SameSize(b) {
		return imagex.NewMask(a.W, a.H)
	}
	out := a.Clone()
	_ = out.Xor(b) // same geometry, checked above
	return out
}

func setIndices(m *imagex.Mask) []int {
	idxs := make([]int, 0, m.Count())
	m.ForEachSet(func(i int) {
		idxs = append(idxs, i)
	})
	return idxs
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
