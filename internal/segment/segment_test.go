package segment

import (
	"math/rand"
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// testConfig is a middle-of-the-road matting profile for unit tests.
func testConfig() MattingConfig {
	return MattingConfig{
		Name:              "test",
		BoundaryWidth:     2,
		LeakRate:          3,
		CutRate:           1,
		BlobRadius:        2,
		MotionGain:        2,
		MotionSat:         1.0,
		MotionOverDrop:    2,
		WarmupFrames:      5,
		WarmupPatches:     4,
		WarmupPatchRadius: 4,
		LumaRef:           120,
		LumaGain:          1.5,
		TrailKeep:         0.4,
	}
}

func blockMask(w, h, x0, y0, x1, y1 int) *imagex.Mask {
	m := imagex.NewMask(w, h)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			m.Set(x, y, true)
		}
	}
	return m
}

func TestNewMattingNilRngPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatting(testConfig(), nil)
}

func TestEstimateDeterministicGivenSeed(t *testing.T) {
	frame := imagex.NewFilled(60, 60, imagex.RGB{R: 130, G: 130, B: 130})
	oracle := blockMask(60, 60, 20, 20, 40, 60)
	a := NewMatting(testConfig(), rand.New(rand.NewSource(5))).Estimate(frame, oracle)
	b := NewMatting(testConfig(), rand.New(rand.NewSource(5))).Estimate(frame, oracle)
	if !a.Equal(b) {
		t.Fatal("same seed must give identical estimates")
	}
}

func TestEstimateLeaksAndWarmup(t *testing.T) {
	frame := imagex.NewFilled(60, 60, imagex.RGB{R: 130, G: 130, B: 130})
	oracle := blockMask(60, 60, 20, 20, 40, 60)
	m := NewMatting(testConfig(), rand.New(rand.NewSource(1)))
	est := m.Estimate(frame, oracle)
	// Frame 0 is deep in warm-up: the estimate must include background
	// pixels (leaks), i.e. bits outside the oracle.
	leak := est.Clone()
	if err := leak.Subtract(oracle); err != nil {
		t.Fatal(err)
	}
	if leak.Count() == 0 {
		t.Fatal("warm-up frame must leak background")
	}
	if m.FrameIndex() != 1 {
		t.Fatal("frame index not advanced")
	}
}

func TestWarmupDecays(t *testing.T) {
	// Average leak area over the first frame must exceed the average
	// after warm-up (paper Fig. 5 shape).
	frame := imagex.NewFilled(80, 80, imagex.RGB{R: 130, G: 130, B: 130})
	oracle := blockMask(80, 80, 30, 30, 55, 80)
	var first, later float64
	const trials = 20
	for s := int64(0); s < trials; s++ {
		m := NewMatting(testConfig(), rand.New(rand.NewSource(s)))
		for i := 0; i < 12; i++ {
			est := m.Estimate(frame, oracle)
			leak := est.Clone()
			if err := leak.Subtract(oracle); err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				first += float64(leak.Count())
			}
			if i == 11 {
				later += float64(leak.Count())
			}
		}
	}
	if first <= later {
		t.Fatalf("warm-up leak (%f) must exceed steady-state leak (%f)", first, later)
	}
}

func TestDarkScenesLeakMore(t *testing.T) {
	oracle := blockMask(80, 80, 30, 30, 55, 80)
	leakArea := func(lum uint8) float64 {
		total := 0.0
		for s := int64(0); s < 30; s++ {
			cfg := testConfig()
			cfg.WarmupPatches = 0 // isolate the luminance mechanism
			m := NewMatting(cfg, rand.New(rand.NewSource(s)))
			frame := imagex.NewFilled(80, 80, imagex.RGB{R: lum, G: lum, B: lum})
			for i := 0; i < 10; i++ {
				est := m.Estimate(frame, oracle)
				leak := est.Clone()
				if err := leak.Subtract(oracle); err != nil {
					t.Fatal(err)
				}
				total += float64(leak.Count())
			}
		}
		return total
	}
	dark := leakArea(40)
	bright := leakArea(200)
	if dark <= bright {
		t.Fatalf("dark scene leak (%f) must exceed bright (%f)", dark, bright)
	}
}

func TestMotionIncreasesLeak(t *testing.T) {
	frame := imagex.NewFilled(80, 80, imagex.RGB{R: 130, G: 130, B: 130})
	leakArea := func(move bool) float64 {
		total := 0.0
		for s := int64(0); s < 30; s++ {
			cfg := testConfig()
			cfg.WarmupFrames = 0
			cfg.TrailKeep = 0
			cfg.MotionOverDrop = 0 // isolate the sub-saturation gain
			m := NewMatting(cfg, rand.New(rand.NewSource(s)))
			for i := 0; i < 12; i++ {
				x := 30
				if move && i%2 == 1 {
					x = 31
				}
				oracle := blockMask(80, 80, x, 30, x+25, 80)
				est := m.Estimate(frame, oracle)
				leak := est.Clone()
				if err := leak.Subtract(oracle); err != nil {
					t.Fatal(err)
				}
				total += float64(leak.Count())
			}
		}
		return total
	}
	if moving, still := leakArea(true), leakArea(false); moving <= still {
		t.Fatalf("moving leak (%f) must exceed static leak (%f)", moving, still)
	}
}

func TestTrailKeepsVacatedPixels(t *testing.T) {
	frame := imagex.NewFilled(80, 80, imagex.RGB{R: 130, G: 130, B: 130})
	cfg := testConfig()
	cfg.WarmupFrames = 0
	cfg.LeakRate = 0
	cfg.CutRate = 0
	cfg.MotionOverDrop = 0
	cfg.TrailKeep = 1.0 // deterministic trail
	m := NewMatting(cfg, rand.New(rand.NewSource(2)))

	a := blockMask(80, 80, 10, 30, 30, 80)
	b := blockMask(80, 80, 40, 30, 60, 80) // jumped right
	m.Estimate(frame, a)
	est := m.Estimate(frame, b)
	// With TrailKeep=1 every pixel of the previous estimate must remain.
	if est.Overlap(a) != a.Count() {
		t.Fatal("trail must retain the vacated silhouette")
	}
}

func TestResetClearsState(t *testing.T) {
	frame := imagex.NewFilled(40, 40, imagex.RGB{R: 130, G: 130, B: 130})
	oracle := blockMask(40, 40, 10, 10, 30, 40)
	m := NewMatting(testConfig(), rand.New(rand.NewSource(3)))
	m.Estimate(frame, oracle)
	m.Reset()
	if m.FrameIndex() != 0 {
		t.Fatal("Reset must zero the frame index")
	}
}

func TestErrScaleReducesErrors(t *testing.T) {
	oracle := blockMask(80, 80, 30, 30, 55, 80)
	frame := imagex.NewFilled(80, 80, imagex.RGB{R: 130, G: 130, B: 130})
	leakWithScale := func(scale float64) float64 {
		total := 0.0
		for s := int64(0); s < 30; s++ {
			cfg := testConfig()
			cfg.WarmupFrames = 0
			cfg.ErrScale = scale
			m := NewMatting(cfg, rand.New(rand.NewSource(s)))
			for i := 0; i < 8; i++ {
				est := m.Estimate(frame, oracle)
				leak := est.Clone()
				if err := leak.Subtract(oracle); err != nil {
					t.Fatal(err)
				}
				total += float64(leak.Count())
			}
		}
		return total
	}
	if lo, hi := leakWithScale(0.3), leakWithScale(1.5); lo >= hi {
		t.Fatalf("ErrScale must scale leakage: 0.3→%f, 1.5→%f", lo, hi)
	}
}

func TestOfflineSegmenterAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seg := NewOfflineSegmenter(rng)
	frame := imagex.NewFilled(80, 80, imagex.RGB{R: 100, G: 100, B: 100})
	oracle := blockMask(80, 80, 30, 30, 55, 80)
	est := seg.Segment(frame, oracle)

	// IoU must be high (well above the raw matting's worst case).
	inter := est.Clone()
	if err := inter.Intersect(oracle); err != nil {
		t.Fatal(err)
	}
	uni := est.Clone()
	if err := uni.Union(oracle); err != nil {
		t.Fatal(err)
	}
	iou := float64(inter.Count()) / float64(uni.Count())
	if iou < 0.85 {
		t.Fatalf("offline segmenter IoU = %f, want ≥ 0.85", iou)
	}
}

func TestOfflineSegmenterNilOracle(t *testing.T) {
	seg := NewOfflineSegmenter(rand.New(rand.NewSource(1)))
	frame := imagex.New(10, 10)
	if seg.Segment(frame, nil).Count() != 0 {
		t.Fatal("nil oracle must give empty mask")
	}
}

func TestOfflineSegmenterNilRngPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOfflineSegmenter(nil)
}

func TestOracleSegmenter(t *testing.T) {
	frame := imagex.New(10, 10)
	oracle := blockMask(10, 10, 2, 2, 8, 8)
	got := OracleSegmenter{}.Segment(frame, oracle)
	if !got.Equal(oracle) {
		t.Fatal("oracle segmenter must return the oracle")
	}
	got.Set(0, 0, true)
	if oracle.At(0, 0) {
		t.Fatal("oracle segmenter must return a copy")
	}
	if (OracleSegmenter{}).Segment(frame, nil).Count() != 0 {
		t.Fatal("nil oracle must give empty mask")
	}
}

func TestEstimateEmptyOracle(t *testing.T) {
	// Caller absent (before entering the room): estimate must not panic
	// and, during warm-up, may still leak arbitrary patches.
	frame := imagex.NewFilled(40, 40, imagex.RGB{R: 130, G: 130, B: 130})
	m := NewMatting(testConfig(), rand.New(rand.NewSource(6)))
	est := m.Estimate(frame, imagex.NewMask(40, 40))
	_ = est.Count() // any count is legal; absence of panic is the test
}
