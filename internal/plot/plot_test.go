package plot

import (
	"math"
	"path/filepath"
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

func chart() *BarChart {
	return &BarChart{
		Title:   "Figure 7 — RBRR per action",
		YLabel:  "RBRR %",
		XLabels: []string{"typing", "waving", "exiting"},
		Series: []Series{
			{Name: "p1", Values: []float64{4.4, 30.3, 38.6}},
			{Name: "p2", Values: []float64{5.0, 28.0, 41.0}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := chart().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := chart()
	bad.XLabels = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("no labels accepted")
	}
	bad = chart()
	bad.Series = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("no series accepted")
	}
	bad = chart()
	bad.Series[0].Values = []float64{1}
	if err := bad.Validate(); err == nil {
		t.Fatal("ragged series accepted")
	}
	bad = chart()
	bad.Series[0].Values[1] = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN accepted")
	}
}

func TestRenderGeometryAndBars(t *testing.T) {
	c := chart()
	img, err := c.Render(320, 200)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 320 || img.H != 200 {
		t.Fatalf("geometry %dx%d", img.W, img.H)
	}
	// Bars must paint series colors inside the plot area.
	found := map[imagex.RGB]bool{}
	for _, p := range img.Pix {
		found[p] = true
	}
	for i := range c.Series {
		if !found[DefaultPalette[i]] {
			t.Fatalf("series %d color missing from render", i)
		}
	}
}

func TestRenderBarHeightsScale(t *testing.T) {
	c := &BarChart{
		Title:   "t",
		XLabels: []string{"lo", "hi"},
		Series:  []Series{{Name: "s", Values: []float64{10, 40}, Color: imagex.RGB{R: 1, G: 2, B: 3}}},
		YMax:    40,
	}
	img, err := c.Render(240, 160)
	if err != nil {
		t.Fatal(err)
	}
	colHeights := func(c imagex.RGB) (int, int) {
		half := img.W / 2
		left, right := 0, 0
		for y := 0; y < img.H; y++ {
			for x := 0; x < img.W; x++ {
				if img.At(x, y) == c {
					if x < half {
						left++
					} else {
						right++
					}
				}
			}
		}
		return left, right
	}
	lo, hi := colHeights(imagex.RGB{R: 1, G: 2, B: 3})
	if lo == 0 || hi == 0 {
		t.Fatal("bars missing")
	}
	ratio := float64(hi) / float64(lo)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("bar area ratio %.2f, want ≈4", ratio)
	}
}

func TestRenderMinimumSizeClamp(t *testing.T) {
	img, err := chart().Render(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if img.W < 220 || img.H < 140 {
		t.Fatal("minimum size not enforced")
	}
}

func TestSaveWritesPNG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig.png")
	if err := chart().Save(path, 300, 180); err != nil {
		t.Fatal(err)
	}
	back, err := imagex.ReadPNG(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != 300 {
		t.Fatal("saved geometry wrong")
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{
		0:    1,
		3:    5,
		9:    10,
		38.6: 50,
		61:   100,
		100:  100,
		17:   20,
	}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestTruncate(t *testing.T) {
	if truncate("hello", 3) != "hel" || truncate("hi", 5) != "hi" || truncate("x", 0) != "" {
		t.Fatal("truncate wrong")
	}
}
