// Package plot renders experiment results as bar-chart PNGs using only
// the imagex raster primitives and the bitmap font — so the evaluation
// suite can regenerate the paper's figures (7, 8, 9, 10-12, 15) as
// images, not just text tables.
package plot

import (
	"fmt"
	"math"

	"github.com/bgbuster/bgbuster/internal/font"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

// Series is one group of bars (e.g. one participant, one top-k level).
type Series struct {
	Name   string
	Values []float64
	Color  imagex.RGB
}

// BarChart describes a grouped bar chart.
type BarChart struct {
	Title string
	// YLabel annotates the y axis (e.g. "RBRR %").
	YLabel string
	// XLabels name the groups along the x axis; every series must have
	// one value per label.
	XLabels []string
	Series  []Series
	// YMax fixes the y-axis top; 0 autoscales to the data.
	YMax float64
}

// DefaultPalette supplies series colors when Series.Color is zero.
var DefaultPalette = []imagex.RGB{
	{R: 66, G: 133, B: 244},
	{R: 219, G: 68, B: 55},
	{R: 244, G: 180, B: 0},
	{R: 15, G: 157, B: 88},
	{R: 171, G: 71, B: 188},
	{R: 255, G: 112, B: 67},
}

// Layout constants (pixels).
const (
	marginLeft   = 46
	marginRight  = 12
	marginTop    = 26
	marginBottom = 34
	legendRow    = 12
)

// Validate checks the chart is renderable.
func (c *BarChart) Validate() error {
	if len(c.XLabels) == 0 {
		return fmt.Errorf("plot: no x labels")
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.XLabels) {
			return fmt.Errorf("plot: series %q has %d values for %d labels",
				s.Name, len(s.Values), len(c.XLabels))
		}
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("plot: series %q contains a non-finite value", s.Name)
			}
		}
	}
	return nil
}

// Render draws the chart at the given pixel size (minimum 220×140).
func (c *BarChart) Render(w, h int) (*imagex.Image, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if w < 220 {
		w = 220
	}
	if h < 140 {
		h = 140
	}
	img := imagex.NewFilled(w, h, imagex.RGB{R: 250, G: 250, B: 248})
	ink := imagex.RGB{R: 40, G: 40, B: 40}
	grid := imagex.RGB{R: 215, G: 215, B: 212}

	legendH := 0
	if len(c.Series) > 1 {
		legendH = legendRow
	}
	plotX0 := marginLeft
	plotY0 := marginTop + legendH
	plotX1 := w - marginRight
	plotY1 := h - marginBottom

	// Title.
	font.Render(img, truncate(c.Title, (w-8)/(font.GlyphW+font.Spacing)), 4, 4, ink)

	// Y scale.
	yMax := c.YMax
	if yMax <= 0 {
		for _, s := range c.Series {
			for _, v := range s.Values {
				if v > yMax {
					yMax = v
				}
			}
		}
		yMax = niceCeil(yMax)
	}
	if yMax <= 0 {
		yMax = 1
	}

	// Gridlines + y tick labels at 0, ¼, ½, ¾, 1 of yMax.
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		y := plotY1 - int(frac*float64(plotY1-plotY0))
		img.FillRect(plotX0, y, plotX1, y+1, grid)
		label := fmt.Sprintf("%g", math.Round(frac*yMax*10)/10)
		font.Render(img, label, plotX0-len(label)*(font.GlyphW+font.Spacing)-4, y-3, ink)
	}
	if c.YLabel != "" {
		font.Render(img, truncate(c.YLabel, 7), 2, plotY0-10, ink)
	}

	// Legend.
	if legendH > 0 {
		x := plotX0
		for i, s := range c.Series {
			col := seriesColor(s, i)
			img.FillRect(x, marginTop+2, x+7, marginTop+9, col)
			x += 10
			x += font.Render(img, truncate(s.Name, 14), x, marginTop+2, ink) + 10
		}
	}

	// Bars.
	groups := len(c.XLabels)
	groupW := (plotX1 - plotX0) / groups
	barW := maxInt(2, (groupW-4)/len(c.Series))
	for g := 0; g < groups; g++ {
		gx := plotX0 + g*groupW
		for si, s := range c.Series {
			v := s.Values[g]
			if v < 0 {
				v = 0
			}
			if v > yMax {
				v = yMax
			}
			barH := int(v / yMax * float64(plotY1-plotY0))
			x0 := gx + 2 + si*barW
			img.FillRect(x0, plotY1-barH, x0+barW-1, plotY1, seriesColor(s, si))
		}
		// X label, truncated to the group width.
		maxChars := maxInt(1, (groupW-2)/(font.GlyphW+font.Spacing))
		label := truncate(c.XLabels[g], maxChars)
		font.Render(img, label, gx+2, plotY1+4, ink)
	}

	// Axes on top of bars.
	img.FillRect(plotX0-1, plotY0, plotX0, plotY1+1, ink)
	img.FillRect(plotX0-1, plotY1, plotX1, plotY1+1, ink)
	return img, nil
}

// Save renders the chart and writes it as a PNG.
func (c *BarChart) Save(path string, w, h int) error {
	img, err := c.Render(w, h)
	if err != nil {
		return err
	}
	return img.WritePNG(path)
}

func seriesColor(s Series, i int) imagex.RGB {
	if s.Color != (imagex.RGB{}) {
		return s.Color
	}
	return DefaultPalette[i%len(DefaultPalette)]
}

// niceCeil rounds up to a tidy axis maximum.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func truncate(s string, n int) string {
	if n <= 0 {
		return ""
	}
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n])
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
