// Package metrics implements the paper's performance metrics (Section
// VIII-A): Virtual Background Masking Rate (VBMR), Reconstructed
// Background Recovery Rate (RBRR), Action Speed, and Displacement — plus
// verified-precision extensions this reproduction adds so the
// dynamic-virtual-background mitigation results (paper Figure 15, where
// claimed RBRR inflates with false positives) can be quantified.
//
// Action Speed and Displacement are computed by
// (*vidstream.Video).ActionSpeed and (*vidstream.Video).Displacement.
package metrics

import (
	"fmt"
	"math"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

// VBMR returns the Virtual Background Masking Rate for one frame, in
// percent: the share of true virtual-background pixels that the
// attacker's masking removed (i.e. did NOT mistake for leaked
// background). 100 % means no VB pixel survived into the claimed leak.
func VBMR(claimedLB, trueVB *imagex.Mask) (float64, error) {
	if !claimedLB.SameSize(trueVB) {
		return 0, fmt.Errorf("metrics: vbmr %dx%d vs %dx%d: %w",
			claimedLB.W, claimedLB.H, trueVB.W, trueVB.H, imagex.ErrBounds)
	}
	vb := trueVB.Count()
	if vb == 0 {
		return 100, nil
	}
	leakedVB := claimedLB.Overlap(trueVB)
	return 100 * float64(vb-leakedVB) / float64(vb), nil
}

// VideoVBMR averages the per-frame VBMR over a call; trueVBs must align
// with claims frame-by-frame.
func VideoVBMR(claims, trueVBs []*imagex.Mask) (float64, error) {
	if len(claims) != len(trueVBs) {
		return 0, fmt.Errorf("metrics: %d claims vs %d VB masks", len(claims), len(trueVBs))
	}
	if len(claims) == 0 {
		return 0, fmt.Errorf("metrics: no frames")
	}
	sum := 0.0
	for i := range claims {
		v, err := VBMR(claims[i], trueVBs[i])
		if err != nil {
			return 0, fmt.Errorf("metrics: frame %d: %w", i, err)
		}
		sum += v
	}
	return sum / float64(len(claims)), nil
}

// RBRR returns the claimed Reconstructed Background Recovery Rate in
// percent: the fraction of the frame claimed leaked in at least one
// frame. This matches the paper's Figures 7–12 semantics, and — like the
// paper's Figure 15 — inflates when a mitigation tricks the framework
// into claiming virtual-background pixels.
func RBRR(rec *core.Reconstruction) float64 { return rec.RBRR() }

// Verification compares a reconstruction against the true background of
// the scene (pre-person, fully lit or as-lit; the dataset provides it).
type Verification struct {
	// ClaimedPct is the claimed RBRR (percent of frame claimed).
	ClaimedPct float64
	// TruePct is the verified recovery: percent of the frame that was
	// claimed AND matches the true background within tolerance.
	TruePct float64
	// Precision is TruePct/ClaimedPct in [0,1]; 1 when nothing claimed.
	Precision float64
}

// Verify scores a reconstruction against the true background image.
func Verify(rec *core.Reconstruction, trueBackground *imagex.Image, tol int) (Verification, error) {
	if rec.Recovered.W != trueBackground.W || rec.Recovered.H != trueBackground.H {
		return Verification{}, fmt.Errorf("metrics: verify %dx%d vs %dx%d: %w",
			rec.Recovered.W, rec.Recovered.H, trueBackground.W, trueBackground.H, imagex.ErrBounds)
	}
	claimed, good := 0, 0
	rec.Coverage.ForEachSet(func(i int) {
		claimed++
		if withinTol(rec.Recovered.Pix[i], trueBackground.Pix[i], tol) {
			good++
		}
	})
	total := float64(rec.Coverage.Len())
	v := Verification{
		ClaimedPct: 100 * float64(claimed) / total,
		TruePct:    100 * float64(good) / total,
		Precision:  1,
	}
	if claimed > 0 {
		v.Precision = float64(good) / float64(claimed)
	}
	return v, nil
}

func withinTol(a, b imagex.RGB, tol int) bool {
	return absInt(int(a.R)-int(b.R)) <= tol &&
		absInt(int(a.G)-int(b.G)) <= tol &&
		absInt(int(a.B)-int(b.B)) <= tol
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than
// two samples).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}
