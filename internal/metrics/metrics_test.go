package metrics

import (
	"errors"
	"math"
	"testing"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

func TestVBMRExtremes(t *testing.T) {
	vb := imagex.NewFullMask(10, 10)

	none := imagex.NewMask(10, 10)
	got, err := VBMR(none, vb)
	if err != nil || got != 100 {
		t.Fatalf("no claims → VBMR = %v (%v), want 100", got, err)
	}

	all := imagex.NewFullMask(10, 10)
	got, err = VBMR(all, vb)
	if err != nil || got != 0 {
		t.Fatalf("all claimed → VBMR = %v, want 0", got)
	}

	half := imagex.NewMask(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 5; x++ {
			half.Set(x, y, true)
		}
	}
	got, err = VBMR(half, vb)
	if err != nil || got != 50 {
		t.Fatalf("half claimed → VBMR = %v, want 50", got)
	}
}

func TestVBMREmptyVB(t *testing.T) {
	got, err := VBMR(imagex.NewFullMask(4, 4), imagex.NewMask(4, 4))
	if err != nil || got != 100 {
		t.Fatalf("empty VB → VBMR = %v, want 100", got)
	}
}

func TestVBMRSizeMismatch(t *testing.T) {
	if _, err := VBMR(imagex.NewMask(2, 2), imagex.NewMask(3, 3)); !errors.Is(err, imagex.ErrBounds) {
		t.Fatalf("error = %v", err)
	}
}

func TestVideoVBMR(t *testing.T) {
	vb := imagex.NewFullMask(4, 4)
	clean := imagex.NewMask(4, 4)
	dirty := imagex.NewFullMask(4, 4)
	got, err := VideoVBMR([]*imagex.Mask{clean, dirty}, []*imagex.Mask{vb, vb})
	if err != nil || got != 50 {
		t.Fatalf("VideoVBMR = %v (%v), want 50", got, err)
	}
	if _, err := VideoVBMR([]*imagex.Mask{clean}, []*imagex.Mask{vb, vb}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := VideoVBMR(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func recWith(w, h int, claims map[int]imagex.RGB) *core.Reconstruction {
	rec := &core.Reconstruction{
		Recovered: imagex.New(w, h),
		Coverage:  imagex.NewMask(w, h),
	}
	for i, c := range claims {
		rec.Coverage.SetI(i, true)
		rec.Recovered.Pix[i] = c
	}
	return rec
}

func TestVerify(t *testing.T) {
	truth := imagex.NewFilled(10, 10, imagex.RGB{R: 100, G: 100, B: 100})
	rec := recWith(10, 10, map[int]imagex.RGB{
		0: {R: 100, G: 100, B: 100}, // correct claim
		1: {R: 101, G: 99, B: 100},  // correct within tol
		2: {R: 10, G: 200, B: 10},   // false claim
	})
	v, err := Verify(rec, truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.ClaimedPct-3) > 1e-9 {
		t.Fatalf("ClaimedPct = %v, want 3", v.ClaimedPct)
	}
	if math.Abs(v.TruePct-2) > 1e-9 {
		t.Fatalf("TruePct = %v, want 2", v.TruePct)
	}
	if math.Abs(v.Precision-2.0/3) > 1e-9 {
		t.Fatalf("Precision = %v, want 2/3", v.Precision)
	}
}

func TestVerifyEmptyClaims(t *testing.T) {
	truth := imagex.New(4, 4)
	v, err := Verify(recWith(4, 4, nil), truth, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Precision != 1 || v.ClaimedPct != 0 || v.TruePct != 0 {
		t.Fatalf("empty verification = %+v", v)
	}
}

func TestVerifySizeMismatch(t *testing.T) {
	if _, err := Verify(recWith(2, 2, nil), imagex.New(3, 3), 0); !errors.Is(err, imagex.ErrBounds) {
		t.Fatalf("error = %v", err)
	}
}

func TestRBRRDelegates(t *testing.T) {
	rec := recWith(10, 10, map[int]imagex.RGB{0: {}, 1: {}})
	if got := RBRR(rec); math.Abs(got-2) > 1e-9 {
		t.Fatalf("RBRR = %v, want 2", got)
	}
}

func TestMeanStddev(t *testing.T) {
	if Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty stats must be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	if s := Stddev(xs); math.Abs(s-2.138089935) > 1e-6 {
		t.Fatalf("stddev = %v", s)
	}
	if Stddev([]float64{3}) != 0 {
		t.Fatal("single-sample stddev must be 0")
	}
}
