package dataset

import (
	"fmt"

	"github.com/bgbuster/bgbuster/internal/person"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// E1 builds the 163-video controlled-action collection:
//
//	 50  base:       5 participants × 10 actions (lights on, average speed)
//	 30  lighting:   participants 1–3 × 10 actions with lights OFF
//	 30  accessories: participant 1 × 10 actions × {hat, headphones, both}
//	 20  speed:      5 participants × {arm-wave, clap} × {slow, fast}
//	 30  apparel:    participants 3–5 × 10 actions with wall-similar shirts
//	  3  backgrounds: participant 2, typing, three extra rooms
//	---
//	163 total (the paper's E1 count)
//
// Every participant keeps one home background across their E1 videos
// (per condition), mirroring participants recording at a location of
// their choice.
func E1(cfg Config) []*Call {
	var calls []*Call
	add := func(participant int, a person.Action, sp person.Speed, acc person.Accessories, lightsOn, apparelSim bool, sceneSalt int64) {
		id := fmt.Sprintf("e1-%03d", len(calls))
		calls = append(calls, &Call{
			ID:             id,
			Phase:          PhaseE1,
			Participant:    participant,
			Action:         a,
			Speed:          sp,
			Accessories:    acc,
			LightsOn:       lightsOn,
			ApparelSimilar: apparelSim,
			Camera:         vidstream.CameraWebcam,
			SceneSeed:      cfg.Seed*1000 + int64(participant)*37 + sceneSalt,
			Frames:         cfg.E1Frames,
			FPS:            cfg.FPS,
			W:              cfg.W,
			H:              cfg.H,
			seed:           cfg.Seed*100000 + int64(len(calls)),
		})
	}

	// Base grid.
	for p := 1; p <= 5; p++ {
		for _, a := range person.Actions {
			add(p, a, person.SpeedAverage, person.Accessories{}, true, false, 0)
		}
	}
	// Lighting-off repeats.
	for p := 1; p <= 3; p++ {
		for _, a := range person.Actions {
			add(p, a, person.SpeedAverage, person.Accessories{}, false, false, 0)
		}
	}
	// Accessory repeats (participant 1).
	for _, acc := range []person.Accessories{
		{Hat: true},
		{Headphones: true},
		{Hat: true, Headphones: true},
	} {
		for _, a := range person.Actions {
			add(1, a, person.SpeedAverage, acc, true, false, 0)
		}
	}
	// Speed sweeps.
	for p := 1; p <= 5; p++ {
		for _, a := range []person.Action{person.ActionArmWave, person.ActionClap} {
			for _, sp := range []person.Speed{person.SpeedSlow, person.SpeedFast} {
				add(p, a, sp, person.Accessories{}, true, false, 0)
			}
		}
	}
	// Apparel repeats (participants 3–5, wall-similar shirts).
	for p := 3; p <= 5; p++ {
		for _, a := range person.Actions {
			add(p, a, person.SpeedAverage, person.Accessories{}, true, true, 0)
		}
	}
	// Extra backgrounds (participant 2, typing).
	for salt := int64(1); salt <= 3; salt++ {
		add(2, person.ActionType, person.SpeedAverage, person.Accessories{}, true, false, salt)
	}
	return calls
}

// E2 builds the 25-video passive/active collection: 5 participants × (4
// passive + 1 active), each recording against a different background.
func E2(cfg Config) []*Call {
	var calls []*Call
	for p := 1; p <= 5; p++ {
		for session := 0; session < 5; session++ {
			engagement := person.EngagementPassive
			if session == 4 {
				engagement = person.EngagementActive
			}
			id := fmt.Sprintf("e2-%03d", len(calls))
			calls = append(calls, &Call{
				ID:          id,
				Phase:       PhaseE2,
				Participant: p,
				Engagement:  engagement,
				LightsOn:    true,
				Camera:      vidstream.CameraWebcam,
				SceneSeed:   cfg.Seed*2000 + int64(p)*101 + int64(session)*13,
				Frames:      cfg.E2Frames,
				FPS:         cfg.FPS,
				W:           cfg.W,
				H:           cfg.H,
				seed:        cfg.Seed*200000 + int64(len(calls)),
			})
		}
	}
	return calls
}

// E3 builds the 50-video in-the-wild collection: active speakers with
// studio cameras and lighting, varied lengths.
func E3(cfg Config) []*Call {
	var calls []*Call
	for i := 0; i < 50; i++ {
		// Vary lengths ±40 % deterministically.
		frames := cfg.E3Frames * (80 + (i*17)%80) / 100
		if frames < 30 {
			frames = 30
		}
		id := fmt.Sprintf("e3-%03d", len(calls))
		calls = append(calls, &Call{
			ID:          id,
			Phase:       PhaseE3,
			Participant: 100 + i, // unrelated individuals
			Engagement:  person.EngagementActive,
			LightsOn:    true,
			Camera:      vidstream.CameraStudio,
			SceneSeed:   cfg.Seed*3000 + int64(i)*31,
			Frames:      frames,
			FPS:         cfg.FPS,
			W:           cfg.W,
			H:           cfg.H,
			seed:        cfg.Seed*300000 + int64(len(calls)),
		})
	}
	return calls
}

// All returns E1 ∪ E2 ∪ E3.
func All(cfg Config) []*Call {
	out := E1(cfg)
	out = append(out, E2(cfg)...)
	out = append(out, E3(cfg)...)
	return out
}
