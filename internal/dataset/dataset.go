// Package dataset builds the synthetic counterparts of the paper's
// three data collections (Section VII):
//
//   - E1: 163 short controlled-action videos from 5 participants — ten
//     actions crossed with lighting, accessory, apparel, speed and
//     background variations.
//   - E2: 25 longer call videos from 5 participants — 4 passive + 1
//     active each, every recording against a different background.
//   - E3: 50 "in the wild" videos — active speakers with studio-grade
//     cameras and lighting.
//
// Calls are lightweight descriptors; Render materialises the raw frames,
// true silhouettes and the ground-truth background on demand. Everything
// is deterministic in (Config.Seed, call ID).
package dataset

import (
	"fmt"
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/person"
	"github.com/bgbuster/bgbuster/internal/scene"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// Phase identifies the data collection a call belongs to.
type Phase int

// Collection phases.
const (
	PhaseE1 Phase = iota + 1
	PhaseE2
	PhaseE3
)

// String returns the phase label.
func (p Phase) String() string {
	switch p {
	case PhaseE1:
		return "E1"
	case PhaseE2:
		return "E2"
	case PhaseE3:
		return "E3"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Config controls dataset geometry and scale. The paper records
// 1280×720 at 30 fps for 2–10 minutes; the simulator defaults scale that
// down (see DESIGN.md §2) while keeping all percentage metrics
// resolution-normalised.
type Config struct {
	W, H int
	FPS  int
	// E1Frames/E2Frames/E3Frames are frames per call in each phase.
	E1Frames int
	E2Frames int
	E3Frames int
	// Seed makes the whole dataset reproducible.
	Seed int64
}

// DefaultConfig returns the standard simulator scale.
func DefaultConfig() Config {
	return Config{W: 160, H: 120, FPS: 30, E1Frames: 200, E2Frames: 180, E3Frames: 150, Seed: 1}
}

// Call describes one recording.
type Call struct {
	ID          string
	Phase       Phase
	Participant int
	Action      person.Action
	Speed       person.Speed
	Engagement  person.Engagement
	Accessories person.Accessories
	// ApparelSimilar selects a shirt colour close to the wall hue.
	ApparelSimilar bool
	// LightsOn is the background lighting condition.
	LightsOn bool
	// Camera is the capture profile (webcam for E1/E2, studio for E3).
	Camera vidstream.CameraProfile
	// SceneSeed picks the background; calls sharing it share a location.
	SceneSeed int64
	// Frames and FPS fix the recording length.
	Frames int
	FPS    int
	// Geometry.
	W, H int
	// seed drives person kinematics and camera noise.
	seed int64
}

// Light returns the scene lighting factor for the call's condition.
func (c *Call) Light() float64 {
	if c.LightsOn {
		return 1.0
	}
	return 0.45
}

// Rendered is a materialised call.
type Rendered struct {
	// Raw is the pre-virtual-background capture (the paper's ground
	// truth recording).
	Raw *vidstream.Video
	// Silhouettes are the true per-frame caller masks.
	Silhouettes []*imagex.Mask
	// TrueBackground is the as-lit scene without the caller — the
	// reference for verified-recovery metrics.
	TrueBackground *imagex.Image
	// Scene carries the ground-truth object inventory.
	Scene *scene.Scene
}

// Render materialises the call.
func (c *Call) Render() (*Rendered, error) {
	if c.W <= 0 || c.H <= 0 || c.Frames <= 0 {
		return nil, fmt.Errorf("dataset: call %s has invalid geometry", c.ID)
	}
	sc := c.SceneFor()

	rng := rand.New(rand.NewSource(c.seed))
	pcfg := person.Config{
		Action:      c.Action,
		Speed:       c.Speed,
		Engagement:  c.Engagement,
		Accessories: c.Accessories,
		// Webcam close-up: the caller fills a large share of the frame,
		// as in the paper's recordings.
		Scale: 1.25,
	}
	pcfg.ShirtColor = apparelColor(sc, c.ApparelSimilar, rng)
	p := person.New(pcfg, rng)

	light := c.Light()
	raw := vidstream.New(c.FPS)
	sils := make([]*imagex.Mask, 0, c.Frames)
	dur := float64(c.Frames) / float64(c.FPS)
	for i := 0; i < c.Frames; i++ {
		f := sc.Lit(light)
		m := p.Render(f, float64(i)/float64(c.FPS), dur)
		c.Camera.Capture(f, rng)
		if err := raw.Append(f); err != nil {
			return nil, fmt.Errorf("dataset: call %s frame %d: %w", c.ID, i, err)
		}
		sils = append(sils, m)
	}
	return &Rendered{
		Raw:            raw,
		Silhouettes:    sils,
		TrueBackground: sc.Lit(light),
		Scene:          sc,
	}, nil
}

// apparelColor picks a shirt colour similar or contrasting to the wall.
func apparelColor(sc *scene.Scene, similar bool, rng *rand.Rand) imagex.RGB {
	hue := sc.WallHue + 180 // contrasting by default
	if similar {
		hue = sc.WallHue + (rng.Float64()*20 - 10)
	}
	return imagex.HSV{H: hue, S: 0.5 + rng.Float64()*0.3, V: 0.45 + rng.Float64()*0.3}.ToRGB()
}
