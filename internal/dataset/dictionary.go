package dataset

import (
	"fmt"
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/scene"
)

// SceneFor regenerates the call's background scene deterministically
// (the same derivation Render uses), letting the evaluation build the
// location-inference dictionary without re-rendering whole videos.
func (c *Call) SceneFor() *scene.Scene {
	sceneRng := rand.New(rand.NewSource(c.SceneSeed))
	cfg := scene.DefaultConfig()
	cfg.W, cfg.H = c.W, c.H
	cfg.Clutter = 0.5 + sceneRng.Float64()*0.5
	return scene.Generate(cfg, sceneRng)
}

// LocationName is the dictionary key of the call's background; calls
// sharing a scene seed share a location.
func (c *Call) LocationName() string {
	return fmt.Sprintf("loc-%d", c.SceneSeed)
}

// FillerScenes generates extra backgrounds (locations no call uses) so
// the dictionary can be padded to the paper's 200 entries.
func FillerScenes(cfg Config, n int) []*scene.Scene {
	out := make([]*scene.Scene, 0, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed*9000 + int64(i)*7 + 3))
		scfg := scene.DefaultConfig()
		scfg.W, scfg.H = cfg.W, cfg.H
		scfg.Clutter = 0.5 + rng.Float64()*0.5
		out = append(out, scene.Generate(scfg, rng))
	}
	return out
}
