package dataset

import (
	"testing"

	"github.com/bgbuster/bgbuster/internal/person"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.W, cfg.H = 80, 60
	cfg.E1Frames, cfg.E2Frames, cfg.E3Frames = 12, 18, 15
	return cfg
}

func TestE1CountMatchesPaper(t *testing.T) {
	calls := E1(DefaultConfig())
	if len(calls) != 163 {
		t.Fatalf("E1 has %d videos, paper collected 163", len(calls))
	}
}

func TestE2CountMatchesPaper(t *testing.T) {
	calls := E2(DefaultConfig())
	if len(calls) != 25 {
		t.Fatalf("E2 has %d videos, paper collected 25", len(calls))
	}
	passive, active := 0, 0
	perParticipant := map[int]int{}
	for _, c := range calls {
		perParticipant[c.Participant]++
		switch c.Engagement {
		case person.EngagementPassive:
			passive++
		case person.EngagementActive:
			active++
		}
	}
	if passive != 20 || active != 5 {
		t.Fatalf("passive/active = %d/%d, want 20/5", passive, active)
	}
	for p, n := range perParticipant {
		if n != 5 {
			t.Fatalf("participant %d has %d videos, want 5", p, n)
		}
	}
}

func TestE2BackgroundsAllDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range E2(DefaultConfig()) {
		name := c.LocationName()
		if seen[name] {
			t.Fatalf("duplicate E2 background %s", name)
		}
		seen[name] = true
	}
}

func TestE3CountAndVariety(t *testing.T) {
	calls := E3(DefaultConfig())
	if len(calls) != 50 {
		t.Fatalf("E3 has %d videos, paper collected 50", len(calls))
	}
	lengths := map[int]bool{}
	for _, c := range calls {
		if c.Engagement != person.EngagementActive {
			t.Fatal("wild videos must be active speakers")
		}
		if c.Camera.Name != "studio" {
			t.Fatal("wild videos must use the studio camera profile")
		}
		lengths[c.Frames] = true
	}
	if len(lengths) < 5 {
		t.Fatalf("E3 lengths not varied: %d distinct", len(lengths))
	}
}

func TestE1CoversAllConditions(t *testing.T) {
	calls := E1(DefaultConfig())
	actions := map[person.Action]bool{}
	var lightsOff, withAcc, speedVar, apparel int
	for _, c := range calls {
		actions[c.Action] = true
		if !c.LightsOn {
			lightsOff++
		}
		if c.Accessories.Hat || c.Accessories.Headphones {
			withAcc++
		}
		if c.Speed != person.SpeedAverage {
			speedVar++
		}
		if c.ApparelSimilar {
			apparel++
		}
	}
	if len(actions) != 10 {
		t.Fatalf("E1 covers %d actions, want 10", len(actions))
	}
	if lightsOff != 30 || withAcc != 30 || speedVar != 20 || apparel != 30 {
		t.Fatalf("condition counts: lightsOff=%d acc=%d speed=%d apparel=%d",
			lightsOff, withAcc, speedVar, apparel)
	}
}

func TestIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range All(DefaultConfig()) {
		if seen[c.ID] {
			t.Fatalf("duplicate call ID %s", c.ID)
		}
		seen[c.ID] = true
	}
}

func TestRenderDeterministic(t *testing.T) {
	cfg := smallConfig()
	c := E1(cfg)[3]
	a, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Raw.Frames[5].Equal(b.Raw.Frames[5]) {
		t.Fatal("rendering must be deterministic")
	}
}

func TestRenderGeometryAndContents(t *testing.T) {
	cfg := smallConfig()
	c := E2(cfg)[0]
	r, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if r.Raw.Len() != cfg.E2Frames {
		t.Fatalf("frames = %d", r.Raw.Len())
	}
	w, h := r.Raw.Size()
	if w != cfg.W || h != cfg.H {
		t.Fatalf("geometry %dx%d", w, h)
	}
	if len(r.Silhouettes) != r.Raw.Len() {
		t.Fatal("silhouette count mismatch")
	}
	if r.Silhouettes[5].Count() == 0 {
		t.Fatal("caller missing from silhouette")
	}
	if r.TrueBackground == nil || r.Scene == nil {
		t.Fatal("ground truth missing")
	}
}

func TestLightingAffectsRender(t *testing.T) {
	cfg := smallConfig()
	calls := E1(cfg)
	var on, off *Call
	for _, c := range calls {
		if c.Action == person.ActionType && c.Participant == 1 && !c.Accessories.Hat && !c.Accessories.Headphones && !c.ApparelSimilar {
			if c.LightsOn && on == nil {
				on = c
			}
			if !c.LightsOn && off == nil {
				off = c
			}
		}
	}
	if on == nil || off == nil {
		t.Fatal("missing lighting pair")
	}
	ron, err := on.Render()
	if err != nil {
		t.Fatal(err)
	}
	roff, err := off.Render()
	if err != nil {
		t.Fatal(err)
	}
	if roff.TrueBackground.MeanLuminance() >= ron.TrueBackground.MeanLuminance() {
		t.Fatal("lights-off scene must be darker")
	}
}

func TestSceneForMatchesRender(t *testing.T) {
	cfg := smallConfig()
	c := E3(cfg)[2]
	r, err := c.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !c.SceneFor().Base.Equal(r.Scene.Base) {
		t.Fatal("SceneFor must regenerate the rendered scene")
	}
}

func TestFillerScenesDistinct(t *testing.T) {
	cfg := smallConfig()
	fillers := FillerScenes(cfg, 5)
	if len(fillers) != 5 {
		t.Fatal("wrong filler count")
	}
	for i := 0; i < len(fillers); i++ {
		for j := i + 1; j < len(fillers); j++ {
			if fillers[i].Base.Equal(fillers[j].Base) {
				t.Fatalf("fillers %d and %d identical", i, j)
			}
		}
	}
}

func TestRenderInvalidGeometry(t *testing.T) {
	c := &Call{ID: "bad", W: 0, H: 10, Frames: 5}
	if _, err := c.Render(); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestLightFactor(t *testing.T) {
	c := &Call{LightsOn: true}
	if c.Light() != 1.0 {
		t.Fatal("lights on factor wrong")
	}
	c.LightsOn = false
	if c.Light() >= 1.0 {
		t.Fatal("lights off must dim")
	}
}

func TestPhaseStrings(t *testing.T) {
	if PhaseE1.String() != "E1" || PhaseE2.String() != "E2" || PhaseE3.String() != "E3" {
		t.Fatal("phase labels wrong")
	}
	if Phase(9).String() != "phase(9)" {
		t.Fatal("unknown phase label wrong")
	}
}
