package autopilot

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bgbuster/bgbuster/internal/checkpoint"
	"github.com/bgbuster/bgbuster/internal/faultinject"
	"github.com/bgbuster/bgbuster/internal/fleet"
	"github.com/bgbuster/bgbuster/internal/session"
)

// Config configures an autopilot over one coordinator.
type Config struct {
	// Coordinator is the control plane's target (required).
	Coordinator *fleet.Coordinator
	// Rebalance tunes the load-aware planner.
	Rebalance RebalanceConfig
	// PlanEvery is the rebalancing pass cadence (<=0: 15s).
	PlanEvery time.Duration
	// ProbeEvery is the down-shard recovery probe cadence (<=0: 5s).
	ProbeEvery time.Duration
	// ReadmitAfter is the consecutive successful probes a down shard
	// must answer before automatic re-admission (<=0: 3).
	ReadmitAfter int
	// Quarantine is the probation window between Readmit and Promote:
	// the shard serves only new sessions until it has stayed healthy
	// this long (<=0: 60s).
	Quarantine time.Duration
	// ScrubEvery is the checkpoint scrub cadence (<=0: 60s; scrubbing
	// also requires the coordinator's store to be a QuorumStore).
	ScrubEvery time.Duration
	// ProbeTimeout bounds one recovery probe's dial+ping (<=0: 2s).
	ProbeTimeout time.Duration
	// Limits bounds decode budgets on probe connections (zero:
	// defaults).
	Limits fleet.Limits
	// Clock drives every cadence and window (nil: system clock; tests
	// inject a FakeClock and step the policies by hand).
	Clock faultinject.Clock
	// Seed drives loop jitter (deterministic by default).
	Seed int64
	// Elector, when set, ties the autopilot to lease-based election:
	// policy passes run only while the elector leads, and losing the
	// lease self-fences the coordinator.
	Elector *Elector
	// Logf receives policy diagnostics (nil: silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.PlanEvery <= 0 {
		c.PlanEvery = 15 * time.Second
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 5 * time.Second
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 3
	}
	if c.Quarantine <= 0 {
		c.Quarantine = 60 * time.Second
	}
	if c.ScrubEvery <= 0 {
		c.ScrubEvery = 60 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Clock == nil {
		c.Clock = faultinject.SystemClock()
	}
	c.Rebalance = c.Rebalance.withDefaults()
	return c
}

// Autopilot is the fleet's hands-off control plane: a planning loop
// draining hot shards through gated migrations, a recovery loop
// re-admitting probed-healthy shards through probation, and a scrub
// loop restoring checkpoint replication. All three policies are also
// callable as single deterministic steps (PlanOnce, ReadmitOnce,
// ScrubOnce) — the loops add only cadence and jitter.
type Autopilot struct {
	cfg   Config
	coord *fleet.Coordinator
	clock faultinject.Clock

	mu        sync.Mutex
	active    bool                 // hysteresis: planning until below LowWater
	lastMoved map[string]int64     // session id -> UnixNano of its last move
	probeOK   map[string]int       // down shard -> consecutive probe successes
	probStart map[string]time.Time // probation shard -> probation entry time

	passes       atomic.Uint64
	moves        atomic.Uint64
	scrubChecked atomic.Uint64
	scrubRepairs atomic.Uint64
	scrubSwept   atomic.Uint64
	scrubStuck   atomic.Uint64
	imbalance    atomic.Uint64 // math.Float64bits of the last pass's score

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New validates the config, registers the autopilot as the
// coordinator's status provider, and returns it stopped — call Start
// for the background loops, or drive the policies manually.
func New(cfg Config) (*Autopilot, error) {
	if cfg.Coordinator == nil {
		return nil, errors.New("autopilot: Config.Coordinator is required")
	}
	cfg = cfg.withDefaults()
	a := &Autopilot{
		cfg:       cfg,
		coord:     cfg.Coordinator,
		clock:     cfg.Clock,
		lastMoved: map[string]int64{},
		probeOK:   map[string]int{},
		probStart: map[string]time.Time{},
		stop:      make(chan struct{}),
	}
	cfg.Coordinator.SetStatusProvider(a.Status)
	return a, nil
}

func (a *Autopilot) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// leading reports whether policy passes may mutate the fleet: always
// true without an elector, otherwise only while the lease is held.
func (a *Autopilot) leading() bool {
	if a.cfg.Elector == nil {
		return true
	}
	ok, _ := a.cfg.Elector.Leading()
	return ok
}

// PlanOnce runs one rebalancing pass: sample loads, score the
// imbalance, and — when the hysteresis band says so — migrate up to
// MaxMoves cheapest sessions from the hottest shard to the coldest.
// Returns the sessions moved. Per-move failures are joined, not fatal;
// a failed move leaves the session where it was.
func (a *Autopilot) PlanOnce() (moved int, err error) {
	if !a.leading() {
		return 0, ErrNotLeader
	}
	a.passes.Add(1)
	rows := a.coord.Loads()
	probation := map[string]bool{}
	for _, p := range a.coord.Probation() {
		probation[p] = true
	}
	costs := planCosts(rows, probation)
	score := imbalanceOf(costs)
	a.imbalance.Store(math.Float64bits(score))

	a.mu.Lock()
	switch {
	case score > a.cfg.Rebalance.HighWater:
		a.active = true
	case score < a.cfg.Rebalance.LowWater:
		a.active = false
	}
	active := a.active
	now := a.clock.Now().UnixNano()
	cooling := func(id string) bool {
		last, ok := a.lastMoved[id]
		return ok && now-last < a.cfg.Rebalance.Cooldown
	}
	a.mu.Unlock()
	if !active {
		return 0, nil
	}

	plan := planMoves(costs, a.cfg.Rebalance.LowWater, a.cfg.Rebalance.MaxMoves, cooling)
	var errs []error
	for _, m := range plan {
		if err := a.coord.Migrate(m.ID, m.To); err != nil {
			errs = append(errs, fmt.Errorf("rebalance %q -> %s: %w", m.ID, m.To, err))
			continue
		}
		a.mu.Lock()
		a.lastMoved[m.ID] = now
		a.mu.Unlock()
		a.moves.Add(1)
		moved++
		a.logf("autopilot: rebalanced %q %s -> %s (imbalance %.3f)", m.ID, m.From, m.To, score)
	}
	return moved, errors.Join(errs...)
}

// ReadmitOnce runs one recovery step: probe every down shard, count
// consecutive successes, re-admit shards that answered ReadmitAfter
// probes in a row, and promote probation shards whose quarantine
// window has passed. Returns (shards re-admitted, shards promoted).
func (a *Autopilot) ReadmitOnce() (readmitted, promoted int, err error) {
	if !a.leading() {
		return 0, 0, ErrNotLeader
	}
	var errs []error
	downSet := map[string]bool{}
	for _, addr := range a.coord.Down() {
		downSet[addr] = true
		if a.probe(addr) {
			a.mu.Lock()
			a.probeOK[addr]++
			n := a.probeOK[addr]
			a.mu.Unlock()
			if n < a.cfg.ReadmitAfter {
				continue
			}
			if rerr := a.coord.Readmit(addr); rerr != nil {
				errs = append(errs, fmt.Errorf("readmit %s: %w", addr, rerr))
				continue
			}
			a.mu.Lock()
			delete(a.probeOK, addr)
			a.probStart[addr] = a.clock.Now()
			a.mu.Unlock()
			readmitted++
		} else {
			a.mu.Lock()
			a.probeOK[addr] = 0
			a.mu.Unlock()
		}
	}
	a.mu.Lock()
	for addr := range a.probeOK {
		if !downSet[addr] {
			delete(a.probeOK, addr) // no longer down; stale counter
		}
	}
	probation := map[string]bool{}
	for _, p := range a.coord.Probation() {
		probation[p] = true
	}
	var due []string
	for addr, since := range a.probStart {
		if !probation[addr] {
			delete(a.probStart, addr) // died again or promoted elsewhere
			continue
		}
		if a.clock.Now().Sub(since) >= a.cfg.Quarantine {
			due = append(due, addr)
		}
	}
	a.mu.Unlock()
	sort.Strings(due)
	for _, addr := range due {
		if perr := a.coord.Promote(addr); perr != nil {
			errs = append(errs, fmt.Errorf("promote %s: %w", addr, perr))
			continue
		}
		a.mu.Lock()
		delete(a.probStart, addr)
		a.mu.Unlock()
		promoted++
	}
	return readmitted, promoted, errors.Join(errs...)
}

// probe pings addr over a short dedicated connection.
func (a *Autopilot) probe(addr string) bool {
	t := fleet.Timeouts{Dial: a.cfg.ProbeTimeout, Read: a.cfg.ProbeTimeout, Write: a.cfg.ProbeTimeout}
	cl, err := fleet.DialTimeouts(addr, a.cfg.Limits, t)
	if err != nil {
		return false
	}
	defer cl.Close()
	return cl.Ping() == nil
}

// ScrubOnce runs one checkpoint-scrub pass over the coordinator's
// quorum store: verify every chain replica's integrity, sweep records
// for dead sessions (including orphans a partial Delete left behind),
// and re-replicate to restore W-of-N. A coordinator backed by a plain
// store scrubs nothing and returns a zero report.
func (a *Autopilot) ScrubOnce() (session.ScrubReport, error) {
	if !a.leading() {
		return session.ScrubReport{}, ErrNotLeader
	}
	qs, ok := a.coord.Store().(*session.QuorumStore)
	if !ok {
		return session.ScrubReport{}, nil
	}
	live := map[string]bool{fleet.MetaKey: true, LeaseKey: true}
	for _, id := range a.coord.RoutedIDs() {
		live[id] = true
	}
	rep, err := qs.Scrub(session.ScrubConfig{
		Live:   func(id string) bool { return live[id] },
		Verify: verifyRecord,
	})
	a.scrubChecked.Add(uint64(rep.Checked))
	a.scrubRepairs.Add(uint64(rep.Repaired))
	a.scrubSwept.Add(uint64(rep.Swept))
	a.scrubStuck.Add(uint64(rep.Unrepairable))
	if rep.Repaired > 0 || rep.Swept > 0 || rep.Unrepairable > 0 {
		a.logf("autopilot: scrub: %d checked, %d repaired, %d swept, %d corrupt, %d unrepairable",
			rep.Checked, rep.Repaired, rep.Swept, rep.Corrupt, rep.Unrepairable)
	}
	return rep, err
}

// verifyRecord integrity-checks one stored record by its magic: BBFM
// meta blobs and BBLS leases get their CRC-sealed decoders, everything
// else must parse as a .bbck checkpoint.
func verifyRecord(id string, data []byte) error {
	switch {
	case bytes.HasPrefix(data, []byte("BBFM")):
		return fleet.VerifyMeta(data)
	case bytes.HasPrefix(data, []byte("BBLS")):
		_, err := DecodeLease(data)
		return err
	default:
		_, err := checkpoint.Decode(data)
		return err
	}
}

// Status assembles the wire-visible policy state (MsgAutopilotResp).
func (a *Autopilot) Status() fleet.AutopilotInfo {
	readmitted, promoted := a.coord.Readmissions()
	info := fleet.AutopilotInfo{
		Enabled:      true,
		Imbalance:    math.Float64frombits(a.imbalance.Load()),
		Threshold:    a.cfg.Rebalance.HighWater,
		Passes:       a.passes.Load(),
		Moves:        a.moves.Load(),
		Readmitted:   readmitted,
		Promoted:     promoted,
		Probation:    uint32(len(a.coord.Probation())),
		ScrubChecked: a.scrubChecked.Load(),
		ScrubRepairs: a.scrubRepairs.Load(),
		ScrubSwept:   a.scrubSwept.Load(),
		ScrubStuck:   a.scrubStuck.Load(),
	}
	if e := a.cfg.Elector; e != nil {
		held, _ := e.Leading()
		l := e.Lease()
		info.LeaseHeld = held
		info.LeaseHolder = l.Holder
		info.LeaseTerm = l.Term
		info.LeaseEpoch = l.Epoch
		info.LeaseExpires = l.Expires
	}
	return info
}

// Start launches the background loops: planning, recovery probing,
// scrubbing, and (when configured) election. Each loop runs its policy
// step on a ±25%-jittered cadence — fleets of autopilots must not
// synchronize their passes.
func (a *Autopilot) Start() {
	loops := []struct {
		every time.Duration
		step  func()
	}{
		{a.cfg.PlanEvery, func() {
			if _, err := a.PlanOnce(); err != nil && !errors.Is(err, ErrNotLeader) {
				a.logf("autopilot: plan: %v", err)
			}
		}},
		{a.cfg.ProbeEvery, func() {
			if _, _, err := a.ReadmitOnce(); err != nil && !errors.Is(err, ErrNotLeader) {
				a.logf("autopilot: readmit: %v", err)
			}
		}},
		{a.cfg.ScrubEvery, func() {
			if _, err := a.ScrubOnce(); err != nil && !errors.Is(err, ErrNotLeader) {
				a.logf("autopilot: scrub: %v", err)
			}
		}},
	}
	for i, l := range loops {
		a.wg.Add(1)
		go func(every time.Duration, step func(), seed int64) {
			defer a.wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				q := every / 4
				d := every
				if q > 0 {
					d = every - q + time.Duration(rng.Int63n(int64(2*q)+1))
				}
				select {
				case <-a.stop:
					return
				case <-a.clock.After(d):
					step()
				}
			}
		}(l.every, l.step, a.cfg.Seed+int64(i))
	}
	if a.cfg.Elector != nil {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.cfg.Elector.Run(a.stop, a.cfg.Seed+17)
		}()
	}
}

// Close stops the loops and waits them out. The coordinator is left
// running — the autopilot is policy, not mechanism.
func (a *Autopilot) Close() {
	a.stopOnce.Do(func() { close(a.stop) })
	a.wg.Wait()
}
