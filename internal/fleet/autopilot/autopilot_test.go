package autopilot

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/faultinject"
	"github.com/bgbuster/bgbuster/internal/fleet"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/segment"
	"github.com/bgbuster/bgbuster/internal/session"
)

const fw, fh = 48, 36

// testOptions mirrors the fleet test harness: a deterministic
// two-candidate dictionary plus the oracle segmenter, so any two
// sessions fed the same frames produce bit-identical checkpoints.
func testOptions(spec fleet.OpenSpec) core.Options {
	o := core.DefaultOptions()
	o.KnownImages = map[string]*imagex.Image{
		"flat":  imagex.NewFilled(spec.W, spec.H, imagex.RGB{R: 20, G: 120, B: 220}),
		"other": imagex.NewFilled(spec.W, spec.H, imagex.RGB{R: 200, G: 10, B: 10}),
	}
	o.Segmenter = segment.OracleSegmenter{}
	o.ColorRefine = false
	return o
}

// leakFrames builds n frames of pure "flat" VB with a moving leaked
// rectangle, plus empty oracle silhouettes.
func leakFrames(n int) ([]*imagex.Image, []*imagex.Mask) {
	frames := make([]*imagex.Image, n)
	sils := make([]*imagex.Mask, n)
	for i := range frames {
		f := imagex.NewFilled(fw, fh, imagex.RGB{R: 20, G: 120, B: 220})
		x0 := 4 + i%8
		for y := 6; y < 24; y++ {
			for x := x0; x < x0+16; x++ {
				f.Set(x, y, imagex.RGB{R: 240, G: 240, B: 60})
			}
		}
		frames[i] = f
		sils[i] = imagex.NewMask(fw, fh)
	}
	return frames, sils
}

// chaosListener lets a test kill a shard the way a process death
// would: accepting stops and every established connection drops.
type chaosListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *chaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

func (l *chaosListener) Kill() {
	l.Listener.Close()
	l.mu.Lock()
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

type testShard struct {
	addr string
	mgr  *session.Manager
	ln   *chaosListener
	done chan struct{}
}

// bootShard starts a worker shard; addr "" picks a fresh loopback
// port, a concrete addr restarts "the same process" after a kill.
func bootShard(t *testing.T, addr string) *testShard {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cl := &chaosListener{Listener: ln}
	mgr := session.NewManager(session.Config{})
	sh, err := fleet.NewShard(fleet.ShardConfig{Manager: mgr, OptionsFor: testOptions, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := &testShard{addr: ln.Addr().String(), mgr: mgr, ln: cl, done: make(chan struct{})}
	go func() {
		defer close(ts.done)
		sh.Serve(cl)
	}()
	t.Cleanup(func() {
		cl.Kill()
		<-ts.done
		mgr.Close()
	})
	return ts
}

// fastHealth: one strike suspects, two strikes down, millisecond
// backoff — deterministic and quick.
func fastHealth() fleet.HealthConfig {
	return fleet.HealthConfig{SuspectAfter: 1, DownAfter: 2, OpRetries: 1,
		RetryBackoff: time.Millisecond, RetryBackoffCap: 2 * time.Millisecond}
}

func testTimeouts() fleet.Timeouts {
	return fleet.Timeouts{Dial: 5 * time.Second, Read: 5 * time.Second, Write: 5 * time.Second}
}

// --- planner unit tests ----------------------------------------------

func TestPlannerImbalanceAndMoves(t *testing.T) {
	mkRow := func(addr string, weight uint16, sess ...fleet.SessionLoad) fleet.ShardLoad {
		var mem uint64
		for _, s := range sess {
			mem += s.Mem
		}
		return fleet.ShardLoad{Addr: addr, Weight: weight, Mem: mem, Sess: sess}
	}
	rows := []fleet.ShardLoad{
		mkRow("hot:1", 1,
			fleet.SessionLoad{ID: "s-big", Mem: 4000},
			fleet.SessionLoad{ID: "s-mid", Mem: 2000},
			fleet.SessionLoad{ID: "s-small", Mem: 1000}),
		mkRow("cold:1", 1),
		mkRow("probed:1", 1),
		{Addr: "dead:1", Weight: 1, Err: "down"},
	}
	costs := planCosts(rows, map[string]bool{"probed:1": true})
	if len(costs) != 2 {
		t.Fatalf("planCosts kept %d rows, want 2 (probation and failed rows dropped)", len(costs))
	}
	if score := imbalanceOf(costs); score < 1.9 {
		t.Fatalf("imbalance %f, want ~2 for one loaded + one empty shard", score)
	}

	moves := planMoves(costs, 0.25, 8, nil)
	if len(moves) == 0 {
		t.Fatal("no moves planned for a fully skewed fleet")
	}
	// Cheapest-first: the small session moves before the mid one, and
	// nothing lands anywhere but the cold shard.
	if moves[0].ID != "s-small" || moves[0].From != "hot:1" || moves[0].To != "cold:1" {
		t.Fatalf("first move %+v, want s-small hot->cold", moves[0])
	}
	for _, m := range moves {
		if m.To != "cold:1" {
			t.Fatalf("move %+v targets a non-cold shard", m)
		}
		if m.ID == "s-big" {
			t.Fatalf("planner moved the most expensive session: %+v", m)
		}
	}

	// Cooldown: skipping every hot session plans nothing.
	if got := planMoves(planCosts(rows, nil), 0.25, 8, func(string) bool { return true }); len(got) != 0 {
		t.Fatalf("planned %d moves with every session cooling down", len(got))
	}

	// Overshoot guard: one giant session on the hot shard stays put —
	// handing it over would just swap which shard is hot.
	giant := []fleet.ShardLoad{
		mkRow("hot:1", 1, fleet.SessionLoad{ID: "s-giant", Mem: 4000}),
		mkRow("cold:1", 1),
	}
	if got := planMoves(planCosts(giant, nil), 0.25, 8, nil); len(got) != 0 {
		t.Fatalf("planned %d moves that cannot reduce the spread", len(got))
	}

	// Weight awareness: identical raw load is NOT imbalance when the
	// loaded shard advertises proportionally more capacity.
	weighted := []fleet.ShardLoad{
		mkRow("big:1", 4, fleet.SessionLoad{ID: "a", Mem: 4000}),
		mkRow("small:1", 1, fleet.SessionLoad{ID: "b", Mem: 1000}),
	}
	if score := imbalanceOf(planCosts(weighted, nil)); score > 0.01 {
		t.Fatalf("weighted imbalance %f, want ~0", score)
	}
}

// --- graceful stats degradation (satellite 1) ------------------------

// TestLoadsDegradeGracefully: an unreachable shard costs one
// placeholder row with Err set — sampling neither fails the whole call
// nor triggers shard-loss recovery.
func TestLoadsDegradeGracefully(t *testing.T) {
	s0, s1 := bootShard(t, ""), bootShard(t, "")
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Shards:      []string{s0.addr, s1.addr},
		Timeouts:    testTimeouts(),
		Health:      fastHealth(),
		LoadTimeout: 500 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Open(fleet.OpenSpec{ID: "call-a", W: fw, H: fh, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	s1.ln.Kill()

	rows := coord.Loads()
	if len(rows) != 2 {
		t.Fatalf("%d load rows, want one per member", len(rows))
	}
	byAddr := map[string]fleet.ShardLoad{}
	for _, r := range rows {
		byAddr[r.Addr] = r
	}
	if r := byAddr[s1.addr]; r.Err == "" {
		t.Fatalf("killed shard's row %+v carries no error", r)
	}
	if r := byAddr[s0.addr]; r.Err != "" {
		t.Fatalf("live shard's row %+v unexpectedly failed", r)
	}
	// Passive contract: sampling observed the dead shard but must not
	// have marked it down.
	if down := coord.Down(); len(down) != 0 {
		t.Fatalf("load sampling triggered shard loss: %v", down)
	}

	// The same rows over the wire, plus autopilot status (disabled —
	// none registered).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go fleet.Serve(ln, coord, fleet.Limits{}, t.Logf)
	cl, err := fleet.DialTimeouts(ln.Addr().String(), fleet.Limits{}, testTimeouts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	wrows, err := cl.Load()
	if err != nil {
		t.Fatalf("wire load: %v", err)
	}
	if len(wrows) != 2 {
		t.Fatalf("%d wire rows, want 2", len(wrows))
	}
	info, err := cl.AutopilotStatus()
	if err != nil {
		t.Fatalf("wire autopilot status: %v", err)
	}
	if info.Enabled {
		t.Fatal("autopilot reports enabled with none registered")
	}
}

// --- the autopilot soak ----------------------------------------------

// TestAutopilotSoak is the acceptance soak: a skewed 4-shard fleet
// under continuous feeding auto-drains its hot shard below the
// imbalance threshold with zero dropped frames; a killed-then-
// restarted shard is auto re-admitted through probation and promoted
// after quarantine; the scrubber restores W-of-N after a replica wipe;
// and every surviving session's final checkpoint is bit-identical to a
// single-manager baseline.
func TestAutopilotSoak(t *testing.T) {
	const (
		nSessions = 8
		seg1      = 8  // skew + rebalance regime
		seg2      = 16 // kill + readmission regime
		total     = 24
	)
	frames, sils := leakFrames(total)
	s0, s1, s2, s3 := bootShard(t, ""), bootShard(t, ""), bootShard(t, ""), bootShard(t, "")
	stores := []session.CheckpointStore{session.NewMemStore(), session.NewMemStore(), session.NewMemStore()}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Shards:        []string{s0.addr, s1.addr, s2.addr, s3.addr},
		Stores:        stores,
		ReplicaFactor: 2, WriteQuorum: 2,
		Timeouts:    testTimeouts(),
		Health:      fastHealth(),
		LoadTimeout: time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	clk := faultinject.NewFakeClock(time.Unix(1_754_600_000, 0))
	ap, err := New(Config{
		Coordinator:  coord,
		Rebalance:    RebalanceConfig{HighWater: 0.5, MaxMoves: 2},
		ReadmitAfter: 2,
		Quarantine:   time.Minute,
		ProbeTimeout: time.Second,
		Clock:        clk,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: one manager, same frames, no fleet in the way.
	base := session.NewManager(session.Config{})
	defer base.Close()
	bs, err := base.Open("baseline", fw, fh, testOptions(fleet.OpenSpec{W: fw, H: fh}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := bs.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantFinal, err := bs.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	var ids []string
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("soak-%02d", i)
		ids = append(ids, id)
		if err := coord.Open(fleet.OpenSpec{ID: id, W: fw, H: fh, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	feedAll := func(from, to int) {
		t.Helper()
		for _, id := range ids {
			for i := from; i < to; i++ {
				if err := coord.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
					t.Fatalf("feed %s[%d]: %v", id, i, err)
				}
			}
		}
	}

	// Skew: pile every session onto s0, then let the planner drain it.
	for _, id := range ids {
		if err := coord.Migrate(id, s0.addr); err != nil {
			t.Fatal(err)
		}
	}
	feedAll(0, seg1/2)
	converged := false
	for pass := 0; pass < 12; pass++ {
		if _, err := ap.PlanOnce(); err != nil {
			t.Fatalf("plan pass %d: %v", pass, err)
		}
		clk.Advance(2 * time.Minute) // clear per-session cooldowns
		if st := ap.Status(); st.Imbalance <= 0.5 {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("imbalance %f still above threshold after 12 passes", ap.Status().Imbalance)
	}
	if open := s0.mgr.Stats().Open; open == nSessions {
		t.Fatal("hot shard was not drained at all")
	}
	if moves := ap.Status().Moves; moves == 0 {
		t.Fatal("convergence without a single migration")
	}
	feedAll(seg1/2, seg1)

	// Crash s1 and prove recovery, then bring "the process" back on the
	// same address and watch the autopilot re-admit it through
	// probation.
	for _, id := range ids {
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Replicate(); err != nil {
		t.Fatal(err)
	}
	s1.ln.Kill()
	feedAll(seg1, seg2) // rides through shard-loss recovery
	// Feeds may have landed only on survivors; a probe pass guarantees
	// the kill is detected before re-admission is attempted.
	for i := 0; len(coord.Down()) == 0 && i < 50; i++ {
		coord.ProbeOnce()
	}
	if down := coord.Down(); len(down) != 1 || down[0] != s1.addr {
		t.Fatalf("down = %v, want [%s]", down, s1.addr)
	}

	s1b := bootShard(t, s1.addr)
	readmitted := 0
	for i := 0; i < 4 && readmitted == 0; i++ {
		r, _, err := ap.ReadmitOnce()
		if err != nil {
			t.Fatalf("readmit pass %d: %v", i, err)
		}
		readmitted += r
	}
	if readmitted != 1 {
		t.Fatalf("readmitted = %d, want 1", readmitted)
	}
	if prob := coord.Probation(); len(prob) != 1 || prob[0] != s1b.addr {
		t.Fatalf("probation = %v, want [%s]", prob, s1b.addr)
	}
	// Probation shards accept only new sessions — a migration onto one
	// is refused.
	if err := coord.Migrate(ids[0], s1b.addr); err == nil || !strings.Contains(err.Error(), "probation") {
		t.Fatalf("migrate onto probation shard: %v, want probation refusal", err)
	}
	// Quarantine passes cleanly -> promoted to full membership.
	clk.Advance(2 * time.Minute)
	if _, promoted, err := ap.ReadmitOnce(); err != nil || promoted != 1 {
		t.Fatalf("promotion: promoted=%d err=%v", promoted, err)
	}
	if prob := coord.Probation(); len(prob) != 0 {
		t.Fatalf("probation after promote = %v", prob)
	}

	// Replica wipe: empty one backing store, scrub restores W-of-N.
	if err := coord.Replicate(); err != nil {
		t.Fatal(err)
	}
	wiped, err := stores[1].List()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range wiped {
		if err := stores[1].Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := ap.ScrubOnce()
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Repaired == 0 {
		t.Fatalf("scrub repaired nothing after a replica wipe: %+v", rep)
	}
	rep2, err := ap.ScrubOnce()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Repaired != 0 || rep2.Unrepairable != 0 {
		t.Fatalf("second scrub pass not clean: %+v", rep2)
	}

	feedAll(seg2, total)

	// Acceptance: every session's final bytes match the baseline.
	for _, id := range ids {
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
		got, err := coord.Checkpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantFinal) {
			t.Fatalf("session %q final checkpoint diverged from baseline", id)
		}
	}

	st := coord.AutopilotStatus()
	if !st.Enabled || st.Passes == 0 || st.Moves == 0 || st.Readmitted != 1 ||
		st.Promoted != 1 || st.ScrubChecked == 0 || st.ScrubRepairs == 0 {
		t.Fatalf("autopilot status %+v missing policy counters", st)
	}
}

// --- re-admission races (satellite 4) --------------------------------

// TestReadmitMigrationRace kills a shard while a migration targets it,
// then auto re-admits the restarted shard: the migration must not lose
// the session, concurrent re-admissions must collapse to one, and the
// probation gate must refuse migrations onto the shard.
func TestReadmitMigrationRace(t *testing.T) {
	s0, s1 := bootShard(t, ""), bootShard(t, "")
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Shards:   []string{s0.addr, s1.addr},
		Stores:   []session.CheckpointStore{session.NewMemStore(), session.NewMemStore()},
		Timeouts: testTimeouts(),
		Health:   fastHealth(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	frames, sils := leakFrames(4)
	var ids []string
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("race-%02d", i)
		ids = append(ids, id)
		if err := coord.Open(fleet.OpenSpec{ID: id, W: fw, H: fh, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		if err := coord.Migrate(id, s0.addr); err != nil {
			t.Fatal(err)
		}
		if err := coord.Feed(id, core.Frame{Img: frames[0], Oracle: sils[0]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Replicate(); err != nil {
		t.Fatal(err)
	}

	// Kill the target mid-migration: half the migrations race the kill.
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			// Errors are acceptable (the target is dying); losing the
			// session is not.
			_ = coord.Migrate(id, s1.addr)
		}(id)
	}
	s1.ln.Kill()
	wg.Wait()
	// Every session must still answer wherever it landed.
	for _, id := range ids {
		if err := coord.Feed(id, core.Frame{Img: frames[1], Oracle: sils[1]}); err != nil {
			t.Fatalf("session %q lost after racing kill: %v", id, err)
		}
	}

	// The racing migrations may all have failed at dial without the
	// health machine noticing; a probe pass pins the loss down.
	for i := 0; len(coord.Down()) == 0 && i < 50; i++ {
		coord.ProbeOnce()
	}
	if down := coord.Down(); len(down) != 1 || down[0] != s1.addr {
		t.Fatalf("down = %v, want [%s]", down, s1.addr)
	}

	// Restart the shard and re-admit it concurrently from two racers:
	// exactly one Readmit wins.
	s1b := bootShard(t, s1.addr)
	var ok, failed int
	var mu sync.Mutex
	wg = sync.WaitGroup{}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := coord.Readmit(s1b.addr)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				ok++
			} else {
				failed++
			}
		}()
	}
	wg.Wait()
	if ok != 1 || failed != 1 {
		t.Fatalf("concurrent readmits: %d succeeded, %d refused; want exactly one winner", ok, failed)
	}
	if err := coord.Migrate(ids[0], s1b.addr); err == nil || !strings.Contains(err.Error(), "probation") {
		t.Fatalf("migrate onto probation shard: %v, want probation refusal", err)
	}
	if err := coord.Promote(s1b.addr); err != nil {
		t.Fatalf("promote: %v", err)
	}
	// Fully back: migrations onto it work again and the session lives.
	if err := coord.Migrate(ids[0], s1b.addr); err != nil {
		t.Fatalf("migrate after promote: %v", err)
	}
	if err := coord.Feed(ids[0], core.Frame{Img: frames[2], Oracle: sils[2]}); err != nil {
		t.Fatal(err)
	}
}

// TestDeposedCoordinatorFenced: a coordinator that loses the lease is
// refused everywhere — locally the moment the elector self-fences it,
// and at the shards (CodeFenced) even if it never noticed losing the
// lease.
func TestDeposedCoordinatorFenced(t *testing.T) {
	s0, s1 := bootShard(t, ""), bootShard(t, "")
	stores := []session.CheckpointStore{session.NewMemStore(), session.NewMemStore()}
	qs, err := session.NewQuorumStore(stores, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	clk := faultinject.NewFakeClock(time.Unix(1_754_600_000, 0))

	c1, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Shards:   []string{s0.addr, s1.addr},
		Store:    qs,
		Timeouts: testTimeouts(),
		Health:   fastHealth(),
		Epoch:    1,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	e1 := newTestElector(t, qs, clk, "coord-1", nil, c1.Depose)
	if err := e1.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Open(fleet.OpenSpec{ID: "call-a", W: fw, H: fh, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	// The lease expires while c1 stalls; a successor claims it and
	// takes over the fleet — fencing every shard at the lease epoch.
	clk.Advance(11 * time.Second)
	var c2 *fleet.Coordinator
	e2 := newTestElector(t, qs, clk, "coord-2", func(term, epoch uint64) {
		var terr error
		c2, terr = fleet.TakeOver(fleet.CoordinatorConfig{
			Store:    qs,
			Timeouts: testTimeouts(),
			Health:   fastHealth(),
			Epoch:    epoch,
			Logf:     t.Logf,
		})
		if terr != nil {
			t.Errorf("takeover: %v", terr)
		}
	}, nil)
	if err := e2.Tick(); err != nil {
		t.Fatal(err)
	}
	if c2 == nil {
		t.Fatal("successor never took over")
	}
	defer c2.Close()

	// Shard-side fencing: c1 has NOT ticked yet — it still believes it
	// leads — but its mutations die at the shards with CodeFenced.
	err = c1.Migrate("call-a", s1.addr)
	if err == nil {
		// The session may already live on s1; force a mutation through
		// the other shard instead.
		err = c1.Migrate("call-a", s0.addr)
	}
	if !errors.Is(err, fleet.ErrDeposed) {
		t.Fatalf("stale coordinator mutation: %v, want ErrDeposed via shard fencing", err)
	}

	// Lease-side fencing: c1's next tick notices and self-fences; Join
	// is refused before any wire traffic.
	if err := e1.Tick(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := e1.Leading(); ok {
		t.Fatal("e1 still believes it leads")
	}
	if err := c1.Join("127.0.0.1:1"); !errors.Is(err, fleet.ErrDeposed) {
		t.Fatalf("deposed coordinator Join: %v, want ErrDeposed", err)
	}
	// The successor works.
	if err := c2.Feed("call-a", core.Frame{Img: imagex.NewFilled(fw, fh, imagex.RGB{R: 20, G: 120, B: 220}), Oracle: imagex.NewMask(fw, fh)}); err != nil {
		t.Fatalf("successor feed: %v", err)
	}
}
