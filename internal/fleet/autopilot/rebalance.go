package autopilot

import (
	"sort"

	"github.com/bgbuster/bgbuster/internal/fleet"
)

// RebalanceConfig tunes the load-aware planner.
type RebalanceConfig struct {
	// HighWater is the imbalance score — (max − min) / mean of
	// per-shard weighted cost — above which a pass plans moves
	// (<=0: 0.25).
	HighWater float64
	// LowWater is the hysteresis floor: once triggered, planning
	// continues on subsequent passes until the score drops below it,
	// so the fleet converges instead of oscillating around HighWater
	// (<=0: HighWater/2).
	LowWater float64
	// MaxMoves bounds migrations per planning pass — rebalancing is
	// rate-limited background work, not a stampede (<=0: 2).
	MaxMoves int
	// Cooldown is the minimum interval before the planner may move the
	// same session again (<=0: 1m).
	Cooldown int64 // nanoseconds; a plain int64 so the zero value reads as "default"
}

func (r RebalanceConfig) withDefaults() RebalanceConfig {
	if r.HighWater <= 0 {
		r.HighWater = 0.25
	}
	if r.LowWater <= 0 || r.LowWater > r.HighWater {
		r.LowWater = r.HighWater / 2
	}
	if r.MaxMoves <= 0 {
		r.MaxMoves = 2
	}
	if r.Cooldown <= 0 {
		r.Cooldown = int64(60e9)
	}
	return r
}

// shardCost is one live shard's weighted planning cost.
type shardCost struct {
	addr   string
	weight float64
	cost   float64 // raw load / weight
	sess   []fleet.SessionLoad
}

// rawLoad scores one shard's absolute load: its summed session memory
// footprint, with one byte-equivalent per session so empty-memory
// fleets still rank by session count.
func rawLoad(row fleet.ShardLoad) float64 {
	return float64(row.Mem) + float64(len(row.Sess))
}

// imbalanceOf computes (max − min) / mean over per-shard weighted
// costs; 0 when fewer than two live shards report.
func imbalanceOf(costs []shardCost) float64 {
	if len(costs) < 2 {
		return 0
	}
	min, max, sum := costs[0].cost, costs[0].cost, 0.0
	for _, c := range costs {
		if c.cost < min {
			min = c.cost
		}
		if c.cost > max {
			max = c.cost
		}
		sum += c.cost
	}
	mean := sum / float64(len(costs))
	if mean == 0 {
		return 0
	}
	return (max - min) / mean
}

// planCosts projects load rows onto planning costs, dropping rows the
// planner cannot act on: failed samples (Err set — the load is
// unknown, not zero) and probation shards (Migrate refuses them as
// targets, and draining a shard that holds nothing is moot).
func planCosts(rows []fleet.ShardLoad, probation map[string]bool) []shardCost {
	var costs []shardCost
	for _, row := range rows {
		if row.Err != "" || probation[row.Addr] {
			continue
		}
		w := float64(row.Weight)
		if w <= 0 {
			w = 1
		}
		costs = append(costs, shardCost{addr: row.Addr, weight: w, cost: rawLoad(row) / w, sess: row.Sess})
	}
	return costs
}

// planMoves picks up to maxMoves cheapest-session migrations from the
// hottest shard to the coldest, re-simulating costs after each pick and
// stopping early once the simulated score falls below lowWater. Moving
// the cheapest session first is deliberate: many small corrections
// converge smoothly where one big transfer overshoots and oscillates.
type plannedMove struct {
	ID   string
	From string
	To   string
}

func planMoves(costs []shardCost, lowWater float64, maxMoves int, skip func(id string) bool) []plannedMove {
	var moves []plannedMove
	for len(moves) < maxMoves {
		if imbalanceOf(costs) <= lowWater {
			return moves
		}
		hot, cold := -1, -1
		for i := range costs {
			if hot < 0 || costs[i].cost > costs[hot].cost {
				hot = i
			}
			if cold < 0 || costs[i].cost < costs[cold].cost {
				cold = i
			}
		}
		if hot < 0 || hot == cold || len(costs[hot].sess) == 0 {
			return moves
		}
		// Cheapest movable session on the hot shard; ties break on id so
		// the plan is deterministic for a given load sample.
		sess := append([]fleet.SessionLoad(nil), costs[hot].sess...)
		sort.Slice(sess, func(i, j int) bool {
			if sess[i].Mem != sess[j].Mem {
				return sess[i].Mem < sess[j].Mem
			}
			return sess[i].ID < sess[j].ID
		})
		picked := -1
		for i, s := range sess {
			if skip == nil || !skip(s.ID) {
				picked = i
				break
			}
		}
		if picked < 0 {
			return moves // every hot session is cooling down
		}
		s := sess[picked]
		delta := float64(s.Mem) + 1
		// Refuse moves that would overshoot: if handing this session over
		// leaves the target hotter than the source ends up, the move
		// cannot reduce the spread.
		if costs[cold].cost+delta/costs[cold].weight >= costs[hot].cost {
			return moves
		}
		moves = append(moves, plannedMove{ID: s.ID, From: costs[hot].addr, To: costs[cold].addr})
		costs[hot].cost -= delta / costs[hot].weight
		costs[cold].cost += delta / costs[cold].weight
		kept := costs[hot].sess[:0]
		for _, ss := range costs[hot].sess {
			if ss.ID != s.ID {
				kept = append(kept, ss)
			}
		}
		costs[hot].sess = kept
		costs[cold].sess = append(costs[cold].sess, s)
	}
	return moves
}
