// Package autopilot turns the fleet's mechanisms — gated migration,
// probation re-admission, quorum-replicated checkpoints, fencing
// epochs — into hands-off policy: a load-aware rebalancer, automatic
// shard re-admission, lease-based coordinator election, and a
// checkpoint scrubber (DESIGN.md §18).
package autopilot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"sync"
	"time"

	"github.com/bgbuster/bgbuster/internal/faultinject"
	"github.com/bgbuster/bgbuster/internal/session"
)

// LeaseKey is the reserved checkpoint-store id under which candidates
// contend for the coordinator lease. Session ids may not use it.
const LeaseKey = "__fleet_lease__"

// ErrNotLeader is returned by operations that require holding the
// coordinator lease.
var ErrNotLeader = errors.New("autopilot: not the lease holder")

var leaseMagic = [4]byte{'B', 'B', 'L', 'S'}

const (
	leaseVersion    = 1
	leaseMaxHolder  = 256
	leaseEncodedMin = 4 + 2 + 2 + 8 + 8 + 8 + 4 // magic ver hdr(len) term epoch expires crc
)

// Lease is the decoded BBLS record: who coordinates the fleet, under
// which election term and fencing epoch, and until when. Expiry is
// wall-clock (UnixNano) — candidates share the store, not a clock, so
// TTLs should dwarf plausible skew.
type Lease struct {
	Holder  string
	Term    uint64
	Epoch   uint64
	Expires int64 // UnixNano
}

// encodeLease serialises a lease: magic, u16 version, length-prefixed
// holder, u64 term, u64 epoch, i64 expiry, sealed with CRC32-IEEE.
func encodeLease(l Lease) ([]byte, error) {
	if len(l.Holder) == 0 || len(l.Holder) > leaseMaxHolder {
		return nil, fmt.Errorf("autopilot: lease holder of %d bytes", len(l.Holder))
	}
	b := append([]byte(nil), leaseMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, leaseVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(l.Holder)))
	b = append(b, l.Holder...)
	b = binary.LittleEndian.AppendUint64(b, l.Term)
	b = binary.LittleEndian.AppendUint64(b, l.Epoch)
	b = binary.LittleEndian.AppendUint64(b, uint64(l.Expires))
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// DecodeLease parses and CRC-verifies a BBLS record — also the
// scrubber's integrity hook for the reserved lease id.
func DecodeLease(b []byte) (Lease, error) {
	var l Lease
	if len(b) < leaseEncodedMin {
		return l, fmt.Errorf("autopilot: lease record of %d bytes too short", len(b))
	}
	if string(b[:4]) != string(leaseMagic[:]) {
		return l, fmt.Errorf("autopilot: bad lease magic %q", b[:4])
	}
	body, crc := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != crc {
		return l, fmt.Errorf("autopilot: lease CRC mismatch (stored %08x, computed %08x)", crc, got)
	}
	if ver := binary.LittleEndian.Uint16(body[4:6]); ver != leaseVersion {
		return l, fmt.Errorf("autopilot: lease version %d", ver)
	}
	n := int(binary.LittleEndian.Uint16(body[6:8]))
	if n == 0 || n > leaseMaxHolder || 8+n+24 != len(body) {
		return l, fmt.Errorf("autopilot: lease holder length %d inconsistent with %d-byte record", n, len(b))
	}
	l.Holder = string(body[8 : 8+n])
	l.Term = binary.LittleEndian.Uint64(body[8+n:])
	l.Epoch = binary.LittleEndian.Uint64(body[8+n+8:])
	l.Expires = int64(binary.LittleEndian.Uint64(body[8+n+16:]))
	return l, nil
}

// ElectorConfig configures one coordinator candidate.
type ElectorConfig struct {
	// Store is the (ideally quorum-replicated) checkpoint store the
	// lease record lives in, beside the BBFM meta blob (required).
	Store session.CheckpointStore
	// ID names this candidate in the lease record (required, unique
	// per candidate).
	ID string
	// TTL is the lease duration; a leader renews each Tick, and a
	// lease not renewed within TTL is up for grabs (<=0: 15s).
	TTL time.Duration
	// Settle is the read-back delay after writing a claim: contenders
	// that wrote concurrently re-read after Settle and all but the
	// last writer back off (0: 100ms; negative: no wait — tests that
	// sequence Ticks by hand need a synchronous claim).
	Settle time.Duration
	// Clock drives expiry and the settle wait (nil: system clock).
	Clock faultinject.Clock
	// OnElected fires after this candidate wins the lease, with the
	// won term and the fencing epoch the new coordinator must use.
	OnElected func(term, epoch uint64)
	// OnDeposed fires when a held lease is observed under another
	// holder (or a higher term) — the callback must self-fence its
	// coordinator (Coordinator.Depose) and stop mutating the fleet.
	OnDeposed func()
	// Logf receives election diagnostics (nil: silent).
	Logf func(format string, args ...any)
}

// Elector runs lease-based coordinator election through the shared
// checkpoint store: candidates claim the CRC-sealed BBLS record with a
// bumped term and fencing epoch, re-read after a settle delay, and the
// surviving writer leads until it fails to renew. The store is the
// ballot box, shard fencing is the final arbiter — a deposed leader
// whose clock lied still dies at the shards with CodeFenced.
type Elector struct {
	cfg   ElectorConfig
	clock faultinject.Clock

	mu      sync.Mutex
	leading bool
	term    uint64
	epoch   uint64
}

// NewElector validates the config and returns a candidate.
func NewElector(cfg ElectorConfig) (*Elector, error) {
	if cfg.Store == nil {
		return nil, errors.New("autopilot: ElectorConfig.Store is required")
	}
	if cfg.ID == "" {
		return nil, errors.New("autopilot: ElectorConfig.ID is required")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 15 * time.Second
	}
	if cfg.Settle == 0 {
		cfg.Settle = 100 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = faultinject.SystemClock()
	}
	return &Elector{cfg: cfg, clock: cfg.Clock}, nil
}

func (e *Elector) logf(format string, args ...any) {
	if e.cfg.Logf != nil {
		e.cfg.Logf(format, args...)
	}
}

// Leading reports whether this candidate currently holds the lease,
// and under which term.
func (e *Elector) Leading() (bool, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.leading, e.term
}

// Lease returns the current lease record as stored (zero Lease when
// missing or corrupt).
func (e *Elector) Lease() Lease {
	b, err := e.cfg.Store.Load(LeaseKey)
	if err != nil {
		return Lease{}
	}
	l, err := DecodeLease(b)
	if err != nil {
		return Lease{}
	}
	return l
}

// Tick advances the election one step: a leader renews (or notices it
// was deposed), a follower checks for an expired or vacant lease and
// contends for it. Tests call Tick directly under a FakeClock; Run
// drives it on a jittered cadence.
func (e *Elector) Tick() error {
	e.mu.Lock()
	leading, term := e.leading, e.term
	e.mu.Unlock()
	if leading {
		return e.renew(term)
	}
	return e.contend()
}

// renew extends a held lease, or concedes if another holder took it.
func (e *Elector) renew(term uint64) error {
	cur, err := e.readLease()
	if err == nil && cur.Holder == e.cfg.ID && cur.Term == term {
		cur.Expires = e.clock.Now().Add(e.cfg.TTL).UnixNano()
		b, eerr := encodeLease(cur)
		if eerr == nil {
			eerr = e.cfg.Store.Save(LeaseKey, b)
		}
		if eerr != nil {
			return fmt.Errorf("autopilot: renew lease: %w", eerr)
		}
		return nil
	}
	// The record is gone, corrupt, or someone else's: we are deposed.
	e.mu.Lock()
	e.leading = false
	e.mu.Unlock()
	if cur.Holder != "" {
		e.logf("autopilot: %s deposed: lease held by %s (term %d)", e.cfg.ID, cur.Holder, cur.Term)
	} else {
		e.logf("autopilot: %s deposed: lease unreadable (%v)", e.cfg.ID, err)
	}
	if e.cfg.OnDeposed != nil {
		e.cfg.OnDeposed()
	}
	return nil
}

// contend claims a vacant or expired lease: write our record with a
// bumped term and epoch, wait Settle, and re-read — last writer wins,
// everyone else sees the winner and backs off.
func (e *Elector) contend() error {
	cur, err := e.readLease()
	now := e.clock.Now()
	if err == nil && cur.Holder != "" && cur.Expires > now.UnixNano() && cur.Holder != e.cfg.ID {
		return nil // a live leader exists; follow
	}
	claim := Lease{
		Holder:  e.cfg.ID,
		Term:    cur.Term + 1,
		Epoch:   cur.Epoch + 1,
		Expires: now.Add(e.cfg.TTL).UnixNano(),
	}
	b, err := encodeLease(claim)
	if err == nil {
		err = e.cfg.Store.Save(LeaseKey, b)
	}
	if err != nil {
		return fmt.Errorf("autopilot: claim lease: %w", err)
	}
	if e.cfg.Settle > 0 {
		<-e.clock.After(e.cfg.Settle)
	}
	got, err := e.readLease()
	if err != nil || got.Holder != e.cfg.ID || got.Term != claim.Term {
		e.logf("autopilot: %s lost the settle race to %s (term %d)", e.cfg.ID, got.Holder, got.Term)
		return nil
	}
	e.mu.Lock()
	e.leading = true
	e.term = claim.Term
	e.epoch = claim.Epoch
	e.mu.Unlock()
	e.logf("autopilot: %s elected coordinator (term %d, epoch %d)", e.cfg.ID, claim.Term, claim.Epoch)
	if e.cfg.OnElected != nil {
		e.cfg.OnElected(claim.Term, claim.Epoch)
	}
	return nil
}

// readLease loads and decodes the stored record. A missing record is
// (Lease{}, nil) — vacancy, not failure; a corrupt record is an error
// the contender treats as vacancy (the scrubber repairs or sweeps it).
func (e *Elector) readLease() (Lease, error) {
	b, err := e.cfg.Store.Load(LeaseKey)
	if err != nil {
		return Lease{}, nil
	}
	return DecodeLease(b)
}

// Resign voluntarily releases a held lease (clean shutdown): the
// record's expiry is zeroed so the next candidate claims it without
// waiting out the TTL. No-op for non-leaders.
func (e *Elector) Resign() error {
	e.mu.Lock()
	if !e.leading {
		e.mu.Unlock()
		return nil
	}
	term := e.term
	e.leading = false
	e.mu.Unlock()
	cur, err := e.readLease()
	if err != nil || cur.Holder != e.cfg.ID || cur.Term != term {
		return nil // already taken over; nothing to release
	}
	cur.Expires = 0
	b, err := encodeLease(cur)
	if err == nil {
		err = e.cfg.Store.Save(LeaseKey, b)
	}
	return err
}

// Run drives Tick on a jittered cadence (half the TTL ±25%) until stop
// is closed. Per-candidate jitter keeps contenders from writing their
// claims in lockstep every cycle.
func (e *Elector) Run(stop <-chan struct{}, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	base := e.cfg.TTL / 2
	for {
		q := base / 4
		d := base
		if q > 0 {
			d = base - q + time.Duration(rng.Int63n(int64(2*q)+1))
		}
		select {
		case <-stop:
			return
		case <-e.clock.After(d):
			if err := e.Tick(); err != nil {
				e.logf("autopilot: election tick: %v", err)
			}
		}
	}
}
