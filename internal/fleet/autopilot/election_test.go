package autopilot

import (
	"testing"
	"time"

	"github.com/bgbuster/bgbuster/internal/faultinject"
	"github.com/bgbuster/bgbuster/internal/session"
)

func TestLeaseCodecRoundTrip(t *testing.T) {
	l := Lease{Holder: "coord-a", Term: 7, Epoch: 12, Expires: 1754600000000000000}
	b, err := encodeLease(l)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeLease(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != l {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, l)
	}
	// A flipped byte anywhere must fail the CRC (or a structural check).
	for off := range b {
		bad := append([]byte(nil), b...)
		bad[off] ^= 0x40
		if _, err := DecodeLease(bad); err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
	}
	// Truncations are rejected, never panic.
	for n := 0; n < len(b); n++ {
		if _, err := DecodeLease(b[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := encodeLease(Lease{}); err == nil {
		t.Fatal("empty holder accepted")
	}
}

// newTestElector builds a candidate on a shared store and fake clock
// with the synchronous (settle-free) claim path.
func newTestElector(t *testing.T, store session.CheckpointStore, clk faultinject.Clock, id string,
	onElected func(term, epoch uint64), onDeposed func()) *Elector {
	t.Helper()
	e, err := NewElector(ElectorConfig{
		Store: store, ID: id, TTL: 10 * time.Second, Settle: -1,
		Clock: clk, OnElected: onElected, OnDeposed: onDeposed, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// countLeaders ticks nothing; it just counts candidates reporting
// leadership.
func countLeaders(es ...*Elector) int {
	n := 0
	for _, e := range es {
		if ok, _ := e.Leading(); ok {
			n++
		}
	}
	return n
}

// TestElectionConvergesAcrossDepositions is the acceptance property:
// three candidates over one quorum store converge to exactly one
// leader, and across two forced depositions (lease expiry while the
// holder stalls) leadership moves with a strictly increasing term and
// epoch, the deposed holders noticing on their next tick.
func TestElectionConvergesAcrossDepositions(t *testing.T) {
	stores := []session.CheckpointStore{session.NewMemStore(), session.NewMemStore(), session.NewMemStore()}
	qs, err := session.NewQuorumStore(stores, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	clk := faultinject.NewFakeClock(time.Unix(1_754_600_000, 0))
	var elected, deposed []string
	mk := func(id string) *Elector {
		return newTestElector(t, qs, clk, id,
			func(term, epoch uint64) { elected = append(elected, id) },
			func() { deposed = append(deposed, id) })
	}
	a, b, c := mk("coord-a"), mk("coord-b"), mk("coord-c")

	// Round 1: a claims the vacant lease; b and c follow.
	for _, e := range []*Elector{a, b, c} {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if n := countLeaders(a, b, c); n != 1 {
		t.Fatalf("after round 1: %d leaders", n)
	}
	if ok, term := a.Leading(); !ok || term != 1 {
		t.Fatalf("a leading=%v term=%d, want leader at term 1", ok, term)
	}

	// Renewals hold the lease: advance within the TTL, everyone ticks,
	// nothing changes hands.
	clk.Advance(5 * time.Second)
	for _, e := range []*Elector{a, b, c} {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if ok, _ := a.Leading(); !ok {
		t.Fatal("a lost the lease despite renewing within the TTL")
	}

	// Forced deposition 1: a stalls past the TTL; b claims the expired
	// lease. a's next tick must notice and concede.
	clk.Advance(11 * time.Second)
	if err := b.Tick(); err != nil {
		t.Fatal(err)
	}
	if ok, term := b.Leading(); !ok || term != 2 {
		t.Fatalf("b leading=%v term=%d, want leader at term 2", ok, term)
	}
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	if n := countLeaders(a, b, c); n != 1 {
		t.Fatalf("after deposition 1: %d leaders", n)
	}

	// Forced deposition 2: b stalls; c takes over at term 3.
	clk.Advance(11 * time.Second)
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := b.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if n := countLeaders(a, b, c); n != 1 {
		t.Fatalf("after deposition 2: %d leaders", n)
	}
	if ok, term := c.Leading(); !ok || term != 3 {
		t.Fatalf("c leading=%v term=%d, want leader at term 3", ok, term)
	}
	lease := c.Lease()
	if lease.Holder != "coord-c" || lease.Epoch != 3 {
		t.Fatalf("final lease %+v, want coord-c at epoch 3", lease)
	}

	wantElected := []string{"coord-a", "coord-b", "coord-c"}
	wantDeposed := []string{"coord-a", "coord-b"}
	if len(elected) != 3 || len(deposed) != 2 {
		t.Fatalf("elected=%v deposed=%v, want %v / %v", elected, deposed, wantElected, wantDeposed)
	}
	for i := range wantElected {
		if elected[i] != wantElected[i] {
			t.Fatalf("elected=%v, want %v", elected, wantElected)
		}
	}
	for i := range wantDeposed {
		if deposed[i] != wantDeposed[i] {
			t.Fatalf("deposed=%v, want %v", deposed, wantDeposed)
		}
	}
}

// TestElectionSettleRace: two candidates claim a vacant lease in the
// same contention window; the settle re-read makes all but the last
// writer back off, so exactly one leads.
func TestElectionSettleRace(t *testing.T) {
	store := session.NewMemStore()
	clk := faultinject.NewFakeClock(time.Unix(1_754_600_000, 0))
	mk := func(id string) *Elector {
		e, err := NewElector(ElectorConfig{
			Store: store, ID: id, TTL: 10 * time.Second,
			Settle: 50 * time.Millisecond, Clock: clk, Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	a, b := mk("coord-a"), mk("coord-b")

	// Both write their claims, then both sit in the settle wait; the
	// clock advance releases them together and the re-read picks the
	// last writer.
	done := make(chan error, 2)
	go func() { done <- a.Tick() }()
	go func() { done <- b.Tick() }()
	finished := 0
	for finished < 2 {
		select {
		case err := <-done:
			if err != nil {
				t.Error(err)
			}
			finished++
		default:
			clk.Advance(25 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}
	if n := countLeaders(a, b); n != 1 {
		t.Fatalf("settle race produced %d leaders", n)
	}
}

// TestElectionResign: a clean resignation zeroes the expiry so the
// next candidate claims the lease without waiting out the TTL.
func TestElectionResign(t *testing.T) {
	store := session.NewMemStore()
	clk := faultinject.NewFakeClock(time.Unix(1_754_600_000, 0))
	a := newTestElector(t, store, clk, "coord-a", nil, nil)
	b := newTestElector(t, store, clk, "coord-b", nil, nil)
	if err := a.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := a.Resign(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.Leading(); ok {
		t.Fatal("a still leads after resigning")
	}
	// No clock advance: b claims immediately.
	if err := b.Tick(); err != nil {
		t.Fatal(err)
	}
	if ok, term := b.Leading(); !ok || term != 2 {
		t.Fatalf("b leading=%v term=%d after resignation", ok, term)
	}
}
