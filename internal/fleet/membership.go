package fleet

import (
	"errors"
	"fmt"
	"sort"
)

// Dynamic ring membership (DESIGN.md §17). Join and DrainShard resize
// the live ring with a two-phase route flip:
//
//  1. Pin: under the lock, every session whose arc moves gets a route
//     override to its CURRENT shard, then the ring is swapped. From
//     this instant new placements use the new ring, but every live
//     session still routes exactly where it lives — no frame is
//     double-fed or dropped while the ring and reality disagree.
//  2. Migrate: each pinned session is handed over with the checkpoint
//     migration primitive (detach -> resume -> flip) behind a per-id
//     gate that concurrent requests wait on.
//
// Only sessions whose arcs actually move migrate — the consistent-hash
// minimal-movement property, verified by TestRingJoinMovesMinimally.

// Join adds the shard at addr to the live ring (or re-admits one that
// was down), migrating exactly the sessions whose arcs move onto it.
// Per-session migration failures are joined, not fatal: a session that
// fails to move stays pinned where it was and stays served.
func (c *Coordinator) Join(addr string) error {
	if c.deposed.Load() {
		return ErrDeposed
	}
	if addr == "" {
		return errors.New("fleet: join: empty shard address")
	}
	c.mu.Lock()
	for _, a := range c.members {
		if a == addr && !c.down[a] {
			c.mu.Unlock()
			return fmt.Errorf("fleet: join: %s is already a live member", addr)
		}
	}
	newMembers := make([]string, 0, len(c.members)+1)
	for _, a := range c.members {
		if a != addr {
			newMembers = append(newMembers, a)
		}
	}
	newMembers = append(newMembers, addr)
	newRing := c.ringLocked(newMembers)
	delete(c.down, addr)
	c.health[addr] = &shardHealth{}
	skip := func(a string) bool { return c.down[a] || c.draining[a] }
	// Phase 1: pin every session whose arc moves to where it lives now.
	moving := map[string]string{}
	for id := range c.specs {
		if _, pinned := c.routes[id]; pinned {
			continue // already pinned by migration/recovery; arcs don't apply
		}
		old := c.ring.LookupSkip(id, skip)
		next := newRing.LookupSkip(id, skip)
		if old != "" && next != old {
			c.routes[id] = old
			moving[id] = next
		}
	}
	c.ring = newRing
	c.members = newMembers
	c.mu.Unlock()
	c.joins.Add(1)
	c.logf("fleet: shard %s joined; %d session(s) rebalancing", addr, len(moving))

	// Phase 2: hand each moving session over behind its gate.
	ids := make([]string, 0, len(moving))
	for id := range moving {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var errs []error
	for _, id := range ids {
		if err := c.migrateSession(id, moving[id]); err != nil {
			errs = append(errs, fmt.Errorf("rebalance %q: %w", id, err))
		}
	}
	c.saveMeta()
	return errors.Join(errs...)
}

// DrainShard migrates every session off the shard at addr and removes
// it from the ring — the graceful exit (shard decommission, rolling
// restart). The shard itself keeps running; it just stops owning
// sessions. Draining a shard already marked down only removes it from
// membership (its sessions were recovered when it went down).
func (c *Coordinator) DrainShard(addr string) error {
	if c.deposed.Load() {
		return ErrDeposed
	}
	c.mu.Lock()
	member := false
	for _, a := range c.members {
		member = member || a == addr
	}
	if !member {
		c.mu.Unlock()
		return fmt.Errorf("fleet: drain: %s is not a fleet member", addr)
	}
	live := 0
	for _, a := range c.members {
		if !c.down[a] && a != addr {
			live++
		}
	}
	if live == 0 && !c.down[addr] {
		c.mu.Unlock()
		return fmt.Errorf("fleet: drain: %s is the last live shard", addr)
	}
	wasDown := c.down[addr]
	// Phase 1: pin every session living on the leaving shard there,
	// then shrink the ring. The pin must happen BEFORE the draining
	// flag flips routeLocked away from addr. Down shards hold no
	// sessions — skip the pin.
	var moving []string
	if !wasDown {
		for id := range c.specs {
			if c.routeLocked(id) == addr {
				c.routes[id] = addr
				moving = append(moving, id)
			}
		}
	}
	c.draining[addr] = true
	newMembers := make([]string, 0, len(c.members)-1)
	for _, a := range c.members {
		if a != addr {
			newMembers = append(newMembers, a)
		}
	}
	c.ring = c.ringLocked(newMembers)
	c.members = newMembers
	c.mu.Unlock()
	sort.Strings(moving)
	c.logf("fleet: draining shard %s; %d session(s) to move", addr, len(moving))

	// Phase 2: hand each session over; its target is wherever the
	// shrunken ring puts it.
	var errs []error
	for _, id := range moving {
		c.mu.Lock()
		target := c.ring.LookupSkip(id, func(a string) bool { return c.down[a] || c.draining[a] })
		c.mu.Unlock()
		if target == "" {
			errs = append(errs, fmt.Errorf("drain %q: %w", id, ErrNoShards))
			continue
		}
		if err := c.migrateSession(id, target); err != nil {
			errs = append(errs, fmt.Errorf("drain %q: %w", id, err))
		}
	}

	c.mu.Lock()
	delete(c.draining, addr)
	delete(c.down, addr)
	delete(c.health, addr)
	c.dropClientLocked(addr)
	c.mu.Unlock()
	c.drained.Add(1)
	c.saveMeta()
	return errors.Join(errs...)
}

// Rebalances returns (shards joined, shards drained) since start.
func (c *Coordinator) Rebalances() (joined, drained uint64) {
	return c.joins.Load(), c.drained.Load()
}

// SetWeight changes the capacity weight of a member shard (weighted
// vnodes: weight 2 owns roughly twice the arc of weight 1). The ring
// is rebuilt with the same two-phase flip Join uses — sessions whose
// arcs move are pinned where they live, then migrated behind their
// gates — so a weight change is as lossless as a membership change.
func (c *Coordinator) SetWeight(addr string, weight int) error {
	if c.deposed.Load() {
		return ErrDeposed
	}
	weight = clampWeight(weight)
	c.mu.Lock()
	member := false
	for _, a := range c.members {
		member = member || a == addr
	}
	if !member {
		c.mu.Unlock()
		return fmt.Errorf("fleet: set-weight: %s is not a fleet member", addr)
	}
	if c.weights[addr] == weight || (weight == 1 && c.weights[addr] == 0) {
		c.weights[addr] = weight
		c.mu.Unlock()
		return nil // no arc moves
	}
	c.weights[addr] = weight
	newRing := c.ringLocked(c.members)
	skip := func(a string) bool { return c.down[a] || c.draining[a] }
	// Phase 1: pin every session whose arc moves to where it lives now.
	moving := map[string]string{}
	for id := range c.specs {
		if _, pinned := c.routes[id]; pinned {
			continue
		}
		old := c.ring.LookupSkip(id, skip)
		next := newRing.LookupSkip(id, skip)
		if old != "" && next != old {
			c.routes[id] = old
			moving[id] = next
		}
	}
	c.ring = newRing
	c.mu.Unlock()
	c.logf("fleet: shard %s reweighted to %d; %d session(s) rebalancing", addr, weight, len(moving))

	// Phase 2: hand each moving session over behind its gate.
	ids := make([]string, 0, len(moving))
	for id := range moving {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var errs []error
	for _, id := range ids {
		if err := c.migrateSession(id, moving[id]); err != nil {
			errs = append(errs, fmt.Errorf("reweight %q: %w", id, err))
		}
	}
	c.saveMeta()
	return errors.Join(errs...)
}

// migrateSession is the gated checkpoint-migration primitive behind
// Migrate, Join, and DrainShard: detach from the current shard, resume
// on target, flip the route. While the gate is held, concurrent
// requests for the id wait (waitGate) and shard-loss recovery skips
// the id — exactly one actor owns a session's placement at a time.
// If the source dies mid-handover the session is recovered onto the
// target from its replicated checkpoint instead of being lost.
func (c *Coordinator) migrateSession(id, target string) error {
	// Acquire the gate, waiting out any migration already in flight.
	var gate chan struct{}
	for {
		c.mu.Lock()
		g, ok := c.gates[id]
		if !ok {
			gate = make(chan struct{})
			c.gates[id] = gate
			break
		}
		c.mu.Unlock()
		<-g
	}
	// c.mu is held here.
	defer func() {
		c.mu.Lock()
		delete(c.gates, id)
		c.mu.Unlock()
		close(gate)
	}()
	spec, ok := c.specs[id]
	if !ok {
		c.mu.Unlock()
		return &RemoteError{Code: CodeNoSession, Text: fmt.Sprintf("session %q not routed", id)}
	}
	src := c.routeLocked(id)
	c.mu.Unlock()
	if src == target {
		return nil // already there
	}
	if src == "" {
		return ErrNoShards
	}

	// Detach from the source. Direct client, not doRouted: doRouted
	// would block on the gate we hold.
	var ckpt []byte
	detached := false
	c.mu.Lock()
	scl, err := c.clientLocked(src)
	c.mu.Unlock()
	if err == nil {
		data, derr := scl.Detach(id)
		switch {
		case derr == nil:
			ckpt = data
			detached = true
		default:
			var remote *RemoteError
			if errors.As(derr, &remote) {
				if remote.Code == CodeFenced {
					c.deposed.Store(true)
					return fmt.Errorf("%w: %s: %s", ErrDeposed, src, remote.Text)
				}
				return fmt.Errorf("fleet: migrate %q: detach: %w", id, derr)
			}
			err = derr
		}
	}
	if errors.Is(err, ErrDeposed) {
		return err
	}
	if !detached {
		// The source died mid-handover. Recover its other sessions (we
		// hold this id's gate, so shard loss skips it) and fall back to
		// the last replicated checkpoint for this one.
		c.logf("fleet: migrate %q: source %s unreachable (%v); falling back to replicated checkpoint", id, src, err)
		c.handleShardLoss(src)
		if data, lerr := c.cfg.Store.Load(id); lerr == nil {
			ckpt = data
		}
	}

	// Resume on the target (fresh open when no bytes survived).
	c.mu.Lock()
	tcl, terr := c.clientLocked(target)
	c.mu.Unlock()
	if terr == nil {
		if ckpt != nil {
			terr = tcl.Resume(spec, ckpt)
		} else {
			terr = tcl.Open(spec)
		}
	}
	if terr != nil {
		if !detached {
			// Nothing to roll back to — the source is gone. The session
			// stays routed by the ring and surfaces errors until a
			// later request or probe recovers it.
			c.recoverFail.Add(1)
			return fmt.Errorf("fleet: migrate %q: source lost and target %s failed: %w", id, target, terr)
		}
		// Roll back: the session must live somewhere. Resume on the
		// source (its pinned route is unchanged, so no flip is needed).
		c.mu.Lock()
		rcl, rerr := c.clientLocked(src)
		c.mu.Unlock()
		if rerr == nil {
			rerr = rcl.Resume(spec, ckpt)
		}
		if rerr != nil {
			return fmt.Errorf("fleet: migrate %q: target %s failed (%w) and rollback to %s failed (%w)",
				id, target, terr, src, rerr)
		}
		return fmt.Errorf("fleet: migrate %q: target %s failed, rolled back to %s: %w", id, target, src, terr)
	}

	// The flip: drop the pin when the ring already owns the target so
	// future membership changes see a clean arc, keep an override
	// otherwise.
	c.mu.Lock()
	if c.ring.LookupSkip(id, func(a string) bool { return c.down[a] || c.draining[a] }) == target {
		delete(c.routes, id)
	} else {
		c.routes[id] = target
	}
	c.mu.Unlock()
	c.migrations.Add(1)
	c.logf("fleet: session %q migrated %s -> %s (%d checkpoint bytes)", id, src, target, len(ckpt))
	if ckpt != nil {
		return c.cfg.Store.Save(id, ckpt)
	}
	c.reopened.Add(1)
	return nil
}
