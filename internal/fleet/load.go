package fleet

import (
	"sort"
)

// Load sampling (DESIGN.md §18). The rebalancer plans on per-shard
// load rows — session count, summed stream footprint, feed-latency
// EWMA — gathered here. Sampling is deliberately passive: it uses
// short dedicated connections bounded by LoadTimeout, and a shard that
// fails to answer costs one placeholder row (Err set), never a
// shard-loss recovery or a hung stats command. Health transitions stay
// the prober's and the request path's job.

// Loads samples every member shard's load, one row per member in
// address order. Down members and members that fail to answer within
// LoadTimeout get placeholder rows with Err set and no session detail
// — the graceful-degradation contract `bgbuster stats` renders as
// DOWN/? rows.
func (c *Coordinator) Loads() []ShardLoad {
	c.mu.Lock()
	members := append([]string(nil), c.members...)
	down := make(map[string]bool, len(c.down))
	for a := range c.down {
		down[a] = true
	}
	states := make(map[string]uint8, len(members))
	for _, a := range members {
		st := HealthDown
		if h, ok := c.health[a]; ok && !c.down[a] {
			st = h.state
		}
		states[a] = uint8(st)
	}
	weights := make(map[string]int, len(c.weights))
	for a, w := range c.weights {
		weights[a] = w
	}
	c.mu.Unlock()
	sort.Strings(members)

	rows := make([]ShardLoad, 0, len(members))
	for _, addr := range members {
		row := ShardLoad{Addr: addr, State: states[addr], Weight: uint16(clampWeight(weights[addr]))}
		if down[addr] {
			row.Err = "down"
			rows = append(rows, row)
			continue
		}
		sample, err := c.sampleShard(addr)
		if err != nil {
			row.Err = err.Error()
			rows = append(rows, row)
			continue
		}
		row.Mem = sample.Mem
		row.FeedMicros = sample.FeedMicros
		row.Sess = sample.Sess
		rows = append(rows, row)
	}
	return rows
}

// sampleShard fetches one shard's self-reported load row over a short
// dedicated connection. The LoadTimeout deadline is what keeps one
// slow shard from stalling the whole sample.
func (c *Coordinator) sampleShard(addr string) (ShardLoad, error) {
	t := Timeouts{Dial: c.cfg.LoadTimeout, Read: c.cfg.LoadTimeout, Write: c.cfg.LoadTimeout}
	cl, err := DialTimeouts(addr, c.cfg.Limits, t)
	if err != nil {
		return ShardLoad{}, err
	}
	defer cl.Close()
	rows, err := cl.Load()
	if err != nil {
		return ShardLoad{}, err
	}
	if len(rows) != 1 {
		return ShardLoad{}, ErrBadMessage
	}
	return rows[0], nil
}
