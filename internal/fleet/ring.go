package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVnodes is the virtual-node count per shard: enough points on
// the circle that removing one shard spreads its sessions roughly
// evenly over the survivors instead of dumping them all on one
// neighbour.
const defaultVnodes = 64

// Ring consistent-hashes session ids onto shard addresses (FNV-64a,
// vnodes per shard on a sorted circle). Lookups are stable: adding or
// removing one shard only remaps the ids that hashed to that shard's
// arcs. A Ring is immutable after New — coordinators swap whole rings.
type Ring struct {
	points []ringPoint // sorted by hash
	shards []string
}

type ringPoint struct {
	hash  uint64
	shard string
}

// maxWeight caps a shard's capacity weight — 16× the base vnode count
// is plenty of skew before an operator should just run more shards.
const maxWeight = 16

// NewRing builds a ring over the shard addresses with vnodes virtual
// nodes each (<=0 takes the default).
func NewRing(shards []string, vnodes int) *Ring {
	return NewRingWeighted(shards, nil, vnodes)
}

// NewRingWeighted builds a ring where each shard's virtual-node count
// is scaled by its capacity weight: a weight-2 shard owns roughly twice
// the arc length (and so twice the sessions) of a weight-1 shard —
// heterogeneous fleets advertise capacity instead of overloading their
// smallest member. Missing or non-positive weights default to 1;
// weights clamp to maxWeight. A shard's base vnode labels ("addr#i")
// are a prefix of its weighted labels, so changing only a weight moves
// only the arcs the vnode-count delta implies.
func NewRingWeighted(shards []string, weights map[string]int, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{shards: append([]string(nil), shards...)}
	for _, s := range r.shards {
		w := weights[s]
		if w <= 0 {
			w = 1
		}
		if w > maxWeight {
			w = maxWeight
		}
		for i := 0; i < vnodes*w; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", s, i)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the ring's member addresses in construction order.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// Lookup returns the shard owning id: the first virtual node at or
// clockwise after hash(id).
func (r *Ring) Lookup(id string) string {
	return r.LookupSkip(id, nil)
}

// LookupSkip walks clockwise from hash(id) and returns the first shard
// for which skip is false — how a coordinator routes around shards it
// has marked down without rebuilding the ring. Returns "" when every
// shard is skipped.
func (r *Ring) LookupSkip(id string, skip func(addr string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(id)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if skip == nil || !skip(p.shard) {
			return p.shard
		}
	}
	return ""
}

// hash64 is FNV-64a with a murmur-style avalanche finalizer. Raw FNV
// hashes of near-identical strings ("addr#0", "addr#1", ...) share
// long bit prefixes, which clusters a shard's virtual nodes into a few
// tight arcs and wrecks the ring balance; the finalizer scatters them.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}
