package fleet

import (
	"errors"
	"fmt"
	"sort"
)

// Safe shard re-admission (DESIGN.md §18). A shard marked down had all
// of its sessions recovered onto survivors; letting it straight back
// into the ring would hand arcs — and therefore live sessions — to a
// process whose local state is stale, reopening exactly the split-
// brain the sticky down flag exists to prevent. Readmit narrows the
// door to a safe sequence:
//
//  1. Fencing handshake: dialing fences the connection at the
//     coordinator's epoch, so a recovered shard that was meanwhile
//     claimed by a successor coordinator deposes us here, before any
//     state moves.
//  2. Stale-state scrub: every session still materialised on the
//     recovered shard is detached and discarded — the fleet's
//     recovered copies are authoritative; the shard's pre-crash state
//     must not collide with a later Resume.
//  3. Probation: the shard re-enters the ring for NEW placements only.
//     Every existing session whose arc would flip onto it is pinned
//     where it lives. Promote lifts the pins (migrating those sessions
//     home) once the shard has proven itself through the quarantine
//     window — the autopilot drives both steps.

// Readmit returns a down member shard to the ring in probation: the
// shard serves new sessions immediately, while existing sessions stay
// pinned off it until Promote. The fencing handshake and stale-session
// scrub run before any routing changes.
func (c *Coordinator) Readmit(addr string) error {
	if c.deposed.Load() {
		return ErrDeposed
	}
	c.mu.Lock()
	member := false
	for _, a := range c.members {
		member = member || a == addr
	}
	if !member {
		c.mu.Unlock()
		return fmt.Errorf("fleet: readmit: %s is not a fleet member", addr)
	}
	if !c.down[addr] {
		c.mu.Unlock()
		return fmt.Errorf("fleet: readmit: %s is not down", addr)
	}
	c.mu.Unlock()

	// Fencing handshake. clientLocked fences fresh connections at our
	// epoch; CodeFenced back means a successor owns this shard now.
	c.mu.Lock()
	cl, err := c.clientLocked(addr)
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("fleet: readmit %s: handshake: %w", addr, err)
	}

	// Stale-state scrub: discard every session the shard still holds
	// from before it went down. The fleet re-homed them at loss time.
	st, err := cl.Stats()
	if err != nil {
		c.mu.Lock()
		c.dropClientLocked(addr)
		c.mu.Unlock()
		return fmt.Errorf("fleet: readmit %s: stats: %w", addr, err)
	}
	for _, id := range st.IDs {
		if _, derr := cl.Detach(id); derr != nil {
			var remote *RemoteError
			if errors.As(derr, &remote) && remote.Code == CodeNoSession {
				continue
			}
			c.mu.Lock()
			c.dropClientLocked(addr)
			c.mu.Unlock()
			return fmt.Errorf("fleet: readmit %s: scrub stale %q: %w", addr, id, derr)
		}
		c.logf("fleet: readmit %s: discarded stale session %q", addr, id)
	}

	// Flip: the shard leaves the down set (the ring already lists it —
	// down never removed it from membership), but every existing
	// session whose effective route would jump onto it gets pinned
	// where it lives. Only new placements land on the shard until
	// Promote.
	c.mu.Lock()
	if !c.down[addr] {
		c.mu.Unlock()
		return fmt.Errorf("fleet: readmit: %s was readmitted concurrently", addr)
	}
	skipNow := func(a string) bool { return c.down[a] || c.draining[a] }
	skipAfter := func(a string) bool { return (c.down[a] && a != addr) || c.draining[a] }
	var pins []string
	for id := range c.specs {
		if _, pinned := c.routes[id]; pinned {
			continue
		}
		cur := c.ring.LookupSkip(id, skipNow)
		next := c.ring.LookupSkip(id, skipAfter)
		if cur != "" && next != cur {
			c.routes[id] = cur
			pins = append(pins, id)
		}
	}
	sort.Strings(pins)
	delete(c.down, addr)
	c.health[addr] = &shardHealth{}
	c.probation[addr] = true
	c.probPins[addr] = pins
	c.mu.Unlock()
	c.readmits.Add(1)
	c.saveMeta()
	c.logf("fleet: shard %s re-admitted in probation; %d session(s) pinned off it", addr, len(pins))
	return nil
}

// Promote lifts a shard out of probation: the sessions pinned off it
// at Readmit are migrated to their ring homes (behind the usual gates),
// and the shard becomes a full member again. The autopilot calls this
// after the quarantine window passes cleanly.
func (c *Coordinator) Promote(addr string) error {
	if c.deposed.Load() {
		return ErrDeposed
	}
	c.mu.Lock()
	if !c.probation[addr] {
		c.mu.Unlock()
		return fmt.Errorf("fleet: promote: %s is not in probation", addr)
	}
	pins := c.probPins[addr]
	delete(c.probation, addr)
	delete(c.probPins, addr)
	c.mu.Unlock()

	var errs []error
	for _, id := range pins {
		c.mu.Lock()
		if _, ok := c.specs[id]; !ok {
			c.mu.Unlock()
			continue // closed while pinned
		}
		target := c.ring.LookupSkip(id, func(a string) bool { return c.down[a] || c.draining[a] })
		cur, pinned := c.routes[id]
		if pinned && cur == target {
			delete(c.routes, id) // already home; just drop the pin
			c.mu.Unlock()
			continue
		}
		c.mu.Unlock()
		if target == "" {
			errs = append(errs, fmt.Errorf("promote %q: %w", id, ErrNoShards))
			continue
		}
		if err := c.migrateSession(id, target); err != nil {
			errs = append(errs, fmt.Errorf("promote %q: %w", id, err))
		}
	}
	c.promotions.Add(1)
	c.saveMeta()
	c.logf("fleet: shard %s promoted out of probation; %d pinned session(s) migrating home", addr, len(pins))
	return errors.Join(errs...)
}
