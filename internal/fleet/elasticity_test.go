package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/session"
)

// fastHealth is the deterministic test tuning: one strike suspects,
// two strikes down, one idempotent retry, millisecond backoff.
func fastHealth() HealthConfig {
	return HealthConfig{SuspectAfter: 1, DownAfter: 2, OpRetries: 1,
		RetryBackoff: time.Millisecond, RetryBackoffCap: 2 * time.Millisecond}
}

// shortTimeouts keeps deadline-expiry tests fast.
func shortTimeouts() Timeouts {
	return Timeouts{Dial: 2 * time.Second, Read: 250 * time.Millisecond, Write: 2 * time.Second}
}

// --- meta blob -------------------------------------------------------

func TestFleetMetaRoundTrip(t *testing.T) {
	m := fleetMeta{
		Epoch:   7,
		Vnodes:  32,
		Members: []string{"10.0.0.1:7000", "10.0.0.2:7000"},
		Specs: []OpenSpec{
			{ID: "call-a", W: 64, H: 48, Seed: 3},
			{ID: "call-b", W: 32, H: 32, UnknownVB: true, Seed: -1},
		},
	}
	blob, err := encodeMeta(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeMeta(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != m.Epoch || got.Vnodes != m.Vnodes ||
		len(got.Members) != 2 || got.Members[1] != "10.0.0.2:7000" ||
		len(got.Specs) != 2 || got.Specs[1] != m.Specs[1] {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}

	// A flipped byte must fail the CRC, anywhere in the blob.
	for _, off := range []int{0, 5, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x40
		if _, err := decodeMeta(bad); err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
	}
	// Truncations must be rejected, never panic.
	for n := 0; n < len(blob); n++ {
		if _, err := decodeMeta(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// --- health-probed routing ------------------------------------------

// stallListener wraps a listener so a test can freeze the shard the
// way an asymmetric partition or a livelocked process would: accepted
// connections stop delivering requests (so the shard never answers)
// while the TCP peer stays connected — only client deadlines notice.
type stallListener struct {
	net.Listener
	stalled atomic.Bool
	unblock chan struct{}
}

func (l *stallListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &stallConn{Conn: c, l: l}, nil
}

type stallConn struct {
	net.Conn
	l *stallListener
}

func (c *stallConn) Read(b []byte) (int, error) {
	for {
		if c.l.stalled.Load() {
			<-c.l.unblock
			return 0, net.ErrClosed
		}
		n, err := c.Conn.Read(b)
		// A read that was already in flight when the stall hit must not
		// deliver — swallow the bytes so the shard never sees the
		// request and the client's deadline is the only thing that fires.
		if c.l.stalled.Load() && err == nil {
			continue
		}
		return n, err
	}
}

// startStallShard boots a shard behind a stallListener.
func startStallShard(t *testing.T) (*testShard, *stallListener) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sl := &stallListener{Listener: ln, unblock: make(chan struct{})}
	mgr := session.NewManager(session.Config{})
	sh, err := NewShard(ShardConfig{Manager: mgr, OptionsFor: fleetTestOptions, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := &testShard{addr: ln.Addr().String(), mgr: mgr, done: make(chan struct{})}
	go func() {
		defer close(ts.done)
		sh.Serve(sl)
	}()
	t.Cleanup(func() {
		sl.stalled.Store(false)
		close(sl.unblock)
		sl.Close()
		<-ts.done
		mgr.Close()
	})
	return ts, sl
}

// TestFleetHealthProbeAndTimeout drives the up -> suspect -> down
// machine with a stalled shard: a non-idempotent feed surfaces a
// *TimeoutError within its deadline (never wedging), the idempotent
// snapshot retries through the second strike, and the shard crossing
// DownAfter triggers transparent recovery onto the survivor.
func TestFleetHealthProbeAndTimeout(t *testing.T) {
	frames, sils := leakFrames(4)
	sA, stall := startStallShard(t)
	sB := startShard(t)
	store := session.NewMemStore()
	coord, err := NewCoordinator(CoordinatorConfig{
		Shards: []string{sA.addr, sB.addr}, Store: store,
		Timeouts: shortTimeouts(), Health: fastHealth(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	_, byShard := pickIDs(coord.ring, []string{sA.addr, sB.addr}, 1)
	id := byShard[sA.addr][0]
	if err := coord.Open(OpenSpec{ID: id, W: fw, H: fh, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := coord.Feed(id, core.Frame{Img: frames[0], Oracle: sils[0]}); err != nil {
		t.Fatal(err)
	}
	if err := coord.Drain(id); err != nil {
		t.Fatal(err)
	}
	if err := coord.Replicate(); err != nil {
		t.Fatal(err)
	}
	if st := coord.HealthSnapshot(); st.Epoch != 1 {
		t.Fatalf("fresh coordinator epoch = %d, want 1", st.Epoch)
	}

	stall.stalled.Store(true)

	// Non-idempotent op: one deadline, no blind retry, bounded wall time.
	start := time.Now()
	ferr := coord.Feed(id, core.Frame{Img: frames[1], Oracle: sils[1]})
	elapsed := time.Since(start)
	var to *TimeoutError
	if !errors.As(ferr, &to) {
		t.Fatalf("feed into a stalled shard = %v, want *TimeoutError", ferr)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("feed blocked %v past a 250ms read deadline", elapsed)
	}
	states := map[string]HealthState{}
	for _, sh := range coord.HealthSnapshot().Shards {
		states[sh.Addr] = HealthState(sh.State)
	}
	if states[sA.addr] != HealthSuspect {
		t.Fatalf("one strike left %s %v, want suspect", sA.addr, states[sA.addr])
	}
	if states[sB.addr] != HealthUp {
		t.Fatalf("healthy shard %s reads %v", sB.addr, states[sB.addr])
	}

	// Idempotent op: retries, second strike crosses DownAfter, the
	// session recovers onto the survivor, and the op still succeeds.
	snap, err := coord.Snapshot(id)
	if err != nil {
		t.Fatalf("snapshot across shard death: %v", err)
	}
	if snap.ID != id {
		t.Fatalf("snapshot for %q returned %q", id, snap.ID)
	}
	if got := coord.RouteOf(id); got != sB.addr {
		t.Fatalf("session routed to %s after recovery, want %s", got, sB.addr)
	}
	for _, sh := range coord.HealthSnapshot().Shards {
		if sh.Addr == sA.addr && HealthState(sh.State) != HealthDown {
			t.Fatalf("stalled shard reads %v after %d strikes, want down", HealthState(sh.State), 2)
		}
	}
	if resumed, _, _ := coord.Recoveries(); resumed != 1 {
		t.Fatalf("recoveries = %d, want 1", resumed)
	}
	// The survivor keeps feeding.
	if err := coord.Feed(id, core.Frame{Img: frames[2], Oracle: sils[2]}); err != nil {
		t.Fatal(err)
	}
}

// TestFleetProbeOnce drives the probe loop by hand: a stalled shard is
// struck per probe, crosses DownAfter, and its sessions move before
// any client request notices.
func TestFleetProbeOnce(t *testing.T) {
	frames, sils := leakFrames(2)
	sA, stall := startStallShard(t)
	sB := startShard(t)
	coord, err := NewCoordinator(CoordinatorConfig{
		Shards: []string{sA.addr, sB.addr}, Store: session.NewMemStore(),
		Timeouts: shortTimeouts(), Health: fastHealth(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	_, byShard := pickIDs(coord.ring, []string{sA.addr, sB.addr}, 1)
	id := byShard[sA.addr][0]
	if err := coord.Open(OpenSpec{ID: id, W: fw, H: fh, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := coord.Feed(id, core.Frame{Img: frames[0], Oracle: sils[0]}); err != nil {
		t.Fatal(err)
	}
	if err := coord.Drain(id); err != nil {
		t.Fatal(err)
	}
	if err := coord.Replicate(); err != nil {
		t.Fatal(err)
	}
	if st := coord.ProbeOnce(); st[sA.addr] != HealthUp || st[sB.addr] != HealthUp {
		t.Fatalf("healthy probe states = %v", st)
	}

	stall.stalled.Store(true)
	if st := coord.ProbeOnce(); st[sA.addr] != HealthSuspect {
		t.Fatalf("one probe strike = %v, want suspect", st[sA.addr])
	}
	if st := coord.ProbeOnce(); st[sA.addr] != HealthDown {
		t.Fatalf("two probe strikes = %v, want down", st[sA.addr])
	}
	// Recovery already happened behind the probe: feeding never blocks.
	if err := coord.Feed(id, core.Frame{Img: frames[1], Oracle: sils[1]}); err != nil {
		t.Fatalf("feed after probe-driven recovery: %v", err)
	}
	if got := coord.RouteOf(id); got != sB.addr {
		t.Fatalf("session routed to %s, want survivor %s", got, sB.addr)
	}
}

// --- dynamic membership ---------------------------------------------

// TestFleetJoinMigratesOnlyMovedArcs grows a live fleet mid-meeting
// and checks the two-phase flip: every session keeps its exact frame
// schedule (bit-identical final checkpoints vs a single-manager
// baseline), only arc-moved sessions migrate, and the joined shard
// actually hosts them.
func TestFleetJoinMigratesOnlyMovedArcs(t *testing.T) {
	const total, joinAt, nSessions = 14, 6, 6
	frames, sils := leakFrames(total)
	sA, sB, sC := startShard(t), startShard(t), startShard(t)
	coord, err := NewCoordinator(CoordinatorConfig{
		Shards: []string{sA.addr, sB.addr}, Store: session.NewMemStore(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Baseline: one plain session per id fed the full schedule.
	spec0 := OpenSpec{W: fw, H: fh, Seed: 1}
	base := session.NewManager(session.Config{})
	defer base.Close()
	bs, err := base.Open("baseline", fw, fh, fleetTestOptions(spec0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := bs.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantFinal, err := bs.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	var ids []string
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("join-call-%02d", i)
		ids = append(ids, id)
		if err := coord.Open(OpenSpec{ID: id, W: fw, H: fh, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		for i := 0; i < joinAt; i++ {
			if err := coord.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Predict which arcs move, then grow the ring.
	before := map[string]string{}
	for _, id := range ids {
		before[id] = coord.RouteOf(id)
	}
	grown := NewRing([]string{sA.addr, sB.addr, sC.addr}, 0)
	wantMoved := map[string]bool{}
	for _, id := range ids {
		if grown.Lookup(id) != before[id] {
			wantMoved[id] = true
		}
	}
	if err := coord.Join(sC.addr); err != nil {
		t.Fatalf("join: %v", err)
	}
	if got := coord.Members(); len(got) != 3 {
		t.Fatalf("members after join = %v", got)
	}
	moved := 0
	for _, id := range ids {
		now := coord.RouteOf(id)
		if wantMoved[id] {
			if now != sC.addr {
				t.Fatalf("moved-arc session %q routes to %s, want joined shard %s", id, now, sC.addr)
			}
			moved++
		} else if now != before[id] {
			t.Fatalf("unmoved-arc session %q migrated %s -> %s", id, before[id], now)
		}
	}
	if got := coord.Migrations(); got != uint64(moved) {
		t.Fatalf("join migrated %d sessions, want exactly the %d moved arcs", got, moved)
	}
	if joined, _ := coord.Rebalances(); joined != 1 {
		t.Fatalf("joins = %d, want 1", joined)
	}

	// The meeting continues; every session must land bit-identical.
	for _, id := range ids {
		for i := joinAt; i < total; i++ {
			if err := coord.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range ids {
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
		got, err := coord.Checkpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantFinal) {
			t.Fatalf("session %q checkpoint diverged from baseline after join rebalance", id)
		}
	}
}

// TestFleetDrainShard removes a live shard gracefully mid-meeting: its
// sessions migrate off with bit-identical state, the shard ends empty,
// and the guard rails (unknown member, last shard) hold.
func TestFleetDrainShard(t *testing.T) {
	const total, drainAt = 12, 5
	frames, sils := leakFrames(total)
	sA, sB, sC := startShard(t), startShard(t), startShard(t)
	coord, err := NewCoordinator(CoordinatorConfig{
		Shards: []string{sA.addr, sB.addr, sC.addr}, Store: session.NewMemStore(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	spec0 := OpenSpec{W: fw, H: fh, Seed: 1}
	base := session.NewManager(session.Config{})
	defer base.Close()
	bs, err := base.Open("baseline", fw, fh, fleetTestOptions(spec0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := bs.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantFinal, err := bs.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	ids, byShard := pickIDs(coord.ring, []string{sA.addr, sB.addr, sC.addr}, 2)
	for _, id := range ids {
		if err := coord.Open(OpenSpec{ID: id, W: fw, H: fh, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < drainAt; i++ {
			if err := coord.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
				t.Fatal(err)
			}
		}
	}

	if err := coord.DrainShard("127.0.0.1:1"); err == nil {
		t.Fatal("draining a non-member succeeded")
	}
	if err := coord.DrainShard(sA.addr); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := coord.Members(); len(got) != 2 {
		t.Fatalf("members after drain = %v", got)
	}
	for _, id := range byShard[sA.addr] {
		if got := coord.RouteOf(id); got == sA.addr || got == "" {
			t.Fatalf("session %q still routed to the drained shard (%q)", id, got)
		}
	}
	if open := sA.mgr.Stats().Open; open != 0 {
		t.Fatalf("drained shard still hosts %d sessions", open)
	}

	for _, id := range ids {
		for i := drainAt; i < total; i++ {
			if err := coord.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, id := range ids {
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
		got, err := coord.Checkpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantFinal) {
			t.Fatalf("session %q checkpoint diverged from baseline after shard drain", id)
		}
	}

	// Guard rail: the fleet never drains itself to zero.
	if err := coord.DrainShard(sB.addr); err != nil {
		t.Fatal(err)
	}
	if err := coord.DrainShard(sC.addr); err == nil {
		t.Fatal("draining the last live shard succeeded")
	}
}

// --- quorum replication through the coordinator ----------------------

// deadStore is a checkpoint replica that lost its disk.
type deadStore struct{}

var errDeadStore = errors.New("replica store dead")

func (deadStore) Save(string, []byte) error  { return errDeadStore }
func (deadStore) Load(string) ([]byte, error) { return nil, errDeadStore }
func (deadStore) List() ([]string, error)     { return nil, errDeadStore }
func (deadStore) Delete(string) error         { return errDeadStore }

// TestFleetQuorumReplication replicates checkpoints W-of-N with one
// dead replica, kills a shard, and requires recovery to read back from
// a surviving replica — the weakened-durability path Replicate exists
// to bound.
func TestFleetQuorumReplication(t *testing.T) {
	const pre = 5
	frames, sils := leakFrames(pre + 3)
	sA, sB := startShard(t), startShard(t)
	stores := []session.CheckpointStore{session.NewMemStore(), deadStore{}, session.NewMemStore()}
	coord, err := NewCoordinator(CoordinatorConfig{
		Shards: []string{sA.addr, sB.addr},
		Stores: stores, ReplicaFactor: 3, WriteQuorum: 2,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	_, byShard := pickIDs(coord.ring, []string{sA.addr, sB.addr}, 1)
	id := byShard[sA.addr][0]
	if err := coord.Open(OpenSpec{ID: id, W: fw, H: fh, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pre; i++ {
		if err := coord.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Drain(id); err != nil {
		t.Fatal(err)
	}
	// 2-of-3 replicas accept the write; the dead one is absorbed.
	if err := coord.Replicate(); err != nil {
		t.Fatalf("replicate with one dead replica: %v", err)
	}

	sA.ln.Kill()
	if err := coord.Feed(id, core.Frame{Img: frames[pre], Oracle: sils[pre]}); err != nil {
		t.Fatalf("feed across shard loss with quorum store: %v", err)
	}
	if resumed, reopened, _ := coord.Recoveries(); resumed != 1 || reopened != 0 {
		t.Fatalf("recoveries = (%d resumed, %d reopened), want a checkpoint resume", resumed, reopened)
	}
}

// --- coordinator failover --------------------------------------------

// TestFleetCoordinatorFailover deposes a live coordinator: a standby
// takes over from the replicated stores at a higher epoch, the shards
// fence the old coordinator's mutations (CodeFenced -> ErrDeposed),
// and the meeting finishes bit-identical under the successor — with
// one shard killed between the two reigns to force takeover-time
// recovery from a surviving replica.
func TestFleetCoordinatorFailover(t *testing.T) {
	const total, failAt = 12, 5
	frames, sils := leakFrames(total)
	sA, sB := startShard(t), startShard(t)
	stores := []session.CheckpointStore{session.NewMemStore(), session.NewMemStore(), session.NewMemStore()}

	mk := func() (*Coordinator, error) {
		return NewCoordinator(CoordinatorConfig{
			Shards: []string{sA.addr, sB.addr},
			Stores: stores, ReplicaFactor: 3, WriteQuorum: 2,
			Logf: t.Logf,
		})
	}
	c1, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	spec0 := OpenSpec{W: fw, H: fh, Seed: 1}
	base := session.NewManager(session.Config{})
	defer base.Close()
	bs, err := base.Open("baseline", fw, fh, fleetTestOptions(spec0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := bs.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantFinal, err := bs.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	ids, byShard := pickIDs(c1.ring, []string{sA.addr, sB.addr}, 1)
	for _, id := range ids {
		if err := c1.Open(OpenSpec{ID: id, W: fw, H: fh, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < failAt; i++ {
			if err := c1.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
				t.Fatal(err)
			}
		}
		if err := c1.Drain(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Replicate(); err != nil {
		t.Fatal(err)
	}

	// The old coordinator "freezes" (partitioned from its operator, not
	// its shards); one of the shards dies in the gap.
	sA.ln.Kill()

	c2, err := TakeOver(CoordinatorConfig{
		Stores: stores, ReplicaFactor: 3, WriteQuorum: 2, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	defer c2.Close()
	if c2.Epoch() != 2 {
		t.Fatalf("successor epoch = %d, want 2", c2.Epoch())
	}
	idA, idB := byShard[sA.addr][0], byShard[sB.addr][0]
	if got := c2.RouteOf(idA); got != sB.addr {
		t.Fatalf("dead shard's session routed to %q, want survivor %s", got, sB.addr)
	}
	if got := c2.RouteOf(idB); got != sB.addr {
		t.Fatalf("surviving session routed to %q, want its home %s", got, sB.addr)
	}
	if resumed, reopened, failed := c2.Recoveries(); resumed != 1 || reopened != 0 || failed != 0 {
		t.Fatalf("takeover recoveries = (%d, %d, %d), want exactly one checkpoint resume", resumed, reopened, failed)
	}

	// The deposed coordinator's mutations die at the shard fence.
	ferr := c1.Feed(idB, core.Frame{Img: frames[failAt], Oracle: sils[failAt]})
	if !errors.Is(ferr, ErrDeposed) {
		var remote *RemoteError
		if !errors.As(ferr, &remote) || remote.Code != CodeFenced {
			t.Fatalf("deposed coordinator's feed = %v, want fencing rejection", ferr)
		}
	}
	if !c1.Deposed() {
		t.Fatal("old coordinator does not know it is deposed")
	}
	if jerr := c1.Join("127.0.0.1:9"); !errors.Is(jerr, ErrDeposed) {
		t.Fatalf("deposed coordinator's join = %v, want ErrDeposed", jerr)
	}

	// The successor finishes the meeting bit-identically.
	for _, id := range ids {
		for i := failAt; i < total; i++ {
			if err := c2.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
				t.Fatalf("successor feed %s[%d]: %v", id, i, err)
			}
		}
	}
	for _, id := range ids {
		if err := c2.Drain(id); err != nil {
			t.Fatal(err)
		}
		got, err := c2.Checkpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantFinal) {
			t.Fatalf("session %q checkpoint diverged from baseline across failover", id)
		}
	}
}

// TestFleetTakeOverRequiresMeta: a store with no BBFM blob cannot be
// taken over from.
func TestFleetTakeOverRequiresMeta(t *testing.T) {
	if _, err := TakeOver(CoordinatorConfig{Store: session.NewMemStore()}); !errors.Is(err, ErrNoMeta) {
		t.Fatalf("takeover from an empty store = %v, want ErrNoMeta", err)
	}
	if _, err := TakeOver(CoordinatorConfig{}); err == nil {
		t.Fatal("takeover without any store succeeded")
	}
}

// --- the acceptance soak ---------------------------------------------

// TestFleetElasticitySoak is the issue's acceptance scenario: a
// 3-shard fleet under continuous multi-session ingest grows to 4
// mid-meeting, gracefully drains one shard, loses another to a crash,
// and has the coordinator partitioned from a third — and every
// surviving session's final checkpoint is bit-identical to a
// single-manager baseline, with no request ever blocking past its
// deadline.
func TestFleetElasticitySoak(t *testing.T) {
	const (
		nSessions = 6
		joinAt    = 8  // s3 joins
		drainAt   = 14 // s0 drains
		killAt    = 20 // s1 dies
		partAt    = 26 // coordinator partitioned from s2
		total     = 32
	)
	frames, sils := leakFrames(total)
	s0, s1, s2, s3 := startShard(t), startShard(t), startShard(t), startShard(t)
	coord, err := NewCoordinator(CoordinatorConfig{
		Shards: []string{s0.addr, s1.addr, s2.addr},
		Stores: []session.CheckpointStore{session.NewMemStore(), session.NewMemStore()},
		ReplicaFactor: 2, WriteQuorum: 1,
		Timeouts: Timeouts{Read: 5 * time.Second, Write: 5 * time.Second, Dial: 5 * time.Second},
		Health:   fastHealth(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	spec0 := OpenSpec{W: fw, H: fh, Seed: 1}
	base := session.NewManager(session.Config{})
	defer base.Close()
	bs, err := base.Open("baseline", fw, fh, fleetTestOptions(spec0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := bs.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantFinal, err := bs.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	var ids []string
	for i := 0; i < nSessions; i++ {
		id := fmt.Sprintf("soak-call-%02d", i)
		ids = append(ids, id)
		if err := coord.Open(OpenSpec{ID: id, W: fw, H: fh, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	feedAll := func(from, to int) {
		t.Helper()
		for _, id := range ids {
			for i := from; i < to; i++ {
				start := time.Now()
				if err := coord.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
					t.Fatalf("feed %s[%d]: %v", id, i, err)
				}
				if e := time.Since(start); e > 30*time.Second {
					t.Fatalf("feed %s[%d] blocked %v", id, i, e)
				}
			}
		}
	}

	feedAll(0, joinAt)
	if err := coord.Join(s3.addr); err != nil {
		t.Fatalf("join mid-meeting: %v", err)
	}

	feedAll(joinAt, drainAt)
	if err := coord.DrainShard(s0.addr); err != nil {
		t.Fatalf("drain mid-meeting: %v", err)
	}
	if open := s0.mgr.Stats().Open; open != 0 {
		t.Fatalf("drained shard still hosts %d sessions", open)
	}

	feedAll(drainAt, killAt)
	drainAllAndReplicate := func() {
		t.Helper()
		for _, id := range ids {
			if err := coord.Drain(id); err != nil {
				t.Fatal(err)
			}
		}
		if err := coord.Replicate(); err != nil {
			t.Fatal(err)
		}
	}
	drainAllAndReplicate()
	s1.ln.Kill() // crash during the rebalanced regime

	feedAll(killAt, partAt)
	drainAllAndReplicate()
	s2.ln.Kill() // partition: the manager lives, the coordinator can't reach it

	feedAll(partAt, total)

	live := map[string]bool{}
	for _, m := range coord.Members() {
		live[m] = true
	}
	if !live[s3.addr] || len(live) != 3 {
		t.Fatalf("membership after the soak = %v", coord.Members())
	}
	for _, id := range ids {
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
		got, err := coord.Checkpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantFinal) {
			t.Fatalf("session %q final checkpoint diverged from baseline after the soak", id)
		}
		if route := coord.RouteOf(id); route != s3.addr {
			t.Logf("session %q finished on %s", id, route)
		}
	}
	if joined, drained := coord.Rebalances(); joined != 1 || drained != 1 {
		t.Fatalf("rebalances = (%d joins, %d drains)", joined, drained)
	}
}
