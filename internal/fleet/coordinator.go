package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/session"
)

// ErrNoShards is returned when every shard is marked down.
var ErrNoShards = errors.New("fleet: no live shards")

// CoordinatorConfig configures a routing coordinator.
type CoordinatorConfig struct {
	// Shards are the worker addresses the ring is built over (required,
	// at least one).
	Shards []string
	// Vnodes per shard on the hash ring (<=0: 64).
	Vnodes int
	// Limits bounds decode budgets for shard responses (zero: defaults).
	Limits Limits
	// Store replicates session checkpoints (Replicate pulls .bbck bytes
	// from shards into it; shard-loss recovery resumes from it). Nil:
	// in-memory store — recovery then survives shard loss but not
	// coordinator loss.
	Store session.CheckpointStore
	// Dial opens a client to a shard (nil: Dial over TCP). Injectable
	// for tests.
	Dial func(addr string, lim Limits) (*Client, error)
	// Logf receives routing and recovery diagnostics (nil: silent).
	Logf func(format string, args ...any)
}

// Coordinator consistent-hashes session ids onto worker shards and
// proxies the wire protocol to them. It layers three fleet behaviours
// on top of routing (DESIGN.md §15):
//
//   - Replication: Replicate pulls every session's current .bbck bytes
//     into the checkpoint store — the recovery floor.
//   - Live migration: Migrate detaches a running session from its
//     shard (drain + checkpoint + remove, no finalize), resumes it
//     bit-identically on the target, then atomically flips the route.
//   - Shard-loss recovery: a transport failure marks the shard down
//     and re-resumes every session it routed from the last replicated
//     checkpoint onto the survivors — the same supervisor pattern the
//     session layer applies to crashed workers, lifted one level up.
//
// Coordinator implements Handler, so Serve can front it with the same
// wire protocol the shards speak.
type Coordinator struct {
	cfg  CoordinatorConfig
	ring *Ring

	mu      sync.Mutex
	clients map[string]*Client
	specs   map[string]OpenSpec // id -> open spec (recovery needs it)
	routes  map[string]string   // id -> addr override (migration/recovery)
	down    map[string]bool

	migrations  atomic.Uint64
	recoveries  atomic.Uint64 // sessions re-resumed after shard loss
	reopened    atomic.Uint64 // sessions lost with no checkpoint, reopened fresh
	shardsLost  atomic.Uint64
	recoverFail atomic.Uint64
}

// NewCoordinator validates the config and builds the ring.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("fleet: CoordinatorConfig.Shards is required")
	}
	seen := map[string]bool{}
	for _, a := range cfg.Shards {
		if seen[a] {
			return nil, fmt.Errorf("fleet: duplicate shard address %q", a)
		}
		seen[a] = true
	}
	cfg.Limits = cfg.Limits.withDefaults()
	if cfg.Store == nil {
		cfg.Store = session.NewMemStore()
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, lim Limits) (*Client, error) { return Dial(addr, lim) }
	}
	return &Coordinator{
		cfg:     cfg,
		ring:    NewRing(cfg.Shards, cfg.Vnodes),
		clients: map[string]*Client{},
		specs:   map[string]OpenSpec{},
		routes:  map[string]string{},
		down:    map[string]bool{},
	}, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// routeLocked returns the shard currently owning id. Caller holds c.mu.
func (c *Coordinator) routeLocked(id string) string {
	if addr, ok := c.routes[id]; ok && !c.down[addr] {
		return addr
	}
	return c.ring.LookupSkip(id, func(a string) bool { return c.down[a] })
}

// RouteOf returns the shard address a session currently routes to
// ("" when every shard is down).
func (c *Coordinator) RouteOf(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.routeLocked(id)
}

// clientLocked returns (dialing if needed) the cached client for addr.
// Caller holds c.mu.
func (c *Coordinator) clientLocked(addr string) (*Client, error) {
	if cl, ok := c.clients[addr]; ok {
		return cl, nil
	}
	cl, err := c.cfg.Dial(addr, c.cfg.Limits)
	if err != nil {
		return nil, err
	}
	c.clients[addr] = cl
	return cl, nil
}

// dropClientLocked forgets (and closes) the cached client for addr.
func (c *Coordinator) dropClientLocked(addr string) {
	if cl, ok := c.clients[addr]; ok {
		cl.Close()
		delete(c.clients, addr)
	}
}

// doRouted runs one request against the shard owning id, absorbing
// shard loss: a transport failure (dial or I/O, never a RemoteError)
// marks the shard down, recovers its sessions onto survivors, and
// retries on the new route. The loop is bounded by the shard count —
// each iteration either succeeds, fails at the request level, or
// permanently removes one shard from the ring.
func (c *Coordinator) doRouted(id string, req *Message, want MsgType) (*Message, error) {
	for attempt := 0; attempt <= len(c.cfg.Shards); attempt++ {
		c.mu.Lock()
		addr := c.routeLocked(id)
		if addr == "" {
			c.mu.Unlock()
			return nil, ErrNoShards
		}
		cl, err := c.clientLocked(addr)
		c.mu.Unlock()
		if err == nil {
			resp, rerr := cl.do(req)
			var remote *RemoteError
			if rerr == nil {
				if resp.Type != want {
					return nil, fmt.Errorf("fleet: %s: response type 0x%02x, want 0x%02x: %w",
						addr, byte(resp.Type), byte(want), ErrBadMessage)
				}
				return resp, nil
			}
			if errors.As(rerr, &remote) {
				return nil, rerr
			}
			err = rerr
		}
		c.logf("fleet: shard %s unreachable (%v); recovering", addr, err)
		c.handleShardLoss(addr)
	}
	return nil, ErrNoShards
}

// handleShardLoss marks addr down and re-resumes every session it
// routed onto the survivors from the last replicated checkpoint (or a
// fresh open when none was ever taken). Sessions whose recovery fails
// on a survivor stay routed there and surface errors on their next
// request — the ring never wedges on one bad session.
func (c *Coordinator) handleShardLoss(addr string) {
	c.mu.Lock()
	if c.down[addr] {
		c.mu.Unlock()
		return
	}
	c.down[addr] = true
	c.dropClientLocked(addr)
	c.shardsLost.Add(1)
	// Collect the orphaned sessions: everything whose current route —
	// override or ring arc — pointed at the lost shard.
	var orphans []string
	for id := range c.specs {
		prev := c.routes[id]
		if prev == addr || (prev == "" && c.ring.LookupSkip(id, func(a string) bool { return c.down[a] && a != addr }) == addr) {
			orphans = append(orphans, id)
		}
	}
	sort.Strings(orphans)
	c.mu.Unlock()

	for _, id := range orphans {
		if err := c.recoverSession(id); err != nil {
			c.recoverFail.Add(1)
			c.logf("fleet: recover %q after loss of %s: %v", id, addr, err)
		}
	}
}

// recoverSession re-homes one session after shard loss: resume from
// the replicated checkpoint when one exists, otherwise reopen fresh
// from the recorded spec (everything since open is lost — the case
// Replicate exists to bound).
func (c *Coordinator) recoverSession(id string) error {
	c.mu.Lock()
	spec, ok := c.specs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("fleet: no spec recorded for %q", id)
	}
	addr := c.routeLocked(id)
	if addr == "" {
		c.mu.Unlock()
		return ErrNoShards
	}
	cl, err := c.clientLocked(addr)
	c.mu.Unlock()
	if err != nil {
		return err
	}

	ckpt, lerr := c.cfg.Store.Load(id)
	if lerr == nil {
		err = cl.Resume(spec, ckpt)
	} else {
		err = cl.Open(spec)
	}
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.routes[id] = addr
	c.mu.Unlock()
	if lerr == nil {
		c.recoveries.Add(1)
		c.logf("fleet: session %q re-resumed on %s from replicated checkpoint", id, addr)
	} else {
		c.reopened.Add(1)
		c.logf("fleet: session %q reopened fresh on %s (no replicated checkpoint)", id, addr)
	}
	return nil
}

// Open opens a fresh session on the shard owning spec.ID and records
// the spec for recovery.
func (c *Coordinator) Open(spec OpenSpec) error {
	c.mu.Lock()
	if _, exists := c.specs[spec.ID]; exists {
		c.mu.Unlock()
		return &RemoteError{Code: CodeExists, Text: fmt.Sprintf("session %q already routed", spec.ID)}
	}
	c.mu.Unlock()
	_, err := c.doRouted(spec.ID, &Message{Type: MsgOpen, Spec: spec}, MsgOK)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.specs[spec.ID] = spec
	c.mu.Unlock()
	return nil
}

// Resume registers a session from caller-provided checkpoint bytes
// (external ingest of a .bbck; fleet-internal recovery uses the store).
func (c *Coordinator) Resume(spec OpenSpec, ckpt []byte) error {
	c.mu.Lock()
	if _, exists := c.specs[spec.ID]; exists {
		c.mu.Unlock()
		return &RemoteError{Code: CodeExists, Text: fmt.Sprintf("session %q already routed", spec.ID)}
	}
	c.mu.Unlock()
	_, err := c.doRouted(spec.ID, &Message{Type: MsgResume, Spec: spec, Ckpt: ckpt}, MsgOK)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.specs[spec.ID] = spec
	c.mu.Unlock()
	return c.cfg.Store.Save(spec.ID, ckpt)
}

// Feed delivers one frame to a session, wherever it lives.
func (c *Coordinator) Feed(id string, f core.Frame) error {
	_, err := c.doRouted(id, &Message{Type: MsgFeed, Spec: OpenSpec{ID: id}, Frames: []core.Frame{f}}, MsgOK)
	return err
}

// FeedN delivers an ordered batch to a session.
func (c *Coordinator) FeedN(id string, frames []core.Frame) error {
	_, err := c.doRouted(id, &Message{Type: MsgFeedBatch, Spec: OpenSpec{ID: id}, Frames: frames}, MsgOK)
	return err
}

// Snapshot fetches a session's counters.
func (c *Coordinator) Snapshot(id string) (SnapInfo, error) {
	resp, err := c.doRouted(id, &Message{Type: MsgSnapshot, Spec: OpenSpec{ID: id}}, MsgSnapResp)
	if err != nil {
		return SnapInfo{}, err
	}
	return resp.Snap, nil
}

// Checkpoint fetches a session's current .bbck bytes (session keeps
// running) and replicates them into the store.
func (c *Coordinator) Checkpoint(id string) ([]byte, error) {
	resp, err := c.doRouted(id, &Message{Type: MsgCheckpoint, Spec: OpenSpec{ID: id}}, MsgCkptResp)
	if err != nil {
		return nil, err
	}
	if serr := c.cfg.Store.Save(id, resp.Ckpt); serr != nil {
		return resp.Ckpt, fmt.Errorf("fleet: replicate %q: %w", id, serr)
	}
	return resp.Ckpt, nil
}

// Drain blocks until every frame fed to the session has been processed.
func (c *Coordinator) Drain(id string) error {
	_, err := c.doRouted(id, &Message{Type: MsgDrain, Spec: OpenSpec{ID: id}}, MsgOK)
	return err
}

// CloseSession finalizes and removes a session fleet-wide: the shard
// finalizes it, the route and spec are forgotten, and the replicated
// checkpoint is deleted.
func (c *Coordinator) CloseSession(id string) error {
	_, err := c.doRouted(id, &Message{Type: MsgClose, Spec: OpenSpec{ID: id}}, MsgOK)
	if err != nil {
		return err
	}
	c.forget(id)
	return c.cfg.Store.Delete(id)
}

// Detach drains and removes a session without finalizing and hands its
// .bbck bytes to the caller, which takes ownership (the fleet forgets
// the session).
func (c *Coordinator) Detach(id string) ([]byte, error) {
	resp, err := c.doRouted(id, &Message{Type: MsgDetach, Spec: OpenSpec{ID: id}}, MsgCkptResp)
	if err != nil {
		return nil, err
	}
	c.forget(id)
	return resp.Ckpt, c.cfg.Store.Delete(id)
}

func (c *Coordinator) forget(id string) {
	c.mu.Lock()
	delete(c.specs, id)
	delete(c.routes, id)
	c.mu.Unlock()
}

// Replicate pulls every routed session's current checkpoint into the
// store — the floor shard-loss recovery resumes from. Transport
// failures trigger the same shard-loss handling as any routed request;
// per-session errors are joined, not fatal.
func (c *Coordinator) Replicate() error {
	c.mu.Lock()
	ids := make([]string, 0, len(c.specs))
	for id := range c.specs {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Strings(ids)
	var errs []error
	for _, id := range ids {
		if _, err := c.Checkpoint(id); err != nil {
			errs = append(errs, fmt.Errorf("replicate %q: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// Migrate live-migrates a session onto shard addr: drain + detach on
// the source (bit-exact .bbck, no finalize), resume on the target,
// then atomically flip the route. On a target-side failure the session
// is resumed back on the source, so a failed migration never loses the
// session. The detached bytes are also replicated — a migration
// produces a fresh checkpoint for free.
func (c *Coordinator) Migrate(id string, addr string) error {
	c.mu.Lock()
	spec, ok := c.specs[id]
	if !ok {
		c.mu.Unlock()
		return &RemoteError{Code: CodeNoSession, Text: fmt.Sprintf("session %q not routed", id)}
	}
	if c.down[addr] {
		c.mu.Unlock()
		return fmt.Errorf("fleet: migrate %q: target %s is down", id, addr)
	}
	member := false
	for _, a := range c.cfg.Shards {
		member = member || a == addr
	}
	if !member {
		c.mu.Unlock()
		return fmt.Errorf("fleet: migrate %q: %s is not a fleet member", id, addr)
	}
	src := c.routeLocked(id)
	c.mu.Unlock()
	if src == addr {
		return nil // already there
	}

	ckpt, err := c.doRouted(id, &Message{Type: MsgDetach, Spec: OpenSpec{ID: id}}, MsgCkptResp)
	if err != nil {
		return fmt.Errorf("fleet: migrate %q: detach: %w", id, err)
	}
	c.mu.Lock()
	cl, err := c.clientLocked(addr)
	c.mu.Unlock()
	if err == nil {
		err = cl.Resume(spec, ckpt.Ckpt)
	}
	if err != nil {
		// Roll back: the session must live somewhere. Resume on the
		// source (its route is unchanged, so no flip is needed).
		c.mu.Lock()
		scl, serr := c.clientLocked(src)
		c.mu.Unlock()
		if serr == nil {
			serr = scl.Resume(spec, ckpt.Ckpt)
		}
		if serr != nil {
			return fmt.Errorf("fleet: migrate %q: target %s failed (%w) and rollback to %s failed (%w)",
				id, addr, err, src, serr)
		}
		return fmt.Errorf("fleet: migrate %q: target %s failed, rolled back to %s: %w", id, addr, src, err)
	}
	c.mu.Lock()
	c.routes[id] = addr // the atomic flip: subsequent feeds route here
	c.mu.Unlock()
	c.migrations.Add(1)
	c.logf("fleet: session %q migrated %s -> %s (%d checkpoint bytes)", id, src, addr, len(ckpt.Ckpt))
	return c.cfg.Store.Save(id, ckpt.Ckpt)
}

// Down returns the addresses currently marked down, sorted.
func (c *Coordinator) Down() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for a := range c.down {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Stats aggregates counters across live shards plus the coordinator's
// own routing state. Unreachable shards are skipped (and handled as
// lost), not errors.
func (c *Coordinator) Stats() StatsInfo {
	c.mu.Lock()
	addrs := make([]string, 0, len(c.cfg.Shards))
	for _, a := range c.cfg.Shards {
		if !c.down[a] {
			addrs = append(addrs, a)
		}
	}
	c.mu.Unlock()
	agg := StatsInfo{Migrations: c.migrations.Load() + c.recoveries.Load()}
	for _, addr := range addrs {
		c.mu.Lock()
		cl, err := c.clientLocked(addr)
		c.mu.Unlock()
		if err != nil {
			c.handleShardLoss(addr)
			continue
		}
		st, err := cl.Stats()
		if err != nil {
			var remote *RemoteError
			if !errors.As(err, &remote) {
				c.handleShardLoss(addr)
			}
			continue
		}
		agg.Open += st.Open
		agg.Opened += st.Opened
		agg.Restores += st.Restores
		agg.Restarts += st.Restarts
		agg.IDs = append(agg.IDs, st.IDs...)
	}
	sort.Strings(agg.IDs)
	return agg
}

// Recoveries returns (sessions re-resumed from checkpoints, sessions
// reopened fresh because no checkpoint existed, recovery failures)
// since start.
func (c *Coordinator) Recoveries() (resumed, reopened, failed uint64) {
	return c.recoveries.Load(), c.reopened.Load(), c.recoverFail.Load()
}

// Migrations returns completed live migrations since start.
func (c *Coordinator) Migrations() uint64 { return c.migrations.Load() }

// Handle implements Handler, fronting the coordinator with the same
// wire protocol the shards speak (bgbuster serve).
func (c *Coordinator) Handle(req *Message) *Message {
	switch req.Type {
	case MsgOpen:
		return wireStatus(c.Open(req.Spec))
	case MsgResume:
		return wireStatus(c.Resume(req.Spec, req.Ckpt))
	case MsgFeed:
		return wireStatus(c.Feed(req.Spec.ID, req.Frames[0]))
	case MsgFeedBatch:
		return wireStatus(c.FeedN(req.Spec.ID, req.Frames))
	case MsgSnapshot:
		snap, err := c.Snapshot(req.Spec.ID)
		if err != nil {
			return wireStatus(err)
		}
		return &Message{Type: MsgSnapResp, Snap: snap}
	case MsgCheckpoint:
		ckpt, err := c.Checkpoint(req.Spec.ID)
		if err != nil {
			return wireStatus(err)
		}
		return &Message{Type: MsgCkptResp, Ckpt: ckpt}
	case MsgDetach:
		ckpt, err := c.Detach(req.Spec.ID)
		if err != nil {
			return wireStatus(err)
		}
		return &Message{Type: MsgCkptResp, Ckpt: ckpt}
	case MsgDrain:
		return wireStatus(c.Drain(req.Spec.ID))
	case MsgClose:
		return wireStatus(c.CloseSession(req.Spec.ID))
	case MsgStats:
		return &Message{Type: MsgStatsResp, Stats: c.Stats()}
	default:
		return errMsg(CodeBadReq, fmt.Sprintf("unexpected message type 0x%02x", byte(req.Type)))
	}
}

// wireStatus maps a coordinator-level error onto a wire response,
// preserving remote codes end to end.
func wireStatus(err error) *Message {
	if err == nil {
		return okMsg()
	}
	var remote *RemoteError
	if errors.As(err, &remote) {
		return errMsg(remote.Code, remote.Text)
	}
	if errors.Is(err, ErrNoShards) {
		return errMsg(CodeAdmission, err.Error())
	}
	return errMsg(CodeInternal, err.Error())
}

// Close closes every cached shard connection. Shards themselves keep
// running; this only tears down the coordinator's side.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	for addr, cl := range c.clients {
		if err := cl.Close(); err != nil {
			errs = append(errs, err)
		}
		delete(c.clients, addr)
	}
	return errors.Join(errs...)
}
