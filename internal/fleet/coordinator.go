package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/session"
)

// ErrNoShards is returned when every shard is marked down.
var ErrNoShards = errors.New("fleet: no live shards")

// CoordinatorConfig configures a routing coordinator.
type CoordinatorConfig struct {
	// Shards are the worker addresses the ring is built over (required,
	// at least one).
	Shards []string
	// Vnodes per shard on the hash ring (<=0: 64).
	Vnodes int
	// Limits bounds decode budgets for shard responses (zero: defaults).
	Limits Limits
	// Store replicates session checkpoints (Replicate pulls .bbck bytes
	// from shards into it; shard-loss recovery resumes from it). Nil:
	// in-memory store — recovery then survives shard loss but not
	// coordinator loss.
	Store session.CheckpointStore
	// Stores, when non-empty, overrides Store with a quorum store
	// writing each checkpoint to ReplicaFactor of them and requiring
	// WriteQuorum successes (session.NewQuorumStore) — checkpoints then
	// survive replica loss, and a standby coordinator can TakeOver from
	// any surviving replica.
	Stores []session.CheckpointStore
	// ReplicaFactor is N, the stores written per checkpoint (<=0: all).
	ReplicaFactor int
	// WriteQuorum is W, the successes required per write (<=0: majority
	// of ReplicaFactor).
	WriteQuorum int
	// Timeouts bounds per-op I/O on shard connections opened by the
	// default dialer (zero fields: DefaultTimeouts).
	Timeouts Timeouts
	// Health tunes the shard health state machine, probe cadence, and
	// idempotent-op retry policy (zero fields: defaults).
	Health HealthConfig
	// Weights are initial per-shard capacity weights for weighted
	// vnodes (missing/<=0: 1; clamped to maxWeight). SetWeight changes
	// them live.
	Weights map[string]int
	// LoadTimeout bounds one shard's MsgLoad sample inside Loads
	// (<=0: 3s). Sampling uses short dedicated connections so a slow
	// shard costs one placeholder row, never a hung stats command.
	LoadTimeout time.Duration
	// Epoch is this coordinator's fencing epoch (0: 1). Every shard
	// connection declares it before carrying requests; shards reject
	// mutating requests from connections fenced below the highest epoch
	// they have seen, so a deposed coordinator's stale migrations die at
	// the shard instead of racing its successor's. TakeOver picks the
	// successor epoch automatically.
	Epoch uint64
	// Dial opens a client to a shard (nil: DialTimeouts over TCP).
	// Injectable for tests.
	Dial func(addr string, lim Limits) (*Client, error)
	// Logf receives routing and recovery diagnostics (nil: silent).
	Logf func(format string, args ...any)
}

// Coordinator consistent-hashes session ids onto worker shards and
// proxies the wire protocol to them. It layers three fleet behaviours
// on top of routing (DESIGN.md §15):
//
//   - Replication: Replicate pulls every session's current .bbck bytes
//     into the checkpoint store — the recovery floor.
//   - Live migration: Migrate detaches a running session from its
//     shard (drain + checkpoint + remove, no finalize), resumes it
//     bit-identically on the target, then atomically flips the route.
//   - Shard-loss recovery: a transport failure marks the shard down
//     and re-resumes every session it routed from the last replicated
//     checkpoint onto the survivors — the same supervisor pattern the
//     session layer applies to crashed workers, lifted one level up.
//
// Coordinator implements Handler, so Serve can front it with the same
// wire protocol the shards speak.
type Coordinator struct {
	cfg   CoordinatorConfig
	epoch uint64 // fencing epoch, immutable after construction

	mu        sync.Mutex
	ring      *Ring
	members   []string // live ring membership (Join/DrainShard mutate it)
	clients   map[string]*Client
	specs     map[string]OpenSpec // id -> open spec (recovery needs it)
	routes    map[string]string   // id -> addr override (migration/recovery)
	down      map[string]bool
	draining  map[string]bool          // shards mid-DrainShard: no new routes
	gates     map[string]chan struct{} // id -> in-flight migration barrier
	health    map[string]*shardHealth
	weights   map[string]int      // capacity weights for weighted vnodes
	probation map[string]bool     // re-admitted shards: new sessions only
	probPins  map[string][]string // probation shard -> ids pinned away from it

	rngMu sync.Mutex
	rng   *rand.Rand // retry jitter

	statusMu sync.Mutex
	statusFn func() AutopilotInfo // autopilot status provider (nil: none)

	deposed atomic.Bool // a peer reported a higher fencing epoch

	stop     chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup

	migrations  atomic.Uint64
	recoveries  atomic.Uint64 // sessions re-resumed after shard loss
	reopened    atomic.Uint64 // sessions lost with no checkpoint, reopened fresh
	shardsLost  atomic.Uint64
	recoverFail atomic.Uint64
	joins       atomic.Uint64
	drained     atomic.Uint64
	readmits    atomic.Uint64 // shards re-admitted after down
	promotions  atomic.Uint64 // shards promoted out of probation
	orphanDels  atomic.Uint64 // checkpoint deletes that left orphaned replicas
}

// NewCoordinator validates the config and builds the ring.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("fleet: CoordinatorConfig.Shards is required")
	}
	seen := map[string]bool{}
	for _, a := range cfg.Shards {
		if seen[a] {
			return nil, fmt.Errorf("fleet: duplicate shard address %q", a)
		}
		seen[a] = true
	}
	cfg.Limits = cfg.Limits.withDefaults()
	if len(cfg.Stores) > 0 {
		qs, err := session.NewQuorumStore(cfg.Stores, cfg.ReplicaFactor, cfg.WriteQuorum)
		if err != nil {
			return nil, err
		}
		cfg.Store = qs
	}
	if cfg.Store == nil {
		cfg.Store = session.NewMemStore()
	}
	cfg.Timeouts = cfg.Timeouts.withDefaults()
	cfg.Health = cfg.Health.withDefaults()
	if cfg.LoadTimeout <= 0 {
		cfg.LoadTimeout = 3 * time.Second
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = 1
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, lim Limits) (*Client, error) {
			return DialTimeouts(addr, lim, cfg.Timeouts)
		}
	}
	weights := map[string]int{}
	for a, w := range cfg.Weights {
		weights[a] = clampWeight(w)
	}
	c := &Coordinator{
		cfg:       cfg,
		epoch:     cfg.Epoch,
		ring:      NewRingWeighted(cfg.Shards, weights, cfg.Vnodes),
		members:   append([]string(nil), cfg.Shards...),
		clients:   map[string]*Client{},
		specs:     map[string]OpenSpec{},
		routes:    map[string]string{},
		down:      map[string]bool{},
		draining:  map[string]bool{},
		gates:     map[string]chan struct{}{},
		health:    map[string]*shardHealth{},
		weights:   weights,
		probation: map[string]bool{},
		probPins:  map[string][]string{},
		rng:       rand.New(rand.NewSource(cfg.Health.Seed)),
		stop:      make(chan struct{}),
	}
	for _, a := range c.members {
		c.health[a] = &shardHealth{}
	}
	if cfg.Health.ProbeInterval > 0 {
		c.probeWG.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// clampWeight normalises a capacity weight into [1, maxWeight].
func clampWeight(w int) int {
	if w <= 0 {
		return 1
	}
	if w > maxWeight {
		return maxWeight
	}
	return w
}

// ringLocked rebuilds the weighted ring from the current membership and
// weights. Caller holds c.mu.
func (c *Coordinator) ringLocked(members []string) *Ring {
	return NewRingWeighted(members, c.weights, c.cfg.Vnodes)
}

// routeLocked returns the shard currently owning id. Caller holds c.mu.
// A pinned override survives even onto a draining shard (that is the
// pin's job during the two-phase flip); ring lookups skip both down and
// draining shards so no NEW placement lands on a leaving member.
func (c *Coordinator) routeLocked(id string) string {
	if addr, ok := c.routes[id]; ok && !c.down[addr] {
		return addr
	}
	return c.ring.LookupSkip(id, func(a string) bool { return c.down[a] || c.draining[a] })
}

// RouteOf returns the shard address a session currently routes to
// ("" when every shard is down).
func (c *Coordinator) RouteOf(id string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.routeLocked(id)
}

// clientLocked returns (dialing if needed) the cached client for addr.
// A fresh connection immediately declares the coordinator's fencing
// epoch; a CodeFenced rejection means a successor holds a higher epoch
// — this coordinator is deposed and stops mutating the fleet.
// Caller holds c.mu.
func (c *Coordinator) clientLocked(addr string) (*Client, error) {
	if cl, ok := c.clients[addr]; ok {
		return cl, nil
	}
	cl, err := c.cfg.Dial(addr, c.cfg.Limits)
	if err != nil {
		return nil, err
	}
	if err := cl.Fence(c.epoch); err != nil {
		cl.Close()
		var remote *RemoteError
		if errors.As(err, &remote) && remote.Code == CodeFenced {
			c.deposed.Store(true)
			return nil, fmt.Errorf("%w: %s: %s", ErrDeposed, addr, remote.Text)
		}
		return nil, err
	}
	c.clients[addr] = cl
	return cl, nil
}

// dropClientLocked forgets (and closes) the cached client for addr.
func (c *Coordinator) dropClientLocked(addr string) {
	if cl, ok := c.clients[addr]; ok {
		cl.Close()
		delete(c.clients, addr)
	}
}

// waitGate blocks while a migration holds id's gate, so a frame is
// neither double-fed to the source nor dropped at the target during the
// two-phase route flip — it simply waits out the handover.
func (c *Coordinator) waitGate(id string) {
	for {
		c.mu.Lock()
		g, ok := c.gates[id]
		c.mu.Unlock()
		if !ok {
			return
		}
		<-g
	}
}

// idempotent reports whether a request can be retried after a timeout
// without risking double application. Feeds are not (the frame may
// have been applied before the deadline fired); reads and the drain
// barrier are.
func idempotent(t MsgType) bool {
	switch t {
	case MsgSnapshot, MsgCheckpoint, MsgStats, MsgPing, MsgDrain, MsgHealth:
		return true
	}
	return false
}

// doRouted runs one request against the shard owning id, absorbing
// shard loss: a hard transport failure (dial refused, connection
// reset — never a RemoteError) marks the shard down, recovers its
// sessions onto survivors, and retries on the new route. A deadline
// expiry instead feeds the health state machine — idempotent requests
// get capped-jitter retries, non-idempotent ones surface the
// *TimeoutError (unknown whether applied; the caller decides) — and
// only DownAfter consecutive timeouts escalate to shard loss. The loop
// is bounded — each iteration either succeeds, fails at the request
// level, spends a retry, or permanently removes one shard.
func (c *Coordinator) doRouted(id string, req *Message, want MsgType) (*Message, error) {
	if c.deposed.Load() {
		return nil, ErrDeposed
	}
	c.waitGate(id)
	retries := 0
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		limit := len(c.members) + c.cfg.Health.OpRetries + 1
		addr := c.routeLocked(id)
		c.mu.Unlock()
		if attempt >= limit || addr == "" {
			return nil, ErrNoShards
		}
		c.mu.Lock()
		cl, err := c.clientLocked(addr)
		c.mu.Unlock()
		if err == nil {
			resp, rerr := cl.do(req)
			if rerr == nil {
				c.markUp(addr)
				if resp.Type != want {
					return nil, fmt.Errorf("fleet: %s: response type 0x%02x, want 0x%02x: %w",
						addr, byte(resp.Type), byte(want), ErrBadMessage)
				}
				return resp, nil
			}
			var remote *RemoteError
			if errors.As(rerr, &remote) {
				if remote.Code == CodeFenced {
					c.deposed.Store(true)
					return nil, fmt.Errorf("%w: %s: %s", ErrDeposed, addr, remote.Text)
				}
				c.markUp(addr) // the shard answered; the request, not the peer, failed
				return nil, rerr
			}
			var to *TimeoutError
			if errors.As(rerr, &to) {
				if c.recordTimeout(addr) {
					c.logf("fleet: shard %s reached its timeout threshold; recovering", addr)
					c.handleShardLoss(addr)
					continue // re-route onto survivors
				}
				if idempotent(req.Type) && retries < c.cfg.Health.OpRetries {
					retries++
					c.backoff(retries)
					continue
				}
				return nil, rerr
			}
			err = rerr
		}
		if errors.Is(err, ErrDeposed) {
			return nil, err
		}
		c.logf("fleet: shard %s unreachable (%v); recovering", addr, err)
		c.handleShardLoss(addr)
	}
}

// handleShardLoss marks addr down and re-resumes every session it
// routed onto the survivors from the last replicated checkpoint (or a
// fresh open when none was ever taken). Sessions whose recovery fails
// on a survivor stay routed there and surface errors on their next
// request — the ring never wedges on one bad session.
func (c *Coordinator) handleShardLoss(addr string) {
	c.mu.Lock()
	if c.down[addr] {
		c.mu.Unlock()
		return
	}
	c.down[addr] = true
	if h := c.health[addr]; h != nil {
		h.state = HealthDown
	}
	// A probation shard that dies again forfeits its probation; the
	// pins recorded for it point at other (live) shards and simply
	// remain route overrides.
	delete(c.probation, addr)
	delete(c.probPins, addr)
	c.dropClientLocked(addr)
	c.shardsLost.Add(1)
	// Collect the orphaned sessions: everything whose current route —
	// override or ring arc — pointed at the lost shard. Ids mid-
	// migration (holding a gate) are skipped: the migration in flight
	// owns their recovery and will fall back to the store itself.
	var orphans []string
	for id := range c.specs {
		if _, gated := c.gates[id]; gated {
			continue
		}
		prev := c.routes[id]
		if prev == addr || (prev == "" && c.ring.LookupSkip(id, func(a string) bool { return (c.down[a] && a != addr) || c.draining[a] }) == addr) {
			orphans = append(orphans, id)
		}
	}
	sort.Strings(orphans)
	c.mu.Unlock()

	for _, id := range orphans {
		if err := c.recoverSession(id); err != nil {
			c.recoverFail.Add(1)
			c.logf("fleet: recover %q after loss of %s: %v", id, addr, err)
		}
	}
}

// recoverSession re-homes one session after shard loss: resume from
// the replicated checkpoint when one exists, otherwise reopen fresh
// from the recorded spec (everything since open is lost — the case
// Replicate exists to bound).
func (c *Coordinator) recoverSession(id string) error {
	c.mu.Lock()
	spec, ok := c.specs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("fleet: no spec recorded for %q", id)
	}
	addr := c.routeLocked(id)
	if addr == "" {
		c.mu.Unlock()
		return ErrNoShards
	}
	cl, err := c.clientLocked(addr)
	c.mu.Unlock()
	if err != nil {
		return err
	}

	ckpt, lerr := c.cfg.Store.Load(id)
	if lerr == nil {
		err = cl.Resume(spec, ckpt)
	} else {
		err = cl.Open(spec)
	}
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.routes[id] = addr
	c.mu.Unlock()
	if lerr == nil {
		c.recoveries.Add(1)
		c.logf("fleet: session %q re-resumed on %s from replicated checkpoint", id, addr)
	} else {
		c.reopened.Add(1)
		c.logf("fleet: session %q reopened fresh on %s (no replicated checkpoint)", id, addr)
	}
	return nil
}

// Open opens a fresh session on the shard owning spec.ID and records
// the spec for recovery.
func (c *Coordinator) Open(spec OpenSpec) error {
	c.mu.Lock()
	if _, exists := c.specs[spec.ID]; exists {
		c.mu.Unlock()
		return &RemoteError{Code: CodeExists, Text: fmt.Sprintf("session %q already routed", spec.ID)}
	}
	c.mu.Unlock()
	_, err := c.doRouted(spec.ID, &Message{Type: MsgOpen, Spec: spec}, MsgOK)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.specs[spec.ID] = spec
	c.mu.Unlock()
	c.saveMeta()
	return nil
}

// Resume registers a session from caller-provided checkpoint bytes
// (external ingest of a .bbck; fleet-internal recovery uses the store).
func (c *Coordinator) Resume(spec OpenSpec, ckpt []byte) error {
	c.mu.Lock()
	if _, exists := c.specs[spec.ID]; exists {
		c.mu.Unlock()
		return &RemoteError{Code: CodeExists, Text: fmt.Sprintf("session %q already routed", spec.ID)}
	}
	c.mu.Unlock()
	_, err := c.doRouted(spec.ID, &Message{Type: MsgResume, Spec: spec, Ckpt: ckpt}, MsgOK)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.specs[spec.ID] = spec
	c.mu.Unlock()
	c.saveMeta()
	return c.cfg.Store.Save(spec.ID, ckpt)
}

// Feed delivers one frame to a session, wherever it lives.
func (c *Coordinator) Feed(id string, f core.Frame) error {
	_, err := c.doRouted(id, &Message{Type: MsgFeed, Spec: OpenSpec{ID: id}, Frames: []core.Frame{f}}, MsgOK)
	return err
}

// FeedN delivers an ordered batch to a session.
func (c *Coordinator) FeedN(id string, frames []core.Frame) error {
	_, err := c.doRouted(id, &Message{Type: MsgFeedBatch, Spec: OpenSpec{ID: id}, Frames: frames}, MsgOK)
	return err
}

// Snapshot fetches a session's counters.
func (c *Coordinator) Snapshot(id string) (SnapInfo, error) {
	resp, err := c.doRouted(id, &Message{Type: MsgSnapshot, Spec: OpenSpec{ID: id}}, MsgSnapResp)
	if err != nil {
		return SnapInfo{}, err
	}
	return resp.Snap, nil
}

// Checkpoint fetches a session's current .bbck bytes (session keeps
// running) and replicates them into the store.
func (c *Coordinator) Checkpoint(id string) ([]byte, error) {
	resp, err := c.doRouted(id, &Message{Type: MsgCheckpoint, Spec: OpenSpec{ID: id}}, MsgCkptResp)
	if err != nil {
		return nil, err
	}
	if serr := c.cfg.Store.Save(id, resp.Ckpt); serr != nil {
		return resp.Ckpt, fmt.Errorf("fleet: replicate %q: %w", id, serr)
	}
	return resp.Ckpt, nil
}

// Drain blocks until every frame fed to the session has been processed.
func (c *Coordinator) Drain(id string) error {
	_, err := c.doRouted(id, &Message{Type: MsgDrain, Spec: OpenSpec{ID: id}}, MsgOK)
	return err
}

// CloseSession finalizes and removes a session fleet-wide: the shard
// finalizes it, the route and spec are forgotten, and the replicated
// checkpoint is deleted.
func (c *Coordinator) CloseSession(id string) error {
	_, err := c.doRouted(id, &Message{Type: MsgClose, Spec: OpenSpec{ID: id}}, MsgOK)
	if err != nil {
		return err
	}
	c.forget(id)
	return c.deleteCheckpoint(id)
}

// Detach drains and removes a session without finalizing and hands its
// .bbck bytes to the caller, which takes ownership (the fleet forgets
// the session).
func (c *Coordinator) Detach(id string) ([]byte, error) {
	resp, err := c.doRouted(id, &Message{Type: MsgDetach, Spec: OpenSpec{ID: id}}, MsgCkptResp)
	if err != nil {
		return nil, err
	}
	c.forget(id)
	return resp.Ckpt, c.deleteCheckpoint(id)
}

// deleteCheckpoint removes the id's replicated checkpoint. An
// *OrphanError — logical removal succeeded, some replica copies leaked
// — is absorbed here: the session is gone either way, the leak is
// counted (OrphanedDeletes) and logged, and the autopilot scrubber
// sweeps the leftover copies on its next pass.
func (c *Coordinator) deleteCheckpoint(id string) error {
	err := c.cfg.Store.Delete(id)
	var orphan *session.OrphanError
	if errors.As(err, &orphan) {
		c.orphanDels.Add(1)
		c.logf("fleet: delete %q: %d replica(s) orphaned (scrub will sweep): %v", id, orphan.Leftover, orphan.Err)
		return nil
	}
	return err
}

func (c *Coordinator) forget(id string) {
	c.mu.Lock()
	delete(c.specs, id)
	delete(c.routes, id)
	c.mu.Unlock()
	c.saveMeta()
}

// Replicate pulls every routed session's current checkpoint into the
// store — the floor shard-loss recovery resumes from. Transport
// failures trigger the same shard-loss handling as any routed request;
// per-session errors are joined, not fatal.
func (c *Coordinator) Replicate() error {
	c.mu.Lock()
	ids := make([]string, 0, len(c.specs))
	for id := range c.specs {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Strings(ids)
	var errs []error
	for _, id := range ids {
		if _, err := c.Checkpoint(id); err != nil {
			errs = append(errs, fmt.Errorf("replicate %q: %w", id, err))
		}
	}
	return errors.Join(errs...)
}

// Migrate live-migrates a session onto shard addr: drain + detach on
// the source (bit-exact .bbck, no finalize), resume on the target,
// then atomically flip the route. On a target-side failure the session
// is resumed back on the source, so a failed migration never loses the
// session. The detached bytes are also replicated — a migration
// produces a fresh checkpoint for free. Concurrent requests for the id
// wait out the handover instead of racing it.
func (c *Coordinator) Migrate(id string, addr string) error {
	c.mu.Lock()
	if _, ok := c.specs[id]; !ok {
		c.mu.Unlock()
		return &RemoteError{Code: CodeNoSession, Text: fmt.Sprintf("session %q not routed", id)}
	}
	if c.down[addr] {
		c.mu.Unlock()
		return fmt.Errorf("fleet: migrate %q: target %s is down", id, addr)
	}
	if c.probation[addr] {
		c.mu.Unlock()
		return fmt.Errorf("fleet: migrate %q: target %s is in probation (new sessions only)", id, addr)
	}
	member := false
	for _, a := range c.members {
		member = member || a == addr
	}
	c.mu.Unlock()
	if !member {
		return fmt.Errorf("fleet: migrate %q: %s is not a fleet member", id, addr)
	}
	return c.migrateSession(id, addr)
}

// Down returns the addresses currently marked down, sorted.
func (c *Coordinator) Down() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for a := range c.down {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Stats aggregates counters across live shards plus the coordinator's
// own routing state. Unreachable shards are skipped (and handled as
// lost), not errors.
func (c *Coordinator) Stats() StatsInfo {
	c.mu.Lock()
	addrs := make([]string, 0, len(c.members))
	for _, a := range c.members {
		if !c.down[a] {
			addrs = append(addrs, a)
		}
	}
	c.mu.Unlock()
	agg := StatsInfo{Migrations: c.migrations.Load() + c.recoveries.Load()}
	for _, addr := range addrs {
		c.mu.Lock()
		cl, err := c.clientLocked(addr)
		c.mu.Unlock()
		if err != nil {
			c.handleShardLoss(addr)
			continue
		}
		st, err := cl.Stats()
		if err != nil {
			var remote *RemoteError
			if !errors.As(err, &remote) {
				c.handleShardLoss(addr)
			}
			continue
		}
		agg.Open += st.Open
		agg.Opened += st.Opened
		agg.Restores += st.Restores
		agg.Restarts += st.Restarts
		agg.IDs = append(agg.IDs, st.IDs...)
	}
	sort.Strings(agg.IDs)
	return agg
}

// Recoveries returns (sessions re-resumed from checkpoints, sessions
// reopened fresh because no checkpoint existed, recovery failures)
// since start.
func (c *Coordinator) Recoveries() (resumed, reopened, failed uint64) {
	return c.recoveries.Load(), c.reopened.Load(), c.recoverFail.Load()
}

// Migrations returns completed live migrations since start.
func (c *Coordinator) Migrations() uint64 { return c.migrations.Load() }

// Readmissions returns (shards auto re-admitted after down, shards
// promoted out of probation) since start.
func (c *Coordinator) Readmissions() (readmitted, promoted uint64) {
	return c.readmits.Load(), c.promotions.Load()
}

// OrphanedDeletes returns the checkpoint deletes that met their quorum
// but left replicas behind (swept later by the scrubber).
func (c *Coordinator) OrphanedDeletes() uint64 { return c.orphanDels.Load() }

// Probation returns the shards currently in probation, sorted.
func (c *Coordinator) Probation() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for a := range c.probation {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// WeightOf returns addr's capacity weight (1 when never set).
func (c *Coordinator) WeightOf(addr string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.weights[addr]; ok {
		return w
	}
	return 1
}

// Store exposes the coordinator's checkpoint store — what the
// autopilot scrubber walks.
func (c *Coordinator) Store() session.CheckpointStore { return c.cfg.Store }

// RoutedIDs returns every session id the coordinator currently routes,
// sorted — the scrubber's live set.
func (c *Coordinator) RoutedIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.specs))
	for id := range c.specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// SetStatusProvider registers the autopilot's status hook; the
// coordinator answers MsgAutopilotStatus through it. A nil provider
// reports a zero (disabled) status.
func (c *Coordinator) SetStatusProvider(fn func() AutopilotInfo) {
	c.statusMu.Lock()
	c.statusFn = fn
	c.statusMu.Unlock()
}

// AutopilotStatus reports the registered autopilot's policy state,
// folding in the coordinator-side orphaned-delete counter.
func (c *Coordinator) AutopilotStatus() AutopilotInfo {
	c.statusMu.Lock()
	fn := c.statusFn
	c.statusMu.Unlock()
	var info AutopilotInfo
	if fn != nil {
		info = fn()
	}
	info.OrphanDels = c.orphanDels.Load()
	return info
}

// Members returns the current ring membership, sorted.
func (c *Coordinator) Members() []string {
	c.mu.Lock()
	out := append([]string(nil), c.members...)
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// Epoch returns the coordinator's fencing epoch.
func (c *Coordinator) Epoch() uint64 { return c.epoch }

// Deposed reports whether a peer rejected this coordinator's epoch —
// a successor with a higher epoch owns the fleet now, and every
// subsequent operation here fails with ErrDeposed.
func (c *Coordinator) Deposed() bool { return c.deposed.Load() }

// Depose self-fences the coordinator: every subsequent mutation fails
// with ErrDeposed. The lease elector calls this the moment it observes
// a successor holding the lease — belt to the shard-side fencing's
// suspenders, closing the window between losing the lease and the
// first CodeFenced rejection.
func (c *Coordinator) Depose() { c.deposed.Store(true) }

// Handle implements Handler, fronting the coordinator with the same
// wire protocol the shards speak (bgbuster serve).
func (c *Coordinator) Handle(req *Message) *Message {
	switch req.Type {
	case MsgPing:
		return okMsg()
	case MsgHealth:
		return &Message{Type: MsgHealthResp, Health: c.HealthSnapshot()}
	case MsgJoin:
		return wireStatus(c.Join(req.Addr))
	case MsgDrainShard:
		return wireStatus(c.DrainShard(req.Addr))
	case MsgSetWeight:
		return wireStatus(c.SetWeight(req.Addr, int(req.Weight)))
	case MsgLoad:
		return &Message{Type: MsgLoadResp, Loads: c.Loads()}
	case MsgAutopilotStatus:
		return &Message{Type: MsgAutopilotResp, Auto: c.AutopilotStatus()}
	case MsgOpen:
		return wireStatus(c.Open(req.Spec))
	case MsgResume:
		return wireStatus(c.Resume(req.Spec, req.Ckpt))
	case MsgFeed:
		return wireStatus(c.Feed(req.Spec.ID, req.Frames[0]))
	case MsgFeedBatch:
		return wireStatus(c.FeedN(req.Spec.ID, req.Frames))
	case MsgSnapshot:
		snap, err := c.Snapshot(req.Spec.ID)
		if err != nil {
			return wireStatus(err)
		}
		return &Message{Type: MsgSnapResp, Snap: snap}
	case MsgCheckpoint:
		ckpt, err := c.Checkpoint(req.Spec.ID)
		if err != nil {
			return wireStatus(err)
		}
		return &Message{Type: MsgCkptResp, Ckpt: ckpt}
	case MsgDetach:
		ckpt, err := c.Detach(req.Spec.ID)
		if err != nil {
			return wireStatus(err)
		}
		return &Message{Type: MsgCkptResp, Ckpt: ckpt}
	case MsgDrain:
		return wireStatus(c.Drain(req.Spec.ID))
	case MsgClose:
		return wireStatus(c.CloseSession(req.Spec.ID))
	case MsgStats:
		return &Message{Type: MsgStatsResp, Stats: c.Stats()}
	default:
		return errMsg(CodeBadReq, fmt.Sprintf("unexpected message type 0x%02x", byte(req.Type)))
	}
}

// wireStatus maps a coordinator-level error onto a wire response,
// preserving remote codes end to end.
func wireStatus(err error) *Message {
	if err == nil {
		return okMsg()
	}
	var remote *RemoteError
	if errors.As(err, &remote) {
		return errMsg(remote.Code, remote.Text)
	}
	if errors.Is(err, ErrNoShards) {
		return errMsg(CodeAdmission, err.Error())
	}
	if errors.Is(err, ErrDeposed) {
		return errMsg(CodeFenced, err.Error())
	}
	return errMsg(CodeInternal, err.Error())
}

// Close stops the probe loop and closes every cached shard connection.
// Shards themselves keep running; this only tears down the
// coordinator's side.
func (c *Coordinator) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	c.probeWG.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	var errs []error
	for addr, cl := range c.clients {
		if err := cl.Close(); err != nil {
			errs = append(errs, err)
		}
		delete(c.clients, addr)
	}
	return errors.Join(errs...)
}
