package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"github.com/bgbuster/bgbuster/internal/session"
)

// Coordinator failover (DESIGN.md §17). The active coordinator
// persists a small BBFM meta blob — fencing epoch, ring membership,
// open-session specs, CRC-sealed — into the (ideally quorum-
// replicated) checkpoint store alongside the .bbck checkpoints.
// A standby calls TakeOver: it reads the blob from any surviving
// replica, fences every shard at epoch+1 (deposing the old
// coordinator — shards reject its mutations with CodeFenced from that
// moment), rebuilds routing from live shard stats, and recovers any
// session found on no shard from its replicated checkpoint.

// ErrDeposed is returned by every coordinator operation after a peer
// reported a higher fencing epoch: a successor has taken over and this
// coordinator must stop mutating the fleet.
var ErrDeposed = errors.New("fleet: coordinator deposed by a higher epoch")

// ErrNoMeta is returned by TakeOver when the store holds no fleet
// metadata — there is nothing to take over from.
var ErrNoMeta = errors.New("fleet: no fleet metadata in checkpoint store")

// MetaKey is the reserved checkpoint-store id under which the
// coordinator persists its BBFM meta blob. Session ids may not use it.
const MetaKey = "__fleet_meta__"

var metaMagic = [4]byte{'B', 'B', 'F', 'M'}

const (
	// metaVersion 2 added a u16 capacity weight after each member
	// address; version-1 blobs (implicit weight 1) still decode.
	metaVersion     = 2
	metaMaxMembers  = 4096
	metaMaxSpecs    = 1 << 20
	metaMaxStrBytes = 1024
)

// fleetMeta is the decoded BBFM blob.
type fleetMeta struct {
	Epoch   uint64
	Vnodes  int
	Members []string
	Weights map[string]int
	Specs   []OpenSpec
}

func metaAppendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// encodeMeta serialises the blob: magic, u16 version, u64 epoch,
// u32 vnodes, u16 member count + per-member (length-prefixed addr,
// u16 weight), u32 spec count + per-spec (id, u16 W, u16 H, u8 flags,
// u64 seed), all little-endian, sealed with a trailing CRC32-IEEE of
// everything before it.
func encodeMeta(m fleetMeta) ([]byte, error) {
	if len(m.Members) > metaMaxMembers {
		return nil, fmt.Errorf("fleet: %d members exceed the meta budget %d", len(m.Members), metaMaxMembers)
	}
	if len(m.Specs) > metaMaxSpecs {
		return nil, fmt.Errorf("fleet: %d specs exceed the meta budget %d", len(m.Specs), metaMaxSpecs)
	}
	b := append([]byte(nil), metaMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, metaVersion)
	b = binary.LittleEndian.AppendUint64(b, m.Epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.Vnodes))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.Members)))
	for _, a := range m.Members {
		if len(a) > metaMaxStrBytes {
			return nil, fmt.Errorf("fleet: member address %d bytes long", len(a))
		}
		b = metaAppendStr(b, a)
		b = binary.LittleEndian.AppendUint16(b, uint16(clampWeight(m.Weights[a])))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Specs)))
	for _, s := range m.Specs {
		if len(s.ID) > metaMaxStrBytes {
			return nil, fmt.Errorf("fleet: session id %d bytes long", len(s.ID))
		}
		b = metaAppendStr(b, s.ID)
		b = binary.LittleEndian.AppendUint16(b, uint16(s.W))
		b = binary.LittleEndian.AppendUint16(b, uint16(s.H))
		var flags uint8
		if s.UnknownVB {
			flags = 1
		}
		b = append(b, flags)
		b = binary.LittleEndian.AppendUint64(b, uint64(s.Seed))
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b)), nil
}

// metaReader is a tiny bounds-checked cursor (the wire reader is
// message-shaped; the meta blob is store-shaped).
type metaReader struct {
	b   []byte
	off int
}

func (r *metaReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, fmt.Errorf("fleet: truncated meta blob at offset %d: %w", r.off, ErrBadMessage)
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *metaReader) u8() (uint8, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *metaReader) u16() (uint16, error) {
	b, err := r.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *metaReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *metaReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *metaReader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if int(n) > metaMaxStrBytes {
		return "", fmt.Errorf("fleet: meta string of %d bytes exceeds budget: %w", n, ErrBadMessage)
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// decodeMeta parses and CRC-verifies a BBFM blob.
func decodeMeta(b []byte) (fleetMeta, error) {
	var m fleetMeta
	if len(b) < len(metaMagic)+2+4 {
		return m, fmt.Errorf("fleet: meta blob of %d bytes too short: %w", len(b), ErrBadMessage)
	}
	if string(b[:4]) != string(metaMagic[:]) {
		return m, fmt.Errorf("fleet: bad meta magic %q: %w", b[:4], ErrBadMessage)
	}
	body, crc := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != crc {
		return m, fmt.Errorf("fleet: meta CRC mismatch (stored %08x, computed %08x): %w", crc, got, ErrBadMessage)
	}
	r := &metaReader{b: body, off: 4}
	ver, err := r.u16()
	if err != nil {
		return m, err
	}
	if ver != 1 && ver != metaVersion {
		return m, fmt.Errorf("fleet: meta version %d: %w", ver, ErrVersion)
	}
	if m.Epoch, err = r.u64(); err != nil {
		return m, err
	}
	vnodes, err := r.u32()
	if err != nil {
		return m, err
	}
	m.Vnodes = int(vnodes)
	nm, err := r.u16()
	if err != nil {
		return m, err
	}
	if int(nm) > metaMaxMembers {
		return m, fmt.Errorf("fleet: %d meta members exceed budget: %w", nm, ErrBadMessage)
	}
	for i := 0; i < int(nm); i++ {
		a, err := r.str()
		if err != nil {
			return m, err
		}
		m.Members = append(m.Members, a)
		if ver >= 2 {
			w, err := r.u16()
			if err != nil {
				return m, err
			}
			if w == 0 || int(w) > maxWeight {
				return m, fmt.Errorf("fleet: meta weight %d out of range: %w", w, ErrBadMessage)
			}
			if w != 1 {
				if m.Weights == nil {
					m.Weights = map[string]int{}
				}
				m.Weights[a] = int(w)
			}
		}
	}
	ns, err := r.u32()
	if err != nil {
		return m, err
	}
	if int64(ns) > metaMaxSpecs {
		return m, fmt.Errorf("fleet: %d meta specs exceed budget: %w", ns, ErrBadMessage)
	}
	// Each spec costs >= 15 bytes; verify the advertised count against
	// the bytes actually present before reserving anything.
	if remaining := len(r.b) - r.off; int64(remaining) < 15*int64(ns) {
		return m, fmt.Errorf("fleet: %d meta specs advertised, %d bytes present: %w", ns, remaining, ErrBadMessage)
	}
	for i := uint32(0); i < ns; i++ {
		var s OpenSpec
		if s.ID, err = r.str(); err != nil {
			return m, err
		}
		w, err := r.u16()
		if err != nil {
			return m, err
		}
		h, err := r.u16()
		if err != nil {
			return m, err
		}
		s.W, s.H = int(w), int(h)
		flags, err := r.u8()
		if err != nil {
			return m, err
		}
		if flags&^0x01 != 0 {
			return m, fmt.Errorf("fleet: nonzero meta spec flag padding: %w", ErrBadMessage)
		}
		s.UnknownVB = flags&1 != 0
		seed, err := r.u64()
		if err != nil {
			return m, err
		}
		s.Seed = int64(seed)
		m.Specs = append(m.Specs, s)
	}
	if r.off != len(r.b) {
		return m, fmt.Errorf("fleet: %d trailing meta bytes: %w", len(r.b)-r.off, ErrBadMessage)
	}
	return m, nil
}

// VerifyMeta parses and CRC-verifies a BBFM meta blob without acting
// on it — the scrubber's integrity hook for the reserved meta record.
func VerifyMeta(b []byte) error {
	_, err := decodeMeta(b)
	return err
}

// saveMeta persists the coordinator's current epoch, membership, and
// session specs into the store — the breadcrumb a standby takes over
// from. Best-effort: a failed write is logged, not fatal (the next
// state change retries it).
func (c *Coordinator) saveMeta() {
	c.mu.Lock()
	m := fleetMeta{Epoch: c.epoch, Vnodes: c.cfg.Vnodes, Members: append([]string(nil), c.members...)}
	for a, w := range c.weights {
		if clampWeight(w) != 1 {
			if m.Weights == nil {
				m.Weights = map[string]int{}
			}
			m.Weights[a] = clampWeight(w)
		}
	}
	ids := make([]string, 0, len(c.specs))
	for id := range c.specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m.Specs = append(m.Specs, c.specs[id])
	}
	c.mu.Unlock()
	blob, err := encodeMeta(m)
	if err == nil {
		err = c.cfg.Store.Save(MetaKey, blob)
	}
	if err != nil {
		c.logf("fleet: persist meta: %v", err)
	}
}

// resolveStore applies the same Store/Stores precedence NewCoordinator
// does, without requiring a live coordinator.
func resolveStore(cfg CoordinatorConfig) (session.CheckpointStore, error) {
	if len(cfg.Stores) > 0 {
		return session.NewQuorumStore(cfg.Stores, cfg.ReplicaFactor, cfg.WriteQuorum)
	}
	if cfg.Store == nil {
		return nil, errors.New("fleet: takeover requires a checkpoint store (Store or Stores)")
	}
	return cfg.Store, nil
}

// TakeOver promotes a standby into the active coordinator. cfg.Shards
// is ignored — membership comes from the persisted meta blob; the
// store fields must point at (a surviving replica of) the deposed
// coordinator's stores. The standby:
//
//  1. loads and verifies the BBFM blob,
//  2. assumes epoch+1 and fences every member shard with it — from
//     that instant the old coordinator's mutations die with CodeFenced,
//  3. rebuilds routing from live shard stats (reality wins over any
//     stale record of placement),
//  4. re-resumes every session found on no shard from its replicated
//     checkpoint.
//
// Unreachable shards are marked down exactly as if they had failed
// under the old coordinator.
func TakeOver(cfg CoordinatorConfig) (*Coordinator, error) {
	store, err := resolveStore(cfg)
	if err != nil {
		return nil, err
	}
	blob, err := store.Load(MetaKey)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoMeta, err)
	}
	m, err := decodeMeta(blob)
	if err != nil {
		return nil, fmt.Errorf("fleet: takeover: %w", err)
	}
	if len(m.Members) == 0 {
		return nil, errors.New("fleet: takeover: meta blob lists no members")
	}
	cfg.Shards = m.Members
	if cfg.Vnodes == 0 {
		cfg.Vnodes = m.Vnodes
	}
	if cfg.Weights == nil {
		cfg.Weights = m.Weights
	}
	if cfg.Epoch <= m.Epoch {
		cfg.Epoch = m.Epoch + 1
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	for _, s := range m.Specs {
		c.specs[s.ID] = s
	}
	c.mu.Unlock()

	// Fence every shard at the new epoch and learn what actually lives
	// where. Dialing fences (clientLocked); stats enumerate placement.
	located := map[string]bool{}
	for _, addr := range m.Members {
		c.mu.Lock()
		cl, cerr := c.clientLocked(addr)
		c.mu.Unlock()
		var st StatsInfo
		if cerr == nil {
			st, cerr = cl.Stats()
		}
		if cerr != nil {
			if errors.Is(cerr, ErrDeposed) {
				c.Close()
				return nil, fmt.Errorf("fleet: takeover raced a higher epoch: %w", cerr)
			}
			c.logf("fleet: takeover: shard %s unreachable (%v); marking down", addr, cerr)
			c.mu.Lock()
			c.down[addr] = true
			if h := c.health[addr]; h != nil {
				h.state = HealthDown
			}
			c.dropClientLocked(addr)
			c.mu.Unlock()
			continue
		}
		c.mu.Lock()
		for _, id := range st.IDs {
			if located[id] {
				c.logf("fleet: takeover: session %q found on %s and %s; keeping the first", id, c.routes[id], addr)
				continue
			}
			located[id] = true
			c.routes[id] = addr
		}
		c.mu.Unlock()
	}

	// Recover every recorded session found on no live shard.
	var orphans []string
	c.mu.Lock()
	for id := range c.specs {
		if !located[id] {
			orphans = append(orphans, id)
		}
	}
	c.mu.Unlock()
	sort.Strings(orphans)
	for _, id := range orphans {
		if err := c.recoverSession(id); err != nil {
			c.recoverFail.Add(1)
			c.logf("fleet: takeover: recover %q: %v", id, err)
		}
	}
	c.saveMeta()
	c.logf("fleet: takeover complete: epoch %d, %d members, %d sessions (%d recovered)",
		c.epoch, len(m.Members), len(m.Specs), len(orphans))
	return c, nil
}
