package fleet

import (
	"bytes"
	"testing"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/faultinject"
	"github.com/bgbuster/bgbuster/internal/gallery"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/session"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// galleryLeakStream is one meeting participant's camera at the fleet
// test geometry: the "flat" VB with a per-participant-colored moving
// leak rectangle, so checkpoints differ per prefix and the demuxer can
// track participants by content.
func galleryLeakStream(pi, n int) *vidstream.Video {
	colors := []imagex.RGB{
		{R: 240, G: 240, B: 60}, {R: 240, G: 60, B: 240}, {R: 60, G: 240, B: 240},
		{R: 250, G: 160, B: 30}, {R: 30, G: 250, B: 120}, {R: 160, G: 30, B: 250},
		{R: 250, G: 250, B: 250}, {R: 150, G: 90, B: 60},
	}
	c := colors[pi%len(colors)]
	v := vidstream.New(30)
	for i := 0; i < n; i++ {
		f := imagex.NewFilled(fw, fh, imagex.RGB{R: 20, G: 120, B: 220})
		x0 := 4 + (i+pi)%8
		y0 := 6 + pi%4
		for y := y0; y < y0+18 && y < fh; y++ {
			for x := x0; x < x0+16; x++ {
				f.Set(x, y, c)
			}
		}
		if err := v.Append(f); err != nil {
			panic(err)
		}
	}
	return v
}

// recordingAPI wraps a SessionAPI and logs every frame fed per id —
// the ground truth a recovery needs to refeed the at-risk window after
// a shard loss rewinds sessions to their replicated checkpoints.
type recordingAPI struct {
	SessionAPI
	fed map[string][]core.Frame
}

func (r *recordingAPI) Feed(id string, f core.Frame) error {
	r.fed[id] = append(r.fed[id], f)
	return r.SessionAPI.Feed(id, f)
}

// TestGalleryFleetSoakShardLoss is the gallery soak: a 7-participant
// meeting (one mid-call join, one mid-call leave) is composited into
// one stream, delivered under seeded drop/dup chaos, and fanned out
// through a coordinator onto two shards. One shard is killed
// mid-meeting; the coordinator must recover its participants
// bit-identically from replicated checkpoints, the feeder refeeds the
// at-risk window from its delivery log, and at meeting end EVERY
// participant session — including the one that left early — matches a
// plain local manager fed the demuxed sub-streams directly.
func TestGalleryFleetSoakShardLoss(t *testing.T) {
	const (
		nBase       = 6  // participants from frame 0
		joinAt      = 8  // one more joins here (grid resize)
		leaveLocal  = 20 // participant 0's stream length (leaves mid-call)
		meetingLen  = 26
		replicateAt = 12 // delivered frames before the replication pull
		killAt      = 14 // delivered frames before the shard dies
	)

	parts := make([]gallery.Participant, 0, nBase+1)
	for i := 0; i < nBase; i++ {
		length := meetingLen
		if i == 0 {
			length = leaveLocal
		}
		parts = append(parts, gallery.Participant{Frames: galleryLeakStream(i, length), JoinAt: 0})
	}
	parts = append(parts, gallery.Participant{Frames: galleryLeakStream(nBase, meetingLen-joinAt), JoinAt: joinAt})
	res, err := gallery.Compose(parts, gallery.Spec{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// The delivery schedule the meeting actually experiences: seeded
	// drops and duplicates of whole composite frames.
	inj := faultinject.New(faultinject.Profile{Seed: 11, Drop: 0.08, Dup: 0.08})
	oracles := make([]*imagex.Mask, res.Video.Len())
	cw, ch := res.Video.Size()
	for i := range oracles {
		oracles[i] = imagex.NewMask(cw, ch)
	}
	delivery := inj.Apply(res.Video.Frames, oracles)
	if len(delivery) <= killAt+2 {
		t.Fatalf("delivery schedule too short (%d) for the kill point", len(delivery))
	}
	t.Logf("delivery: %d frames from %d composed (%v)", len(delivery), res.Video.Len(), inj.Counters())

	// Local baseline: demux the SAME delivered sequence standalone and
	// feed each lane straight into a plain manager. The fleet leg must
	// end bit-identical to this despite the shard kill.
	demuxCfg := gallery.Config{}
	delivered := vidstream.New(30)
	for _, d := range delivery {
		if err := delivered.Append(d.Img); err != nil {
			t.Fatal(err)
		}
	}
	baseLanes, baseStats, err := gallery.SplitVideo(delivered, demuxCfg)
	if err != nil {
		t.Fatalf("baseline SplitVideo: %v", err)
	}
	if len(baseLanes) != nBase+1 {
		t.Fatalf("baseline demux found %d lanes, want %d (stats %+v)", len(baseLanes), nBase+1, baseStats)
	}
	spec0 := OpenSpec{W: fw, H: fh, Seed: 1}
	base := session.NewManager(session.Config{QueueDepth: 256})
	defer base.Close()
	wantBytes := map[string][]byte{} // tile id -> final checkpoint bytes
	emptyOracle := imagex.NewMask(fw, fh)
	for _, ls := range baseLanes {
		id := gallery.DefaultTileID(ls.Lane)
		bs, err := base.Open("base-"+id, fw, fh, fleetTestOptions(spec0))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range ls.Video.Frames {
			if err := bs.Feed(f, emptyOracle); err != nil {
				t.Fatal(err)
			}
		}
		data, err := bs.Detach()
		if err != nil {
			t.Fatal(err)
		}
		wantBytes[id] = data
	}

	// Fleet leg: coordinator over two shards, gallery fan-out on top.
	sA, sB := startShard(t), startShard(t)
	store := session.NewMemStore()
	coord, err := NewCoordinator(CoordinatorConfig{
		Shards: []string{sA.addr, sB.addr},
		Store:  store,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	rec := &recordingAPI{SessionAPI: coord, fed: map[string][]core.Frame{}}
	fan, sink := NewGalleryFanout(demuxCfg, rec)
	sink.SpecFor = func(id string, w, h int) OpenSpec {
		return OpenSpec{ID: id, W: w, H: h, Seed: 1}
	}

	openIDs := func() []string {
		var ids []string
		for _, lane := range fan.Demux().Lanes() {
			ids = append(ids, gallery.DefaultTileID(lane))
		}
		return ids
	}
	feedRange := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if _, err := fan.Feed(delivery[i].Img); err != nil {
				t.Fatalf("composite frame %d: %v", i, err)
			}
		}
	}

	feedRange(0, replicateAt)
	// Random ports occasionally hash every tile onto one shard; migrate
	// one tile over — before the replicate snapshot below, so its stored
	// checkpoint matches the others' — and the kill later always loses
	// sessions.
	{
		byShard := map[string][]string{}
		for _, id := range openIDs() {
			byShard[coord.RouteOf(id)] = append(byShard[coord.RouteOf(id)], id)
		}
		for _, pair := range [][2]string{{sA.addr, sB.addr}, {sB.addr, sA.addr}} {
			from, to := pair[0], pair[1]
			if len(byShard[to]) == 0 {
				id := byShard[from][0]
				if err := coord.Migrate(id, to); err != nil {
					t.Fatalf("forcing meeting to span both shards: %v", err)
				}
				byShard[from] = byShard[from][1:]
				byShard[to] = []string{id}
			}
		}
	}
	for _, id := range openIDs() {
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Replicate(); err != nil {
		t.Fatal(err)
	}
	replicated := map[string][]byte{}
	for _, id := range openIDs() {
		b, err := store.Load(id)
		if err != nil {
			t.Fatalf("replicated checkpoint missing for %s: %v", id, err)
		}
		replicated[id] = b
	}

	// The at-risk window, then the kill between composite frames.
	feedRange(replicateAt, killAt)
	byShard := map[string][]string{}
	for _, id := range openIDs() {
		byShard[coord.RouteOf(id)] = append(byShard[coord.RouteOf(id)], id)
	}
	if len(byShard[sA.addr]) == 0 || len(byShard[sB.addr]) == 0 {
		t.Fatalf("meeting does not span both shards: %v", byShard)
	}
	lost := byShard[sB.addr]
	sB.ln.Kill()

	// One routed request to a lost session recovers every orphan of
	// the dead shard from its replicated checkpoint.
	if _, err := coord.Snapshot(lost[0]); err != nil {
		t.Fatalf("snapshot across shard loss: %v", err)
	}
	if down := coord.Down(); len(down) != 1 || down[0] != sB.addr {
		t.Fatalf("down = %v, want [%s]", down, sB.addr)
	}
	for _, id := range lost {
		if coord.RouteOf(id) != sA.addr {
			t.Fatalf("%s not re-routed to survivor", id)
		}
		got, err := coord.Checkpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, replicated[id]) {
			t.Fatalf("%s: recovered state not bit-identical to replicated checkpoint", id)
		}
	}

	// Refeed each session's at-risk gap from the delivery log, then
	// carry the meeting on through the fan-out.
	for _, id := range openIDs() {
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
		snap, err := coord.Snapshot(id)
		if err != nil {
			t.Fatal(err)
		}
		logged := rec.fed[id]
		if int(snap.StreamFrames) > len(logged) {
			t.Fatalf("%s: session at %d frames but only %d logged", id, snap.StreamFrames, len(logged))
		}
		for _, f := range logged[snap.StreamFrames:] {
			if err := coord.Feed(id, f); err != nil {
				t.Fatalf("refeed %s: %v", id, err)
			}
		}
		rec.fed[id] = logged // refeeds bypass the recorder on purpose
	}
	feedRange(killAt, len(delivery))

	// Meeting over: compare every participant with the local baseline.
	// The early leaver was detached by the sink; everyone else drains
	// and detaches through the coordinator.
	checked := 0
	for _, ls := range baseLanes {
		id := gallery.DefaultTileID(ls.Lane)
		want := wantBytes[id]
		if data, ok := sink.Detached(id); ok {
			if !bytes.Equal(data, want) {
				t.Errorf("%s (left early): detach snapshot diverged from baseline (%d vs %d bytes)", id, len(data), len(want))
			}
			checked++
			continue
		}
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
		got, err := coord.Detach(id)
		if err != nil {
			t.Fatalf("detach %s: %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: post-recovery state diverged from baseline (%d vs %d bytes)", id, len(got), len(want))
		}
		checked++
	}
	if checked != nBase+1 {
		t.Fatalf("checked %d participants, want %d", checked, nBase+1)
	}
	resumed, reopened, failed := coord.Recoveries()
	t.Logf("recoveries: %d resumed, %d reopened, %d failed; demux %+v", resumed, reopened, failed, fan.Demux().Stats())
	if resumed != uint64(len(lost)) || failed != 0 {
		t.Errorf("recoveries = (%d, %d, %d), want (%d resumed, 0 reopened, 0 failed)", resumed, reopened, failed, len(lost))
	}
}
