package fleet

import (
	"fmt"
	"testing"
)

// ringKeys hashes a deterministic id population onto a ring.
func ringKeys(r *Ring, n int) map[string]string {
	owners := make(map[string]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("meeting-%04d", i)
		owners[id] = r.Lookup(id)
	}
	return owners
}

// TestRingJoinMovesMinimally is the membership property Join depends
// on: growing the ring by one shard only remaps ids onto the NEW shard
// — no id moves between two surviving shards — and the moved fraction
// is near the ideal 1/(n+1).
func TestRingJoinMovesMinimally(t *testing.T) {
	const keys = 4096
	for n := 2; n <= 8; n++ {
		var shards []string
		for i := 0; i < n; i++ {
			shards = append(shards, fmt.Sprintf("10.0.0.%d:7000", i))
		}
		joined := fmt.Sprintf("10.0.0.%d:7000", n)
		before := ringKeys(NewRing(shards, 0), keys)
		after := ringKeys(NewRing(append(shards, joined), 0), keys)
		moved := 0
		for id, old := range before {
			now := after[id]
			if now == old {
				continue
			}
			moved++
			if now != joined {
				t.Fatalf("n=%d: id %q moved %s -> %s, neither the joined shard", n, id, old, now)
			}
		}
		ideal := keys / (n + 1)
		if moved > 2*ideal {
			t.Errorf("n=%d: %d of %d ids moved on join, over 2x the ideal %d", n, moved, keys, ideal)
		}
		if moved == 0 {
			t.Errorf("n=%d: the joined shard attracted no ids", n)
		}
	}
}

// TestRingRemoveMovesMinimally is the drain-side property: shrinking
// the ring only remaps the removed shard's ids, spreading them over
// the survivors instead of dumping them on one neighbour.
func TestRingRemoveMovesMinimally(t *testing.T) {
	const keys = 4096
	shards := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	removed := "c:3"
	var survivors []string
	for _, s := range shards {
		if s != removed {
			survivors = append(survivors, s)
		}
	}
	before := ringKeys(NewRing(shards, 0), keys)
	after := ringKeys(NewRing(survivors, 0), keys)
	inherited := map[string]int{}
	for id, old := range before {
		if old != removed {
			if after[id] != old {
				t.Fatalf("id %q moved %s -> %s though its shard survived", id, old, after[id])
			}
			continue
		}
		inherited[after[id]]++
	}
	if len(inherited) < len(survivors)-1 {
		t.Errorf("removed shard's ids landed on only %d of %d survivors: %v",
			len(inherited), len(survivors), inherited)
	}
}

// TestRingBalanceBounds checks the load spread the vnode count buys:
// with 64 vnodes per shard no shard owns more than ~2x its fair share
// of a large id population.
func TestRingBalanceBounds(t *testing.T) {
	const keys = 8192
	for _, n := range []int{3, 5, 9} {
		var shards []string
		for i := 0; i < n; i++ {
			shards = append(shards, fmt.Sprintf("shard-%02d.example:7000", i))
		}
		load := map[string]int{}
		for id, owner := range ringKeys(NewRing(shards, 0), keys) {
			_ = id
			load[owner]++
		}
		if len(load) != n {
			t.Fatalf("n=%d: only %d shards own keys: %v", n, len(load), load)
		}
		fair := keys / n
		for s, got := range load {
			if got > 2*fair {
				t.Errorf("n=%d: shard %s owns %d keys, over 2x the fair share %d", n, s, got, fair)
			}
			if got < fair/4 {
				t.Errorf("n=%d: shard %s owns %d keys, under a quarter of the fair share %d", n, s, got, fair)
			}
		}
	}
}

// TestRingLookupSkipConsistent: routing around a down shard sends each
// of its ids to a fixed survivor (deterministic), and ids of healthy
// shards do not move at all.
func TestRingLookupSkipConsistent(t *testing.T) {
	shards := []string{"a:1", "b:2", "c:3", "d:4"}
	r := NewRing(shards, 0)
	skip := func(a string) bool { return a == "b:2" }
	for i := 0; i < 512; i++ {
		id := fmt.Sprintf("call-%03d", i)
		direct := r.Lookup(id)
		routed := r.LookupSkip(id, skip)
		if direct != "b:2" && routed != direct {
			t.Fatalf("id %q rerouted %s -> %s though its shard is up", id, direct, routed)
		}
		if direct == "b:2" {
			if routed == "b:2" || routed == "" {
				t.Fatalf("id %q still routed to the skipped shard (%q)", id, routed)
			}
			if again := r.LookupSkip(id, skip); again != routed {
				t.Fatalf("id %q reroute flapped %s -> %s", id, routed, again)
			}
		}
	}
}
