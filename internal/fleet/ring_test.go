package fleet

import (
	"fmt"
	"testing"
)

// ringKeys hashes a deterministic id population onto a ring.
func ringKeys(r *Ring, n int) map[string]string {
	owners := make(map[string]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("meeting-%04d", i)
		owners[id] = r.Lookup(id)
	}
	return owners
}

// TestRingJoinMovesMinimally is the membership property Join depends
// on: growing the ring by one shard only remaps ids onto the NEW shard
// — no id moves between two surviving shards — and the moved fraction
// is near the ideal 1/(n+1).
func TestRingJoinMovesMinimally(t *testing.T) {
	const keys = 4096
	for n := 2; n <= 8; n++ {
		var shards []string
		for i := 0; i < n; i++ {
			shards = append(shards, fmt.Sprintf("10.0.0.%d:7000", i))
		}
		joined := fmt.Sprintf("10.0.0.%d:7000", n)
		before := ringKeys(NewRing(shards, 0), keys)
		after := ringKeys(NewRing(append(shards, joined), 0), keys)
		moved := 0
		for id, old := range before {
			now := after[id]
			if now == old {
				continue
			}
			moved++
			if now != joined {
				t.Fatalf("n=%d: id %q moved %s -> %s, neither the joined shard", n, id, old, now)
			}
		}
		ideal := keys / (n + 1)
		if moved > 2*ideal {
			t.Errorf("n=%d: %d of %d ids moved on join, over 2x the ideal %d", n, moved, keys, ideal)
		}
		if moved == 0 {
			t.Errorf("n=%d: the joined shard attracted no ids", n)
		}
	}
}

// TestRingRemoveMovesMinimally is the drain-side property: shrinking
// the ring only remaps the removed shard's ids, spreading them over
// the survivors instead of dumping them on one neighbour.
func TestRingRemoveMovesMinimally(t *testing.T) {
	const keys = 4096
	shards := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	removed := "c:3"
	var survivors []string
	for _, s := range shards {
		if s != removed {
			survivors = append(survivors, s)
		}
	}
	before := ringKeys(NewRing(shards, 0), keys)
	after := ringKeys(NewRing(survivors, 0), keys)
	inherited := map[string]int{}
	for id, old := range before {
		if old != removed {
			if after[id] != old {
				t.Fatalf("id %q moved %s -> %s though its shard survived", id, old, after[id])
			}
			continue
		}
		inherited[after[id]]++
	}
	if len(inherited) < len(survivors)-1 {
		t.Errorf("removed shard's ids landed on only %d of %d survivors: %v",
			len(inherited), len(survivors), inherited)
	}
}

// TestRingBalanceBounds checks the load spread the vnode count buys:
// with 64 vnodes per shard no shard owns more than ~2x its fair share
// of a large id population.
func TestRingBalanceBounds(t *testing.T) {
	const keys = 8192
	for _, n := range []int{3, 5, 9} {
		var shards []string
		for i := 0; i < n; i++ {
			shards = append(shards, fmt.Sprintf("shard-%02d.example:7000", i))
		}
		load := map[string]int{}
		for id, owner := range ringKeys(NewRing(shards, 0), keys) {
			_ = id
			load[owner]++
		}
		if len(load) != n {
			t.Fatalf("n=%d: only %d shards own keys: %v", n, len(load), load)
		}
		fair := keys / n
		for s, got := range load {
			if got > 2*fair {
				t.Errorf("n=%d: shard %s owns %d keys, over 2x the fair share %d", n, s, got, fair)
			}
			if got < fair/4 {
				t.Errorf("n=%d: shard %s owns %d keys, under a quarter of the fair share %d", n, s, got, fair)
			}
		}
	}
}

// TestRingLookupSkipConsistent: routing around a down shard sends each
// of its ids to a fixed survivor (deterministic), and ids of healthy
// shards do not move at all.
func TestRingLookupSkipConsistent(t *testing.T) {
	shards := []string{"a:1", "b:2", "c:3", "d:4"}
	r := NewRing(shards, 0)
	skip := func(a string) bool { return a == "b:2" }
	for i := 0; i < 512; i++ {
		id := fmt.Sprintf("call-%03d", i)
		direct := r.Lookup(id)
		routed := r.LookupSkip(id, skip)
		if direct != "b:2" && routed != direct {
			t.Fatalf("id %q rerouted %s -> %s though its shard is up", id, direct, routed)
		}
		if direct == "b:2" {
			if routed == "b:2" || routed == "" {
				t.Fatalf("id %q still routed to the skipped shard (%q)", id, routed)
			}
			if again := r.LookupSkip(id, skip); again != routed {
				t.Fatalf("id %q reroute flapped %s -> %s", id, routed, again)
			}
		}
	}
}

// TestRingWeightedProportions: a weight-w shard should own roughly w
// times the keys of a weight-1 shard, and clamping should hold weights
// to [1, maxWeight].
func TestRingWeightedProportions(t *testing.T) {
	const keys = 8192
	shards := []string{"a:1", "b:2", "c:3"}
	weights := map[string]int{"b:2": 3}
	load := map[string]int{}
	for _, owner := range ringKeys(NewRingWeighted(shards, weights, 0), keys) {
		load[owner]++
	}
	// b holds 3 of 5 total weight units; each of a and c holds 1.
	unit := keys / 5
	if got := load["b:2"]; got < 2*unit || got > 4*unit {
		t.Errorf("weight-3 shard owns %d keys, want about %d", got, 3*unit)
	}
	for _, s := range []string{"a:1", "c:3"} {
		if got := load[s]; got < unit/2 || got > 2*unit {
			t.Errorf("weight-1 shard %s owns %d keys, want about %d", s, got, unit)
		}
	}

	// Zero/negative weights behave as 1; absurd weights clamp to
	// maxWeight instead of drowning the ring.
	same := ringKeys(NewRingWeighted(shards, map[string]int{"a:1": 0, "b:2": -5}, 0), keys)
	base := ringKeys(NewRing(shards, 0), keys)
	for id, owner := range base {
		if same[id] != owner {
			t.Fatalf("id %q moved under no-op weights: %s -> %s", id, owner, same[id])
		}
	}
	clamped := NewRingWeighted(shards, map[string]int{"b:2": 1 << 20}, 0)
	capped := NewRingWeighted(shards, map[string]int{"b:2": maxWeight}, 0)
	for i := 0; i < 512; i++ {
		id := fmt.Sprintf("clamp-%03d", i)
		if clamped.Lookup(id) != capped.Lookup(id) {
			t.Fatalf("id %q: weight beyond maxWeight was not clamped", id)
		}
	}
}

// TestRingWeightChangeMovesMinimally: raising one shard's weight moves
// ids ONTO that shard only — base vnode labels are a prefix of the
// weighted labels, so no id migrates between two unchanged shards.
func TestRingWeightChangeMovesMinimally(t *testing.T) {
	const keys = 4096
	shards := []string{"a:1", "b:2", "c:3", "d:4"}
	before := ringKeys(NewRing(shards, 0), keys)
	after := ringKeys(NewRingWeighted(shards, map[string]int{"c:3": 2}, 0), keys)
	moved := 0
	for id, old := range before {
		if after[id] == old {
			continue
		}
		moved++
		if after[id] != "c:3" {
			t.Fatalf("id %q moved %s -> %s on c:3's weight change", id, old, after[id])
		}
	}
	if moved == 0 {
		t.Error("doubling a weight attracted no ids")
	}
	// Ideal attraction: c goes from 1/4 to 2/5 of the ring.
	ideal := keys*2/5 - keys/4
	if moved > 2*ideal {
		t.Errorf("%d ids moved on weight change, over 2x the ideal %d", moved, ideal)
	}
}
