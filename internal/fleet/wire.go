// Package fleet shards the live-call session layer across processes: a
// stdlib-only wire protocol (net + the repo's binary codecs) carries
// frame ingest, snapshot queries and checkpoint transfer between a
// coordinator and worker shards, and checkpoint-based live migration
// moves a running session between shards without losing a bit — the
// .bbck bit-identical resume guarantee (DESIGN.md §11) makes the
// migration lossless, and the same transfer path re-resumes every
// session of a lost shard on the survivors (DESIGN.md §15).
package fleet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

// Magic opens every wire message; Version is the protocol revision.
const (
	Magic   = "BBFL"
	Version = 1
)

// headerLen is the fixed message prelude: magic(4) version(2) type(1)
// reserved(1) bodyLen(4).
const headerLen = 12

// ErrBadMessage is wrapped by every structural decode rejection:
// wrong magic, unknown type, truncated or oversized sections, trailing
// bytes, non-canonical flags. A decoder never panics and never
// allocates more than the advertised (and budget-checked) sizes.
var ErrBadMessage = errors.New("fleet: bad message")

// ErrVersion rejects messages from an incompatible protocol revision.
var ErrVersion = errors.New("fleet: unsupported protocol version")

// MsgType discriminates wire messages. Requests are < 0x40, responses
// >= 0x40.
type MsgType uint8

const (
	// MsgOpen opens a fresh session from an OpenSpec.
	MsgOpen MsgType = 0x01
	// MsgFeed delivers one frame (Frames[0]) to a session.
	MsgFeed MsgType = 0x02
	// MsgFeedBatch delivers an ordered frame batch as one intake unit.
	MsgFeedBatch MsgType = 0x03
	// MsgSnapshot asks for a session's observability snapshot.
	MsgSnapshot MsgType = 0x04
	// MsgCheckpoint asks for a session's current canonical .bbck bytes
	// (the session keeps running) — the replication primitive.
	MsgCheckpoint MsgType = 0x05
	// MsgResume registers a session from checkpoint bytes under the
	// spec's id — the receiving half of migration and shard recovery.
	MsgResume MsgType = 0x06
	// MsgClose finalizes and unregisters a session.
	MsgClose MsgType = 0x07
	// MsgDetach drains and removes a session WITHOUT finalizing,
	// returning its .bbck bytes — the sending half of live migration.
	MsgDetach MsgType = 0x08
	// MsgStats asks for the fleet-level counter snapshot and session ids.
	MsgStats MsgType = 0x09
	// MsgDrain blocks until every fed frame of a session is processed —
	// the quiesce barrier a migration or parity check runs behind.
	MsgDrain MsgType = 0x0A
	// MsgPing is the lightweight liveness probe health-probed routing
	// runs on: empty body, answered by MsgOK. Cheap enough to send every
	// probe interval to every shard.
	MsgPing MsgType = 0x0B
	// MsgFence declares the sender's coordinator epoch for this
	// connection. A shard remembers the highest epoch it has ever seen;
	// state-changing requests on a connection fenced at a lower epoch
	// are rejected with CodeFenced — how a deposed coordinator's stale
	// migrations die instead of corrupting the fleet.
	MsgFence MsgType = 0x0C
	// MsgJoin asks the coordinator to add the shard at Addr to the live
	// ring, migrating only the sessions whose arcs move onto it.
	MsgJoin MsgType = 0x0D
	// MsgDrainShard asks the coordinator to migrate every session off
	// the shard at Addr and remove it from the ring (graceful exit).
	MsgDrainShard MsgType = 0x0E
	// MsgHealth asks the coordinator for its epoch and per-shard health
	// states.
	MsgHealth MsgType = 0x0F
	// MsgLoad asks for a load sample. A shard answers with one row
	// (its own sessions, mem footprint, feed latency); a coordinator
	// answers with one row per member — including placeholder rows for
	// members it could not sample, so one dead shard never fails the
	// whole query. This is the rebalancer's planning input.
	MsgLoad MsgType = 0x10
	// MsgSetWeight asks the coordinator to set the capacity weight of
	// the shard at Addr — weighted vnodes for heterogeneous fleets. The
	// ring is rebuilt and only the sessions whose arcs move migrate.
	MsgSetWeight MsgType = 0x11
	// MsgAutopilotStatus asks the coordinator for its autopilot policy
	// state: imbalance score, rebalance/readmission/scrub counters and
	// the current coordination lease.
	MsgAutopilotStatus MsgType = 0x12

	// MsgOK acknowledges a request with no payload.
	MsgOK MsgType = 0x40
	// MsgErr reports a failed request (Code + Text).
	MsgErr MsgType = 0x41
	// MsgSnapResp answers MsgSnapshot.
	MsgSnapResp MsgType = 0x42
	// MsgCkptResp answers MsgCheckpoint/MsgDetach with .bbck bytes.
	MsgCkptResp MsgType = 0x43
	// MsgStatsResp answers MsgStats.
	MsgStatsResp MsgType = 0x44
	// MsgHealthResp answers MsgHealth.
	MsgHealthResp MsgType = 0x45
	// MsgLoadResp answers MsgLoad.
	MsgLoadResp MsgType = 0x46
	// MsgAutopilotResp answers MsgAutopilotStatus.
	MsgAutopilotResp MsgType = 0x47
)

// Error codes carried by MsgErr, mirroring the session layer's typed
// rejections so a remote caller can branch the same way a local one
// does.
const (
	CodeInternal  uint16 = 1 // unclassified server-side failure
	CodeNoSession uint16 = 2 // session.ErrNoSession
	CodeExists    uint16 = 3 // session.ErrExists
	CodeAdmission uint16 = 4 // ErrFleetFull / ErrMemoryBudget
	CodeBadReq    uint16 = 5 // malformed or unroutable request
	CodeFenced    uint16 = 6 // request from a deposed coordinator epoch
)

// OpenSpec describes a session to open (or resume): everything a shard
// needs to derive the reconstruction options through its injected
// OptionsFor hook. The coordinator keeps the spec so a lost shard's
// sessions can be re-opened elsewhere.
type OpenSpec struct {
	ID        string
	W, H      int
	UnknownVB bool
	Seed      int64
}

// SnapInfo is the wire projection of session.Snapshot — the counters a
// remote operator routes and load-balances on.
type SnapInfo struct {
	ID                              string
	Health                          uint8
	Identified, Restored, Finalized bool
	Fed, Dropped, Rejected          uint64
	Processed, StreamFrames         uint64
	Coverage                        float64 // fraction in [0,1]
	VBName                          string
}

// StatsInfo is the wire projection of a manager-level snapshot plus
// the open session ids (what a recovering coordinator enumerates).
type StatsInfo struct {
	Open                       uint32
	Opened, Restores, Restarts uint64
	Migrations                 uint64
	IDs                        []string
}

// ShardHealthInfo is one shard's routing health on the wire: the
// health-state-machine value (HealthState) and the consecutive probe
// or op failures counted against it.
type ShardHealthInfo struct {
	Addr  string
	State uint8
	Fails uint32
}

// HealthInfo is the wire projection of the coordinator's routing
// health: its fencing epoch and every member shard's state.
type HealthInfo struct {
	Epoch  uint64
	Shards []ShardHealthInfo
}

// SessionLoad is one session's placement cost on the wire — what the
// rebalancer ranks when picking the cheapest sessions to move off a
// hot shard.
type SessionLoad struct {
	ID     string
	Mem    uint64 // admission-time stream footprint in bytes
	Frames uint64 // stream frames processed so far
}

// ShardLoad is one shard's load sample on the wire (MsgLoadResp). A
// row with a non-empty Err is a placeholder: the shard could not be
// sampled (down, timed out) and every other field except Addr/State is
// unset — the graceful-degradation row `bgbuster stats` renders as
// DOWN/? instead of failing the whole command.
type ShardLoad struct {
	Addr       string
	State      uint8  // HealthState at sample time
	Weight     uint16 // capacity weight (vnode multiplier), 0 on shard-local rows
	Mem        uint64 // summed session stream footprint in bytes
	FeedMicros uint64 // EWMA of feed request handling latency, microseconds
	Sess       []SessionLoad
	Err        string // non-empty: sample failed; row is a placeholder
}

// AutopilotInfo is the autopilot policy state on the wire
// (MsgAutopilotResp): the latest imbalance score against its
// threshold, cumulative rebalance/readmission/scrub counters, and the
// coordination lease (when election is running).
type AutopilotInfo struct {
	Enabled      bool
	Imbalance    float64 // latest planner score
	Threshold    float64 // high-water score that triggers rebalancing
	Passes       uint64  // planner passes run
	Moves        uint64  // sessions migrated by the rebalancer
	Readmitted   uint64  // shards auto re-admitted after down
	Promoted     uint64  // shards promoted out of probation
	Probation    uint32  // shards currently in probation
	ScrubChecked uint64
	ScrubRepairs uint64
	ScrubSwept   uint64
	ScrubStuck   uint64 // live ids with no valid replica anywhere
	OrphanDels   uint64 // deletes that left orphaned replicas behind
	LeaseHeld    bool
	LeaseHolder  string
	LeaseTerm    uint64
	LeaseEpoch   uint64
	LeaseExpires int64 // unix nanoseconds; 0 = no lease observed
}

// Message is one decoded wire message. Only the fields its Type uses
// are meaningful; Encode writes exactly those, so
// Encode(Decode(b)) == b for every accepted b (the canonical-encoding
// invariant the fuzz harness enforces).
type Message struct {
	Type   MsgType
	Spec   OpenSpec      // Open, Resume; Spec.ID alone for id-bearing requests
	Frames []core.Frame  // Feed (exactly 1), FeedBatch (1..MaxBatch)
	Ckpt   []byte        // Resume, CkptResp
	Code   uint16        // Err
	Text   string        // Err
	Snap   SnapInfo      // SnapResp
	Stats  StatsInfo     // StatsResp
	Addr   string        // Join, DrainShard, SetWeight
	Epoch  uint64        // Fence
	Health HealthInfo    // HealthResp
	Weight uint16        // SetWeight
	Loads  []ShardLoad   // LoadResp
	Auto   AutopilotInfo // AutopilotResp
}

// Limits bounds what a decoder will allocate for one message — the
// DecodeLimits discipline from the vidstream and checkpoint codecs: a
// malicious peer must never be able to force a large allocation with a
// small crafted header. The zero value takes every default.
type Limits struct {
	// MaxBody caps one message's body length (default 64 MiB).
	MaxBody int64
	// MaxDim caps frame width and height (default 8192).
	MaxDim int
	// MaxBatch caps frames per MsgFeedBatch (default 1024).
	MaxBatch int
	// MaxIDLen caps session-id byte length (default 256).
	MaxIDLen int
	// MaxCkpt caps embedded checkpoint payloads (default 64 MiB).
	MaxCkpt int64
	// MaxIDs caps the id list in MsgStatsResp (default 1 << 16).
	MaxIDs int
	// MaxText caps MsgErr/VBName strings (default 4096).
	MaxText int
}

// DefaultLimits returns the default decode budgets.
func DefaultLimits() Limits { return Limits{}.withDefaults() }

func (l Limits) withDefaults() Limits {
	if l.MaxBody <= 0 {
		l.MaxBody = 64 << 20
	}
	if l.MaxDim <= 0 {
		l.MaxDim = 8192
	}
	if l.MaxBatch <= 0 {
		l.MaxBatch = 1024
	}
	if l.MaxIDLen <= 0 {
		l.MaxIDLen = 256
	}
	if l.MaxCkpt <= 0 {
		l.MaxCkpt = 64 << 20
	}
	if l.MaxIDs <= 0 {
		l.MaxIDs = 1 << 16
	}
	if l.MaxText <= 0 {
		l.MaxText = 4096
	}
	return l
}

// Encode serialises a message to its canonical wire bytes.
func Encode(m *Message) ([]byte, error) {
	body, err := appendBody(nil, m)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, headerLen+len(body))
	buf = append(buf, Magic...)
	buf = appendU16(buf, Version)
	buf = append(buf, byte(m.Type), 0)
	buf = appendU32(buf, uint32(len(body)))
	return append(buf, body...), nil
}

func appendBody(buf []byte, m *Message) ([]byte, error) {
	switch m.Type {
	case MsgOpen, MsgResume:
		buf = appendStr(buf, m.Spec.ID)
		buf = appendU16(buf, uint16(m.Spec.W))
		buf = appendU16(buf, uint16(m.Spec.H))
		buf = append(buf, b2u8(m.Spec.UnknownVB))
		buf = appendU64(buf, uint64(m.Spec.Seed))
		if m.Type == MsgResume {
			buf = appendU32(buf, uint32(len(m.Ckpt)))
			buf = append(buf, m.Ckpt...)
		}
	case MsgFeed:
		if len(m.Frames) != 1 {
			return nil, fmt.Errorf("fleet: MsgFeed carries %d frames, want 1", len(m.Frames))
		}
		buf = appendStr(buf, m.Spec.ID)
		buf = appendFrame(buf, m.Frames[0])
	case MsgFeedBatch:
		if len(m.Frames) == 0 {
			return nil, errors.New("fleet: empty MsgFeedBatch")
		}
		buf = appendStr(buf, m.Spec.ID)
		buf = appendU16(buf, uint16(len(m.Frames)))
		for _, f := range m.Frames {
			buf = appendFrame(buf, f)
		}
	case MsgSnapshot, MsgCheckpoint, MsgClose, MsgDetach, MsgDrain:
		buf = appendStr(buf, m.Spec.ID)
	case MsgStats, MsgOK, MsgPing, MsgHealth, MsgLoad, MsgAutopilotStatus:
		// empty body
	case MsgFence:
		buf = appendU64(buf, m.Epoch)
	case MsgJoin, MsgDrainShard:
		buf = appendStr(buf, m.Addr)
	case MsgSetWeight:
		buf = appendStr(buf, m.Addr)
		buf = appendU16(buf, m.Weight)
	case MsgLoadResp:
		buf = appendU16(buf, uint16(len(m.Loads)))
		for _, row := range m.Loads {
			buf = appendStr(buf, row.Addr)
			buf = append(buf, row.State)
			buf = appendU16(buf, row.Weight)
			buf = appendU64(buf, row.Mem)
			buf = appendU64(buf, row.FeedMicros)
			buf = appendStr(buf, row.Err)
			buf = appendU16(buf, uint16(len(row.Sess)))
			for _, s := range row.Sess {
				buf = appendStr(buf, s.ID)
				buf = appendU64(buf, s.Mem)
				buf = appendU64(buf, s.Frames)
			}
		}
	case MsgAutopilotResp:
		a := m.Auto
		buf = append(buf, b2u8(a.Enabled)|b2u8(a.LeaseHeld)<<1)
		buf = appendU64(buf, math.Float64bits(a.Imbalance))
		buf = appendU64(buf, math.Float64bits(a.Threshold))
		for _, v := range []uint64{a.Passes, a.Moves, a.Readmitted, a.Promoted} {
			buf = appendU64(buf, v)
		}
		buf = appendU32(buf, a.Probation)
		for _, v := range []uint64{a.ScrubChecked, a.ScrubRepairs, a.ScrubSwept, a.ScrubStuck, a.OrphanDels} {
			buf = appendU64(buf, v)
		}
		buf = appendStr(buf, a.LeaseHolder)
		buf = appendU64(buf, a.LeaseTerm)
		buf = appendU64(buf, a.LeaseEpoch)
		buf = appendU64(buf, uint64(a.LeaseExpires))
	case MsgHealthResp:
		buf = appendU64(buf, m.Health.Epoch)
		buf = appendU16(buf, uint16(len(m.Health.Shards)))
		for _, s := range m.Health.Shards {
			buf = appendStr(buf, s.Addr)
			buf = append(buf, s.State)
			buf = appendU32(buf, s.Fails)
		}
	case MsgErr:
		buf = appendU16(buf, m.Code)
		buf = appendStr(buf, m.Text)
	case MsgSnapResp:
		s := m.Snap
		buf = appendStr(buf, s.ID)
		buf = append(buf, s.Health)
		buf = append(buf, b2u8(s.Identified)|b2u8(s.Restored)<<1|b2u8(s.Finalized)<<2)
		for _, v := range []uint64{s.Fed, s.Dropped, s.Rejected, s.Processed, s.StreamFrames} {
			buf = appendU64(buf, v)
		}
		buf = appendU64(buf, math.Float64bits(s.Coverage))
		buf = appendStr(buf, s.VBName)
	case MsgCkptResp:
		buf = appendU32(buf, uint32(len(m.Ckpt)))
		buf = append(buf, m.Ckpt...)
	case MsgStatsResp:
		st := m.Stats
		buf = appendU32(buf, st.Open)
		for _, v := range []uint64{st.Opened, st.Restores, st.Restarts, st.Migrations} {
			buf = appendU64(buf, v)
		}
		buf = appendU32(buf, uint32(len(st.IDs)))
		for _, id := range st.IDs {
			buf = appendStr(buf, id)
		}
	default:
		return nil, fmt.Errorf("fleet: encode: unknown message type 0x%02x", byte(m.Type))
	}
	return buf, nil
}

// appendFrame writes one frame: geometry, raw RGB raster, and the
// packed-word oracle mask (flag 0 when absent).
func appendFrame(buf []byte, f core.Frame) []byte {
	buf = appendU16(buf, uint16(f.Img.W))
	buf = appendU16(buf, uint16(f.Img.H))
	for _, p := range f.Img.Pix {
		buf = append(buf, p.R, p.G, p.B)
	}
	if f.Oracle == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	return f.Oracle.AppendWords(buf)
}

// Decode parses one complete message under the default budgets.
func Decode(data []byte) (*Message, error) {
	return DecodeWithLimits(data, DefaultLimits())
}

// DecodeWithLimits parses one complete message — header and body —
// rejecting anything structurally invalid, over budget, or
// non-canonical (trailing bytes, nonzero reserved byte, padding-bit
// violations in masks). It never panics on crafted input and never
// allocates beyond the budgets in lim.
func DecodeWithLimits(data []byte, lim Limits) (*Message, error) {
	lim = lim.withDefaults()
	if len(data) < headerLen {
		return nil, fmt.Errorf("fleet: %d-byte message shorter than header: %w", len(data), ErrBadMessage)
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("fleet: bad magic %q: %w", data[:4], ErrBadMessage)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("fleet: version %d: %w", v, ErrVersion)
	}
	if data[7] != 0 {
		return nil, fmt.Errorf("fleet: nonzero reserved byte: %w", ErrBadMessage)
	}
	bodyLen := int64(binary.LittleEndian.Uint32(data[8:12]))
	if bodyLen > lim.MaxBody {
		return nil, fmt.Errorf("fleet: %d-byte body exceeds budget %d: %w", bodyLen, lim.MaxBody, ErrBadMessage)
	}
	if int64(len(data)-headerLen) != bodyLen {
		return nil, fmt.Errorf("fleet: advertised body %d bytes, have %d: %w", bodyLen, len(data)-headerLen, ErrBadMessage)
	}
	m := &Message{Type: MsgType(data[6])}
	r := &reader{data: data[headerLen:]}
	if err := decodeBody(r, m, lim); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("fleet: %d trailing bytes: %w", r.remaining(), ErrBadMessage)
	}
	return m, nil
}

func decodeBody(r *reader, m *Message, lim Limits) error {
	switch m.Type {
	case MsgOpen, MsgResume:
		if err := r.spec(&m.Spec, lim); err != nil {
			return err
		}
		if m.Type == MsgResume {
			ckpt, err := r.blob(lim.MaxCkpt)
			if err != nil {
				return err
			}
			m.Ckpt = ckpt
		}
	case MsgFeed:
		id, err := r.str(lim.MaxIDLen)
		if err != nil {
			return err
		}
		m.Spec.ID = id
		f, err := r.frame(lim)
		if err != nil {
			return err
		}
		m.Frames = []core.Frame{f}
	case MsgFeedBatch:
		id, err := r.str(lim.MaxIDLen)
		if err != nil {
			return err
		}
		m.Spec.ID = id
		n, err := r.u16()
		if err != nil {
			return err
		}
		if n == 0 || int(n) > lim.MaxBatch {
			return fmt.Errorf("fleet: batch of %d frames outside [1,%d]: %w", n, lim.MaxBatch, ErrBadMessage)
		}
		// Frames are decoded one at a time: each frame's own geometry
		// check bounds its allocation, so no up-front n×frame reserve is
		// needed (or made).
		m.Frames = make([]core.Frame, 0, min(int(n), 64))
		for i := 0; i < int(n); i++ {
			f, err := r.frame(lim)
			if err != nil {
				return err
			}
			m.Frames = append(m.Frames, f)
		}
	case MsgSnapshot, MsgCheckpoint, MsgClose, MsgDetach, MsgDrain:
		id, err := r.str(lim.MaxIDLen)
		if err != nil {
			return err
		}
		m.Spec.ID = id
	case MsgStats, MsgOK, MsgPing, MsgHealth, MsgLoad, MsgAutopilotStatus:
		// empty body
	case MsgFence:
		epoch, err := r.u64()
		if err != nil {
			return err
		}
		m.Epoch = epoch
	case MsgJoin, MsgDrainShard:
		addr, err := r.str(lim.MaxIDLen)
		if err != nil {
			return err
		}
		m.Addr = addr
	case MsgSetWeight:
		addr, err := r.str(lim.MaxIDLen)
		if err != nil {
			return err
		}
		m.Addr = addr
		if m.Weight, err = r.u16(); err != nil {
			return err
		}
	case MsgLoadResp:
		n, err := r.u16()
		if err != nil {
			return err
		}
		if int(n) > lim.MaxIDs {
			return fmt.Errorf("fleet: %d load rows exceed budget %d: %w", n, lim.MaxIDs, ErrBadMessage)
		}
		// Each row costs >= 25 bytes (2 addr len + 1 state + 2 weight +
		// 8 mem + 8 latency + 2 err len + 2 session count), so the
		// advertised count is verified against what is present before any
		// reserve.
		if err := r.need(25 * int64(n)); err != nil {
			return err
		}
		if n > 0 {
			m.Loads = make([]ShardLoad, 0, n)
		}
		for i := 0; i < int(n); i++ {
			var row ShardLoad
			if row.Addr, err = r.str(lim.MaxIDLen); err != nil {
				return err
			}
			if row.State, err = r.u8(); err != nil {
				return err
			}
			if row.Weight, err = r.u16(); err != nil {
				return err
			}
			if row.Mem, err = r.u64(); err != nil {
				return err
			}
			if row.FeedMicros, err = r.u64(); err != nil {
				return err
			}
			if row.Err, err = r.str(lim.MaxText); err != nil {
				return err
			}
			ns, err := r.u16()
			if err != nil {
				return err
			}
			if int(ns) > lim.MaxIDs {
				return fmt.Errorf("fleet: %d session loads exceed budget %d: %w", ns, lim.MaxIDs, ErrBadMessage)
			}
			// Each session entry costs >= 18 bytes (2 id len + 8 mem +
			// 8 frames).
			if err := r.need(18 * int64(ns)); err != nil {
				return err
			}
			if ns > 0 {
				row.Sess = make([]SessionLoad, 0, ns)
			}
			for j := 0; j < int(ns); j++ {
				var s SessionLoad
				if s.ID, err = r.str(lim.MaxIDLen); err != nil {
					return err
				}
				if s.Mem, err = r.u64(); err != nil {
					return err
				}
				if s.Frames, err = r.u64(); err != nil {
					return err
				}
				row.Sess = append(row.Sess, s)
			}
			m.Loads = append(m.Loads, row)
		}
	case MsgAutopilotResp:
		a := &m.Auto
		flags, err := r.u8()
		if err != nil {
			return err
		}
		if flags&^0x03 != 0 {
			return fmt.Errorf("fleet: nonzero autopilot flag padding: %w", ErrBadMessage)
		}
		a.Enabled, a.LeaseHeld = flags&1 != 0, flags&2 != 0
		bits, err := r.u64()
		if err != nil {
			return err
		}
		a.Imbalance = math.Float64frombits(bits)
		if bits, err = r.u64(); err != nil {
			return err
		}
		a.Threshold = math.Float64frombits(bits)
		for _, dst := range []*uint64{&a.Passes, &a.Moves, &a.Readmitted, &a.Promoted} {
			if *dst, err = r.u64(); err != nil {
				return err
			}
		}
		if a.Probation, err = r.u32(); err != nil {
			return err
		}
		for _, dst := range []*uint64{&a.ScrubChecked, &a.ScrubRepairs, &a.ScrubSwept, &a.ScrubStuck, &a.OrphanDels} {
			if *dst, err = r.u64(); err != nil {
				return err
			}
		}
		if a.LeaseHolder, err = r.str(lim.MaxIDLen); err != nil {
			return err
		}
		if a.LeaseTerm, err = r.u64(); err != nil {
			return err
		}
		if a.LeaseEpoch, err = r.u64(); err != nil {
			return err
		}
		expires, err := r.u64()
		if err != nil {
			return err
		}
		a.LeaseExpires = int64(expires)
	case MsgHealthResp:
		var err error
		if m.Health.Epoch, err = r.u64(); err != nil {
			return err
		}
		n, err := r.u16()
		if err != nil {
			return err
		}
		if int(n) > lim.MaxIDs {
			return fmt.Errorf("fleet: %d shard healths exceed budget %d: %w", n, lim.MaxIDs, ErrBadMessage)
		}
		// Each entry costs >= 7 bytes (2 len + 1 state + 4 fails), so the
		// advertised count is verified against what is present before any
		// reserve.
		if err := r.need(7 * int64(n)); err != nil {
			return err
		}
		if n > 0 {
			m.Health.Shards = make([]ShardHealthInfo, 0, n)
		}
		for i := 0; i < int(n); i++ {
			var s ShardHealthInfo
			if s.Addr, err = r.str(lim.MaxIDLen); err != nil {
				return err
			}
			if s.State, err = r.u8(); err != nil {
				return err
			}
			if s.Fails, err = r.u32(); err != nil {
				return err
			}
			m.Health.Shards = append(m.Health.Shards, s)
		}
	case MsgErr:
		code, err := r.u16()
		if err != nil {
			return err
		}
		text, err := r.str(lim.MaxText)
		if err != nil {
			return err
		}
		m.Code, m.Text = code, text
	case MsgSnapResp:
		s := &m.Snap
		var err error
		if s.ID, err = r.str(lim.MaxIDLen); err != nil {
			return err
		}
		if s.Health, err = r.u8(); err != nil {
			return err
		}
		flags, err := r.u8()
		if err != nil {
			return err
		}
		if flags&^0x07 != 0 {
			return fmt.Errorf("fleet: nonzero snapshot flag padding: %w", ErrBadMessage)
		}
		s.Identified, s.Restored, s.Finalized = flags&1 != 0, flags&2 != 0, flags&4 != 0
		for _, dst := range []*uint64{&s.Fed, &s.Dropped, &s.Rejected, &s.Processed, &s.StreamFrames} {
			if *dst, err = r.u64(); err != nil {
				return err
			}
		}
		bits, err := r.u64()
		if err != nil {
			return err
		}
		s.Coverage = math.Float64frombits(bits)
		if s.VBName, err = r.str(lim.MaxText); err != nil {
			return err
		}
	case MsgCkptResp:
		ckpt, err := r.blob(lim.MaxCkpt)
		if err != nil {
			return err
		}
		m.Ckpt = ckpt
	case MsgStatsResp:
		st := &m.Stats
		var err error
		if st.Open, err = r.u32(); err != nil {
			return err
		}
		for _, dst := range []*uint64{&st.Opened, &st.Restores, &st.Restarts, &st.Migrations} {
			if *dst, err = r.u64(); err != nil {
				return err
			}
		}
		n, err := r.u32()
		if err != nil {
			return err
		}
		if int64(n) > int64(lim.MaxIDs) {
			return fmt.Errorf("fleet: %d ids exceed budget %d: %w", n, lim.MaxIDs, ErrBadMessage)
		}
		// Each id costs >= 2 bytes on the wire, so the advertised count
		// is cheap to sanity-check against what is actually present
		// before reserving anything.
		if err := r.need(2 * int64(n)); err != nil {
			return err
		}
		if n > 0 {
			st.IDs = make([]string, 0, n)
		}
		for i := uint32(0); i < n; i++ {
			id, err := r.str(lim.MaxIDLen)
			if err != nil {
				return err
			}
			st.IDs = append(st.IDs, id)
		}
	default:
		return fmt.Errorf("fleet: unknown message type 0x%02x: %w", byte(m.Type), ErrBadMessage)
	}
	return nil
}

// WriteMessage frames and writes one message to w.
func WriteMessage(w io.Writer, m *Message) error {
	buf, err := Encode(m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadMessage reads exactly one length-prefixed message from r under
// the given budgets. The header is read first and validated, so at
// most lim.MaxBody bytes are ever buffered for one message.
func ReadMessage(r io.Reader, lim Limits) (*Message, error) {
	lim = lim.withDefaults()
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	if string(hdr[:4]) != Magic {
		return nil, fmt.Errorf("fleet: bad magic %q: %w", hdr[:4], ErrBadMessage)
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, fmt.Errorf("fleet: version %d: %w", v, ErrVersion)
	}
	bodyLen := int64(binary.LittleEndian.Uint32(hdr[8:12]))
	if bodyLen > lim.MaxBody {
		return nil, fmt.Errorf("fleet: %d-byte body exceeds budget %d: %w", bodyLen, lim.MaxBody, ErrBadMessage)
	}
	buf := make([]byte, headerLen+int(bodyLen))
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[headerLen:]); err != nil {
		return nil, err
	}
	return DecodeWithLimits(buf, lim)
}

// reader is the bounds-checked cursor (checkpoint codec idiom): every
// accessor validates remaining length before reading, and every
// variable-size section calls need() with its full advertised size
// before its first allocation.
type reader struct {
	data []byte
	off  int
}

func (r *reader) remaining() int64 { return int64(len(r.data) - r.off) }

func (r *reader) need(n int64) error {
	if n < 0 || n > r.remaining() {
		return fmt.Errorf("fleet: section of %d bytes exceeds %d remaining: %w", n, r.remaining(), ErrBadMessage)
	}
	return nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if err := r.need(int64(n)); err != nil {
		return nil, err
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *reader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// str reads a u16-length-prefixed string bounded by maxLen.
func (r *reader) str(maxLen int) (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if int(n) > maxLen {
		return "", fmt.Errorf("fleet: %d-byte string exceeds budget %d: %w", n, maxLen, ErrBadMessage)
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// blob reads a u32-length-prefixed byte section bounded by maxLen,
// copying it out of the message buffer (checkpoint bytes outlive the
// request).
func (r *reader) blob(maxLen int64) ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(n) > maxLen {
		return nil, fmt.Errorf("fleet: %d-byte blob exceeds budget %d: %w", n, maxLen, ErrBadMessage)
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

// spec reads an OpenSpec, bounding geometry by lim.MaxDim.
func (r *reader) spec(s *OpenSpec, lim Limits) error {
	id, err := r.str(lim.MaxIDLen)
	if err != nil {
		return err
	}
	w, err := r.u16()
	if err != nil {
		return err
	}
	h, err := r.u16()
	if err != nil {
		return err
	}
	if int(w) > lim.MaxDim || int(h) > lim.MaxDim || w == 0 || h == 0 {
		return fmt.Errorf("fleet: %dx%d spec outside [1,%d]: %w", w, h, lim.MaxDim, ErrBadMessage)
	}
	uvb, err := r.u8()
	if err != nil {
		return err
	}
	if uvb > 1 {
		return fmt.Errorf("fleet: non-boolean unknown-vb flag %d: %w", uvb, ErrBadMessage)
	}
	seed, err := r.u64()
	if err != nil {
		return err
	}
	s.ID, s.W, s.H, s.UnknownVB, s.Seed = id, int(w), int(h), uvb == 1, int64(seed)
	return nil
}

// frame reads one frame: the geometry is budget-checked and the full
// raster size need()-verified before the image allocation, so a
// crafted header cannot force a large allocation.
func (r *reader) frame(lim Limits) (core.Frame, error) {
	w16, err := r.u16()
	if err != nil {
		return core.Frame{}, err
	}
	h16, err := r.u16()
	if err != nil {
		return core.Frame{}, err
	}
	w, h := int(w16), int(h16)
	if w == 0 || h == 0 || w > lim.MaxDim || h > lim.MaxDim {
		return core.Frame{}, fmt.Errorf("fleet: %dx%d frame outside [1,%d]: %w", w, h, lim.MaxDim, ErrBadMessage)
	}
	if err := r.need(int64(3*w*h) + 1); err != nil {
		return core.Frame{}, err
	}
	b, err := r.bytes(3 * w * h)
	if err != nil {
		return core.Frame{}, err
	}
	img := imagex.New(w, h)
	for i := range img.Pix {
		img.Pix[i] = imagex.RGB{R: b[3*i], G: b[3*i+1], B: b[3*i+2]}
	}
	hasOracle, err := r.u8()
	if err != nil {
		return core.Frame{}, err
	}
	switch hasOracle {
	case 0:
		return core.Frame{Img: img}, nil
	case 1:
		mb := 8 * h * ((w + 63) >> 6)
		wb, err := r.bytes(mb)
		if err != nil {
			return core.Frame{}, err
		}
		m := imagex.NewMask(w, h)
		if err := m.LoadWords(wb); err != nil {
			return core.Frame{}, fmt.Errorf("fleet: %w: %w", err, ErrBadMessage)
		}
		return core.Frame{Img: img, Oracle: m}, nil
	default:
		return core.Frame{}, fmt.Errorf("fleet: non-boolean oracle flag %d: %w", hasOracle, ErrBadMessage)
	}
}

func appendStr(buf []byte, s string) []byte {
	buf = appendU16(buf, uint16(len(s)))
	return append(buf, s...)
}

func appendU16(buf []byte, v uint16) []byte {
	return append(buf, byte(v), byte(v>>8))
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(buf []byte, v uint64) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}
