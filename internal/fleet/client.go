package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
)

// RemoteError is a typed failure the far side reported via MsgErr —
// the request was delivered and rejected, as opposed to a transport
// error where the shard itself may be gone.
type RemoteError struct {
	Code uint16
	Text string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("fleet: remote error %d: %s", e.Code, e.Text)
}

// TimeoutError reports a request that blew its configured I/O deadline
// — the peer is hung or partitioned, not necessarily dead, and it is
// unknown whether the request was applied. Distinct from both
// *RemoteError (delivered and rejected) and hard transport errors
// (connection refused/reset: the peer is gone).
type TimeoutError struct {
	Addr  string
	Op    string
	After time.Duration
	Err   error
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("fleet: %s: %s timed out after %v: %v", e.Addr, e.Op, e.After, e.Err)
}

func (e *TimeoutError) Unwrap() error { return e.Err }

// Timeout marks the error as a timeout for net.Error-style checks.
func (e *TimeoutError) Timeout() bool { return true }

// Timeouts bounds a client's blocking I/O. Zero values take the
// defaults; a negative value disables that deadline (the pre-deadline
// wedge-forever behaviour, for callers that genuinely want to block).
type Timeouts struct {
	// Dial bounds connection establishment (default 5s).
	Dial time.Duration
	// Read bounds one response read (default 60s — generously above the
	// shard-side 30s drain barrier so a slow drain is not misread as a
	// hang).
	Read time.Duration
	// Write bounds one request write (default 30s).
	Write time.Duration
}

// DefaultTimeouts returns the default per-op deadlines.
func DefaultTimeouts() Timeouts { return Timeouts{}.withDefaults() }

func (t Timeouts) withDefaults() Timeouts {
	if t.Dial == 0 {
		t.Dial = 5 * time.Second
	}
	if t.Read == 0 {
		t.Read = 60 * time.Second
	}
	if t.Write == 0 {
		t.Write = 30 * time.Second
	}
	return t
}

// Client is a synchronous wire-protocol client over one connection.
// Safe for concurrent use; requests are serialized on the connection.
type Client struct {
	addr string
	lim  Limits
	t    Timeouts

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// Dial connects to a shard or coordinator address under the default
// deadlines. Every op has a dial/read/write deadline by default — a
// hung or partitioned peer surfaces as a *TimeoutError instead of
// wedging the caller forever.
func Dial(addr string, lim Limits) (*Client, error) {
	return DialTimeouts(addr, lim, Timeouts{})
}

// DialTimeouts is Dial with explicit per-op deadlines.
func DialTimeouts(addr string, lim Limits, t Timeouts) (*Client, error) {
	t = t.withDefaults()
	var conn net.Conn
	var err error
	if t.Dial > 0 {
		conn, err = net.DialTimeout("tcp", addr, t.Dial)
	} else {
		conn, err = net.Dial("tcp", addr)
	}
	if err != nil {
		if isTimeout(err) {
			return nil, &TimeoutError{Addr: addr, Op: "dial", After: t.Dial, Err: err}
		}
		return nil, fmt.Errorf("fleet: dial %s: %w", addr, err)
	}
	return &Client{addr: addr, lim: lim.withDefaults(), t: t, conn: conn, br: bufio.NewReader(conn)}, nil
}

// Addr returns the dialed address.
func (c *Client) Addr() string { return c.addr }

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// do performs one request/response round trip under the configured
// deadlines. A transport failure closes the connection and is returned
// as-is (NOT a *RemoteError) — the caller's signal that the peer, not
// the request, failed; a deadline expiry comes back as *TimeoutError.
func (c *Client) do(req *Message) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, fmt.Errorf("fleet: client %s: connection closed", c.addr)
	}
	op := fmt.Sprintf("request 0x%02x", byte(req.Type))
	if c.t.Write > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.t.Write))
	}
	if err := WriteMessage(c.conn, req); err != nil {
		c.conn.Close()
		c.conn = nil
		if isTimeout(err) {
			return nil, &TimeoutError{Addr: c.addr, Op: op + " write", After: c.t.Write, Err: err}
		}
		return nil, fmt.Errorf("fleet: %s: write: %w", c.addr, err)
	}
	if c.t.Read > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.t.Read))
	}
	resp, err := ReadMessage(c.br, c.lim)
	if err != nil {
		c.conn.Close()
		c.conn = nil
		if isTimeout(err) {
			return nil, &TimeoutError{Addr: c.addr, Op: op + " read", After: c.t.Read, Err: err}
		}
		return nil, fmt.Errorf("fleet: %s: read: %w", c.addr, err)
	}
	if resp.Type == MsgErr {
		return nil, &RemoteError{Code: resp.Code, Text: resp.Text}
	}
	return resp, nil
}

// expect performs do and checks the response type.
func (c *Client) expect(req *Message, want MsgType) (*Message, error) {
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	if resp.Type != want {
		return nil, fmt.Errorf("fleet: %s: response type 0x%02x, want 0x%02x: %w",
			c.addr, byte(resp.Type), byte(want), ErrBadMessage)
	}
	return resp, nil
}

// Open opens a fresh session described by spec.
func (c *Client) Open(spec OpenSpec) error {
	_, err := c.expect(&Message{Type: MsgOpen, Spec: spec}, MsgOK)
	return err
}

// Resume registers a session from checkpoint bytes under spec.
func (c *Client) Resume(spec OpenSpec, ckpt []byte) error {
	_, err := c.expect(&Message{Type: MsgResume, Spec: spec, Ckpt: ckpt}, MsgOK)
	return err
}

// Feed delivers one frame.
func (c *Client) Feed(id string, f core.Frame) error {
	_, err := c.expect(&Message{Type: MsgFeed, Spec: OpenSpec{ID: id}, Frames: []core.Frame{f}}, MsgOK)
	return err
}

// FeedN delivers an ordered batch.
func (c *Client) FeedN(id string, frames []core.Frame) error {
	_, err := c.expect(&Message{Type: MsgFeedBatch, Spec: OpenSpec{ID: id}, Frames: frames}, MsgOK)
	return err
}

// Snapshot fetches a session's counters.
func (c *Client) Snapshot(id string) (SnapInfo, error) {
	resp, err := c.expect(&Message{Type: MsgSnapshot, Spec: OpenSpec{ID: id}}, MsgSnapResp)
	if err != nil {
		return SnapInfo{}, err
	}
	return resp.Snap, nil
}

// Checkpoint fetches a session's current .bbck bytes; the session
// keeps running.
func (c *Client) Checkpoint(id string) ([]byte, error) {
	resp, err := c.expect(&Message{Type: MsgCheckpoint, Spec: OpenSpec{ID: id}}, MsgCkptResp)
	if err != nil {
		return nil, err
	}
	return resp.Ckpt, nil
}

// Detach drains and removes a session without finalizing, returning
// its .bbck bytes — the sending half of live migration.
func (c *Client) Detach(id string) ([]byte, error) {
	resp, err := c.expect(&Message{Type: MsgDetach, Spec: OpenSpec{ID: id}}, MsgCkptResp)
	if err != nil {
		return nil, err
	}
	return resp.Ckpt, nil
}

// Drain blocks until every frame fed to the session so far has been
// processed (shard-side timeout applies).
func (c *Client) Drain(id string) error {
	_, err := c.expect(&Message{Type: MsgDrain, Spec: OpenSpec{ID: id}}, MsgOK)
	return err
}

// CloseSession finalizes and removes a session.
func (c *Client) CloseSession(id string) error {
	_, err := c.expect(&Message{Type: MsgClose, Spec: OpenSpec{ID: id}}, MsgOK)
	return err
}

// Stats fetches the peer's fleet-level counters and session ids.
func (c *Client) Stats() (StatsInfo, error) {
	resp, err := c.expect(&Message{Type: MsgStats}, MsgStatsResp)
	if err != nil {
		return StatsInfo{}, err
	}
	return resp.Stats, nil
}

// Ping performs the lightweight liveness round trip health probes run.
func (c *Client) Ping() error {
	_, err := c.expect(&Message{Type: MsgPing}, MsgOK)
	return err
}

// Fence declares the caller's coordinator epoch on this connection.
// The peer rejects it (CodeFenced) when it has already seen a higher
// epoch — the caller has been deposed.
func (c *Client) Fence(epoch uint64) error {
	_, err := c.expect(&Message{Type: MsgFence, Epoch: epoch}, MsgOK)
	return err
}

// Join asks a coordinator to add the shard at addr to the live ring.
func (c *Client) Join(addr string) error {
	_, err := c.expect(&Message{Type: MsgJoin, Addr: addr}, MsgOK)
	return err
}

// DrainShard asks a coordinator to migrate every session off the shard
// at addr and remove it from the ring.
func (c *Client) DrainShard(addr string) error {
	_, err := c.expect(&Message{Type: MsgDrainShard, Addr: addr}, MsgOK)
	return err
}

// Health fetches a coordinator's epoch and per-shard health states.
func (c *Client) Health() (HealthInfo, error) {
	resp, err := c.expect(&Message{Type: MsgHealth}, MsgHealthResp)
	if err != nil {
		return HealthInfo{}, err
	}
	return resp.Health, nil
}

// Load fetches a load sample: one row from a shard (its own sessions,
// mem, feed latency), one row per member from a coordinator — with
// placeholder rows (Err set) for members it could not sample.
func (c *Client) Load() ([]ShardLoad, error) {
	resp, err := c.expect(&Message{Type: MsgLoad}, MsgLoadResp)
	if err != nil {
		return nil, err
	}
	return resp.Loads, nil
}

// SetWeight asks a coordinator to set the capacity weight of the shard
// at addr (weighted vnodes). Sessions whose arcs move migrate.
func (c *Client) SetWeight(addr string, weight int) error {
	if weight < 0 || weight > int(^uint16(0)) {
		return fmt.Errorf("fleet: weight %d outside uint16", weight)
	}
	_, err := c.expect(&Message{Type: MsgSetWeight, Addr: addr, Weight: uint16(weight)}, MsgOK)
	return err
}

// AutopilotStatus fetches a coordinator's autopilot policy state.
func (c *Client) AutopilotStatus() (AutopilotInfo, error) {
	resp, err := c.expect(&Message{Type: MsgAutopilotStatus}, MsgAutopilotResp)
	if err != nil {
		return AutopilotInfo{}, err
	}
	return resp.Auto, nil
}
