package fleet

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"github.com/bgbuster/bgbuster/internal/core"
)

// RemoteError is a typed failure the far side reported via MsgErr —
// the request was delivered and rejected, as opposed to a transport
// error where the shard itself may be gone.
type RemoteError struct {
	Code uint16
	Text string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("fleet: remote error %d: %s", e.Code, e.Text)
}

// Client is a synchronous wire-protocol client over one connection.
// Safe for concurrent use; requests are serialized on the connection.
type Client struct {
	addr string
	lim  Limits

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// Dial connects to a shard or coordinator address.
func Dial(addr string, lim Limits) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: dial %s: %w", addr, err)
	}
	return &Client{addr: addr, lim: lim.withDefaults(), conn: conn, br: bufio.NewReader(conn)}, nil
}

// Addr returns the dialed address.
func (c *Client) Addr() string { return c.addr }

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// do performs one request/response round trip. A transport failure
// closes the connection and is returned as-is (NOT a *RemoteError) —
// the caller's signal that the peer, not the request, failed.
func (c *Client) do(req *Message) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, fmt.Errorf("fleet: client %s: connection closed", c.addr)
	}
	if err := WriteMessage(c.conn, req); err != nil {
		c.conn.Close()
		c.conn = nil
		return nil, fmt.Errorf("fleet: %s: write: %w", c.addr, err)
	}
	resp, err := ReadMessage(c.br, c.lim)
	if err != nil {
		c.conn.Close()
		c.conn = nil
		return nil, fmt.Errorf("fleet: %s: read: %w", c.addr, err)
	}
	if resp.Type == MsgErr {
		return nil, &RemoteError{Code: resp.Code, Text: resp.Text}
	}
	return resp, nil
}

// expect performs do and checks the response type.
func (c *Client) expect(req *Message, want MsgType) (*Message, error) {
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	if resp.Type != want {
		return nil, fmt.Errorf("fleet: %s: response type 0x%02x, want 0x%02x: %w",
			c.addr, byte(resp.Type), byte(want), ErrBadMessage)
	}
	return resp, nil
}

// Open opens a fresh session described by spec.
func (c *Client) Open(spec OpenSpec) error {
	_, err := c.expect(&Message{Type: MsgOpen, Spec: spec}, MsgOK)
	return err
}

// Resume registers a session from checkpoint bytes under spec.
func (c *Client) Resume(spec OpenSpec, ckpt []byte) error {
	_, err := c.expect(&Message{Type: MsgResume, Spec: spec, Ckpt: ckpt}, MsgOK)
	return err
}

// Feed delivers one frame.
func (c *Client) Feed(id string, f core.Frame) error {
	_, err := c.expect(&Message{Type: MsgFeed, Spec: OpenSpec{ID: id}, Frames: []core.Frame{f}}, MsgOK)
	return err
}

// FeedN delivers an ordered batch.
func (c *Client) FeedN(id string, frames []core.Frame) error {
	_, err := c.expect(&Message{Type: MsgFeedBatch, Spec: OpenSpec{ID: id}, Frames: frames}, MsgOK)
	return err
}

// Snapshot fetches a session's counters.
func (c *Client) Snapshot(id string) (SnapInfo, error) {
	resp, err := c.expect(&Message{Type: MsgSnapshot, Spec: OpenSpec{ID: id}}, MsgSnapResp)
	if err != nil {
		return SnapInfo{}, err
	}
	return resp.Snap, nil
}

// Checkpoint fetches a session's current .bbck bytes; the session
// keeps running.
func (c *Client) Checkpoint(id string) ([]byte, error) {
	resp, err := c.expect(&Message{Type: MsgCheckpoint, Spec: OpenSpec{ID: id}}, MsgCkptResp)
	if err != nil {
		return nil, err
	}
	return resp.Ckpt, nil
}

// Detach drains and removes a session without finalizing, returning
// its .bbck bytes — the sending half of live migration.
func (c *Client) Detach(id string) ([]byte, error) {
	resp, err := c.expect(&Message{Type: MsgDetach, Spec: OpenSpec{ID: id}}, MsgCkptResp)
	if err != nil {
		return nil, err
	}
	return resp.Ckpt, nil
}

// Drain blocks until every frame fed to the session so far has been
// processed (shard-side timeout applies).
func (c *Client) Drain(id string) error {
	_, err := c.expect(&Message{Type: MsgDrain, Spec: OpenSpec{ID: id}}, MsgOK)
	return err
}

// CloseSession finalizes and removes a session.
func (c *Client) CloseSession(id string) error {
	_, err := c.expect(&Message{Type: MsgClose, Spec: OpenSpec{ID: id}}, MsgOK)
	return err
}

// Stats fetches the peer's fleet-level counters and session ids.
func (c *Client) Stats() (StatsInfo, error) {
	resp, err := c.expect(&Message{Type: MsgStats}, MsgStatsResp)
	if err != nil {
		return StatsInfo{}, err
	}
	return resp.Stats, nil
}
