package fleet

import (
	"fmt"
	"hash/fnv"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/gallery"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

// SessionAPI is the session-routing surface gallery fan-out needs,
// satisfied by both *Coordinator (consistent-hash routing across
// shards) and *Client (one shard). One gallery meeting ingested
// through a Coordinator therefore spreads its participants across the
// whole fleet.
type SessionAPI interface {
	Open(spec OpenSpec) error
	Resume(spec OpenSpec, ckpt []byte) error
	Feed(id string, f core.Frame) error
	Detach(id string) ([]byte, error)
}

var (
	_ SessionAPI = (*Coordinator)(nil)
	_ SessionAPI = (*Client)(nil)
)

// GallerySink adapts a SessionAPI into a gallery.Sink: joins open
// shard-routed sessions, demuxed tiles feed them (with an empty oracle
// — a composite carries no silhouette ground truth), leaves detach
// them (drain-without-finalize, so identification is never pinned on a
// short appearance), and rejoins resume from the detach snapshot. Not
// safe for concurrent use — drive it from one gallery.Fanout.
type GallerySink struct {
	api SessionAPI
	// SpecFor customizes the OpenSpec for a joining tile id (nil:
	// known-VB attack with a per-id FNV seed).
	SpecFor func(id string, w, h int) OpenSpec

	oracles  map[string]*imagex.Mask
	detached map[string][]byte
}

// NewGallerySink returns a sink feeding api.
func NewGallerySink(api SessionAPI) *GallerySink {
	return &GallerySink{
		api:      api,
		oracles:  map[string]*imagex.Mask{},
		detached: map[string][]byte{},
	}
}

// NewGalleryFanout wires a composite demuxer to a fleet: one Feed per
// composite frame drives tens of shard-routed sessions.
func NewGalleryFanout(cfg gallery.Config, api SessionAPI) (*gallery.Fanout, *GallerySink) {
	sink := NewGallerySink(api)
	return gallery.NewFanout(cfg, sink), sink
}

func (gs *GallerySink) spec(id string, w, h int) OpenSpec {
	if gs.SpecFor != nil {
		return gs.SpecFor(id, w, h)
	}
	h64 := fnv.New64a()
	h64.Write([]byte(id))
	return OpenSpec{ID: id, W: w, H: h, Seed: int64(h64.Sum64() >> 1)}
}

// OpenTile implements gallery.Sink.
func (gs *GallerySink) OpenTile(id string, w, h int) error {
	gs.oracles[id] = imagex.NewMask(w, h)
	return gs.api.Open(gs.spec(id, w, h))
}

// RejoinTile implements gallery.Sink.
func (gs *GallerySink) RejoinTile(id string, w, h int) error {
	data, ok := gs.detached[id]
	if !ok {
		return fmt.Errorf("fleet: gallery rejoin %q: no detach snapshot", id)
	}
	gs.oracles[id] = imagex.NewMask(w, h)
	if err := gs.api.Resume(gs.spec(id, w, h), data); err != nil {
		return err
	}
	delete(gs.detached, id)
	return nil
}

// FeedTile implements gallery.Sink.
func (gs *GallerySink) FeedTile(id string, img *imagex.Image) error {
	oracle := gs.oracles[id]
	if oracle == nil || oracle.W != img.W || oracle.H != img.H {
		oracle = imagex.NewMask(img.W, img.H)
		gs.oracles[id] = oracle
	}
	return gs.api.Feed(id, core.Frame{Img: img, Oracle: oracle})
}

// LeaveTile implements gallery.Sink.
func (gs *GallerySink) LeaveTile(id string) error {
	data, err := gs.api.Detach(id)
	if err != nil {
		return fmt.Errorf("fleet: gallery leave %q: %w", id, err)
	}
	gs.detached[id] = data
	return nil
}

// Detached returns the held detach snapshot for id, if any — the bytes
// a departed participant would resume from.
func (gs *GallerySink) Detached(id string) ([]byte, bool) {
	data, ok := gs.detached[id]
	return data, ok
}
