package fleet

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzLimits keeps per-iteration allocation small so the fuzzer can
// explore structure instead of filling RAM.
var fuzzLimits = Limits{
	MaxBody:  1 << 16,
	MaxDim:   64,
	MaxBatch: 8,
	MaxIDLen: 32,
	MaxCkpt:  1 << 12,
	MaxIDs:   64,
	MaxText:  128,
}

// FuzzWireDecode feeds crafted bytes to the wire decoder and enforces
// the two safety properties the protocol promises:
//
//  1. Never panic, never allocate beyond the DecodeLimits budgets —
//     any structural lie (oversized body, geometry bomb, bad mask
//     padding) is a clean error.
//  2. Canonical encoding: any accepted message re-encodes to the exact
//     input bytes, so there are no two wire spellings of one message.
func FuzzWireDecode(f *testing.F) {
	// Valid messages of every type.
	for _, m := range sampleMessages() {
		buf, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// Crafted adversarial seeds: header lies the decoder must reject.
	hdr := func(typ byte, bodyLen uint32, body []byte) []byte {
		b := []byte{'B', 'B', 'F', 'L', 1, 0, typ, 0}
		b = binary.LittleEndian.AppendUint32(b, bodyLen)
		return append(b, body...)
	}
	f.Add(hdr(0x02, 0xFFFFFFFF, nil))                                     // body-length bomb
	f.Add(hdr(0x02, 12, []byte{1, 0, 'z', 0xFF, 0xFF, 0xFF, 0xFF, 1, 2})) // geometry bomb
	f.Add(hdr(0x03, 7, []byte{1, 0, 'z', 0xFF, 0xFF, 0, 0}))              // batch-count bomb
	f.Add(hdr(0x44, 12, append([]byte{0, 0, 0, 0}, make([]byte, 8)...)))  // truncated stats
	f.Add(hdr(0x41, 4, []byte{1, 0, 0xFF, 0xFF}))                         // string-length bomb
	f.Add(hdr(0x06, 9, []byte{1, 0, 'a', 1, 0, 1, 0, 0, 5}))              // truncated resume
	f.Add([]byte("BBFL"))                                                 // bare magic
	f.Add(hdr(0x40, 1, []byte{0}))                                        // trailing byte on empty body
	f.Add(hdr(0x0C, 4, []byte{1, 2, 3, 4}))                               // truncated fence epoch
	f.Add(hdr(0x0D, 3, []byte{0xFF, 0xFF, 'a'}))                          // join addr-length bomb
	f.Add(hdr(0x0E, 2, []byte{0, 0}))                                     // empty drain-shard addr
	f.Add(hdr(0x45, 10, append(make([]byte, 8), 0xFF, 0xFF)))             // health shard-count bomb
	f.Add(hdr(0x45, 17, append(make([]byte, 10), 3, 0, 'x', 'y', 'z', 9, 1, 0, 0)))
	f.Add(hdr(0x0B, 1, []byte{0}))            // trailing byte on ping
	f.Add(hdr(0x11, 4, []byte{1, 0, 'a', 3})) // truncated set-weight
	f.Add(hdr(0x46, 2, []byte{0xFF, 0xFF}))   // load row-count bomb
	f.Add(hdr(0x46, 27, append(append([]byte{1, 0, 0, 0, 0, 1, 0},
		make([]byte, 18)...), 0xFF, 0xFF))) // load session-count bomb
	f.Add(hdr(0x47, 1, []byte{0x07})) // autopilot bad flags + truncation

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeWithLimits(data, fuzzLimits)
		if err != nil {
			return
		}
		re, err := Encode(m)
		if err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("non-canonical accept:\n in (%d bytes): %x\nout (%d bytes): %x",
				len(data), data, len(re), re)
		}
		// An accepted message must also decode identically under the
		// default (larger) budgets — budgets only ever reject, never
		// reinterpret.
		if _, err := Decode(data); err != nil {
			t.Fatalf("accepted under fuzz limits but rejected under defaults: %v", err)
		}
	})
}

// TestWireCorpusRoundTrip runs the fuzz property over the full sample
// corpus deterministically — the golden round-trip gate that runs on
// every plain `go test`, no fuzz engine needed.
func TestWireCorpusRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		buf, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeWithLimits(buf, Limits{})
		if err != nil {
			t.Fatalf("type 0x%02x: %v", byte(m.Type), err)
		}
		re, err := Encode(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, re) {
			t.Fatalf("type 0x%02x: corpus entry not canonical", byte(m.Type))
		}
	}
}
