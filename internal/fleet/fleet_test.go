package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/faultinject"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/segment"
	"github.com/bgbuster/bgbuster/internal/session"
)

const fw, fh = 48, 36

// fleetTestOptions is the OptionsFor hook under test: a two-candidate
// known-image dictionary at the spec geometry plus the oracle
// segmenter — deterministic, so any two sessions fed the same frames
// produce bit-identical checkpoints.
func fleetTestOptions(spec OpenSpec) core.Options {
	o := core.DefaultOptions()
	o.KnownImages = map[string]*imagex.Image{
		"flat":  imagex.NewFilled(spec.W, spec.H, imagex.RGB{R: 20, G: 120, B: 220}),
		"other": imagex.NewFilled(spec.W, spec.H, imagex.RGB{R: 200, G: 10, B: 10}),
	}
	o.Segmenter = segment.OracleSegmenter{}
	o.ColorRefine = false
	return o
}

// leakFrames builds n frames of pure "flat" VB with a per-frame-moving
// leaked background rectangle (so every prefix length yields distinct
// checkpoint bytes), plus empty oracle silhouettes.
func leakFrames(n int) ([]*imagex.Image, []*imagex.Mask) {
	frames := make([]*imagex.Image, n)
	sils := make([]*imagex.Mask, n)
	for i := range frames {
		f := imagex.NewFilled(fw, fh, imagex.RGB{R: 20, G: 120, B: 220})
		x0 := 4 + i%8
		for y := 6; y < 24; y++ {
			for x := x0; x < x0+16; x++ {
				f.Set(x, y, imagex.RGB{R: 240, G: 240, B: 60})
			}
		}
		frames[i] = f
		sils[i] = imagex.NewMask(fw, fh)
	}
	return frames, sils
}

// chaosListener wraps a listener so a test can kill the shard the way
// a process death would: the listener stops accepting AND every
// established connection drops.
type chaosListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *chaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

func (l *chaosListener) Kill() {
	l.Listener.Close()
	l.mu.Lock()
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

type testShard struct {
	addr string
	mgr  *session.Manager
	ln   *chaosListener
	done chan struct{}
}

// startShard boots one worker shard on a loopback port.
func startShard(t *testing.T) *testShard {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &chaosListener{Listener: ln}
	mgr := session.NewManager(session.Config{})
	sh, err := NewShard(ShardConfig{Manager: mgr, OptionsFor: fleetTestOptions, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := &testShard{addr: ln.Addr().String(), mgr: mgr, ln: cl, done: make(chan struct{})}
	go func() {
		defer close(ts.done)
		sh.Serve(cl)
	}()
	t.Cleanup(func() {
		cl.Kill()
		<-ts.done
		mgr.Close()
	})
	return ts
}

func TestShardEndToEnd(t *testing.T) {
	ts := startShard(t)
	cl, err := Dial(ts.addr, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	spec := OpenSpec{ID: "call-00", W: fw, H: fh, Seed: 1}
	if err := cl.Open(spec); err != nil {
		t.Fatal(err)
	}
	var remote *RemoteError
	if err := cl.Open(spec); !errors.As(err, &remote) || remote.Code != CodeExists {
		t.Fatalf("duplicate open: %v", err)
	}
	if err := cl.Feed("ghost", core.Frame{Img: imagex.New(fw, fh), Oracle: imagex.NewMask(fw, fh)}); !errors.As(err, &remote) || remote.Code != CodeNoSession {
		t.Fatalf("feed unknown id: %v", err)
	}

	frames, sils := leakFrames(15)
	for i := 0; i < 5; i++ {
		if err := cl.Feed(spec.ID, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]core.Frame, 0, 10)
	for i := 5; i < 15; i++ {
		batch = append(batch, core.Frame{Img: frames[i], Oracle: sils[i]})
	}
	if err := cl.FeedN(spec.ID, batch); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(spec.ID); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.Snapshot(spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Fed != 15 || snap.Processed != 15 || snap.StreamFrames != 15 {
		t.Fatalf("snapshot counters: %+v", snap)
	}
	if !snap.Identified || snap.VBName != "flat" {
		t.Fatalf("identification did not cross the wire: %+v", snap)
	}
	if snap.Coverage <= 0 || snap.Coverage > 1 {
		t.Fatalf("coverage fraction out of range: %v", snap.Coverage)
	}
	ckpt, err := cl.Checkpoint(spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpt) == 0 || string(ckpt[:4]) != "BBCK" {
		t.Fatalf("checkpoint bytes do not start with BBCK container magic: %d bytes", len(ckpt))
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Open != 1 || len(st.IDs) != 1 || st.IDs[0] != spec.ID {
		t.Fatalf("stats: %+v", st)
	}
	if err := cl.CloseSession(spec.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Snapshot(spec.ID); !errors.As(err, &remote) || remote.Code != CodeNoSession {
		t.Fatalf("snapshot after close: %v", err)
	}
}

func TestRingStability(t *testing.T) {
	shards := []string{"10.0.0.1:9", "10.0.0.2:9", "10.0.0.3:9"}
	r := NewRing(shards, 0)
	counts := map[string]int{}
	moved := 0
	const n = 1000
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("sess-%04d", i)
		a := r.Lookup(id)
		counts[a]++
		// Removing one shard must only remap the ids it owned.
		b := r.LookupSkip(id, func(addr string) bool { return addr == shards[0] })
		if a != shards[0] && b != a {
			t.Fatalf("id %q moved %s -> %s though its shard survived", id, a, b)
		}
		if a == shards[0] {
			moved++
			if b == shards[0] {
				t.Fatalf("id %q still routed to a skipped shard", id)
			}
		}
	}
	for _, s := range shards {
		if counts[s] < n/10 {
			t.Fatalf("shard %s owns only %d/%d ids — ring badly unbalanced: %v", s, counts[s], n, counts)
		}
	}
	if moved == 0 {
		t.Fatal("no ids on the removed shard; distribution test is vacuous")
	}
	if got := NewRing(nil, 4).Lookup("x"); got != "" {
		t.Fatalf("empty ring lookup = %q", got)
	}
}

// TestFleetMigrationParity live-migrates a session between two shards
// at frame k — including k=5 inside the default identification window
// (pin at 10) — and requires the final checkpoint bytes to be
// bit-identical to an unmigrated single-manager run.
func TestFleetMigrationParity(t *testing.T) {
	const n = 20
	frames, sils := leakFrames(n)

	for _, k := range []int{2, 5, 12} {
		sA, sB := startShard(t), startShard(t)
		coord, err := NewCoordinator(CoordinatorConfig{Shards: []string{sA.addr, sB.addr}, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}

		id := fmt.Sprintf("migrate-%02d", k)
		spec := OpenSpec{ID: id, W: fw, H: fh, Seed: 1}

		// Unmigrated baseline on a plain manager.
		base := session.NewManager(session.Config{})
		bs, err := base.Open(id, fw, fh, fleetTestOptions(spec))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := bs.Feed(frames[i], sils[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := bs.Drain(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		want, err := bs.CheckpointBytes()
		if err != nil {
			t.Fatal(err)
		}
		base.Close()

		// Fleet leg: k frames on the source shard, migrate, rest on the
		// target.
		if err := coord.Open(spec); err != nil {
			t.Fatal(err)
		}
		src := coord.RouteOf(id)
		dst := sA.addr
		if src == sA.addr {
			dst = sB.addr
		}
		for i := 0; i < k; i++ {
			if err := coord.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
				t.Fatal(err)
			}
		}
		if err := coord.Migrate(id, dst); err != nil {
			t.Fatal(err)
		}
		if got := coord.RouteOf(id); got != dst {
			t.Fatalf("route after migrate = %s, want %s", got, dst)
		}
		if coord.Migrations() != 1 {
			t.Fatalf("migrations = %d", coord.Migrations())
		}
		snap, err := coord.Snapshot(id)
		if err != nil {
			t.Fatal(err)
		}
		if !snap.Restored || snap.StreamFrames != uint64(k) {
			t.Fatalf("post-migration snapshot: %+v", snap)
		}
		if k < 10 && snap.Identified {
			t.Fatalf("k=%d: identified before the window — test no longer exercises mid-window migration", k)
		}
		for i := k; i < n; i++ {
			if err := coord.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
				t.Fatal(err)
			}
		}
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
		got, err := coord.Checkpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("k=%d: migrated checkpoint differs from unmigrated baseline (%d vs %d bytes)", k, len(got), len(want))
		}
		fin, err := coord.Snapshot(id)
		if err != nil {
			t.Fatal(err)
		}
		if !fin.Identified || fin.VBName != "flat" || fin.StreamFrames != n {
			t.Fatalf("k=%d: final snapshot: %+v", k, fin)
		}
		coord.Close()
	}
}

// pickIDs deterministically selects per ids per shard from a numbered
// id sequence.
func pickIDs(r *Ring, shards []string, per int) (ids []string, byShard map[string][]string) {
	byShard = map[string][]string{}
	for i := 0; len(ids) < per*len(shards) && i < 10000; i++ {
		id := fmt.Sprintf("sess-%03d", i)
		a := r.Lookup(id)
		if len(byShard[a]) < per {
			byShard[a] = append(byShard[a], id)
			ids = append(ids, id)
		}
	}
	return ids, byShard
}

// TestFleetShardLossRecovery kills one of two shards mid-feed under a
// deterministic fault-injected delivery schedule and requires the
// coordinator to re-resume the lost shard's sessions on the survivor
// bit-identically from the last replicated checkpoints, losing at most
// the frames fed since replication.
func TestFleetShardLossRecovery(t *testing.T) {
	const (
		total       = 12
		replicateAt = 7 // frames fed before the replication pull
		killAt      = 9 // frames fed when the shard dies
	)
	baseFrames, baseSils := leakFrames(total)

	// The delivery schedule the call actually experiences: seeded drops
	// and duplicates, identical for baseline and fleet legs.
	inj := faultinject.New(faultinject.Profile{Seed: 7, Drop: 0.15, Dup: 0.15})
	delivery := inj.Apply(baseFrames, baseSils)
	if len(delivery) < killAt+1 {
		t.Fatalf("delivery schedule too short (%d) for the kill point", len(delivery))
	}
	t.Logf("delivery schedule: %d frames from %d inputs (%v)", len(delivery), total, inj.Counters())

	sA, sB := startShard(t), startShard(t)
	store := session.NewMemStore()
	coord, err := NewCoordinator(CoordinatorConfig{
		Shards: []string{sA.addr, sB.addr},
		Store:  store,
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ids, byShard := pickIDs(coord.ring, []string{sA.addr, sB.addr}, 2)
	if len(byShard[sA.addr]) != 2 || len(byShard[sB.addr]) != 2 {
		t.Fatalf("id selection did not cover both shards: %v", byShard)
	}

	// Baseline: one plain session fed the full delivery schedule.
	spec0 := OpenSpec{W: fw, H: fh, Seed: 1}
	base := session.NewManager(session.Config{})
	defer base.Close()
	bs, err := base.Open("baseline", fw, fh, fleetTestOptions(spec0))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range delivery {
		if err := bs.Feed(d.Img, d.Oracle); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	wantFinal, err := bs.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}

	feed := func(id string, from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := coord.Feed(id, core.Frame{Img: delivery[i].Img, Oracle: delivery[i].Oracle}); err != nil {
				t.Fatalf("feed %s[%d]: %v", id, i, err)
			}
		}
	}

	for _, id := range ids {
		if err := coord.Open(OpenSpec{ID: id, W: fw, H: fh, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		feed(id, 0, replicateAt)
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Replicate(); err != nil {
		t.Fatal(err)
	}
	saved := map[string][]byte{}
	for _, id := range ids {
		b, err := store.Load(id)
		if err != nil {
			t.Fatalf("replicated checkpoint missing for %s: %v", id, err)
		}
		saved[id] = b
	}

	// Frames fed after the last replication — the at-risk window.
	for _, id := range ids {
		feed(id, replicateAt, killAt)
	}
	for _, id := range byShard[sB.addr] {
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
	}

	// Kill shard A mid-feed: listener and every live connection drop.
	sA.ln.Kill()

	// The next routed request to a lost session triggers recovery of
	// every session the shard owned — and itself succeeds via retry.
	snap, err := coord.Snapshot(byShard[sA.addr][0])
	if err != nil {
		t.Fatalf("snapshot across shard loss: %v", err)
	}
	if !snap.Restored || snap.StreamFrames != replicateAt {
		t.Fatalf("recovered snapshot: %+v (want restored at %d frames)", snap, replicateAt)
	}
	if down := coord.Down(); len(down) != 1 || down[0] != sA.addr {
		t.Fatalf("down = %v, want [%s]", down, sA.addr)
	}
	resumed, reopened, failed := coord.Recoveries()
	if resumed != 2 || reopened != 0 || failed != 0 {
		t.Fatalf("recoveries = (%d resumed, %d reopened, %d failed), want (2, 0, 0)", resumed, reopened, failed)
	}

	// Bit-identical recovery: the re-resumed sessions' checkpoint bytes
	// must equal the replicated .bbck they were resumed from.
	for _, id := range byShard[sA.addr] {
		if coord.RouteOf(id) != sB.addr {
			t.Fatalf("session %s not re-routed to survivor", id)
		}
		got, err := coord.Checkpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, saved[id]) {
			t.Fatalf("session %s: recovered state not bit-identical to replicated checkpoint", id)
		}
	}

	// Every session lost at most the frames since its last checkpoint:
	// survivors kept all killAt frames, recovered sessions rewound to
	// replicateAt. Refeed the gap and finish the call everywhere.
	for _, id := range ids {
		snap, err := coord.Snapshot(id)
		if err != nil {
			t.Fatal(err)
		}
		wantFloor := uint64(killAt)
		if coord.RouteOf(id) == sB.addr && snap.Restored {
			wantFloor = replicateAt
		}
		if snap.StreamFrames != wantFloor {
			t.Fatalf("session %s at %d frames, want %d", id, snap.StreamFrames, wantFloor)
		}
		feed(id, int(snap.StreamFrames), len(delivery))
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
		final, err := coord.Checkpoint(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(final, wantFinal) {
			t.Fatalf("session %s: post-recovery replay diverged from baseline (%d vs %d bytes)", id, len(final), len(wantFinal))
		}
	}

	st := coord.Stats()
	if st.Open != 4 || len(st.IDs) != 4 {
		t.Fatalf("aggregate stats after recovery: %+v", st)
	}
}

// TestFleetPartitionedCoordinator severs the coordinator's
// connectivity to one shard whose manager keeps running: the
// coordinator must route around it (re-resuming its sessions on the
// survivor), while the old shard keeps its now-orphaned incarnation —
// the documented split-brain the partition matrix accepts (DESIGN.md
// §15).
func TestFleetPartitionedCoordinator(t *testing.T) {
	const pre = 5
	frames, sils := leakFrames(pre + 3)
	sA, sB := startShard(t), startShard(t)
	store := session.NewMemStore()
	coord, err := NewCoordinator(CoordinatorConfig{Shards: []string{sA.addr, sB.addr}, Store: store, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	_, byShard := pickIDs(coord.ring, []string{sA.addr, sB.addr}, 1)
	idA, idB := byShard[sA.addr][0], byShard[sB.addr][0]
	for _, id := range []string{idA, idB} {
		if err := coord.Open(OpenSpec{ID: id, W: fw, H: fh, Seed: 1}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pre; i++ {
			if err := coord.Feed(id, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
				t.Fatal(err)
			}
		}
		if err := coord.Drain(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Replicate(); err != nil {
		t.Fatal(err)
	}

	// Partition: connections and listener die; shard A's manager lives.
	sA.ln.Kill()

	// Feeding idA now must succeed — recovered onto B behind the scenes.
	if err := coord.Feed(idA, core.Frame{Img: frames[pre], Oracle: sils[pre]}); err != nil {
		t.Fatalf("feed across partition: %v", err)
	}
	if got := coord.RouteOf(idA); got != sB.addr {
		t.Fatalf("idA routed to %s, want survivor %s", got, sB.addr)
	}
	if err := coord.Drain(idA); err != nil {
		t.Fatal(err)
	}
	snap, err := coord.Snapshot(idA)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Restored || snap.StreamFrames != pre+1 {
		t.Fatalf("recovered idA snapshot: %+v", snap)
	}

	// Split brain: the partitioned shard still runs its incarnation.
	if orphan, ok := sA.mgr.Get(idA); !ok {
		t.Fatal("partitioned shard lost its session — expected a live orphan incarnation")
	} else if orphan.Stats().StreamFrames != pre {
		t.Fatalf("orphan incarnation at %d frames, want %d", orphan.Stats().StreamFrames, pre)
	}

	// The unaffected session never noticed.
	snapB, err := coord.Snapshot(idB)
	if err != nil {
		t.Fatal(err)
	}
	if snapB.Restored || snapB.StreamFrames != pre {
		t.Fatalf("idB snapshot: %+v", snapB)
	}
}

// TestCoordinatorWireFacade drives a coordinator through its own
// served wire endpoint (bgbuster serve topology: client -> coordinator
// -> shard).
func TestCoordinatorWireFacade(t *testing.T) {
	sh := startShard(t)
	coord, err := NewCoordinator(CoordinatorConfig{Shards: []string{sh.addr}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); Serve(ln, coord, Limits{}, t.Logf) }()
	t.Cleanup(func() { ln.Close(); <-done })

	cl, err := Dial(ln.Addr().String(), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	spec := OpenSpec{ID: "via-coord", W: fw, H: fh, Seed: 1}
	if err := cl.Open(spec); err != nil {
		t.Fatal(err)
	}
	frames, sils := leakFrames(3)
	for i := range frames {
		if err := cl.Feed(spec.ID, core.Frame{Img: frames[i], Oracle: sils[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Drain(spec.ID); err != nil {
		t.Fatal(err)
	}
	snap, err := cl.Snapshot(spec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.StreamFrames != 3 {
		t.Fatalf("snapshot via coordinator endpoint: %+v", snap)
	}
	var remote *RemoteError
	if _, err := cl.Snapshot("nope"); !errors.As(err, &remote) || remote.Code != CodeNoSession {
		t.Fatalf("error code did not survive the double hop: %v", err)
	}
	if err := cl.CloseSession(spec.ID); err != nil {
		t.Fatal(err)
	}
}

// TestServeUnblocksIdleConnsOnClose pins the shutdown contract: a
// coordinator parks idle persistent clients in ReadMessage, and a
// SIGTERM'd shard must not wait on them — closing the listener has to
// unwind every open connection so Serve can return. (Found live: a
// shard with one idle coordinator connection hung forever after its
// listener closed.)
func TestServeUnblocksIdleConnsOnClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mgr := session.NewManager(session.Config{})
	defer mgr.Close()
	sh, err := NewShard(ShardConfig{Manager: mgr, OptionsFor: fleetTestOptions, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); sh.Serve(ln) }()

	// An idle persistent connection, parked between requests — the
	// exact state a coordinator's cached client sits in.
	cl, err := Dial(ln.Addr().String(), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}

	ln.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve still blocked on an idle connection 5s after listener close")
	}
}
