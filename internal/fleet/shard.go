package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/session"
)

// Handler answers one decoded request with one response message. Both
// Shard (local session.Manager) and Coordinator (routing proxy)
// implement it, so the same Serve loop fronts either role.
type Handler interface {
	Handle(req *Message) *Message
}

// ConnState is the per-connection context Serve threads through a
// ConnHandler: today just the fencing epoch the connection declared
// via MsgFence (0 = unfenced — a plain client exempt from fencing).
type ConnState struct {
	Epoch uint64
}

// ConnHandler is an optional Handler refinement for handlers that need
// per-connection state (the shard's fencing check). Serve uses it when
// implemented, falling back to Handle otherwise.
type ConnHandler interface {
	HandleConn(cs *ConnState, req *Message) *Message
}

// Serve accepts connections on ln and runs one request/response loop
// per connection until ln is closed. Each request is budget-checked by
// lim before any allocation. Serve returns when Accept fails
// (listener closed); closing the listener also closes every open
// connection — coordinators park idle persistent clients in
// ReadMessage, and a shutdown must not wait on them.
func Serve(ln net.Listener, h Handler, lim Limits, logf func(format string, args ...any)) error {
	lim = lim.withDefaults()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		conns = map[net.Conn]struct{}{}
	)
	defer wg.Wait()
	defer func() {
		mu.Lock()
		for c := range conns {
			c.Close()
		}
		mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
				conn.Close()
			}()
			serveConn(conn, h, lim, logf)
		}()
	}
}

func serveConn(conn net.Conn, h Handler, lim Limits, logf func(string, ...any)) {
	br := bufio.NewReader(conn)
	ch, connAware := h.(ConnHandler)
	cs := &ConnState{}
	for {
		req, err := ReadMessage(br, lim)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && logf != nil {
				logf("fleet: %s: read: %v", conn.RemoteAddr(), err)
			}
			// A malformed request poisons the stream framing; answer once
			// and drop the connection rather than guess at resync.
			if errors.Is(err, ErrBadMessage) || errors.Is(err, ErrVersion) {
				_ = WriteMessage(conn, errMsg(CodeBadReq, err.Error()))
			}
			return
		}
		var resp *Message
		if connAware {
			resp = ch.HandleConn(cs, req)
		} else {
			resp = h.Handle(req)
		}
		if resp == nil {
			resp = errMsg(CodeInternal, "no response")
		}
		if err := WriteMessage(conn, resp); err != nil {
			if logf != nil {
				logf("fleet: %s: write: %v", conn.RemoteAddr(), err)
			}
			return
		}
	}
}

func errMsg(code uint16, text string) *Message {
	return &Message{Type: MsgErr, Code: code, Text: text}
}

func okMsg() *Message { return &Message{Type: MsgOK} }

// ShardConfig configures a worker shard.
type ShardConfig struct {
	// Manager hosts the shard's sessions (required). The shard reuses
	// all of its machinery — admission control, supervisor restarts,
	// circuit breaker, checkpoint cycles.
	Manager *session.Manager
	// OptionsFor derives reconstruction options from an open/resume
	// spec (required). Injected so fleet does not import the facade.
	OptionsFor func(spec OpenSpec) core.Options
	// Limits bounds decode budgets (zero value: defaults).
	Limits Limits
	// DrainTimeout bounds a MsgDrain barrier (default 30s).
	DrainTimeout time.Duration
	// Logf receives serve-loop diagnostics (nil: silent).
	Logf func(format string, args ...any)
}

// Shard serves one session.Manager over the wire protocol: ingest,
// snapshots, checkpoint export, resume, and the detach half of live
// migration. It also enforces coordinator fencing: the highest epoch
// any connection has declared via MsgFence is remembered, and
// state-changing requests from connections fenced at a lower epoch are
// rejected with CodeFenced — a deposed coordinator's stale migrations
// and feeds die here instead of racing the new coordinator's.
type Shard struct {
	cfg ShardConfig

	mu       sync.Mutex
	maxEpoch uint64

	feedMicros atomic.Uint64 // EWMA of per-frame feed handling latency
}

// observeFeed folds one feed request's handling time into the
// per-frame latency EWMA (alpha 1/8) the load sampler reports — the
// rebalancer's latency signal for hot shards.
func (s *Shard) observeFeed(d time.Duration, frames int) {
	if frames <= 0 {
		return
	}
	us := uint64(d.Microseconds()) / uint64(frames)
	for {
		old := s.feedMicros.Load()
		next := us
		if old != 0 {
			next = old + (us-old)/8
			if us < old {
				next = old - (old-us)/8
			}
		}
		if s.feedMicros.CompareAndSwap(old, next) {
			return
		}
	}
}

// FeedLatency returns the current per-frame feed latency EWMA.
func (s *Shard) FeedLatency() time.Duration {
	return time.Duration(s.feedMicros.Load()) * time.Microsecond
}

// NewShard validates the config and returns a shard handler.
func NewShard(cfg ShardConfig) (*Shard, error) {
	if cfg.Manager == nil {
		return nil, errors.New("fleet: ShardConfig.Manager is required")
	}
	if cfg.OptionsFor == nil {
		return nil, errors.New("fleet: ShardConfig.OptionsFor is required")
	}
	cfg.Limits = cfg.Limits.withDefaults()
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	return &Shard{cfg: cfg}, nil
}

// Serve runs the accept loop on ln until it is closed.
func (s *Shard) Serve(ln net.Listener) error {
	return Serve(ln, s, s.cfg.Limits, s.cfg.Logf)
}

// Handle answers one request against the local manager on an unfenced
// (plain-client) connection.
func (s *Shard) Handle(req *Message) *Message {
	return s.HandleConn(&ConnState{}, req)
}

// Fenced reports the highest coordinator epoch this shard has seen.
func (s *Shard) Fenced() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxEpoch
}

// mutates reports whether a request changes session state — the set
// fencing guards. Reads (snapshot, checkpoint export, stats, ping)
// stay answerable on any connection: a deposed coordinator observing
// state is harmless, a deposed coordinator changing it is not.
func mutates(t MsgType) bool {
	switch t {
	case MsgOpen, MsgResume, MsgFeed, MsgFeedBatch, MsgClose, MsgDetach, MsgDrain:
		return true
	}
	return false
}

// HandleConn answers one request, applying the fencing check for
// connections that declared an epoch.
func (s *Shard) HandleConn(cs *ConnState, req *Message) *Message {
	if req.Type == MsgFence {
		s.mu.Lock()
		if req.Epoch < s.maxEpoch {
			max := s.maxEpoch
			s.mu.Unlock()
			return errMsg(CodeFenced, fmt.Sprintf("epoch %d is stale: shard fenced at epoch %d", req.Epoch, max))
		}
		s.maxEpoch = req.Epoch
		s.mu.Unlock()
		cs.Epoch = req.Epoch
		return okMsg()
	}
	if cs.Epoch > 0 && mutates(req.Type) {
		s.mu.Lock()
		max := s.maxEpoch
		s.mu.Unlock()
		if cs.Epoch < max {
			return errMsg(CodeFenced, fmt.Sprintf("connection epoch %d deposed by epoch %d", cs.Epoch, max))
		}
	}
	mgr := s.cfg.Manager
	switch req.Type {
	case MsgPing:
		return okMsg()
	case MsgOpen:
		_, err := mgr.Open(req.Spec.ID, req.Spec.W, req.Spec.H, s.cfg.OptionsFor(req.Spec))
		return status(err)
	case MsgResume:
		_, err := mgr.ResumeSession(req.Spec.ID, req.Ckpt, s.cfg.OptionsFor(req.Spec))
		return status(err)
	case MsgFeed:
		f := req.Frames[0]
		start := time.Now()
		resp := status(mgr.Feed(req.Spec.ID, f.Img, f.Oracle))
		s.observeFeed(time.Since(start), 1)
		return resp
	case MsgFeedBatch:
		start := time.Now()
		resp := status(mgr.FeedN(req.Spec.ID, req.Frames))
		s.observeFeed(time.Since(start), len(req.Frames))
		return resp
	case MsgLoad:
		st := mgr.Stats()
		row := ShardLoad{Mem: st.MemUsed, FeedMicros: s.feedMicros.Load()}
		for _, sn := range st.Sessions {
			row.Sess = append(row.Sess, SessionLoad{ID: sn.ID, Mem: sn.MemBytes, Frames: sn.StreamFrames})
		}
		return &Message{Type: MsgLoadResp, Loads: []ShardLoad{row}}
	case MsgSnapshot:
		sess, ok := mgr.Get(req.Spec.ID)
		if !ok {
			return errMsg(CodeNoSession, fmt.Sprintf("session %q not found", req.Spec.ID))
		}
		return &Message{Type: MsgSnapResp, Snap: snapInfo(sess.Stats())}
	case MsgCheckpoint:
		sess, ok := mgr.Get(req.Spec.ID)
		if !ok {
			return errMsg(CodeNoSession, fmt.Sprintf("session %q not found", req.Spec.ID))
		}
		data, err := sess.CheckpointBytes()
		if err != nil {
			return statusErr(err)
		}
		return &Message{Type: MsgCkptResp, Ckpt: data}
	case MsgDetach:
		sess, ok := mgr.Get(req.Spec.ID)
		if !ok {
			return errMsg(CodeNoSession, fmt.Sprintf("session %q not found", req.Spec.ID))
		}
		data, err := sess.Detach()
		if err != nil {
			return statusErr(err)
		}
		return &Message{Type: MsgCkptResp, Ckpt: data}
	case MsgDrain:
		sess, ok := mgr.Get(req.Spec.ID)
		if !ok {
			return errMsg(CodeNoSession, fmt.Sprintf("session %q not found", req.Spec.ID))
		}
		return status(sess.Drain(s.cfg.DrainTimeout))
	case MsgClose:
		sess, ok := mgr.Get(req.Spec.ID)
		if !ok {
			return errMsg(CodeNoSession, fmt.Sprintf("session %q not found", req.Spec.ID))
		}
		return status(sess.Close())
	case MsgStats:
		st := mgr.Stats()
		info := StatsInfo{
			Open:     uint32(st.Open),
			Opened:   st.Opened,
			Restores: st.Restored,
			Restarts: st.Restarts,
		}
		for _, sn := range st.Sessions {
			info.IDs = append(info.IDs, sn.ID)
		}
		return &Message{Type: MsgStatsResp, Stats: info}
	default:
		return errMsg(CodeBadReq, fmt.Sprintf("unexpected message type 0x%02x", byte(req.Type)))
	}
}

// snapInfo projects a session snapshot onto the wire struct.
func snapInfo(st session.Snapshot) SnapInfo {
	return SnapInfo{
		ID:           st.ID,
		Health:       uint8(st.Health),
		Identified:   st.Identified,
		Restored:     st.Restored,
		Finalized:    st.Finalized,
		Fed:          st.FramesFed,
		Dropped:      st.FramesDropped,
		Rejected:     st.FramesRejected,
		Processed:    st.FramesProcessed,
		StreamFrames: st.StreamFrames,
		Coverage:     st.CoveragePct / 100,
		VBName:       st.VBName,
	}
}

// status maps a session-layer error onto a wire response.
func status(err error) *Message {
	if err == nil {
		return okMsg()
	}
	return statusErr(err)
}

func statusErr(err error) *Message {
	code := CodeInternal
	switch {
	case errors.Is(err, session.ErrNoSession):
		code = CodeNoSession
	case errors.Is(err, session.ErrExists):
		code = CodeExists
	case errors.Is(err, session.ErrFleetFull), errors.Is(err, session.ErrMemoryBudget):
		code = CodeAdmission
	}
	return errMsg(code, err.Error())
}
