package fleet

import (
	"sort"
	"time"
)

// HealthState is one shard's position in the routing health machine.
// The machine distinguishes two failure signals: a hard transport
// error (connection refused/reset — the process is gone) jumps
// straight to down and triggers recovery, while a deadline expiry (the
// peer may be alive but slow or partitioned) only counts a strike —
// up -> suspect after SuspectAfter strikes, suspect -> down after
// DownAfter. Any successful round trip resets a non-down shard to up;
// down is sticky until the shard rejoins via Join.
type HealthState uint8

const (
	HealthUp HealthState = iota
	HealthSuspect
	HealthDown
)

func (s HealthState) String() string {
	switch s {
	case HealthUp:
		return "up"
	case HealthSuspect:
		return "suspect"
	case HealthDown:
		return "down"
	}
	return "unknown"
}

// HealthConfig tunes the coordinator's shard health machinery.
type HealthConfig struct {
	// ProbeInterval is the cadence of the background ping loop (0: no
	// background probes; ProbeOnce still works — tests drive it
	// manually for determinism).
	ProbeInterval time.Duration
	// SuspectAfter is the consecutive timeouts marking a shard suspect
	// (<=0: 1).
	SuspectAfter int
	// DownAfter is the consecutive timeouts marking a shard down and
	// triggering session recovery (<=0: 3; clamped to >= SuspectAfter).
	DownAfter int
	// OpRetries bounds same-shard retries of an idempotent request
	// after a timeout (<0: 0 — surface the first timeout; 0 default: 2).
	OpRetries int
	// RetryBackoff is the base of the capped exponential backoff
	// between retries (<=0: 50ms).
	RetryBackoff time.Duration
	// RetryBackoffCap caps the backoff (<=0: 1s).
	RetryBackoffCap time.Duration
	// Seed drives the retry jitter (deterministic by default).
	Seed int64
}

func (h HealthConfig) withDefaults() HealthConfig {
	if h.SuspectAfter <= 0 {
		h.SuspectAfter = 1
	}
	if h.DownAfter <= 0 {
		h.DownAfter = 3
	}
	if h.DownAfter < h.SuspectAfter {
		h.DownAfter = h.SuspectAfter
	}
	if h.OpRetries == 0 {
		h.OpRetries = 2
	}
	if h.OpRetries < 0 {
		h.OpRetries = 0
	}
	if h.RetryBackoff <= 0 {
		h.RetryBackoff = 50 * time.Millisecond
	}
	if h.RetryBackoffCap <= 0 {
		h.RetryBackoffCap = time.Second
	}
	return h
}

// shardHealth is one shard's state under c.mu.
type shardHealth struct {
	state HealthState
	fails uint32 // consecutive timeout strikes
}

// markUp resets a shard to healthy after any successful round trip.
// Down stays down — its sessions have already been recovered away, and
// flapping it back without a Join would split ownership.
func (c *Coordinator) markUp(addr string) {
	c.mu.Lock()
	if h, ok := c.health[addr]; ok && h.state != HealthDown {
		h.state = HealthUp
		h.fails = 0
	}
	c.mu.Unlock()
}

// recordTimeout counts one deadline strike against addr and reports
// whether the shard just crossed the down threshold (the caller then
// runs shard-loss recovery outside the lock).
func (c *Coordinator) recordTimeout(addr string) (lost bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.health[addr]
	if !ok || h.state == HealthDown {
		return false
	}
	h.fails++
	switch {
	case int(h.fails) >= c.cfg.Health.DownAfter:
		h.state = HealthDown
		return true
	case int(h.fails) >= c.cfg.Health.SuspectAfter:
		h.state = HealthSuspect
	}
	return false
}

// backoff sleeps the capped-jitter retry delay for the given retry
// ordinal: full jitter over [d/2, d] where d doubles per retry up to
// the cap, so synchronized retries from many sessions spread out.
func (c *Coordinator) backoff(retry int) {
	d := c.cfg.Health.RetryBackoff << (retry - 1)
	if cap := c.cfg.Health.RetryBackoffCap; d > cap || d <= 0 {
		d = cap
	}
	c.rngMu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.rngMu.Unlock()
	time.Sleep(jittered)
}

// ProbeOnce pings every non-down member once and feeds the results to
// the health machine: a hard transport error is shard loss, a timeout
// is a strike (escalating to loss past DownAfter), success resets to
// up. It returns the post-probe states. The background loop calls
// this on ProbeInterval; tests call it directly for determinism.
func (c *Coordinator) ProbeOnce() map[string]HealthState {
	c.mu.Lock()
	addrs := make([]string, 0, len(c.members))
	for _, a := range c.members {
		if !c.down[a] && !c.draining[a] {
			addrs = append(addrs, a)
		}
	}
	c.mu.Unlock()
	sort.Strings(addrs)
	for _, addr := range addrs {
		c.mu.Lock()
		cl, err := c.clientLocked(addr)
		c.mu.Unlock()
		if err == nil {
			err = cl.Ping()
		}
		switch {
		case err == nil:
			c.markUp(addr)
		case isTimeout(err):
			if c.recordTimeout(addr) {
				c.logf("fleet: probe: shard %s reached its timeout threshold; recovering", addr)
				c.handleShardLoss(addr)
			}
		default:
			c.logf("fleet: probe: shard %s unreachable (%v); recovering", addr, err)
			c.handleShardLoss(addr)
		}
	}
	states := map[string]HealthState{}
	c.mu.Lock()
	for _, a := range c.members {
		st := HealthDown
		if h, ok := c.health[a]; ok && !c.down[a] {
			st = h.state
		}
		states[a] = st
	}
	c.mu.Unlock()
	return states
}

// probeLoop drives ProbeOnce on the configured cadence until Close.
// Each period is jittered ±25% so a fleet of coordinators (or one
// restarted alongside many shards) does not synchronize its probe
// bursts into a thundering herd.
func (c *Coordinator) probeLoop() {
	defer c.probeWG.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-time.After(c.jittered(c.cfg.Health.ProbeInterval)):
			if c.deposed.Load() {
				return
			}
			c.ProbeOnce()
		}
	}
}

// jittered spreads a tick period uniformly over [0.75d, 1.25d] using
// the coordinator's seeded rng — the anti-thundering-herd spacing for
// periodic fleet work.
func (c *Coordinator) jittered(d time.Duration) time.Duration {
	q := d / 4
	if q <= 0 {
		return d
	}
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return d - q + time.Duration(c.rng.Int63n(int64(2*q)+1))
}

// HealthSnapshot projects the fencing epoch and per-member health onto
// the wire struct (MsgHealthResp), sorted by address.
func (c *Coordinator) HealthSnapshot() HealthInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	info := HealthInfo{Epoch: c.epoch}
	members := append([]string(nil), c.members...)
	sort.Strings(members)
	for _, a := range members {
		sh := ShardHealthInfo{Addr: a, State: uint8(HealthDown)}
		if h, ok := c.health[a]; ok && !c.down[a] {
			sh.State = uint8(h.state)
			sh.Fails = h.fails
		}
		info.Shards = append(info.Shards, sh)
	}
	return info
}
