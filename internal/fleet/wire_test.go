package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

// testFrame builds a small deterministic frame; odd seeds carry an
// oracle mask with a few silhouette pixels.
func testFrame(w, h int, seed int) core.Frame {
	img := imagex.New(w, h)
	for i := range img.Pix {
		v := byte((i*7 + seed*13) % 251)
		img.Pix[i] = imagex.RGB{R: v, G: v + 1, B: v + 2}
	}
	f := core.Frame{Img: img}
	if seed%2 == 1 {
		m := imagex.NewMask(w, h)
		for y := 0; y < h; y += 2 {
			m.Set(seed%w, y, true)
		}
		f.Oracle = m
	}
	return f
}

// sampleMessages covers every wire message type with non-trivial
// payloads.
func sampleMessages() []*Message {
	return []*Message{
		{Type: MsgOpen, Spec: OpenSpec{ID: "call-00", W: 64, H: 48, UnknownVB: true, Seed: -12345}},
		{Type: MsgResume, Spec: OpenSpec{ID: "call-01", W: 32, H: 24, Seed: 7}, Ckpt: []byte{0xBB, 0xCC, 0x01, 0x00, 0xFF}},
		{Type: MsgFeed, Spec: OpenSpec{ID: "call-02"}, Frames: []core.Frame{testFrame(16, 12, 1)}},
		{Type: MsgFeedBatch, Spec: OpenSpec{ID: "call-03"}, Frames: []core.Frame{
			testFrame(8, 8, 0), testFrame(8, 8, 1), testFrame(8, 8, 2),
		}},
		{Type: MsgSnapshot, Spec: OpenSpec{ID: "call-04"}},
		{Type: MsgCheckpoint, Spec: OpenSpec{ID: "call-05"}},
		{Type: MsgClose, Spec: OpenSpec{ID: "call-06"}},
		{Type: MsgDetach, Spec: OpenSpec{ID: "call-07"}},
		{Type: MsgDrain, Spec: OpenSpec{ID: "call-08"}},
		{Type: MsgStats},
		{Type: MsgOK},
		{Type: MsgErr, Code: CodeNoSession, Text: `session "x" not found`},
		{Type: MsgSnapResp, Snap: SnapInfo{
			ID: "call-09", Health: 1, Identified: true, Restored: true, Finalized: false,
			Fed: 100, Dropped: 3, Rejected: 2, Processed: 95, StreamFrames: 120,
			Coverage: 0.4375, VBName: "beach",
		}},
		{Type: MsgCkptResp, Ckpt: []byte("BBCKpayload")},
		{Type: MsgStatsResp, Stats: StatsInfo{
			Open: 3, Opened: 9, Restores: 2, Restarts: 1, Migrations: 4,
			IDs: []string{"call-00", "call-01", "call-02"},
		}},
		{Type: MsgPing},
		{Type: MsgFence, Epoch: 7},
		{Type: MsgJoin, Addr: "10.0.0.9:7601"},
		{Type: MsgDrainShard, Addr: "10.0.0.4:7601"},
		{Type: MsgHealth},
		{Type: MsgHealthResp, Health: HealthInfo{
			Epoch: 3,
			Shards: []ShardHealthInfo{
				{Addr: "10.0.0.1:7601", State: 0, Fails: 0},
				{Addr: "10.0.0.2:7601", State: 1, Fails: 2},
				{Addr: "10.0.0.3:7601", State: 2, Fails: 5},
			},
		}},
		{Type: MsgLoad},
		{Type: MsgSetWeight, Addr: "10.0.0.5:7601", Weight: 4},
		{Type: MsgAutopilotStatus},
		{Type: MsgLoadResp, Loads: []ShardLoad{
			{Addr: "10.0.0.1:7601", State: 0, Weight: 2, Mem: 1 << 20, FeedMicros: 850,
				Sess: []SessionLoad{{ID: "call-00", Mem: 4096, Frames: 77}, {ID: "call-01", Mem: 8192, Frames: 12}}},
			{Addr: "10.0.0.2:7601", State: 2, Weight: 1, Err: "down"},
		}},
		{Type: MsgAutopilotResp, Auto: AutopilotInfo{
			Enabled: true, Imbalance: 0.4375, Threshold: 0.25,
			Passes: 9, Moves: 3, Readmitted: 1, Promoted: 1, Probation: 1,
			ScrubChecked: 12, ScrubRepairs: 2, ScrubSwept: 3, ScrubStuck: 0, OrphanDels: 1,
			LeaseHeld: true, LeaseHolder: "coord-a", LeaseTerm: 5, LeaseEpoch: 7,
			LeaseExpires: 1754600000,
		}},
	}
}

func TestWireRoundTripCanonical(t *testing.T) {
	for _, m := range sampleMessages() {
		buf, err := Encode(m)
		if err != nil {
			t.Fatalf("type 0x%02x: encode: %v", byte(m.Type), err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("type 0x%02x: decode: %v", byte(m.Type), err)
		}
		if !messagesEqual(m, got) {
			t.Fatalf("type 0x%02x: round trip mismatch:\n in: %+v\nout: %+v", byte(m.Type), m, got)
		}
		re, err := Encode(got)
		if err != nil {
			t.Fatalf("type 0x%02x: re-encode: %v", byte(m.Type), err)
		}
		if !bytes.Equal(buf, re) {
			t.Fatalf("type 0x%02x: non-canonical: encode(decode(b)) != b", byte(m.Type))
		}
	}
}

func TestWireReadWriteMessage(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf, Limits{})
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !messagesEqual(want, got) {
			t.Fatalf("message %d mismatch", i)
		}
	}
	if _, err := ReadMessage(&buf, Limits{}); !errors.Is(err, io.EOF) {
		t.Fatalf("after stream end: %v, want EOF", err)
	}
}

// messagesEqual compares the fields Encode writes for m.Type.
func messagesEqual(a, b *Message) bool {
	if a.Type != b.Type || a.Spec.ID != b.Spec.ID {
		return false
	}
	switch a.Type {
	case MsgOpen, MsgResume:
		if a.Spec != b.Spec {
			return false
		}
	}
	if len(a.Frames) != len(b.Frames) {
		return false
	}
	for i := range a.Frames {
		fa, fb := a.Frames[i], b.Frames[i]
		if !reflect.DeepEqual(fa.Img, fb.Img) {
			return false
		}
		if (fa.Oracle == nil) != (fb.Oracle == nil) {
			return false
		}
		if fa.Oracle != nil && !reflect.DeepEqual(fa.Oracle, fb.Oracle) {
			return false
		}
	}
	return bytes.Equal(a.Ckpt, b.Ckpt) && a.Code == b.Code && a.Text == b.Text &&
		a.Snap == b.Snap && a.Stats.Open == b.Stats.Open &&
		a.Stats.Opened == b.Stats.Opened && a.Stats.Restores == b.Stats.Restores &&
		a.Stats.Restarts == b.Stats.Restarts && a.Stats.Migrations == b.Stats.Migrations &&
		reflect.DeepEqual(a.Stats.IDs, b.Stats.IDs) &&
		a.Addr == b.Addr && a.Epoch == b.Epoch &&
		a.Health.Epoch == b.Health.Epoch &&
		reflect.DeepEqual(a.Health.Shards, b.Health.Shards) &&
		a.Weight == b.Weight && reflect.DeepEqual(a.Loads, b.Loads) &&
		a.Auto == b.Auto
}

// TestWireGolden pins the byte layout of representative messages so an
// accidental format change cannot slip through as "still round-trips".
func TestWireGolden(t *testing.T) {
	open := &Message{Type: MsgOpen, Spec: OpenSpec{ID: "ab", W: 3, H: 2, UnknownVB: true, Seed: 5}}
	wantOpen := []byte{
		'B', 'B', 'F', 'L', // magic
		1, 0, // version
		0x01, 0x00, // type, reserved
		17, 0, 0, 0, // bodyLen
		2, 0, 'a', 'b', // id
		3, 0, 2, 0, // w, h
		1,                      // unknownVB
		5, 0, 0, 0, 0, 0, 0, 0, // seed
	}
	if got, _ := Encode(open); !bytes.Equal(got, wantOpen) {
		t.Fatalf("MsgOpen golden mismatch:\n got %v\nwant %v", got, wantOpen)
	}

	errM := &Message{Type: MsgErr, Code: 2, Text: "no"}
	wantErr := []byte{
		'B', 'B', 'F', 'L', 1, 0, 0x41, 0x00, 6, 0, 0, 0,
		2, 0, // code
		2, 0, 'n', 'o', // text
	}
	if got, _ := Encode(errM); !bytes.Equal(got, wantErr) {
		t.Fatalf("MsgErr golden mismatch:\n got %v\nwant %v", got, wantErr)
	}

	// A 1x1 frame with oracle: geometry + 3 raster bytes + flag + one
	// 8-byte mask word (bit 0 set).
	img := imagex.New(1, 1)
	img.Pix[0] = imagex.RGB{R: 9, G: 8, B: 7}
	mask := imagex.NewMask(1, 1)
	mask.Set(0, 0, true)
	feed := &Message{Type: MsgFeed, Spec: OpenSpec{ID: "z"}, Frames: []core.Frame{{Img: img, Oracle: mask}}}
	wantFeed := []byte{
		'B', 'B', 'F', 'L', 1, 0, 0x02, 0x00, 19, 0, 0, 0,
		1, 0, 'z', // id
		1, 0, 1, 0, // w, h
		9, 8, 7, // raster
		1,                      // oracle present
		1, 0, 0, 0, 0, 0, 0, 0, // mask word
	}
	if got, _ := Encode(feed); !bytes.Equal(got, wantFeed) {
		t.Fatalf("MsgFeed golden mismatch:\n got %v\nwant %v", got, wantFeed)
	}

	fence := &Message{Type: MsgFence, Epoch: 0x0102030405060708}
	wantFence := []byte{
		'B', 'B', 'F', 'L', 1, 0, 0x0C, 0x00, 8, 0, 0, 0,
		8, 7, 6, 5, 4, 3, 2, 1, // epoch, little-endian
	}
	if got, _ := Encode(fence); !bytes.Equal(got, wantFence) {
		t.Fatalf("MsgFence golden mismatch:\n got %v\nwant %v", got, wantFence)
	}

	join := &Message{Type: MsgJoin, Addr: "a:1"}
	wantJoin := []byte{
		'B', 'B', 'F', 'L', 1, 0, 0x0D, 0x00, 5, 0, 0, 0,
		3, 0, 'a', ':', '1', // addr
	}
	if got, _ := Encode(join); !bytes.Equal(got, wantJoin) {
		t.Fatalf("MsgJoin golden mismatch:\n got %v\nwant %v", got, wantJoin)
	}

	health := &Message{Type: MsgHealthResp, Health: HealthInfo{
		Epoch:  2,
		Shards: []ShardHealthInfo{{Addr: "b:2", State: 1, Fails: 3}},
	}}
	wantHealth := []byte{
		'B', 'B', 'F', 'L', 1, 0, 0x45, 0x00, 20, 0, 0, 0,
		2, 0, 0, 0, 0, 0, 0, 0, // epoch
		1, 0, // shard count
		3, 0, 'b', ':', '2', // addr
		1,          // state (suspect)
		3, 0, 0, 0, // fails
	}
	if got, _ := Encode(health); !bytes.Equal(got, wantHealth) {
		t.Fatalf("MsgHealthResp golden mismatch:\n got %v\nwant %v", got, wantHealth)
	}

	setw := &Message{Type: MsgSetWeight, Addr: "a:1", Weight: 3}
	wantSetW := []byte{
		'B', 'B', 'F', 'L', 1, 0, 0x11, 0x00, 7, 0, 0, 0,
		3, 0, 'a', ':', '1', // addr
		3, 0, // weight
	}
	if got, _ := Encode(setw); !bytes.Equal(got, wantSetW) {
		t.Fatalf("MsgSetWeight golden mismatch:\n got %v\nwant %v", got, wantSetW)
	}

	load := &Message{Type: MsgLoadResp, Loads: []ShardLoad{
		{Addr: "b:2", State: 1, Weight: 2, Mem: 5, FeedMicros: 6,
			Sess: []SessionLoad{{ID: "s", Mem: 7, Frames: 8}}},
	}}
	wantLoad := []byte{
		'B', 'B', 'F', 'L', 1, 0, 0x46, 0x00, 49, 0, 0, 0,
		1, 0, // row count
		3, 0, 'b', ':', '2', // addr
		1,    // state (suspect)
		2, 0, // weight
		5, 0, 0, 0, 0, 0, 0, 0, // mem
		6, 0, 0, 0, 0, 0, 0, 0, // feed micros
		0, 0, // err (empty)
		1, 0, // session count
		1, 0, 's', // id
		7, 0, 0, 0, 0, 0, 0, 0, // session mem
		8, 0, 0, 0, 0, 0, 0, 0, // session frames
	}
	if got, _ := Encode(load); !bytes.Equal(got, wantLoad) {
		t.Fatalf("MsgLoadResp golden mismatch:\n got %v\nwant %v", got, wantLoad)
	}
}

func TestWireDecodeRejections(t *testing.T) {
	valid, _ := Encode(&Message{Type: MsgOpen, Spec: OpenSpec{ID: "x", W: 2, H: 2, Seed: 1}})

	corrupt := func(mut func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return mut(b)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"short", valid[:8], ErrBadMessage},
		{"magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMessage},
		{"version", corrupt(func(b []byte) []byte { b[4] = 9; return b }), ErrVersion},
		{"reserved", corrupt(func(b []byte) []byte { b[7] = 1; return b }), ErrBadMessage},
		{"type", corrupt(func(b []byte) []byte { b[6] = 0x3F; return b }), ErrBadMessage},
		{"trailing", append(append([]byte(nil), corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], uint32(len(b)-12+1))
			return b
		})...), 0), ErrBadMessage},
		{"bodyLenMismatch", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], 999)
			return b
		}), ErrBadMessage},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Non-boolean unknown-vb flag.
	bad := corrupt(func(b []byte) []byte { b[12+2+1+4] = 2; return b })
	if _, err := Decode(bad); !errors.Is(err, ErrBadMessage) {
		t.Errorf("non-boolean flag: %v", err)
	}

	// Oversized id versus MaxIDLen budget.
	long, _ := Encode(&Message{Type: MsgSnapshot, Spec: OpenSpec{ID: strings.Repeat("a", 64)}})
	if _, err := DecodeWithLimits(long, Limits{MaxIDLen: 8}); !errors.Is(err, ErrBadMessage) {
		t.Errorf("id budget: %v", err)
	}

	// Mask with a nonzero padding bit (w=1 uses bit 0 of the word only).
	feedBad := []byte{
		'B', 'B', 'F', 'L', 1, 0, 0x02, 0x00, 19, 0, 0, 0,
		1, 0, 'z', 1, 0, 1, 0, 9, 8, 7, 1,
		0x02, 0, 0, 0, 0, 0, 0, 0, // bit 1 set: padding violation
	}
	if _, err := Decode(feedBad); !errors.Is(err, ErrBadMessage) {
		t.Errorf("mask padding: %v", err)
	}

	// Batch count of zero is non-canonical.
	zeroBatch := []byte{
		'B', 'B', 'F', 'L', 1, 0, 0x03, 0x00, 5, 0, 0, 0,
		1, 0, 'z', 0, 0,
	}
	if _, err := Decode(zeroBatch); !errors.Is(err, ErrBadMessage) {
		t.Errorf("zero batch: %v", err)
	}

	// Autopilot flags byte with an undefined bit set is non-canonical.
	autoOK, _ := Encode(&Message{Type: MsgAutopilotResp, Auto: AutopilotInfo{Enabled: true}})
	autoBad := append([]byte(nil), autoOK...)
	autoBad[headerLen] |= 0x04
	if _, err := Decode(autoBad); !errors.Is(err, ErrBadMessage) {
		t.Errorf("autopilot flags: %v", err)
	}

	// A load-row bomb — huge claimed row count against a tiny body —
	// must die on the length budget before any row allocation.
	loadBomb := []byte{
		'B', 'B', 'F', 'L', 1, 0, 0x46, 0x00, 2, 0, 0, 0,
		0xFF, 0xFF, // 65535 rows claimed, zero row bytes
	}
	if _, err := Decode(loadBomb); !errors.Is(err, ErrBadMessage) {
		t.Errorf("load row bomb: %v", err)
	}

	// Same for the per-row session list.
	sessBomb := []byte{
		'B', 'B', 'F', 'L', 1, 0, 0x46, 0x00, 27, 0, 0, 0,
		1, 0, // one row
		0, 0, // empty addr
		0,    // state
		1, 0, // weight
		0, 0, 0, 0, 0, 0, 0, 0, // mem
		0, 0, 0, 0, 0, 0, 0, 0, // feed micros
		0, 0, // err
		0xFF, 0xFF, // 65535 sessions claimed, zero session bytes
	}
	if _, err := Decode(sessBomb); !errors.Is(err, ErrBadMessage) {
		t.Errorf("load session bomb: %v", err)
	}
}

// TestWireGeometryBombRejected crafts a tiny message whose frame
// header claims a huge raster: the decoder must reject it from the
// length check alone, before any allocation.
func TestWireGeometryBombRejected(t *testing.T) {
	body := []byte{1, 0, 'z'}       // id
	body = append(body, 0xFF, 0xFF) // w = 65535
	body = append(body, 0xFF, 0xFF) // h = 65535
	body = append(body, 1, 2, 3)    // 3 "raster" bytes
	msg := []byte{'B', 'B', 'F', 'L', 1, 0, 0x02, 0x00}
	msg = binary.LittleEndian.AppendUint32(msg, uint32(len(body)))
	msg = append(msg, body...)

	if _, err := Decode(msg); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("geometry bomb: %v", err)
	}
	// Within the dimension budget but with a raster far larger than the
	// body: need() must fire before the image allocation.
	body2 := []byte{1, 0, 'z', 0, 4, 0, 4} // 1024x1024 claimed
	msg2 := []byte{'B', 'B', 'F', 'L', 1, 0, 0x02, 0x00}
	msg2 = binary.LittleEndian.AppendUint32(msg2, uint32(len(body2)))
	msg2 = append(msg2, body2...)
	if _, err := Decode(msg2); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("raster bomb: %v", err)
	}
}

// countingReader fails the test if more than limit bytes are read —
// how we prove ReadMessage rejects an over-budget body from the header
// alone, without buffering the body.
type countingReader struct {
	t     *testing.T
	data  []byte
	off   int
	limit int
}

func (r *countingReader) Read(p []byte) (int, error) {
	n := copy(p, r.data[r.off:])
	r.off += n
	if r.off > r.limit {
		r.t.Fatalf("reader consumed %d bytes, limit %d", r.off, r.limit)
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

func TestReadMessageBodyBudgetStopsAtHeader(t *testing.T) {
	// Header advertising a 100 MiB body, followed by garbage the reader
	// must never touch.
	hdr := []byte{'B', 'B', 'F', 'L', 1, 0, 0x02, 0x00}
	hdr = binary.LittleEndian.AppendUint32(hdr, 100<<20)
	data := append(hdr, bytes.Repeat([]byte{0xAA}, 4096)...)

	r := &countingReader{t: t, data: data, limit: headerLen}
	_, err := ReadMessage(r, Limits{MaxBody: 1 << 20})
	if !errors.Is(err, ErrBadMessage) {
		t.Fatalf("over-budget body: %v", err)
	}
}

func TestSnapRespCoverageBits(t *testing.T) {
	// Coverage crosses the wire as raw float bits — including values a
	// lossy fixed-point encoding would mangle.
	for _, cov := range []float64{0, 1, 0.123456789, math.SmallestNonzeroFloat64} {
		m := &Message{Type: MsgSnapResp, Snap: SnapInfo{ID: "c", Coverage: cov}}
		buf, _ := Encode(m)
		got, err := Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Snap.Coverage != cov {
			t.Fatalf("coverage %v -> %v", cov, got.Snap.Coverage)
		}
	}
}
