package imagex

import (
	"math/rand"
	"testing"
)

func randMask(rng *rand.Rand, w, h int, density float64) *Mask {
	m := NewMask(w, h)
	for i := 0; i < w*h; i++ {
		if rng.Float64() < density {
			m.SetI(i, true)
		}
	}
	return m
}

func randImage(rng *rand.Rand, w, h int) *Image {
	img := New(w, h)
	for i := range img.Pix {
		img.Pix[i] = RGB{R: byte(rng.Intn(256)), G: byte(rng.Intn(256)), B: byte(rng.Intn(256))}
	}
	return img
}

func TestBands(t *testing.T) {
	cases := []struct{ h, rows, want int }{
		{1, 8, 1}, {8, 8, 1}, {9, 8, 2}, {120, 8, 15}, {121, 8, 16},
		{5, 0, 0}, {5, -1, 0}, {7, 3, 3},
	}
	for _, c := range cases {
		if got := Bands(c.h, c.rows); got != c.want {
			t.Errorf("Bands(%d, %d) = %d, want %d", c.h, c.rows, got, c.want)
		}
	}
}

func TestComplementOfUnionMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range [][2]int{{64, 16}, {37, 23}, {1, 1}, {130, 9}} {
		w, h := dim[0], dim[1]
		a := randMask(rng, w, h, 0.3)
		b := randMask(rng, w, h, 0.3)
		nonEmpty := make([]bool, Bands(h, 8))
		m := NewFullMask(w, h) // pre-dirty: every word must be overwritten
		if err := m.ComplementOfUnion(a, b, 8, nonEmpty); err != nil {
			t.Fatal(err)
		}
		bandHasBit := make([]bool, len(nonEmpty))
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				want := !(a.At(x, y) || b.At(x, y))
				if m.At(x, y) != want {
					t.Fatalf("%dx%d: (%d,%d) = %v, want %v", w, h, x, y, m.At(x, y), want)
				}
				if want {
					bandHasBit[y/8] = true
				}
			}
		}
		for i, want := range bandHasBit {
			if nonEmpty[i] != want {
				t.Fatalf("%dx%d: band %d nonEmpty = %v, want %v", w, h, i, nonEmpty[i], want)
			}
		}
		// The padding invariant must hold so Count and friends stay exact.
		if m.Count() != countNaive(m) {
			t.Fatalf("%dx%d: padding bits leaked into the complement", w, h)
		}
	}
}

func countNaive(m *Mask) int {
	n := 0
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if m.At(x, y) {
				n++
			}
		}
	}
	return n
}

func TestComplementOfUnionErrors(t *testing.T) {
	m := NewMask(10, 10)
	if err := m.ComplementOfUnion(NewMask(9, 10), NewMask(10, 10), 8, nil); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	if err := m.ComplementOfUnion(NewMask(10, 10), NewMask(10, 10), 8, make([]bool, 1)); err == nil {
		t.Fatal("wrong band-flag count accepted")
	}
	// bandRows <= 0 degenerates to one whole-mask band.
	if err := m.ComplementOfUnion(NewMask(10, 10), NewMask(10, 10), 0, make([]bool, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestApplyResidueMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dim := range [][2]int{{64, 16}, {37, 23}, {130, 9}} {
		w, h := dim[0], dim[1]
		lb := randMask(rng, w, h, 0.2)
		src := randImage(rng, w, h)

		// Reference: the historical three-step accumulation.
		wantDst := randImage(rng, w, h)
		wantCov := randMask(rng, w, h, 0.1)
		dst := wantDst.Clone()
		cov := wantCov.Clone()
		lb.ForEachSet(func(p int) { wantDst.Pix[p] = src.Pix[p] })
		if err := wantCov.Union(lb); err != nil {
			t.Fatal(err)
		}

		nonEmpty := make([]bool, Bands(h, 8))
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if lb.At(x, y) {
					nonEmpty[y/8] = true
				}
			}
		}
		covFull := make([]bool, Bands(h, 8))
		if err := BandFullness(cov, 8, covFull); err != nil {
			t.Fatal(err)
		}
		n, err := ApplyResidue(lb, src, dst, cov, 8, nonEmpty, covFull)
		if err != nil {
			t.Fatal(err)
		}
		if n != lb.Count() {
			t.Fatalf("%dx%d: returned %d bits, lb has %d", w, h, n, lb.Count())
		}
		if !dst.Equal(wantDst) {
			t.Fatalf("%dx%d: residue image differs from the naive accumulation", w, h)
		}
		if !cov.Equal(wantCov) {
			t.Fatalf("%dx%d: coverage differs from the naive accumulation", w, h)
		}
		// The maintained covFull flags must agree with a fresh recompute.
		fresh := make([]bool, len(covFull))
		if err := BandFullness(cov, 8, fresh); err != nil {
			t.Fatal(err)
		}
		for i := range fresh {
			if covFull[i] != fresh[i] {
				t.Fatalf("%dx%d: band %d covFull = %v, recompute says %v", w, h, i, covFull[i], fresh[i])
			}
		}
	}
}

func TestApplyResidueSkipsSaturatedBands(t *testing.T) {
	// Once a band's coverage is full, ApplyResidue must still copy the
	// latest pixel values but the coverage plane cannot change.
	const w, h = 40, 16
	rng := rand.New(rand.NewSource(13))
	lb := NewFullMask(w, h)
	src := randImage(rng, w, h)
	dst := New(w, h)
	cov := NewFullMask(w, h)
	covFull := make([]bool, Bands(h, 8))
	if err := BandFullness(cov, 8, covFull); err != nil {
		t.Fatal(err)
	}
	for i, f := range covFull {
		if !f {
			t.Fatalf("band %d of a full mask not marked full", i)
		}
	}
	n, err := ApplyResidue(lb, src, dst, cov, 8, nil, covFull)
	if err != nil {
		t.Fatal(err)
	}
	if n != w*h {
		t.Fatalf("bits = %d, want %d", n, w*h)
	}
	if !dst.Equal(src) {
		t.Fatal("pixels not copied through a saturated band")
	}
	if cov.Count() != w*h {
		t.Fatal("saturated coverage changed")
	}
}

func TestApplyResidueEmptyBandsSkip(t *testing.T) {
	// With lbNonEmpty all false nothing may change, whatever lb holds:
	// the flags are authoritative (the stream records them during
	// ComplementOfUnion, so they are always in sync).
	const w, h = 33, 12
	rng := rand.New(rand.NewSource(14))
	lb := NewFullMask(w, h)
	src := randImage(rng, w, h)
	dst := New(w, h)
	want := dst.Clone()
	cov := NewMask(w, h)
	n, err := ApplyResidue(lb, src, dst, cov, 8, make([]bool, Bands(h, 8)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || !dst.Equal(want) || cov.Count() != 0 {
		t.Fatal("flagged-empty bands were not skipped")
	}
}

func TestBandFullness(t *testing.T) {
	const w, h = 70, 20
	m := NewFullMask(w, h)
	// Punch one hole in row 9 → band 1 (rows 8..15) not full.
	m.Set(69, 9, false)
	full := make([]bool, Bands(h, 8))
	if err := BandFullness(m, 8, full); err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if full[i] != want[i] {
			t.Fatalf("band %d full = %v, want %v", i, full[i], want[i])
		}
	}
	if err := BandFullness(m, 8, make([]bool, 2)); err == nil {
		t.Fatal("wrong flag count accepted")
	}
}

func TestBuildMaskIntoReusesAndOverwrites(t *testing.T) {
	dst := NewFullMask(21, 7) // stale content must vanish
	got := BuildMaskInto(dst, 21, 7, func(i int) bool { return i%3 == 0 })
	if got != dst {
		t.Fatal("right-sized dst not reused")
	}
	for i := 0; i < 21*7; i++ {
		if got.GetI(i) != (i%3 == 0) {
			t.Fatalf("bit %d wrong", i)
		}
	}
	if got.Count() != countNaive(got) {
		t.Fatal("padding bits set")
	}
	fresh := BuildMaskInto(nil, 5, 5, func(i int) bool { return true })
	if fresh.Count() != 25 {
		t.Fatal("nil dst not allocated")
	}
	resized := BuildMaskInto(dst, 8, 8, func(i int) bool { return false })
	if resized == dst || resized.W != 8 {
		t.Fatal("mis-sized dst must be replaced")
	}
}

func TestWordAccessorsKeepPadding(t *testing.T) {
	m := NewMask(70, 3) // two words per row, 6 valid bits in the last
	if m.WordsPerRow() != 2 {
		t.Fatalf("WordsPerRow = %d", m.WordsPerRow())
	}
	m.OrWord(1, 1, ^uint64(0)) // must clip to the 6 valid bits
	if m.Count() != 6 {
		t.Fatalf("count after edge OrWord = %d, want 6", m.Count())
	}
	if m.Word(1, 1) != (1<<6)-1 {
		t.Fatalf("Word = %#x", m.Word(1, 1))
	}
	if m.Word(0, 0) != 0 || m.Word(2, 1) != 0 {
		t.Fatal("unrelated words changed")
	}
	m.OrWord(0, 0, 0b1010)
	if !m.At(1, 0) || !m.At(3, 0) || m.At(0, 0) {
		t.Fatal("OrWord bit placement wrong")
	}
}
