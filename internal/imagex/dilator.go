package imagex

// Dilator is a reusable disc-dilation engine for a fixed geometry and
// radius. DilateInto on a Mask allocates its extent table and
// horizontal-dilation scratch rows on every call; a Dilator hoists them
// into per-instance state so the streaming hot path (one BBM dilation
// per frame, internal/core) runs allocation-free. Results are
// bit-identical to Mask.Dilate / Mask.DilateInto at the same radius.
//
// A Dilator additionally exploits row solidity: a source row whose bits
// are all set dilates to a full row at every extent, so it is merged by
// marking the 2r+1 affected output rows solid (each filled at most
// once) instead of OR-ing word by word — and once an output row is
// solid, every later merge into it is skipped. Static virtual-background
// interiors, which dominate the paper's frames, hit this path almost
// everywhere.
//
// A Dilator is not safe for concurrent use; give each worker its own.
type Dilator struct {
	w, h, radius int
	wpr          int
	edge         uint64

	ext     []int      // horizontal extent per vertical offset
	hdStore []uint64   // backing for hd
	hd      [][]uint64 // hd[d] = hdilate(srcRow, ext[d]) for the current row
	solid   []bool     // per-output-row "already all set" flags, reset per run
}

// NewDilator returns a dilation engine for w×h masks at the given
// radius. It panics on non-positive dimensions, matching NewMask;
// radius may be zero or negative (dilation degenerates to a copy).
func NewDilator(w, h, radius int) *Dilator {
	if w <= 0 || h <= 0 {
		panic("imagex: invalid dilator geometry")
	}
	d := &Dilator{w: w, h: h, radius: radius, wpr: wordsPerRow(w), edge: edgeMask(w)}
	if radius > 0 {
		r := radius
		d.ext = make([]int, r+1)
		for dy := 0; dy <= r; dy++ {
			d.ext[dy] = isqrt(r*r - dy*dy)
		}
		d.hdStore = make([]uint64, (r+1)*d.wpr)
		d.hd = make([][]uint64, r+1)
		for i := range d.hd {
			d.hd[i] = d.hdStore[i*d.wpr : (i+1)*d.wpr]
		}
		d.solid = make([]bool, h)
	}
	return d
}

// DilateInto writes the disc dilation of src into dst and returns it,
// allocating a fresh mask only when dst is nil, mis-sized, or src
// itself. src must match the dilator's geometry.
func (dl *Dilator) DilateInto(dst, src *Mask) *Mask {
	if src.W != dl.w || src.H != dl.h {
		panic("imagex: dilator geometry mismatch")
	}
	if dst == nil || dst == src || !dst.SameSize(src) {
		dst = NewMask(src.W, src.H)
	} else {
		dst.Clear()
	}
	if dl.radius <= 0 {
		copy(dst.words, src.words)
		return dst
	}
	r, wpr, edge := dl.radius, dl.wpr, dl.edge
	for i := range dl.solid {
		dl.solid[i] = false
	}
	for y := 0; y < dl.h; y++ {
		srcRow := src.words[y*wpr : (y+1)*wpr]
		if rowEmpty(srcRow) {
			continue
		}
		if rowSolid(srcRow, edge) {
			// A full row stays full at every horizontal extent: mark the
			// affected output rows solid, filling each at most once.
			for dy := -r; dy <= r; dy++ {
				ty := y + dy
				if ty < 0 || ty >= dl.h || dl.solid[ty] {
					continue
				}
				out := dst.words[ty*wpr : (ty+1)*wpr]
				for j := range out {
					out[j] = ^uint64(0)
				}
				out[wpr-1] = edge
				dl.solid[ty] = true
			}
			continue
		}
		// Build the horizontal dilations from the narrowest extent
		// (ext[r] = 0, the row itself) to the widest (ext[0] = r),
		// snapshotting at each vertical offset's extent. acc accumulates
		// OR-shifted copies of the original row.
		acc := dl.hd[0]
		copy(acc, srcRow)
		k := 0
		for d := r; d >= 0; d-- {
			for k < dl.ext[d] {
				k++
				orShiftLeft(acc, srcRow, k)
				orShiftRight(acc, srcRow, k)
				acc[wpr-1] &= edge
			}
			if d > 0 {
				copy(dl.hd[d], acc)
			}
		}
		for dy := -r; dy <= r; dy++ {
			ty := y + dy
			if ty < 0 || ty >= dl.h || dl.solid[ty] {
				continue
			}
			h := dl.hd[absI(dy)]
			out := dst.words[ty*wpr : (ty+1)*wpr]
			for j, w := range h {
				out[j] |= w
			}
		}
	}
	return dst
}

// rowSolid reports whether every valid bit of a row is set (padding
// bits are zero by invariant, so the last word compares against edge).
func rowSolid(row []uint64, edge uint64) bool {
	last := len(row) - 1
	for _, w := range row[:last] {
		if w != ^uint64(0) {
			return false
		}
	}
	return row[last] == edge
}
