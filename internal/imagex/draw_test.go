package imagex

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFillRectClipsAndRecordsMask(t *testing.T) {
	im := New(4, 4)
	m := NewMask(4, 4)
	c := RGB{1, 2, 3}
	im.FillRectMask(-2, -2, 2, 2, c, m)
	if im.At(0, 0) != c || im.At(1, 1) != c {
		t.Fatal("clipped fill missing pixels")
	}
	if im.At(2, 2) != Black {
		t.Fatal("fill overshot")
	}
	if m.Count() != 4 {
		t.Fatalf("mask recorded %d pixels, want 4", m.Count())
	}
}

func TestFillRectSwappedCoords(t *testing.T) {
	im := New(4, 4)
	im.FillRect(3, 3, 1, 1, White)
	if im.At(1, 1) != White || im.At(2, 2) != White {
		t.Fatal("swapped-coordinate fill failed")
	}
}

func TestStrokeRect(t *testing.T) {
	im := New(5, 5)
	im.StrokeRect(0, 0, 5, 5, White)
	if im.At(0, 0) != White || im.At(4, 4) != White || im.At(0, 4) != White {
		t.Fatal("outline corners missing")
	}
	if im.At(2, 2) != Black {
		t.Fatal("outline filled interior")
	}
}

func TestFillEllipse(t *testing.T) {
	im := New(11, 11)
	m := NewMask(11, 11)
	im.FillEllipseMask(5, 5, 3, 2, White, m)
	if im.At(5, 5) != White || im.At(8, 5) != White || im.At(5, 7) != White {
		t.Fatal("ellipse extremes missing")
	}
	if im.At(8, 7) == White {
		t.Fatal("ellipse overshoots corner")
	}
	if m.Count() == 0 {
		t.Fatal("ellipse mask not recorded")
	}
	// Degenerate radii are no-ops.
	before := im.Clone()
	im.FillEllipse(5, 5, 0, 4, RGB{9, 9, 9})
	if !im.Equal(before) {
		t.Fatal("zero-radius ellipse drew pixels")
	}
}

func TestStrokeCircleOnCircumference(t *testing.T) {
	im := New(21, 21)
	im.StrokeCircle(10, 10, 5, White)
	for _, p := range [][2]int{{15, 10}, {5, 10}, {10, 15}, {10, 5}} {
		if im.At(p[0], p[1]) != White {
			t.Fatalf("circle missing point %v", p)
		}
	}
	if im.At(10, 10) == White {
		t.Fatal("circle centre painted")
	}
}

func TestDrawLineEndpointsAndDiagonal(t *testing.T) {
	im := New(5, 5)
	im.DrawLine(0, 0, 4, 4, White)
	for i := 0; i < 5; i++ {
		if im.At(i, i) != White {
			t.Fatalf("diagonal missing (%d,%d)", i, i)
		}
	}
}

func TestDrawThickLineMask(t *testing.T) {
	im := New(11, 11)
	m := NewMask(11, 11)
	im.DrawThickLineMask(1, 5, 9, 5, 5, White, m)
	if im.At(5, 5) != White || im.At(5, 3) != White || im.At(5, 7) != White {
		t.Fatal("thick line too thin")
	}
	if m.Count() == 0 {
		t.Fatal("thick line mask not recorded")
	}
}

func TestPasteAndCrop(t *testing.T) {
	base := New(6, 6)
	patch := NewFilled(2, 2, RGB{3, 3, 3})
	base.Paste(patch, 2, 2)
	if base.At(2, 2) != (RGB{3, 3, 3}) || base.At(3, 3) != (RGB{3, 3, 3}) {
		t.Fatal("paste failed")
	}
	base.Paste(patch, 5, 5) // clipped paste must not panic
	if base.At(5, 5) != (RGB{3, 3, 3}) {
		t.Fatal("clipped paste missing corner pixel")
	}

	c := base.Crop(2, 2, 4, 4)
	if c == nil || c.W != 2 || c.H != 2 || c.At(0, 0) != (RGB{3, 3, 3}) {
		t.Fatal("crop wrong")
	}
	if base.Crop(5, 5, 5, 5) != nil {
		t.Fatal("empty crop must be nil")
	}
	if base.Crop(-10, -10, -5, -5) != nil {
		t.Fatal("fully out-of-bounds crop must be nil")
	}
}

func TestPNGRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "frame.png")
	im := New(8, 6)
	im.FillRect(1, 1, 5, 4, RGB{200, 30, 90})
	im.FillCircle(6, 3, 2, RGB{10, 220, 10})
	if err := im.WritePNG(path); err != nil {
		t.Fatalf("WritePNG: %v", err)
	}
	back, err := ReadPNG(path)
	if err != nil {
		t.Fatalf("ReadPNG: %v", err)
	}
	if !im.Equal(back) {
		t.Fatal("PNG round trip altered pixels")
	}
}

func TestReadPNGMissingFile(t *testing.T) {
	if _, err := ReadPNG(filepath.Join(t.TempDir(), "nope.png")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestWritePNGBadPath(t *testing.T) {
	if err := New(1, 1).WritePNG(string(os.PathSeparator) + "no-such-dir-xyz/f.png"); err == nil {
		t.Fatal("expected error for bad path")
	}
}
