// Package imagex provides the image substrate used throughout Background
// Buster: packed RGB frames, binary masks with morphological operations,
// color-space conversions, and drawing primitives.
//
// The paper (Section III) represents a video frame as an m×n array of
// 24-bit Truecolor pixels; Image is exactly that, stored row-major.
package imagex

import (
	"errors"
	"fmt"
)

// RGB is a 24-bit Truecolor pixel as described in the paper's technical
// background: one 8-bit intensity per primary color.
type RGB struct {
	R, G, B uint8
}

// Common colors used by the scene and person renderers.
var (
	Black = RGB{0, 0, 0}
	White = RGB{255, 255, 255}
)

// Equal reports whether two pixels store identical color information.
func (c RGB) Equal(o RGB) bool { return c == o }

// Image is a W×H raster of RGB pixels stored row-major. It corresponds to
// a single frame f^i in the paper's video model.
type Image struct {
	W, H int
	Pix  []RGB
}

// ErrBounds is returned by operations that reference coordinates outside
// an image or mask.
var ErrBounds = errors.New("imagex: coordinates out of bounds")

// New returns a black image of the given dimensions. It panics if either
// dimension is non-positive; frames of zero area are never meaningful in
// this codebase and indicate a caller bug.
func New(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imagex: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]RGB, w*h)}
}

// NewFilled returns an image of the given dimensions with every pixel set
// to c.
func NewFilled(w, h int, c RGB) *Image {
	img := New(w, h)
	for i := range img.Pix {
		img.Pix[i] = c
	}
	return img
}

// In reports whether (x, y) lies inside the image.
func (im *Image) In(x, y int) bool {
	return x >= 0 && x < im.W && y >= 0 && y < im.H
}

// At returns the pixel at (x, y). Out-of-bounds reads return Black, which
// mirrors how the matting pipeline treats pixels outside the sensor area.
func (im *Image) At(x, y int) RGB {
	if !im.In(x, y) {
		return Black
	}
	return im.Pix[y*im.W+x]
}

// Set writes the pixel at (x, y). Out-of-bounds writes are ignored so
// renderers may draw shapes that partially exit the frame.
func (im *Image) Set(x, y int, c RGB) {
	if !im.In(x, y) {
		return
	}
	im.Pix[y*im.W+x] = c
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := New(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// SameSize reports whether two images have identical dimensions.
func (im *Image) SameSize(o *Image) bool { return im.W == o.W && im.H == o.H }

// Equal reports whether two images are pixel-identical.
func (im *Image) Equal(o *Image) bool {
	if !im.SameSize(o) {
		return false
	}
	for i := range im.Pix {
		if im.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// Fill sets every pixel to c.
func (im *Image) Fill(c RGB) {
	for i := range im.Pix {
		im.Pix[i] = c
	}
}

// CopyFrom overwrites this image's pixels with src's. It returns
// ErrBounds if dimensions differ.
func (im *Image) CopyFrom(src *Image) error {
	if !im.SameSize(src) {
		return fmt.Errorf("imagex: copy %dx%d from %dx%d: %w", im.W, im.H, src.W, src.H, ErrBounds)
	}
	copy(im.Pix, src.Pix)
	return nil
}

// Blit copies src onto the image with src's top-left at (x, y). The
// destination rectangle must lie fully inside the image; ErrBounds
// otherwise. Pixels are copied verbatim — the gallery compositor relies
// on Blit followed by Crop being the identity on src.
func (im *Image) Blit(src *Image, x, y int) error {
	if x < 0 || y < 0 || x+src.W > im.W || y+src.H > im.H {
		return fmt.Errorf("imagex: blit %dx%d at +%d+%d of %dx%d: %w", src.W, src.H, x, y, im.W, im.H, ErrBounds)
	}
	for row := 0; row < src.H; row++ {
		dst := (y+row)*im.W + x
		copy(im.Pix[dst:dst+src.W], src.Pix[row*src.W:(row+1)*src.W])
	}
	return nil
}

// MatchCount returns the number of pixel positions at which the two
// images store identical colors. This implements the paper's
// highest-likelihood estimator core, Σ Σ µ(img ⊕ f), where µ(x)=1 iff
// x = 0. Images of different sizes match at zero positions.
func (im *Image) MatchCount(o *Image) int {
	if !im.SameSize(o) {
		return 0
	}
	n := 0
	for i := range im.Pix {
		if im.Pix[i] == o.Pix[i] {
			n++
		}
	}
	return n
}

// MatchCountTol counts pixels whose per-channel absolute difference is at
// most tol. tol = 0 degenerates to MatchCount.
func (im *Image) MatchCountTol(o *Image, tol int) int {
	if !im.SameSize(o) {
		return 0
	}
	if tol <= 0 {
		return im.MatchCount(o)
	}
	n := 0
	for i := range im.Pix {
		if withinTol(im.Pix[i], o.Pix[i], tol) {
			n++
		}
	}
	return n
}

func withinTol(a, b RGB, tol int) bool {
	return absInt(int(a.R)-int(b.R)) <= tol &&
		absInt(int(a.G)-int(b.G)) <= tol &&
		absInt(int(a.B)-int(b.B)) <= tol
}

// DiffMask returns a mask that is set wherever the two images differ by
// more than tol on any channel. It returns ErrBounds if sizes differ.
func (im *Image) DiffMask(o *Image, tol int) (*Mask, error) {
	if !im.SameSize(o) {
		return nil, fmt.Errorf("imagex: diff %dx%d vs %dx%d: %w", im.W, im.H, o.W, o.H, ErrBounds)
	}
	m := BuildMask(im.W, im.H, func(i int) bool {
		return !withinTol(im.Pix[i], o.Pix[i], tol)
	})
	return m, nil
}

// ApplyMask returns a copy of the image in which pixels where mask is set
// are kept and all other pixels are black. This realises the paper's
// component extraction (e.g. VB^i from f^i via VBM^i).
func (im *Image) ApplyMask(m *Mask) *Image {
	out := New(im.W, im.H)
	if m.W != im.W || m.H != im.H {
		return out
	}
	m.ForEachSet(func(i int) {
		out.Pix[i] = im.Pix[i]
	})
	return out
}

// RemoveMask returns a copy of the image in which pixels where mask is
// set are blacked out; the rest are kept. This realises "removing" a
// component (VB, BB, VC) from a blended frame.
func (im *Image) RemoveMask(m *Mask) *Image {
	out := im.Clone()
	if m.W != im.W || m.H != im.H {
		return out
	}
	m.ForEachSet(func(i int) {
		out.Pix[i] = Black
	})
	return out
}

// ScaleBrightness multiplies every channel of every pixel by factor,
// clamping to [0, 255]. It models the scene lighting switch.
func (im *Image) ScaleBrightness(factor float64) {
	for i, p := range im.Pix {
		im.Pix[i] = RGB{
			R: clampU8(float64(p.R) * factor),
			G: clampU8(float64(p.G) * factor),
			B: clampU8(float64(p.B) * factor),
		}
	}
}

func clampU8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
