package imagex

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMask(r *rand.Rand, w, h int) *Mask {
	m := NewMask(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			m.Set(x, y, r.Intn(2) == 0)
		}
	}
	return m
}

func TestMaskCountFraction(t *testing.T) {
	m := NewMask(4, 4)
	if m.Count() != 0 || m.Fraction() != 0 {
		t.Fatal("fresh mask must be empty")
	}
	m.Set(0, 0, true)
	m.Set(3, 3, true)
	if m.Count() != 2 {
		t.Fatalf("Count = %d, want 2", m.Count())
	}
	if m.Fraction() != 2.0/16 {
		t.Fatalf("Fraction = %v", m.Fraction())
	}
	full := NewFullMask(3, 2)
	if full.Count() != 6 || full.Fraction() != 1 {
		t.Fatal("NewFullMask wrong")
	}
}

func TestMaskSetAtBounds(t *testing.T) {
	m := NewMask(2, 2)
	m.Set(-1, 0, true)
	m.Set(5, 5, true)
	if m.Count() != 0 {
		t.Fatal("out-of-bounds Set must be ignored")
	}
	if m.At(-1, 0) || m.At(2, 0) {
		t.Fatal("out-of-bounds At must be false")
	}
}

func TestMaskUnionSubtractIntersect(t *testing.T) {
	a := NewMask(3, 1)
	a.Set(0, 0, true)
	b := NewMask(3, 1)
	b.Set(1, 0, true)

	u := a.Clone()
	if err := u.Union(b); err != nil {
		t.Fatal(err)
	}
	if u.Count() != 2 {
		t.Fatalf("union count = %d", u.Count())
	}

	s := u.Clone()
	if err := s.Subtract(a); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 1 || !s.At(1, 0) {
		t.Fatal("subtract wrong")
	}

	i := u.Clone()
	if err := i.Intersect(a); err != nil {
		t.Fatal(err)
	}
	if i.Count() != 1 || !i.At(0, 0) {
		t.Fatal("intersect wrong")
	}

	if err := a.Union(NewMask(9, 9)); !errors.Is(err, ErrBounds) {
		t.Fatalf("union size mismatch = %v", err)
	}
	if err := a.Subtract(NewMask(9, 9)); !errors.Is(err, ErrBounds) {
		t.Fatalf("subtract size mismatch = %v", err)
	}
	if err := a.Intersect(NewMask(9, 9)); !errors.Is(err, ErrBounds) {
		t.Fatalf("intersect size mismatch = %v", err)
	}
}

func TestMaskInvert(t *testing.T) {
	m := NewMask(2, 2)
	m.Set(0, 0, true)
	m.Invert()
	if m.Count() != 3 || m.At(0, 0) {
		t.Fatal("invert wrong")
	}
}

func TestDilateContainsSourceAndRespectRadius(t *testing.T) {
	m := NewMask(21, 21)
	m.Set(10, 10, true)
	d := m.Dilate(3)
	if !d.At(10, 10) {
		t.Fatal("dilation must contain source")
	}
	if !d.At(13, 10) || !d.At(10, 7) {
		t.Fatal("dilation must reach radius along axes")
	}
	if d.At(13, 13) {
		t.Fatal("dilation must not exceed Euclidean radius (3,3) for r=3")
	}
	// Disc area for r=3: all dx,dy with dx²+dy² ≤ 9 → 29 pixels.
	if d.Count() != 29 {
		t.Fatalf("disc pixel count = %d, want 29", d.Count())
	}
}

func TestDilateZeroRadiusIsClone(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	m := randomMask(r, 6, 6)
	if !m.Dilate(0).Equal(m) {
		t.Fatal("radius-0 dilation must equal source")
	}
}

func TestErodeInverseOfDilateOnDisc(t *testing.T) {
	m := NewMask(31, 31)
	m.Set(15, 15, true)
	d := m.Dilate(5)
	e := d.Erode(5)
	if !e.At(15, 15) || e.Count() != 1 {
		t.Fatalf("erode(dilate(point)) = %d pixels, want exactly the point", e.Count())
	}
}

func TestErodeClearsBoundaryTouchingEdge(t *testing.T) {
	m := NewFullMask(5, 5)
	e := m.Erode(1)
	// All pixels adjacent to the border lose out because the disc exits
	// the mask bounds.
	if e.Count() != 9 {
		t.Fatalf("eroded full 5x5 = %d pixels, want 9", e.Count())
	}
}

func TestBoundary(t *testing.T) {
	m := NewMask(5, 5)
	m.FillRectMask(1, 1, 4, 4)
	b := m.Boundary()
	if b.At(2, 2) {
		t.Fatal("interior pixel must not be boundary")
	}
	if !b.At(1, 1) || !b.At(3, 3) || !b.At(1, 3) {
		t.Fatal("rim pixels must be boundary")
	}
	if b.Count() != 8 {
		t.Fatalf("3x3 block boundary = %d pixels, want 8", b.Count())
	}
}

// FillRectMask is a tiny helper for tests only.
func (m *Mask) FillRectMask(x0, y0, x1, y1 int) {
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			m.Set(x, y, true)
		}
	}
}

func TestOverlapDisjoint(t *testing.T) {
	a := NewMask(3, 1)
	a.Set(0, 0, true)
	b := NewMask(3, 1)
	b.Set(2, 0, true)
	if !a.Disjoint(b) {
		t.Fatal("expected disjoint")
	}
	b.Set(0, 0, true)
	if a.Overlap(b) != 1 || a.Disjoint(b) {
		t.Fatal("expected overlap of 1")
	}
	if a.Overlap(NewMask(2, 2)) != 0 {
		t.Fatal("size mismatch overlap must be 0")
	}
}

func TestBBox(t *testing.T) {
	m := NewMask(10, 10)
	if _, _, _, _, ok := m.BBox(); ok {
		t.Fatal("empty mask must have no bbox")
	}
	m.Set(2, 3, true)
	m.Set(7, 5, true)
	x0, y0, x1, y1, ok := m.BBox()
	if !ok || x0 != 2 || y0 != 3 || x1 != 8 || y1 != 6 {
		t.Fatalf("bbox = (%d,%d,%d,%d, %v)", x0, y0, x1, y1, ok)
	}
}

func TestToImage(t *testing.T) {
	m := NewMask(2, 1)
	m.Set(1, 0, true)
	im := m.ToImage()
	if im.At(0, 0) != Black || im.At(1, 0) != White {
		t.Fatal("ToImage wrong")
	}
}

func TestPropertyDilateMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMask(r, 12, 12)
		d1 := m.Dilate(1)
		d2 := m.Dilate(2)
		// d1 ⊆ d2 and m ⊆ d1.
		for i := 0; i < m.Len(); i++ {
			if m.GetI(i) && !d1.GetI(i) {
				return false
			}
			if d1.GetI(i) && !d2.GetI(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubtractDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMask(r, 10, 10)
		b := randomMask(r, 10, 10)
		res := a.Clone()
		if err := res.Subtract(b); err != nil {
			return false
		}
		return res.Disjoint(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnionCardinality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMask(r, 10, 10)
		b := randomMask(r, 10, 10)
		u := a.Clone()
		if err := u.Union(b); err != nil {
			return false
		}
		// |A ∪ B| = |A| + |B| − |A ∩ B|
		return u.Count() == a.Count()+b.Count()-a.Overlap(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyErodeShrinks(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomMask(r, 12, 12)
		e := m.Erode(1)
		for i := 0; i < e.Len(); i++ {
			if e.GetI(i) && !m.GetI(i) {
				return false
			}
		}
		return e.Count() <= m.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
