package imagex

import (
	"math/rand"
	"testing"
)

// Bench geometry matches the paper-scale frame the reconstruction hot
// path processes (1280×720 is the calibrated Zoom geometry; the
// simulator default 160×120 is covered by the small variant).
const (
	benchW = 1280
	benchH = 720
)

func benchMaskPair(seed int64, w, h int) (*Mask, *Mask) {
	r := rand.New(rand.NewSource(seed))
	a, b := NewMask(w, h), NewMask(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if r.Intn(2) == 0 {
				a.Set(x, y, true)
			}
			if r.Intn(2) == 0 {
				b.Set(x, y, true)
			}
		}
	}
	return a, b
}

// benchSilhouette builds a blobby mask that resembles a caller
// silhouette: dense interior, irregular boundary. Dilate cost depends on
// the set-bit population, so a realistic shape matters.
func benchSilhouette(w, h int) *Mask {
	m := NewMask(w, h)
	cx, cy := w/2, h/2
	rx, ry := w/5, h/3
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			dx, dy := float64(x-cx)/float64(rx), float64(y-cy)/float64(ry)
			if dx*dx+dy*dy <= 1 {
				m.Set(x, y, true)
			}
		}
	}
	return m
}

func BenchmarkMaskOpsUnion(b *testing.B) {
	x, y := benchMaskPair(1, benchW, benchH)
	dst := x.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.Union(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaskOpsSubtract(b *testing.B) {
	x, y := benchMaskPair(2, benchW, benchH)
	dst := x.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.Subtract(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaskOpsIntersect(b *testing.B) {
	x, y := benchMaskPair(3, benchW, benchH)
	dst := x.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.Intersect(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaskOpsCount(b *testing.B) {
	x, _ := benchMaskPair(4, benchW, benchH)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n += x.Count()
	}
	_ = n
}

func BenchmarkMaskOpsOverlap(b *testing.B) {
	x, y := benchMaskPair(5, benchW, benchH)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n += x.Overlap(y)
	}
	_ = n
}

func BenchmarkMaskOpsEqual(b *testing.B) {
	x, _ := benchMaskPair(6, benchW, benchH)
	y := x.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Equal(y) {
			b.Fatal("clones must be equal")
		}
	}
}

func BenchmarkMaskOpsInvert(b *testing.B) {
	x, _ := benchMaskPair(7, benchW, benchH)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Invert()
	}
}

// Dilate at the paper's calibrated Zoom blur radius (φ = 20 at
// 1280×720) — the single hottest call of the reconstruction loop.
func BenchmarkMaskOpsDilatePhi20(b *testing.B) {
	m := benchSilhouette(benchW, benchH)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Dilate(20)
	}
}

// Dilate at the simulator-scale radius (φ = 3 at 160×120).
func BenchmarkMaskOpsDilateSim(b *testing.B) {
	m := benchSilhouette(160, 120)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Dilate(3)
	}
}

func BenchmarkMaskOpsErode(b *testing.B) {
	m := benchSilhouette(benchW, benchH)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Erode(3)
	}
}

func BenchmarkMaskOpsBoundary(b *testing.B) {
	m := benchSilhouette(benchW, benchH)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Boundary()
	}
}
