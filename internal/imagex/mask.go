package imagex

import (
	"fmt"
	"math/bits"
)

// Mask is a W×H bitmap. In the paper's terminology a mask pixel value of
// 1 (255,255,255) marks foreground membership and 0 marks background.
// Masks represent the per-frame components VBM, BBM, VCM and the leaked
// background LB.
//
// Storage is a word-packed bitset: each row occupies (W+63)/64 uint64
// words, and bit x of row y lives in word y*wpr + x>>6 at bit position
// x&63 (LSB = lowest x). Rows are word-aligned so horizontal morphology
// reduces to per-row word shifts, and the set operations
// (Union/Subtract/Intersect/Xor) and the population counts
// (Count/Overlap/Fraction) run one uint64 at a time — 64 pixels per
// memory touch instead of one.
//
// Invariant: the padding bits past W in each row's last word are always
// zero. Every mutator maintains it, so whole-word operations need no
// per-bit edge handling.
type Mask struct {
	W, H  int
	words []uint64
}

// wordsPerRow returns the per-row word stride for width w.
func wordsPerRow(w int) int { return (w + 63) >> 6 }

// edgeMask returns the valid-bit mask for the last word of a row of
// width w (all ones when w is a multiple of 64).
func edgeMask(w int) uint64 {
	if w&63 == 0 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w&63)) - 1
}

// NewMask returns an all-clear mask of the given dimensions. It panics on
// non-positive dimensions, matching New.
func NewMask(w, h int) *Mask {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imagex: invalid mask size %dx%d", w, h))
	}
	return &Mask{W: w, H: h, words: make([]uint64, h*wordsPerRow(w))}
}

// NewFullMask returns an all-set mask.
func NewFullMask(w, h int) *Mask {
	m := NewMask(w, h)
	for i := range m.words {
		m.words[i] = ^uint64(0)
	}
	m.maskEdges()
	return m
}

// maskEdges clears the row-padding bits, restoring the invariant after a
// whole-word mutation that may have set them.
func (m *Mask) maskEdges() {
	edge := edgeMask(m.W)
	if edge == ^uint64(0) {
		return
	}
	wpr := wordsPerRow(m.W)
	for y := 0; y < m.H; y++ {
		m.words[y*wpr+wpr-1] &= edge
	}
}

// row returns the word slice of row y.
func (m *Mask) row(y int) []uint64 {
	wpr := wordsPerRow(m.W)
	return m.words[y*wpr : (y+1)*wpr : (y+1)*wpr]
}

// In reports whether (x, y) lies inside the mask.
func (m *Mask) In(x, y int) bool {
	return x >= 0 && x < m.W && y >= 0 && y < m.H
}

// At returns the bit at (x, y); out-of-bounds reads return false.
func (m *Mask) At(x, y int) bool {
	if !m.In(x, y) {
		return false
	}
	return m.words[y*wordsPerRow(m.W)+x>>6]>>(uint(x)&63)&1 != 0
}

// Set writes the bit at (x, y); out-of-bounds writes are ignored.
func (m *Mask) Set(x, y int, v bool) {
	if !m.In(x, y) {
		return
	}
	w := &m.words[y*wordsPerRow(m.W)+x>>6]
	if v {
		*w |= 1 << (uint(x) & 63)
	} else {
		*w &^= 1 << (uint(x) & 63)
	}
}

// Len returns the number of pixels (W×H).
func (m *Mask) Len() int { return m.W * m.H }

// GetI returns the bit at row-major linear index i = y*W + x. It panics
// when i is outside [0, Len()), matching a slice access.
func (m *Mask) GetI(i int) bool {
	y := i / m.W
	x := i - y*m.W
	if y >= m.H || i < 0 {
		panic(fmt.Sprintf("imagex: mask index %d out of range %d", i, m.Len()))
	}
	return m.words[y*wordsPerRow(m.W)+x>>6]>>(uint(x)&63)&1 != 0
}

// SetI writes the bit at row-major linear index i = y*W + x. It panics
// when i is outside [0, Len()), matching a slice access.
func (m *Mask) SetI(i int, v bool) {
	y := i / m.W
	x := i - y*m.W
	if y >= m.H || i < 0 {
		panic(fmt.Sprintf("imagex: mask index %d out of range %d", i, m.Len()))
	}
	w := &m.words[y*wordsPerRow(m.W)+x>>6]
	if v {
		*w |= 1 << (uint(x) & 63)
	} else {
		*w &^= 1 << (uint(x) & 63)
	}
}

// SetSpan sets the bits [x0, x1) of row y, clipping silently at the mask
// border. Renderers use it to record painted rectangle rows in one word
// operation per 64 pixels.
func (m *Mask) SetSpan(y, x0, x1 int) {
	if y < 0 || y >= m.H {
		return
	}
	if x0 < 0 {
		x0 = 0
	}
	if x1 > m.W {
		x1 = m.W
	}
	if x0 >= x1 {
		return
	}
	setRange(m.row(y), x0, x1)
}

// ForEachSet calls fn with the row-major linear index (y*W + x) of every
// set bit, in ascending order. The word holding the current run of bits
// is snapshotted, so fn may clear bits at or before the index it was
// called with (e.g. the color-refinement drop pass) without affecting
// the iteration.
func (m *Mask) ForEachSet(fn func(i int)) {
	wpr := wordsPerRow(m.W)
	for y := 0; y < m.H; y++ {
		base := y * m.W
		row := m.words[y*wpr : (y+1)*wpr]
		for wi, w := range row {
			for w != 0 {
				fn(base + wi<<6 + bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
	}
}

// BuildMask constructs a mask of the given dimensions from a per-pixel
// predicate over the row-major linear index; pred is called exactly once
// per pixel in ascending order. Bits accumulate in a register and are
// written one word at a time, which keeps predicate-driven mask
// construction (VB matching, diff masks) free of per-bit stores.
func BuildMask(w, h int, pred func(i int) bool) *Mask {
	m := NewMask(w, h)
	wpr := wordsPerRow(w)
	i := 0
	for y := 0; y < h; y++ {
		row := m.words[y*wpr : (y+1)*wpr]
		for x := 0; x < w; x += 64 {
			n := w - x
			if n > 64 {
				n = 64
			}
			var word uint64
			for b := 0; b < n; b++ {
				if pred(i) {
					word |= 1 << uint(b)
				}
				i++
			}
			row[x>>6] = word
		}
	}
	return m
}

// BuildMaskInto is BuildMask writing into a caller-supplied mask (the
// streaming hot path reuses one scratch mask per stream). It allocates
// only when dst is nil or mis-sized, and returns the mask written.
// Every word is overwritten, so dst need not be cleared first.
func BuildMaskInto(dst *Mask, w, h int, pred func(i int) bool) *Mask {
	if dst == nil || dst.W != w || dst.H != h {
		dst = NewMask(w, h)
	}
	wpr := wordsPerRow(w)
	i := 0
	for y := 0; y < h; y++ {
		row := dst.words[y*wpr : (y+1)*wpr]
		for x := 0; x < w; x += 64 {
			n := w - x
			if n > 64 {
				n = 64
			}
			var word uint64
			for b := 0; b < n; b++ {
				if pred(i) {
					word |= 1 << uint(b)
				}
				i++
			}
			row[x>>6] = word
		}
	}
	return dst
}

// WordsPerRow returns the mask's per-row word stride: bit x of row y
// lives in word y*WordsPerRow() + x>>6 at position x&63.
func (m *Mask) WordsPerRow() int { return wordsPerRow(m.W) }

// Word returns the packed word wx of row y — bits [wx*64, wx*64+63] of
// that row, LSB = lowest x. Together with OrWord it lets word-granular
// kernels outside this package (the stream's derivation update) read
// and extend a mask 64 pixels per memory touch without per-bit At/Set.
func (m *Mask) Word(y, wx int) uint64 {
	return m.words[y*wordsPerRow(m.W)+wx]
}

// OrWord ORs bits into the packed word wx of row y. Only set bits are
// written, and bits past the row width are discarded, so the padding
// invariant holds for any argument.
func (m *Mask) OrWord(y, wx int, bits uint64) {
	wpr := wordsPerRow(m.W)
	if wx == wpr-1 {
		bits &= edgeMask(m.W)
	}
	m.words[y*wpr+wx] |= bits
}

// Clone returns a deep copy of the mask.
func (m *Mask) Clone() *Mask {
	out := NewMask(m.W, m.H)
	copy(out.words, m.words)
	return out
}

// CopyFrom overwrites this mask's bits with src's. It returns ErrBounds
// if dimensions differ.
func (m *Mask) CopyFrom(src *Mask) error {
	if !m.SameSize(src) {
		return fmt.Errorf("imagex: copy %dx%d from %dx%d: %w", m.W, m.H, src.W, src.H, ErrBounds)
	}
	copy(m.words, src.words)
	return nil
}

// Clear resets every bit.
func (m *Mask) Clear() {
	for i := range m.words {
		m.words[i] = 0
	}
}

// SameSize reports whether two masks have identical dimensions.
func (m *Mask) SameSize(o *Mask) bool { return m.W == o.W && m.H == o.H }

// Equal reports whether two masks are bit-identical.
func (m *Mask) Equal(o *Mask) bool {
	if !m.SameSize(o) {
		return false
	}
	for i, w := range m.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (m *Mask) Count() int {
	n := 0
	for _, w := range m.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Fraction returns Count divided by the mask area.
func (m *Mask) Fraction() float64 {
	if m.Len() == 0 {
		return 0
	}
	return float64(m.Count()) / float64(m.Len())
}

// Union sets every bit that is set in o. Masks of differing sizes are
// rejected with ErrBounds.
func (m *Mask) Union(o *Mask) error {
	if !m.SameSize(o) {
		return fmt.Errorf("imagex: union %dx%d with %dx%d: %w", m.W, m.H, o.W, o.H, ErrBounds)
	}
	for i, w := range o.words {
		m.words[i] |= w
	}
	return nil
}

// Subtract clears every bit that is set in o.
func (m *Mask) Subtract(o *Mask) error {
	if !m.SameSize(o) {
		return fmt.Errorf("imagex: subtract %dx%d from %dx%d: %w", o.W, o.H, m.W, m.H, ErrBounds)
	}
	for i, w := range o.words {
		m.words[i] &^= w
	}
	return nil
}

// Intersect clears every bit that is clear in o.
func (m *Mask) Intersect(o *Mask) error {
	if !m.SameSize(o) {
		return fmt.Errorf("imagex: intersect %dx%d with %dx%d: %w", m.W, m.H, o.W, o.H, ErrBounds)
	}
	for i, w := range o.words {
		m.words[i] &= w
	}
	return nil
}

// Xor flips every bit that is set in o (symmetric difference in place).
func (m *Mask) Xor(o *Mask) error {
	if !m.SameSize(o) {
		return fmt.Errorf("imagex: xor %dx%d with %dx%d: %w", m.W, m.H, o.W, o.H, ErrBounds)
	}
	for i, w := range o.words {
		m.words[i] ^= w
	}
	return nil
}

// Invert flips every bit in place.
func (m *Mask) Invert() {
	for i := range m.words {
		m.words[i] = ^m.words[i]
	}
	m.maskEdges()
}

// Overlap returns the number of positions set in both masks; zero when
// sizes differ.
func (m *Mask) Overlap(o *Mask) int {
	if !m.SameSize(o) {
		return 0
	}
	n := 0
	for i, w := range m.words {
		n += bits.OnesCount64(w & o.words[i])
	}
	return n
}

// Disjoint reports whether the two masks share no set bit.
func (m *Mask) Disjoint(o *Mask) bool {
	if !m.SameSize(o) {
		return true
	}
	for i, w := range m.words {
		if w&o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Dilate returns a new mask in which a bit is set if any source bit lies
// within Euclidean distance radius. This is exactly the paper's blending
// blur recovery (Section V-C): for every pixel with VBM=1, all pixels
// (p, q) with sqrt((p−u)²+(q−w)²) ≤ φ join the blur mask.
func (m *Mask) Dilate(radius int) *Mask {
	return m.DilateInto(nil, radius)
}

// DilateInto writes the dilation of m into dst and returns it,
// allocating when dst is nil, mis-sized, or m itself.
//
// The disc structuring element is decomposed into per-row horizontal
// extents rx(dy) = ⌊√(r²−dy²)⌋: for every source row, the horizontal
// dilations at each extent are built incrementally by OR-ing word-shifted
// copies of the row, then OR-merged into the 2r+1 affected output rows.
// The cost is O(H · r · wpr) word operations — independent of the set-bit
// population — versus the O(set-bits · r²) per-pixel scatter of a naive
// offset walk.
//
// DilateInto builds a transient Dilator per call; hot paths that dilate
// the same geometry and radius repeatedly should hold a Dilator instead,
// which hoists the extent table and scratch rows out of the loop.
func (m *Mask) DilateInto(dst *Mask, radius int) *Mask {
	return NewDilator(m.W, m.H, radius).DilateInto(dst, m)
}

// Erode returns a new mask in which a bit survives only if every pixel
// within the given radius was set (and in bounds). It is computed by
// duality — erode(m) = m ∖ dilate(¬m) — plus clearing the border band of
// width radius, whose discs poke out of bounds (the disc reaches exactly
// radius along the axes).
func (m *Mask) Erode(radius int) *Mask {
	if radius <= 0 {
		return m.Clone()
	}
	inv := m.Clone()
	inv.Invert()
	out := m.Clone()
	// Same geometry by construction; Subtract cannot fail.
	_ = out.Subtract(inv.Dilate(radius))
	if 2*radius >= m.W || 2*radius >= m.H {
		return NewMask(m.W, m.H)
	}
	wpr := wordsPerRow(m.W)
	for y := 0; y < m.H; y++ {
		row := out.words[y*wpr : (y+1)*wpr]
		if y < radius || y >= m.H-radius {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		clearRange(row, 0, radius)
		clearRange(row, m.W-radius, m.W)
	}
	return out
}

// Boundary returns the set bits that touch (8-connectivity) at least one
// clear or out-of-bounds pixel. The compositor's error model perturbs
// exactly this band. A bit is interior iff its 3-row horizontal-closure
// words are all set: h3(y) = row ∧ (row≪1) ∧ (row≫1), and
// interior = h3(y−1) ∧ h3(y) ∧ h3(y+1), with out-of-bounds rows all
// zero — so the whole band falls out of three word-ANDs per row.
func (m *Mask) Boundary() *Mask {
	out := NewMask(m.W, m.H)
	wpr := wordsPerRow(m.W)

	// h3 per row: pixel and both horizontal neighbours set and in bounds.
	h3 := make([]uint64, m.H*wpr)
	tmp := make([]uint64, wpr)
	for y := 0; y < m.H; y++ {
		src := m.words[y*wpr : (y+1)*wpr]
		row := h3[y*wpr : (y+1)*wpr]
		copy(row, src)
		for j := range tmp {
			tmp[j] = 0
		}
		orShiftLeft(tmp, src, 1)
		for j := range row {
			row[j] &= tmp[j]
		}
		for j := range tmp {
			tmp[j] = 0
		}
		orShiftRight(tmp, src, 1)
		for j := range row {
			row[j] &= tmp[j]
		}
	}

	zero := make([]uint64, wpr)
	for y := 0; y < m.H; y++ {
		up, down := zero, zero
		if y > 0 {
			up = h3[(y-1)*wpr : y*wpr]
		}
		if y+1 < m.H {
			down = h3[(y+1)*wpr : (y+2)*wpr]
		}
		mid := h3[y*wpr : (y+1)*wpr]
		src := m.words[y*wpr : (y+1)*wpr]
		row := out.words[y*wpr : (y+1)*wpr]
		for j := range row {
			row[j] = src[j] &^ (up[j] & mid[j] & down[j])
		}
	}
	return out
}

// ToImage renders the mask as a black-and-white image (set = white),
// matching the paper's bitmap visualisations.
func (m *Mask) ToImage() *Image {
	im := New(m.W, m.H)
	m.ForEachSet(func(i int) {
		im.Pix[i] = White
	})
	return im
}

// BBox returns the tight bounding box (x0, y0, x1, y1) of set bits, with
// x1/y1 exclusive, and ok=false when the mask is empty.
func (m *Mask) BBox() (x0, y0, x1, y1 int, ok bool) {
	wpr := wordsPerRow(m.W)
	x0, y0 = m.W, m.H
	for y := 0; y < m.H; y++ {
		row := m.words[y*wpr : (y+1)*wpr]
		if rowEmpty(row) {
			continue
		}
		if !ok {
			y0 = y
		}
		ok = true
		y1 = y + 1
		for wi := 0; wi < wpr; wi++ {
			if row[wi] != 0 {
				if first := wi<<6 + bits.TrailingZeros64(row[wi]); first < x0 {
					x0 = first
				}
				break
			}
		}
		for wi := wpr - 1; wi >= 0; wi-- {
			if row[wi] != 0 {
				if last := wi<<6 + 63 - bits.LeadingZeros64(row[wi]); last+1 > x1 {
					x1 = last + 1
				}
				break
			}
		}
	}
	if !ok {
		return 0, 0, 0, 0, false
	}
	return x0, y0, x1, y1, true
}

// WordBytes returns the size of the mask's packed-word encoding
// (AppendWords): 8 bytes per storage word, rows word-aligned.
func (m *Mask) WordBytes() int { return 8 * m.H * wordsPerRow(m.W) }

// AppendWords appends the packed bitset words to buf in row-major
// order, each word little-endian, and returns the extended slice. The
// encoding is exactly WordBytes() long; geometry is not included — the
// container embedding the mask records it (checkpoint format §11).
func (m *Mask) AppendWords(buf []byte) []byte {
	for _, w := range m.words {
		buf = append(buf,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return buf
}

// LoadWords overwrites the mask from an AppendWords encoding. It
// rejects data of the wrong length and encodings with nonzero
// row-padding bits: the padding invariant backs every whole-word
// operation (Count, Union, …), so a crafted encoding that set those
// bits would silently corrupt set algebra downstream.
func (m *Mask) LoadWords(data []byte) error {
	if len(data) != m.WordBytes() {
		return fmt.Errorf("imagex: mask encoding %d bytes for %dx%d (want %d): %w",
			len(data), m.W, m.H, m.WordBytes(), ErrBounds)
	}
	wpr := wordsPerRow(m.W)
	edge := edgeMask(m.W)
	for i := range m.words {
		w := uint64(data[8*i]) | uint64(data[8*i+1])<<8 | uint64(data[8*i+2])<<16 | uint64(data[8*i+3])<<24 |
			uint64(data[8*i+4])<<32 | uint64(data[8*i+5])<<40 | uint64(data[8*i+6])<<48 | uint64(data[8*i+7])<<56
		if i%wpr == wpr-1 && w&^edge != 0 {
			return fmt.Errorf("imagex: mask encoding has nonzero padding bits in row %d: %w", i/wpr, ErrBounds)
		}
		m.words[i] = w
	}
	return nil
}

// rowEmpty reports whether every word of a row is zero.
func rowEmpty(row []uint64) bool {
	for _, w := range row {
		if w != 0 {
			return false
		}
	}
	return true
}

// setRange sets bits [x0, x1) of a row; callers guarantee 0 ≤ x0 < x1 ≤ W.
func setRange(row []uint64, x0, x1 int) {
	w0, w1 := x0>>6, (x1-1)>>6
	if w0 == w1 {
		row[w0] |= rangeMask(uint(x0&63), uint((x1-1)&63)+1)
		return
	}
	row[w0] |= ^uint64(0) << (uint(x0) & 63)
	for w := w0 + 1; w < w1; w++ {
		row[w] = ^uint64(0)
	}
	row[w1] |= rangeMask(0, uint((x1-1)&63)+1)
}

// clearRange clears bits [x0, x1) of a row; callers guarantee
// 0 ≤ x0 < x1 ≤ W.
func clearRange(row []uint64, x0, x1 int) {
	w0, w1 := x0>>6, (x1-1)>>6
	if w0 == w1 {
		row[w0] &^= rangeMask(uint(x0&63), uint((x1-1)&63)+1)
		return
	}
	row[w0] &^= ^uint64(0) << (uint(x0) & 63)
	for w := w0 + 1; w < w1; w++ {
		row[w] = 0
	}
	row[w1] &^= rangeMask(0, uint((x1-1)&63)+1)
}

// rangeMask returns a word with bits [a, b) set; 0 ≤ a < b ≤ 64.
func rangeMask(a, b uint) uint64 {
	return ^uint64(0) >> (64 - (b - a)) << a
}

// orShiftLeft ORs src shifted k bits towards higher x into dst (dst and
// src are same-length row slices). Bits shifted past the row end land in
// the padding; callers re-mask the last word.
func orShiftLeft(dst, src []uint64, k int) {
	wsh, bsh := k>>6, uint(k&63)
	if bsh == 0 {
		for j := len(dst) - 1; j >= wsh; j-- {
			dst[j] |= src[j-wsh]
		}
		return
	}
	for j := len(dst) - 1; j >= wsh; j-- {
		v := src[j-wsh] << bsh
		if j-wsh-1 >= 0 {
			v |= src[j-wsh-1] >> (64 - bsh)
		}
		dst[j] |= v
	}
}

// orShiftRight ORs src shifted k bits towards lower x into dst. Row
// padding in src is zero, so no stray bits enter from the end.
func orShiftRight(dst, src []uint64, k int) {
	wsh, bsh := k>>6, uint(k&63)
	n := len(dst)
	if bsh == 0 {
		for j := 0; j+wsh < n; j++ {
			dst[j] |= src[j+wsh]
		}
		return
	}
	for j := 0; j+wsh < n; j++ {
		v := src[j+wsh] >> bsh
		if j+wsh+1 < n {
			v |= src[j+wsh+1] << (64 - bsh)
		}
		dst[j] |= v
	}
}

// isqrt returns ⌊√n⌋ for small non-negative n (n ≤ radius²).
func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

func absI(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
