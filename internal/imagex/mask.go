package imagex

import "fmt"

// Mask is a W×H bitmap. In the paper's terminology a mask pixel value of
// 1 (255,255,255) marks foreground membership and 0 marks background;
// here the bitmap stores the same information as booleans. Masks
// represent the per-frame components VBM, BBM, VCM and the leaked
// background LB.
type Mask struct {
	W, H int
	Bits []bool
}

// NewMask returns an all-clear mask of the given dimensions. It panics on
// non-positive dimensions, matching New.
func NewMask(w, h int) *Mask {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imagex: invalid mask size %dx%d", w, h))
	}
	return &Mask{W: w, H: h, Bits: make([]bool, w*h)}
}

// NewFullMask returns an all-set mask.
func NewFullMask(w, h int) *Mask {
	m := NewMask(w, h)
	for i := range m.Bits {
		m.Bits[i] = true
	}
	return m
}

// In reports whether (x, y) lies inside the mask.
func (m *Mask) In(x, y int) bool {
	return x >= 0 && x < m.W && y >= 0 && y < m.H
}

// At returns the bit at (x, y); out-of-bounds reads return false.
func (m *Mask) At(x, y int) bool {
	if !m.In(x, y) {
		return false
	}
	return m.Bits[y*m.W+x]
}

// Set writes the bit at (x, y); out-of-bounds writes are ignored.
func (m *Mask) Set(x, y int, v bool) {
	if !m.In(x, y) {
		return
	}
	m.Bits[y*m.W+x] = v
}

// Clone returns a deep copy of the mask.
func (m *Mask) Clone() *Mask {
	out := NewMask(m.W, m.H)
	copy(out.Bits, m.Bits)
	return out
}

// SameSize reports whether two masks have identical dimensions.
func (m *Mask) SameSize(o *Mask) bool { return m.W == o.W && m.H == o.H }

// Equal reports whether two masks are bit-identical.
func (m *Mask) Equal(o *Mask) bool {
	if !m.SameSize(o) {
		return false
	}
	for i := range m.Bits {
		if m.Bits[i] != o.Bits[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (m *Mask) Count() int {
	n := 0
	for _, b := range m.Bits {
		if b {
			n++
		}
	}
	return n
}

// Fraction returns Count divided by the mask area.
func (m *Mask) Fraction() float64 {
	if len(m.Bits) == 0 {
		return 0
	}
	return float64(m.Count()) / float64(len(m.Bits))
}

// Union sets every bit that is set in o. Masks of differing sizes are
// rejected with ErrBounds.
func (m *Mask) Union(o *Mask) error {
	if !m.SameSize(o) {
		return fmt.Errorf("imagex: union %dx%d with %dx%d: %w", m.W, m.H, o.W, o.H, ErrBounds)
	}
	for i, b := range o.Bits {
		if b {
			m.Bits[i] = true
		}
	}
	return nil
}

// Subtract clears every bit that is set in o.
func (m *Mask) Subtract(o *Mask) error {
	if !m.SameSize(o) {
		return fmt.Errorf("imagex: subtract %dx%d from %dx%d: %w", o.W, o.H, m.W, m.H, ErrBounds)
	}
	for i, b := range o.Bits {
		if b {
			m.Bits[i] = false
		}
	}
	return nil
}

// Intersect clears every bit that is clear in o.
func (m *Mask) Intersect(o *Mask) error {
	if !m.SameSize(o) {
		return fmt.Errorf("imagex: intersect %dx%d with %dx%d: %w", m.W, m.H, o.W, o.H, ErrBounds)
	}
	for i, b := range o.Bits {
		if !b {
			m.Bits[i] = false
		}
	}
	return nil
}

// Invert flips every bit in place.
func (m *Mask) Invert() {
	for i := range m.Bits {
		m.Bits[i] = !m.Bits[i]
	}
}

// Overlap returns the number of positions set in both masks; zero when
// sizes differ.
func (m *Mask) Overlap(o *Mask) int {
	if !m.SameSize(o) {
		return 0
	}
	n := 0
	for i := range m.Bits {
		if m.Bits[i] && o.Bits[i] {
			n++
		}
	}
	return n
}

// Disjoint reports whether the two masks share no set bit.
func (m *Mask) Disjoint(o *Mask) bool { return m.Overlap(o) == 0 }

// Dilate returns a new mask in which a bit is set if any source bit lies
// within Euclidean distance radius. This is exactly the paper's blending
// blur recovery (Section V-C): for every pixel with VBM=1, all pixels
// (p, q) with sqrt((p−u)²+(q−w)²) ≤ φ join the blur mask.
//
// The implementation precomputes the disc offsets once and runs in
// O(set-bits × disc-area), which is fast at the radii used (φ ≈ 20 at
// paper scale, proportionally smaller at simulator scale).
func (m *Mask) Dilate(radius int) *Mask {
	if radius <= 0 {
		return m.Clone()
	}
	offsets := discOffsets(radius)
	out := NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if !m.Bits[y*m.W+x] {
				continue
			}
			for _, o := range offsets {
				out.Set(x+o[0], y+o[1], true)
			}
		}
	}
	return out
}

// Erode returns a new mask in which a bit survives only if every pixel
// within the given radius was set (and in bounds).
func (m *Mask) Erode(radius int) *Mask {
	if radius <= 0 {
		return m.Clone()
	}
	offsets := discOffsets(radius)
	out := NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
	pixel:
		for x := 0; x < m.W; x++ {
			if !m.Bits[y*m.W+x] {
				continue
			}
			for _, o := range offsets {
				if !m.At(x+o[0], y+o[1]) {
					continue pixel
				}
			}
			out.Bits[y*m.W+x] = true
		}
	}
	return out
}

// Boundary returns the set bits that touch (8-connectivity) at least one
// clear or out-of-bounds pixel. The compositor's error model perturbs
// exactly this band.
func (m *Mask) Boundary() *Mask {
	out := NewMask(m.W, m.H)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if !m.Bits[y*m.W+x] {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					if !m.At(x+dx, y+dy) {
						out.Bits[y*m.W+x] = true
					}
				}
			}
		}
	}
	return out
}

// discOffsets returns all (dx, dy) with dx²+dy² ≤ r².
func discOffsets(r int) [][2]int {
	var offs [][2]int
	r2 := r * r
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r2 {
				offs = append(offs, [2]int{dx, dy})
			}
		}
	}
	return offs
}

// ToImage renders the mask as a black-and-white image (set = white),
// matching the paper's bitmap visualisations.
func (m *Mask) ToImage() *Image {
	im := New(m.W, m.H)
	for i, b := range m.Bits {
		if b {
			im.Pix[i] = White
		}
	}
	return im
}

// BBox returns the tight bounding box (x0, y0, x1, y1) of set bits, with
// x1/y1 exclusive, and ok=false when the mask is empty.
func (m *Mask) BBox() (x0, y0, x1, y1 int, ok bool) {
	x0, y0 = m.W, m.H
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if !m.Bits[y*m.W+x] {
				continue
			}
			ok = true
			if x < x0 {
				x0 = x
			}
			if y < y0 {
				y0 = y
			}
			if x+1 > x1 {
				x1 = x + 1
			}
			if y+1 > y1 {
				y1 = y + 1
			}
		}
	}
	if !ok {
		return 0, 0, 0, 0, false
	}
	return x0, y0, x1, y1, true
}
