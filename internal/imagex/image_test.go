package imagex

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDimensionsAndBlack(t *testing.T) {
	im := New(7, 3)
	if im.W != 7 || im.H != 3 || len(im.Pix) != 21 {
		t.Fatalf("unexpected geometry: %dx%d len=%d", im.W, im.H, len(im.Pix))
	}
	for i, p := range im.Pix {
		if p != Black {
			t.Fatalf("pixel %d not black: %v", i, p)
		}
	}
}

func TestNewPanicsOnInvalidSize(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestNewFilled(t *testing.T) {
	c := RGB{10, 20, 30}
	im := NewFilled(4, 4, c)
	for _, p := range im.Pix {
		if p != c {
			t.Fatalf("pixel %v, want %v", p, c)
		}
	}
}

func TestAtSetBounds(t *testing.T) {
	im := New(3, 3)
	im.Set(1, 1, White)
	if im.At(1, 1) != White {
		t.Fatal("Set/At round trip failed")
	}
	if im.At(-1, 0) != Black || im.At(3, 0) != Black || im.At(0, 3) != Black {
		t.Fatal("out-of-bounds At must return Black")
	}
	im.Set(-1, -1, White) // must not panic
	im.Set(99, 99, White)
}

func TestCloneIsDeep(t *testing.T) {
	a := NewFilled(2, 2, RGB{1, 1, 1})
	b := a.Clone()
	b.Set(0, 0, White)
	if a.At(0, 0) == White {
		t.Fatal("Clone shares pixel storage")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not equal to source")
	}
}

func TestEqualDifferentSizes(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Fatal("images of different shapes compared equal")
	}
}

func TestCopyFrom(t *testing.T) {
	src := NewFilled(2, 2, RGB{9, 9, 9})
	dst := New(2, 2)
	if err := dst.CopyFrom(src); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if !dst.Equal(src) {
		t.Fatal("CopyFrom did not copy pixels")
	}
	if err := dst.CopyFrom(New(3, 3)); !errors.Is(err, ErrBounds) {
		t.Fatalf("size mismatch error = %v, want ErrBounds", err)
	}
}

func TestMatchCount(t *testing.T) {
	a := NewFilled(4, 1, RGB{5, 5, 5})
	b := a.Clone()
	if got := a.MatchCount(b); got != 4 {
		t.Fatalf("MatchCount = %d, want 4", got)
	}
	b.Set(0, 0, White)
	if got := a.MatchCount(b); got != 3 {
		t.Fatalf("MatchCount = %d, want 3", got)
	}
	if got := a.MatchCount(New(2, 2)); got != 0 {
		t.Fatalf("size-mismatched MatchCount = %d, want 0", got)
	}
}

func TestMatchCountTol(t *testing.T) {
	a := NewFilled(2, 1, RGB{100, 100, 100})
	b := NewFilled(2, 1, RGB{104, 98, 101})
	if got := a.MatchCountTol(b, 5); got != 2 {
		t.Fatalf("tol=5 MatchCountTol = %d, want 2", got)
	}
	if got := a.MatchCountTol(b, 2); got != 0 {
		t.Fatalf("tol=2 MatchCountTol = %d, want 0", got)
	}
	if got := a.MatchCountTol(b, 0); got != a.MatchCount(b) {
		t.Fatal("tol=0 must equal MatchCount")
	}
}

func TestDiffMask(t *testing.T) {
	a := NewFilled(3, 1, RGB{50, 50, 50})
	b := a.Clone()
	b.Set(2, 0, RGB{90, 50, 50})
	m, err := a.DiffMask(b, 10)
	if err != nil {
		t.Fatalf("DiffMask: %v", err)
	}
	if m.Count() != 1 || !m.At(2, 0) {
		t.Fatalf("diff mask wrong: count=%d", m.Count())
	}
	if _, err := a.DiffMask(New(1, 1), 0); !errors.Is(err, ErrBounds) {
		t.Fatalf("size mismatch = %v, want ErrBounds", err)
	}
}

func TestApplyRemoveMaskPartition(t *testing.T) {
	im := NewFilled(4, 4, RGB{7, 8, 9})
	m := NewMask(4, 4)
	m.Set(1, 1, true)
	m.Set(2, 3, true)

	kept := im.ApplyMask(m)
	removed := im.RemoveMask(m)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			if m.At(x, y) {
				if kept.At(x, y) != im.At(x, y) || removed.At(x, y) != Black {
					t.Fatalf("masked pixel (%d,%d) wrong", x, y)
				}
			} else {
				if kept.At(x, y) != Black || removed.At(x, y) != im.At(x, y) {
					t.Fatalf("unmasked pixel (%d,%d) wrong", x, y)
				}
			}
		}
	}
}

func TestApplyMaskSizeMismatchIsBlack(t *testing.T) {
	im := NewFilled(2, 2, White)
	out := im.ApplyMask(NewFullMask(3, 3))
	for _, p := range out.Pix {
		if p != Black {
			t.Fatal("mismatched ApplyMask must yield black image")
		}
	}
}

func TestScaleBrightness(t *testing.T) {
	im := NewFilled(1, 1, RGB{100, 200, 40})
	im.ScaleBrightness(0.5)
	if got := im.At(0, 0); got != (RGB{50, 100, 20}) {
		t.Fatalf("half brightness = %v", got)
	}
	im.ScaleBrightness(100)
	if got := im.At(0, 0); got != White {
		t.Fatalf("overdriven brightness must clamp to white, got %v", got)
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := RGB{0, 0, 0}, RGB{200, 100, 50}
	if Lerp(a, b, 0) != a || Lerp(a, b, 1) != b {
		t.Fatal("Lerp endpoints wrong")
	}
	mid := Lerp(a, b, 0.5)
	if mid.R != 100 || mid.G != 50 || mid.B != 25 {
		t.Fatalf("Lerp midpoint = %v", mid)
	}
	if Lerp(a, b, -3) != a || Lerp(a, b, 7) != b {
		t.Fatal("Lerp must clamp t")
	}
}

func TestPropertyMatchCountSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomImage(r, 8, 6), randomImage(r, 8, 6)
		return a.MatchCount(b) == b.MatchCount(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySelfMatchIsTotal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomImage(r, 5, 9)
		return a.MatchCount(a) == a.W*a.H
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomImage(r *rand.Rand, w, h int) *Image {
	im := New(w, h)
	for i := range im.Pix {
		im.Pix[i] = RGB{uint8(r.Intn(256)), uint8(r.Intn(256)), uint8(r.Intn(256))}
	}
	return im
}
