package imagex

// Property tests pinning the word-packed bitset Mask to a reference
// []bool implementation — the representation the repo used before the
// bitset rewrite. Every operation pair must stay bit-identical on
// randomized inputs, including widths that are not multiples of 64
// (edge-word masking) and widths spanning several words.

import (
	"math/rand"
	"testing"
)

// boolMask is the reference implementation.
type boolMask struct {
	w, h int
	bits []bool
}

func newBoolMask(w, h int) *boolMask {
	return &boolMask{w: w, h: h, bits: make([]bool, w*h)}
}

func (b *boolMask) in(x, y int) bool { return x >= 0 && x < b.w && y >= 0 && y < b.h }

func (b *boolMask) at(x, y int) bool {
	if !b.in(x, y) {
		return false
	}
	return b.bits[y*b.w+x]
}

func (b *boolMask) clone() *boolMask {
	out := newBoolMask(b.w, b.h)
	copy(out.bits, b.bits)
	return out
}

func (b *boolMask) count() int {
	n := 0
	for _, v := range b.bits {
		if v {
			n++
		}
	}
	return n
}

func (b *boolMask) union(o *boolMask) {
	for i, v := range o.bits {
		if v {
			b.bits[i] = true
		}
	}
}

func (b *boolMask) subtract(o *boolMask) {
	for i, v := range o.bits {
		if v {
			b.bits[i] = false
		}
	}
}

func (b *boolMask) intersect(o *boolMask) {
	for i, v := range o.bits {
		if !v {
			b.bits[i] = false
		}
	}
}

func (b *boolMask) xor(o *boolMask) {
	for i, v := range o.bits {
		b.bits[i] = b.bits[i] != v
	}
}

func (b *boolMask) invert() {
	for i := range b.bits {
		b.bits[i] = !b.bits[i]
	}
}

func (b *boolMask) overlap(o *boolMask) int {
	n := 0
	for i := range b.bits {
		if b.bits[i] && o.bits[i] {
			n++
		}
	}
	return n
}

func refDiscOffsets(r int) [][2]int {
	var offs [][2]int
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				offs = append(offs, [2]int{dx, dy})
			}
		}
	}
	return offs
}

// dilate is the seed repo's O(set-bits × disc-area) offset scatter.
func (b *boolMask) dilate(r int) *boolMask {
	if r <= 0 {
		return b.clone()
	}
	offs := refDiscOffsets(r)
	out := newBoolMask(b.w, b.h)
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			if !b.bits[y*b.w+x] {
				continue
			}
			for _, o := range offs {
				nx, ny := x+o[0], y+o[1]
				if out.in(nx, ny) {
					out.bits[ny*b.w+nx] = true
				}
			}
		}
	}
	return out
}

func (b *boolMask) erode(r int) *boolMask {
	if r <= 0 {
		return b.clone()
	}
	offs := refDiscOffsets(r)
	out := newBoolMask(b.w, b.h)
	for y := 0; y < b.h; y++ {
	pixel:
		for x := 0; x < b.w; x++ {
			if !b.bits[y*b.w+x] {
				continue
			}
			for _, o := range offs {
				if !b.at(x+o[0], y+o[1]) {
					continue pixel
				}
			}
			out.bits[y*b.w+x] = true
		}
	}
	return out
}

func (b *boolMask) boundary() *boolMask {
	out := newBoolMask(b.w, b.h)
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			if !b.bits[y*b.w+x] {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					if !b.at(x+dx, y+dy) {
						out.bits[y*b.w+x] = true
					}
				}
			}
		}
	}
	return out
}

func (b *boolMask) bbox() (x0, y0, x1, y1 int, ok bool) {
	x0, y0 = b.w, b.h
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			if !b.bits[y*b.w+x] {
				continue
			}
			ok = true
			if x < x0 {
				x0 = x
			}
			if y < y0 {
				y0 = y
			}
			if x+1 > x1 {
				x1 = x + 1
			}
			if y+1 > y1 {
				y1 = y + 1
			}
		}
	}
	if !ok {
		return 0, 0, 0, 0, false
	}
	return x0, y0, x1, y1, true
}

// sameBits fails the test unless the bitset and the reference agree on
// every pixel and on the aggregate queries.
func sameBits(t *testing.T, label string, m *Mask, ref *boolMask) {
	t.Helper()
	if m.W != ref.w || m.H != ref.h {
		t.Fatalf("%s: geometry %dx%d vs %dx%d", label, m.W, m.H, ref.w, ref.h)
	}
	for y := 0; y < ref.h; y++ {
		for x := 0; x < ref.w; x++ {
			if m.At(x, y) != ref.at(x, y) {
				t.Fatalf("%s: bit (%d,%d) = %v, reference %v (w=%d h=%d)",
					label, x, y, m.At(x, y), ref.at(x, y), ref.w, ref.h)
			}
		}
	}
	if m.Count() != ref.count() {
		t.Fatalf("%s: Count = %d, reference %d", label, m.Count(), ref.count())
	}
	// ForEachSet must visit exactly the set indices, ascending.
	last := -1
	n := 0
	m.ForEachSet(func(i int) {
		if i <= last {
			t.Fatalf("%s: ForEachSet order violated: %d after %d", label, i, last)
		}
		if !ref.bits[i] {
			t.Fatalf("%s: ForEachSet visited clear index %d", label, i)
		}
		last = i
		n++
	})
	if n != ref.count() {
		t.Fatalf("%s: ForEachSet visited %d bits, want %d", label, n, ref.count())
	}
}

// propGeometries covers one-word, exact-word, word+1 and multi-word row
// widths plus degenerate single-row/column masks.
var propGeometries = [][2]int{
	{1, 1}, {1, 9}, {9, 1},
	{7, 5}, {63, 3}, {64, 3}, {65, 3},
	{127, 4}, {128, 4}, {130, 6}, {160, 120},
}

func randomPair(r *rand.Rand, w, h int, density float64) (*Mask, *boolMask) {
	m := NewMask(w, h)
	ref := newBoolMask(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if r.Float64() < density {
				m.Set(x, y, true)
				ref.bits[y*w+x] = true
			}
		}
	}
	return m, ref
}

func TestBitsetMatchesReferenceSetOps(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, g := range propGeometries {
		w, h := g[0], g[1]
		for trial := 0; trial < 4; trial++ {
			density := []float64{0, 0.05, 0.5, 1}[trial]
			a, refA := randomPair(r, w, h, density)
			b, refB := randomPair(r, w, h, r.Float64())

			u := a.Clone()
			if err := u.Union(b); err != nil {
				t.Fatal(err)
			}
			refU := refA.clone()
			refU.union(refB)
			sameBits(t, "union", u, refU)

			s := a.Clone()
			if err := s.Subtract(b); err != nil {
				t.Fatal(err)
			}
			refS := refA.clone()
			refS.subtract(refB)
			sameBits(t, "subtract", s, refS)

			in := a.Clone()
			if err := in.Intersect(b); err != nil {
				t.Fatal(err)
			}
			refI := refA.clone()
			refI.intersect(refB)
			sameBits(t, "intersect", in, refI)

			x := a.Clone()
			if err := x.Xor(b); err != nil {
				t.Fatal(err)
			}
			refX := refA.clone()
			refX.xor(refB)
			sameBits(t, "xor", x, refX)

			inv := a.Clone()
			inv.Invert()
			refInv := refA.clone()
			refInv.invert()
			sameBits(t, "invert", inv, refInv)

			if got, want := a.Overlap(b), refA.overlap(refB); got != want {
				t.Fatalf("overlap %dx%d = %d, reference %d", w, h, got, want)
			}
			if got, want := a.Equal(b), refA.overlap(refB) == refA.count() && refA.count() == refB.count(); got && !want {
				t.Fatalf("equal %dx%d: bitset claims equality, reference disagrees", w, h)
			}
			sameBits(t, "identity", a, refA)
		}
	}
}

func TestBitsetMatchesReferenceMorphology(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, g := range propGeometries {
		w, h := g[0], g[1]
		for _, radius := range []int{0, 1, 2, 3, 5, 9} {
			m, ref := randomPair(r, w, h, 0.12)

			sameBits(t, "dilate", m.Dilate(radius), ref.dilate(radius))
			sameBits(t, "erode", m.Erode(radius), ref.erode(radius))
		}
		m, ref := randomPair(r, w, h, 0.3)
		sameBits(t, "boundary", m.Boundary(), ref.boundary())

		x0, y0, x1, y1, ok := m.BBox()
		rx0, ry0, rx1, ry1, rok := ref.bbox()
		if ok != rok || x0 != rx0 || y0 != ry0 || x1 != rx1 || y1 != ry1 {
			t.Fatalf("bbox %dx%d = (%d,%d,%d,%d,%v), reference (%d,%d,%d,%d,%v)",
				w, h, x0, y0, x1, y1, ok, rx0, ry0, rx1, ry1, rok)
		}
	}
}

// TestBitsetMatchesReferenceFullMask exercises NewFullMask + erode with
// radii large enough to clear everything, plus padding-bit integrity
// after long op chains.
func TestBitsetMatchesReferenceFullMask(t *testing.T) {
	for _, g := range propGeometries {
		w, h := g[0], g[1]
		full := NewFullMask(w, h)
		if full.Count() != w*h {
			t.Fatalf("NewFullMask(%d,%d).Count = %d", w, h, full.Count())
		}
		full.Invert()
		if full.Count() != 0 {
			t.Fatalf("inverted full mask not empty at %dx%d", w, h)
		}
		full.Invert()
		if full.Count() != w*h {
			t.Fatalf("double inversion lost bits at %dx%d", w, h)
		}
		big := maxI2(w, h)
		if got := NewFullMask(w, h).Erode(big); got.Count() != 0 {
			t.Fatalf("erode radius %d at %dx%d left %d bits", big, w, h, got.Count())
		}
	}
}

func TestBitsetSetSpanMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for _, g := range propGeometries {
		w, h := g[0], g[1]
		m := NewMask(w, h)
		ref := newBoolMask(w, h)
		for trial := 0; trial < 32; trial++ {
			y := r.Intn(h+4) - 2
			x0 := r.Intn(w+8) - 4
			x1 := r.Intn(w+8) - 4
			m.SetSpan(y, x0, x1)
			for x := maxI2(x0, 0); x < x1 && x < w; x++ {
				if y >= 0 && y < h {
					ref.bits[y*w+x] = true
				}
			}
		}
		sameBits(t, "setspan", m, ref)
	}
}

func TestGetISetIRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for _, g := range propGeometries {
		w, h := g[0], g[1]
		m := NewMask(w, h)
		ref := newBoolMask(w, h)
		for trial := 0; trial < 64; trial++ {
			i := r.Intn(w * h)
			v := r.Intn(2) == 0
			m.SetI(i, v)
			ref.bits[i] = v
		}
		for i := 0; i < w*h; i++ {
			if m.GetI(i) != ref.bits[i] {
				t.Fatalf("GetI(%d) = %v, want %v at %dx%d", i, m.GetI(i), ref.bits[i], w, h)
			}
		}
	}
}

func maxI2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
