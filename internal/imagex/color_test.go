package imagex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestToHSVKnownColors(t *testing.T) {
	cases := []struct {
		in   RGB
		want HSV
	}{
		{RGB{255, 0, 0}, HSV{0, 1, 1}},
		{RGB{0, 255, 0}, HSV{120, 1, 1}},
		{RGB{0, 0, 255}, HSV{240, 1, 1}},
		{RGB{255, 255, 255}, HSV{0, 0, 1}},
		{RGB{0, 0, 0}, HSV{0, 0, 0}},
		{RGB{128, 128, 128}, HSV{0, 0, 128.0 / 255}},
	}
	for _, c := range cases {
		got := c.in.ToHSV()
		if math.Abs(got.H-c.want.H) > 0.5 || math.Abs(got.S-c.want.S) > 0.01 || math.Abs(got.V-c.want.V) > 0.01 {
			t.Errorf("ToHSV(%v) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestHSVRoundTrip(t *testing.T) {
	f := func(r, g, b uint8) bool {
		in := RGB{r, g, b}
		out := in.ToHSV().ToRGB()
		// Rounding through float HSV can move each channel by at most 1.
		return absInt(int(in.R)-int(out.R)) <= 1 &&
			absInt(int(in.G)-int(out.G)) <= 1 &&
			absInt(int(in.B)-int(out.B)) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestToRGBClampsInputs(t *testing.T) {
	c := HSV{H: -30, S: 5, V: -2}.ToRGB()
	if c != Black {
		t.Fatalf("negative value must clamp to black, got %v", c)
	}
	c = HSV{H: 725, S: 1, V: 1}.ToRGB()
	want := HSV{H: 5, S: 1, V: 1}.ToRGB()
	if c != want {
		t.Fatalf("hue wraps mod 360: got %v want %v", c, want)
	}
}

func TestHueDistance(t *testing.T) {
	cases := []struct {
		a, b, want float64
	}{
		{0, 0, 0},
		{0, 180, 180},
		{10, 350, 20},
		{350, 10, 20},
		{90, 270, 180},
		{-10, 10, 20},
	}
	for _, c := range cases {
		if got := HueDistance(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("HueDistance(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPropertyHueDistanceMetric(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		d := HueDistance(a, b)
		return d >= 0 && d <= 180 && math.Abs(d-HueDistance(b, a)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLuminanceOrdering(t *testing.T) {
	if Black.Luminance() != 0 {
		t.Fatal("black luminance must be 0")
	}
	if w := White.Luminance(); math.Abs(w-255) > 0.01 {
		t.Fatalf("white luminance = %v", w)
	}
	if (RGB{0, 255, 0}).Luminance() <= (RGB{0, 0, 255}).Luminance() {
		t.Fatal("green must be brighter than blue under Rec. 601")
	}
}

func TestMeanLuminance(t *testing.T) {
	im := New(2, 1)
	im.Set(0, 0, White)
	got := im.MeanLuminance()
	if math.Abs(got-127.5) > 0.01 {
		t.Fatalf("MeanLuminance = %v, want 127.5", got)
	}
}

func TestMeanLuminanceUniformInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		c := RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
		im := NewFilled(5, 5, c)
		if math.Abs(im.MeanLuminance()-c.Luminance()) > 1e-9 {
			t.Fatalf("uniform image luminance mismatch for %v", c)
		}
	}
}
