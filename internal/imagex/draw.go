package imagex

// Drawing primitives used by the scene and person renderers. All
// primitives clip silently at the image border, and each has a twin that
// also records the painted pixels into a mask so renderers can produce
// ground-truth silhouettes alongside pixels.

// FillRect fills the axis-aligned rectangle [x0,x1)×[y0,y1) with c.
func (im *Image) FillRect(x0, y0, x1, y1 int, c RGB) {
	im.fillRectMask(x0, y0, x1, y1, c, nil)
}

// FillRectMask fills a rectangle and records painted pixels in m (when m
// is non-nil and of matching size).
func (im *Image) FillRectMask(x0, y0, x1, y1 int, c RGB, m *Mask) {
	im.fillRectMask(x0, y0, x1, y1, c, m)
}

func (im *Image) fillRectMask(x0, y0, x1, y1 int, c RGB, m *Mask) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	record := m != nil && m.W == im.W && m.H == im.H
	for y := maxInt(y0, 0); y < minInt(y1, im.H); y++ {
		for x := maxInt(x0, 0); x < minInt(x1, im.W); x++ {
			im.Pix[y*im.W+x] = c
		}
		if record {
			m.SetSpan(y, x0, x1)
		}
	}
}

// StrokeRect draws a 1-pixel outline of the rectangle [x0,x1)×[y0,y1).
func (im *Image) StrokeRect(x0, y0, x1, y1 int, c RGB) {
	im.FillRect(x0, y0, x1, y0+1, c)
	im.FillRect(x0, y1-1, x1, y1, c)
	im.FillRect(x0, y0, x0+1, y1, c)
	im.FillRect(x1-1, y0, x1, y1, c)
}

// FillEllipse fills the ellipse centred at (cx, cy) with radii rx, ry.
func (im *Image) FillEllipse(cx, cy, rx, ry int, c RGB) {
	im.FillEllipseMask(cx, cy, rx, ry, c, nil)
}

// FillEllipseMask fills an ellipse and records painted pixels in m.
func (im *Image) FillEllipseMask(cx, cy, rx, ry int, c RGB, m *Mask) {
	if rx <= 0 || ry <= 0 {
		return
	}
	rx2 := float64(rx * rx)
	ry2 := float64(ry * ry)
	for y := cy - ry; y <= cy+ry; y++ {
		for x := cx - rx; x <= cx+rx; x++ {
			dx := float64(x - cx)
			dy := float64(y - cy)
			if dx*dx/rx2+dy*dy/ry2 <= 1 {
				if im.In(x, y) {
					im.Pix[y*im.W+x] = c
					if m != nil && m.W == im.W && m.H == im.H {
						m.Set(x, y, true)
					}
				}
			}
		}
	}
}

// FillCircle fills the disc of the given radius centred at (cx, cy).
func (im *Image) FillCircle(cx, cy, r int, c RGB) {
	im.FillEllipse(cx, cy, r, r, c)
}

// StrokeCircle draws an approximate 1-pixel circle outline; the clock
// face in the scene renderer uses it.
func (im *Image) StrokeCircle(cx, cy, r int, c RGB) {
	if r <= 0 {
		return
	}
	x, y, err := r, 0, 1-r
	for x >= y {
		for _, p := range [][2]int{
			{cx + x, cy + y}, {cx - x, cy + y}, {cx + x, cy - y}, {cx - x, cy - y},
			{cx + y, cy + x}, {cx - y, cy + x}, {cx + y, cy - x}, {cx - y, cy - x},
		} {
			im.Set(p[0], p[1], c)
		}
		y++
		if err < 0 {
			err += 2*y + 1
		} else {
			x--
			err += 2*(y-x) + 1
		}
	}
}

// DrawLine draws a 1-pixel Bresenham line from (x0, y0) to (x1, y1).
func (im *Image) DrawLine(x0, y0, x1, y1 int, c RGB) {
	im.DrawThickLineMask(x0, y0, x1, y1, 1, c, nil)
}

// DrawThickLineMask draws a line of the given thickness (a disc stamped
// at every line pixel) and records painted pixels in m. Person limbs are
// drawn with it.
func (im *Image) DrawThickLineMask(x0, y0, x1, y1, thickness int, c RGB, m *Mask) {
	r := thickness / 2
	dx := absInt(x1 - x0)
	dy := -absInt(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	e := dx + dy
	x, y := x0, y0
	for {
		if r <= 0 {
			if im.In(x, y) {
				im.Pix[y*im.W+x] = c
				if m != nil && m.W == im.W && m.H == im.H {
					m.Set(x, y, true)
				}
			}
		} else {
			im.FillEllipseMask(x, y, r, r, c, m)
		}
		if x == x1 && y == y1 {
			return
		}
		e2 := 2 * e
		if e2 >= dy {
			e += dy
			x += sx
		}
		if e2 <= dx {
			e += dx
			y += sy
		}
	}
}

// Paste copies src onto the image with its top-left corner at (ox, oy),
// clipping at the border.
func (im *Image) Paste(src *Image, ox, oy int) {
	for y := 0; y < src.H; y++ {
		for x := 0; x < src.W; x++ {
			im.Set(ox+x, oy+y, src.Pix[y*src.W+x])
		}
	}
}

// Crop returns a copy of the sub-rectangle [x0,x1)×[y0,y1), clipped to
// the image; it returns nil if the clipped region is empty.
func (im *Image) Crop(x0, y0, x1, y1 int) *Image {
	x0, y0 = maxInt(x0, 0), maxInt(y0, 0)
	x1, y1 = minInt(x1, im.W), minInt(y1, im.H)
	if x1 <= x0 || y1 <= y0 {
		return nil
	}
	out := New(x1-x0, y1-y0)
	for y := y0; y < y1; y++ {
		copy(out.Pix[(y-y0)*out.W:(y-y0+1)*out.W], im.Pix[y*im.W+x0:y*im.W+x1])
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
