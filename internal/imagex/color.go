package imagex

import "math"

// HSV holds a hue-saturation-value triple. H is in degrees [0, 360), S
// and V are in [0, 1]. The location-inference attack (Section VI) matches
// on hue while ignoring saturation, which is dominated by ambient light.
type HSV struct {
	H, S, V float64
}

// ToHSV converts an RGB pixel to HSV.
func (c RGB) ToHSV() HSV {
	r := float64(c.R) / 255
	g := float64(c.G) / 255
	b := float64(c.B) / 255
	maxC := math.Max(r, math.Max(g, b))
	minC := math.Min(r, math.Min(g, b))
	delta := maxC - minC

	var h float64
	switch {
	case delta == 0:
		h = 0
	case maxC == r:
		h = 60 * math.Mod((g-b)/delta, 6)
	case maxC == g:
		h = 60 * ((b-r)/delta + 2)
	default:
		h = 60 * ((r-g)/delta + 4)
	}
	if h < 0 {
		h += 360
	}

	s := 0.0
	if maxC > 0 {
		s = delta / maxC
	}
	return HSV{H: h, S: s, V: maxC}
}

// ToRGB converts an HSV triple back to RGB. Out-of-range components are
// clamped so the conversion is total.
func (c HSV) ToRGB() RGB {
	h := math.Mod(c.H, 360)
	if h < 0 {
		h += 360
	}
	s := clamp01(c.S)
	v := clamp01(c.V)

	cc := v * s
	x := cc * (1 - math.Abs(math.Mod(h/60, 2)-1))
	m := v - cc

	var r, g, b float64
	switch {
	case h < 60:
		r, g, b = cc, x, 0
	case h < 120:
		r, g, b = x, cc, 0
	case h < 180:
		r, g, b = 0, cc, x
	case h < 240:
		r, g, b = 0, x, cc
	case h < 300:
		r, g, b = x, 0, cc
	default:
		r, g, b = cc, 0, x
	}
	return RGB{
		R: clampU8((r + m) * 255),
		G: clampU8((g + m) * 255),
		B: clampU8((b + m) * 255),
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// HueDistance returns the circular distance between two hues in degrees,
// in [0, 180].
func HueDistance(a, b float64) float64 {
	d := math.Abs(normHue(a) - normHue(b))
	if d > 180 {
		d = 360 - d
	}
	return d
}

// normHue maps any finite hue into [0, 360).
func normHue(h float64) float64 {
	h = math.Mod(h, 360)
	if h < 0 {
		h += 360
	}
	return h
}

// Luminance returns the Rec. 601 luma of the pixel in [0, 255]. The
// compositor's matting error model keys on scene luminance (darker scenes
// segment worse).
func (c RGB) Luminance() float64 {
	return 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
}

// MeanLuminance returns the average luma over all pixels of the image.
func (im *Image) MeanLuminance() float64 {
	if len(im.Pix) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range im.Pix {
		sum += p.Luminance()
	}
	return sum / float64(len(im.Pix))
}

// Lerp linearly interpolates between two pixels: t=0 yields a, t=1 yields
// b. It is the alpha-blending primitive used by the compositor's blend
// band (Figure 1 of the paper).
func Lerp(a, b RGB, t float64) RGB {
	t = clamp01(t)
	return RGB{
		R: clampU8(float64(a.R) + (float64(b.R)-float64(a.R))*t),
		G: clampU8(float64(a.G) + (float64(b.G)-float64(a.G))*t),
		B: clampU8(float64(a.B) + (float64(b.B)-float64(a.B))*t),
	}
}
