package imagex

import (
	"math/rand"
	"testing"
)

// dilateNaive is the textbook disc dilation: every set pixel paints a
// Euclidean disc of the radius around itself.
func dilateNaive(m *Mask, radius int) *Mask {
	out := NewMask(m.W, m.H)
	if radius <= 0 {
		copy(out.words, m.words)
		return out
	}
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			if !m.At(x, y) {
				continue
			}
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					if dx*dx+dy*dy > radius*radius {
						continue
					}
					nx, ny := x+dx, y+dy
					if nx >= 0 && nx < m.W && ny >= 0 && ny < m.H {
						out.Set(nx, ny, true)
					}
				}
			}
		}
	}
	return out
}

func TestDilatorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, dim := range [][2]int{{64, 16}, {37, 23}, {9, 40}, {130, 11}} {
		w, h := dim[0], dim[1]
		for _, density := range []float64{0.02, 0.3, 0.9} {
			src := randMask(rng, w, h, density)
			for radius := 0; radius <= 5; radius++ {
				dl := NewDilator(w, h, radius)
				var dst *Mask
				// Two runs through the same Dilator: the second reuses every
				// internal buffer and the warm dst, and must be identical.
				for run := 0; run < 2; run++ {
					dst = dl.DilateInto(dst, src)
					if want := dilateNaive(src, radius); !dst.Equal(want) {
						t.Fatalf("%dx%d r=%d d=%.2f run %d: dilator differs from naive",
							w, h, radius, density, run)
					}
				}
				if legacy := src.Dilate(radius); !dst.Equal(legacy) {
					t.Fatalf("%dx%d r=%d: Mask.Dilate disagrees with Dilator", w, h, radius)
				}
			}
		}
	}
}

func TestDilatorSolidRows(t *testing.T) {
	// The solid-row fast path: full rows (and a fully solid mask) must
	// come out exactly like the naive disc dilation.
	for _, radius := range []int{1, 3, 7} {
		const w, h = 70, 24
		src := NewMask(w, h)
		for x := 0; x < w; x++ {
			src.Set(x, 5, true)  // interior solid row
			src.Set(x, 0, true)  // boundary solid row
			src.Set(x, 23, true) // bottom solid row
		}
		src.Set(30, 12, true) // plus a lone pixel between solid spans
		dl := NewDilator(w, h, radius)
		got := dl.DilateInto(nil, src)
		if want := dilateNaive(src, radius); !got.Equal(want) {
			t.Fatalf("r=%d: solid-row dilation differs from naive", radius)
		}

		full := NewFullMask(w, h)
		if got := dl.DilateInto(nil, full); !got.Equal(full) {
			t.Fatalf("r=%d: dilating a full mask must stay full", radius)
		}
	}
}

func TestDilatorReuseAcrossSources(t *testing.T) {
	// A recycled dst carrying stale solid rows from a previous call must
	// be fully overwritten.
	const w, h = 40, 18
	dl := NewDilator(w, h, 2)
	dst := dl.DilateInto(nil, NewFullMask(w, h))
	empty := NewMask(w, h)
	dst = dl.DilateInto(dst, empty)
	if dst.Count() != 0 {
		t.Fatal("stale content survived reuse")
	}
	rng := rand.New(rand.NewSource(22))
	src := randMask(rng, w, h, 0.2)
	dst = dl.DilateInto(dst, src)
	if want := dilateNaive(src, 2); !dst.Equal(want) {
		t.Fatal("reused dilator wrong after solid pass")
	}
}

func TestDilatorGeometryPanics(t *testing.T) {
	dl := NewDilator(10, 10, 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("mismatched src", func() { dl.DilateInto(nil, NewMask(9, 10)) })
	mustPanic("bad geometry", func() { NewDilator(0, 4, 1) })
}
