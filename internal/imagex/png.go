package imagex

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math/rand"
	"os"
)

// ToStd converts the frame to a standard-library *image.RGBA for
// encoding.
func (im *Image) ToStd() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			p := im.Pix[y*im.W+x]
			out.SetRGBA(x, y, color.RGBA{R: p.R, G: p.G, B: p.B, A: 255})
		}
	}
	return out
}

// FromStd converts a standard-library image to a frame, dropping alpha.
func FromStd(src image.Image) *Image {
	b := src.Bounds()
	out := New(b.Dx(), b.Dy())
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			r, g, bl, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			out.Pix[y*out.W+x] = RGB{R: uint8(r >> 8), G: uint8(g >> 8), B: uint8(bl >> 8)}
		}
	}
	return out
}

// WritePNG encodes the frame as a PNG file at path.
func (im *Image) WritePNG(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("imagex: create %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("imagex: close %s: %w", path, cerr)
		}
	}()
	if err := png.Encode(f, im.ToStd()); err != nil {
		return fmt.Errorf("imagex: encode %s: %w", path, err)
	}
	return nil
}

// ReadPNG decodes a PNG file into a frame.
func ReadPNG(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("imagex: open %s: %w", path, err)
	}
	defer f.Close()
	src, err := png.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("imagex: decode %s: %w", path, err)
	}
	return FromStd(src), nil
}

// AddNoise perturbs every pixel by a uniform offset in [−amp, amp] per
// channel, modelling camera sensor noise. amp ≤ 0 is a no-op.
func (im *Image) AddNoise(rng *rand.Rand, amp int) {
	if amp <= 0 {
		return
	}
	for i, p := range im.Pix {
		im.Pix[i] = RGB{
			R: clampU8(float64(int(p.R) + rng.Intn(2*amp+1) - amp)),
			G: clampU8(float64(int(p.G) + rng.Intn(2*amp+1) - amp)),
			B: clampU8(float64(int(p.B) + rng.Intn(2*amp+1) - amp)),
		}
	}
}
