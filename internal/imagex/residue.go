package imagex

import (
	"fmt"
	"math/bits"
)

// Tiled plane support for the streaming residue accumulator
// (internal/core, DESIGN.md §14). Masks are partitioned into horizontal
// bands of bandRows rows — the natural tile shape for a row-major
// word-packed bitset: a band is one contiguous word range, so per-band
// predicates (empty, saturated) are cheap word scans and a skipped band
// skips contiguous memory. Band i covers rows
// [i*bandRows, min(H, (i+1)*bandRows)); Bands returns the count.

// Bands returns the number of row bands of height bandRows needed to
// cover h rows (the last band may be short).
func Bands(h, bandRows int) int {
	if bandRows <= 0 {
		return 0
	}
	return (h + bandRows - 1) / bandRows
}

// ComplementOfUnion overwrites m with ^(a ∪ b), keeping the row-padding
// invariant. When nonEmpty is non-nil it must hold Bands(H, bandRows)
// entries; nonEmpty[i] is set to whether band i of the result has any
// set bit — recorded for free during the word pass, so downstream
// consumers (ApplyResidue) can skip idle bands without rescanning. The
// streaming path computes the leaked-background mask LB = ¬(BBM ∪ VCM)
// with exactly this call.
func (m *Mask) ComplementOfUnion(a, b *Mask, bandRows int, nonEmpty []bool) error {
	if !m.SameSize(a) || !m.SameSize(b) {
		return fmt.Errorf("imagex: complement-of-union %dx%d of %dx%d and %dx%d: %w",
			m.W, m.H, a.W, a.H, b.W, b.H, ErrBounds)
	}
	if bandRows <= 0 {
		bandRows = m.H // degenerate: the whole mask is one band
	}
	if nonEmpty != nil {
		if want := Bands(m.H, bandRows); len(nonEmpty) != want {
			return fmt.Errorf("imagex: %d band flags for %d bands: %w", len(nonEmpty), want, ErrBounds)
		}
	}
	wpr := wordsPerRow(m.W)
	edge := edgeMask(m.W)
	for y := 0; y < m.H; y++ {
		row := m.words[y*wpr : (y+1)*wpr]
		ra := a.words[y*wpr : (y+1)*wpr]
		rb := b.words[y*wpr : (y+1)*wpr]
		var acc uint64
		for j := range row {
			w := ^(ra[j] | rb[j])
			if j == wpr-1 {
				w &= edge
			}
			row[j] = w
			acc |= w
		}
		if nonEmpty != nil {
			if y%bandRows == 0 {
				nonEmpty[y/bandRows] = acc != 0
			} else if acc != 0 {
				nonEmpty[y/bandRows] = true
			}
		}
	}
	return nil
}

// ApplyResidue fuses the streaming per-frame residue accumulation into
// one pass over the leak mask lb: for every set bit, the source pixel
// is copied into dst ("latest leaked value per pixel") and the bit is
// OR-ed into the coverage mask; the return value is lb's set-bit count.
// Results are identical to lb.ForEachSet(copy) + coverage.Union(lb) +
// lb.Count() in any order.
//
// The band flags make idle regions free: bands where lbNonEmpty is
// false (as recorded by ComplementOfUnion) are skipped without reading
// a word, and bands where covFull is true skip the coverage OR — once a
// band's coverage saturates it can never change again. covFull is
// maintained in place: a touched, not-yet-full band is rechecked after
// its coverage writes. Either flag slice may be nil to disable that
// skip; when non-nil it must hold Bands(H, bandRows) entries.
func ApplyResidue(lb *Mask, src, dst *Image, coverage *Mask, bandRows int, lbNonEmpty, covFull []bool) (int, error) {
	if !lb.SameSize(coverage) || lb.W != src.W || lb.H != src.H || !src.SameSize(dst) {
		return 0, fmt.Errorf("imagex: apply residue: geometry mismatch: %w", ErrBounds)
	}
	if bandRows <= 0 {
		bandRows = lb.H // degenerate: the whole mask is one band
	}
	nb := Bands(lb.H, bandRows)
	if (lbNonEmpty != nil && len(lbNonEmpty) != nb) || (covFull != nil && len(covFull) != nb) {
		return 0, fmt.Errorf("imagex: band flags for %d bands: %w", nb, ErrBounds)
	}
	wpr := wordsPerRow(lb.W)
	edge := edgeMask(lb.W)
	total := 0
	for b := 0; b < nb; b++ {
		y0 := b * bandRows
		y1 := y0 + bandRows
		if y1 > lb.H {
			y1 = lb.H
		}
		if lbNonEmpty != nil && !lbNonEmpty[b] {
			continue
		}
		full := covFull != nil && covFull[b]
		touched := false
		for y := y0; y < y1; y++ {
			row := lb.words[y*wpr : (y+1)*wpr]
			base := y * lb.W
			for wi, w := range row {
				if w == 0 {
					continue
				}
				total += bits.OnesCount64(w)
				if !full {
					coverage.words[y*wpr+wi] |= w
					touched = true
				}
				for w != 0 {
					p := base + wi<<6 + bits.TrailingZeros64(w)
					dst.Pix[p] = src.Pix[p]
					w &= w - 1
				}
			}
		}
		if touched && covFull != nil {
			covFull[b] = bandFull(coverage, y0, y1, wpr, edge)
		}
	}
	return total, nil
}

// BandFullness recomputes the per-band coverage-saturation flags from
// scratch into full, which must hold Bands(m.H, bandRows) entries. The
// stream calls it once at construction and resume; ApplyResidue keeps
// the flags current afterwards.
func BandFullness(m *Mask, bandRows int, full []bool) error {
	if bandRows <= 0 {
		bandRows = m.H
	}
	nb := Bands(m.H, bandRows)
	if len(full) != nb {
		return fmt.Errorf("imagex: %d band flags for %d bands: %w", len(full), nb, ErrBounds)
	}
	wpr := wordsPerRow(m.W)
	edge := edgeMask(m.W)
	for b := 0; b < nb; b++ {
		y0 := b * bandRows
		y1 := y0 + bandRows
		if y1 > m.H {
			y1 = m.H
		}
		full[b] = bandFull(m, y0, y1, wpr, edge)
	}
	return nil
}

// bandFull reports whether every valid bit in rows [y0, y1) is set.
func bandFull(m *Mask, y0, y1, wpr int, edge uint64) bool {
	for y := y0; y < y1; y++ {
		if !rowSolid(m.words[y*wpr:(y+1)*wpr], edge) {
			return false
		}
	}
	return true
}
