// Package mitigate implements the paper's mitigation techniques
// (Section IX): the dynamic virtual background (IX-A) and the heuristics
// of IX-B — per-call random virtual backgrounds, frame dropping, and
// deepfake frame substitution (the First Order Motion stand-in).
package mitigate

import (
	"math"
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/compositor"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// DynamicVBConfig tunes the dynamic virtual background.
type DynamicVBConfig struct {
	// Kernel is the half-width of the local window whose raw-frame
	// brightness/saturation statistics drive the adaptation (the paper's
	// Gaussian kernel).
	Kernel int
	// Adapt in [0,1] is how strongly VB brightness/saturation move
	// toward the local real-background statistics.
	Adapt float64
	// HueJitter is the per-pixel, per-frame hue fluctuation amplitude in
	// degrees.
	HueJitter float64
}

// DefaultDynamicVBConfig returns the calibrated mitigation settings.
func DefaultDynamicVBConfig() DynamicVBConfig {
	return DynamicVBConfig{Kernel: 8, Adapt: 0.6, HueJitter: 14}
}

// DynamicVB returns a compositor.VBTransform implementing the paper's
// dynamic virtual background: per frame, each virtual-background pixel's
// brightness and saturation are pulled toward Gaussian-weighted local
// statistics of the corresponding real background region, and its hue
// fluctuates randomly across frames. Matching the virtual background
// pixel-for-pixel (the first stage of the reconstruction framework) then
// fails, flooding the attacker's residue with virtual pixels.
func DynamicVB(cfg DynamicVBConfig, rng *rand.Rand) compositor.VBTransform {
	if rng == nil {
		panic("mitigate: nil rng")
	}
	if cfg.Kernel <= 0 {
		cfg.Kernel = 8
	}
	return func(vb, raw *imagex.Image, frameIdx int) *imagex.Image {
		stats := localStats(raw, cfg.Kernel)
		out := imagex.New(vb.W, vb.H)
		for y := 0; y < vb.H; y++ {
			for x := 0; x < vb.W; x++ {
				c := vb.At(x, y).ToHSV()
				st := stats.at(x, y)
				c.V += (st.v - c.V) * cfg.Adapt
				c.S += (st.s - c.S) * cfg.Adapt
				if cfg.HueJitter > 0 {
					c.H += (rng.Float64()*2 - 1) * cfg.HueJitter
				}
				out.Set(x, y, c.ToRGB())
			}
		}
		return out
	}
}

// vsStat is the local (value, saturation) statistic grid.
type vsStat struct {
	cell    int
	cols    int
	rows    int
	cells   []struct{ v, s float64 }
	gridW   int
	gridH   int
	imgW    int
	imgH    int
	kernelR int
}

// localStats computes Gaussian-smoothed brightness/saturation statistics
// of the raw frame on a coarse grid (cell size = kernel).
func localStats(raw *imagex.Image, kernel int) *vsStat {
	cols := (raw.W + kernel - 1) / kernel
	rows := (raw.H + kernel - 1) / kernel
	st := &vsStat{cell: kernel, cols: cols, rows: rows, imgW: raw.W, imgH: raw.H}
	st.cells = make([]struct{ v, s float64 }, cols*rows)
	counts := make([]int, cols*rows)
	for y := 0; y < raw.H; y++ {
		for x := 0; x < raw.W; x++ {
			c := raw.At(x, y).ToHSV()
			i := (y/kernel)*cols + x/kernel
			st.cells[i].v += c.V
			st.cells[i].s += c.S
			counts[i]++
		}
	}
	for i := range st.cells {
		if counts[i] > 0 {
			st.cells[i].v /= float64(counts[i])
			st.cells[i].s /= float64(counts[i])
		}
	}
	// One Gaussian-weighted smoothing pass over the grid (σ = 1 cell).
	smoothed := make([]struct{ v, s float64 }, len(st.cells))
	for gy := 0; gy < rows; gy++ {
		for gx := 0; gx < cols; gx++ {
			var sv, ss, wsum float64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny := gx+dx, gy+dy
					if nx < 0 || nx >= cols || ny < 0 || ny >= rows {
						continue
					}
					w := math.Exp(-float64(dx*dx+dy*dy) / 2)
					sv += st.cells[ny*cols+nx].v * w
					ss += st.cells[ny*cols+nx].s * w
					wsum += w
				}
			}
			smoothed[gy*cols+gx].v = sv / wsum
			smoothed[gy*cols+gx].s = ss / wsum
		}
	}
	st.cells = smoothed
	return st
}

func (st *vsStat) at(x, y int) struct{ v, s float64 } {
	gx, gy := x/st.cell, y/st.cell
	if gx >= st.cols {
		gx = st.cols - 1
	}
	if gy >= st.rows {
		gy = st.rows - 1
	}
	return st.cells[gy*st.cols+gx]
}

// RandomVB generates a never-seen-before virtual background image (the
// paper's per-call random VB heuristic): a random smooth multi-blob
// gradient. An adversary's dataset of popular backgrounds cannot contain
// it, forcing the harder unknown-derivation path.
func RandomVB(w, h int, rng *rand.Rand) *imagex.Image {
	if rng == nil {
		panic("mitigate: nil rng")
	}
	img := imagex.New(w, h)
	baseHue := rng.Float64() * 360
	renderGradient(img, baseHue, rng.Float64()*0.4+0.3)
	blobs := 2 + rng.Intn(4)
	for i := 0; i < blobs; i++ {
		hue := baseHue + rng.Float64()*120 - 60
		c := imagex.HSV{H: hue, S: 0.4 + rng.Float64()*0.5, V: 0.35 + rng.Float64()*0.5}.ToRGB()
		img.FillEllipse(rng.Intn(w), rng.Intn(h), w/6+rng.Intn(w/4+1), h/6+rng.Intn(h/4+1), c)
	}
	return img
}

func renderGradient(img *imagex.Image, hue, sat float64) {
	for y := 0; y < img.H; y++ {
		c := imagex.HSV{H: hue, S: sat, V: 0.3 + 0.5*float64(y)/float64(img.H)}.ToRGB()
		img.FillRect(0, y, img.W, y+1, c)
	}
}

// FrameDrop keeps only every keepEvery-th frame of the call (the paper's
// reduced-frame-sharing heuristic); keepEvery ≤ 1 returns a clone.
func FrameDrop(v *vidstream.Video, keepEvery int) *vidstream.Video {
	out := vidstream.New(v.FPS)
	if keepEvery < 1 {
		keepEvery = 1
	}
	for i := 0; i < len(v.Frames); i += keepEvery {
		out.Frames = append(out.Frames, v.Frames[i].Clone())
	}
	if keepEvery > 1 {
		out.FPS = v.FPS / keepEvery
		if out.FPS < 1 {
			out.FPS = 1
		}
	}
	return out
}

// DeepfakeReplay substitutes every frame after the first with an
// animated variant of the first frame (the paper's First Order Motion
// heuristic): the real frames are never transmitted, so no further real
// background can leak, while the output still moves like a live call.
func DeepfakeReplay(v *vidstream.Video, rng *rand.Rand) (*vidstream.Video, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		panic("mitigate: nil rng")
	}
	out := vidstream.New(v.FPS)
	first := v.Frames[0]
	out.Frames = append(out.Frames, first.Clone())
	for i := 1; i < len(v.Frames); i++ {
		t := float64(i) / float64(v.FPS)
		dx := int(math.Round(1.5 * math.Sin(2*math.Pi*t/2.7)))
		dy := int(math.Round(0.8 * math.Sin(2*math.Pi*t/1.9)))
		f := imagex.New(first.W, first.H)
		for y := 0; y < f.H; y++ {
			for x := 0; x < f.W; x++ {
				sx, sy := x-dx, y-dy
				if sx < 0 {
					sx = 0
				}
				if sx >= first.W {
					sx = first.W - 1
				}
				if sy < 0 {
					sy = 0
				}
				if sy >= first.H {
					sy = first.H - 1
				}
				f.Set(x, y, first.At(sx, sy))
			}
		}
		f.AddNoise(rng, 1)
		out.Frames = append(out.Frames, f)
	}
	return out, nil
}
