package mitigate

import (
	"math/rand"
	"testing"

	"github.com/bgbuster/bgbuster/internal/compositor"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

func TestDynamicVBNilRngPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DynamicVB(DefaultDynamicVBConfig(), nil)
}

func TestDynamicVBChangesPerFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := DynamicVB(DefaultDynamicVBConfig(), rng)
	vb := compositor.BuiltinImage("beach", 40, 30)
	raw := imagex.NewFilled(40, 30, imagex.RGB{R: 60, G: 90, B: 60})

	a := tr(vb, raw, 0)
	b := tr(vb, raw, 1)
	if a.Equal(b) {
		t.Fatal("hue jitter must make consecutive VB frames differ")
	}
	if a.Equal(vb) {
		t.Fatal("transform must alter the virtual background")
	}
}

func TestDynamicVBAdaptsBrightness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultDynamicVBConfig()
	cfg.HueJitter = 0 // isolate the adaptation term
	tr := DynamicVB(cfg, rng)

	brightVB := imagex.NewFilled(32, 32, imagex.RGB{R: 230, G: 230, B: 230})
	darkRaw := imagex.NewFilled(32, 32, imagex.RGB{R: 25, G: 25, B: 25})
	out := tr(brightVB, darkRaw, 0)
	if out.MeanLuminance() >= brightVB.MeanLuminance() {
		t.Fatal("VB must darken toward a dark real background")
	}

	darkVB := imagex.NewFilled(32, 32, imagex.RGB{R: 20, G: 20, B: 20})
	brightRaw := imagex.NewFilled(32, 32, imagex.RGB{R: 220, G: 220, B: 220})
	out = tr(darkVB, brightRaw, 0)
	if out.MeanLuminance() <= darkVB.MeanLuminance() {
		t.Fatal("VB must brighten toward a bright real background")
	}
}

func TestDynamicVBDefeatsPixelMatching(t *testing.T) {
	// The core of Fig. 15: a perfect copy of the original VB no longer
	// matches the transformed output at the reconstruction tolerance.
	rng := rand.New(rand.NewSource(3))
	tr := DynamicVB(DefaultDynamicVBConfig(), rng)
	vb := compositor.BuiltinImage("office", 60, 45)
	raw := imagex.NewFilled(60, 45, imagex.RGB{R: 120, G: 100, B: 80})
	out := tr(vb, raw, 0)
	matches := out.MatchCountTol(vb, 14)
	if frac := float64(matches) / float64(60*45); frac > 0.3 {
		t.Fatalf("%.0f%% of dynamic VB still matches the original", frac*100)
	}
}

func TestRandomVBDistinctPerCall(t *testing.T) {
	a := RandomVB(40, 30, rand.New(rand.NewSource(1)))
	b := RandomVB(40, 30, rand.New(rand.NewSource(2)))
	if a.Equal(b) {
		t.Fatal("random VBs from different seeds must differ")
	}
	c := RandomVB(40, 30, rand.New(rand.NewSource(1)))
	if !a.Equal(c) {
		t.Fatal("random VB must be deterministic per seed")
	}
}

func TestRandomVBNilRngPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomVB(10, 10, nil)
}

func TestFrameDrop(t *testing.T) {
	v := vidstream.New(30)
	for i := 0; i < 10; i++ {
		f := imagex.NewFilled(4, 4, imagex.RGB{R: uint8(i)})
		if err := v.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	d := FrameDrop(v, 3)
	if d.Len() != 4 { // frames 0,3,6,9
		t.Fatalf("kept %d frames, want 4", d.Len())
	}
	if d.Frames[1].At(0, 0).R != 3 {
		t.Fatal("wrong frames kept")
	}
	if d.FPS != 10 {
		t.Fatalf("fps = %d, want 10", d.FPS)
	}
	if FrameDrop(v, 0).Len() != 10 {
		t.Fatal("keepEvery<1 must keep everything")
	}
}

func TestDeepfakeReplayNeverLeaksLaterFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := vidstream.New(30)
	secret := imagex.RGB{R: 255, G: 0, B: 255}
	for i := 0; i < 15; i++ {
		f := imagex.NewFilled(20, 20, imagex.RGB{R: 100, G: 100, B: 100})
		if i > 0 {
			// Later frames contain a "secret" that must never transmit.
			f.FillRect(5, 5, 15, 15, secret)
		}
		if err := v.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	out, err := DeepfakeReplay(v, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != v.Len() {
		t.Fatal("frame count must be preserved")
	}
	for i, f := range out.Frames {
		for _, p := range f.Pix {
			if p == secret {
				t.Fatalf("secret pixel leaked in frame %d", i)
			}
		}
	}
	// Output must still animate.
	if out.Frames[1].Equal(out.Frames[5]) {
		t.Fatal("deepfake frames must differ over time")
	}
}

func TestDeepfakeReplayEmptyVideo(t *testing.T) {
	if _, err := DeepfakeReplay(vidstream.New(30), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty video must error")
	}
}
