// Package compositor implements the video-calling software's virtual
// background feature as described in the paper's Section III: per-frame
// foreground mask generation (via the real-time matting model in
// internal/segment), followed by blending of a virtual image or looping
// virtual video into the background, with a blend band of radius φ
// between foreground and virtual background.
//
// Unlike the real Zoom/Skype, the compositor also emits the ground-truth
// decomposition of every output frame into the paper's four conceptual
// components — video caller VC, leaked background LB, blended pixels BB,
// and virtual background VB (paper Figure 3) — which the evaluation
// harness uses to compute VBMR/RBRR without human labeling. The
// reconstruction framework in internal/core never sees these masks.
package compositor

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/segment"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// VirtualSource supplies the virtual background content for each output
// frame. Static images return themselves for every index; virtual videos
// loop (paper Section V-B: "the virtual video loops repeatedly").
type VirtualSource interface {
	// FrameAt returns the virtual background frame for output frame i.
	// The returned image must not be mutated by callers.
	FrameAt(i int) *imagex.Image
	// Period returns the loop length in frames (1 for static images).
	Period() int
}

// StaticImage is a VirtualSource backed by one image.
type StaticImage struct {
	Img *imagex.Image
}

var _ VirtualSource = StaticImage{}

// FrameAt returns the image regardless of index.
func (s StaticImage) FrameAt(int) *imagex.Image { return s.Img }

// Period returns 1.
func (s StaticImage) Period() int { return 1 }

// LoopingVideo is a VirtualSource backed by a repeating frame sequence.
type LoopingVideo struct {
	Frames []*imagex.Image
}

var _ VirtualSource = LoopingVideo{}

// FrameAt returns frame i modulo the loop length.
func (l LoopingVideo) FrameAt(i int) *imagex.Image {
	return l.Frames[i%len(l.Frames)]
}

// Period returns the loop length.
func (l LoopingVideo) Period() int { return len(l.Frames) }

// BlendKind selects the blending function (paper Section III lists alpha,
// Gaussian and Laplacian-pyramid blending as candidates).
type BlendKind int

// Supported blending functions.
const (
	// BlendAlpha ramps linearly from frame to virtual background across
	// the blend band.
	BlendAlpha BlendKind = iota + 1
	// BlendGaussian uses a Gaussian falloff, concentrating frame content
	// near the mask edge.
	BlendGaussian
	// BlendLaplacian approximates Laplacian-pyramid blending with a
	// smoothstep profile (wide, smooth transition).
	BlendLaplacian
)

// String returns the report label of the blend kind.
func (b BlendKind) String() string {
	switch b {
	case BlendAlpha:
		return "alpha"
	case BlendGaussian:
		return "gaussian"
	case BlendLaplacian:
		return "laplacian"
	default:
		return fmt.Sprintf("blend(%d)", int(b))
	}
}

// Profile bundles the software-specific behaviour (paper Section VIII-E
// observed that Zoom and Skype clearly use different masking techniques).
type Profile struct {
	Name string
	// Matting is the real-time segmentation error profile.
	Matting segment.MattingConfig
	// BlendRadius is φ: the width in pixels of the blend band between
	// the estimated foreground and the virtual background.
	BlendRadius int
	// Blend selects the blending function.
	Blend BlendKind
}

// FrameComponents is the ground-truth decomposition of one blended
// frame into the paper's four non-overlapping bitmaps (Figure 3).
type FrameComponents struct {
	// VC: pixels showing the true video caller.
	VC *imagex.Mask
	// LB: pixels showing leaked real background (raw frame content the
	// matting wrongly kept).
	LB *imagex.Mask
	// BB: blend-band pixels (mixture of frame and virtual background).
	BB *imagex.Mask
	// VB: pure virtual background pixels.
	VB *imagex.Mask
}

// Result is a composed call recording.
type Result struct {
	// Blended is what the adversary records (raw frames with the virtual
	// background applied).
	Blended *vidstream.Video
	// Raw is the ground-truth capture before the virtual background
	// (the paper records both, Section VII-D).
	Raw *vidstream.Video
	// Components gives the ground-truth decomposition per frame.
	Components []FrameComponents
	// EstimatedFG keeps the matting's estimated foreground mask per
	// frame (for diagnostics and ablation benches).
	EstimatedFG []*imagex.Mask
}

// VBTransform optionally rewrites the virtual background frame before
// blending; the dynamic-virtual-background mitigation (paper Section IX-A)
// plugs in here. raw is the sensor frame the VB will be blended into.
type VBTransform func(vb *imagex.Image, raw *imagex.Image, frameIdx int) *imagex.Image

// Options configures Compose.
type Options struct {
	Profile Profile
	Virtual VirtualSource
	// Transform, when non-nil, rewrites each VB frame (mitigations).
	Transform VBTransform
	// Codec, when non-nil, applies transmission block artifacts to the
	// blended frames the adversary records (lossy video transport).
	Codec *vidstream.CodecConfig
}

// Compose applies the virtual background feature to a raw capture.
// silhouettes must hold the true caller mask for every raw frame (the
// scene/person simulator provides them). rng drives the matting error
// model.
func Compose(raw *vidstream.Video, silhouettes []*imagex.Mask, opts Options, rng *rand.Rand) (*Result, error) {
	if err := raw.Validate(); err != nil {
		return nil, fmt.Errorf("compositor: raw video: %w", err)
	}
	if rng == nil {
		return nil, errors.New("compositor: nil rng")
	}
	if opts.Virtual == nil {
		return nil, errors.New("compositor: nil virtual source")
	}
	if len(silhouettes) != raw.Len() {
		return nil, fmt.Errorf("compositor: %d silhouettes for %d frames", len(silhouettes), raw.Len())
	}
	w, h := raw.Size()
	for i, s := range silhouettes {
		if s == nil || s.W != w || s.H != h {
			return nil, fmt.Errorf("compositor: silhouette %d geometry mismatch", i)
		}
	}
	if vb := opts.Virtual.FrameAt(0); vb == nil || vb.W != w || vb.H != h {
		return nil, fmt.Errorf("compositor: virtual background geometry mismatch")
	}

	matting := segment.NewMatting(opts.Profile.Matting, rng)
	var channel *vidstream.CodecChannel
	if opts.Codec != nil {
		channel = vidstream.NewCodecChannel(*opts.Codec, rng)
	}
	res := &Result{
		Blended: vidstream.New(raw.FPS),
		Raw:     raw,
	}
	for i, frame := range raw.Frames {
		vb := opts.Virtual.FrameAt(i)
		if opts.Transform != nil {
			vb = opts.Transform(vb, frame, i)
		}
		est := matting.Estimate(frame, silhouettes[i])
		blended, comps := blendFrame(frame, vb, est, silhouettes[i], opts.Profile)
		if channel != nil {
			channel.Transmit(blended)
		}
		if err := res.Blended.Append(blended); err != nil {
			return nil, fmt.Errorf("compositor: frame %d: %w", i, err)
		}
		res.Components = append(res.Components, comps)
		res.EstimatedFG = append(res.EstimatedFG, est)
	}
	return res, nil
}

// blendFrame builds one output frame and its ground-truth decomposition.
func blendFrame(frame, vb *imagex.Image, est, trueFG *imagex.Mask, p Profile) (*imagex.Image, FrameComponents) {
	w, h := frame.W, frame.H
	out := imagex.New(w, h)
	comps := FrameComponents{
		VC: imagex.NewMask(w, h),
		LB: imagex.NewMask(w, h),
		BB: imagex.NewMask(w, h),
		VB: imagex.NewMask(w, h),
	}

	// Distance of every outside pixel to the estimated foreground, up to
	// the blend radius, via expanding dilation rings.
	dist := distanceRings(est, p.BlendRadius)

	i := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			switch {
			case est.At(x, y):
				out.Pix[i] = frame.Pix[i]
				if trueFG.At(x, y) {
					comps.VC.Set(x, y, true)
				} else {
					comps.LB.Set(x, y, true)
				}
			case dist[i] > 0 && dist[i] <= p.BlendRadius:
				t := blendWeight(p.Blend, float64(dist[i]), float64(p.BlendRadius))
				out.Pix[i] = imagex.Lerp(frame.Pix[i], vb.Pix[i], t)
				comps.BB.Set(x, y, true)
			default:
				out.Pix[i] = vb.Pix[i]
				comps.VB.Set(x, y, true)
			}
			i++
		}
	}
	return out, comps
}

// blendWeight returns the virtual-background weight at distance d of a
// band of radius r; all kinds satisfy weight(0)≈0 → mostly frame at the
// mask edge, weight(r)→1 just before pure VB.
func blendWeight(kind BlendKind, d, r float64) float64 {
	x := d / (r + 1)
	switch kind {
	case BlendGaussian:
		// 1 − exp(−d²/2σ²) with σ = r/2: steep early transition.
		sigma := r / 2
		if sigma <= 0 {
			return 1
		}
		return 1 - math.Exp(-d*d/(2*sigma*sigma))
	case BlendLaplacian:
		// Smoothstep.
		return x * x * (3 - 2*x)
	default: // BlendAlpha
		return x
	}
}

// distanceRings computes, for pixels outside est, the Chebyshev-like
// dilation distance (ring index) up to radius r; 0 means inside est or
// farther than r.
func distanceRings(est *imagex.Mask, r int) []int {
	dist := make([]int, est.Len())
	prev := est
	for d := 1; d <= r; d++ {
		cur := est.Dilate(d)
		// Ring d = cur ∖ prev; record first-touch distance.
		ring := cur.Clone()
		_ = ring.Subtract(prev) // same geometry by construction
		ring.ForEachSet(func(i int) {
			if dist[i] == 0 {
				dist[i] = d
			}
		})
		prev = cur
	}
	return dist
}
