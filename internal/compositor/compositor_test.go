package compositor

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/person"
	"github.com/bgbuster/bgbuster/internal/scene"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// composeTestCall renders a short synthetic call and composes it.
func composeTestCall(t *testing.T, seed int64, frames int, profile Profile) *Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sc := scene.Generate(scene.DefaultConfig(), rng)
	p := person.New(person.Config{Action: person.ActionArmWave}, rng)

	raw := vidstream.New(30)
	var sils []*imagex.Mask
	dur := float64(frames) / 30
	for i := 0; i < frames; i++ {
		f := sc.Lit(1.0)
		m := p.Render(f, float64(i)/30, dur)
		if err := raw.Append(f); err != nil {
			t.Fatal(err)
		}
		sils = append(sils, m)
	}
	vb := StaticImage{Img: BuiltinImage("beach", 160, 120)}
	res, err := Compose(raw, sils, Options{Profile: profile, Virtual: vb}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestComposeComponentPartition(t *testing.T) {
	res := composeTestCall(t, 1, 12, ProfileZoom())
	for i, c := range res.Components {
		total := c.VC.Count() + c.LB.Count() + c.BB.Count() + c.VB.Count()
		w, h := res.Blended.Size()
		if total != w*h {
			t.Fatalf("frame %d: components cover %d of %d pixels", i, total, w*h)
		}
		// Pairwise disjoint (paper: four non-overlapping components).
		pairs := [][2]*imagex.Mask{
			{c.VC, c.LB}, {c.VC, c.BB}, {c.VC, c.VB},
			{c.LB, c.BB}, {c.LB, c.VB}, {c.BB, c.VB},
		}
		for pi, p := range pairs {
			if !p[0].Disjoint(p[1]) {
				t.Fatalf("frame %d: component pair %d overlaps", i, pi)
			}
		}
	}
}

func TestComposePixelSemantics(t *testing.T) {
	res := composeTestCall(t, 2, 8, ProfileZoom())
	vb := BuiltinImage("beach", 160, 120)
	for i, c := range res.Components {
		blended := res.Blended.Frames[i]
		raw := res.Raw.Frames[i]
		for p := 0; p < len(blended.Pix); p++ {
			switch {
			case c.VC.GetI(p) || c.LB.GetI(p):
				if blended.Pix[p] != raw.Pix[p] {
					t.Fatalf("frame %d: fg/leak pixel %d not raw", i, p)
				}
			case c.VB.GetI(p):
				if blended.Pix[p] != vb.Pix[p] {
					t.Fatalf("frame %d: vb pixel %d not virtual image", i, p)
				}
			}
		}
	}
}

func TestComposeLeaksSomething(t *testing.T) {
	res := composeTestCall(t, 3, 20, ProfileZoom())
	leak := 0
	for _, c := range res.Components {
		leak += c.LB.Count()
	}
	if leak == 0 {
		t.Fatal("Zoom profile never leaked any background in 20 frames")
	}
}

func TestSkypeLeaksLessThanZoom(t *testing.T) {
	leak := func(p Profile) int {
		total := 0
		for seed := int64(0); seed < 6; seed++ {
			res := composeTestCall(t, seed, 25, p)
			for _, c := range res.Components {
				total += c.LB.Count()
			}
		}
		return total
	}
	z, s := leak(ProfileZoom()), leak(ProfileSkype())
	if s >= z {
		t.Fatalf("skype leak (%d) must be below zoom leak (%d)", s, z)
	}
}

func TestComposeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	raw := vidstream.New(30)
	if err := raw.Append(imagex.New(20, 20)); err != nil {
		t.Fatal(err)
	}
	sil := imagex.NewMask(20, 20)
	vb := StaticImage{Img: imagex.New(20, 20)}

	if _, err := Compose(vidstream.New(30), nil, Options{Profile: ProfileZoom(), Virtual: vb}, rng); err == nil {
		t.Fatal("empty video accepted")
	}
	if _, err := Compose(raw, []*imagex.Mask{sil}, Options{Profile: ProfileZoom(), Virtual: vb}, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := Compose(raw, []*imagex.Mask{sil}, Options{Profile: ProfileZoom()}, rng); err == nil {
		t.Fatal("nil virtual source accepted")
	}
	if _, err := Compose(raw, nil, Options{Profile: ProfileZoom(), Virtual: vb}, rng); err == nil {
		t.Fatal("missing silhouettes accepted")
	}
	if _, err := Compose(raw, []*imagex.Mask{imagex.NewMask(9, 9)}, Options{Profile: ProfileZoom(), Virtual: vb}, rng); err == nil {
		t.Fatal("mismatched silhouette accepted")
	}
	bad := StaticImage{Img: imagex.New(5, 5)}
	if _, err := Compose(raw, []*imagex.Mask{sil}, Options{Profile: ProfileZoom(), Virtual: bad}, rng); err == nil {
		t.Fatal("mismatched virtual background accepted")
	}
}

func TestVirtualVideoLoops(t *testing.T) {
	vid := BuiltinVideo("waves", 20, 20, 5)
	if vid.Period() != 5 {
		t.Fatalf("period = %d", vid.Period())
	}
	if !vid.FrameAt(0).Equal(vid.FrameAt(5)) || !vid.FrameAt(2).Equal(vid.FrameAt(7)) {
		t.Fatal("video must loop with its period")
	}
	if vid.FrameAt(0).Equal(vid.FrameAt(2)) {
		t.Fatal("distinct phases must differ")
	}
}

func TestBuiltinImagesDistinct(t *testing.T) {
	imgs := BuiltinImages(40, 30)
	if len(imgs) != len(BuiltinImageNames) {
		t.Fatalf("expected %d images", len(BuiltinImageNames))
	}
	names := BuiltinImageNames
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := imgs[names[i]], imgs[names[j]]
			if a.MatchCount(b) > a.W*a.H/2 {
				t.Errorf("built-ins %q and %q too similar", names[i], names[j])
			}
		}
	}
	// Unknown name falls back without panicking.
	if BuiltinImage("nope", 40, 30) == nil {
		t.Fatal("fallback image nil")
	}
}

func TestBuiltinVideoMinPeriod(t *testing.T) {
	if BuiltinVideo("aurora", 10, 10, 0).Period() != 2 {
		t.Fatal("period must clamp to ≥ 2")
	}
}

func TestBlendWeightMonotone(t *testing.T) {
	for _, kind := range []BlendKind{BlendAlpha, BlendGaussian, BlendLaplacian} {
		prev := -1.0
		for d := 0.0; d <= 5; d++ {
			w := blendWeight(kind, d, 5)
			if w < prev {
				t.Fatalf("%v weight not monotone at d=%v", kind, d)
			}
			if w < 0 || w > 1 {
				t.Fatalf("%v weight out of range at d=%v: %v", kind, d, w)
			}
			prev = w
		}
		if w0 := blendWeight(kind, 0, 5); w0 > 0.05 {
			t.Fatalf("%v weight at edge = %v, want ≈0", kind, w0)
		}
	}
}

func TestBlendKindStrings(t *testing.T) {
	for _, k := range []BlendKind{BlendAlpha, BlendGaussian, BlendLaplacian} {
		if strings.HasPrefix(k.String(), "blend(") {
			t.Fatalf("kind %d missing label", k)
		}
	}
	if BlendKind(9).String() != "blend(9)" {
		t.Fatal("unknown kind label wrong")
	}
}

func TestTransformHookApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	raw := vidstream.New(30)
	if err := raw.Append(imagex.NewFilled(20, 20, imagex.RGB{R: 50, G: 50, B: 50})); err != nil {
		t.Fatal(err)
	}
	sil := imagex.NewMask(20, 20) // caller absent
	marker := imagex.RGB{R: 1, G: 2, B: 3}
	opts := Options{
		Profile: func() Profile { // error-free profile: pure VB output
			p := ProfileZoom()
			p.Matting.LeakRate = 0
			p.Matting.CutRate = 0
			p.Matting.WarmupPatches = 0
			p.Matting.TrailKeep = 0
			return p
		}(),
		Virtual: StaticImage{Img: imagex.New(20, 20)},
		Transform: func(vb, raw *imagex.Image, i int) *imagex.Image {
			return imagex.NewFilled(vb.W, vb.H, marker)
		},
	}
	res, err := Compose(raw, []*imagex.Mask{sil}, opts, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blended.Frames[0].At(10, 10) != marker {
		t.Fatal("transform output not blended")
	}
}

func TestDistanceRings(t *testing.T) {
	m := imagex.NewMask(11, 11)
	m.Set(5, 5, true)
	dist := distanceRings(m, 3)
	if dist[5*11+5] != 0 {
		t.Fatal("inside pixel must have distance 0")
	}
	if dist[5*11+6] != 1 {
		t.Fatalf("adjacent pixel distance = %d, want 1", dist[5*11+6])
	}
	if dist[5*11+8] != 3 {
		t.Fatalf("3-away pixel distance = %d, want 3", dist[5*11+8])
	}
	if dist[5*11+10] != 0 {
		t.Fatal("beyond radius must be 0")
	}
}
