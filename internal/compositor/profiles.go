package compositor

import "github.com/bgbuster/bgbuster/internal/segment"

// ProfileZoom models the Zoom-like compositor: the paper found it leaks
// noticeably more background than Skype (E3 RBRR 23.9 % vs 19.4 %).
// These error rates were calibrated so the E1–E3 experiment suite lands
// near the paper's reported percentages at the simulator's 160×120
// geometry (see EXPERIMENTS.md).
func ProfileZoom() Profile {
	return Profile{
		Name: "zoom",
		Matting: segment.MattingConfig{
			Name:              "zoom-matting",
			BoundaryWidth:     2,
			LeakRate:          0.38,
			CutRate:           0.5,
			BlobRadius:        2,
			MotionGain:        28.0,
			MotionSpread:      20,
			MotionSat:         0.18,
			MotionOverDrop:    3.0,
			WarmupFrames:      8,
			WarmupPatches:     9,
			WarmupPatchRadius: 6,
			LumaRef:           110,
			LumaGain:          0.9,
			TrailKeep:         0.50,
		},
		BlendRadius: 3,
		Blend:       BlendAlpha,
	}
}

// ProfileSkype models the Skype-like compositor: more accurate masking,
// shorter warm-up, weaker trailing — and a different blending function,
// matching the paper's observation of "multiple visual differences"
// between the two renderers.
func ProfileSkype() Profile {
	return Profile{
		Name: "skype",
		Matting: segment.MattingConfig{
			Name:              "skype-matting",
			BoundaryWidth:     2,
			LeakRate:          0.28,
			CutRate:           0.4,
			BlobRadius:        2,
			MotionGain:        21.0,
			MotionSpread:      16,
			MotionSat:         0.18,
			MotionOverDrop:    2.6,
			WarmupFrames:      5,
			WarmupPatches:     6,
			WarmupPatchRadius: 5,
			LumaRef:           110,
			LumaGain:          0.8,
			TrailKeep:         0.36,
		},
		BlendRadius: 3,
		Blend:       BlendGaussian,
	}
}
