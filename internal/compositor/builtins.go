package compositor

import (
	"math"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// Built-in virtual backgrounds. These play the role of the paper's
// "default/popular virtual background images" dataset D_img (Section
// V-B): the known-VB matcher searches over them, and the evaluation uses
// "three different virtual images and two virtual videos" exactly as the
// paper's VBMR experiment does (Section VIII-B).

// BuiltinImageNames lists the built-in static virtual images.
var BuiltinImageNames = []string{"beach", "office", "space", "forest", "gradient"}

// BuiltinImage renders the named virtual image at the given geometry.
// Unknown names yield the gradient fallback.
func BuiltinImage(name string, w, h int) *imagex.Image {
	img := imagex.New(w, h)
	switch name {
	case "beach":
		renderBeach(img)
	case "office":
		renderOffice(img)
	case "space":
		renderSpace(img)
	case "forest":
		renderForest(img)
	default:
		renderGradient(img, 210)
	}
	return img
}

// BuiltinImages returns all built-in virtual images at the geometry.
func BuiltinImages(w, h int) map[string]*imagex.Image {
	out := make(map[string]*imagex.Image, len(BuiltinImageNames))
	for _, n := range BuiltinImageNames {
		out[n] = BuiltinImage(n, w, h)
	}
	return out
}

// BuiltinVideoNames lists the built-in virtual videos.
var BuiltinVideoNames = []string{"waves", "aurora"}

// BuiltinVideo renders the named looping virtual video with the given
// geometry and loop period (frames). Unknown names yield "waves".
func BuiltinVideo(name string, w, h, period int) LoopingVideo {
	if period < 2 {
		period = 2
	}
	frames := make([]*imagex.Image, period)
	for i := range frames {
		phase := 2 * math.Pi * float64(i) / float64(period)
		img := imagex.New(w, h)
		switch name {
		case "aurora":
			renderAuroraFrame(img, phase)
		default:
			renderWavesFrame(img, phase)
		}
		frames[i] = img
	}
	return LoopingVideo{Frames: frames}
}

func renderBeach(img *imagex.Image) {
	skyline := img.H * 2 / 5
	waterline := img.H * 7 / 10
	for y := 0; y < img.H; y++ {
		var c imagex.RGB
		switch {
		case y < skyline:
			c = imagex.HSV{H: 205, S: 0.45, V: 0.95 - 0.2*float64(y)/float64(skyline)}.ToRGB()
		case y < waterline:
			c = imagex.HSV{H: 190, S: 0.6, V: 0.7}.ToRGB()
		default:
			c = imagex.HSV{H: 45, S: 0.4, V: 0.9}.ToRGB()
		}
		img.FillRect(0, y, img.W, y+1, c)
	}
	// Sun.
	img.FillCircle(img.W*4/5, skyline/2, img.H/12, imagex.RGB{R: 255, G: 230, B: 150})
}

func renderOffice(img *imagex.Image) {
	img.Fill(imagex.RGB{R: 190, G: 188, B: 182})
	// Book wall pattern.
	shelfH := img.H / 5
	for row := 0; row < 3; row++ {
		y0 := row*shelfH + img.H/10
		for x := 0; x < img.W; x += 7 {
			hue := float64((x*37 + row*91) % 360)
			c := imagex.HSV{H: hue, S: 0.55, V: 0.55}.ToRGB()
			img.FillRect(x, y0, x+5, y0+shelfH-3, c)
		}
		img.FillRect(0, y0+shelfH-3, img.W, y0+shelfH-1, imagex.RGB{R: 90, G: 60, B: 35})
	}
}

func renderSpace(img *imagex.Image) {
	img.Fill(imagex.RGB{R: 8, G: 8, B: 24})
	// Deterministic starfield from a hash of coordinates.
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			h := uint32(x*73856093) ^ uint32(y*19349663)
			if h%97 == 0 {
				v := uint8(150 + h%100)
				img.Set(x, y, imagex.RGB{R: v, G: v, B: v})
			}
		}
	}
	// A planet.
	img.FillCircle(img.W/4, img.H/3, img.H/6, imagex.RGB{R: 160, G: 80, B: 60})
}

func renderForest(img *imagex.Image) {
	img.Fill(imagex.HSV{H: 130, S: 0.5, V: 0.35}.ToRGB())
	// Tree trunks.
	for x := img.W / 10; x < img.W; x += img.W / 5 {
		img.FillRect(x, img.H/4, x+img.W/30+1, img.H, imagex.RGB{R: 70, G: 45, B: 25})
		img.FillCircle(x+img.W/60, img.H/4, img.H/7, imagex.HSV{H: 120, S: 0.7, V: 0.45}.ToRGB())
	}
}

func renderGradient(img *imagex.Image, hue float64) {
	for y := 0; y < img.H; y++ {
		c := imagex.HSV{H: hue, S: 0.5, V: 0.35 + 0.5*float64(y)/float64(img.H)}.ToRGB()
		img.FillRect(0, y, img.W, y+1, c)
	}
}

func renderWavesFrame(img *imagex.Image, phase float64) {
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			v := 0.5 + 0.25*math.Sin(float64(x)/9+phase) + 0.15*math.Sin(float64(y)/6-phase)
			img.Set(x, y, imagex.HSV{H: 200, S: 0.7, V: 0.3 + 0.4*v}.ToRGB())
		}
	}
}

func renderAuroraFrame(img *imagex.Image, phase float64) {
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			band := math.Sin(float64(x)/14 + 2*math.Sin(phase) + float64(y)/20)
			hue := 140 + 60*band
			img.Set(x, y, imagex.HSV{H: hue, S: 0.8, V: 0.25 + 0.3*math.Abs(band)}.ToRGB())
		}
	}
}
