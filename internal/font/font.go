// Package font provides a 5×7 bitmap font. The scene generator renders
// background text (posters, sticky notes) with it, and the text-inference
// attack (the paper's TextFuseNet substitute) uses the same glyph set as
// its matching templates — so recognition accuracy measures how much of
// the text survives partial background recovery, not font mismatch.
package font

import (
	"strings"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// GlyphW and GlyphH are the pixel dimensions of every glyph.
const (
	GlyphW = 5
	GlyphH = 7
	// Spacing is the blank column count between adjacent glyphs.
	Spacing = 1
)

// glyphs maps each supported rune to 7 rows of 5 cells; 'X' marks an ink
// pixel. Only upper-case letters, digits and basic punctuation are
// defined; Render upper-cases its input.
var glyphs = map[rune][GlyphH]string{
	'A':  {" XXX ", "X   X", "X   X", "XXXXX", "X   X", "X   X", "X   X"},
	'B':  {"XXXX ", "X   X", "X   X", "XXXX ", "X   X", "X   X", "XXXX "},
	'C':  {" XXX ", "X   X", "X    ", "X    ", "X    ", "X   X", " XXX "},
	'D':  {"XXXX ", "X   X", "X   X", "X   X", "X   X", "X   X", "XXXX "},
	'E':  {"XXXXX", "X    ", "X    ", "XXXX ", "X    ", "X    ", "XXXXX"},
	'F':  {"XXXXX", "X    ", "X    ", "XXXX ", "X    ", "X    ", "X    "},
	'G':  {" XXX ", "X   X", "X    ", "X XXX", "X   X", "X   X", " XXX "},
	'H':  {"X   X", "X   X", "X   X", "XXXXX", "X   X", "X   X", "X   X"},
	'I':  {" XXX ", "  X  ", "  X  ", "  X  ", "  X  ", "  X  ", " XXX "},
	'J':  {"  XXX", "   X ", "   X ", "   X ", "   X ", "X  X ", " XX  "},
	'K':  {"X   X", "X  X ", "X X  ", "XX   ", "X X  ", "X  X ", "X   X"},
	'L':  {"X    ", "X    ", "X    ", "X    ", "X    ", "X    ", "XXXXX"},
	'M':  {"X   X", "XX XX", "X X X", "X X X", "X   X", "X   X", "X   X"},
	'N':  {"X   X", "XX  X", "X X X", "X  XX", "X   X", "X   X", "X   X"},
	'O':  {" XXX ", "X   X", "X   X", "X   X", "X   X", "X   X", " XXX "},
	'P':  {"XXXX ", "X   X", "X   X", "XXXX ", "X    ", "X    ", "X    "},
	'Q':  {" XXX ", "X   X", "X   X", "X   X", "X X X", "X  X ", " XX X"},
	'R':  {"XXXX ", "X   X", "X   X", "XXXX ", "X X  ", "X  X ", "X   X"},
	'S':  {" XXXX", "X    ", "X    ", " XXX ", "    X", "    X", "XXXX "},
	'T':  {"XXXXX", "  X  ", "  X  ", "  X  ", "  X  ", "  X  ", "  X  "},
	'U':  {"X   X", "X   X", "X   X", "X   X", "X   X", "X   X", " XXX "},
	'V':  {"X   X", "X   X", "X   X", "X   X", "X   X", " X X ", "  X  "},
	'W':  {"X   X", "X   X", "X   X", "X X X", "X X X", "XX XX", "X   X"},
	'X':  {"X   X", "X   X", " X X ", "  X  ", " X X ", "X   X", "X   X"},
	'Y':  {"X   X", "X   X", " X X ", "  X  ", "  X  ", "  X  ", "  X  "},
	'Z':  {"XXXXX", "    X", "   X ", "  X  ", " X   ", "X    ", "XXXXX"},
	'0':  {" XXX ", "X   X", "X  XX", "X X X", "XX  X", "X   X", " XXX "},
	'1':  {"  X  ", " XX  ", "  X  ", "  X  ", "  X  ", "  X  ", " XXX "},
	'2':  {" XXX ", "X   X", "    X", "   X ", "  X  ", " X   ", "XXXXX"},
	'3':  {" XXX ", "X   X", "    X", "  XX ", "    X", "X   X", " XXX "},
	'4':  {"   X ", "  XX ", " X X ", "X  X ", "XXXXX", "   X ", "   X "},
	'5':  {"XXXXX", "X    ", "XXXX ", "    X", "    X", "X   X", " XXX "},
	'6':  {" XXX ", "X    ", "X    ", "XXXX ", "X   X", "X   X", " XXX "},
	'7':  {"XXXXX", "    X", "   X ", "  X  ", " X   ", " X   ", " X   "},
	'8':  {" XXX ", "X   X", "X   X", " XXX ", "X   X", "X   X", " XXX "},
	'9':  {" XXX ", "X   X", "X   X", " XXXX", "    X", "    X", " XXX "},
	' ':  {"     ", "     ", "     ", "     ", "     ", "     ", "     "},
	'.':  {"     ", "     ", "     ", "     ", "     ", "  XX ", "  XX "},
	',':  {"     ", "     ", "     ", "     ", "  XX ", "  XX ", " X   "},
	'!':  {"  X  ", "  X  ", "  X  ", "  X  ", "  X  ", "     ", "  X  "},
	'?':  {" XXX ", "X   X", "    X", "   X ", "  X  ", "     ", "  X  "},
	'-':  {"     ", "     ", "     ", "XXXXX", "     ", "     ", "     "},
	':':  {"     ", "  XX ", "  XX ", "     ", "  XX ", "  XX ", "     "},
	'\'': {"  X  ", "  X  ", "     ", "     ", "     ", "     ", "     "},
}

// Supported returns the sorted set of runes the font defines, excluding
// the space character (which has no ink and cannot be template-matched).
func Supported() []rune {
	var rs []rune
	for r := range glyphs {
		if r != ' ' {
			rs = append(rs, r)
		}
	}
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j] < rs[j-1]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	return rs
}

// Has reports whether the font defines the (upper-cased) rune.
func Has(r rune) bool {
	_, ok := glyphs[upper(r)]
	return ok
}

// GlyphMask returns the 5×7 ink mask for the (upper-cased) rune and
// whether it is defined.
func GlyphMask(r rune) (*imagex.Mask, bool) {
	rows, ok := glyphs[upper(r)]
	if !ok {
		return nil, false
	}
	m := imagex.NewMask(GlyphW, GlyphH)
	for y, row := range rows {
		for x, cell := range row {
			if cell == 'X' {
				m.Set(x, y, true)
			}
		}
	}
	return m, true
}

// Measure returns the pixel width and height of the rendered text.
// Undefined runes render as spaces and still occupy a cell.
func Measure(text string) (w, h int) {
	n := len([]rune(text))
	if n == 0 {
		return 0, 0
	}
	return n*GlyphW + (n-1)*Spacing, GlyphH
}

// Render draws text onto img with its top-left corner at (ox, oy), in
// ink colour c. Input is upper-cased; undefined runes are skipped but
// keep their cell so layout is stable. It returns the advance width.
func Render(img *imagex.Image, text string, ox, oy int, c imagex.RGB) int {
	x := ox
	for _, r := range strings.ToUpper(text) {
		if rows, ok := glyphs[r]; ok {
			for gy, row := range rows {
				for gx, cell := range row {
					if cell == 'X' {
						img.Set(x+gx, oy+gy, c)
					}
				}
			}
		}
		x += GlyphW + Spacing
	}
	return x - ox - Spacing
}

// RenderScaled draws text with integer scale factor s ≥ 1 (each font
// pixel becomes an s×s block). It returns the advance width.
func RenderScaled(img *imagex.Image, text string, ox, oy, s int, c imagex.RGB) int {
	if s < 1 {
		s = 1
	}
	x := ox
	for _, r := range strings.ToUpper(text) {
		if rows, ok := glyphs[r]; ok {
			for gy, row := range rows {
				for gx, cell := range row {
					if cell == 'X' {
						img.FillRect(x+gx*s, oy+gy*s, x+(gx+1)*s, oy+(gy+1)*s, c)
					}
				}
			}
		}
		x += (GlyphW + Spacing) * s
	}
	return x - ox - Spacing*s
}

func upper(r rune) rune {
	if r >= 'a' && r <= 'z' {
		return r - 'a' + 'A'
	}
	return r
}
