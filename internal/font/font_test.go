package font

import (
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

func TestAllGlyphsWellFormed(t *testing.T) {
	for r, rows := range glyphs {
		for y, row := range rows {
			if len(row) != GlyphW {
				t.Errorf("glyph %q row %d has width %d, want %d", r, y, len(row), GlyphW)
			}
			for _, cell := range row {
				if cell != 'X' && cell != ' ' {
					t.Errorf("glyph %q contains invalid cell %q", r, cell)
				}
			}
		}
	}
}

func TestGlyphsPairwiseDistinct(t *testing.T) {
	// Every pair of inked glyphs must differ in at least 2 pixels so the
	// OCR template matcher can separate them under mild noise.
	rs := Supported()
	masks := make(map[rune]*imagex.Mask, len(rs))
	for _, r := range rs {
		m, ok := GlyphMask(r)
		if !ok {
			t.Fatalf("Supported rune %q has no mask", r)
		}
		if m.Count() == 0 {
			t.Fatalf("glyph %q has no ink", r)
		}
		masks[r] = m
	}
	for i, a := range rs {
		for _, b := range rs[i+1:] {
			d := masks[a].Clone()
			if err := d.Xor(masks[b]); err != nil {
				t.Fatal(err)
			}
			diff := d.Count()
			if diff < 2 {
				t.Errorf("glyphs %q and %q differ by only %d pixels", a, b, diff)
			}
		}
	}
}

func TestSupportedSortedAndComplete(t *testing.T) {
	rs := Supported()
	if len(rs) != len(glyphs)-1 {
		t.Fatalf("Supported() returned %d runes, want %d", len(rs), len(glyphs)-1)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i-1] >= rs[i] {
			t.Fatalf("Supported() not strictly sorted at %d: %q >= %q", i, rs[i-1], rs[i])
		}
	}
	for _, r := range rs {
		if r == ' ' {
			t.Fatal("Supported() must exclude space")
		}
	}
}

func TestHasCaseInsensitive(t *testing.T) {
	if !Has('a') || !Has('Z') || !Has('7') {
		t.Fatal("expected defined glyphs")
	}
	if Has('~') || Has('€') {
		t.Fatal("unexpected glyphs defined")
	}
}

func TestMeasure(t *testing.T) {
	w, h := Measure("")
	if w != 0 || h != 0 {
		t.Fatal("empty text must measure 0x0")
	}
	w, h = Measure("AB")
	if w != 2*GlyphW+Spacing || h != GlyphH {
		t.Fatalf("Measure(AB) = %dx%d", w, h)
	}
}

func TestRenderInkMatchesGlyph(t *testing.T) {
	img := imagex.New(10, 10)
	ink := imagex.RGB{R: 200}
	adv := Render(img, "i", 1, 1, ink) // lower-case input
	if adv != GlyphW {
		t.Fatalf("advance = %d, want %d", adv, GlyphW)
	}
	mask, _ := GlyphMask('I')
	for y := 0; y < GlyphH; y++ {
		for x := 0; x < GlyphW; x++ {
			want := imagex.Black
			if mask.At(x, y) {
				want = ink
			}
			if got := img.At(1+x, 1+y); got != want {
				t.Fatalf("pixel (%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestRenderUndefinedRuneKeepsCell(t *testing.T) {
	img := imagex.New(30, 10)
	Render(img, "A~B", 0, 0, imagex.White)
	// 'B' must start at cell 2 regardless of '~' being undefined.
	bx := 2 * (GlyphW + Spacing)
	found := false
	for y := 0; y < GlyphH && !found; y++ {
		for x := 0; x < GlyphW; x++ {
			if img.At(bx+x, y) == imagex.White {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("third cell empty; undefined rune collapsed layout")
	}
}

func TestRenderScaled(t *testing.T) {
	img := imagex.New(40, 40)
	RenderScaled(img, "T", 0, 0, 3, imagex.White)
	// Top row of T is fully inked: 5*3 = 15 pixels wide, 3 tall.
	for y := 0; y < 3; y++ {
		for x := 0; x < 15; x++ {
			if img.At(x, y) != imagex.White {
				t.Fatalf("scaled T top bar missing pixel (%d,%d)", x, y)
			}
		}
	}
	// Scale < 1 behaves as 1.
	img2 := imagex.New(10, 10)
	RenderScaled(img2, "T", 0, 0, 0, imagex.White)
	if img2.At(0, 0) != imagex.White {
		t.Fatal("scale 0 must clamp to 1")
	}
}

func TestRenderClipsAtBorder(t *testing.T) {
	img := imagex.New(4, 4)
	Render(img, "WWW", -2, -2, imagex.White) // must not panic
}
