package gallery

import (
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// participantStream builds n frames of flat color c with a one-pixel
// white marker that walks along the top row, so frames are mutually
// distinguishable and consecutive frames nearly identical (content
// tracking relies on that, like real video).
func participantStream(c imagex.RGB, w, h, n int) *vidstream.Video {
	v := vidstream.New(30)
	for i := 0; i < n; i++ {
		f := imagex.NewFilled(w, h, c)
		f.Set(i%w, 0, imagex.White)
		f.Set((i+1)%w, h-1, imagex.Black)
		if err := v.Append(f); err != nil {
			panic(err)
		}
	}
	return v
}

var testPalette = []imagex.RGB{
	{R: 200, G: 40, B: 40},
	{R: 40, G: 200, B: 40},
	{R: 40, G: 40, B: 200},
	{R: 200, G: 200, B: 40},
	{R: 200, G: 40, B: 200},
	{R: 40, G: 200, B: 200},
	{R: 120, G: 80, B: 40},
	{R: 80, G: 40, B: 120},
	{R: 160, G: 160, B: 160},
}

func testMeeting(t *testing.T, joins []int, lens []int, w, h int, spec Spec) ([]Participant, *Result) {
	t.Helper()
	parts := make([]Participant, len(joins))
	for i := range joins {
		parts[i] = Participant{
			Frames: participantStream(testPalette[i%len(testPalette)], w, h, lens[i]),
			JoinAt: joins[i],
		}
	}
	res, err := Compose(parts, spec)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	return parts, res
}

func TestLayoutGrammarShapes(t *testing.T) {
	spec := Spec{TileW: 48, TileH: 36, Capacity: 16}.withDefaults()
	canvasW, canvasH := spec.Canvas()
	for n := 1; n <= 16; n++ {
		rects, err := spec.LayoutFor(n)
		if err != nil {
			t.Fatalf("LayoutFor(%d): %v", n, err)
		}
		if len(rects) != n {
			t.Fatalf("LayoutFor(%d): %d rects", n, len(rects))
		}
		for i, r := range rects {
			if !r.In(canvasW, canvasH) {
				t.Fatalf("n=%d rect %d %+v outside %dx%d canvas", n, i, r, canvasW, canvasH)
			}
			if r.W != spec.TileW || r.H != spec.TileH {
				t.Fatalf("n=%d rect %d scaled: %+v", n, i, r)
			}
		}
		// Row-major slot order.
		for i := 1; i < n; i++ {
			a, b := rects[i-1], rects[i]
			if b.Y < a.Y || (b.Y == a.Y && b.X <= a.X) {
				t.Fatalf("n=%d slots not row-major: %+v then %+v", n, a, b)
			}
		}
	}
}

func TestLayoutGutterSeparation(t *testing.T) {
	spec := Spec{TileW: 20, TileH: 12, Gutter: 3, Capacity: 9}.withDefaults()
	w, h := spec.Canvas()
	for n := 1; n <= 9; n++ {
		rects, _ := spec.LayoutFor(n)
		for i, r := range rects {
			for j, o := range rects {
				if i == j {
					continue
				}
				dx := gap(r.X, r.W, o.X, o.W)
				dy := gap(r.Y, r.H, o.Y, o.H)
				if dx < spec.Gutter && dy < spec.Gutter {
					t.Fatalf("n=%d rects %d,%d closer than gutter: %+v %+v", n, i, j, r, o)
				}
			}
			if r.X < 1 || r.Y < 1 || r.X+r.W > w-1 || r.Y+r.H > h-1 {
				t.Fatalf("n=%d rect %d touches canvas border: %+v", n, i, r)
			}
		}
	}
}

// gap returns the separation between intervals [a,a+aw) and [b,b+bw),
// or a negative number if they overlap.
func gap(a, aw, b, bw int) int {
	if a+aw <= b {
		return b - (a + aw)
	}
	if b+bw <= a {
		return a - (b + bw)
	}
	return -1
}

func TestComposeDeterministic(t *testing.T) {
	spec := Spec{Seed: 7, Variant: VariantActiveSpeaker, SpeakerEvery: 5}
	_, a := testMeeting(t, []int{0, 0, 4}, []int{16, 16, 10}, 32, 24, spec)
	_, b := testMeeting(t, []int{0, 0, 4}, []int{16, 16, 10}, 32, 24, spec)
	if a.Video.Len() != b.Video.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Video.Len(), b.Video.Len())
	}
	for i := range a.Video.Frames {
		if !a.Video.Frames[i].Equal(b.Video.Frames[i]) {
			t.Fatalf("frame %d differs between identical composes", i)
		}
	}
}

// TestSplitRoundTrip is the core conformance property: for a meeting
// with a mid-call join and a mid-call leave, every demuxed lane stream
// is bit-identical to the frames the compositor actually showed for
// that participant — no frame lost to stability voting, none
// resampled.
func TestSplitRoundTrip(t *testing.T) {
	for _, variant := range []Variant{VariantGrid, VariantActiveSpeaker} {
		t.Run(variant.String(), func(t *testing.T) {
			parts, res := testMeeting(t,
				[]int{0, 0, 6}, []int{20, 12, 14}, 48, 36,
				Spec{Seed: 3, Variant: variant})
			lanes, stats, err := SplitVideo(res.Video, Config{})
			if err != nil {
				t.Fatalf("SplitVideo: %v", err)
			}
			if len(lanes) != len(parts) {
				t.Fatalf("got %d lanes, want %d (stats %+v)", len(lanes), len(parts), stats)
			}
			matched := make([]bool, len(parts))
			for _, ls := range lanes {
				pi := matchParticipant(t, parts, ls.Video.Frames[0])
				if matched[pi] {
					t.Fatalf("participant %d claimed by two lanes", pi)
				}
				matched[pi] = true
				shown := res.ShownFrames(pi)
				if ls.Video.Len() != len(shown) {
					t.Fatalf("participant %d: lane %d has %d frames, composite showed %d",
						pi, ls.Lane, ls.Video.Len(), len(shown))
				}
				for k, local := range shown {
					if !ls.Video.Frames[k].Equal(parts[pi].Frames.Frames[local]) {
						t.Fatalf("participant %d frame %d (local %d) not bit-identical", pi, k, local)
					}
				}
			}
			if stats.Retiles == 0 {
				t.Fatalf("expected retiles across join/leave, stats %+v", stats)
			}
		})
	}
}

// matchParticipant finds which participant owns a demuxed first frame.
func matchParticipant(t *testing.T, parts []Participant, img *imagex.Image) int {
	t.Helper()
	for i, p := range parts {
		for _, f := range p.Frames.Frames {
			if f.Equal(img) {
				return i
			}
		}
	}
	t.Fatalf("demuxed frame matches no participant frame")
	return -1
}

// TestSplitRejoin: a participant leaving and a new stream with the
// same content coming back maps onto the old lane when Rejoin is on.
func TestSplitRejoin(t *testing.T) {
	w, h := 32, 24
	p0 := participantStream(testPalette[0], w, h, 30)
	p1 := participantStream(testPalette[1], w, h, 30)
	spec := Spec{Capacity: 2}
	// p1 present for frames [0,10) and [20,30): model as two composes
	// stitched — simplest is a manual composite: show both, then only
	// p0, then both again.
	specR := spec.withDefaults()
	specR.TileW, specR.TileH = w, h
	cw, ch := specR.Canvas()
	comp := vidstream.New(30)
	appendFrame := func(imgs ...*imagex.Image) {
		f := imagex.NewFilled(cw, ch, specR.GutterColor)
		rects, err := specR.LayoutFor(len(imgs))
		if err != nil {
			panic(err)
		}
		for i, im := range imgs {
			if err := f.Blit(im, rects[i].X, rects[i].Y); err != nil {
				panic(err)
			}
		}
		if err := comp.Append(f); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 10; i++ {
		appendFrame(p0.Frames[i], p1.Frames[i])
	}
	for i := 10; i < 20; i++ {
		appendFrame(p0.Frames[i])
	}
	for i := 20; i < 30; i++ {
		appendFrame(p0.Frames[i], p1.Frames[i])
	}
	lanes, stats, err := SplitVideo(comp, Config{Rejoin: true})
	if err != nil {
		t.Fatalf("SplitVideo: %v", err)
	}
	if len(lanes) != 2 {
		t.Fatalf("got %d lanes, want 2 (rejoin should reuse the lane; stats %+v)", len(lanes), stats)
	}
	var rejoined *LaneStream
	for _, ls := range lanes {
		if ls.Rejoined > 0 {
			rejoined = ls
		}
	}
	if rejoined == nil {
		t.Fatalf("no lane recorded a rejoin, stats %+v", stats)
	}
	if stats.Rejoins != 1 || stats.Leaves != 1 {
		t.Fatalf("stats %+v, want 1 leave and 1 rejoin", stats)
	}
}

// TestSplitLimits: crafted composites are rejected before allocation
// and leave the demuxer usable.
func TestSplitLimits(t *testing.T) {
	d := NewDemuxer(Config{Limits: SplitLimits{MaxTiles: 4, MinTileDim: 4}})
	g := imagex.RGB{R: 32, G: 32, B: 32}

	// 3x3 grid = 9 tiles > MaxTiles.
	many := imagex.NewFilled(100, 100, g)
	for ty := 0; ty < 3; ty++ {
		for tx := 0; tx < 3; tx++ {
			tile := imagex.NewFilled(20, 20, imagex.White)
			if err := many.Blit(tile, 5+tx*30, 5+ty*30); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := d.Feed(many); err == nil {
		t.Fatal("9-tile frame accepted with MaxTiles=4")
	}

	// Sliver tiles below MinTileDim.
	sliver := imagex.NewFilled(100, 100, g)
	if err := sliver.Blit(imagex.NewFilled(2, 2, imagex.White), 10, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Feed(sliver); err == nil {
		t.Fatal("2x2 sliver tile accepted with MinTileDim=4")
	}

	// Oversized canvas.
	d2 := NewDemuxer(Config{Limits: SplitLimits{MaxDim: 64}})
	if _, err := d2.Feed(imagex.NewFilled(65, 10, g)); err == nil {
		t.Fatal("65-wide frame accepted with MaxDim=64")
	}

	// The demuxer survives rejections: a sane frame still works.
	ok := imagex.NewFilled(100, 100, g)
	if err := ok.Blit(imagex.NewFilled(20, 20, imagex.White), 10, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Feed(ok); err != nil {
		t.Fatalf("sane frame rejected after crafted ones: %v", err)
	}
	if _, err := d.Feed(ok); err != nil {
		t.Fatalf("second sane frame: %v", err)
	}
	if got := len(d.Lanes()); got != 1 {
		t.Fatalf("lanes after recovery: %d, want 1", got)
	}
}

// TestSplitFlapping: a single-frame glitch tiling never commits; the
// glitch frame is dropped and counted, and the stable tiling's lanes
// are unaffected.
func TestSplitFlapping(t *testing.T) {
	_, res := testMeeting(t, []int{0, 0}, []int{10, 10}, 32, 24, Spec{})
	d := NewDemuxer(Config{})
	dropped := 0
	for i, f := range res.Video.Frames {
		glitch := f
		if i == 5 {
			// One frame where a tile blacks out to the gutter color:
			// its tiling differs for a single frame.
			glitch = f.Clone()
			tr := res.Truth[i].Tiles[1].Rect
			if err := glitch.Blit(imagex.NewFilled(tr.W, tr.H, f.Pix[0]), tr.X, tr.Y); err != nil {
				t.Fatal(err)
			}
		}
		up, err := d.Feed(glitch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		dropped += up.DroppedFlaps
	}
	if dropped == 0 {
		t.Fatal("glitch frame was not dropped as a flap")
	}
	if got := len(d.Lanes()); got != 2 {
		t.Fatalf("lanes after flap: %d, want 2", got)
	}
	if d.Stats().Leaves != 0 {
		t.Fatalf("flap caused leaves: %+v", d.Stats())
	}
}
