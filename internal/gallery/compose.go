package gallery

import (
	"fmt"

	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// Participant is one caller's contribution to a gallery meeting: a
// native-geometry video stream (typically compositor.Result.Blended)
// and the meeting frame at which the caller joins. The participant is
// on screen for meeting frames [JoinAt, JoinAt+Frames.Len()) and then
// leaves; paged-out participants keep advancing invisibly, like a real
// client.
type Participant struct {
	Frames *vidstream.Video
	JoinAt int
}

// TileTruth records where one participant landed on one composite
// frame — ground truth for the demuxer conformance tests.
type TileTruth struct {
	// Participant indexes the Compose input slice.
	Participant int
	// Slot is the tile's ordinal in the frame's layout (row-major after
	// any variant reordering).
	Slot int
	// Rect is the tile's placement on the canvas.
	Rect Rect
	// Frame is the local index into the participant's stream that was
	// shown.
	Frame int
}

// FrameTruth is the per-composite-frame tile ground truth, slot order.
type FrameTruth struct {
	Tiles []TileTruth
}

// Result is a composed gallery meeting.
type Result struct {
	// Video is the composite stream at the fixed canvas geometry.
	Video *vidstream.Video
	// Spec is the resolved grammar (defaults applied, Capacity derived).
	Spec Spec
	// Truth holds per-frame tile ground truth, parallel to Video.Frames.
	Truth []FrameTruth
}

// ShownFrames returns, per participant, the local frame indices that
// were actually visible on the composite, in meeting order. This is
// the exact sequence a demuxer can recover, and therefore the input
// the direct-feed side of a parity test must use.
func (r *Result) ShownFrames(participant int) []int {
	var shown []int
	for _, ft := range r.Truth {
		for _, tt := range ft.Tiles {
			if tt.Participant == participant {
				shown = append(shown, tt.Frame)
			}
		}
	}
	return shown
}

// Compose tiles the participants' streams into one composite stream
// under the spec's layout grammar. Tile geometry is taken from the
// spec, or from the first participant when the spec leaves it zero;
// all streams must share it. The meeting runs until the last
// participant's stream ends; frames where nobody is on screen are pure
// gutter. Deterministic: same inputs and spec (incl. Seed) produce the
// same bytes.
func Compose(parts []Participant, spec Spec) (*Result, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("gallery: compose with no participants")
	}
	for i, p := range parts {
		if p.Frames == nil || p.Frames.Len() == 0 {
			return nil, fmt.Errorf("gallery: participant %d has no frames", i)
		}
		if err := p.Frames.Validate(); err != nil {
			return nil, fmt.Errorf("gallery: participant %d: %w", i, err)
		}
		if p.JoinAt < 0 {
			return nil, fmt.Errorf("gallery: participant %d joins at %d", i, p.JoinAt)
		}
	}
	if spec.TileW == 0 && spec.TileH == 0 {
		spec.TileW, spec.TileH = parts[0].Frames.Size()
	}
	spec = spec.withDefaults()
	for i, p := range parts {
		w, h := p.Frames.Size()
		if w != spec.TileW || h != spec.TileH {
			return nil, fmt.Errorf("gallery: participant %d is %dx%d, grammar tile is %dx%d (tiles are never scaled)",
				i, w, h, spec.TileW, spec.TileH)
		}
	}

	total := 0
	for _, p := range parts {
		if end := p.JoinAt + p.Frames.Len(); end > total {
			total = end
		}
	}

	// Resolve capacity from the meeting's peak on-screen tile count so
	// the canvas is fixed for the whole call.
	if spec.Capacity <= 0 {
		peak := 0
		for t := 0; t < total; t++ {
			if n := len(shownAt(parts, spec, t)); n > peak {
				peak = n
			}
		}
		if peak == 0 {
			return nil, fmt.Errorf("gallery: no participant is ever on screen")
		}
		spec.Capacity = peak
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}

	canvasW, canvasH := spec.Canvas()
	fps := parts[0].Frames.FPS
	out := vidstream.New(fps)
	truth := make([]FrameTruth, 0, total)
	for t := 0; t < total; t++ {
		shown := shownAt(parts, spec, t)
		frame := imagex.NewFilled(canvasW, canvasH, spec.GutterColor)
		ft := FrameTruth{}
		if len(shown) > 0 {
			if len(shown) > spec.Capacity {
				return nil, fmt.Errorf("gallery: frame %d shows %d tiles, capacity %d", t, len(shown), spec.Capacity)
			}
			rects, err := spec.LayoutFor(len(shown))
			if err != nil {
				return nil, err
			}
			for slot, pi := range shown {
				local := t - parts[pi].JoinAt
				if err := frame.Blit(parts[pi].Frames.Frames[local], rects[slot].X, rects[slot].Y); err != nil {
					return nil, fmt.Errorf("gallery: frame %d slot %d: %w", t, slot, err)
				}
				ft.Tiles = append(ft.Tiles, TileTruth{
					Participant: pi,
					Slot:        slot,
					Rect:        rects[slot],
					Frame:       local,
				})
			}
		}
		if err := out.Append(frame); err != nil {
			return nil, err
		}
		truth = append(truth, ft)
	}
	return &Result{Video: out, Spec: spec, Truth: truth}, nil
}

// shownAt returns the participant indices on screen at meeting frame
// t, in slot order: active participants in input order, restricted to
// the current page, then reordered by the active-speaker variant.
func shownAt(parts []Participant, spec Spec, t int) []int {
	var active []int
	for i, p := range parts {
		if t >= p.JoinAt && t < p.JoinAt+p.Frames.Len() {
			active = append(active, i)
		}
	}
	if len(active) == 0 {
		return nil
	}
	if spec.PageSize > 0 && len(active) > spec.PageSize {
		pages := (len(active) + spec.PageSize - 1) / spec.PageSize
		page := (t / spec.PageEvery) % pages
		lo := page * spec.PageSize
		hi := lo + spec.PageSize
		if hi > len(active) {
			hi = len(active)
		}
		active = active[lo:hi]
	}
	if spec.Variant == VariantActiveSpeaker && len(active) > 1 {
		s := spec.speakerAt(t, len(active))
		reordered := make([]int, 0, len(active))
		reordered = append(reordered, active[s])
		reordered = append(reordered, active[:s]...)
		reordered = append(reordered, active[s+1:]...)
		active = reordered
	}
	return active
}
