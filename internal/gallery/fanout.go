package gallery

import (
	"fmt"

	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// Sink receives demuxed per-participant sub-streams. The session layer
// implements it over session.Manager and the fleet layer over a
// coordinator, so the demuxer stays free of both dependencies.
//
// Calls for one composite frame arrive in event order: LeaveTile,
// OpenTile, RejoinTile, then FeedTile per released frame. Images are
// handed over for reading — implementations must not mutate them (the
// demuxer keeps each lane's last frame for content matching).
type Sink interface {
	// OpenTile starts the sub-stream for a new lane at w×h.
	OpenTile(id string, w, h int) error
	// RejoinTile resumes the sub-stream of a lane that left earlier.
	RejoinTile(id string, w, h int) error
	// FeedTile delivers one demuxed frame.
	FeedTile(id string, img *imagex.Image) error
	// LeaveTile ends (for now) the sub-stream of a departing lane.
	LeaveTile(id string) error
}

// DefaultTileID is the default lane-id → session-id mapping.
func DefaultTileID(lane int) string { return fmt.Sprintf("tile-%02d", lane) }

// Fanout drives a Sink from a Demuxer: one composite frame in, N
// per-participant deliveries out. Not safe for concurrent use.
type Fanout struct {
	demux *Demuxer
	sink  Sink
	// TileID maps lane ids to stable sink/session ids. Lane ids are
	// monotonic per demuxer, so a rejoin reuses its old session id.
	TileID func(lane int) string
}

// NewFanout wires a demuxer with the given config to sink.
func NewFanout(cfg Config, sink Sink) *Fanout {
	return &Fanout{demux: NewDemuxer(cfg), sink: sink, TileID: DefaultTileID}
}

// Demux exposes the underlying demuxer (stats, lane inspection).
func (f *Fanout) Demux() *Demuxer { return f.demux }

// Feed ingests one composite frame and relays everything it released
// to the sink. Demux errors (limits, geometry) reject the frame but
// keep both demuxer and sink state; sink errors abort mid-sequence and
// are returned wrapped with the failing lane id.
func (f *Fanout) Feed(frame *imagex.Image) (*Update, error) {
	up, err := f.demux.Feed(frame)
	if err != nil {
		return nil, err
	}
	for _, id := range up.Leaves {
		if err := f.sink.LeaveTile(f.TileID(id)); err != nil {
			return up, fmt.Errorf("gallery: leave %s: %w", f.TileID(id), err)
		}
	}
	for _, id := range up.Joins {
		ln := f.demux.lanes[id]
		if err := f.sink.OpenTile(f.TileID(id), ln.w, ln.h); err != nil {
			return up, fmt.Errorf("gallery: open %s: %w", f.TileID(id), err)
		}
	}
	for _, id := range up.Rejoins {
		ln := f.demux.lanes[id]
		if err := f.sink.RejoinTile(f.TileID(id), ln.w, ln.h); err != nil {
			return up, fmt.Errorf("gallery: rejoin %s: %w", f.TileID(id), err)
		}
	}
	for _, lf := range up.Frames {
		if err := f.sink.FeedTile(f.TileID(lf.Lane), lf.Img); err != nil {
			return up, fmt.Errorf("gallery: feed %s: %w", f.TileID(lf.Lane), err)
		}
	}
	return up, nil
}

// LaneStream is one participant sub-stream recovered by SplitVideo.
type LaneStream struct {
	// Lane is the demuxer lane id.
	Lane int
	// Start is the composite frame index at which the lane's first
	// frame was released.
	Start int
	// Video holds the demuxed frames in order.
	Video *vidstream.Video
	// Rejoined counts how many times the lane left and came back.
	Rejoined int
}

// SplitVideo demuxes a whole composite video into per-lane
// sub-streams — the batch convenience over Demuxer for goldens, tools
// and offline analysis. Frames the demuxer rejects fail the split.
func SplitVideo(v *vidstream.Video, cfg Config) ([]*LaneStream, Stats, error) {
	d := NewDemuxer(cfg)
	byLane := map[int]*LaneStream{}
	var order []int
	for i, frame := range v.Frames {
		up, err := d.Feed(frame)
		if err != nil {
			return nil, d.Stats(), fmt.Errorf("gallery: frame %d: %w", i, err)
		}
		for _, id := range up.Rejoins {
			byLane[id].Rejoined++
		}
		for _, lf := range up.Frames {
			ls := byLane[lf.Lane]
			if ls == nil {
				ls = &LaneStream{Lane: lf.Lane, Start: i, Video: vidstream.New(v.FPS)}
				byLane[lf.Lane] = ls
				order = append(order, lf.Lane)
			}
			if err := ls.Video.Append(lf.Img); err != nil {
				return nil, d.Stats(), fmt.Errorf("gallery: lane %d at frame %d: %w", lf.Lane, i, err)
			}
		}
	}
	out := make([]*LaneStream, 0, len(order))
	for _, id := range order {
		out = append(out, byLane[id])
	}
	return out, d.Stats(), nil
}
