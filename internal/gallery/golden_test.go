package gallery

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/bgbuster/bgbuster/internal/vidstream"
)

var updateGolden = flag.Bool("update", false, "regenerate the gallery golden corpus under testdata/")

// The gallery golden corpus pins the layout grammar AND the demuxer on
// deterministic composite fixtures: 2-, 4-, 9- and 16-tile steady
// meetings plus one meeting with a mid-call resize (a join at frame 4
// and a leave at frame 8). The committed .bbv composites are decoded
// and demuxed; the expectations record the committed tile rectangles,
// the lane count, the retile count and a per-lane FNV-64a hash over
// every demuxed frame. Any change to the grammar (gutters, centering,
// letterboxing) or to grid inference, voting or lane tracking shows up
// as a rect or hash mismatch here. Regenerate deliberately with:
//
//	go test ./internal/gallery -run TestGalleryGolden -update
const goldenTileW, goldenTileH = 24, 16

type goldenCase struct {
	name string
	file string
}

var goldenCases = []goldenCase{
	{"tiles-2", "gallery-2.bbv"},
	{"tiles-4", "gallery-4.bbv"},
	{"tiles-9", "gallery-9.bbv"},
	{"tiles-16", "gallery-16.bbv"},
	{"resize", "gallery-resize.bbv"},
}

// goldenMeeting builds the deterministic meeting behind each fixture.
func goldenMeeting(t *testing.T, name string) *Result {
	t.Helper()
	build := func(joins, lens []int, seed int64) *Result {
		parts := make([]Participant, len(joins))
		for i := range joins {
			parts[i] = Participant{
				Frames: participantStream(testPalette[i%len(testPalette)], goldenTileW, goldenTileH, lens[i]),
				JoinAt: joins[i],
			}
		}
		res, err := Compose(parts, Spec{Seed: seed})
		if err != nil {
			t.Fatalf("compose %s: %v", name, err)
		}
		return res
	}
	steady := func(n int) *Result {
		joins := make([]int, n)
		lens := make([]int, n)
		for i := range lens {
			lens[i] = 10
		}
		return build(joins, lens, int64(n))
	}
	switch name {
	case "tiles-2":
		return steady(2)
	case "tiles-4":
		return steady(4)
	case "tiles-9":
		return steady(9)
	case "tiles-16":
		return steady(16)
	case "resize":
		// Three from the start (one leaves at 8), one joining at 4:
		// the grid passes 3 → 4 → 3 tiles.
		return build([]int{0, 0, 0, 4}, []int{16, 16, 8, 12}, 99)
	default:
		t.Fatalf("unknown golden case %q", name)
		return nil
	}
}

type goldenExpect struct {
	CanvasW int    `json:"canvasW"`
	CanvasH int    `json:"canvasH"`
	Rects   []Rect `json:"rects"` // committed tiling after the last frame
	Lanes   int    `json:"lanes"`
	Retiles int    `json:"retiles"`
	// LaneHashes maps "lane-<id>" to frameCount:fnv64a over every
	// demuxed pixel of that lane, in emission order.
	LaneHashes map[string]string `json:"laneHashes"`
}

// demuxGolden splits a fixture and digests it into an expectation.
func demuxGolden(t *testing.T, v *vidstream.Video) goldenExpect {
	t.Helper()
	lanes, stats, err := SplitVideo(v, Config{})
	if err != nil {
		t.Fatalf("SplitVideo: %v", err)
	}
	w, h := v.Size()
	exp := goldenExpect{CanvasW: w, CanvasH: h, Lanes: len(lanes), Retiles: stats.Retiles, LaneHashes: map[string]string{}}
	for _, ls := range lanes {
		fp := fnv.New64a()
		for _, f := range ls.Video.Frames {
			for _, p := range f.Pix {
				fp.Write([]byte{p.R, p.G, p.B})
			}
		}
		exp.LaneHashes[fmt.Sprintf("lane-%d", ls.Lane)] = fmt.Sprintf("%d:%016x", ls.Video.Len(), fp.Sum64())
	}
	// Re-demux statefully for the final committed tiling.
	d := NewDemuxer(Config{})
	for _, f := range v.Frames {
		if _, err := d.Feed(f); err != nil {
			t.Fatal(err)
		}
	}
	exp.Rects = d.Tiling()
	return exp
}

func TestGalleryGoldenCorpus(t *testing.T) {
	dir := "testdata"
	goldenPath := filepath.Join(dir, "gallery_golden.json")

	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		expects := map[string]goldenExpect{}
		for _, tc := range goldenCases {
			res := goldenMeeting(t, tc.name)
			if err := vidstream.Save(filepath.Join(dir, tc.file), res.Video); err != nil {
				t.Fatal(err)
			}
			expects[tc.name] = demuxGolden(t, res.Video)
		}
		data, err := json.MarshalIndent(expects, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden corpus regenerated: %d fixtures", len(goldenCases))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden corpus missing (run with -update): %v", err)
	}
	var expects map[string]goldenExpect
	if err := json.Unmarshal(raw, &expects); err != nil {
		t.Fatal(err)
	}

	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			want, ok := expects[tc.name]
			if !ok {
				t.Fatalf("no expectation for %q (run with -update)", tc.name)
			}
			fixture, err := vidstream.Load(filepath.Join(dir, tc.file))
			if err != nil {
				t.Fatalf("fixture: %v", err)
			}
			// The compositor must still produce the committed bytes.
			res := goldenMeeting(t, tc.name)
			if res.Video.Len() != fixture.Len() {
				t.Fatalf("recomposed %d frames, fixture has %d", res.Video.Len(), fixture.Len())
			}
			for i := range fixture.Frames {
				if !res.Video.Frames[i].Equal(fixture.Frames[i]) {
					t.Fatalf("recomposed frame %d differs from fixture — layout grammar drifted", i)
				}
			}
			// The demuxer must still recover the committed expectations.
			got := demuxGolden(t, fixture)
			if got.CanvasW != want.CanvasW || got.CanvasH != want.CanvasH {
				t.Errorf("canvas %dx%d, want %dx%d", got.CanvasW, got.CanvasH, want.CanvasW, want.CanvasH)
			}
			if got.Lanes != want.Lanes || got.Retiles != want.Retiles {
				t.Errorf("lanes/retiles %d/%d, want %d/%d", got.Lanes, got.Retiles, want.Lanes, want.Retiles)
			}
			if len(got.Rects) != len(want.Rects) {
				t.Fatalf("final tiling has %d rects, want %d", len(got.Rects), len(want.Rects))
			}
			for i := range want.Rects {
				if got.Rects[i] != want.Rects[i] {
					t.Errorf("rect %d = %+v, want %+v", i, got.Rects[i], want.Rects[i])
				}
			}
			var keys []string
			for k := range want.LaneHashes {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if got.LaneHashes[k] != want.LaneHashes[k] {
					t.Errorf("%s hash %s, want %s", k, got.LaneHashes[k], want.LaneHashes[k])
				}
			}
			if len(got.LaneHashes) != len(want.LaneHashes) {
				t.Errorf("%d lanes hashed, want %d", len(got.LaneHashes), len(want.LaneHashes))
			}
		})
	}
}
