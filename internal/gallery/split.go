package gallery

import (
	"errors"
	"fmt"
	"sort"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// ErrLimit reports a composite frame that exceeds the split budgets.
// The frame is rejected before any tile allocation; the demuxer keeps
// its prior state and later frames may still be accepted.
var ErrLimit = errors.New("gallery: split limit exceeded")

// ErrGeometry reports a composite frame whose geometry differs from
// the stream's locked canvas.
var ErrGeometry = errors.New("gallery: composite geometry changed mid-stream")

// SplitLimits bounds what a composite frame may make the demuxer
// allocate, in the spirit of vidstream.DecodeLimits: every budget is
// checked before the corresponding allocation, so a crafted composite
// can never balloon memory. The zero value selects the defaults.
type SplitLimits struct {
	// MaxDim caps the composite width and height (<=0: 8192).
	MaxDim int
	// MaxTiles caps tiles detected per frame (<=0: 64). One tile is one
	// supervised session downstream, so this is also the fan-out cap.
	MaxTiles int
	// MinTileDim rejects tilings with any side below this (<=0: 4) —
	// noise-sized cells are never real participants and a flood of them
	// is the cheapest way to inflate the tile count.
	MinTileDim int
	// MaxTotalBytes caps the per-frame sum of tile pixel bytes
	// (<=0: 256 MiB). Detected tiles are disjoint sub-rects, so this
	// also bounds each buffered pending frame.
	MaxTotalBytes int64
	// MaxPendingFrames caps the stability-voting buffer (<=0: 8).
	// Config.VoteFrames may not exceed it.
	MaxPendingFrames int
}

func (l SplitLimits) withDefaults() SplitLimits {
	if l.MaxDim <= 0 {
		l.MaxDim = 8192
	}
	if l.MaxTiles <= 0 {
		l.MaxTiles = 64
	}
	if l.MinTileDim <= 0 {
		l.MinTileDim = 4
	}
	if l.MaxTotalBytes <= 0 {
		l.MaxTotalBytes = 256 << 20
	}
	if l.MaxPendingFrames <= 0 {
		l.MaxPendingFrames = 8
	}
	return l
}

// Config tunes the demuxer. The zero value selects the defaults.
type Config struct {
	Limits SplitLimits
	// VoteFrames is how many consecutive frames must agree on a new
	// tiling before it is committed (<=0: 2). Frames observed while a
	// tiling is pending are buffered and replayed on commit, so voting
	// costs latency, never frames.
	VoteFrames int
	// MatchTol is the per-channel tolerance for tile↔lane content
	// matching (<0: 0; exact).
	MatchTol int
	// MinMatchFrac is the fraction of pixels that must match for a tile
	// to stay on (or be matched to) a lane (<=0: 0.5). Tiles matching
	// no lane above this become new lanes (joins).
	MinMatchFrac float64
	// Rejoin also matches unassigned tiles against departed lanes, so a
	// participant who drops and comes back resumes their lane id.
	Rejoin bool
}

func (c Config) withDefaults() Config {
	c.Limits = c.Limits.withDefaults()
	if c.VoteFrames <= 0 {
		c.VoteFrames = 2
	}
	if c.VoteFrames > c.Limits.MaxPendingFrames {
		c.VoteFrames = c.Limits.MaxPendingFrames
	}
	if c.MatchTol < 0 {
		c.MatchTol = 0
	}
	if c.MinMatchFrac <= 0 {
		c.MinMatchFrac = 0.5
	}
	return c
}

// LaneFrame is one demuxed tile frame attributed to a lane.
type LaneFrame struct {
	// Lane is the stable lane id (monotonic from 0 per demuxer).
	Lane int
	// Slot is the tile's ordinal in the committed tiling.
	Slot int
	// Img is the exact crop — bit-identical to what the compositor
	// blitted, never resampled.
	Img *imagex.Image
}

// Update is what one composite frame produced. Slices are in event
// order: consume Leaves, then Joins, then Rejoins, then Frames.
// Because of stability voting a single Feed can release several
// buffered frames at once (Frames spans them in time order) or none
// (the frame is pending).
type Update struct {
	// Leaves lists lane ids whose participants left the composite.
	Leaves []int
	// Joins lists new lane ids, each sized W×H of its slot rect.
	Joins []int
	// Rejoins lists departed lane ids that re-entered (Config.Rejoin).
	Rejoins []int
	// Frames holds demuxed tile frames in emission order.
	Frames []LaneFrame
	// DroppedFlaps counts buffered frames discarded because their
	// candidate tiling lost the stability vote.
	DroppedFlaps int
}

// Stats are cumulative demuxer counters.
type Stats struct {
	Frames       int
	Rejected     int
	Retiles      int
	Joins        int
	Leaves       int
	Rejoins      int
	DroppedFlaps int
	Pending      int
}

// lane is one tracked participant sub-stream.
type lane struct {
	id   int
	w, h int
	// last is the most recent frame emitted for this lane; content
	// matching anchors on it.
	last *imagex.Image
}

// pendingFrame is a buffered frame awaiting a stability vote: the
// tiles are already cropped (under the byte budget) so commit can
// replay without re-reading the composite.
type pendingFrame struct {
	tiles []*imagex.Image
}

// Demuxer splits an untrusted composite stream into per-participant
// sub-streams: grid inference from gutter runs, temporal stability
// voting with pending-frame replay, and content-based lane tracking
// across retiles and slot shuffles. Not safe for concurrent use.
type Demuxer struct {
	cfg  Config
	w, h int // canvas, locked on first accepted frame

	committed []Rect
	slotLane  []int // committed slot -> lane id

	pendingTiling []Rect
	pending       []pendingFrame

	lanes    map[int]*lane
	departed map[int]*lane
	nextLane int

	stats Stats
}

// NewDemuxer returns a demuxer with resolved config.
func NewDemuxer(cfg Config) *Demuxer {
	return &Demuxer{
		cfg:      cfg.withDefaults(),
		lanes:    map[int]*lane{},
		departed: map[int]*lane{},
	}
}

// Stats returns a snapshot of the cumulative counters.
func (d *Demuxer) Stats() Stats {
	s := d.stats
	s.Pending = len(d.pending)
	return s
}

// Tiling returns a copy of the committed tile rectangles.
func (d *Demuxer) Tiling() []Rect {
	out := make([]Rect, len(d.committed))
	copy(out, d.committed)
	return out
}

// Lanes returns the active lane ids in ascending order.
func (d *Demuxer) Lanes() []int {
	ids := make([]int, 0, len(d.lanes))
	for id := range d.lanes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Feed ingests one composite frame and returns what it released. A
// rejected frame (limits, geometry) returns an error and leaves the
// demuxer state untouched.
func (d *Demuxer) Feed(frame *imagex.Image) (*Update, error) {
	if frame == nil {
		return nil, fmt.Errorf("gallery: nil composite frame")
	}
	lim := d.cfg.Limits
	if frame.W > lim.MaxDim || frame.H > lim.MaxDim {
		d.stats.Rejected++
		return nil, fmt.Errorf("%w: composite %dx%d exceeds max dim %d", ErrLimit, frame.W, frame.H, lim.MaxDim)
	}
	if d.w == 0 {
		d.w, d.h = frame.W, frame.H
	} else if frame.W != d.w || frame.H != d.h {
		d.stats.Rejected++
		return nil, fmt.Errorf("%w: got %dx%d, canvas is %dx%d", ErrGeometry, frame.W, frame.H, d.w, d.h)
	}

	tiling, err := d.inferTiling(frame)
	if err != nil {
		d.stats.Rejected++
		return nil, err
	}
	d.stats.Frames++
	up := &Update{}

	switch {
	case rectsEqual(tiling, d.committed):
		// Stable tiling. Any pending candidate lost its vote.
		if len(d.pending) > 0 {
			up.DroppedFlaps += len(d.pending)
			d.clearPending()
		}
		tiles, err := cropTiles(frame, tiling)
		if err != nil {
			return nil, err
		}
		d.emit(up, tiles)
	case rectsEqual(tiling, d.pendingTiling):
		// Another vote for the candidate tiling; buffer the frame.
		tiles, err := cropTiles(frame, tiling)
		if err != nil {
			return nil, err
		}
		d.pending = append(d.pending, pendingFrame{tiles: tiles})
		if len(d.pending) >= d.cfg.VoteFrames {
			d.commit(up)
		}
	default:
		// A new candidate tiling; restart the vote.
		if len(d.pending) > 0 {
			up.DroppedFlaps += len(d.pending)
			d.clearPending()
		}
		tiles, err := cropTiles(frame, tiling)
		if err != nil {
			return nil, err
		}
		d.pendingTiling = tiling
		d.pending = append(d.pending, pendingFrame{tiles: tiles})
		if len(d.pending) >= d.cfg.VoteFrames {
			d.commit(up)
		}
	}
	d.stats.DroppedFlaps += up.DroppedFlaps
	return up, nil
}

func (d *Demuxer) clearPending() {
	d.pending = nil
	d.pendingTiling = nil
}

// commit promotes the pending tiling, reassigns lanes by content
// against the first buffered frame, and replays every buffered frame.
func (d *Demuxer) commit(up *Update) {
	d.committed = d.pendingTiling
	d.stats.Retiles++
	first := d.pending[0]
	d.rematch(up, first.tiles)
	for _, pf := range d.pending {
		d.emit(up, pf.tiles)
	}
	d.clearPending()
}

// emit attributes one frame's tiles to lanes and appends LaneFrames.
// On the fast path every tile still matches its assigned lane; any
// instability triggers a full content rematch (slot shuffles under the
// active-speaker variant land here).
func (d *Demuxer) emit(up *Update, tiles []*imagex.Image) {
	if len(tiles) != len(d.slotLane) {
		// Only reachable via commit, which rematches first.
		d.rematch(up, tiles)
	} else {
		for slot, img := range tiles {
			ln := d.lanes[d.slotLane[slot]]
			if ln == nil || !d.matches(img, ln) {
				d.rematch(up, tiles)
				break
			}
		}
	}
	for slot, img := range tiles {
		ln := d.lanes[d.slotLane[slot]]
		ln.last = img
		up.Frames = append(up.Frames, LaneFrame{Lane: ln.id, Slot: slot, Img: img})
	}
}

// matches reports whether a tile's content plausibly continues a lane.
func (d *Demuxer) matches(img *imagex.Image, ln *lane) bool {
	if img.W != ln.w || img.H != ln.h {
		return false
	}
	need := int(d.cfg.MinMatchFrac * float64(img.W*img.H))
	return ln.last.MatchCountTol(img, d.cfg.MatchTol) >= need
}

// matchScore is the fraction of matching pixels, or -1 on geometry
// mismatch.
func (d *Demuxer) matchScore(img *imagex.Image, ln *lane) float64 {
	if img.W != ln.w || img.H != ln.h {
		return -1
	}
	return float64(ln.last.MatchCountTol(img, d.cfg.MatchTol)) / float64(img.W*img.H)
}

type pairScore struct {
	slot, laneID int
	rejoin       bool
	score        float64
}

// rematch recomputes the slot→lane assignment from tile content:
// deterministic greedy over all (tile, lane) pairs sorted by score,
// ties broken by slot then lane id. Unmatched lanes leave; unmatched
// tiles rejoin a departed lane (when enabled and matching) or join as
// new lanes.
func (d *Demuxer) rematch(up *Update, tiles []*imagex.Image) {
	var pairs []pairScore
	score := func(slot int, img *imagex.Image, ln *lane, rejoin bool) {
		if s := d.matchScore(img, ln); s >= d.cfg.MinMatchFrac {
			pairs = append(pairs, pairScore{slot: slot, laneID: ln.id, rejoin: rejoin, score: s})
		}
	}
	for slot, img := range tiles {
		for _, ln := range d.lanes {
			score(slot, img, ln, false)
		}
		if d.cfg.Rejoin {
			for _, ln := range d.departed {
				score(slot, img, ln, true)
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.score != b.score {
			return a.score > b.score
		}
		if a.slot != b.slot {
			return a.slot < b.slot
		}
		return a.laneID < b.laneID
	})

	assigned := make([]int, len(tiles))
	for i := range assigned {
		assigned[i] = -1
	}
	usedLane := map[int]bool{}
	for _, p := range pairs {
		if assigned[p.slot] >= 0 || usedLane[p.laneID] {
			continue
		}
		assigned[p.slot] = p.laneID
		usedLane[p.laneID] = true
		if p.rejoin {
			ln := d.departed[p.laneID]
			delete(d.departed, p.laneID)
			d.lanes[p.laneID] = ln
			up.Rejoins = append(up.Rejoins, p.laneID)
			d.stats.Rejoins++
		}
	}

	// Lanes nobody claimed have left the composite.
	for _, id := range d.Lanes() {
		if !usedLane[id] {
			ln := d.lanes[id]
			delete(d.lanes, id)
			d.departed[id] = ln
			up.Leaves = append(up.Leaves, id)
			d.stats.Leaves++
		}
	}
	// Tiles nobody owns are new participants.
	for slot, img := range tiles {
		if assigned[slot] >= 0 {
			continue
		}
		id := d.nextLane
		d.nextLane++
		d.lanes[id] = &lane{id: id, w: img.W, h: img.H, last: img}
		assigned[slot] = id
		up.Joins = append(up.Joins, id)
		d.stats.Joins++
	}
	d.slotLane = assigned
}

// inferTiling detects the tile grid of one composite frame from gutter
// runs: the corner pixel gives the gutter color (the grammar keeps at
// least a one-pixel margin); fully-gutter pixel rows separate tile row
// bands, and per-band fully-gutter columns separate the tiles of that
// band, which handles centered short rows. Limits are enforced before
// any tile allocation.
func (d *Demuxer) inferTiling(frame *imagex.Image) ([]Rect, error) {
	lim := d.cfg.Limits
	g := frame.Pix[0]

	rowGutter := func(y int) bool {
		row := frame.Pix[y*frame.W : (y+1)*frame.W]
		for _, p := range row {
			if p != g {
				return false
			}
		}
		return true
	}
	colGutter := func(x, y0, y1 int) bool {
		for y := y0; y < y1; y++ {
			if frame.Pix[y*frame.W+x] != g {
				return false
			}
		}
		return true
	}

	var rects []Rect
	var total int64
	y := 0
	for y < frame.H {
		if rowGutter(y) {
			y++
			continue
		}
		// Band of non-gutter rows [y0, y1).
		y0 := y
		for y < frame.H && !rowGutter(y) {
			y++
		}
		y1 := y
		x := 0
		for x < frame.W {
			if colGutter(x, y0, y1) {
				x++
				continue
			}
			x0 := x
			for x < frame.W && !colGutter(x, y0, y1) {
				x++
			}
			w, h := x-x0, y1-y0
			if w < lim.MinTileDim || h < lim.MinTileDim {
				return nil, fmt.Errorf("%w: %dx%d tile below min dim %d", ErrLimit, w, h, lim.MinTileDim)
			}
			if len(rects) >= lim.MaxTiles {
				return nil, fmt.Errorf("%w: more than %d tiles", ErrLimit, lim.MaxTiles)
			}
			total += int64(w) * int64(h) * 3
			if total > lim.MaxTotalBytes {
				return nil, fmt.Errorf("%w: tile bytes %d exceed budget %d", ErrLimit, total, lim.MaxTotalBytes)
			}
			rects = append(rects, Rect{X: x0, Y: y0, W: w, H: h})
		}
	}
	return rects, nil
}

// cropTiles cuts the detected rects out of the frame. The rects passed
// in always come from inferTiling on this frame, so bounds and budgets
// already hold.
func cropTiles(frame *imagex.Image, tiling []Rect) ([]*imagex.Image, error) {
	tiles := make([]*imagex.Image, len(tiling))
	for i, r := range tiling {
		img := frame.Crop(r.X, r.Y, r.X+r.W, r.Y+r.H)
		if img == nil || img.W != r.W || img.H != r.H {
			return nil, fmt.Errorf("gallery: crop slot %d rect %+v out of %dx%d", i, r, frame.W, frame.H)
		}
		tiles[i] = img
	}
	return tiles, nil
}

func rectsEqual(a, b []Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
