// Package gallery models the gallery view of a multi-participant video
// call: a compositor that tiles N per-participant call recordings into
// one composite stream using the platform layout grammar (row-major
// grid with gutters and letterboxing, active-speaker promotion,
// pagination), and a tile demuxer that splits a composite stream back
// into per-participant sub-streams for fan-out into the live session
// layer.
//
// Kagan et al. ("Zooming Into Video Conferencing Privacy and Security
// Threats", PAPERS.md) attack gallery screenshots with dozens of
// participants per image; this package turns that observation into a
// workload: one meeting ingested as a single stream fans out to tens
// of supervised reconstruction sessions.
//
// The grammar never scales tiles: every tile is blitted at the
// participant stream's native geometry, with gutters and letterbox
// margins absorbing the slack. That choice is what makes the demux
// side provable — demux(compose(streams)) hands every session frames
// bit-identical to the source streams (DESIGN.md §16), which real
// gallery-crop attack tooling relies on too.
package gallery

import (
	"fmt"
	"math"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// Rect is one tile's placement on the composite canvas.
type Rect struct {
	X, Y, W, H int
}

// In reports whether the rect lies fully inside a w×h canvas.
func (r Rect) In(w, h int) bool {
	return r.X >= 0 && r.Y >= 0 && r.W > 0 && r.H > 0 && r.X+r.W <= w && r.Y+r.H <= h
}

// Variant selects the layout grammar variant.
type Variant int

const (
	// VariantGrid is the plain row-major gallery grid.
	VariantGrid Variant = iota
	// VariantActiveSpeaker promotes a rotating "speaker" to slot 0
	// (top-left), re-flowing everyone else — the slot shuffle real
	// platforms perform when the loudest participant changes. Tiles are
	// never resized, so the shuffle is purely an ordering change the
	// demuxer must track by content.
	VariantActiveSpeaker
)

// String names the variant for logs and goldens.
func (v Variant) String() string {
	switch v {
	case VariantGrid:
		return "grid"
	case VariantActiveSpeaker:
		return "active-speaker"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Spec is the platform layout grammar: everything needed to place n
// unscaled tiles deterministically on a fixed canvas.
type Spec struct {
	// TileW, TileH is the (shared) participant stream geometry
	// (required).
	TileW, TileH int
	// Gutter is the spacing between adjacent tiles in pixels (<=0: 4).
	Gutter int
	// Margin is the minimum outer border around the grid (<=0: Gutter).
	// The canvas always keeps at least one gutter-colored border pixel,
	// which is what anchors the demuxer's gutter-color inference.
	Margin int
	// GutterColor fills gutters, margins and letterbox slack (zero
	// value: dark platform gray 32/32/32 — never pure black, so a black
	// tile interior still contrasts at the boundary in realistic
	// content).
	GutterColor imagex.RGB
	// Capacity sizes the canvas: the grid for Capacity tiles fixes the
	// composite geometry for the whole meeting, and smaller layouts are
	// centered (letterboxed) inside it, so joins and leaves re-tile the
	// content without resizing the stream (<=0: Compose derives the
	// meeting's maximum concurrent participant count).
	Capacity int
	// PageSize caps tiles shown per frame (0: no pagination). With more
	// active participants than PageSize, pages rotate round-robin every
	// PageEvery frames; paged-out participants keep advancing off
	// screen, exactly like a real client.
	PageSize int
	// PageEvery is the page rotation period in frames (<=0: 30).
	PageEvery int
	// Variant selects grid or active-speaker slot ordering.
	Variant Variant
	// SpeakerEvery is the active-speaker rotation period in frames
	// (<=0: 25).
	SpeakerEvery int
	// Seed drives the deterministic speaker rotation sequence.
	Seed int64
}

// withDefaults resolves the grammar defaults.
func (s Spec) withDefaults() Spec {
	if s.Gutter <= 0 {
		s.Gutter = 4
	}
	if s.Margin <= 0 {
		s.Margin = s.Gutter
	}
	if s.GutterColor == (imagex.RGB{}) {
		s.GutterColor = imagex.RGB{R: 32, G: 32, B: 32}
	}
	if s.PageEvery <= 0 {
		s.PageEvery = 30
	}
	if s.SpeakerEvery <= 0 {
		s.SpeakerEvery = 25
	}
	return s
}

// validate checks the grammar invariants for a resolved spec.
func (s Spec) validate() error {
	if s.TileW <= 0 || s.TileH <= 0 {
		return fmt.Errorf("gallery: tile geometry %dx%d", s.TileW, s.TileH)
	}
	if s.Capacity <= 0 {
		return fmt.Errorf("gallery: capacity %d", s.Capacity)
	}
	return nil
}

// gridShape returns the row-major grid shape for n tiles: cols is
// ceil(sqrt(n)) — the squarish grid every major platform converges on —
// and rows is ceil(n/cols).
func gridShape(n int) (cols, rows int) {
	if n <= 0 {
		return 0, 0
	}
	cols = int(math.Ceil(math.Sqrt(float64(n))))
	rows = (n + cols - 1) / cols
	return cols, rows
}

// Canvas returns the composite geometry: the grid for Capacity tiles
// plus margins. Every layout the spec produces fits this canvas.
func (s Spec) Canvas() (w, h int) {
	s = s.withDefaults()
	cols, rows := gridShape(s.Capacity)
	w = 2*s.Margin + cols*s.TileW + (cols-1)*s.Gutter
	h = 2*s.Margin + rows*s.TileH + (rows-1)*s.Gutter
	return w, h
}

// LayoutFor places n tiles on the canvas in slot order: row-major, top
// to bottom, left to right, with a centered (letterboxed) grid and a
// centered final row when it is short — the familiar gallery shape.
// n must be in [1, Capacity].
func (s Spec) LayoutFor(n int) ([]Rect, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	if n < 1 || n > s.Capacity {
		return nil, fmt.Errorf("gallery: layout for %d tiles on a capacity-%d canvas", n, s.Capacity)
	}
	canvasW, canvasH := s.Canvas()
	cols, rows := gridShape(n)
	gridW := cols*s.TileW + (cols-1)*s.Gutter
	gridH := rows*s.TileH + (rows-1)*s.Gutter
	offX := (canvasW - gridW) / 2
	offY := (canvasH - gridH) / 2
	rects := make([]Rect, 0, n)
	for r := 0; r < rows; r++ {
		k := cols
		if left := n - r*cols; left < k {
			k = left
		}
		rowW := k*s.TileW + (k-1)*s.Gutter
		x0 := offX + (gridW-rowW)/2
		y := offY + r*(s.TileH+s.Gutter)
		for c := 0; c < k; c++ {
			rects = append(rects, Rect{
				X: x0 + c*(s.TileW+s.Gutter),
				Y: y,
				W: s.TileW,
				H: s.TileH,
			})
		}
	}
	return rects, nil
}

// speakerAt returns the deterministic active-speaker ordinal among n
// active participants at meeting frame t — a multiplicative hash of
// the rotation epoch and the seed, so the sequence is reproducible and
// jumps between slots rather than cycling predictably.
func (s Spec) speakerAt(t, n int) int {
	if n <= 1 {
		return 0
	}
	epoch := uint64(t / s.SpeakerEvery)
	x := (epoch + uint64(s.Seed)) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	return int(x % uint64(n))
}
