package gallery

import (
	"testing"

	"github.com/bgbuster/bgbuster/internal/imagex"
)

// The fuzz input is a tiny composite-builder program so mutations stay
// in the space of grid-like frames instead of pixel noise:
//
//	[0] canvas width seedlet   (24 + b%104)
//	[1] canvas height seedlet  (24 + b%104)
//	[2] frame count            (1 + b%5)
//	[3] gutter gray level
//	then per frame up to 6 rect ops of 5 bytes each:
//	  x, y, w, h seedlets (mod canvas) + color seedlet
//
// Rects are painted over a gutter-colored canvas; whatever grid (or
// non-grid) that yields is fed to a bounded demuxer.
const (
	fuzzOpsPerFrame = 6
	fuzzOpBytes     = 5
)

func framesFromFuzz(data []byte) []*imagex.Image {
	if len(data) < 4 {
		return nil
	}
	w := 24 + int(data[0])%104
	h := 24 + int(data[1])%104
	n := 1 + int(data[2])%5
	g := imagex.RGB{R: data[3], G: data[3], B: data[3]}
	rest := data[4:]
	frames := make([]*imagex.Image, 0, n)
	for fi := 0; fi < n; fi++ {
		f := imagex.NewFilled(w, h, g)
		for op := 0; op < fuzzOpsPerFrame; op++ {
			base := (fi*fuzzOpsPerFrame + op) * fuzzOpBytes
			if base+fuzzOpBytes > len(rest) {
				break
			}
			b := rest[base : base+fuzzOpBytes]
			x, y := int(b[0])%w, int(b[1])%h
			rw, rh := 1+int(b[2])%w, 1+int(b[3])%h
			c := imagex.RGB{R: b[4], G: b[4] ^ 0x5a, B: 255 - b[4]}
			for yy := y; yy < y+rh && yy < h; yy++ {
				for xx := x; xx < x+rw && xx < w; xx++ {
					f.Pix[yy*w+xx] = c
				}
			}
		}
		frames = append(frames, f)
	}
	return frames
}

// fuzzSeed builds a seed program: one canvas, then per frame a list of
// (x, y, w, h, color) rects.
func fuzzSeed(w, h, gutter byte, frames [][][5]byte) []byte {
	data := []byte{w, h, byte(len(frames) - 1), gutter}
	for _, ops := range frames {
		padded := make([][5]byte, fuzzOpsPerFrame)
		copy(padded, ops)
		for _, op := range padded {
			data = append(data, op[0], op[1], op[2], op[3], op[4])
		}
	}
	return data
}

func FuzzGallerySplit(f *testing.F) {
	// A clean 2x2 grid, stable across frames.
	grid22 := [][5]byte{
		{4, 4, 20, 20, 200}, {30, 4, 20, 20, 100},
		{4, 30, 20, 20, 60}, {30, 30, 20, 20, 250},
	}
	f.Add(fuzzSeed(40, 40, 32, [][][5]byte{grid22, grid22, grid22}))
	// Gutter-colored tile interiors: two tiles painted exactly gutter
	// gray vanish into the background.
	f.Add(fuzzSeed(40, 40, 32, [][][5]byte{{
		{4, 4, 20, 20, 32}, {30, 4, 20, 20, 100},
		{4, 30, 20, 20, 32}, {30, 30, 20, 20, 250},
	}}))
	// Off-by-one grid: tiles misaligned so no clean gutter row remains.
	f.Add(fuzzSeed(40, 40, 16, [][][5]byte{{
		{4, 4, 21, 20, 200}, {29, 5, 20, 20, 100},
		{5, 29, 20, 21, 60}, {30, 30, 19, 20, 250},
	}}))
	// 1xN degenerate layout: a single row of slivers.
	f.Add(fuzzSeed(96, 24, 8, [][][5]byte{{
		{2, 4, 10, 12, 200}, {16, 4, 10, 12, 150},
		{30, 4, 10, 12, 100}, {44, 4, 10, 12, 50},
		{58, 4, 10, 12, 220}, {72, 4, 10, 12, 20},
	}}))
	// Resize flapping: the tiling alternates every frame and must
	// never commit.
	f.Add(fuzzSeed(40, 40, 32, [][][5]byte{
		{{4, 4, 20, 20, 200}, {30, 4, 20, 20, 100}},
		{{4, 4, 20, 20, 200}, {30, 4, 20, 20, 100}, {4, 30, 20, 20, 60}},
		{{4, 4, 20, 20, 200}, {30, 4, 20, 20, 100}},
		{{4, 4, 20, 20, 200}, {30, 4, 20, 20, 100}, {4, 30, 20, 20, 60}},
	}))
	// Whole canvas one tile (no margin left anywhere).
	f.Add(fuzzSeed(40, 40, 0, [][][5]byte{{{0, 0, 255, 255, 128}}}))
	// Degenerate: all gutter, no tiles at all.
	f.Add(fuzzSeed(64, 64, 200, [][][5]byte{{}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		frames := framesFromFuzz(data)
		if len(frames) == 0 {
			return
		}
		lim := SplitLimits{MaxDim: 256, MaxTiles: 16, MinTileDim: 4, MaxTotalBytes: 1 << 20, MaxPendingFrames: 4}
		cfg := Config{Limits: lim}
		d := NewDemuxer(cfg.withDefaults())
		var lastAccepted *imagex.Image
		for _, fr := range frames {
			up, err := d.Feed(fr)
			if err != nil {
				// Rejected: budgets held, state intact; keep going.
				continue
			}
			lastAccepted = fr
			// Allocation bounds: every released frame's tiles fit the
			// byte budget, and a Feed can release at most the pending
			// buffer's worth of frames.
			var total int64
			for _, lf := range up.Frames {
				total += int64(lf.Img.W) * int64(lf.Img.H) * 3
			}
			if max := lim.MaxTotalBytes * int64(lim.MaxPendingFrames); total > max {
				t.Fatalf("released %d tile bytes, budget %d", total, max)
			}
			tiling := d.Tiling()
			if len(tiling) > lim.MaxTiles {
				t.Fatalf("committed %d tiles, cap %d", len(tiling), lim.MaxTiles)
			}
			for i, r := range tiling {
				if !r.In(fr.W, fr.H) {
					t.Fatalf("committed rect %d %+v outside %dx%d", i, r, fr.W, fr.H)
				}
				if r.W < lim.MinTileDim || r.H < lim.MinTileDim {
					t.Fatalf("committed rect %d %+v below min dim", i, r)
				}
				for j, o := range tiling[:i] {
					if r.X < o.X+o.W && o.X < r.X+r.W && r.Y < o.Y+o.H && o.Y < r.Y+r.H {
						t.Fatalf("committed rects %d and %d overlap: %+v %+v", i, j, r, o)
					}
				}
			}
			if len(d.Lanes()) != len(tiling) && len(d.pending) == 0 {
				t.Fatalf("%d lanes for %d committed tiles with no pending vote", len(d.Lanes()), len(tiling))
			}
		}
		if lastAccepted == nil {
			return
		}
		// Accepted ⇒ stable tiling: replaying the last accepted frame
		// settles, after which identical frames cause no retiles,
		// flaps, joins or leaves.
		for i := 0; i < d.cfg.VoteFrames+1; i++ {
			if _, err := d.Feed(lastAccepted); err != nil {
				t.Fatalf("settling feed %d of previously accepted frame rejected: %v", i, err)
			}
		}
		before := d.Stats()
		up, err := d.Feed(lastAccepted)
		if err != nil {
			t.Fatalf("stable refeed rejected: %v", err)
		}
		after := d.Stats()
		if after.Retiles != before.Retiles || after.DroppedFlaps != before.DroppedFlaps ||
			after.Joins != before.Joins || after.Leaves != before.Leaves {
			t.Fatalf("identical frame destabilised tiling: before %+v after %+v", before, after)
		}
		if len(up.Joins)+len(up.Leaves)+len(up.Rejoins) != 0 {
			t.Fatalf("identical frame produced membership churn: %+v", up)
		}
	})
}
