package session

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/segment"
)

const testW, testH = 32, 24

// testDict is a two-candidate known-image dictionary; calls built by
// testFrames use "flat" as their virtual background.
func testDict() map[string]*imagex.Image {
	return map[string]*imagex.Image{
		"flat":  imagex.NewFilled(testW, testH, imagex.RGB{R: 20, G: 120, B: 220}),
		"other": imagex.NewFilled(testW, testH, imagex.RGB{R: 200, G: 10, B: 10}),
	}
}

// testFrames builds n frames that are pure "flat" VB except a leaked
// background rectangle, plus empty oracle silhouettes: every pixel of
// the rectangle far enough from the VB is a genuine residue.
func testFrames(n int) ([]*imagex.Image, []*imagex.Mask) {
	frames := make([]*imagex.Image, n)
	sils := make([]*imagex.Mask, n)
	for i := range frames {
		f := imagex.NewFilled(testW, testH, imagex.RGB{R: 20, G: 120, B: 220})
		for y := 4; y < 16; y++ {
			for x := 8; x < 24; x++ {
				f.Set(x, y, imagex.RGB{R: 240, G: 240, B: 60})
			}
		}
		frames[i] = f
		sils[i] = imagex.NewMask(testW, testH)
	}
	return frames, sils
}

func testOpts() core.Options {
	o := core.DefaultOptions()
	o.KnownImages = testDict()
	o.Segmenter = segment.OracleSegmenter{}
	o.ColorRefine = false
	return o
}

// slowSegmenter delays every frame so queues can fill up.
type slowSegmenter struct{ d time.Duration }

func (s slowSegmenter) Segment(frame *imagex.Image, oracle *imagex.Mask) *imagex.Mask {
	time.Sleep(s.d)
	return segment.OracleSegmenter{}.Segment(frame, oracle)
}

// panicSegmenter poisons a session on its first processed frame.
type panicSegmenter struct{}

func (panicSegmenter) Segment(frame *imagex.Image, oracle *imagex.Mask) *imagex.Mask {
	panic("segmenter exploded")
}

func TestSessionLifecycle(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	s, err := m.Open("call-1", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	frames, sils := testFrames(15)
	for i := range frames {
		if err := s.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.FramesFed != 15 || st.FramesProcessed != 15 || st.FramesDropped != 0 || st.FramesRejected != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !st.Identified || st.VBName != "flat" {
		t.Fatalf("identification missing: %+v", st)
	}
	if st.IdentifyLatency <= 0 {
		t.Fatal("identify-pin latency not recorded")
	}
	if st.FeedLatency.Count != 15 {
		t.Fatalf("feed latency count = %d", st.FeedLatency.Count)
	}
	if st.CoveragePct <= 0 {
		t.Fatal("no coverage on a leaking call")
	}
	if !st.Finalized {
		t.Fatal("not finalized")
	}
	snap := s.Snapshot()
	if snap.Coverage.Count() == 0 || snap.VBName != "flat" {
		t.Fatalf("snapshot empty: coverage=%d vb=%q", snap.Coverage.Count(), snap.VBName)
	}
	series := s.CoverageSeries()
	if len(series) != 15 || series[len(series)-1].V <= 0 {
		t.Fatalf("coverage series = %d samples", len(series))
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("session not removed: %d open", m.Len())
	}
	ms := m.Stats()
	if ms.Opened != 1 || ms.Closed != 1 || ms.Open != 0 {
		t.Fatalf("manager stats = %+v", ms)
	}
	// The handle stays readable after Close.
	if s.Snapshot().Coverage.Count() == 0 {
		t.Fatal("snapshot unreadable after Close")
	}
}

// TestSessionShortCallFinalize mirrors the core short-call regression
// at the session layer: fewer frames than the identification window
// must still produce a non-empty reconstruction after Finalize.
func TestSessionShortCallFinalize(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	s, err := m.Open("short", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	frames, sils := testFrames(4) // < DefaultIdentifyAfter
	for i := range frames {
		if err := s.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if !st.Identified || st.VBName != "flat" {
		t.Fatalf("short call not pinned: %+v", st)
	}
	if s.Snapshot().Coverage.Count() == 0 {
		t.Fatal("short call reconstruction empty")
	}
}

func TestManagerOpenErrors(t *testing.T) {
	m := NewManager(Config{})
	if _, err := m.Open("dup", testW, testH, testOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("dup", testW, testH, testOpts()); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate id error = %v", err)
	}
	bad := testOpts()
	bad.Segmenter = nil
	if _, err := m.Open("bad", testW, testH, bad); err == nil {
		t.Fatal("nil segmenter accepted")
	}
	m.Close()
	if _, err := m.Open("late", testW, testH, testOpts()); !errors.Is(err, ErrClosed) {
		t.Fatalf("open on closed manager = %v", err)
	}
	m.Close() // idempotent
}

func TestSessionDropOldestPolicy(t *testing.T) {
	m := NewManager(Config{QueueDepth: 2})
	defer m.Close()
	opts := testOpts()
	opts.Segmenter = slowSegmenter{d: 5 * time.Millisecond}
	s, err := m.Open("slow", testW, testH, opts)
	if err != nil {
		t.Fatal(err)
	}
	frames, sils := testFrames(40)
	for i := range frames {
		if err := s.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FramesDropped == 0 {
		t.Fatal("a 2-deep queue under a 5ms/frame reconstructor must drop frames")
	}
	if st.FramesDropped+st.FramesProcessed+st.FramesRejected != st.FramesFed {
		t.Fatalf("frame accounting leaks: %+v", st)
	}
	if s.Snapshot().Coverage.Count() == 0 {
		t.Fatal("dropped frames must not empty the reconstruction")
	}
}

func TestSessionMalformedFramesDegradeGracefully(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	s, err := m.Open("mixed", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	frames, sils := testFrames(12)
	for i := range frames {
		if err := s.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-call geometry change and a nil oracle: rejected, not fatal.
	if err := s.Feed(imagex.New(8, 8), imagex.NewMask(8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Feed(imagex.New(testW, testH), nil); err != nil {
		t.Fatal(err)
	}
	more, moreSils := testFrames(3)
	for i := range more {
		if err := s.Feed(more[i], moreSils[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FramesRejected != 2 {
		t.Fatalf("rejected = %d, want 2", st.FramesRejected)
	}
	if st.FramesProcessed != 15 {
		t.Fatalf("processed = %d, want 15", st.FramesProcessed)
	}
	if s.Snapshot().Coverage.Count() == 0 {
		t.Fatal("malformed frames emptied the reconstruction")
	}
}

func TestSessionPanicIsolation(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()

	bad := testOpts()
	bad.Segmenter = panicSegmenter{}
	poisoned, err := m.Open("poisoned", testW, testH, bad)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := m.Open("healthy", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}

	frames, sils := testFrames(12)
	for i := range frames {
		_ = poisoned.Feed(frames[i], sils[i])
		if err := healthy.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := poisoned.Finalize(); !errors.Is(err, ErrFailed) {
		t.Fatalf("poisoned Finalize = %v, want ErrFailed", err)
	}
	if poisoned.Failure() == "" {
		t.Fatal("panic message lost")
	}
	if err := poisoned.Feed(frames[0], sils[0]); !errors.Is(err, ErrFailed) {
		t.Fatalf("Feed after panic = %v, want ErrFailed", err)
	}
	if err := healthy.Finalize(); err != nil {
		t.Fatalf("healthy session infected: %v", err)
	}
	if healthy.Snapshot().Coverage.Count() == 0 {
		t.Fatal("healthy session lost its reconstruction")
	}
	if got := m.Stats().Panics; got != 1 {
		t.Fatalf("manager panics = %d, want 1", got)
	}
}

func TestManagerIdleEviction(t *testing.T) {
	m := NewManager(Config{IdleTimeout: 60 * time.Millisecond, SweepEvery: 10 * time.Millisecond})
	defer m.Close()
	s, err := m.Open("idle", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	frames, sils := testFrames(3)
	for i := range frames {
		if err := s.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if m.Len() != 0 {
		t.Fatal("idle session not evicted")
	}
	if !s.Evicted() {
		t.Fatal("session not marked evicted")
	}
	if err := s.Feed(frames[0], sils[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Feed after eviction = %v, want ErrClosed", err)
	}
	if got := m.Stats().Evicted; got != 1 {
		t.Fatalf("evicted counter = %d", got)
	}
	// The evicted session finalized: its short-call reconstruction is
	// pinned and readable.
	if !s.Stats().Finalized || s.Snapshot().Coverage.Count() == 0 {
		t.Fatal("evicted session not finalized with a readable snapshot")
	}
}

// TestManagerConcurrentSessions is the -race stress required by the
// issue: ≥8 live sessions fed concurrently while observers poll stats,
// with malformed frames mixed in.
func TestManagerConcurrentSessions(t *testing.T) {
	const nSessions, nFrames = 10, 40
	m := NewManager(Config{QueueDepth: 8})
	defer m.Close()

	sessions := make([]*Session, nSessions)
	for i := range sessions {
		s, err := m.Open(fmt.Sprintf("call-%02d", i), testW, testH, testOpts())
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}

	stop := make(chan struct{})
	var observers sync.WaitGroup
	for o := 0; o < 3; o++ {
		observers.Add(1)
		go func() {
			defer observers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ms := m.Stats()
				if ms.Open > nSessions {
					t.Error("impossible open count")
					return
				}
				for _, s := range sessions {
					_ = s.Snapshot()
					_ = s.CoverageSeries()
				}
			}
		}()
	}

	var feeders sync.WaitGroup
	for _, s := range sessions {
		feeders.Add(1)
		go func(s *Session) {
			defer feeders.Done()
			frames, sils := testFrames(nFrames)
			for i := range frames {
				if i%13 == 7 {
					_ = s.Feed(imagex.New(3, 3), imagex.NewMask(3, 3)) // malformed
				}
				if err := s.Feed(frames[i], sils[i]); err != nil {
					t.Errorf("feed %s: %v", s.ID(), err)
					return
				}
			}
			if err := s.Finalize(); err != nil {
				t.Errorf("finalize %s: %v", s.ID(), err)
			}
		}(s)
	}
	feeders.Wait()
	close(stop)
	observers.Wait()

	for _, s := range sessions {
		st := s.Stats()
		if st.FramesDropped+st.FramesProcessed+st.FramesRejected != st.FramesFed {
			t.Fatalf("%s accounting leaks: %+v", s.ID(), st)
		}
		if s.Snapshot().Coverage.Count() == 0 {
			t.Fatalf("%s reconstructed nothing", s.ID())
		}
		if !st.Identified {
			t.Fatalf("%s never identified", s.ID())
		}
	}
	ms := m.Stats()
	if ms.Opened != nSessions || ms.Panics != 0 {
		t.Fatalf("manager stats = %+v", ms)
	}
}
