package session

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/bgbuster/bgbuster/internal/compositor"
	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/faultinject"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/segment"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// The chaos suite drives the session layer with seeded fault injection
// (internal/faultinject) over the committed golden fixtures and checks
// the resilience invariants of DESIGN.md §12: zero panics, every
// injected fault accounted for in the per-stage counters, coverage
// within the documented bound of a clean run, and durability trouble
// degrading — never stopping — the reconstruction.

const chaosW, chaosH = 32, 24 // geometry of the golden fixtures

// chaosSil replicates core's goldenSil: the oracle silhouette of golden
// frame i is a 10-wide block sweeping the lower half.
func chaosSil(i int) *imagex.Mask {
	m := imagex.NewMask(chaosW, chaosH)
	x0 := 12 + i%6
	for y := chaosH / 2; y < chaosH; y++ {
		for x := x0; x < x0+10 && x < chaosW; x++ {
			m.Set(x, y, true)
		}
	}
	return m
}

// chaosOpts mirrors core's goldenOpts for the known-image fixture.
func chaosOpts() core.Options {
	o := core.DefaultOptions()
	o.Segmenter = segment.OracleSegmenter{}
	o.Mode = core.VBKnownImage
	o.ColorRefine = false
	o.KnownImages = map[string]*imagex.Image{
		"beach":  compositor.BuiltinImage("beach", chaosW, chaosH),
		"aurora": compositor.BuiltinImage("aurora", chaosW, chaosH),
	}
	return o
}

// loadGoldenCall loads the committed golden-known fixture and repeats
// it `passes` times (with matching oracles) so the injected fault rates
// act on a statistically meaningful frame count.
func loadGoldenCall(t *testing.T, passes int) ([]*imagex.Image, []*imagex.Mask) {
	t.Helper()
	v, err := vidstream.Load(filepath.Join("..", "core", "testdata", "golden-known.bbv"))
	if err != nil {
		t.Fatalf("golden fixture: %v", err)
	}
	if w, h := v.Size(); w != chaosW || h != chaosH {
		t.Fatalf("golden fixture geometry %dx%d", w, h)
	}
	var frames []*imagex.Image
	var sils []*imagex.Mask
	for p := 0; p < passes; p++ {
		for i := range v.Frames {
			frames = append(frames, v.Frames[i])
			sils = append(sils, chaosSil(i))
		}
	}
	return frames, sils
}

// runChaosSession feeds every delivered frame through one session and
// finalizes it. Injected stall Delays are deliberately not slept — the
// injector is wall-clock free and so is the test.
func runChaosSession(t *testing.T, m *Manager, id string, delivered []faultinject.Frame) *Session {
	t.Helper()
	s, err := m.Open(id, chaosW, chaosH, chaosOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range delivered {
		if err := s.Feed(f.Img, f.Oracle); err != nil {
			t.Fatalf("feed: %v", err)
		}
	}
	if err := s.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return s
}

// TestChaosInvariantGoldenStream is the headline acceptance scenario:
// the golden call under seeded 20% frame drop + 5% frame corruption
// must complete with zero panics, reconcile every injected fault
// against the session counters, and claim at least half the coverage of
// a clean run (the documented bound; see DESIGN.md §12).
func TestChaosInvariantGoldenStream(t *testing.T) {
	frames, sils := loadGoldenCall(t, 3)

	// Clean reference run.
	mClean := NewManager(Config{MaxImpulseNoise: 0.02, QueueDepth: len(frames) + 1})
	defer mClean.Close()
	var clean []faultinject.Frame
	for i := range frames {
		clean = append(clean, faultinject.Frame{Img: frames[i], Oracle: sils[i]})
	}
	sClean := runChaosSession(t, mClean, "clean", clean)
	cleanStats := sClean.Stats()
	cleanCov := sClean.Snapshot().Coverage.Count()
	if cleanCov == 0 || cleanStats.FramesRejected != 0 {
		t.Fatalf("clean run: coverage=%d rejected=%d", cleanCov, cleanStats.FramesRejected)
	}

	// Chaos run. CorruptFrac 0.08 is comfortably above the 0.02 gate, so
	// every corrupted frame must be screened out; Dup is zero so gated
	// deliveries map 1:1 to corrupted input frames.
	inj := faultinject.New(faultinject.Profile{
		Seed:        42,
		Drop:        0.20,
		Corrupt:     0.05,
		CorruptFrac: 0.08,
	})
	delivered := inj.Apply(frames, sils)
	m := NewManager(Config{MaxImpulseNoise: 0.02, QueueDepth: len(delivered) + 1})
	defer m.Close()
	s := runChaosSession(t, m, "chaos", delivered)

	ctr := inj.Counters()
	if ctr.Dropped == 0 || ctr.Corrupted == 0 {
		t.Fatalf("seed 42 injected no faults to observe: %v", ctr)
	}
	st := s.Stats()

	// Zero panics, and the session must not have failed.
	if p := m.Stats().Panics; p != 0 {
		t.Fatalf("%d worker panics under chaos", p)
	}
	if st.Health == Failed {
		t.Fatalf("session failed under recoverable chaos: %v", st.HealthReasons)
	}

	// Fault accounting: everything the injector emitted was fed; nothing
	// was lost in the queue; fed = rejected + processed; every rejection
	// is a gate rejection of a corrupted delivery.
	if st.FramesFed != uint64(ctr.Emitted) {
		t.Fatalf("fed %d frames, injector emitted %d", st.FramesFed, ctr.Emitted)
	}
	if st.FramesDropped != 0 {
		t.Fatalf("session dropped %d frames with an ample queue", st.FramesDropped)
	}
	if st.FramesFed != st.FramesRejected+st.FramesProcessed {
		t.Fatalf("accounting identity broken: fed=%d rejected=%d processed=%d",
			st.FramesFed, st.FramesRejected, st.FramesProcessed)
	}
	if st.FramesGated != st.FramesRejected {
		t.Fatalf("non-gate rejections under pixel-corruption-only chaos: gated=%d rejected=%d",
			st.FramesGated, st.FramesRejected)
	}
	if st.FramesGated != uint64(ctr.Corrupted) {
		t.Fatalf("gate caught %d frames, injector corrupted %d (%v)", st.FramesGated, ctr.Corrupted, ctr)
	}

	// The reconstruction still identifies the VB and lands within the
	// documented coverage bound: ≥ 50% of the clean run.
	if !st.Identified || st.VBName != "beach" {
		t.Fatalf("chaos run lost identification: %+v", st)
	}
	cov := s.Snapshot().Coverage.Count()
	if cov*2 < cleanCov {
		t.Fatalf("chaos coverage %d below bound (half of clean %d)", cov, cleanCov)
	}
	t.Logf("chaos: %v; coverage %d/%d clean", ctr, cov, cleanCov)
}

// TestChaosDeterministicReplay pins the reproducibility contract: two
// runs with the same profile seed produce identical fault sequences and
// identical session counters.
func TestChaosDeterministicReplay(t *testing.T) {
	frames, sils := loadGoldenCall(t, 2)
	p := faultinject.Profile{Seed: 7, Drop: 0.15, Corrupt: 0.1, CorruptFrac: 0.08, Dup: 0.05}

	run := func(id string) (faultinject.Counters, Snapshot) {
		inj := faultinject.New(p)
		delivered := inj.Apply(frames, sils)
		m := NewManager(Config{MaxImpulseNoise: 0.02, QueueDepth: len(delivered) + 1})
		defer m.Close()
		s := runChaosSession(t, m, id, delivered)
		return inj.Counters(), s.Stats()
	}
	ctrA, stA := run("a")
	ctrB, stB := run("b")
	if ctrA != ctrB {
		t.Fatalf("same seed, different faults:\n%v\n%v", ctrA, ctrB)
	}
	if stA.FramesFed != stB.FramesFed || stA.FramesGated != stB.FramesGated ||
		stA.FramesProcessed != stB.FramesProcessed || stA.FramesRejected != stB.FramesRejected {
		t.Fatalf("same seed, different session counters:\n%+v\n%+v", stA, stB)
	}
}

// TestChaosFailingStoreDegradesNotStops is the durability half of the
// acceptance criteria: a checkpoint store that always fails must leave
// the session Degraded with its retries exhausted and counted — while
// frame processing continues untouched.
func TestChaosFailingStoreDegradesNotStops(t *testing.T) {
	inner := NewMemStore()
	flaky := faultinject.NewFlakyStore(inner, faultinject.StoreProfile{Seed: 1, SaveFail: 1})
	m := NewManager(Config{
		Checkpoints:          flaky,
		CheckpointInterval:   time.Nanosecond,
		CheckpointRetries:    3,
		CheckpointBackoff:    time.Microsecond,
		CheckpointBackoffMax: 10 * time.Microsecond,
	})
	defer m.Close()
	s, err := m.Open("doomed-store", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	frames, sils := testFrames(8)
	for i := range frames {
		if err := s.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Finalize(); err != nil {
		t.Fatalf("a broken store must not fail the session: %v", err)
	}

	st := s.Stats()
	if st.FramesProcessed != uint64(len(frames)) {
		t.Fatalf("processed %d/%d frames; checkpoint failures stopped the stream", st.FramesProcessed, len(frames))
	}
	if st.Health != Degraded {
		t.Fatalf("health = %v, want degraded (reasons %v)", st.Health, st.HealthReasons)
	}
	if len(st.HealthReasons) == 0 {
		t.Fatal("degraded with no recorded reason")
	}
	if st.Checkpoints != 0 {
		t.Fatalf("%d checkpoints succeeded on an always-failing store", st.Checkpoints)
	}
	if st.CheckpointErrors == 0 || st.CheckpointRetries == 0 || st.CheckpointFailStreak == 0 {
		t.Fatalf("retry telemetry not recorded: %+v", st)
	}
	// Every failed attempt the session saw is an injected fault the store
	// counted, and each cycle burns CheckpointRetries attempts.
	sc := flaky.StoreCounters()
	if sc.InjectedSaveErrs != st.CheckpointErrors {
		t.Fatalf("store injected %d save errors, session counted %d", sc.InjectedSaveErrs, st.CheckpointErrors)
	}
	if st.CheckpointErrors%3 != 0 {
		t.Fatalf("attempts %d not a whole number of 3-attempt cycles", st.CheckpointErrors)
	}
	if ids, _ := inner.List(); len(ids) != 0 {
		t.Fatalf("inner store holds %v despite every save failing", ids)
	}
	if snap := m.Stats(); snap.Degraded != 1 || snap.DegradedNow != 1 {
		t.Fatalf("manager health totals: %+v", snap)
	}
}

// TestChaosConcurrentSessionsRace is the fleet stress (run it with
// -race): ten concurrent sessions, each with its own seeded injector,
// all checkpointing through one flaky store. Every session must end in
// a terminal state with its intake drained, and the fleet totals must
// reconcile with the injected-fault counters.
func TestChaosConcurrentSessionsRace(t *testing.T) {
	frames, sils := loadGoldenCall(t, 2)
	inner := NewMemStore()
	flaky := faultinject.NewFlakyStore(inner, faultinject.StoreProfile{
		Seed:         99,
		SaveFail:     0.4,
		PartialWrite: 0.2,
	})
	m := NewManager(Config{
		Checkpoints:          flaky,
		CheckpointInterval:   time.Millisecond,
		CheckpointRetries:    2,
		CheckpointBackoff:    time.Microsecond,
		CheckpointBackoffMax: 10 * time.Microsecond,
		MaxImpulseNoise:      0.02,
		StallTimeout:         time.Minute, // armed, but nothing here stalls that long
		CloseTimeout:         30 * time.Second,
		QueueDepth:           2 * len(frames),
	})

	const nSessions = 10
	injectors := make([]*faultinject.Injector, nSessions)
	delivered := make([][]faultinject.Frame, nSessions)
	sessions := make([]*Session, nSessions)
	for i := range sessions {
		s, err := m.Open(fmt.Sprintf("chaos-%d", i), chaosW, chaosH, chaosOpts())
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
		injectors[i] = faultinject.New(faultinject.Profile{
			Seed:        int64(1000 + i), // decorrelated fault sequences
			Drop:        0.15,
			Dup:         0.05,
			Reorder:     0.1,
			Corrupt:     0.1,
			CorruptFrac: 0.08,
			Geom:        0.05,
		})
		delivered[i] = injectors[i].Apply(frames, sils)
	}

	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, f := range delivered[i] {
				if err := sessions[i].Feed(f.Img, f.Oracle); err != nil {
					t.Errorf("session %d feed: %v", i, err)
					return
				}
			}
			if err := sessions[i].Finalize(); err != nil {
				t.Errorf("session %d finalize: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if p := m.Stats().Panics; p != 0 {
		t.Fatalf("%d worker panics under concurrent chaos", p)
	}
	snap := m.Stats()
	if snap.HealthyNow+snap.DegradedNow+snap.FailedNow != snap.Open {
		t.Fatalf("health breakdown does not sum to open sessions: %+v", snap)
	}
	if snap.FailedNow != 0 {
		t.Fatalf("%d sessions failed under recoverable chaos", snap.FailedNow)
	}
	if snap.Abandoned != 0 || snap.Stalls != 0 {
		t.Fatalf("unexpected abandonments/stalls: %+v", snap)
	}

	var totalCorrupted, totalMisgeom uint64
	for i, s := range sessions {
		select {
		case <-s.done:
		default:
			t.Fatalf("session %d not terminal after Finalize", i)
		}
		// Expected per-stage outcomes, delivery by delivery: misgeometry
		// deliveries are rejected by the reconstructor's frame-fault
		// taxonomy; corrupted well-formed deliveries (duplicates included)
		// trip the quality gate; everything else is processed.
		var wantGated, wantTaxonomy uint64
		for _, f := range delivered[i] {
			switch {
			case f.Misgeometry:
				wantTaxonomy++
			case f.Corrupted:
				wantGated++
			}
		}
		ctr := injectors[i].Counters()
		totalCorrupted += uint64(ctr.Corrupted)
		totalMisgeom += uint64(ctr.Misgeometry)
		st := s.Stats()
		if st.FramesFed != uint64(ctr.Emitted) {
			t.Fatalf("session %d fed %d, injector emitted %d", i, st.FramesFed, ctr.Emitted)
		}
		if st.FramesDropped != 0 {
			t.Fatalf("session %d dropped %d frames with an ample queue", i, st.FramesDropped)
		}
		if st.FramesFed != st.FramesRejected+st.FramesProcessed {
			t.Fatalf("session %d accounting identity broken: %+v", i, st)
		}
		if st.FramesGated != wantGated {
			t.Fatalf("session %d gated %d deliveries, want %d", i, st.FramesGated, wantGated)
		}
		if st.FramesRejected != wantGated+wantTaxonomy {
			t.Fatalf("session %d rejected %d deliveries, want %d gated + %d taxonomy",
				i, st.FramesRejected, wantGated, wantTaxonomy)
		}
		if st.FramesProcessed == 0 {
			t.Fatalf("session %d processed nothing", i)
		}
	}
	if totalCorrupted == 0 || totalMisgeom == 0 {
		t.Fatal("stress profiles injected no corruption/misgeometry to observe")
	}

	// The flaky store saw real traffic and its injected failures surfaced
	// in session telemetry, not silence.
	sc := flaky.StoreCounters()
	if sc.Saves == 0 {
		t.Fatal("no checkpoint traffic reached the flaky store")
	}
	var totalCkptErrs uint64
	for _, s := range sessions {
		totalCkptErrs += s.Stats().CheckpointErrors
	}
	if totalCkptErrs != sc.InjectedSaveErrs {
		t.Fatalf("sessions counted %d checkpoint errors, store injected %d", totalCkptErrs, sc.InjectedSaveErrs)
	}

	if err := m.Close(); err != nil {
		t.Fatalf("close after finalized fleet: %v", err)
	}
}
