package session_test

import (
	"fmt"
	"testing"

	"github.com/bgbuster/bgbuster/internal/gallery"
	"github.com/bgbuster/bgbuster/internal/session"
)

// BenchmarkGalleryFanout measures meeting-scale ingestion: one
// composite frame in, N supervised sessions out, at the two canonical
// gallery sizes (3x3 and 5x5). The op is ONE composite frame through
// Manager.FeedComposite — demux (grid inference + crop) plus N session
// feeds — so allocs/op is allocs per composite frame and the derived
// metric tile-feeds/s is per-participant session throughput.
func BenchmarkGalleryFanout(b *testing.B) {
	for _, n := range []int{9, 25} {
		n := n
		b.Run(fmt.Sprintf("tiles-%d", n), func(b *testing.B) {
			parts := make([]gallery.Participant, n)
			for i := range parts {
				parts[i] = gallery.Participant{Frames: leakStream(i, 16), JoinAt: 0}
			}
			res, err := gallery.Compose(parts, gallery.Spec{Seed: int64(n)})
			if err != nil {
				b.Fatal(err)
			}
			mgr := session.NewManager(session.Config{
				QueueDepth: 4096,
				Gallery: &session.GalleryConfig{
					Demux:      gallery.Config{Limits: gallery.SplitLimits{MaxTiles: 128}},
					OptionsFor: galleryTestOptions,
				},
			})
			defer mgr.Close()
			// Warm through the full cycle once so every session is open
			// and the tiling is committed before the clock starts.
			for _, f := range res.Video.Frames {
				if _, err := mgr.FeedComposite(f); err != nil {
					b.Fatal(err)
				}
			}
			if mgr.Len() != n {
				b.Fatalf("%d sessions open, want %d", mgr.Len(), n)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mgr.FeedComposite(res.Video.Frames[i%res.Video.Len()]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tile-feeds/s")
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "composites/s")
		})
	}
}

// BenchmarkGallerySplit isolates the demux cost (grid inference,
// voting fast path, lane matching, tile crops) without any sessions.
func BenchmarkGallerySplit(b *testing.B) {
	for _, n := range []int{9, 25} {
		n := n
		b.Run(fmt.Sprintf("tiles-%d", n), func(b *testing.B) {
			parts := make([]gallery.Participant, n)
			for i := range parts {
				parts[i] = gallery.Participant{Frames: leakStream(i, 16), JoinAt: 0}
			}
			res, err := gallery.Compose(parts, gallery.Spec{Seed: int64(n)})
			if err != nil {
				b.Fatal(err)
			}
			d := gallery.NewDemuxer(gallery.Config{Limits: gallery.SplitLimits{MaxTiles: 128}})
			for _, f := range res.Video.Frames {
				if _, err := d.Feed(f); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Feed(res.Video.Frames[i%res.Video.Len()]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
