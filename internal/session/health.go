package session

import "fmt"

// Health is a session's degradation state. The machine is monotonic
// per incarnation — Healthy → Degraded → Failed → PermanentlyFailed —
// so an observer polling Snapshot never sees a session "un-degrade"
// and flap its alerts: a call that limped stays marked as having
// limped for its lifetime (DESIGN.md §12). A supervisor restart does
// not rewind any state: it registers a fresh incarnation (starting
// Healthy) while the old record keeps its terminal health (§13).
//
//   - Healthy: everything nominal.
//   - Degraded: the session hit recoverable trouble it survived —
//     checkpoint saves exhausted their retries, the watchdog caught a
//     stall, or Manager.Close abandoned it at the deadline. The
//     reconstruction keeps running and its output stays usable.
//   - Failed: the worker died (panic or fatal stream error). The
//     partial reconstruction up to the failure stays readable, but no
//     further frames are processed. With Config.AutoRestart the
//     supervisor resurrects the id as a new incarnation.
//   - PermanentlyFailed: the circuit breaker gave up — the id burned
//     through Config.MaxRestarts restarts within RestartWindow and the
//     supervisor will not try again. Terminal; operator judgement
//     required.
type Health int32

const (
	Healthy Health = iota
	Degraded
	Failed
	PermanentlyFailed
)

// String names the state for logs and fleet stats.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	case PermanentlyFailed:
		return "permanently-failed"
	default:
		return fmt.Sprintf("health(%d)", int32(h))
	}
}

// maxHealthReasons bounds the retained degradation reasons per session;
// a store failing every interval must not grow the slice unboundedly.
const maxHealthReasons = 8

// Health returns the session's current health state.
func (s *Session) Health() Health { return Health(s.health.Load()) }

// HealthReasons returns the retained (bounded, oldest-first) reasons
// for every degrade/fail transition and notable repeat events.
func (s *Session) HealthReasons() []string {
	s.reasonMu.Lock()
	defer s.reasonMu.Unlock()
	return append([]string(nil), s.reasons...)
}

// addReason appends a reason under the bound; repeats beyond the cap
// are dropped (the counters carry the magnitude, reasons carry the
// kinds).
func (s *Session) addReason(reason string) {
	s.reasonMu.Lock()
	if len(s.reasons) < maxHealthReasons {
		s.reasons = append(s.reasons, reason)
	}
	s.reasonMu.Unlock()
}

// degrade moves a healthy session to Degraded (a failed one stays
// failed) and records why. Safe from any goroutine: the worker, the
// watchdog and Close all report through here.
func (s *Session) degrade(reason string) {
	if s.health.CompareAndSwap(int32(Healthy), int32(Degraded)) {
		s.mgr.degrades.Inc()
		s.mgr.logf("session %q degraded: %s", s.id, reason)
	}
	if s.Health() == Degraded {
		s.addReason(reason)
	}
}

// fail moves the session to Failed (never backwards out of
// PermanentlyFailed), records why, and wakes the supervisor so a
// restart attempt is not left waiting for the next scan tick.
func (s *Session) fail(reason string) {
	for {
		cur := Health(s.health.Load())
		if cur >= Failed {
			s.addReason(reason)
			return
		}
		if s.health.CompareAndSwap(int32(cur), int32(Failed)) {
			s.mgr.logf("session %q failed: %s", s.id, reason)
			s.addReason(reason)
			s.mgr.noteFailed()
			return
		}
	}
}

// permanentlyFail is the circuit breaker's terminal transition: the
// supervisor calls it exactly once per tripped id, after the worker is
// already dead, so it only ever moves Failed → PermanentlyFailed.
func (s *Session) permanentlyFail(reason string) {
	for {
		cur := Health(s.health.Load())
		if cur >= PermanentlyFailed {
			return
		}
		if s.health.CompareAndSwap(int32(cur), int32(PermanentlyFailed)) {
			s.mgr.logf("session %q permanently failed: %s", s.id, reason)
			s.addReason(reason)
			return
		}
	}
}
