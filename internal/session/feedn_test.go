package session

import (
	"errors"
	"testing"

	"github.com/bgbuster/bgbuster/internal/core"
)

// TestSessionFeedNMatchesFeed: batch intake must leave the same
// reconstruction as frame-at-a-time intake, with frame-accurate
// counters (fed and processed count frames, not batches).
func TestSessionFeedNMatchesFeed(t *testing.T) {
	frames, sils := testFrames(24)

	mgr := NewManager(Config{})
	defer mgr.Close()
	one, err := mgr.Open("one", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := mgr.Open("batch", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}

	var fs []core.Frame
	for i := range frames {
		if err := one.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
		fs = append(fs, core.Frame{Img: frames[i], Oracle: sils[i]})
	}
	for i := 0; i < len(fs); i += 7 {
		j := i + 7
		if j > len(fs) {
			j = len(fs)
		}
		if err := mgr.FeedN("batch", fs[i:j]); err != nil {
			t.Fatal(err)
		}
	}
	if err := one.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := batch.Finalize(); err != nil {
		t.Fatal(err)
	}

	so, sb := one.Stats(), batch.Stats()
	if sb.FramesFed != uint64(len(fs)) || sb.FramesProcessed != uint64(len(fs)) {
		t.Fatalf("batch counters fed=%d processed=%d, want %d frames", sb.FramesFed, sb.FramesProcessed, len(fs))
	}
	if so.FramesProcessed != sb.FramesProcessed {
		t.Fatalf("processed: feed=%d batch=%d", so.FramesProcessed, sb.FramesProcessed)
	}
	ro, rb := one.Snapshot(), batch.Snapshot()
	if !ro.Recovered.Equal(rb.Recovered) || !ro.Coverage.Equal(rb.Coverage) {
		t.Fatal("batch-fed reconstruction differs from frame-at-a-time")
	}
	if sb.MemBytes == 0 || so.MemBytes != sb.MemBytes {
		t.Fatalf("MemBytes: feed=%d batch=%d", so.MemBytes, sb.MemBytes)
	}
}

// TestSessionFeedNRecoverableFaults: malformed frames inside a batch
// are counted as rejected without failing the session.
func TestSessionFeedNRecoverableFaults(t *testing.T) {
	frames, sils := testFrames(4)
	mgr := NewManager(Config{})
	defer mgr.Close()
	s, err := mgr.Open("s", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	fs := []core.Frame{
		{Img: frames[0], Oracle: sils[0]},
		{Img: nil, Oracle: sils[1]}, // recoverable at the reconstructor
		{Img: frames[2], Oracle: nil},
		{Img: frames[3], Oracle: sils[3]},
	}
	if err := s.FeedN(fs); err != nil {
		t.Fatal(err)
	}
	if err := s.FeedN(nil); err != nil {
		t.Fatal("empty batch must be a no-op")
	}
	if err := s.Finalize(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FramesFed != 4 || st.FramesProcessed != 2 || st.FramesRejected != 2 {
		t.Fatalf("fed=%d processed=%d rejected=%d, want 4/2/2",
			st.FramesFed, st.FramesProcessed, st.FramesRejected)
	}
}

// TestSessionFeedNQueuePolicies: a batch occupies one queue slot; under
// PolicyReject a full queue refuses it and counts every frame dropped.
func TestSessionFeedNQueuePolicies(t *testing.T) {
	frames, sils := testFrames(8)
	opts := testOpts()
	opts.Segmenter = slowSegmenter{d: 50 * 1e6} // 50ms: hold the worker busy
	mgr := NewManager(Config{QueueDepth: 1, DefaultQueuePolicy: PolicyReject})
	defer mgr.Close()
	s, err := mgr.Open("s", testW, testH, opts)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i, j int) []core.Frame {
		var fs []core.Frame
		for ; i < j; i++ {
			fs = append(fs, core.Frame{Img: frames[i], Oracle: sils[i]})
		}
		return fs
	}
	// Fill the worker and the single queue slot, then overflow.
	_ = s.FeedN(mk(0, 2))
	_ = s.FeedN(mk(2, 4))
	var rejected bool
	for try := 0; try < 3; try++ {
		if err := s.FeedN(mk(4, 8)); errors.Is(err, ErrQueueFull) {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("full queue never rejected a batch under PolicyReject")
	}
	st := s.Stats()
	if st.FramesDropped < 4 {
		t.Fatalf("dropped=%d, want the whole rejected batch (≥4) counted", st.FramesDropped)
	}
}
