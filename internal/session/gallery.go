package session

import (
	"fmt"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/gallery"
	"github.com/bgbuster/bgbuster/internal/imagex"
)

// GalleryConfig wires composite gallery-view ingestion into a Manager:
// one FeedComposite frame in, one supervised session per on-screen
// participant out.
type GalleryConfig struct {
	// Demux tunes the tile demuxer (zero value: gallery defaults).
	Demux gallery.Config
	// OptionsFor supplies the reconstruction options for a tile session
	// opened (or resumed) at the demuxed tile geometry. Required.
	OptionsFor func(id string, w, h int) core.Options
	// TileID maps demuxer lane ids to session ids (nil:
	// gallery.DefaultTileID). Lane ids are stable across the meeting,
	// so a participant keeps one session id through leave and rejoin.
	TileID func(lane int) string
}

// managerSink routes demuxed tiles into the owning Manager. A
// participant joining opens a session; a participant leaving is
// DETACHED, not finalized: a gallery member often leaves before
// Options.IdentifyAfter frames, and Finalize would pin the VB
// identification on a half-filled window. Detach drains and snapshots
// the un-pinned stream instead, so a rejoin (or offline analysis of
// the snapshot) carries the call on bit-identically (DESIGN.md §16).
type managerSink struct {
	m   *Manager
	cfg *GalleryConfig
	// oracles caches one empty oracle mask per session id: a demuxed
	// composite carries no silhouette ground truth, and core treats the
	// oracle as read-only input.
	oracles map[string]*imagex.Mask
	// detached holds the .bbck snapshot of each departed participant,
	// keyed by session id, for rejoin. When the manager has a
	// checkpoint store the snapshot is also saved there, making leaves
	// durable.
	detached map[string][]byte
}

func (gs *managerSink) OpenTile(id string, w, h int) error {
	gs.oracles[id] = imagex.NewMask(w, h)
	_, err := gs.m.Open(id, w, h, gs.cfg.OptionsFor(id, w, h))
	return err
}

func (gs *managerSink) RejoinTile(id string, w, h int) error {
	data, ok := gs.detached[id]
	if !ok && gs.m.cfg.Checkpoints != nil {
		var err error
		if data, err = gs.m.cfg.Checkpoints.Load(id); err != nil {
			return fmt.Errorf("session: gallery rejoin %q: %w", id, err)
		}
		ok = true
	}
	if !ok {
		return fmt.Errorf("session: gallery rejoin %q: no detach snapshot", id)
	}
	gs.oracles[id] = imagex.NewMask(w, h)
	_, err := gs.m.ResumeSession(id, data, gs.cfg.OptionsFor(id, w, h))
	if err == nil {
		delete(gs.detached, id)
	}
	return err
}

func (gs *managerSink) FeedTile(id string, img *imagex.Image) error {
	oracle := gs.oracles[id]
	if oracle == nil || oracle.W != img.W || oracle.H != img.H {
		oracle = imagex.NewMask(img.W, img.H)
		gs.oracles[id] = oracle
	}
	return gs.m.Feed(id, img, oracle)
}

func (gs *managerSink) LeaveTile(id string) error {
	s, ok := gs.m.Get(id)
	if !ok {
		return fmt.Errorf("session: gallery leave %q: %w", id, ErrNoSession)
	}
	data, err := s.Detach()
	if err != nil {
		return fmt.Errorf("session: gallery leave %q: %w", id, err)
	}
	gs.detached[id] = data
	if store := gs.m.cfg.Checkpoints; store != nil {
		if err := store.Save(id, data); err != nil {
			return fmt.Errorf("session: gallery leave %q: save snapshot: %w", id, err)
		}
	}
	return nil
}

// FeedComposite ingests one gallery-view composite frame: the demuxer
// splits it into participant tiles and the manager opens, feeds,
// detaches and resumes one session per participant as they join,
// leave and rejoin. Requires Config.Gallery. Returns what the frame
// released (joins/leaves/rejoins and per-session frame deliveries);
// during stability voting a frame may release nothing yet — the
// buffered frames replay on commit, so no session ever misses one.
// Safe for concurrent use, but composite frames are ordered — use one
// feeder per meeting.
func (m *Manager) FeedComposite(frame *imagex.Image) (*gallery.Update, error) {
	g := m.cfg.Gallery
	if g == nil || g.OptionsFor == nil {
		return nil, fmt.Errorf("session: FeedComposite requires Config.Gallery.OptionsFor")
	}
	m.galleryMu.Lock()
	defer m.galleryMu.Unlock()
	if m.galleryFan == nil {
		sink := &managerSink{
			m:        m,
			cfg:      g,
			oracles:  map[string]*imagex.Mask{},
			detached: map[string][]byte{},
		}
		m.galleryFan = gallery.NewFanout(g.Demux, sink)
		if g.TileID != nil {
			m.galleryFan.TileID = g.TileID
		}
	}
	return m.galleryFan.Feed(frame)
}

// GalleryStats snapshots the composite demuxer's counters; ok is false
// until the first FeedComposite.
func (m *Manager) GalleryStats() (s gallery.Stats, ok bool) {
	m.galleryMu.Lock()
	defer m.galleryMu.Unlock()
	if m.galleryFan == nil {
		return gallery.Stats{}, false
	}
	return m.galleryFan.Demux().Stats(), true
}
