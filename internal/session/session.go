// Package session is the live-call layer of the reconstruction
// framework: a Manager multiplexes many concurrent streaming
// reconstructions (core.StreamReconstructor), one per observed call.
// Each session owns a bounded frame queue with a drop-oldest policy —
// a live adversary that falls behind loses old frames, never the call —
// a worker goroutine that feeds the reconstructor, panic isolation so
// one poisoned call cannot take down its neighbours, and an
// observability surface (per-stage counters, feed latency, coverage
// over time) readable at any instant without pausing the session.
package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/session/stats"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

// ErrClosed is returned when feeding a session whose intake has been
// closed (Finalize, Close, eviction) or opening on a closed Manager.
var ErrClosed = errors.New("session: closed")

// ErrExists is returned by Open for a duplicate session id.
var ErrExists = errors.New("session: id already open")

// ErrFailed is returned when feeding a session whose worker died on a
// panic; the partial reconstruction up to the panic stays readable.
var ErrFailed = errors.New("session: worker failed")

// item is one queued unit of work: a single frame with its oracle
// silhouette, or (batch non-nil, from FeedN) a whole ordered batch that
// the worker runs through the reconstructor under one stream lock.
type item struct {
	frame  *imagex.Image
	oracle *imagex.Mask
	batch  []core.Frame
}

// size returns how many frames the item carries, for intake accounting.
func (it item) size() uint64 {
	if it.batch != nil {
		return uint64(len(it.batch))
	}
	return 1
}

// Session is one live call being reconstructed. Feed never blocks on
// the reconstruction: frames queue up to Config.QueueDepth and the
// oldest queued frame is dropped when the queue is full. All methods
// are safe for concurrent use.
type Session struct {
	id   string
	mgr  *Manager
	w, h int // stream frame geometry, for the quality gate

	// Supervision identity (immutable after install): the options the
	// stream was opened with (what a restart resurrects from), the
	// per-session overrides, the incarnation number (1 = original; each
	// supervisor restart registers incarnation+1 under the same id), and
	// the admission-time memory footprint charged to Config.MemBudget.
	opts        core.Options
	so          SessionOptions
	incarnation int
	memBytes    uint64
	// resumedFrames/resumedCov record the checkpoint state this
	// incarnation resumed from (zero for incarnation 1 and for a fresh
	// restart with no stored checkpoint).
	resumedFrames uint64
	resumedCov    float64

	// Intake policy (resolved at install time; PolicyDefault never
	// survives installation).
	policy        QueuePolicy
	blockDeadline time.Duration

	// Intake: sendMu serialises queue sends against intake close.
	sendMu       sync.Mutex
	queue        chan item
	intakeClosed bool

	// streamMu guards the reconstructor (worker writes, observers read).
	streamMu sync.Mutex
	stream   *core.StreamReconstructor

	started  time.Time
	lastFeed atomic.Int64 // UnixNano of the most recent Feed
	lastProc atomic.Int64 // UnixNano of the most recent processed frame

	fed       stats.Counter
	dropped   stats.Counter
	rejected  stats.Counter
	gated     stats.Counter // quality-gate rejections (subset of rejected)
	processed stats.Counter
	feedLat   stats.Latency
	coverage  *stats.Series
	pinnedNs  atomic.Int64 // identify-pin latency; 0 until pinned

	// Health state machine (health.go): Healthy → Degraded → Failed.
	health     atomic.Int32
	reasonMu   sync.Mutex
	reasons    []string
	stallLatch atomic.Bool   // set while the watchdog considers the session stalled
	stalls     stats.Counter // stall episodes detected by the watchdog

	// Durability telemetry (zero when no CheckpointStore configured).
	ckpts          stats.Counter
	ckptErrs       stats.Counter // failed Save attempts (every retry counts)
	ckptRetries    stats.Counter // retries beyond the first attempt
	ckptFailStreak atomic.Uint32 // consecutive exhausted checkpoint cycles
	lastCkptNs     atomic.Int64  // UnixNano of the last successful checkpoint
	ckptTryNs      atomic.Int64  // UnixNano of the last attempt (paces retries)
	restored       bool          // came from Manager.Restore, not Open

	// rejectStreak is the current run of consecutively rejected frames
	// (gate + recoverable stream rejections), advanced per frame in both
	// the Feed and FeedN paths and reset by any accepted frame. The
	// opt-in Config.DegradeAfterRejects/FailAfterRejects thresholds act
	// on it.
	rejectStreak atomic.Uint32

	done     chan struct{} // closed when the worker exits
	failure  atomic.Value  // string; set when the worker panicked or hit a fatal error
	evicted  atomic.Bool
	detached atomic.Bool // Detach in progress: loop must not finalize
}

func newSession(mgr *Manager, id string, stream *core.StreamReconstructor, queueDepth, coverageSamples int) *Session {
	s := &Session{
		id:       id,
		mgr:      mgr,
		queue:    make(chan item, queueDepth),
		stream:   stream,
		started:  time.Now(),
		coverage: stats.NewSeries(coverageSamples),
		done:     make(chan struct{}),
	}
	s.w, s.h = stream.Size()
	s.lastFeed.Store(s.started.UnixNano())
	s.lastProc.Store(s.started.UnixNano())
	return s
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Incarnation returns the supervisor lineage number for this id:
// 1 for the original session, +1 per auto-restart.
func (s *Session) Incarnation() int { return s.incarnation }

// Feed enqueues one frame. Under the default drop-oldest policy it
// never blocks: when the queue is full the oldest queued frame is
// dropped (counted in Stats as FramesDropped). PolicyReject returns
// ErrQueueFull instead; PolicyBlock waits up to the block deadline for
// queue space before giving up with ErrQueueFull. After Manager.Close
// begins, Feed returns ErrManagerClosed; after the supervisor replaced
// this incarnation, the stale handle returns ErrFailed (route through
// Manager.Feed to always reach the live incarnation). The session does
// not copy the frame or oracle; the caller must not mutate them
// afterwards. Malformed frames (wrong geometry, nil oracle) are not
// detected here but at processing time, where they are counted as
// FramesRejected and the session carries on.
func (s *Session) Feed(frame *imagex.Image, oracle *imagex.Mask) error {
	return s.enqueue(item{frame: frame, oracle: oracle})
}

// FeedN enqueues an ordered batch of frames as one queue unit. The
// worker runs the whole batch through the reconstructor under a single
// stream lock (core.StreamReconstructor.FeedN), amortising the
// per-frame queue and lock overhead — the intended intake for replay
// and catch-up traffic, where frames arrive faster than real time. The
// queue policies treat the batch atomically: it occupies one slot of
// Config.QueueDepth, and dropping it (drop-oldest eviction, PolicyReject)
// drops — and counts — all of its frames. The ownership contract
// matches Feed: the session does not copy frames or oracles. An empty
// batch is a no-op.
func (s *Session) FeedN(frames []core.Frame) error {
	if len(frames) == 0 {
		return nil
	}
	return s.enqueue(item{batch: frames})
}

// enqueue applies the intake policy to one queue item (a frame or a
// whole batch); frame accounting is by item.size.
func (s *Session) enqueue(it item) error {
	if s.mgr.closedFlag.Load() {
		return fmt.Errorf("session %q: %w", s.id, ErrManagerClosed)
	}
	if s.Failure() != "" {
		return fmt.Errorf("session %q: %w", s.id, ErrFailed)
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.intakeClosed {
		return fmt.Errorf("session %q: %w", s.id, ErrClosed)
	}
	s.lastFeed.Store(time.Now().UnixNano())
	s.stallLatch.Store(false) // activity: a new stall episode may be detected later
	s.fed.Add(it.size())
	select {
	case s.queue <- it:
		return nil
	default:
	}
	switch s.policy {
	case PolicyReject:
		// Explicit backpressure: the new frame is dropped and the caller
		// told, so it can throttle its capture rate.
		s.dropped.Add(it.size())
		return fmt.Errorf("session %q: %w", s.id, ErrQueueFull)
	case PolicyBlock:
		// Bounded wait for queue space. sendMu stays held, so a
		// concurrent closeIntake (Close, eviction) waits out at most one
		// deadline; manager shutdown cancels the wait immediately.
		timer := time.NewTimer(s.blockDeadline)
		defer timer.Stop()
		select {
		case s.queue <- it:
			return nil
		case <-timer.C:
			s.dropped.Add(it.size())
			return fmt.Errorf("session %q: %w (blocked %s)", s.id, ErrQueueFull, s.blockDeadline)
		case <-s.mgr.ctx.Done():
			s.dropped.Add(it.size())
			return fmt.Errorf("session %q: %w", s.id, ErrManagerClosed)
		}
	}
	// Drop-oldest: evict the oldest queued item, then retry once. The
	// receive races with the worker; if the worker drained a slot
	// first, the send below succeeds and nothing is dropped twice.
	select {
	case victim := <-s.queue:
		s.dropped.Add(victim.size())
	default:
	}
	select {
	case s.queue <- it:
	default:
		s.dropped.Add(it.size()) // lost the race to a concurrent Feed; drop the new item
	}
	return nil
}

// loop is the session worker: it drains the queue into the
// reconstructor and finalizes the stream when the intake closes. A
// panic in the reconstruction pipeline — or a fatal (non-frame) stream
// error — marks the session Failed without disturbing other sessions.
func (s *Session) loop() {
	defer close(s.done)
	defer func() {
		if r := recover(); r != nil {
			s.failure.Store(fmt.Sprintf("%v", r))
			s.fail(fmt.Sprintf("worker panic: %v", r))
			s.mgr.panics.Inc()
		}
	}()
	for it := range s.queue {
		fatal := false
		if it.batch != nil {
			fatal = s.processBatch(it.batch)
		} else {
			fatal = s.process(it)
		}
		if fatal {
			// Fatal: stop draining. Feed already returns ErrFailed (the
			// failure value is set); the partial reconstruction stays
			// readable, exactly like the panic path.
			return
		}
	}
	if s.detached.Load() {
		// Detach drained the queue but must not finalize: the stream is
		// about to resume mid-call on another shard, and Finalize would
		// pin identification and close the pending window early.
		return
	}
	s.streamMu.Lock()
	_ = s.stream.Finalize()
	s.streamMu.Unlock()
	// Final checkpoint: the finalized state is what Manager.Restore
	// hands back after a restart, and it is also how eviction preserves
	// every accumulated LB pixel (the sweeper closes the session, which
	// drains into this path).
	if s.mgr.cfg.Checkpoints != nil {
		_ = s.checkpoint()
	}
}

// process feeds one frame through the quality gate and the
// reconstructor, updating the per-stage telemetry. It reports whether
// the session hit a fatal error and must stop.
func (s *Session) process(it item) (fatal bool) {
	s.lastProc.Store(time.Now().UnixNano())
	if err := s.gate(it); err != nil {
		// Gate rejections are recoverable by definition: count and skip.
		s.gated.Inc()
		s.rejected.Inc()
		return s.rejectTransition(int(s.rejectStreak.Add(1)))
	}
	t0 := time.Now()
	err, identified, cov := s.feedStream(it)
	s.feedLat.Observe(time.Since(t0))
	if err != nil {
		if core.RecoverableFrame(err) {
			// One bad frame is counted and skipped; the stream carries on
			// (the paper's LB residue accumulates over many frames, so a
			// rejected frame only costs its own residue).
			s.rejected.Inc()
			return s.rejectTransition(int(s.rejectStreak.Add(1)))
		}
		// Non-frame errors mean the stream itself is unusable.
		s.failure.Store(fmt.Sprintf("fatal stream error: %v", err))
		s.fail(fmt.Sprintf("fatal stream error: %v", err))
		return true
	}
	s.rejectStreak.Store(0)
	s.processed.Inc()
	s.coverage.Append(cov)
	if identified && s.pinnedNs.Load() == 0 {
		s.pinnedNs.Store(int64(time.Since(s.started)))
	}
	s.maybeCheckpoint()
	return false
}

// rejectTransition applies the opt-in consecutive-rejection health
// thresholds after the streak reached n: crossing
// Config.DegradeAfterRejects degrades the session, and reaching
// Config.FailAfterRejects fails it (fatal for the worker — a stream
// whose every recent frame bounces is reconstructing nothing, and
// failing hands the id to the supervisor for a checkpoint-backed
// restart). Both thresholds count per frame in the Feed and FeedN
// paths alike, so one poisoned 16-frame batch trips exactly the same
// transitions as 16 poisoned frames fed one at a time.
func (s *Session) rejectTransition(n int) (fatal bool) {
	if d := s.mgr.cfg.DegradeAfterRejects; d > 0 && n == d {
		s.degrade(fmt.Sprintf("%d consecutive frames rejected", n))
	}
	if f := s.mgr.cfg.FailAfterRejects; f > 0 && n >= f {
		reason := fmt.Sprintf("%d consecutive frames rejected", n)
		s.failure.Store(reason)
		s.fail(reason)
		return true
	}
	return false
}

// processBatch runs one queued batch under a single stream lock,
// gating and feeding each frame in arrival order. Per-stage telemetry
// matches the frame-at-a-time path exactly: gate rejections and
// recoverable stream rejections count per frame (and advance the
// consecutive-rejection streak per frame, in order — a poisoned batch
// trips the degraded→failed thresholds at the same frame a sequential
// Feed replay would), the feed latency records the per-frame mean of
// the batch, and the coverage series gains one sample per batch (not
// per frame; a batch is one observable processing step). Health
// transitions are collected inside the lock and applied after it, so a
// user Logf callback that snapshots the session can never deadlock. It
// reports whether the session hit a fatal error.
func (s *Session) processBatch(frames []core.Frame) (fatal bool) {
	s.lastProc.Store(time.Now().UnixNano())
	var (
		accepted, rejected, gatedN int
		fatalErr                   error
		degradeAt                  = s.mgr.cfg.DegradeAfterRejects
		failAt                     = s.mgr.cfg.FailAfterRejects
		streak                     = int(s.rejectStreak.Load())
		crossedDegrade             = false
		crossedFail                = false
	)
	reject := func() (stop bool) {
		rejected++
		streak++
		if degradeAt > 0 && streak == degradeAt {
			crossedDegrade = true
		}
		if failAt > 0 && streak >= failAt {
			crossedFail = true
		}
		return crossedFail
	}
	t0 := time.Now()
	s.streamMu.Lock()
	for _, f := range frames {
		if err := s.gate(item{frame: f.Img, oracle: f.Oracle}); err != nil {
			gatedN++
			if reject() {
				break
			}
			continue
		}
		err := s.stream.Feed(f.Img, f.Oracle)
		if err == nil {
			accepted++
			streak = 0
			continue
		}
		if core.RecoverableFrame(err) {
			if reject() {
				break
			}
			continue
		}
		// Non-frame errors mean the stream itself is unusable. Frames
		// after this one are never attempted, matching the Feed path
		// where a fatal frame stops the worker mid-queue.
		fatalErr = err
		break
	}
	identified := s.stream.Identified()
	cov := s.stream.Snapshot().Coverage.Fraction()
	s.streamMu.Unlock()
	if n := accepted + rejected; n > 0 {
		per := time.Since(t0) / time.Duration(n)
		for i := 0; i < n; i++ {
			s.feedLat.Observe(per)
		}
	}
	s.gated.Add(uint64(gatedN))
	s.rejected.Add(uint64(rejected))
	s.processed.Add(uint64(accepted))
	s.rejectStreak.Store(uint32(streak))
	if accepted > 0 {
		s.coverage.Append(cov)
	}
	if identified && s.pinnedNs.Load() == 0 {
		s.pinnedNs.Store(int64(time.Since(s.started)))
	}
	if fatalErr != nil {
		s.failure.Store(fmt.Sprintf("fatal stream error: %v", fatalErr))
		s.fail(fmt.Sprintf("fatal stream error: %v", fatalErr))
		return true
	}
	if crossedDegrade && !crossedFail {
		s.degrade(fmt.Sprintf("%d consecutive frames rejected", degradeAt))
	}
	if crossedFail {
		if crossedDegrade {
			s.degrade(fmt.Sprintf("%d consecutive frames rejected", degradeAt))
		}
		reason := fmt.Sprintf("%d consecutive frames rejected", streak)
		s.failure.Store(reason)
		s.fail(reason)
		return true
	}
	s.maybeCheckpoint()
	return false
}

// gate screens a frame's decode consistency before it reaches the
// reconstructor. Geometry and nil faults are left to the reconstructor
// (which classifies them as recoverable FrameErrors); the gate only
// judges content quality, so the two rejection layers never overlap.
func (s *Session) gate(it item) error {
	if it.frame == nil || it.frame.W != s.w || it.frame.H != s.h {
		return nil // the reconstructor rejects and classifies these
	}
	if g := s.mgr.cfg.QualityGate; g != nil {
		if err := g(it.frame, it.oracle); err != nil {
			return err
		}
	}
	if max := s.mgr.cfg.MaxImpulseNoise; max > 0 {
		if score := vidstream.ImpulseNoise(it.frame, vidstream.DefaultImpulseTol); score > max {
			return &core.FrameError{
				Fault: core.FaultQuality,
				Err:   fmt.Errorf("session %q: frame impulse-noise score %.4f exceeds gate %.4f", s.id, score, max),
			}
		}
	}
	return nil
}

// maybeCheckpoint writes a periodic checkpoint when one is due. It runs
// on the worker between frames, so a frame is never half-captured; the
// pace is CheckpointInterval since the last attempt (attempt, not
// success, so a broken store does not degrade into per-frame retries).
func (s *Session) maybeCheckpoint() {
	if s.mgr.cfg.Checkpoints == nil {
		return
	}
	now := time.Now().UnixNano()
	last := s.ckptTryNs.Load()
	if now-last < int64(s.mgr.cfg.CheckpointInterval) {
		return
	}
	if !s.ckptTryNs.CompareAndSwap(last, now) {
		return // a concurrent Checkpoint() call claimed this slot
	}
	_ = s.checkpoint()
}

// Checkpoint forces an immediate durable checkpoint of the session's
// stream, regardless of the periodic interval. It is safe to call at
// any instant — the stream is briefly locked, exactly like Snapshot.
func (s *Session) Checkpoint() error {
	if s.mgr.cfg.Checkpoints == nil {
		return fmt.Errorf("session %q: no checkpoint store configured", s.id)
	}
	s.ckptTryNs.Store(time.Now().UnixNano())
	return s.checkpoint()
}

// checkpoint serialises the stream under streamMu and saves the bytes
// outside the lock, so a slow store never stalls observers or the feed
// path longer than the encode itself. Save is retried with capped
// exponential backoff (Config.CheckpointRetries/Backoff); when the
// whole cycle fails the session falls back to the last good checkpoint
// already in the store, degrades its health, and keeps processing
// frames — durability trouble must never stop the reconstruction.
func (s *Session) checkpoint() error {
	s.streamMu.Lock()
	data, err := s.stream.Checkpoint()
	s.streamMu.Unlock()
	if err != nil {
		// Encode failures are deterministic: retrying cannot help.
		s.ckptErrs.Inc()
		s.noteCheckpointCycleFailure(1, err)
		return fmt.Errorf("session %q: checkpoint: %w", s.id, err)
	}
	attempts := s.mgr.cfg.CheckpointRetries
	backoff := s.mgr.cfg.CheckpointBackoff
	for try := 1; ; try++ {
		err = s.mgr.cfg.Checkpoints.Save(s.id, data)
		if err == nil {
			s.ckpts.Inc()
			s.ckptFailStreak.Store(0)
			s.lastCkptNs.Store(time.Now().UnixNano())
			return nil
		}
		s.ckptErrs.Inc()
		if try >= attempts {
			s.noteCheckpointCycleFailure(attempts, err)
			return fmt.Errorf("session %q: checkpoint: %w", s.id, err)
		}
		s.ckptRetries.Inc()
		time.Sleep(backoff)
		if backoff *= 2; backoff > s.mgr.cfg.CheckpointBackoffMax {
			backoff = s.mgr.cfg.CheckpointBackoffMax
		}
	}
}

// noteCheckpointCycleFailure records one exhausted checkpoint cycle:
// the failure streak grows, the session degrades (the last good
// checkpoint in the store now bounds what a crash loses), and the
// failure is logged rather than silently dropped.
func (s *Session) noteCheckpointCycleFailure(attempts int, err error) {
	streak := s.ckptFailStreak.Add(1)
	s.mgr.logf("session %q: checkpoint failed after %d attempt(s) (streak %d, keeping last good checkpoint): %v",
		s.id, attempts, streak, err)
	s.degrade(fmt.Sprintf("checkpoint save failed after %d attempt(s): %v", attempts, err))
}

// feedStream runs one frame through the reconstructor under streamMu.
// The unlock is deferred so a panicking pipeline (isolated in loop's
// recover) cannot leave the mutex held and wedge every observer.
func (s *Session) feedStream(it item) (err error, identified bool, cov float64) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	err = s.stream.Feed(it.frame, it.oracle)
	identified = s.stream.Identified()
	cov = s.stream.Snapshot().Coverage.Fraction()
	return err, identified, cov
}

// closeIntake stops accepting frames; idempotent.
func (s *Session) closeIntake() {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if !s.intakeClosed {
		s.intakeClosed = true
		close(s.queue)
	}
}

// Finalize closes the intake, waits for every queued frame to be
// processed and for the stream to finalize (pinning identification on
// short calls). The session stays registered and readable. Finalize is
// idempotent; it reports a worker panic as an error.
func (s *Session) Finalize() error {
	s.closeIntake()
	<-s.done
	if f := s.Failure(); f != "" {
		return fmt.Errorf("session %q: %w: %s", s.id, ErrFailed, f)
	}
	return nil
}

// Close finalizes the session and removes it from its manager. The
// returned *Session stays readable (Snapshot, Stats) after Close.
func (s *Session) Close() error {
	err := s.Finalize()
	s.mgr.remove(s.id, s)
	return err
}

// Drain blocks until every frame fed so far has finished processing
// (fed == dropped + rejected + processed), the worker exited, or the
// timeout passed. It does not close the intake — Drain is a barrier
// for a quiesced feeder (e.g. a coordinator that stopped routing
// frames to this session before migrating it); concurrent feeders can
// keep the session busy indefinitely. A non-positive timeout waits
// forever.
func (s *Session) Drain(timeout time.Duration) error {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	for {
		select {
		case <-s.done:
			return nil // worker exited: nothing more will be processed
		default:
		}
		if s.fed.Load() == s.dropped.Load()+s.rejected.Load()+s.processed.Load() {
			return nil
		}
		if timeout > 0 && time.Now().After(deadline) {
			return fmt.Errorf("session %q: drain: timed out after %s", s.id, timeout)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// CheckpointBytes serialises the stream's current state to canonical
// .bbck bytes without touching the configured CheckpointStore — the
// transport primitive behind coordinator-side checkpoint replication.
// The session keeps running; the bytes resume bit-identically via
// core.ResumeStream or Manager.ResumeSession.
func (s *Session) CheckpointBytes() ([]byte, error) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	return s.stream.Checkpoint()
}

// Detach closes the intake, drains the queue, and serialises the live
// stream to canonical .bbck bytes — the sending half of live
// migration. Unlike Finalize, the stream is NOT finalized:
// identification stays un-pinned and the pending window stays open, so
// the destination shard (Manager.ResumeSession) carries the call on
// bit-identically even when the migration lands inside the
// identification window. The session is removed from its manager,
// releasing its admission budget; the bytes are returned rather than
// written to the checkpoint store. A worker that already failed
// returns ErrFailed with the recorded failure.
func (s *Session) Detach() ([]byte, error) {
	s.detached.Store(true)
	s.closeIntake()
	<-s.done
	defer s.mgr.remove(s.id, s)
	if f := s.Failure(); f != "" {
		return nil, fmt.Errorf("session %q: %w: %s", s.id, ErrFailed, f)
	}
	s.streamMu.Lock()
	data, err := s.stream.Checkpoint()
	s.streamMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("session %q: detach: %w", s.id, err)
	}
	return data, nil
}

// Failure returns the panic message that killed the worker, or "".
func (s *Session) Failure() string {
	if v := s.failure.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Evicted reports whether the idle sweeper closed this session.
func (s *Session) Evicted() bool { return s.evicted.Load() }

// Snapshot returns a cloned point-in-time reconstruction: Recovered,
// Coverage, VBName, VBMode and DerivedCoverage. PerFrameLB is omitted
// — it grows per frame and a live observer has no use for it; use the
// batch Reconstruct on a recording when per-frame masks are needed.
func (s *Session) Snapshot() *core.Reconstruction {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	r := s.stream.Snapshot()
	return &core.Reconstruction{
		Recovered:       r.Recovered.Clone(),
		Coverage:        r.Coverage.Clone(),
		VBName:          r.VBName,
		VBMode:          r.VBMode,
		DerivedCoverage: r.DerivedCoverage,
	}
}

// CoverageSeries returns the retained residue-coverage-over-time
// window (one sample per processed frame, fraction in [0,1]).
func (s *Session) CoverageSeries() []stats.Sample { return s.coverage.Samples() }

// Snapshot is an instantaneous, internally consistent view of one
// session's counters and gauges.
type Snapshot struct {
	ID string

	// Intake counters: fed = dropped + rejected + processed + queued.
	FramesFed      uint64
	FramesDropped  uint64
	FramesRejected uint64
	// FramesGated counts quality-gate rejections — a subset of
	// FramesRejected (decode-inconsistent content screened out before
	// the reconstructor).
	FramesGated uint64
	// FramesProcessed counts frames the reconstructor accepted.
	FramesProcessed uint64
	// RejectStreak is the current run of consecutively rejected frames
	// (0 after any accepted frame); the opt-in
	// Config.DegradeAfterRejects/FailAfterRejects thresholds act on it,
	// per frame in both the Feed and FeedN paths.
	RejectStreak uint32

	// CoveragePct is the claimed RBRR (percent) at snapshot time.
	CoveragePct float64
	// DerivedCoverage is the unknown-VB derivation coverage in [0,1].
	DerivedCoverage float64

	// VBName and Identified reflect known-image identification;
	// IdentifyLatency is the wall time from session start to pin
	// (0 until pinned).
	VBName          string
	Identified      bool
	IdentifyLatency time.Duration

	// FeedLatency aggregates per-frame reconstruction latency.
	FeedLatency stats.LatencySummary

	// LastActivity is the most recent Feed (session start if never fed).
	LastActivity time.Time

	// StreamFrames is the reconstructor's cumulative frame counter. For
	// a session restored from a checkpoint it includes frames processed
	// before the restart, unlike FramesProcessed which counts only this
	// incarnation.
	StreamFrames uint64
	// MemBytes is the admission-time memory footprint charged against
	// Config.MemBudget (core.StreamReconstructor.MemFootprint at
	// registration) — the per-session denominator behind fleet density
	// figures like sessions per GB.
	MemBytes uint64
	// Restored reports the session came from Manager.Restore.
	Restored bool
	// Incarnation numbers the supervisor lineage for this id: 1 for the
	// original session, +1 per auto-restart (DESIGN.md §13).
	Incarnation int
	// ResumedFrames and ResumedCoverage are the checkpoint state this
	// incarnation resumed from — the floor its StreamFrames and coverage
	// start at. Zero for incarnation 1 and for a restart that found no
	// stored checkpoint.
	ResumedFrames   uint64
	ResumedCoverage float64
	// Checkpoints counts successful durable checkpoints; CheckpointErrors
	// counts failed attempts (encode or store; every retry counts).
	Checkpoints      uint64
	CheckpointErrors uint64
	// CheckpointRetries counts Save retries beyond each cycle's first
	// attempt; CheckpointFailStreak is the current run of consecutive
	// exhausted cycles (0 after any success).
	CheckpointRetries    uint64
	CheckpointFailStreak uint32
	// LastCheckpoint is when the newest durable checkpoint was saved
	// (zero time if never); its age bounds the frames a crash can lose.
	LastCheckpoint time.Time

	// Health is the degradation state (healthy/degraded/failed) and
	// HealthReasons the bounded transition log behind it; Stalls counts
	// watchdog-detected stall episodes.
	Health        Health
	HealthReasons []string
	Stalls        uint64

	Finalized bool
	Evicted   bool
	// Failure carries the worker panic or fatal-error message, if any.
	Failure string
}

// Stats assembles the session's observability snapshot. It is safe to
// call at any instant; it briefly locks the reconstructor to read the
// coverage gauge but never stops the intake.
func (s *Session) Stats() Snapshot {
	s.streamMu.Lock()
	r := s.stream.Snapshot()
	snap := Snapshot{
		ID:              s.id,
		CoveragePct:     r.Coverage.Fraction() * 100,
		DerivedCoverage: r.DerivedCoverage,
		VBName:          r.VBName,
		Identified:      s.stream.Identified(),
		Finalized:       s.stream.Finalized(),
		StreamFrames:    uint64(s.stream.Frames()),
	}
	s.streamMu.Unlock()
	snap.MemBytes = s.memBytes
	snap.Restored = s.restored
	snap.Incarnation = s.incarnation
	snap.ResumedFrames = s.resumedFrames
	snap.ResumedCoverage = s.resumedCov
	snap.Checkpoints = s.ckpts.Load()
	snap.CheckpointErrors = s.ckptErrs.Load()
	snap.CheckpointRetries = s.ckptRetries.Load()
	snap.CheckpointFailStreak = s.ckptFailStreak.Load()
	if ns := s.lastCkptNs.Load(); ns != 0 {
		snap.LastCheckpoint = time.Unix(0, ns)
	}

	snap.Health = s.Health()
	snap.HealthReasons = s.HealthReasons()
	snap.Stalls = s.stalls.Load()

	snap.FramesFed = s.fed.Load()
	snap.FramesDropped = s.dropped.Load()
	snap.FramesRejected = s.rejected.Load()
	snap.FramesGated = s.gated.Load()
	snap.FramesProcessed = s.processed.Load()
	snap.RejectStreak = s.rejectStreak.Load()
	snap.IdentifyLatency = time.Duration(s.pinnedNs.Load())
	snap.FeedLatency = s.feedLat.Summary()
	snap.LastActivity = time.Unix(0, s.lastFeed.Load())
	snap.Evicted = s.evicted.Load()
	snap.Failure = s.Failure()
	return snap
}
