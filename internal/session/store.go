package session

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CheckpointStore persists per-session .bbck checkpoints so a restarted
// fleet can pick up every call where it left off (Manager.Restore).
// Implementations must be safe for concurrent use: each session worker
// saves its own checkpoints while Restore lists and loads.
type CheckpointStore interface {
	// Save durably replaces the checkpoint for a session id.
	Save(id string, data []byte) error
	// Load returns the last saved checkpoint for a session id.
	Load(id string) ([]byte, error)
	// List returns every session id with a stored checkpoint.
	List() ([]string, error)
	// Delete removes a session's checkpoint; deleting a missing id is
	// not an error.
	Delete(id string) error
}

// checkpointExt is the on-disk suffix of DirStore entries.
const checkpointExt = ".bbck"

// DirStore is a CheckpointStore over a flat directory: one
// hex(id).bbck file per session, written atomically (temp file +
// rename) so a crash mid-save leaves the previous checkpoint intact.
// Session ids are hex-encoded in the file name, so arbitrary ids —
// including path separators — cannot escape the directory.
type DirStore struct {
	dir string
	mu  sync.Mutex
}

var _ CheckpointStore = (*DirStore)(nil)

// NewDirStore opens (creating if needed) a checkpoint directory.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: checkpoint dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (d *DirStore) Dir() string { return d.dir }

func (d *DirStore) path(id string) string {
	return filepath.Join(d.dir, hex.EncodeToString([]byte(id))+checkpointExt)
}

// Save writes the checkpoint atomically.
func (d *DirStore) Save(id string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, "tmp-*"+checkpointExt+".partial")
	if err != nil {
		return fmt.Errorf("session: checkpoint save %q: %w", id, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), d.path(id))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("session: checkpoint save %q: %w", id, werr)
	}
	return nil
}

// Load reads a session's checkpoint.
func (d *DirStore) Load(id string) ([]byte, error) {
	data, err := os.ReadFile(d.path(id))
	if err != nil {
		return nil, fmt.Errorf("session: checkpoint load %q: %w", id, err)
	}
	return data, nil
}

// List returns the stored session ids in sorted order. Files that are
// not hex(id).bbck (including interrupted .partial temporaries) are
// skipped, not errors.
func (d *DirStore) List() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("session: checkpoint list: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, checkpointExt) {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, checkpointExt))
		if err != nil {
			continue
		}
		ids = append(ids, string(raw))
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete removes a session's checkpoint.
func (d *DirStore) Delete(id string) error {
	err := os.Remove(d.path(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("session: checkpoint delete %q: %w", id, err)
	}
	return nil
}

// MemStore is an in-memory CheckpointStore for tests and ephemeral
// fleets (durable across Manager restarts within one process, not
// across process restarts).
type MemStore struct {
	mu   sync.Mutex
	data map[string][]byte
}

var _ CheckpointStore = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{data: map[string][]byte{}} }

// Save stores a copy of data.
func (m *MemStore) Save(id string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[id] = append([]byte(nil), data...)
	return nil
}

// Load returns a copy of the stored checkpoint.
func (m *MemStore) Load(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.data[id]
	if !ok {
		return nil, fmt.Errorf("session: checkpoint load %q: %w", id, os.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

// List returns the stored ids in sorted order.
func (m *MemStore) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.data))
	for id := range m.data {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete removes a stored checkpoint.
func (m *MemStore) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data, id)
	return nil
}
