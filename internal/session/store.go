package session

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CheckpointStore persists per-session .bbck checkpoints so a restarted
// fleet can pick up every call where it left off (Manager.Restore).
// Implementations must be safe for concurrent use: each session worker
// saves its own checkpoints while Restore lists and loads.
type CheckpointStore interface {
	// Save durably replaces the checkpoint for a session id.
	Save(id string, data []byte) error
	// Load returns the last saved checkpoint for a session id.
	Load(id string) ([]byte, error)
	// List returns every session id with a stored checkpoint.
	List() ([]string, error)
	// Delete removes a session's checkpoint; deleting a missing id is
	// not an error.
	Delete(id string) error
}

// checkpointExt is the on-disk suffix of DirStore entries.
const checkpointExt = ".bbck"

// DirStore is a CheckpointStore over a flat directory: one
// hex(id).bbck file per session, written atomically (temp file +
// rename) so a crash mid-save leaves the previous checkpoint intact.
// Session ids are hex-encoded in the file name, so arbitrary ids —
// including path separators — cannot escape the directory.
//
// A checkpoint directory belongs to one fleet at a time: NewDirStore
// sweeps temp files a crashed predecessor left behind, which would
// race with another live fleet writing the same directory.
type DirStore struct {
	dir     string
	mu      sync.Mutex
	orphans []string // temp-file debris swept at open or by Sweep
}

var _ CheckpointStore = (*DirStore)(nil)

// NewDirStore opens (creating if needed) a checkpoint directory. It
// probes writability up front — an unwritable checkpoint dir is a
// misconfiguration better surfaced at startup than as degraded
// sessions hours into a run — and sweeps orphaned temp files left by a
// crash between CreateTemp and rename (see Orphans).
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: checkpoint dir: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("session: checkpoint dir %s is not writable: %w", dir, err)
	}
	probe.Close()
	if err := os.Remove(probe.Name()); err != nil {
		return nil, fmt.Errorf("session: checkpoint dir %s: cannot remove probe: %w", dir, err)
	}
	d := &DirStore{dir: dir}
	d.orphans, _ = d.sweepLocked() // open-time sweep; removal failures retry on the next Sweep
	return d, nil
}

// isOrphanName reports whether a directory entry is Save/probe debris
// rather than durable state: interrupted "tmp-*.bbck.partial"
// temporaries, ".probe-*" writability probes a crash left behind, and
// generic "*.tmp" leftovers. Real checkpoints (hex(id).bbck) never
// match.
func isOrphanName(name string) bool {
	if strings.HasPrefix(name, "tmp-") && strings.HasSuffix(name, ".partial") {
		return true
	}
	if strings.HasPrefix(name, ".probe-") {
		return true
	}
	return strings.HasSuffix(name, ".tmp")
}

// sweepLocked removes temp-file debris and returns the names removed.
// It works from a fresh directory listing, so temps whose earlier
// cleanup failed (a Save error path that could not reclaim its temp)
// are retried on every sweep. Caller holds d.mu (or owns d exclusively,
// as in NewDirStore).
func (d *DirStore) sweepLocked() (removed []string, err error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("session: checkpoint sweep: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !isOrphanName(name) {
			continue
		}
		if rerr := os.Remove(filepath.Join(d.dir, name)); rerr == nil || os.IsNotExist(rerr) {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	return removed, nil
}

// Sweep removes temp-file debris from the checkpoint directory —
// interrupted "tmp-*.bbck.partial" Save temporaries, ".probe-*"
// writability probes, and "*.tmp" leftovers — and returns the names it
// removed. NewDirStore sweeps once at open; a long-running fleet calls
// Sweep to reclaim space later, e.g. after a Save error reported a
// temp it could not clean up. Checkpoints themselves are never
// touched.
func (d *DirStore) Sweep() ([]string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	removed, err := d.sweepLocked()
	d.orphans = append(d.orphans, removed...)
	return removed, err
}

// Orphans returns the temp-file debris swept away so far (at open and
// by every Sweep) — each entry a Save or probe some process never
// completed.
func (d *DirStore) Orphans() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.orphans...)
}

// Dir returns the backing directory.
func (d *DirStore) Dir() string { return d.dir }

func (d *DirStore) path(id string) string {
	return filepath.Join(d.dir, hex.EncodeToString([]byte(id))+checkpointExt)
}

// Save writes the checkpoint atomically.
func (d *DirStore) Save(id string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, "tmp-*"+checkpointExt+".partial")
	if err != nil {
		return fmt.Errorf("session: checkpoint save %q: %w", id, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), d.path(id))
	}
	if werr != nil {
		if rerr := os.Remove(tmp.Name()); rerr != nil && !os.IsNotExist(rerr) {
			// The temp could not be reclaimed either (unwritable or
			// vanished directory, permission flip). Name it in the error
			// so the operator knows; the next Sweep relists the directory
			// and retries the removal.
			return fmt.Errorf("session: checkpoint save %q: %w (temp %s left for Sweep)",
				id, werr, filepath.Base(tmp.Name()))
		}
		return fmt.Errorf("session: checkpoint save %q: %w", id, werr)
	}
	return nil
}

// Load reads a session's checkpoint.
func (d *DirStore) Load(id string) ([]byte, error) {
	data, err := os.ReadFile(d.path(id))
	if err != nil {
		return nil, fmt.Errorf("session: checkpoint load %q: %w", id, err)
	}
	return data, nil
}

// List returns the stored session ids in sorted order. Files that are
// not hex(id).bbck (interrupted .partial temporaries, foreign files,
// undecodable names) are skipped, not errors; use ListDetailed when
// the skipped names matter.
func (d *DirStore) List() ([]string, error) {
	ids, _, err := d.ListDetailed()
	return ids, err
}

// ListDetailed returns the stored session ids in sorted order plus the
// file names it skipped: foreign files someone else dropped in the
// directory and .bbck entries whose names do not decode as hex ids.
// A skipped file is reported, never an error and never deleted — the
// checkpoint dir is durable state; judgement on unknown bytes belongs
// to the operator (DESIGN.md §12).
func (d *DirStore) ListDetailed() (ids, skipped []string, err error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("session: checkpoint list: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			skipped = append(skipped, name)
			continue
		}
		if !strings.HasSuffix(name, checkpointExt) {
			skipped = append(skipped, name)
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, checkpointExt))
		if err != nil {
			skipped = append(skipped, name)
			continue
		}
		ids = append(ids, string(raw))
	}
	sort.Strings(ids)
	sort.Strings(skipped)
	return ids, skipped, nil
}

// Delete removes a session's checkpoint.
func (d *DirStore) Delete(id string) error {
	err := os.Remove(d.path(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("session: checkpoint delete %q: %w", id, err)
	}
	return nil
}

// MemStore is an in-memory CheckpointStore for tests and ephemeral
// fleets (durable across Manager restarts within one process, not
// across process restarts).
type MemStore struct {
	mu   sync.Mutex
	data map[string][]byte
}

var _ CheckpointStore = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{data: map[string][]byte{}} }

// Save stores a copy of data.
func (m *MemStore) Save(id string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[id] = append([]byte(nil), data...)
	return nil
}

// Load returns a copy of the stored checkpoint.
func (m *MemStore) Load(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.data[id]
	if !ok {
		return nil, fmt.Errorf("session: checkpoint load %q: %w", id, os.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

// List returns the stored ids in sorted order.
func (m *MemStore) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.data))
	for id := range m.data {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete removes a stored checkpoint.
func (m *MemStore) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data, id)
	return nil
}
