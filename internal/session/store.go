package session

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CheckpointStore persists per-session .bbck checkpoints so a restarted
// fleet can pick up every call where it left off (Manager.Restore).
// Implementations must be safe for concurrent use: each session worker
// saves its own checkpoints while Restore lists and loads.
type CheckpointStore interface {
	// Save durably replaces the checkpoint for a session id.
	Save(id string, data []byte) error
	// Load returns the last saved checkpoint for a session id.
	Load(id string) ([]byte, error)
	// List returns every session id with a stored checkpoint.
	List() ([]string, error)
	// Delete removes a session's checkpoint; deleting a missing id is
	// not an error.
	Delete(id string) error
}

// checkpointExt is the on-disk suffix of DirStore entries.
const checkpointExt = ".bbck"

// DirStore is a CheckpointStore over a flat directory: one
// hex(id).bbck file per session, written atomically (temp file +
// rename) so a crash mid-save leaves the previous checkpoint intact.
// Session ids are hex-encoded in the file name, so arbitrary ids —
// including path separators — cannot escape the directory.
//
// A checkpoint directory belongs to one fleet at a time: NewDirStore
// sweeps temp files a crashed predecessor left behind, which would
// race with another live fleet writing the same directory.
type DirStore struct {
	dir     string
	mu      sync.Mutex
	orphans []string // interrupted temp files swept at open
}

var _ CheckpointStore = (*DirStore)(nil)

// NewDirStore opens (creating if needed) a checkpoint directory. It
// probes writability up front — an unwritable checkpoint dir is a
// misconfiguration better surfaced at startup than as degraded
// sessions hours into a run — and sweeps orphaned temp files left by a
// crash between CreateTemp and rename (see Orphans).
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("session: checkpoint dir: %w", err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("session: checkpoint dir %s is not writable: %w", dir, err)
	}
	probe.Close()
	if err := os.Remove(probe.Name()); err != nil {
		return nil, fmt.Errorf("session: checkpoint dir %s: cannot remove probe: %w", dir, err)
	}
	d := &DirStore{dir: dir}
	d.sweepOrphans()
	return d, nil
}

// sweepOrphans removes interrupted Save temporaries from a previous
// crashed process. Failures to remove are recorded, not fatal — an
// orphan is garbage, never a checkpoint.
func (d *DirStore) sweepOrphans() {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "tmp-") || !strings.HasSuffix(name, ".partial") {
			continue
		}
		if err := os.Remove(filepath.Join(d.dir, name)); err == nil {
			d.orphans = append(d.orphans, name)
		}
	}
}

// Orphans returns the interrupted temp files NewDirStore swept away —
// each one a Save some earlier process never completed.
func (d *DirStore) Orphans() []string {
	return append([]string(nil), d.orphans...)
}

// Dir returns the backing directory.
func (d *DirStore) Dir() string { return d.dir }

func (d *DirStore) path(id string) string {
	return filepath.Join(d.dir, hex.EncodeToString([]byte(id))+checkpointExt)
}

// Save writes the checkpoint atomically.
func (d *DirStore) Save(id string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	tmp, err := os.CreateTemp(d.dir, "tmp-*"+checkpointExt+".partial")
	if err != nil {
		return fmt.Errorf("session: checkpoint save %q: %w", id, err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), d.path(id))
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("session: checkpoint save %q: %w", id, werr)
	}
	return nil
}

// Load reads a session's checkpoint.
func (d *DirStore) Load(id string) ([]byte, error) {
	data, err := os.ReadFile(d.path(id))
	if err != nil {
		return nil, fmt.Errorf("session: checkpoint load %q: %w", id, err)
	}
	return data, nil
}

// List returns the stored session ids in sorted order. Files that are
// not hex(id).bbck (interrupted .partial temporaries, foreign files,
// undecodable names) are skipped, not errors; use ListDetailed when
// the skipped names matter.
func (d *DirStore) List() ([]string, error) {
	ids, _, err := d.ListDetailed()
	return ids, err
}

// ListDetailed returns the stored session ids in sorted order plus the
// file names it skipped: foreign files someone else dropped in the
// directory and .bbck entries whose names do not decode as hex ids.
// A skipped file is reported, never an error and never deleted — the
// checkpoint dir is durable state; judgement on unknown bytes belongs
// to the operator (DESIGN.md §12).
func (d *DirStore) ListDetailed() (ids, skipped []string, err error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("session: checkpoint list: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			skipped = append(skipped, name)
			continue
		}
		if !strings.HasSuffix(name, checkpointExt) {
			skipped = append(skipped, name)
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, checkpointExt))
		if err != nil {
			skipped = append(skipped, name)
			continue
		}
		ids = append(ids, string(raw))
	}
	sort.Strings(ids)
	sort.Strings(skipped)
	return ids, skipped, nil
}

// Delete removes a session's checkpoint.
func (d *DirStore) Delete(id string) error {
	err := os.Remove(d.path(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("session: checkpoint delete %q: %w", id, err)
	}
	return nil
}

// MemStore is an in-memory CheckpointStore for tests and ephemeral
// fleets (durable across Manager restarts within one process, not
// across process restarts).
type MemStore struct {
	mu   sync.Mutex
	data map[string][]byte
}

var _ CheckpointStore = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{data: map[string][]byte{}} }

// Save stores a copy of data.
func (m *MemStore) Save(id string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[id] = append([]byte(nil), data...)
	return nil
}

// Load returns a copy of the stored checkpoint.
func (m *MemStore) Load(id string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.data[id]
	if !ok {
		return nil, fmt.Errorf("session: checkpoint load %q: %w", id, os.ErrNotExist)
	}
	return append([]byte(nil), data...), nil
}

// List returns the stored ids in sorted order.
func (m *MemStore) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.data))
	for id := range m.data {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Delete removes a stored checkpoint.
func (m *MemStore) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data, id)
	return nil
}
