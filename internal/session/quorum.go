package session

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// ErrQuorum is wrapped by every quorum-store operation that could not
// reach its write quorum — the caller's signal that durability is
// below the configured floor, not merely that one replica hiccuped.
var ErrQuorum = errors.New("session: checkpoint write quorum not met")

// QuorumStore fans checkpoint writes out to W-of-N replica stores and
// reads back from any surviving replica — the durability layer fleet
// coordinator failover stands on (DESIGN.md §17). Each id maps to a
// deterministic chain of Replicas consecutive stores (hash-selected,
// so replica load spreads), a write succeeds once WriteQuorum replicas
// have it, and a read walks the chain first and every other store
// second, returning the first hit. With Replicas == len(stores) every
// store holds every checkpoint and any single survivor can restore
// the whole fleet.
//
// Safe for concurrent use when the underlying stores are.
type QuorumStore struct {
	stores   []CheckpointStore
	replicas int // N: stores written per id
	quorum   int // W: successes required
}

var _ CheckpointStore = (*QuorumStore)(nil)

// NewQuorumStore builds a quorum store over the given replicas.
// replicas <= 0 means "all stores"; quorum <= 0 means a majority of
// the replica count ((replicas/2)+1).
func NewQuorumStore(stores []CheckpointStore, replicas, quorum int) (*QuorumStore, error) {
	if len(stores) == 0 {
		return nil, errors.New("session: quorum store needs at least one replica store")
	}
	if replicas <= 0 || replicas > len(stores) {
		replicas = len(stores)
	}
	if quorum <= 0 {
		quorum = replicas/2 + 1
	}
	if quorum > replicas {
		return nil, fmt.Errorf("session: write quorum %d exceeds replica factor %d", quorum, replicas)
	}
	return &QuorumStore{stores: stores, replicas: replicas, quorum: quorum}, nil
}

// Replication returns the (replica factor, write quorum) pair.
func (q *QuorumStore) Replication() (replicas, quorum int) { return q.replicas, q.quorum }

// chain returns the replica store indices for an id: Replicas
// consecutive stores starting at a hash-selected offset.
func (q *QuorumStore) chain(id string) []int {
	h := fnv.New64a()
	h.Write([]byte(id))
	start := int(h.Sum64() % uint64(len(q.stores)))
	idx := make([]int, q.replicas)
	for i := range idx {
		idx[i] = (start + i) % len(q.stores)
	}
	return idx
}

// Save writes the checkpoint to the id's replica chain, succeeding
// once the write quorum is met. Per-replica failures below the quorum
// threshold are absorbed (the fleet runs degraded, not down); at or
// past it they join into an ErrQuorum.
func (q *QuorumStore) Save(id string, data []byte) error {
	ok := 0
	var errs []error
	for _, i := range q.chain(id) {
		if err := q.stores[i].Save(id, data); err != nil {
			errs = append(errs, fmt.Errorf("replica %d: %w", i, err))
		} else {
			ok++
		}
	}
	if ok < q.quorum {
		return fmt.Errorf("%w for %q: %d/%d writes succeeded: %w",
			ErrQuorum, id, ok, q.quorum, errors.Join(errs...))
	}
	return nil
}

// Load returns the checkpoint from the first replica that has it — the
// id's chain in order, then every remaining store (a rebalanced or
// over-replicated copy still counts). Only when every store misses or
// fails does Load fail.
func (q *QuorumStore) Load(id string) ([]byte, error) {
	tried := make(map[int]bool, len(q.stores))
	var errs []error
	try := func(i int) ([]byte, bool) {
		if tried[i] {
			return nil, false
		}
		tried[i] = true
		data, err := q.stores[i].Load(id)
		if err != nil {
			errs = append(errs, fmt.Errorf("replica %d: %w", i, err))
			return nil, false
		}
		return data, true
	}
	for _, i := range q.chain(id) {
		if data, ok := try(i); ok {
			return data, nil
		}
	}
	for i := range q.stores {
		if data, ok := try(i); ok {
			return data, nil
		}
	}
	return nil, fmt.Errorf("session: no replica holds checkpoint %q: %w", id, errors.Join(errs...))
}

// List returns the union of ids across every store — any id with at
// least one surviving replica is restorable.
func (q *QuorumStore) List() ([]string, error) {
	seen := map[string]bool{}
	var errs []error
	ok := 0
	for i, s := range q.stores {
		ids, err := s.List()
		if err != nil {
			errs = append(errs, fmt.Errorf("replica %d: %w", i, err))
			continue
		}
		ok++
		for _, id := range ids {
			seen[id] = true
		}
	}
	if ok == 0 {
		return nil, fmt.Errorf("session: every quorum replica failed to list: %w", errors.Join(errs...))
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// OrphanError reports a Delete that met its chain quorum — the id is
// gone as far as reads are concerned — but left replicas behind on
// stores whose delete failed. The session is safely removed; the
// leftover copies leak space and would resurrect the id in List until
// a scrub sweeps them. Callers that only care about logical removal
// may log and continue; the scrubber (Scrub) repairs the physical
// leak.
type OrphanError struct {
	ID       string
	Leftover int   // replica deletes that failed
	Err      error // the joined per-replica failures
}

func (e *OrphanError) Error() string {
	return fmt.Sprintf("session: delete %q left %d orphaned replica(s): %v", e.ID, e.Leftover, e.Err)
}

func (e *OrphanError) Unwrap() error { return e.Err }

// Delete removes the id from every store (not just its chain — a
// rebalance may have left copies elsewhere). Deleting a missing id is
// not an error. Failing the chain quorum of deletes is an ErrQuorum
// (the id may still be readable); succeeding the quorum while some
// replica deletes fail returns an *OrphanError so the leaked copies
// are surfaced instead of silently retained.
func (q *QuorumStore) Delete(id string) error {
	var errs []error
	okChain, failed := 0, 0
	chain := map[int]bool{}
	for _, i := range q.chain(id) {
		chain[i] = true
	}
	for i, s := range q.stores {
		if err := s.Delete(id); err != nil {
			errs = append(errs, fmt.Errorf("replica %d: %w", i, err))
			failed++
		} else if chain[i] {
			okChain++
		}
	}
	if okChain < q.quorum {
		return fmt.Errorf("%w deleting %q: %d/%d chain deletes succeeded: %w",
			ErrQuorum, id, okChain, q.quorum, errors.Join(errs...))
	}
	if failed > 0 {
		return &OrphanError{ID: id, Leftover: failed, Err: errors.Join(errs...)}
	}
	return nil
}

// ScrubConfig parameterises one Scrub pass.
type ScrubConfig struct {
	// Live reports whether an id is still wanted (nil: everything is).
	// Ids that are not live are swept from every store — this is what
	// cleans up replicas orphaned by partial Delete failures.
	Live func(id string) bool
	// Verify validates one replica's bytes (nil: any bytes verify).
	// Copies failing verification count as corrupt and are rewritten
	// from a valid replica when one exists.
	Verify func(id string, data []byte) error
}

// ScrubReport counts one Scrub pass's findings and repairs.
type ScrubReport struct {
	Checked      int // live ids examined
	Repaired     int // replica copies rewritten onto chain stores
	Swept        int // dead-id replica copies removed
	Corrupt      int // copies that failed verification
	Unrepairable int // live ids with no valid copy on any store
}

// Scrub walks every id across every store and restores the replication
// invariant: each live id holds a verified copy on every store of its
// chain (so the next shard/replica loss stays survivable — W-of-N is
// re-established after under-replication), divergent or corrupt chain
// copies are rewritten from the canonical replica (the first valid
// copy in chain order — the same copy Load would return), and ids no
// longer live are deleted from every store. Per-store failures degrade
// the pass (counted, logged by the caller via the returned error), they
// do not abort it.
func (q *QuorumStore) Scrub(cfg ScrubConfig) (ScrubReport, error) {
	var rep ScrubReport
	ids, err := q.List()
	if err != nil {
		return rep, err
	}
	var errs []error
	for _, id := range ids {
		if cfg.Live != nil && !cfg.Live(id) {
			// Dead id: sweep every copy. Load-then-delete per store so
			// only stores actually holding a copy count as swept.
			for i, s := range q.stores {
				if _, lerr := s.Load(id); lerr != nil {
					continue
				}
				if derr := s.Delete(id); derr != nil {
					errs = append(errs, fmt.Errorf("sweep %q replica %d: %w", id, i, derr))
					continue
				}
				rep.Swept++
			}
			continue
		}
		rep.Checked++

		// Find the canonical copy: the first valid replica in chain
		// order (matching Load's read preference), then any other store.
		chain := q.chain(id)
		inChain := map[int]bool{}
		for _, i := range chain {
			inChain[i] = true
		}
		valid := func(i int) []byte {
			data, lerr := q.stores[i].Load(id)
			if lerr != nil {
				return nil
			}
			if cfg.Verify != nil {
				if verr := cfg.Verify(id, data); verr != nil {
					rep.Corrupt++
					errs = append(errs, fmt.Errorf("verify %q replica %d: %w", id, i, verr))
					return nil
				}
			}
			return data
		}
		var canonical []byte
		seen := map[int][]byte{} // replica index -> its (valid) bytes, nil = missing/corrupt
		for _, i := range chain {
			seen[i] = valid(i)
			if canonical == nil {
				canonical = seen[i]
			}
		}
		if canonical == nil {
			for i := range q.stores {
				if inChain[i] {
					continue
				}
				if canonical = valid(i); canonical != nil {
					break
				}
			}
		}
		if canonical == nil {
			rep.Unrepairable++
			errs = append(errs, fmt.Errorf("scrub %q: no valid replica on any store", id))
			continue
		}

		// Restore the chain: every chain store gets the canonical bytes.
		for _, i := range chain {
			if data := seen[i]; data != nil && string(data) == string(canonical) {
				continue
			}
			if serr := q.stores[i].Save(id, canonical); serr != nil {
				errs = append(errs, fmt.Errorf("repair %q replica %d: %w", id, i, serr))
				continue
			}
			rep.Repaired++
		}
	}
	return rep, errors.Join(errs...)
}
