package session

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// ErrQuorum is wrapped by every quorum-store operation that could not
// reach its write quorum — the caller's signal that durability is
// below the configured floor, not merely that one replica hiccuped.
var ErrQuorum = errors.New("session: checkpoint write quorum not met")

// QuorumStore fans checkpoint writes out to W-of-N replica stores and
// reads back from any surviving replica — the durability layer fleet
// coordinator failover stands on (DESIGN.md §17). Each id maps to a
// deterministic chain of Replicas consecutive stores (hash-selected,
// so replica load spreads), a write succeeds once WriteQuorum replicas
// have it, and a read walks the chain first and every other store
// second, returning the first hit. With Replicas == len(stores) every
// store holds every checkpoint and any single survivor can restore
// the whole fleet.
//
// Safe for concurrent use when the underlying stores are.
type QuorumStore struct {
	stores   []CheckpointStore
	replicas int // N: stores written per id
	quorum   int // W: successes required
}

var _ CheckpointStore = (*QuorumStore)(nil)

// NewQuorumStore builds a quorum store over the given replicas.
// replicas <= 0 means "all stores"; quorum <= 0 means a majority of
// the replica count ((replicas/2)+1).
func NewQuorumStore(stores []CheckpointStore, replicas, quorum int) (*QuorumStore, error) {
	if len(stores) == 0 {
		return nil, errors.New("session: quorum store needs at least one replica store")
	}
	if replicas <= 0 || replicas > len(stores) {
		replicas = len(stores)
	}
	if quorum <= 0 {
		quorum = replicas/2 + 1
	}
	if quorum > replicas {
		return nil, fmt.Errorf("session: write quorum %d exceeds replica factor %d", quorum, replicas)
	}
	return &QuorumStore{stores: stores, replicas: replicas, quorum: quorum}, nil
}

// Replication returns the (replica factor, write quorum) pair.
func (q *QuorumStore) Replication() (replicas, quorum int) { return q.replicas, q.quorum }

// chain returns the replica store indices for an id: Replicas
// consecutive stores starting at a hash-selected offset.
func (q *QuorumStore) chain(id string) []int {
	h := fnv.New64a()
	h.Write([]byte(id))
	start := int(h.Sum64() % uint64(len(q.stores)))
	idx := make([]int, q.replicas)
	for i := range idx {
		idx[i] = (start + i) % len(q.stores)
	}
	return idx
}

// Save writes the checkpoint to the id's replica chain, succeeding
// once the write quorum is met. Per-replica failures below the quorum
// threshold are absorbed (the fleet runs degraded, not down); at or
// past it they join into an ErrQuorum.
func (q *QuorumStore) Save(id string, data []byte) error {
	ok := 0
	var errs []error
	for _, i := range q.chain(id) {
		if err := q.stores[i].Save(id, data); err != nil {
			errs = append(errs, fmt.Errorf("replica %d: %w", i, err))
		} else {
			ok++
		}
	}
	if ok < q.quorum {
		return fmt.Errorf("%w for %q: %d/%d writes succeeded: %w",
			ErrQuorum, id, ok, q.quorum, errors.Join(errs...))
	}
	return nil
}

// Load returns the checkpoint from the first replica that has it — the
// id's chain in order, then every remaining store (a rebalanced or
// over-replicated copy still counts). Only when every store misses or
// fails does Load fail.
func (q *QuorumStore) Load(id string) ([]byte, error) {
	tried := make(map[int]bool, len(q.stores))
	var errs []error
	try := func(i int) ([]byte, bool) {
		if tried[i] {
			return nil, false
		}
		tried[i] = true
		data, err := q.stores[i].Load(id)
		if err != nil {
			errs = append(errs, fmt.Errorf("replica %d: %w", i, err))
			return nil, false
		}
		return data, true
	}
	for _, i := range q.chain(id) {
		if data, ok := try(i); ok {
			return data, nil
		}
	}
	for i := range q.stores {
		if data, ok := try(i); ok {
			return data, nil
		}
	}
	return nil, fmt.Errorf("session: no replica holds checkpoint %q: %w", id, errors.Join(errs...))
}

// List returns the union of ids across every store — any id with at
// least one surviving replica is restorable.
func (q *QuorumStore) List() ([]string, error) {
	seen := map[string]bool{}
	var errs []error
	ok := 0
	for i, s := range q.stores {
		ids, err := s.List()
		if err != nil {
			errs = append(errs, fmt.Errorf("replica %d: %w", i, err))
			continue
		}
		ok++
		for _, id := range ids {
			seen[id] = true
		}
	}
	if ok == 0 {
		return nil, fmt.Errorf("session: every quorum replica failed to list: %w", errors.Join(errs...))
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out, nil
}

// Delete removes the id from every store (not just its chain — a
// rebalance may have left copies elsewhere). Deleting a missing id is
// not an error; failing to reach the quorum of successful deletes on
// the chain is.
func (q *QuorumStore) Delete(id string) error {
	var errs []error
	okChain := 0
	chain := map[int]bool{}
	for _, i := range q.chain(id) {
		chain[i] = true
	}
	for i, s := range q.stores {
		if err := s.Delete(id); err != nil {
			errs = append(errs, fmt.Errorf("replica %d: %w", i, err))
		} else if chain[i] {
			okChain++
		}
	}
	if okChain < q.quorum {
		return fmt.Errorf("%w deleting %q: %d/%d chain deletes succeeded: %w",
			ErrQuorum, id, okChain, q.quorum, errors.Join(errs...))
	}
	return nil
}
