package session

import (
	"errors"
	"fmt"
	"testing"
)

// brokenStore fails every operation — a dead replica.
type brokenStore struct{}

var errDead = errors.New("replica dead")

func (brokenStore) Save(string, []byte) error   { return errDead }
func (brokenStore) Load(string) ([]byte, error) { return nil, errDead }
func (brokenStore) List() ([]string, error)     { return nil, errDead }
func (brokenStore) Delete(string) error         { return errDead }

func TestQuorumStoreValidate(t *testing.T) {
	if _, err := NewQuorumStore(nil, 0, 0); err == nil {
		t.Fatal("empty store list accepted")
	}
	if _, err := NewQuorumStore([]CheckpointStore{NewMemStore()}, 1, 2); err == nil {
		t.Fatal("quorum 2 over 1 replica accepted")
	}
	q, err := NewQuorumStore([]CheckpointStore{NewMemStore(), NewMemStore(), NewMemStore()}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, w := q.Replication(); r != 3 || w != 2 {
		t.Fatalf("defaults over 3 stores = (N=%d, W=%d), want (3, 2)", r, w)
	}
}

// TestQuorumStoreRoundTrip proves Save/Load/List/Delete behave like a
// single store when every replica is healthy.
func TestQuorumStoreRoundTrip(t *testing.T) {
	mems := []*MemStore{NewMemStore(), NewMemStore(), NewMemStore()}
	q, err := NewQuorumStore([]CheckpointStore{mems[0], mems[1], mems[2]}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("mtg-%d", i)
		if err := q.Save(id, []byte(id+"-ckpt")); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := q.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 8 {
		t.Fatalf("List returned %d ids, want 8: %v", len(ids), ids)
	}
	for _, id := range ids {
		data, err := q.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != id+"-ckpt" {
			t.Fatalf("Load(%q) = %q", id, data)
		}
	}
	// With N=2 over 3 stores, each id lives on exactly 2 replicas.
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("mtg-%d", i)
		copies := 0
		for _, m := range mems {
			if _, err := m.Load(id); err == nil {
				copies++
			}
		}
		if copies != 2 {
			t.Fatalf("id %q has %d copies, want exactly N=2", id, copies)
		}
	}
	if err := q.Delete("mtg-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Load("mtg-0"); err == nil {
		t.Fatal("Load succeeded after Delete")
	}
}

// TestQuorumStoreSurvivesMinorityFailure proves W-of-N semantics: with
// N=3/W=2, one dead replica is absorbed on both the write and read
// paths, and recovery reads work from any surviving copy.
func TestQuorumStoreSurvivesMinorityFailure(t *testing.T) {
	alive1, alive2 := NewMemStore(), NewMemStore()
	q, err := NewQuorumStore([]CheckpointStore{alive1, brokenStore{}, alive2}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Save("mtg", []byte("ckpt")); err != nil {
		t.Fatalf("save with 2/3 replicas alive: %v", err)
	}
	data, err := q.Load("mtg")
	if err != nil {
		t.Fatalf("load with 2/3 replicas alive: %v", err)
	}
	if string(data) != "ckpt" {
		t.Fatalf("Load = %q", data)
	}
	ids, err := q.List()
	if err != nil || len(ids) != 1 {
		t.Fatalf("List = (%v, %v)", ids, err)
	}
	// The id survives even when one of its two live copies is deleted:
	// Load falls back past the chain to any store that still has it.
	_ = alive1.Delete("mtg")
	if data, err = q.Load("mtg"); err != nil || string(data) != "ckpt" {
		t.Fatalf("Load from the last surviving replica = (%q, %v)", data, err)
	}
}

// TestQuorumStoreFailsBelowQuorum proves a write that cannot reach W
// replicas reports ErrQuorum instead of claiming durability.
func TestQuorumStoreFailsBelowQuorum(t *testing.T) {
	q, err := NewQuorumStore([]CheckpointStore{NewMemStore(), brokenStore{}, brokenStore{}}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	saveErr := q.Save("mtg", []byte("ckpt"))
	if !errors.Is(saveErr, ErrQuorum) {
		t.Fatalf("save with 1/3 replicas alive = %v, want ErrQuorum", saveErr)
	}
	if !errors.Is(saveErr, errDead) {
		t.Fatalf("quorum error does not carry the replica failures: %v", saveErr)
	}
	// The single successful copy is still readable — degraded, not lost.
	if data, err := q.Load("mtg"); err != nil || string(data) != "ckpt" {
		t.Fatalf("Load after failed-quorum save = (%q, %v)", data, err)
	}
	if _, err := q.Load("missing"); err == nil {
		t.Fatal("Load of a never-saved id succeeded")
	}
}

// stickyStore wraps a MemStore but fails every Delete — a replica
// whose disk went read-only, the shape that orphans copies.
type stickyStore struct{ *MemStore }

var errSticky = errors.New("delete refused")

func (stickyStore) Delete(string) error { return errSticky }

// TestQuorumStoreDeleteSurfacesOrphans proves the satellite fix: a
// Delete that meets its chain quorum but leaves replicas behind
// returns *OrphanError (logical removal succeeded, physical copies
// leaked) instead of silently claiming a clean delete.
func TestQuorumStoreDeleteSurfacesOrphans(t *testing.T) {
	sticky := stickyStore{NewMemStore()}
	q, err := NewQuorumStore([]CheckpointStore{NewMemStore(), sticky, NewMemStore()}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Save("mtg", []byte("ckpt")); err != nil {
		t.Fatal(err)
	}
	derr := q.Delete("mtg")
	var orphan *OrphanError
	if !errors.As(derr, &orphan) {
		t.Fatalf("Delete with one stuck replica = %v, want *OrphanError", derr)
	}
	if orphan.ID != "mtg" || orphan.Leftover != 1 {
		t.Fatalf("OrphanError = %+v, want ID mtg with 1 leftover", orphan)
	}
	if !errors.Is(derr, errSticky) {
		t.Fatalf("OrphanError does not carry the replica failure: %v", derr)
	}
	// The leaked copy still resurrects the id in List — exactly what the
	// scrubber exists to sweep.
	ids, _ := q.List()
	if len(ids) != 1 || ids[0] != "mtg" {
		t.Fatalf("List after orphaned delete = %v, want the leaked id", ids)
	}
	// A clean delete stays a plain nil.
	q2, _ := NewQuorumStore([]CheckpointStore{NewMemStore(), NewMemStore()}, 2, 2)
	_ = q2.Save("mtg", []byte("ckpt"))
	if err := q2.Delete("mtg"); err != nil {
		t.Fatalf("clean Delete = %v", err)
	}
}

// TestQuorumStoreScrubRestoresReplication proves Scrub re-establishes
// W-of-N after a replica loss: a chain copy wiped from one store is
// rewritten there from the canonical surviving replica.
func TestQuorumStoreScrubRestoresReplication(t *testing.T) {
	mems := []*MemStore{NewMemStore(), NewMemStore(), NewMemStore()}
	q, err := NewQuorumStore([]CheckpointStore{mems[0], mems[1], mems[2]}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"mtg-a", "mtg-b", "mtg-c", "mtg-d"}
	for _, id := range ids {
		if err := q.Save(id, []byte(id+"-ckpt")); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate losing replica 1's disk: wipe it entirely.
	for _, id := range ids {
		_ = mems[1].Delete(id)
	}
	rep, err := q.Scrub(ScrubConfig{})
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if rep.Checked != len(ids) || rep.Repaired != len(ids) {
		t.Fatalf("ScrubReport = %+v, want %d checked and %d repaired", rep, len(ids), len(ids))
	}
	if rep.Swept != 0 || rep.Corrupt != 0 || rep.Unrepairable != 0 {
		t.Fatalf("ScrubReport = %+v, want no sweeps/corruption", rep)
	}
	// Every id is back on all three chain stores with the right bytes.
	for _, id := range ids {
		for i, m := range mems {
			data, lerr := m.Load(id)
			if lerr != nil {
				t.Fatalf("replica %d misses %q after scrub: %v", i, id, lerr)
			}
			if string(data) != id+"-ckpt" {
				t.Fatalf("replica %d holds %q for %q", i, data, id)
			}
		}
	}
	// A second pass is a no-op: the invariant holds.
	rep, err = q.Scrub(ScrubConfig{})
	if err != nil || rep.Repaired != 0 {
		t.Fatalf("second scrub = (%+v, %v), want no repairs", rep, err)
	}
}

// TestQuorumStoreScrubSweepsAndVerifies proves the other two scrub
// duties: dead ids (orphaned by partial deletes) are swept from every
// store, and copies failing the Verify hook are counted corrupt and
// rewritten from a valid replica.
func TestQuorumStoreScrubSweepsAndVerifies(t *testing.T) {
	mems := []*MemStore{NewMemStore(), NewMemStore(), NewMemStore()}
	q, err := NewQuorumStore([]CheckpointStore{mems[0], mems[1], mems[2]}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = q.Save("live", []byte("good"))
	_ = q.Save("dead", []byte("stale"))
	// Corrupt one replica of the live id.
	var corrupted int
	for i, m := range mems {
		if _, lerr := m.Load("live"); lerr == nil {
			_ = m.Save("live", []byte("bad!"))
			corrupted = i
			break
		}
	}
	rep, err := q.Scrub(ScrubConfig{
		Live: func(id string) bool { return id == "live" },
		Verify: func(id string, data []byte) error {
			if string(data) != "good" {
				return errors.New("payload mismatch")
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("scrub with a corrupt replica reported no error detail")
	}
	if rep.Checked != 1 || rep.Corrupt != 1 || rep.Repaired != 1 || rep.Swept != 3 {
		t.Fatalf("ScrubReport = %+v, want 1 checked, 1 corrupt, 1 repaired, 3 swept", rep)
	}
	if data, lerr := mems[corrupted].Load("live"); lerr != nil || string(data) != "good" {
		t.Fatalf("corrupt replica after scrub = (%q, %v), want repaired bytes", data, lerr)
	}
	for i, m := range mems {
		if _, lerr := m.Load("dead"); lerr == nil {
			t.Fatalf("replica %d still holds the dead id after sweep", i)
		}
	}
	// A live id with no valid copy anywhere is unrepairable, not
	// invented.
	for _, m := range mems {
		_ = m.Save("live", []byte("bad!"))
	}
	rep, _ = q.Scrub(ScrubConfig{
		Live:   func(id string) bool { return id == "live" },
		Verify: func(id string, data []byte) error { return errors.New("all corrupt") },
	})
	if rep.Unrepairable != 1 {
		t.Fatalf("ScrubReport with every copy corrupt = %+v, want 1 unrepairable", rep)
	}
}

// TestQuorumStoreChainDeterministic proves the replica chain for an id
// is stable across instances — recovery after a coordinator restart
// looks in the same places the original wrote to.
func TestQuorumStoreChainDeterministic(t *testing.T) {
	stores := []CheckpointStore{NewMemStore(), NewMemStore(), NewMemStore(), NewMemStore(), NewMemStore()}
	q1, _ := NewQuorumStore(stores, 3, 2)
	q2, _ := NewQuorumStore(stores, 3, 2)
	hits := map[int]int{}
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("session-%d", i)
		c1, c2 := q1.chain(id), q2.chain(id)
		if len(c1) != 3 {
			t.Fatalf("chain(%q) has %d replicas, want 3", id, len(c1))
		}
		for j := range c1 {
			if c1[j] != c2[j] {
				t.Fatalf("chain(%q) diverged across instances: %v vs %v", id, c1, c2)
			}
		}
		hits[c1[0]]++
	}
	// The hash should spread primary replicas across stores, not pile
	// everything onto one.
	for i, n := range hits {
		if n == 64 {
			t.Fatalf("all 64 ids hashed their primary onto store %d", i)
		}
	}
	if len(hits) < 3 {
		t.Fatalf("primaries landed on only %d of 5 stores: %v", len(hits), hits)
	}
}
