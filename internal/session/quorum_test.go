package session

import (
	"errors"
	"fmt"
	"testing"
)

// brokenStore fails every operation — a dead replica.
type brokenStore struct{}

var errDead = errors.New("replica dead")

func (brokenStore) Save(string, []byte) error  { return errDead }
func (brokenStore) Load(string) ([]byte, error) { return nil, errDead }
func (brokenStore) List() ([]string, error)     { return nil, errDead }
func (brokenStore) Delete(string) error         { return errDead }

func TestQuorumStoreValidate(t *testing.T) {
	if _, err := NewQuorumStore(nil, 0, 0); err == nil {
		t.Fatal("empty store list accepted")
	}
	if _, err := NewQuorumStore([]CheckpointStore{NewMemStore()}, 1, 2); err == nil {
		t.Fatal("quorum 2 over 1 replica accepted")
	}
	q, err := NewQuorumStore([]CheckpointStore{NewMemStore(), NewMemStore(), NewMemStore()}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r, w := q.Replication(); r != 3 || w != 2 {
		t.Fatalf("defaults over 3 stores = (N=%d, W=%d), want (3, 2)", r, w)
	}
}

// TestQuorumStoreRoundTrip proves Save/Load/List/Delete behave like a
// single store when every replica is healthy.
func TestQuorumStoreRoundTrip(t *testing.T) {
	mems := []*MemStore{NewMemStore(), NewMemStore(), NewMemStore()}
	q, err := NewQuorumStore([]CheckpointStore{mems[0], mems[1], mems[2]}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("mtg-%d", i)
		if err := q.Save(id, []byte(id+"-ckpt")); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := q.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 8 {
		t.Fatalf("List returned %d ids, want 8: %v", len(ids), ids)
	}
	for _, id := range ids {
		data, err := q.Load(id)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != id+"-ckpt" {
			t.Fatalf("Load(%q) = %q", id, data)
		}
	}
	// With N=2 over 3 stores, each id lives on exactly 2 replicas.
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("mtg-%d", i)
		copies := 0
		for _, m := range mems {
			if _, err := m.Load(id); err == nil {
				copies++
			}
		}
		if copies != 2 {
			t.Fatalf("id %q has %d copies, want exactly N=2", id, copies)
		}
	}
	if err := q.Delete("mtg-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Load("mtg-0"); err == nil {
		t.Fatal("Load succeeded after Delete")
	}
}

// TestQuorumStoreSurvivesMinorityFailure proves W-of-N semantics: with
// N=3/W=2, one dead replica is absorbed on both the write and read
// paths, and recovery reads work from any surviving copy.
func TestQuorumStoreSurvivesMinorityFailure(t *testing.T) {
	alive1, alive2 := NewMemStore(), NewMemStore()
	q, err := NewQuorumStore([]CheckpointStore{alive1, brokenStore{}, alive2}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Save("mtg", []byte("ckpt")); err != nil {
		t.Fatalf("save with 2/3 replicas alive: %v", err)
	}
	data, err := q.Load("mtg")
	if err != nil {
		t.Fatalf("load with 2/3 replicas alive: %v", err)
	}
	if string(data) != "ckpt" {
		t.Fatalf("Load = %q", data)
	}
	ids, err := q.List()
	if err != nil || len(ids) != 1 {
		t.Fatalf("List = (%v, %v)", ids, err)
	}
	// The id survives even when one of its two live copies is deleted:
	// Load falls back past the chain to any store that still has it.
	_ = alive1.Delete("mtg")
	if data, err = q.Load("mtg"); err != nil || string(data) != "ckpt" {
		t.Fatalf("Load from the last surviving replica = (%q, %v)", data, err)
	}
}

// TestQuorumStoreFailsBelowQuorum proves a write that cannot reach W
// replicas reports ErrQuorum instead of claiming durability.
func TestQuorumStoreFailsBelowQuorum(t *testing.T) {
	q, err := NewQuorumStore([]CheckpointStore{NewMemStore(), brokenStore{}, brokenStore{}}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	saveErr := q.Save("mtg", []byte("ckpt"))
	if !errors.Is(saveErr, ErrQuorum) {
		t.Fatalf("save with 1/3 replicas alive = %v, want ErrQuorum", saveErr)
	}
	if !errors.Is(saveErr, errDead) {
		t.Fatalf("quorum error does not carry the replica failures: %v", saveErr)
	}
	// The single successful copy is still readable — degraded, not lost.
	if data, err := q.Load("mtg"); err != nil || string(data) != "ckpt" {
		t.Fatalf("Load after failed-quorum save = (%q, %v)", data, err)
	}
	if _, err := q.Load("missing"); err == nil {
		t.Fatal("Load of a never-saved id succeeded")
	}
}

// TestQuorumStoreChainDeterministic proves the replica chain for an id
// is stable across instances — recovery after a coordinator restart
// looks in the same places the original wrote to.
func TestQuorumStoreChainDeterministic(t *testing.T) {
	stores := []CheckpointStore{NewMemStore(), NewMemStore(), NewMemStore(), NewMemStore(), NewMemStore()}
	q1, _ := NewQuorumStore(stores, 3, 2)
	q2, _ := NewQuorumStore(stores, 3, 2)
	hits := map[int]int{}
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("session-%d", i)
		c1, c2 := q1.chain(id), q2.chain(id)
		if len(c1) != 3 {
			t.Fatalf("chain(%q) has %d replicas, want 3", id, len(c1))
		}
		for j := range c1 {
			if c1[j] != c2[j] {
				t.Fatalf("chain(%q) diverged across instances: %v vs %v", id, c1, c2)
			}
		}
		hits[c1[0]]++
	}
	// The hash should spread primary replicas across stores, not pile
	// everything onto one.
	for i, n := range hits {
		if n == 64 {
			t.Fatalf("all 64 ids hashed their primary onto store %d", i)
		}
	}
	if len(hits) < 3 {
		t.Fatalf("primaries landed on only %d of 5 stores: %v", len(hits), hits)
	}
}
