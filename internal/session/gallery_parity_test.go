package session_test

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/gallery"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/segment"
	"github.com/bgbuster/bgbuster/internal/session"
	"github.com/bgbuster/bgbuster/internal/vidstream"
)

const gw, gh = 48, 36

// galleryTestOptions mirrors the fleet test idiom: a known-image
// dictionary at the tile geometry plus the oracle segmenter —
// deterministic, so two sessions fed the same frames produce
// bit-identical checkpoints.
func galleryTestOptions(string, int, int) core.Options {
	o := core.DefaultOptions()
	o.KnownImages = map[string]*imagex.Image{
		"flat":  imagex.NewFilled(gw, gh, imagex.RGB{R: 20, G: 120, B: 220}),
		"other": imagex.NewFilled(gw, gh, imagex.RGB{R: 200, G: 10, B: 10}),
	}
	o.Segmenter = segment.OracleSegmenter{}
	o.ColorRefine = false
	return o
}

// leakStream is one participant's camera: the "flat" VB with a
// per-frame-moving leaked background rectangle in a per-participant
// color, so checkpoints differ per prefix AND the demuxer can tell
// participants apart by content.
func leakStream(pi, n int) *vidstream.Video {
	colors := []imagex.RGB{
		{R: 240, G: 240, B: 60},
		{R: 240, G: 60, B: 240},
		{R: 60, G: 240, B: 240},
		{R: 250, G: 160, B: 30},
		{R: 30, G: 250, B: 120},
		{R: 160, G: 30, B: 250},
		{R: 250, G: 250, B: 250},
		{R: 150, G: 90, B: 60},
		{R: 90, G: 150, B: 200},
		{R: 250, G: 60, B: 60},
	}
	c := colors[pi%len(colors)]
	v := vidstream.New(30)
	for i := 0; i < n; i++ {
		f := imagex.NewFilled(gw, gh, imagex.RGB{R: 20, G: 120, B: 220})
		x0 := 4 + (i+pi)%8
		y0 := 6 + pi%4
		for y := y0; y < y0+18 && y < gh; y++ {
			for x := x0; x < x0+16; x++ {
				f.Set(x, y, c)
			}
		}
		if err := v.Append(f); err != nil {
			panic(err)
		}
	}
	return v
}

// parityMeeting builds the seeded meeting the acceptance criterion
// names: n participants from frame 0, one extra joining at frame 8
// (grid grows — mid-call resize), and participant 0 leaving at frame
// 12 (grid shrinks back).
func parityMeeting(t *testing.T, n int) ([]gallery.Participant, *gallery.Result) {
	t.Helper()
	parts := make([]gallery.Participant, 0, n+1)
	for i := 0; i < n; i++ {
		length := 24
		if i == 0 {
			length = 12 // leaves mid-call
		}
		parts = append(parts, gallery.Participant{Frames: leakStream(i, length), JoinAt: 0})
	}
	parts = append(parts, gallery.Participant{Frames: leakStream(n, 16), JoinAt: 8})
	res, err := gallery.Compose(parts, gallery.Spec{Seed: int64(n)})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	return parts, res
}

// laneToParticipant recovers the deterministic lane→participant map by
// demuxing the composite standalone and matching first frames.
func laneToParticipant(t *testing.T, parts []gallery.Participant, res *gallery.Result, cfg gallery.Config) map[int]int {
	t.Helper()
	lanes, _, err := gallery.SplitVideo(res.Video, cfg)
	if err != nil {
		t.Fatalf("SplitVideo: %v", err)
	}
	if len(lanes) != len(parts) {
		t.Fatalf("%d lanes for %d participants", len(lanes), len(parts))
	}
	m := map[int]int{}
	for _, ls := range lanes {
		pi := -1
		for i, p := range parts {
			for _, f := range p.Frames.Frames {
				if f.Equal(ls.Video.Frames[0]) {
					pi = i
					break
				}
			}
			if pi >= 0 {
				break
			}
		}
		if pi < 0 {
			t.Fatalf("lane %d matches no participant", ls.Lane)
		}
		m[ls.Lane] = pi
	}
	return m
}

// TestGalleryParityDemuxVsDirect is the acceptance-criterion proof:
// for seeded N∈{2,4,9} meetings with a mid-call resize (one join, one
// leave), feeding the composite through Manager.FeedComposite leaves
// every participant session with checkpoint bytes bit-identical to a
// manager fed the source streams directly.
func TestGalleryParityDemuxVsDirect(t *testing.T) {
	for _, n := range []int{2, 4, 9} {
		n := n
		t.Run(map[int]string{2: "N2", 4: "N4", 9: "N9"}[n], func(t *testing.T) {
			parts, res := parityMeeting(t, n)
			demuxCfg := gallery.Config{}

			// Gallery side: one composite stream in.
			store := session.NewMemStore()
			gmgr := session.NewManager(session.Config{
				QueueDepth:  256,
				Checkpoints: store,
				Gallery: &session.GalleryConfig{
					Demux:      demuxCfg,
					OptionsFor: galleryTestOptions,
				},
			})
			defer gmgr.Close()
			for i, f := range res.Video.Frames {
				if _, err := gmgr.FeedComposite(f); err != nil {
					t.Fatalf("FeedComposite frame %d: %v", i, err)
				}
			}
			stats, ok := gmgr.GalleryStats()
			if !ok || stats.Retiles < 2 {
				t.Fatalf("expected ≥2 retiles (join+leave), stats %+v ok=%v", stats, ok)
			}

			// Direct side: each participant's shown frames fed straight in.
			dmgr := session.NewManager(session.Config{QueueDepth: 256})
			defer dmgr.Close()
			direct := map[int][]byte{} // participant -> checkpoint bytes
			for pi, p := range parts {
				shown := res.ShownFrames(pi)
				id := fmt.Sprintf("direct-%d", pi)
				s, err := dmgr.Open(id, gw, gh, galleryTestOptions(id, gw, gh))
				if err != nil {
					t.Fatalf("direct open %d: %v", pi, err)
				}
				oracle := imagex.NewMask(gw, gh)
				for _, local := range shown {
					if err := s.Feed(p.Frames.Frames[local], oracle); err != nil {
						t.Fatalf("direct feed %d: %v", pi, err)
					}
				}
				data, err := s.Detach()
				if err != nil {
					t.Fatalf("direct detach %d: %v", pi, err)
				}
				direct[pi] = data
			}

			// Collect the gallery side: live sessions detach now; the
			// leaver's snapshot is already in the sink's store.
			laneOf := laneToParticipant(t, parts, res, demuxCfg)
			for lane, pi := range laneOf {
				id := gallery.DefaultTileID(lane)
				var got []byte
				if s, ok := gmgr.Get(id); ok {
					data, err := s.Detach()
					if err != nil {
						t.Fatalf("gallery detach %s: %v", id, err)
					}
					got = data
				} else {
					data, err := store.Load(id)
					if err != nil {
						t.Fatalf("gallery %s: not live and no snapshot: %v", id, err)
					}
					got = data
				}
				want := direct[pi]
				if !bytes.Equal(got, want) {
					t.Errorf("participant %d (lane %d): checkpoint bytes differ: gallery %d bytes, direct %d bytes",
						pi, lane, len(got), len(want))
				}
			}
			// Participant 0 left mid-call: its snapshot must have come
			// from the store (session gone), proving the leave path ran.
			var leaverLane = -1
			for lane, pi := range laneOf {
				if pi == 0 {
					leaverLane = lane
				}
			}
			if _, ok := gmgr.Get(gallery.DefaultTileID(leaverLane)); ok {
				t.Errorf("leaver session still open after leave")
			}
		})
	}
}

// TestGalleryLeaveBeforeIdentifyNotPinned is the eviction-semantics
// regression: a gallery participant who leaves BEFORE IdentifyAfter
// frames must be snapshotted with identification un-pinned (Detach
// semantics), so a rejoin carries on bit-identically with a session
// that never left. Finalize-on-evict would pin the VB on the
// half-filled window and diverge.
func TestGalleryLeaveBeforeIdentifyNotPinned(t *testing.T) {
	if core.DefaultIdentifyAfter < 8 {
		t.Skip("default identification window too small for the scenario")
	}
	const early = 6 // < DefaultIdentifyAfter
	p0 := gallery.Participant{Frames: leakStream(0, 30), JoinAt: 0}
	p1 := gallery.Participant{Frames: leakStream(1, early), JoinAt: 0} // leaves inside the window
	res, err := gallery.Compose([]gallery.Participant{p0, p1}, gallery.Spec{})
	if err != nil {
		t.Fatal(err)
	}

	store := session.NewMemStore()
	mgr := session.NewManager(session.Config{
		QueueDepth:  256,
		Checkpoints: store,
		Gallery:     &session.GalleryConfig{OptionsFor: galleryTestOptions},
	})
	defer mgr.Close()
	for i, f := range res.Video.Frames {
		if _, err := mgr.FeedComposite(f); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}

	laneOf := laneToParticipant(t, []gallery.Participant{p0, p1}, res, gallery.Config{})
	leaverID := ""
	for lane, pi := range laneOf {
		if pi == 1 {
			leaverID = gallery.DefaultTileID(lane)
		}
	}
	if leaverID == "" {
		t.Fatal("no lane mapped to the early leaver")
	}
	snap, err := store.Load(leaverID)
	if err != nil {
		t.Fatalf("leaver snapshot missing: %v", err)
	}

	// Resume the snapshot and feed the frames the participant would
	// have sent had they stayed.
	tail := leakStream(1, 30)
	rmgr := session.NewManager(session.Config{QueueDepth: 256})
	defer rmgr.Close()
	rs, err := rmgr.ResumeSession("rejoin", snap, galleryTestOptions("rejoin", gw, gh))
	if err != nil {
		t.Fatalf("resume from early-leave snapshot: %v", err)
	}
	oracle := imagex.NewMask(gw, gh)
	for i := early; i < tail.Len(); i++ {
		if err := rs.Feed(tail.Frames[i], oracle); err != nil {
			t.Fatalf("resumed feed %d: %v", i, err)
		}
	}
	resumed, err := rs.Detach()
	if err != nil {
		t.Fatalf("resumed detach: %v", err)
	}

	// Uninterrupted control session over the same full stream.
	cs, err := rmgr.Open("control", gw, gh, galleryTestOptions("control", gw, gh))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tail.Len(); i++ {
		if err := cs.Feed(tail.Frames[i], oracle); err != nil {
			t.Fatalf("control feed %d: %v", i, err)
		}
	}
	control, err := cs.Detach()
	if err != nil {
		t.Fatalf("control detach: %v", err)
	}
	if !bytes.Equal(resumed, control) {
		t.Fatalf("leave-before-IdentifyAfter snapshot did not carry on bit-identically: identification was pinned early (resumed %d bytes, control %d bytes)",
			len(resumed), len(control))
	}
}

// TestGalleryRejoinResumesSession: a participant who leaves and comes
// back lands on the SAME session id, resumed from the detach snapshot
// (lane ids are stable and the sink keeps the bytes).
func TestGalleryRejoinResumesSession(t *testing.T) {
	const w, h = gw, gh
	p0 := leakStream(0, 30)
	p1 := leakStream(1, 30)
	spec := gallery.Spec{Capacity: 2}
	specR := spec
	specR.TileW, specR.TileH = w, h
	cw, ch := specR.Canvas()
	_ = cw

	comp := vidstream.New(30)
	appendFrame := func(imgs ...*imagex.Image) {
		f := imagex.NewFilled(cw, ch, imagex.RGB{R: 32, G: 32, B: 32})
		rects, err := specR.LayoutFor(len(imgs))
		if err != nil {
			t.Fatal(err)
		}
		for i, im := range imgs {
			if err := f.Blit(im, rects[i].X, rects[i].Y); err != nil {
				t.Fatal(err)
			}
		}
		if err := comp.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		appendFrame(p0.Frames[i], p1.Frames[i])
	}
	for i := 10; i < 20; i++ {
		appendFrame(p0.Frames[i])
	}
	for i := 20; i < 30; i++ {
		appendFrame(p0.Frames[i], p1.Frames[i])
	}

	mgr := session.NewManager(session.Config{
		QueueDepth: 256,
		Gallery: &session.GalleryConfig{
			Demux:      gallery.Config{Rejoin: true},
			OptionsFor: galleryTestOptions,
		},
	})
	defer mgr.Close()
	rejoins := 0
	for i, f := range comp.Frames {
		up, err := mgr.FeedComposite(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		rejoins += len(up.Rejoins)
	}
	if rejoins != 1 {
		t.Fatalf("rejoins = %d, want 1", rejoins)
	}
	if mgr.Len() != 2 {
		t.Fatalf("open sessions = %d, want 2 (rejoin must reuse the session id)", mgr.Len())
	}
}
