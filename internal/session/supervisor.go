package session

// Supervisor: the self-healing loop that closes the gap from fault to
// recovery (DESIGN.md §13). A Failed session is a tombstone — its
// worker is dead and its health is terminal for that incarnation. With
// Config.AutoRestart the supervisor resurrects the id as a NEW
// incarnation: the stream is resumed from the last good checkpoint in
// Config.Checkpoints (or started fresh if none exists), a fresh
// Session replaces the old one in the manager's table under the same
// id, and the old handle keeps its Failed record so the per-incarnation
// health machine stays monotonic. Restart attempts back off
// exponentially after failures, and a per-id circuit breaker trips the
// session to PermanentlyFailed once Config.MaxRestarts restarts have
// been burned within Config.RestartWindow — a crash-looping call must
// not eat the fleet's checkpoint-store and CPU budget forever.

import (
	"errors"
	"fmt"
	"io/fs"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
)

// restartRec is the supervisor's per-id breaker and backoff state. It
// is owned by the supervise goroutine — no locking.
type restartRec struct {
	// times holds the restart attempts inside the sliding window.
	times []time.Time
	// backoff is the current retry delay after a failed attempt
	// (0 = none pending); notBefore gates the next attempt.
	backoff   time.Duration
	notBefore time.Time
}

// supervise scans for Failed sessions and resurrects them. It wakes on
// worker-failure notifications (noteFailed) so a crash is usually
// handled within one scheduler hop, with a periodic sweep as backstop
// for missed wakes and elapsed backoff timers.
func (m *Manager) supervise() {
	defer close(m.superDone)
	recs := map[string]*restartRec{}
	t := time.NewTicker(m.cfg.SupervisorInterval)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-m.failedCh:
		case <-t.C:
		}
		for _, s := range m.list() {
			if s.Health() != Failed {
				continue
			}
			select {
			case <-s.done:
			default:
				continue // worker still unwinding; next wake catches it
			}
			m.tryRestart(s, recs)
		}
	}
}

// tryRestart runs breaker and backoff policy for one Failed session,
// then attempts the resurrection.
func (m *Manager) tryRestart(s *Session, recs map[string]*restartRec) {
	r := recs[s.id]
	if r == nil {
		r = &restartRec{}
		recs[s.id] = r
	}
	now := time.Now()
	if now.Before(r.notBefore) {
		return // backing off after a failed attempt
	}
	// Slide the breaker window, then check the cap.
	cut := now.Add(-m.cfg.RestartWindow)
	kept := r.times[:0]
	for _, ts := range r.times {
		if ts.After(cut) {
			kept = append(kept, ts)
		}
	}
	r.times = kept
	if len(r.times) >= m.cfg.MaxRestarts {
		m.breakerTrips.Inc()
		s.permanentlyFail(fmt.Sprintf("circuit breaker tripped: %d restarts within %s",
			len(r.times), m.cfg.RestartWindow))
		delete(recs, s.id)
		return
	}
	r.times = append(r.times, now)
	if err := m.restartSession(s, now); err != nil {
		if r.backoff <= 0 {
			r.backoff = m.cfg.RestartBackoff
		} else if r.backoff *= 2; r.backoff > m.cfg.RestartBackoffMax {
			r.backoff = m.cfg.RestartBackoffMax
		}
		r.notBefore = now.Add(r.backoff)
		m.logf("session %q: restart attempt %d failed (retry in %s): %v",
			s.id, len(r.times), r.backoff, err)
		return
	}
	r.backoff = 0
	r.notBefore = time.Time{}
}

// restartSession resurrects one Failed session as a new incarnation:
// resume the stream from the last good checkpoint (fresh when the
// store has none), swap a new Session into the manager's table under
// the same id, and start its worker. The old handle stays readable and
// Failed. A non-nil error counts as a failed attempt toward the
// breaker.
func (m *Manager) restartSession(old *Session, now time.Time) error {
	opts := old.opts
	if m.cfg.RestartOptions != nil {
		opts = m.cfg.RestartOptions(old.id)
	}
	var (
		stream   *core.StreamReconstructor
		fromCkpt bool
	)
	if m.cfg.Checkpoints != nil {
		data, err := m.cfg.Checkpoints.Load(old.id)
		switch {
		case err == nil:
			stream, err = core.ResumeStream(data, opts)
			if err != nil {
				// Corrupt or options-mismatched checkpoint: do NOT fall
				// back to fresh — that would silently forfeit accumulated
				// coverage. Fail the attempt; the breaker bounds how long
				// we keep trying, and the stored bytes stay untouched for
				// inspection.
				return fmt.Errorf("resume checkpoint: %w", err)
			}
			fromCkpt = true
		case errors.Is(err, fs.ErrNotExist):
			// No checkpoint was ever written (crash before the first
			// interval): restart fresh rather than abandoning the call.
		default:
			return fmt.Errorf("load checkpoint: %w", err) // transient store trouble: retry with backoff
		}
	}
	if stream == nil {
		var err error
		stream, err = core.NewStream(old.w, old.h, opts)
		if err != nil {
			return fmt.Errorf("fresh stream: %w", err)
		}
	}
	resumedFrames := uint64(stream.Frames())
	resumedCov := stream.Snapshot().Coverage.Fraction()

	m.mu.Lock()
	if m.closed || m.sessions[old.id] != old {
		// Shutdown began, or the id was closed/replaced while we were
		// loading. Not an error — there is nothing left to resurrect.
		m.mu.Unlock()
		return nil
	}
	m.memUsed -= old.memBytes
	ns := m.installLocked(old.id, stream, opts, old.so, stream.MemFootprint(), regMeta{
		restored:        old.restored,
		incarnation:     old.incarnation + 1,
		resumedFrames:   resumedFrames,
		resumedCoverage: resumedCov,
	})
	m.restartLog = append(m.restartLog, RestartEvent{
		ID:              old.id,
		Incarnation:     ns.incarnation,
		ResumedFrames:   resumedFrames,
		ResumedCoverage: resumedCov,
		FromCheckpoint:  fromCkpt,
		Time:            now,
	})
	if len(m.restartLog) > maxRestartLog {
		m.restartLog = m.restartLog[len(m.restartLog)-maxRestartLog:]
	}
	m.mu.Unlock()

	old.closeIntake() // stale handles: Feed already returns ErrFailed
	m.restarts.Inc()
	m.logf("session %q: restarted as incarnation %d (resumed %d frames, %.2f%% coverage, from_checkpoint=%v)",
		old.id, ns.incarnation, resumedFrames, resumedCov*100, fromCkpt)
	go ns.loop()
	return nil
}
