package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/faultinject"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/segment"
)

// bombSegmenter panics on exactly one frame: the fuse'th segmented
// frame. Every other frame delegates to the oracle segmenter, so a
// restarted incarnation (which shares the Options and therefore this
// segmenter) processes cleanly after the blast.
type bombSegmenter struct{ fuse *atomic.Int64 }

func (b bombSegmenter) Segment(frame *imagex.Image, oracle *imagex.Mask) *imagex.Mask {
	if b.fuse.Add(-1) == 0 {
		panic("bomb segmenter detonated")
	}
	return segment.OracleSegmenter{}.Segment(frame, oracle)
}

// poisonSegmenter panics on any frame in its set (pointer identity —
// the fault injector clones poisoned frames, so each poisoned delivery
// is a unique pointer that detonates exactly once).
type poisonSegmenter struct{ set map[*imagex.Image]bool }

func (p poisonSegmenter) Segment(frame *imagex.Image, oracle *imagex.Mask) *imagex.Mask {
	if p.set[frame] {
		panic("poisoned frame")
	}
	return segment.OracleSegmenter{}.Segment(frame, oracle)
}

// gateSegmenter blocks every frame until release is closed, so tests
// can hold the worker mid-frame and fill the queue deterministically.
type gateSegmenter struct{ release chan struct{} }

func (g gateSegmenter) Segment(frame *imagex.Image, oracle *imagex.Mask) *imagex.Mask {
	<-g.release
	return segment.OracleSegmenter{}.Segment(frame, oracle)
}

// feedAndSettle feeds one frame and waits until the worker consumed it
// (processed or rejected) or died — the serial-feed discipline that
// makes supervised chaos runs deterministic.
func feedAndSettle(t *testing.T, s *Session, f *imagex.Image, o *imagex.Mask) {
	t.Helper()
	before := s.processed.Load() + s.rejected.Load()
	if err := s.Feed(f, o); err != nil {
		t.Fatalf("feed: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.processed.Load()+s.rejected.Load() > before {
			return
		}
		select {
		case <-s.done:
			return // worker died on this frame; the supervisor takes over
		default:
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("frame never settled")
}

// waitIncarnation waits for the supervisor to install an incarnation
// of id newer than old.
func waitIncarnation(t *testing.T, m *Manager, id string, old *Session) *Session {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s, ok := m.Get(id); ok && s != old {
			return s
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("session %q never restarted", id)
	return nil
}

func superCfg(store CheckpointStore) Config {
	return Config{
		AutoRestart:        true,
		SupervisorInterval: time.Millisecond,
		RestartBackoff:     time.Millisecond,
		RestartBackoffMax:  5 * time.Millisecond,
		Checkpoints:        store,
		CheckpointInterval: time.Nanosecond, // checkpoint after every processed frame
		CheckpointBackoff:  time.Microsecond,
	}
}

// TestSupervisorRestartFromCheckpoint is the happy self-healing path:
// a worker panic mid-call is healed by resurrecting the id from its
// last-good checkpoint as incarnation 2, with no reconstruction state
// lost (checkpoint-per-frame) and the old handle left as a readable
// Failed tombstone.
func TestSupervisorRestartFromCheckpoint(t *testing.T) {
	store := NewMemStore()
	m := NewManager(superCfg(store))
	defer m.Close()

	var fuse atomic.Int64
	fuse.Store(6) // detonate on the 6th segmented frame
	opts := testOpts()
	opts.IdentifyAfter = 2 // pin early so every frame is segmented as it arrives
	opts.Segmenter = bombSegmenter{fuse: &fuse}
	s1, err := m.Open("call", testW, testH, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Incarnation() != 1 {
		t.Fatalf("fresh session incarnation = %d", s1.Incarnation())
	}

	frames, sils := testFrames(12)
	for i := 0; i < 6; i++ { // frames 1..5 process and checkpoint; 6 detonates
		feedAndSettle(t, s1, frames[i], sils[i])
	}
	<-s1.done
	if s1.Health() != Failed || s1.Failure() == "" {
		t.Fatalf("incarnation 1: health=%v failure=%q", s1.Health(), s1.Failure())
	}

	s2 := waitIncarnation(t, m, "call", s1)
	if s2.Incarnation() != 2 {
		t.Fatalf("incarnation = %d, want 2", s2.Incarnation())
	}
	if s2.Health() != Healthy {
		t.Fatalf("new incarnation health = %v", s2.Health())
	}
	// The stale handle keeps its terminal record and rejects frames.
	if s1.Health() != Failed {
		t.Fatal("old incarnation health rewound")
	}
	if err := s1.Feed(frames[6], sils[6]); !errors.Is(err, ErrFailed) {
		t.Fatalf("stale handle Feed = %v, want ErrFailed", err)
	}

	// Resumed from the last-good checkpoint: 5 processed frames, each
	// checkpointed, so nothing was lost to the crash.
	st := s2.Stats()
	if st.ResumedFrames != 5 || st.StreamFrames < st.ResumedFrames {
		t.Fatalf("resume floor broken: resumed=%d stream=%d", st.ResumedFrames, st.StreamFrames)
	}
	if st.ResumedCoverage <= 0 {
		t.Fatal("resumed with zero coverage despite checkpointed residue")
	}

	// Manager.Feed routes to the live incarnation; the call carries on.
	for i := 6; i < 12; i++ {
		if err := m.Feed("call", frames[i], sils[i]); err != nil {
			t.Fatalf("feed after restart: %v", err)
		}
	}
	if err := s2.Finalize(); err != nil {
		t.Fatal(err)
	}
	st = s2.Stats()
	if st.StreamFrames != 11 { // 5 resumed + 6 fed after the restart
		t.Fatalf("stream frames = %d, want 11", st.StreamFrames)
	}
	if got := s2.Snapshot().Coverage.Fraction(); got < st.ResumedCoverage {
		t.Fatalf("coverage regressed across incarnations: %f < %f", got, st.ResumedCoverage)
	}

	events := m.RestartEvents()
	if len(events) != 1 {
		t.Fatalf("restart events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.ID != "call" || ev.Incarnation != 2 || !ev.FromCheckpoint || ev.ResumedFrames != 5 {
		t.Fatalf("restart event = %+v", ev)
	}
	ms := m.Stats()
	if ms.Restarts != 1 || ms.Panics != 1 || ms.BreakerTrips != 0 || ms.FailedNow != 0 || ms.Open != 1 {
		t.Fatalf("manager stats = %+v", ms)
	}
}

// TestSupervisorCircuitBreaker crash-loops one id until the breaker
// trips: the session must end PermanentlyFailed with bounded reasons,
// exactly MaxRestarts resurrections burned, and the supervisor must
// leave it alone afterwards.
func TestSupervisorCircuitBreaker(t *testing.T) {
	cfg := superCfg(NewMemStore())
	cfg.MaxRestarts = 3
	cfg.RestartWindow = time.Minute
	m := NewManager(cfg)
	defer m.Close()

	opts := testOpts()
	opts.IdentifyAfter = 1
	opts.Segmenter = panicSegmenter{} // every incarnation dies on its first frame
	if _, err := m.Open("doomed", testW, testH, opts); err != nil {
		t.Fatal(err)
	}
	frames, sils := testFrames(1)
	var final *Session
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		_ = m.Feed("doomed", frames[0], sils[0]) // keep detonating incarnations
		s, ok := m.Get("doomed")
		if !ok {
			t.Fatal("session vanished")
		}
		if s.Health() == PermanentlyFailed {
			final = s
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	if final == nil {
		t.Fatal("breaker never tripped")
	}

	if got := final.Incarnation(); got != 1+cfg.MaxRestarts {
		t.Fatalf("final incarnation = %d, want %d", got, 1+cfg.MaxRestarts)
	}
	reasons := final.HealthReasons()
	if len(reasons) == 0 || len(reasons) > maxHealthReasons {
		t.Fatalf("breaker reasons unbounded or empty: %d", len(reasons))
	}
	ms := m.Stats()
	if ms.Restarts != uint64(cfg.MaxRestarts) || ms.BreakerTrips != 1 {
		t.Fatalf("restarts=%d trips=%d, want %d/1", ms.Restarts, ms.BreakerTrips, cfg.MaxRestarts)
	}
	if ms.PermanentlyFailedNow != 1 || ms.FailedNow != 0 {
		t.Fatalf("health breakdown = %+v", ms)
	}
	if ms.HealthyNow+ms.DegradedNow+ms.FailedNow+ms.PermanentlyFailedNow != ms.Open {
		t.Fatalf("health sum broken: %+v", ms)
	}
	// No checkpoint was ever written (no frame survived), so every
	// resurrection started fresh.
	for _, ev := range m.RestartEvents() {
		if ev.FromCheckpoint || ev.ResumedFrames != 0 {
			t.Fatalf("phantom checkpoint in restart event %+v", ev)
		}
	}
	// The breaker is terminal: give the supervisor time to misbehave.
	time.Sleep(20 * time.Millisecond)
	if s, _ := m.Get("doomed"); s != final {
		t.Fatal("supervisor restarted a permanently-failed session")
	}
}

// TestManagerAdmissionControl covers the typed load-shedding contract:
// ErrFleetFull past MaxSessions, ErrMemoryBudget past MemBudget, and
// re-admission after capacity frees up.
func TestManagerAdmissionControl(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2})
	defer m.Close()
	a, err := m.Open("a", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("b", testW, testH, testOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("c", testW, testH, testOpts()); !errors.Is(err, ErrFleetFull) {
		t.Fatalf("third open = %v, want ErrFleetFull", err)
	}
	perSession := m.MemUsed() / 2
	if perSession == 0 {
		t.Fatal("zero per-session footprint")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("c", testW, testH, testOpts()); err != nil {
		t.Fatalf("open after capacity freed: %v", err)
	}
	if got := m.Stats().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	// Memory budget: room for one stream and change, never two.
	mb := NewManager(Config{MemBudget: int64(perSession + perSession/2)})
	defer mb.Close()
	if _, err := mb.Open("one", testW, testH, testOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := mb.Open("two", testW, testH, testOpts()); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("over-budget open = %v, want ErrMemoryBudget", err)
	}
	snap := mb.Stats()
	if snap.MemUsed != perSession || snap.MemBudget != int64(perSession+perSession/2) {
		t.Fatalf("memory accounting = used %d budget %d", snap.MemUsed, snap.MemBudget)
	}
}

// TestManagerPressureEviction: with EvictOnPressure the fleet sheds its
// least-recently-fed session (finalized, checkpointed) instead of
// rejecting the newcomer.
func TestManagerPressureEviction(t *testing.T) {
	store := NewMemStore()
	m := NewManager(Config{MaxSessions: 2, EvictOnPressure: true, Checkpoints: store})
	defer m.Close()
	a, err := m.Open("a", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Open("b", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	frames, sils := testFrames(3)
	time.Sleep(time.Millisecond) // make a's open-time lastFeed strictly oldest
	for i := range frames {
		if err := b.Feed(frames[i], sils[i]); err != nil {
			t.Fatal(err)
		}
	}
	c, err := m.Open("c", testW, testH, testOpts())
	if err != nil {
		t.Fatalf("pressure open = %v", err)
	}
	if !a.Evicted() || !a.Stats().Finalized {
		t.Fatal("idle victim not evicted+finalized")
	}
	if _, ok := m.Get("a"); ok {
		t.Fatal("victim still registered")
	}
	if _, ok := m.Get("b"); !ok {
		t.Fatal("recently-fed session evicted instead of the idle one")
	}
	if _, ok := m.Get("c"); !ok || c == nil {
		t.Fatal("newcomer not admitted")
	}
	ms := m.Stats()
	if ms.PressureEvicted != 1 || ms.Evicted != 1 || ms.Shed != 0 {
		t.Fatalf("eviction counters = %+v", ms)
	}
	// The victim's final checkpoint survived: the evicted call can be
	// restored later. (Live sessions may have periodic checkpoints of
	// their own in the store; only the victim's presence matters.)
	ids, _ := store.List()
	found := false
	for _, id := range ids {
		found = found || id == "a"
	}
	if !found {
		t.Fatalf("victim checkpoint missing: %v", ids)
	}
}

// TestManagerClosedTyped pins the typed-shutdown contract: Open, Feed
// and Manager.Feed after Close return ErrManagerClosed (which still
// matches ErrClosed for old callers), and unknown ids get ErrNoSession.
func TestManagerClosedTyped(t *testing.T) {
	m := NewManager(Config{})
	s, err := m.Open("call", testW, testH, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	frames, sils := testFrames(1)
	if err := m.Feed("ghost", frames[0], sils[0]); !errors.Is(err, ErrNoSession) {
		t.Fatalf("unknown id = %v, want ErrNoSession", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("late", testW, testH, testOpts()); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("open after close = %v, want ErrManagerClosed", err)
	}
	if err := s.Feed(frames[0], sils[0]); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("session feed after close = %v, want ErrManagerClosed", err)
	}
	if err := m.Feed("call", frames[0], sils[0]); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("manager feed after close = %v, want ErrManagerClosed", err)
	}
	// Backward compatibility: the new error still is ErrClosed.
	if !errors.Is(ErrManagerClosed, ErrClosed) {
		t.Fatal("ErrManagerClosed must wrap ErrClosed")
	}
	if _, err := m.Restore(func(string) core.Options { return testOpts() }); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("restore after close = %v, want ErrManagerClosed", err)
	}
}

// TestSessionQueuePolicies exercises PolicyReject and PolicyBlock with
// the worker held mid-frame, so queue pressure is deterministic.
func TestSessionQueuePolicies(t *testing.T) {
	frames, sils := testFrames(8)

	// gatedOpts wedges the worker inside its first segmented frame;
	// IdentifyAfter 1 makes that the first fed frame, so queue pressure
	// is immediate and deterministic. unblock is registered before the
	// manager's Close so a failing subtest cannot wedge cleanup.
	gatedOpts := func() (core.Options, func()) {
		release := make(chan struct{})
		var once sync.Once
		unblock := func() { once.Do(func() { close(release) }) }
		opts := testOpts()
		opts.IdentifyAfter = 1
		opts.Segmenter = gateSegmenter{release: release}
		return opts, unblock
	}

	t.Run("reject", func(t *testing.T) {
		opts, unblock := gatedOpts()
		defer unblock()
		m := NewManager(Config{QueueDepth: 1})
		defer m.Close()
		s, err := m.OpenWith("r", testW, testH, opts, SessionOptions{QueuePolicy: PolicyReject})
		if err != nil {
			t.Fatal(err)
		}
		var full int
		for i := 0; i < 4; i++ { // worker holds ≤1, queue holds 1: a later feed must reject
			if err := s.Feed(frames[i], sils[i]); errors.Is(err, ErrQueueFull) {
				full++
			} else if err != nil {
				t.Fatalf("feed %d: %v", i, err)
			}
		}
		if full == 0 {
			t.Fatal("no ErrQueueFull from a wedged 1-deep queue")
		}
		unblock()
		if err := s.Finalize(); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.FramesDropped != uint64(full) {
			t.Fatalf("dropped=%d, rejected feeds=%d", st.FramesDropped, full)
		}
	})

	t.Run("block-timeout", func(t *testing.T) {
		opts, unblock := gatedOpts()
		defer unblock()
		m := NewManager(Config{QueueDepth: 1})
		defer m.Close()
		s, err := m.OpenWith("b", testW, testH, opts, SessionOptions{
			QueuePolicy:   PolicyBlock,
			BlockDeadline: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		var full int
		for i := 0; i < 4; i++ {
			if err := s.Feed(frames[i], sils[i]); errors.Is(err, ErrQueueFull) {
				full++
			} else if err != nil {
				t.Fatalf("feed %d: %v", i, err)
			}
		}
		if full == 0 {
			t.Fatal("blocked feeds never timed out on a wedged queue")
		}
		unblock()
		if err := s.Finalize(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("block-waits", func(t *testing.T) {
		opts, unblock := gatedOpts()
		defer unblock()
		m := NewManager(Config{QueueDepth: 1, DefaultQueuePolicy: PolicyBlock, BlockDeadline: 10 * time.Second})
		defer m.Close()
		s, err := m.Open("w", testW, testH, opts)
		if err != nil {
			t.Fatal(err)
		}
		time.AfterFunc(20*time.Millisecond, unblock)
		for i := range frames { // blocks until the release, then all flow
			if err := s.Feed(frames[i], sils[i]); err != nil {
				t.Fatalf("feed %d: %v", i, err)
			}
		}
		if err := s.Finalize(); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		if st.FramesDropped != 0 || st.FramesProcessed != uint64(len(frames)) {
			t.Fatalf("blocking policy lost frames: %+v", st)
		}
	})
}

// TestManagerRestoreAdmission: a fleet restarting over its limits sheds
// deterministically — highest sorted ids past MaxSessions are refused
// with RestoreError.Shed and their checkpoints left intact.
func TestManagerRestoreAdmission(t *testing.T) {
	store := NewMemStore()
	seed := NewManager(Config{Checkpoints: store, CheckpointInterval: time.Hour})
	frames, sils := testFrames(6)
	for _, id := range []string{"a", "b", "c"} {
		s, err := seed.Open(id, testW, testH, testOpts())
		if err != nil {
			t.Fatal(err)
		}
		for i := range frames {
			if err := s.Feed(frames[i], sils[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := seed.Close(); err != nil { // final checkpoint per session
		t.Fatal(err)
	}
	if ids, _ := store.List(); len(ids) != 3 {
		t.Fatalf("seed fleet checkpoints = %v", ids)
	}

	m := NewManager(Config{Checkpoints: store, MaxSessions: 2, RestoreConcurrency: 2})
	defer m.Close()
	restored, err := m.Restore(func(string) core.Options { return testOpts() })
	if len(restored) != 2 {
		t.Fatalf("restored %d sessions, want 2", len(restored))
	}
	if !errors.Is(err, ErrFleetFull) {
		t.Fatalf("restore error = %v, want ErrFleetFull in chain", err)
	}
	var re *RestoreError
	if !errors.As(err, &re) || !re.Shed || re.ID != "c" {
		t.Fatalf("restore error = %#v, want shed of %q", re, "c")
	}
	for _, want := range []string{"a", "b"} {
		s, ok := m.Get(want)
		if !ok {
			t.Fatalf("session %q not restored", want)
		}
		if st := s.Stats(); !st.Restored || st.StreamFrames != uint64(len(frames)) {
			t.Fatalf("session %q resumed wrong: %+v", want, st)
		}
	}
	// The shed checkpoint is untouched — a later Restore with capacity
	// picks it up.
	if ids, _ := store.List(); len(ids) != 3 {
		t.Fatalf("shed checkpoint deleted: %v", ids)
	}
	if got := m.Stats().Shed; got != 1 {
		t.Fatalf("shed counter = %d", got)
	}
}

// TestChaosCrashRecoverySupervised is the acceptance scenario: a seeded
// fault profile poisons frames mid-call (worker panics) while the
// checkpoint store randomly fails saves, and the supervisor must heal
// every crash from the last-good checkpoint — zero unresurrected
// failures, frame counter never below the resumed floor, coverage
// monotone across incarnations, counters reconciled — and the whole
// run must be bit-deterministic for the fixed seed.
func TestChaosCrashRecoverySupervised(t *testing.T) {
	frames, sils := loadGoldenCall(t, 4)

	type outcome struct {
		restarts     int
		events       []RestartEvent
		streamFrames uint64
		coverage     int
		poisoned     int
	}
	run := func() outcome {
		inj := faultinject.New(faultinject.Profile{
			Seed:   42,
			Drop:   0.10,
			Poison: 0.12,
		})
		delivered := inj.Apply(frames, sils)
		poison := map[*imagex.Image]bool{}
		nPoison := 0
		for _, f := range delivered {
			if f.Poisoned {
				poison[f.Img] = true
				nPoison++
			}
		}
		if nPoison < 3 {
			t.Fatalf("seed 42 poisoned only %d frames; not a meaningful crash storm", nPoison)
		}

		flaky := faultinject.NewFlakyStore(NewMemStore(), faultinject.StoreProfile{
			Seed:     42,
			SaveFail: 0.3, // some checkpoint cycles fail; the last good one must carry the restart
		})
		cfg := superCfg(flaky)
		cfg.MaxRestarts = nPoison + 1 // stay below the breaker
		cfg.CheckpointRetries = 2
		m := NewManager(cfg)
		defer m.Close()
		opts := chaosOpts()
		// Pin on the first (clean) warmup frame: identification buffering
		// clones frames into the pending window, which would defeat the
		// pointer-identity poison set; post-pin every delivered frame is
		// segmented as-is, so every poisoned delivery detonates.
		opts.IdentifyAfter = 1
		opts.Segmenter = poisonSegmenter{set: poison}
		if _, err := m.Open("call", chaosW, chaosH, opts); err != nil {
			t.Fatal(err)
		}

		// Warm up with clean frames so the first crash always has a
		// checkpoint to resume from.
		cur, _ := m.Get("call")
		for i := 0; i < 3; i++ {
			feedAndSettle(t, cur, frames[i], sils[i])
		}
		// Serial chaos feed: wait out every crash before the next frame.
		for _, f := range delivered {
			deadline := time.Now().Add(10 * time.Second)
			for {
				s, ok := m.Get("call")
				if !ok {
					t.Fatal("session vanished mid-call")
				}
				if s.Health() < Failed {
					cur = s
					break
				}
				if s.Health() == PermanentlyFailed {
					t.Fatalf("breaker tripped below the cap: %v", s.HealthReasons())
				}
				if time.Now().After(deadline) {
					t.Fatal("supervisor never resurrected the call")
				}
				time.Sleep(100 * time.Microsecond)
			}
			feedAndSettle(t, cur, f.Img, f.Oracle)
		}
		final := waitHealed(t, m, "call")
		if err := final.Finalize(); err != nil {
			t.Fatalf("healed call finalize: %v", err)
		}

		st := final.Stats()
		ms := m.Stats()
		// Zero unresurrected failures; every panic became a restart.
		if ms.FailedNow != 0 || ms.PermanentlyFailedNow != 0 || ms.BreakerTrips != 0 {
			t.Fatalf("unhealed fleet: %+v", ms)
		}
		if ms.Panics != uint64(nPoison) || ms.Restarts != uint64(nPoison) {
			t.Fatalf("panics=%d restarts=%d, want %d of each", ms.Panics, ms.Restarts, nPoison)
		}
		events := m.RestartEvents()
		if len(events) != nPoison {
			t.Fatalf("restart log = %d events, want %d", len(events), nPoison)
		}
		// Every restart resumed from the last-good checkpoint (the warmup
		// guarantees one exists), incarnations are sequential, and the
		// resumed floor is monotone non-decreasing across incarnations.
		for i, ev := range events {
			if !ev.FromCheckpoint || ev.ResumedFrames == 0 {
				t.Fatalf("restart %d not from a checkpoint: %+v", i, ev)
			}
			if ev.Incarnation != i+2 {
				t.Fatalf("restart %d incarnation = %d", i, ev.Incarnation)
			}
			if i > 0 && (ev.ResumedFrames < events[i-1].ResumedFrames ||
				ev.ResumedCoverage < events[i-1].ResumedCoverage) {
				t.Fatalf("resume floor regressed: %+v -> %+v", events[i-1], ev)
			}
		}
		if st.StreamFrames < st.ResumedFrames {
			t.Fatalf("frame counter %d below checkpoint floor %d", st.StreamFrames, st.ResumedFrames)
		}
		cov := final.Snapshot().Coverage.Fraction()
		if cov < st.ResumedCoverage || cov <= 0 {
			t.Fatalf("final coverage %f below resumed floor %f", cov, st.ResumedCoverage)
		}
		return outcome{
			restarts:     len(events),
			events:       events,
			streamFrames: st.StreamFrames,
			coverage:     final.Snapshot().Coverage.Count(),
			poisoned:     nPoison,
		}
	}

	a := run()
	b := run()
	if a.restarts != b.restarts || a.poisoned != b.poisoned ||
		a.streamFrames != b.streamFrames || a.coverage != b.coverage {
		t.Fatalf("same seed, different recovery:\n%+v\n%+v", a, b)
	}
	for i := range a.events {
		ea, eb := a.events[i], b.events[i]
		if ea.ResumedFrames != eb.ResumedFrames || ea.Incarnation != eb.Incarnation ||
			ea.FromCheckpoint != eb.FromCheckpoint {
			t.Fatalf("same seed, different restart %d:\n%+v\n%+v", i, ea, eb)
		}
	}
	t.Logf("healed %d crashes; %d frames, coverage count %d", a.restarts, a.streamFrames, a.coverage)
}

// waitHealed waits until the current incarnation of id is live (not
// Failed) and returns it.
func waitHealed(t *testing.T, m *Manager, id string) *Session {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s, ok := m.Get(id); ok && s.Health() < Failed {
			return s
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("session %q never healed", id)
	return nil
}

// TestChaosSupervisedFleetRace is the concurrent supervised stress (run
// with -race): several sessions fed concurrently, some crash-looping
// under poisoned frames, the supervisor healing them while observers
// poll stats. Loose assertions — determinism lives in the serial test
// above — but the fleet must end with every id live and all counters
// self-consistent.
func TestChaosSupervisedFleetRace(t *testing.T) {
	frames, sils := loadGoldenCall(t, 1)
	cfg := superCfg(NewMemStore())
	cfg.MaxRestarts = 1000
	cfg.QueueDepth = 2 * len(frames)
	m := NewManager(cfg)

	const nSessions = 6
	type callState struct {
		poison map[*imagex.Image]bool
		frames []faultinject.Frame
	}
	calls := make([]callState, nSessions)
	for i := range calls {
		inj := faultinject.New(faultinject.Profile{Seed: int64(7000 + i), Drop: 0.1, Poison: 0.04})
		delivered := inj.Apply(frames, sils)
		poison := map[*imagex.Image]bool{}
		for _, f := range delivered {
			if f.Poisoned {
				poison[f.Img] = true
			}
		}
		calls[i] = callState{poison: poison, frames: delivered}
		opts := chaosOpts()
		opts.IdentifyAfter = 1
		opts.Segmenter = poisonSegmenter{set: poison}
		if _, err := m.Open(fmt.Sprintf("call-%d", i), chaosW, chaosH, opts); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	go func() { // stats observer
		for {
			select {
			case <-stop:
				return
			default:
			}
			ms := m.Stats()
			if ms.HealthyNow+ms.DegradedNow+ms.FailedNow+ms.PermanentlyFailedNow != ms.Open {
				t.Error("health breakdown does not sum to open")
				return
			}
			_ = m.RestartEvents()
		}
	}()

	done := make(chan int, nSessions)
	for i := range calls {
		go func(i int) {
			id := fmt.Sprintf("call-%d", i)
			for _, f := range calls[i].frames {
				// Route through the manager so restarts are transparent;
				// drop frames that land during a crash window.
				_ = m.Feed(id, f.Img, f.Oracle)
				time.Sleep(50 * time.Microsecond)
			}
			done <- i
		}(i)
	}
	for range calls {
		<-done
	}
	// Let the supervisor heal any crash from the last frames.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m.Stats().FailedNow == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)

	ms := m.Stats()
	if ms.FailedNow != 0 || ms.PermanentlyFailedNow != 0 {
		t.Fatalf("fleet not healed: %+v", ms)
	}
	if ms.Open != nSessions {
		t.Fatalf("open = %d, want %d", ms.Open, nSessions)
	}
	if ms.Panics != ms.Restarts {
		t.Fatalf("panics=%d restarts=%d must reconcile on a healed fleet", ms.Panics, ms.Restarts)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close of healed fleet: %v", err)
	}
}
