package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/session/stats"
)

// Config tunes the Manager. The zero value is usable: 32-frame queues,
// no idle eviction, 256 coverage samples per session.
type Config struct {
	// QueueDepth bounds each session's frame queue; when full, the
	// oldest queued frame is dropped (non-positive: 32).
	QueueDepth int
	// IdleTimeout evicts sessions that have not been fed for this
	// long. Zero disables eviction.
	IdleTimeout time.Duration
	// SweepEvery is the eviction sweep period (non-positive: 1s, or
	// IdleTimeout/4 if smaller).
	SweepEvery time.Duration
	// CoverageSamples bounds each session's coverage-over-time ring
	// (non-positive: 256).
	CoverageSamples int
	// Checkpoints, when set, makes every session durably checkpoint its
	// stream: periodically while live (CheckpointInterval), and once
	// more after Finalize — which covers eviction, so an idle-swept call
	// can be resumed by Manager.Restore after a restart. Nil disables
	// checkpointing entirely.
	Checkpoints CheckpointStore
	// CheckpointInterval paces the periodic per-session checkpoints
	// (non-positive: 5s). Its magnitude bounds how many frames a crash
	// can lose.
	CheckpointInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.CoverageSamples <= 0 {
		c.CoverageSamples = 256
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 5 * time.Second
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = time.Second
		if c.IdleTimeout > 0 && c.IdleTimeout/4 < c.SweepEvery {
			c.SweepEvery = c.IdleTimeout / 4
		}
	}
	return c
}

// Manager multiplexes many live reconstruction sessions. All methods
// are safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	opened    stats.Counter
	closedCnt stats.Counter
	evictions stats.Counter
	panics    stats.Counter
	restores  stats.Counter

	stopSweep chan struct{}
	sweepDone chan struct{}
}

// NewManager returns a running Manager; Close releases it. When
// cfg.IdleTimeout is set, a background sweeper finalizes and removes
// sessions whose last Feed is older than the timeout.
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		sessions: map[string]*Session{},
	}
	if m.cfg.IdleTimeout > 0 {
		m.stopSweep = make(chan struct{})
		m.sweepDone = make(chan struct{})
		go m.sweep()
	}
	return m
}

// Open starts a live session reconstructing a call of the given frame
// geometry. opts follows core.NewStream (VBKnownImage or
// VBUnknownImage). The id must be unique among open sessions.
func (m *Manager) Open(id string, w, h int, opts core.Options) (*Session, error) {
	stream, err := core.NewStream(w, h, opts)
	if err != nil {
		return nil, fmt.Errorf("session %q: %w", id, err)
	}
	return m.register(id, stream, false)
}

// register installs a (new or resumed) stream as a running session.
func (m *Manager) register(id string, stream *core.StreamReconstructor, restored bool) (*Session, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("manager: %w", ErrClosed)
	}
	if _, dup := m.sessions[id]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("session %q: %w", id, ErrExists)
	}
	s := newSession(m, id, stream, m.cfg.QueueDepth, m.cfg.CoverageSamples)
	s.restored = restored
	m.sessions[id] = s
	m.mu.Unlock()
	m.opened.Inc()
	if restored {
		m.restores.Inc()
	}
	go s.loop()
	return s, nil
}

// Restore resumes every checkpointed session in Config.Checkpoints —
// the restart path of a live fleet: each stored .bbck is decoded with
// core.ResumeStream and re-registered under its original id, so the
// caller can keep feeding the same calls where they left off,
// bit-identically (DESIGN.md §11). optsFor supplies the reconstruction
// options for each session id; they must match the options the
// checkpoint was written under (the embedded fingerprint is verified).
//
// Restore returns the sessions it managed to resume even when some
// ids fail — a corrupt or mismatched checkpoint skips that id, and the
// joined error reports every failure. Ids already open are skipped the
// same way (ErrExists), so Restore is safe to call at any point.
func (m *Manager) Restore(optsFor func(id string) core.Options) ([]*Session, error) {
	if m.cfg.Checkpoints == nil {
		return nil, errors.New("manager: no checkpoint store configured")
	}
	ids, err := m.cfg.Checkpoints.List()
	if err != nil {
		return nil, fmt.Errorf("manager: restore: %w", err)
	}
	var (
		out  []*Session
		errs []error
	)
	for _, id := range ids {
		data, err := m.cfg.Checkpoints.Load(id)
		if err != nil {
			errs = append(errs, fmt.Errorf("restore %q: %w", id, err))
			continue
		}
		stream, err := core.ResumeStream(data, optsFor(id))
		if err != nil {
			errs = append(errs, fmt.Errorf("restore %q: %w", id, err))
			continue
		}
		s, err := m.register(id, stream, true)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		out = append(out, s)
	}
	return out, errors.Join(errs...)
}

// Get returns the open session with the given id.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Len returns the number of open sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// remove unregisters s if it is still the session registered under id.
func (m *Manager) remove(id string, s *Session) {
	m.mu.Lock()
	if cur, ok := m.sessions[id]; ok && cur == s {
		delete(m.sessions, id)
		m.mu.Unlock()
		m.closedCnt.Inc()
		return
	}
	m.mu.Unlock()
}

// list copies the current session set.
func (m *Manager) list() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	return out
}

// sweep is the idle-eviction loop.
func (m *Manager) sweep() {
	defer close(m.sweepDone)
	t := time.NewTicker(m.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stopSweep:
			return
		case <-t.C:
		}
		deadline := time.Now().Add(-m.cfg.IdleTimeout).UnixNano()
		for _, s := range m.list() {
			if s.lastFeed.Load() < deadline {
				s.evicted.Store(true)
				m.evictions.Inc()
				_ = s.Close() // finalizes; panic (if any) already counted
			}
		}
	}
}

// Close finalizes every open session and stops the sweeper. The
// manager accepts no new sessions afterwards; Close is idempotent.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	if m.stopSweep != nil {
		close(m.stopSweep)
		<-m.sweepDone
	}
	for _, s := range m.list() {
		_ = s.Close()
	}
}

// ManagerSnapshot is an instantaneous view of the manager and all its
// open sessions.
type ManagerSnapshot struct {
	// Open is the number of currently open sessions.
	Open int
	// Opened/Closed/Evicted/Panics/Restored are monotonic lifetime
	// counters; Restored counts sessions resumed by Manager.Restore
	// (each also counts in Opened).
	Opened   uint64
	Closed   uint64
	Evicted  uint64
	Panics   uint64
	Restored uint64
	// Sessions holds one snapshot per open session, ordered by ID.
	Sessions []Snapshot
}

// Stats assembles a snapshot of every open session without stopping
// any of them.
func (m *Manager) Stats() ManagerSnapshot {
	sessions := m.list()
	snap := ManagerSnapshot{
		Open:     len(sessions),
		Opened:   m.opened.Load(),
		Closed:   m.closedCnt.Load(),
		Evicted:  m.evictions.Load(),
		Panics:   m.panics.Load(),
		Restored: m.restores.Load(),
	}
	for _, s := range sessions {
		snap.Sessions = append(snap.Sessions, s.Stats())
	}
	sort.Slice(snap.Sessions, func(i, j int) bool { return snap.Sessions[i].ID < snap.Sessions[j].ID })
	return snap
}
