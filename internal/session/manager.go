package session

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bgbuster/bgbuster/internal/core"
	"github.com/bgbuster/bgbuster/internal/gallery"
	"github.com/bgbuster/bgbuster/internal/imagex"
	"github.com/bgbuster/bgbuster/internal/session/stats"
)

// ErrManagerClosed is returned by Open, OpenWith, Feed and Restore
// once Manager.Close has begun. It wraps ErrClosed, so existing
// errors.Is(err, ErrClosed) checks keep matching while callers that
// care can distinguish a closed manager from one session's closed
// intake.
var ErrManagerClosed = fmt.Errorf("%w: manager closed", ErrClosed)

// ErrFleetFull is the admission-control rejection from Open/Restore
// when Config.MaxSessions open sessions already exist.
var ErrFleetFull = errors.New("session: fleet full")

// ErrMemoryBudget is the admission-control rejection from Open/Restore
// when registering the stream would push the fleet's summed
// StreamReconstructor.MemFootprint past Config.MemBudget.
var ErrMemoryBudget = errors.New("session: memory budget exhausted")

// ErrQueueFull is returned by Feed under the PolicyReject and
// PolicyBlock queue policies when the frame could not be enqueued.
var ErrQueueFull = errors.New("session: queue full")

// ErrNoSession is returned by Manager.Feed for an id with no open
// session (never opened, closed, or evicted).
var ErrNoSession = errors.New("session: no such session")

// QueuePolicy selects what Feed does when a session's frame queue is
// full. The zero value defers to Config.DefaultQueuePolicy (which
// itself defaults to drop-oldest).
type QueuePolicy int

const (
	// PolicyDefault defers to Config.DefaultQueuePolicy.
	PolicyDefault QueuePolicy = iota
	// PolicyDropOldest evicts the oldest queued frame to make room —
	// a live adversary that falls behind loses stale frames, never the
	// call. This is the historical (and default) behaviour.
	PolicyDropOldest
	// PolicyReject drops the new frame instead and returns ErrQueueFull,
	// for callers that prefer explicit backpressure over silent loss.
	PolicyReject
	// PolicyBlock waits up to the block deadline for queue space, then
	// drops the new frame and returns ErrQueueFull. Feed is no longer
	// non-blocking under this policy; Close can wait up to one deadline
	// per blocked feeder.
	PolicyBlock
)

// String names the policy for logs and flags.
func (p QueuePolicy) String() string {
	switch p {
	case PolicyDefault:
		return "default"
	case PolicyDropOldest:
		return "drop-oldest"
	case PolicyReject:
		return "reject"
	case PolicyBlock:
		return "block"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// SessionOptions are per-session knobs for OpenWith; the zero value
// inherits every default from the Config.
type SessionOptions struct {
	// QueuePolicy overrides Config.DefaultQueuePolicy for this session.
	QueuePolicy QueuePolicy
	// BlockDeadline overrides Config.BlockDeadline for PolicyBlock.
	BlockDeadline time.Duration
}

// Config tunes the Manager. The zero value is usable: 32-frame queues,
// drop-oldest intake, no idle eviction, no admission limits, no
// auto-restart, 256 coverage samples per session.
type Config struct {
	// BaseContext is the root of the manager's cancellation tree; the
	// sweeper, watchdog, supervisor and every session worker descend
	// from it, and Manager.Close cancels the whole tree. Nil means
	// context.Background().
	BaseContext context.Context

	// QueueDepth bounds each session's frame queue; when full, the
	// session's queue policy decides (non-positive: 32).
	QueueDepth int
	// DefaultQueuePolicy applies to sessions opened without an explicit
	// per-session policy (PolicyDefault resolves to PolicyDropOldest).
	DefaultQueuePolicy QueuePolicy
	// BlockDeadline bounds how long a PolicyBlock Feed waits for queue
	// space (non-positive: 250ms).
	BlockDeadline time.Duration

	// MaxSessions caps the number of concurrently open sessions; Open
	// and Restore past the cap return ErrFleetFull (0: unlimited).
	MaxSessions int
	// MemBudget caps the fleet's summed admission-time
	// StreamReconstructor.MemFootprint in bytes; Open and Restore past
	// it return ErrMemoryBudget (0: unlimited).
	MemBudget int64
	// EvictOnPressure lets Open shed load instead of rejecting: when
	// admission would fail, the least-recently-fed open session is
	// evicted (finalized, checkpointed if a store is configured) to
	// make room, repeatedly until the new session fits or the fleet is
	// empty. Restore never evicts — a restart backlog must not push out
	// live calls.
	EvictOnPressure bool

	// IdleTimeout evicts sessions that have not been fed for this
	// long. Zero disables eviction.
	IdleTimeout time.Duration
	// SweepEvery is the eviction sweep period (non-positive: 1s, or
	// IdleTimeout/4 if smaller).
	SweepEvery time.Duration
	// CoverageSamples bounds each session's coverage-over-time ring
	// (non-positive: 256).
	CoverageSamples int
	// Checkpoints, when set, makes every session durably checkpoint its
	// stream: periodically while live (CheckpointInterval), and once
	// more after Finalize — which covers eviction, so an idle-swept call
	// can be resumed by Manager.Restore after a restart. Nil disables
	// checkpointing entirely.
	Checkpoints CheckpointStore
	// CheckpointInterval paces the periodic per-session checkpoints
	// (non-positive: 5s). Its magnitude bounds how many frames a crash
	// can lose.
	CheckpointInterval time.Duration
	// CheckpointRetries is the total number of Save attempts per
	// checkpoint cycle (non-positive: 3). When a whole cycle fails the
	// session keeps the last good checkpoint in the store, degrades its
	// health, and keeps processing frames.
	CheckpointRetries int
	// CheckpointBackoff is the delay before the first Save retry,
	// doubling per retry up to CheckpointBackoffMax (non-positive:
	// 25ms and 500ms respectively).
	CheckpointBackoff    time.Duration
	CheckpointBackoffMax time.Duration

	// AutoRestart arms the supervisor: a Failed session is resurrected
	// from its last good checkpoint (or fresh, if none exists) as a new
	// incarnation under the same id, with capped exponential backoff
	// between attempts and a sliding-window circuit breaker
	// (DESIGN.md §13).
	AutoRestart bool
	// RestartOptions, when set, supplies the reconstruction options for
	// a restarted id; nil reuses the options the session was opened
	// (or restored) with. Options must match the checkpoint fingerprint
	// or the restart attempt fails and counts toward the breaker.
	RestartOptions func(id string) core.Options
	// MaxRestarts is the circuit-breaker cap: once an id has been
	// restarted this many times within RestartWindow, the next trigger
	// trips the breaker and the session becomes PermanentlyFailed
	// (non-positive: 5).
	MaxRestarts int
	// RestartWindow is the breaker's sliding window (non-positive: 1m).
	RestartWindow time.Duration
	// RestartBackoff delays a retry after a failed restart attempt,
	// doubling per consecutive failure up to RestartBackoffMax
	// (non-positive: 10ms and 1s respectively). A successful restart
	// resets the backoff.
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// SupervisorInterval paces the supervisor's scan for Failed
	// sessions; failure notifications wake it early (non-positive:
	// 10ms).
	SupervisorInterval time.Duration

	// RestoreConcurrency bounds how many checkpoints Restore loads and
	// decodes in parallel (non-positive: 4). Registration stays serial
	// in id order, so which sessions are shed under admission limits is
	// deterministic.
	RestoreConcurrency int

	// QualityGate, when set, screens every well-formed frame before it
	// reaches the reconstructor; a non-nil error rejects the frame
	// (counted in FramesGated and FramesRejected). Malformed frames
	// (nil, wrong geometry) bypass the gate and are rejected by the
	// reconstructor's own frame-fault taxonomy.
	QualityGate func(frame *imagex.Image, oracle *imagex.Mask) error
	// MaxImpulseNoise, when > 0, is the built-in decode-quality gate:
	// frames whose vidstream.ImpulseNoise score exceeds it are rejected
	// before their corrupted pixels can be claimed as residue. 0
	// disables the gate.
	MaxImpulseNoise float64

	// DegradeAfterRejects, when > 0, degrades a session once this many
	// consecutive frames have been rejected (gate + recoverable stream
	// rejections; any accepted frame resets the streak). The streak
	// advances per frame in both the Feed and FeedN paths, so one
	// poisoned batch trips the threshold at the same frame a sequential
	// replay would. 0 disables the threshold.
	DegradeAfterRejects int
	// FailAfterRejects, when > 0, fails a session once the consecutive
	// rejection streak reaches it — the worker stops and (with
	// AutoRestart) the supervisor resurrects the id from its last good
	// checkpoint. Usually set above DegradeAfterRejects so the health
	// machine walks healthy → degraded → failed. 0 disables the
	// threshold.
	FailAfterRejects int

	// StallTimeout, when > 0, arms the manager watchdog: a session with
	// no feed or processing activity for this long (and not yet
	// finalized) is marked degraded as stalled. Detection only — a
	// stalled call is never killed, it may still recover.
	StallTimeout time.Duration
	// CloseTimeout bounds how long Manager.Close waits for the fleet to
	// drain; sessions still running at the deadline are abandoned
	// (degraded, reported in Close's error). 0 waits indefinitely.
	CloseTimeout time.Duration

	// Logf, when set, receives human-readable degradation events:
	// checkpoint failures, health transitions, watchdog stalls,
	// restarts, breaker trips. Nil discards them. Must be safe for
	// concurrent use.
	Logf func(format string, args ...any)

	// Gallery enables Manager.FeedComposite: gallery-view composite
	// frames are demuxed into per-participant tiles, each driving its
	// own supervised session (gallery.go). Nil disables composite
	// ingestion; per-stream Open/Feed are unaffected either way.
	Gallery *GalleryConfig
}

func (c Config) withDefaults() Config {
	if c.BaseContext == nil {
		c.BaseContext = context.Background()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.DefaultQueuePolicy == PolicyDefault {
		c.DefaultQueuePolicy = PolicyDropOldest
	}
	if c.BlockDeadline <= 0 {
		c.BlockDeadline = 250 * time.Millisecond
	}
	if c.CoverageSamples <= 0 {
		c.CoverageSamples = 256
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 5 * time.Second
	}
	if c.CheckpointRetries <= 0 {
		c.CheckpointRetries = 3
	}
	if c.CheckpointBackoff <= 0 {
		c.CheckpointBackoff = 25 * time.Millisecond
	}
	if c.CheckpointBackoffMax <= 0 {
		c.CheckpointBackoffMax = 500 * time.Millisecond
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 5
	}
	if c.RestartWindow <= 0 {
		c.RestartWindow = time.Minute
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 10 * time.Millisecond
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = time.Second
	}
	if c.SupervisorInterval <= 0 {
		c.SupervisorInterval = 10 * time.Millisecond
	}
	if c.RestoreConcurrency <= 0 {
		c.RestoreConcurrency = 4
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = time.Second
		if c.IdleTimeout > 0 && c.IdleTimeout/4 < c.SweepEvery {
			c.SweepEvery = c.IdleTimeout / 4
		}
	}
	return c
}

// RestartEvent is one supervisor resurrection, recorded in the
// manager's bounded restart log (RestartEvents).
type RestartEvent struct {
	// ID is the resurrected session id; Incarnation is the new
	// incarnation number (the first restart produces incarnation 2).
	ID          string
	Incarnation int
	// ResumedFrames and ResumedCoverage are the stream's cumulative
	// frame counter and coverage fraction at the moment of resurrection
	// — the last-good checkpoint's state, or zero for a fresh restart.
	ResumedFrames   uint64
	ResumedCoverage float64
	// FromCheckpoint reports whether a stored checkpoint was resumed
	// (false: no checkpoint existed and the incarnation started fresh).
	FromCheckpoint bool
	Time           time.Time
}

// maxRestartLog bounds the retained restart events; the counters carry
// magnitudes beyond it.
const maxRestartLog = 512

// Manager multiplexes many live reconstruction sessions. All methods
// are safe for concurrent use.
type Manager struct {
	cfg Config

	// ctx is the root of the manager's cancellation tree (sweeper,
	// watchdog, supervisor, blocked feeders); Close cancels it.
	ctx        context.Context
	cancel     context.CancelFunc
	closedFlag atomic.Bool

	mu         sync.Mutex
	sessions   map[string]*Session
	closed     bool
	memUsed    uint64 // summed admission-time footprints of open sessions
	restartLog []RestartEvent

	opened        stats.Counter
	closedCnt     stats.Counter
	evictions     stats.Counter
	pressureEvict stats.Counter
	panics        stats.Counter
	restores      stats.Counter
	restarts      stats.Counter
	breakerTrips  stats.Counter
	degrades      stats.Counter
	stalls        stats.Counter
	abandoned     stats.Counter
	shed          stats.Counter // admission rejections (fleet-full + memory-budget)

	failedCh  chan struct{} // wakes the supervisor on a worker failure
	sweepDone chan struct{}
	watchDone chan struct{}
	superDone chan struct{}

	// galleryMu orders composite ingestion; the fan-out is created
	// lazily on the first FeedComposite (gallery.go).
	galleryMu  sync.Mutex
	galleryFan *gallery.Fanout
}

// logf forwards a degradation event to Config.Logf, if any.
func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// noteFailed wakes the supervisor without blocking; a missed wake is
// harmless (the periodic scan catches up).
func (m *Manager) noteFailed() {
	if m.failedCh == nil {
		return
	}
	select {
	case m.failedCh <- struct{}{}:
	default:
	}
}

// NewManager returns a running Manager; Close releases it. When
// cfg.IdleTimeout is set, a background sweeper finalizes and removes
// sessions whose last Feed is older than the timeout; cfg.AutoRestart
// starts the supervisor (supervisor.go).
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		sessions: map[string]*Session{},
	}
	m.ctx, m.cancel = context.WithCancel(m.cfg.BaseContext)
	if m.cfg.IdleTimeout > 0 {
		m.sweepDone = make(chan struct{})
		go m.sweep()
	}
	if m.cfg.StallTimeout > 0 {
		m.watchDone = make(chan struct{})
		go m.watchdog()
	}
	if m.cfg.AutoRestart {
		m.failedCh = make(chan struct{}, 1)
		m.superDone = make(chan struct{})
		go m.supervise()
	}
	return m
}

// Context returns the manager's root context; it is cancelled when
// Close begins (or when Config.BaseContext is cancelled).
func (m *Manager) Context() context.Context { return m.ctx }

// Open starts a live session reconstructing a call of the given frame
// geometry with the manager's default queue policy. opts follows
// core.NewStream (VBKnownImage or VBUnknownImage). The id must be
// unique among open sessions.
func (m *Manager) Open(id string, w, h int, opts core.Options) (*Session, error) {
	return m.OpenWith(id, w, h, opts, SessionOptions{})
}

// OpenWith is Open with per-session options (queue policy, block
// deadline). Admission control applies: past Config.MaxSessions it
// returns ErrFleetFull, past Config.MemBudget it returns
// ErrMemoryBudget — unless Config.EvictOnPressure sheds the
// least-recently-fed session instead.
func (m *Manager) OpenWith(id string, w, h int, opts core.Options, so SessionOptions) (*Session, error) {
	stream, err := core.NewStream(w, h, opts)
	if err != nil {
		return nil, fmt.Errorf("session %q: %w", id, err)
	}
	return m.register(id, stream, opts, so, regMeta{}, m.cfg.EvictOnPressure)
}

// admitLocked is the admission decision for one new session of
// footprint fp bytes. Caller holds m.mu.
func (m *Manager) admitLocked(id string, fp uint64) error {
	if m.closed {
		return fmt.Errorf("session %q: %w", id, ErrManagerClosed)
	}
	if _, dup := m.sessions[id]; dup {
		return fmt.Errorf("session %q: %w", id, ErrExists)
	}
	if m.cfg.MaxSessions > 0 && len(m.sessions) >= m.cfg.MaxSessions {
		return fmt.Errorf("session %q: %w (%d open, max %d)", id, ErrFleetFull, len(m.sessions), m.cfg.MaxSessions)
	}
	if m.cfg.MemBudget > 0 && m.memUsed+fp > uint64(m.cfg.MemBudget) {
		return fmt.Errorf("session %q: %w (%d in use + %d needed > budget %d)",
			id, ErrMemoryBudget, m.memUsed, fp, m.cfg.MemBudget)
	}
	return nil
}

// regMeta carries the provenance a new session must be fully labelled
// with BEFORE it becomes visible to observers: installLocked writes
// every field before the map insert, so a concurrent Stats/Snapshot can
// never see a half-initialized session (the restored flag and resume
// floors are read without the manager lock).
type regMeta struct {
	restored        bool
	incarnation     int // non-positive: 1
	resumedFrames   uint64
	resumedCoverage float64
}

// register installs a (new or resumed) stream as a running session,
// applying admission control. With evictOK, admission pressure evicts
// the least-recently-fed session and retries instead of rejecting.
func (m *Manager) register(id string, stream *core.StreamReconstructor, opts core.Options, so SessionOptions, meta regMeta, evictOK bool) (*Session, error) {
	fp := stream.MemFootprint()
	for attempt := 0; ; attempt++ {
		m.mu.Lock()
		err := m.admitLocked(id, fp)
		if err == nil {
			s := m.installLocked(id, stream, opts, so, fp, meta)
			m.mu.Unlock()
			m.opened.Inc()
			if meta.restored {
				m.restores.Inc()
			}
			go s.loop()
			return s, nil
		}
		var victim *Session
		shedding := errors.Is(err, ErrFleetFull) || errors.Is(err, ErrMemoryBudget)
		if shedding && evictOK && attempt < 1+len(m.sessions) {
			victim = m.pressureVictimLocked()
		}
		m.mu.Unlock()
		if victim == nil {
			if shedding {
				m.shed.Inc()
			}
			return nil, err
		}
		victim.evicted.Store(true)
		m.evictions.Inc()
		m.pressureEvict.Inc()
		m.logf("session %q evicted under admission pressure (admitting %q)", victim.id, id)
		_ = victim.Close() // finalizes (final checkpoint included) and releases its budget
	}
}

// pressureVictimLocked picks the least-recently-fed open session.
// Caller holds m.mu.
func (m *Manager) pressureVictimLocked() *Session {
	var victim *Session
	var oldest int64
	for _, s := range m.sessions {
		if last := s.lastFeed.Load(); victim == nil || last < oldest {
			victim, oldest = s, last
		}
	}
	return victim
}

// installLocked creates the Session record and accounts its footprint.
// Caller holds m.mu and has passed admission. Every field — including
// the provenance meta read by lock-free observers — is written before
// the session is published into the map: once another goroutine can
// reach the session through m.sessions, it is fully initialized.
func (m *Manager) installLocked(id string, stream *core.StreamReconstructor, opts core.Options, so SessionOptions, fp uint64, meta regMeta) *Session {
	s := newSession(m, id, stream, m.cfg.QueueDepth, m.cfg.CoverageSamples)
	s.opts = opts
	s.incarnation = meta.incarnation
	if s.incarnation <= 0 {
		s.incarnation = 1
	}
	s.memBytes = fp
	s.so = so
	s.policy = so.QueuePolicy
	if s.policy == PolicyDefault {
		s.policy = m.cfg.DefaultQueuePolicy
	}
	s.blockDeadline = so.BlockDeadline
	if s.blockDeadline <= 0 {
		s.blockDeadline = m.cfg.BlockDeadline
	}
	s.restored = meta.restored
	s.resumedFrames = meta.resumedFrames
	s.resumedCov = meta.resumedCoverage
	m.sessions[id] = s // publish last: observers may now reach s
	m.memUsed += fp
	return s
}

// RestoreError reports one session id Manager.Restore could not
// resume. The underlying cause is reachable through Unwrap, so
// errors.Is(err, ErrExists), errors.Is(err, ErrFleetFull) and friends
// keep working on the joined error Restore returns.
type RestoreError struct {
	// ID is the session id whose checkpoint was quarantined or shed.
	ID string
	// Err is the load/decode/register failure.
	Err error
	// Shed marks an admission-control rejection (ErrFleetFull or
	// ErrMemoryBudget): the checkpoint is intact and untouched in the
	// store, the fleet just could not afford it right now.
	Shed bool
}

func (e *RestoreError) Error() string {
	if e.Shed {
		return fmt.Sprintf("restore %q: shed: %v", e.ID, e.Err)
	}
	return fmt.Sprintf("restore %q: %v", e.ID, e.Err)
}

func (e *RestoreError) Unwrap() error { return e.Err }

// Restore resumes every checkpointed session in Config.Checkpoints —
// the restart path of a live fleet: each stored .bbck is decoded with
// core.ResumeStream and re-registered under its original id, so the
// caller can keep feeding the same calls where they left off,
// bit-identically (DESIGN.md §11). optsFor supplies the reconstruction
// options for each session id; they must match the options the
// checkpoint was written under (the embedded fingerprint is verified).
//
// Loading and decoding run with bounded concurrency
// (Config.RestoreConcurrency); registration is serial in sorted id
// order and subject to admission control, so a fleet restarting over
// its limits sheds the same ids every time. Restore returns the
// sessions it managed to resume even when some ids fail — a corrupt or
// mismatched checkpoint is quarantined: that id is skipped, a
// *RestoreError naming it joins the returned error, and the stored
// bytes are left untouched in the store for inspection (never deleted
// or overwritten by Restore itself). Ids already open are skipped the
// same way (ErrExists), and ids past Config.MaxSessions/MemBudget are
// shed with RestoreError.Shed set (wrapping ErrFleetFull or
// ErrMemoryBudget), so Restore is safe to call at any point.
func (m *Manager) Restore(optsFor func(id string) core.Options) ([]*Session, error) {
	if m.closedFlag.Load() {
		return nil, fmt.Errorf("manager: restore: %w", ErrManagerClosed)
	}
	if m.cfg.Checkpoints == nil {
		return nil, errors.New("manager: no checkpoint store configured")
	}
	ids, err := m.cfg.Checkpoints.List()
	if err != nil {
		return nil, fmt.Errorf("manager: restore: %w", err)
	}
	sort.Strings(ids) // deterministic shed order, whatever the store returns
	type decoded struct {
		stream *core.StreamReconstructor
		opts   core.Options
		err    error
	}
	results := make([]decoded, len(ids))
	sem := make(chan struct{}, m.cfg.RestoreConcurrency)
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			data, err := m.cfg.Checkpoints.Load(id)
			if err != nil {
				results[i].err = err
				return
			}
			opts := optsFor(id)
			stream, err := core.ResumeStream(data, opts)
			if err != nil {
				results[i].err = err
				return
			}
			results[i].stream, results[i].opts = stream, opts
		}(i, id)
	}
	wg.Wait()

	var (
		out  []*Session
		errs []error
	)
	for i, id := range ids {
		if results[i].err != nil {
			m.logf("session %q: checkpoint quarantined: %v", id, results[i].err)
			errs = append(errs, &RestoreError{ID: id, Err: results[i].err})
			continue
		}
		s, err := m.register(id, results[i].stream, results[i].opts, SessionOptions{}, regMeta{restored: true}, false)
		if err != nil {
			shed := errors.Is(err, ErrFleetFull) || errors.Is(err, ErrMemoryBudget)
			if shed {
				m.logf("session %q: restore shed: %v", id, err)
			}
			errs = append(errs, &RestoreError{ID: id, Err: err, Shed: shed})
			continue
		}
		out = append(out, s)
	}
	return out, errors.Join(errs...)
}

// ResumeSession registers one session resumed from raw checkpoint
// bytes — the receiving half of a live migration: the source shard
// detaches a session to canonical .bbck bytes (Session.Detach), the
// bytes travel over the wire, and the destination calls ResumeSession
// to carry the stream on bit-identically. opts must match the
// checkpoint's embedded options fingerprint. Admission control applies
// exactly as in Restore (no pressure eviction — a migration must not
// push out live calls); the configured CheckpointStore is not
// consulted or written.
func (m *Manager) ResumeSession(id string, data []byte, opts core.Options) (*Session, error) {
	if m.closedFlag.Load() {
		return nil, fmt.Errorf("session %q: %w", id, ErrManagerClosed)
	}
	stream, err := core.ResumeStream(data, opts)
	if err != nil {
		return nil, fmt.Errorf("session %q: resume: %w", id, err)
	}
	meta := regMeta{
		restored:      true,
		resumedFrames: uint64(stream.Frames()),
	}
	meta.resumedCoverage = stream.Snapshot().Coverage.Fraction()
	return m.register(id, stream, opts, SessionOptions{}, meta, false)
}

// Get returns the current incarnation of the open session with the
// given id.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Feed routes one frame to the current incarnation of id — the
// supervisor-friendly intake: after an auto-restart, stale *Session
// handles return ErrFailed while Manager.Feed reaches the live
// incarnation. It returns ErrManagerClosed after Close and
// ErrNoSession for unknown ids.
func (m *Manager) Feed(id string, frame *imagex.Image, oracle *imagex.Mask) error {
	if m.closedFlag.Load() {
		return fmt.Errorf("session %q: %w", id, ErrManagerClosed)
	}
	s, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("session %q: %w", id, ErrNoSession)
	}
	return s.Feed(frame, oracle)
}

// FeedN routes an ordered frame batch to the current incarnation of id
// (see Session.FeedN for the batch semantics and Feed for the routing
// rationale).
func (m *Manager) FeedN(id string, frames []core.Frame) error {
	if m.closedFlag.Load() {
		return fmt.Errorf("session %q: %w", id, ErrManagerClosed)
	}
	s, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("session %q: %w", id, ErrNoSession)
	}
	return s.FeedN(frames)
}

// Len returns the number of open sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// MemUsed returns the fleet's summed admission-time stream footprints
// in bytes — the quantity admission control compares to
// Config.MemBudget.
func (m *Manager) MemUsed() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.memUsed
}

// RestartEvents returns a copy of the bounded supervisor restart log,
// oldest first.
func (m *Manager) RestartEvents() []RestartEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]RestartEvent(nil), m.restartLog...)
}

// remove unregisters s if it is still the session registered under id,
// releasing its memory-budget share.
func (m *Manager) remove(id string, s *Session) {
	m.mu.Lock()
	if cur, ok := m.sessions[id]; ok && cur == s {
		delete(m.sessions, id)
		m.memUsed -= s.memBytes
		m.mu.Unlock()
		m.closedCnt.Inc()
		return
	}
	m.mu.Unlock()
}

// list copies the current session set.
func (m *Manager) list() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	return out
}

// sweep is the idle-eviction loop.
func (m *Manager) sweep() {
	defer close(m.sweepDone)
	t := time.NewTicker(m.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-t.C:
		}
		deadline := time.Now().Add(-m.cfg.IdleTimeout).UnixNano()
		for _, s := range m.list() {
			if s.lastFeed.Load() < deadline {
				s.evicted.Store(true)
				m.evictions.Inc()
				_ = s.Close() // finalizes; panic (if any) already counted
			}
		}
	}
}

// watchdog is the stalled-stream detector: a session with no feed or
// processing activity for StallTimeout (and whose worker has not yet
// exited) is marked degraded. The latch resets on the next Feed, so
// distinct stall episodes are counted separately, while health stays
// monotonically degraded (DESIGN.md §12).
func (m *Manager) watchdog() {
	defer close(m.watchDone)
	period := m.cfg.StallTimeout / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-t.C:
		}
		deadline := time.Now().Add(-m.cfg.StallTimeout).UnixNano()
		for _, s := range m.list() {
			select {
			case <-s.done:
				continue // finalized or failed; not a stall
			default:
			}
			active := s.lastFeed.Load()
			if p := s.lastProc.Load(); p > active {
				active = p
			}
			if active < deadline && s.stallLatch.CompareAndSwap(false, true) {
				m.stalls.Inc()
				s.stalls.Inc()
				s.degrade(fmt.Sprintf("stalled: no stream activity for %s", m.cfg.StallTimeout))
			}
		}
	}
}

// Close finalizes every open session and stops the sweeper, watchdog
// and supervisor by cancelling the manager context. The manager
// accepts no new sessions afterwards; Close is idempotent. When
// Config.CloseTimeout is set, Close waits at most that long for the
// whole fleet to drain: sessions still running at the deadline are
// abandoned — marked degraded, counted, reported in the returned error
// — instead of wedging shutdown on one stuck call. The returned error
// joins per-session failures (panics, fatal errors, abandonments); a
// clean shutdown returns nil.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	m.closedFlag.Store(true)
	m.cancel()
	if m.sweepDone != nil {
		<-m.sweepDone
	}
	if m.watchDone != nil {
		<-m.watchDone
	}
	if m.superDone != nil {
		<-m.superDone
	}
	sessions := m.list()
	for _, s := range sessions {
		s.closeIntake()
	}
	var deadline <-chan time.Time // nil: blocks forever (no timeout)
	if m.cfg.CloseTimeout > 0 {
		timer := time.NewTimer(m.cfg.CloseTimeout)
		defer timer.Stop()
		deadline = timer.C
	}
	var errs []error
	expired := false
	for _, s := range sessions {
		if !expired {
			select {
			case <-s.done:
			case <-deadline:
				expired = true
			}
		}
		if expired {
			select {
			case <-s.done:
				// Finished just in time; fall through to normal handling.
			default:
				m.abandoned.Inc()
				s.degrade("abandoned: manager close deadline exceeded")
				errs = append(errs, fmt.Errorf("session %q: close deadline exceeded", s.id))
				m.remove(s.id, s)
				continue
			}
		}
		if f := s.Failure(); f != "" {
			errs = append(errs, fmt.Errorf("session %q: %w: %s", s.id, ErrFailed, f))
		}
		m.remove(s.id, s)
	}
	return errors.Join(errs...)
}

// ManagerSnapshot is an instantaneous view of the manager and all its
// open sessions.
type ManagerSnapshot struct {
	// Open is the number of currently open sessions.
	Open int
	// Opened/Closed/Evicted/Panics/Restored are monotonic lifetime
	// counters; Restored counts sessions resumed by Manager.Restore
	// (each also counts in Opened). Restarts counts supervisor
	// resurrections (new incarnations; not counted in Opened), and
	// BreakerTrips counts circuit-breaker trips to PermanentlyFailed.
	Opened       uint64
	Closed       uint64
	Evicted      uint64
	Panics       uint64
	Restored     uint64
	Restarts     uint64
	BreakerTrips uint64
	// Shed counts admission rejections (ErrFleetFull + ErrMemoryBudget)
	// and PressureEvicted the sessions evicted to admit newer ones
	// (each also counts in Evicted).
	Shed            uint64
	PressureEvicted uint64
	// MemUsed is the fleet's summed admission-time stream footprints;
	// MemBudget echoes Config.MemBudget (0: unlimited).
	MemUsed   uint64
	MemBudget int64
	// Degraded counts healthy→degraded transitions fleet-wide; Stalls
	// counts watchdog-detected stall episodes; Abandoned counts
	// sessions given up on at the Close deadline.
	Degraded  uint64
	Stalls    uint64
	Abandoned uint64
	// HealthyNow/DegradedNow/FailedNow/PermanentlyFailedNow break the
	// open sessions down by current health state (they sum to Open).
	HealthyNow           int
	DegradedNow          int
	FailedNow            int
	PermanentlyFailedNow int
	// Sessions holds one snapshot per open session, ordered by ID.
	Sessions []Snapshot
}

// Stats assembles a snapshot of every open session without stopping
// any of them.
func (m *Manager) Stats() ManagerSnapshot {
	sessions := m.list()
	snap := ManagerSnapshot{
		Open:            len(sessions),
		Opened:          m.opened.Load(),
		Closed:          m.closedCnt.Load(),
		Evicted:         m.evictions.Load(),
		Panics:          m.panics.Load(),
		Restored:        m.restores.Load(),
		Restarts:        m.restarts.Load(),
		BreakerTrips:    m.breakerTrips.Load(),
		Shed:            m.shed.Load(),
		PressureEvicted: m.pressureEvict.Load(),
		MemUsed:         m.MemUsed(),
		MemBudget:       m.cfg.MemBudget,
		Degraded:        m.degrades.Load(),
		Stalls:          m.stalls.Load(),
		Abandoned:       m.abandoned.Load(),
	}
	for _, s := range sessions {
		st := s.Stats()
		switch st.Health {
		case Healthy:
			snap.HealthyNow++
		case Degraded:
			snap.DegradedNow++
		case Failed:
			snap.FailedNow++
		case PermanentlyFailed:
			snap.PermanentlyFailedNow++
		}
		snap.Sessions = append(snap.Sessions, st)
	}
	sort.Slice(snap.Sessions, func(i, j int) bool { return snap.Sessions[i].ID < snap.Sessions[j].ID })
	return snap
}
